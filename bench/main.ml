(* Benchmark & experiment harness: regenerates every table of
   EXPERIMENTS.md. The paper (SIGMOD 1990) has no quantitative tables of
   its own — figs. 1-7 are protocol artifacts — so each table here
   corresponds to a figure-reproduction (E-series) or to a performance
   claim made in the paper's prose (B-series). See DESIGN.md §4. *)

module Disk = Rrq_storage.Disk
module Wal = Rrq_wal.Wal
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Tm = Rrq_txn.Tm
module Table = Rrq_util.Table

(* [--smoke] runs everything at a fraction of the iterations/quota: enough
   to exercise every code path under [dune runtest] (the bench harness must
   not rot), useless for actual numbers. *)
let smoke = ref false
let scaled n = if !smoke then max 1 (n / 20) else n

(* ---- B1: micro-benchmarks -----------------------------------------------

   Methodology: each operation is timed over a fixed iteration count on
   freshly built state, repeated [b1_reps] times; the reported ns/op is the
   MINIMUM over reps and [spread] is max/min across reps (a noise
   indicator; ~1.0x = quiet machine). The minimum is the right estimator
   here because every source of noise — GC pauses, allocator growth,
   scheduling — is strictly additive. Regression-based estimators (OLS over
   a growing-iteration quota) proved unusable for these workloads: the
   simulated WAL's in-memory durable buffer grows monotonically within a
   timing window, so per-iteration cost is not stationary and r^2
   collapses. Fresh state per rep keeps every rep identically distributed. *)

let bench_roundtrip durability () =
  let disk = Disk.create "bench" in
  let qm = Qm.open_qm disk ~name:"qm" in
  Qm.create_queue qm ~attrs:{ Qm.default_attrs with durability } "q";
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"b" ~stable:false in
  let payload = String.make 128 'x' in
  fun () ->
    ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h payload));
    ignore (Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait))

let bench_stable_roundtrip = bench_roundtrip Qm.Stable
let bench_volatile_roundtrip = bench_roundtrip Qm.Volatile
let bench_mm_roundtrip = bench_roundtrip Qm.Main_memory

let bench_tagged_roundtrip () =
  let disk = Disk.create "bench" in
  let qm = Qm.open_qm disk ~name:"qm" in
  Qm.create_queue qm "q";
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"b" ~stable:true in
  let payload = String.make 128 'x' in
  let n = ref 0 in
  fun () ->
    incr n;
    let tag = "rid" ^ string_of_int !n in
    ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h ~tag payload));
    ignore (Qm.auto_commit qm (fun id -> Qm.dequeue qm id h ~tag Qm.No_wait))

let bench_read () =
  let disk = Disk.create "bench" in
  let qm = Qm.open_qm disk ~name:"qm" in
  Qm.create_queue qm "q";
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"b" ~stable:false in
  let eid = Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "payload") in
  fun () -> ignore (Qm.read qm eid)

let bench_wal_append () =
  let disk = Disk.create "bench" in
  let wal, _ = Wal.open_log disk ~name:"w" in
  let record = String.make 128 'r' in
  fun () -> Wal.append_sync wal record

let bench_kv_put () =
  let disk = Disk.create "bench" in
  let kv = Kvdb.open_kv disk ~name:"kv" in
  let n = ref 0 in
  fun () ->
    incr n;
    let id = Rrq_txn.Txid.make ~origin:"b" ~inc:1 ~n:!n in
    Kvdb.put kv id ("k" ^ string_of_int (!n mod 512)) "v";
    ignore ((Kvdb.participant kv).Tm.p_one_phase id)

let b1_ops =
  [
    ("stable enq+deq (128B)", bench_stable_roundtrip);
    ("main-memory enq+deq (128B)", bench_mm_roundtrip);
    ("volatile enq+deq (128B)", bench_volatile_roundtrip);
    ("tagged enq+deq (ckpt)", bench_tagged_roundtrip);
    ("read by eid", bench_read);
    ("wal append+sync (128B)", bench_wal_append);
    ("kvdb put (1-phase)", bench_kv_put);
  ]

let b1_reps = 7

let time_ns ~iters setup =
  let best = ref infinity and worst = ref 0.0 in
  for _ = 1 to b1_reps do
    let f = setup () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
    if ns < !best then best := ns;
    if ns > !worst then worst := ns
  done;
  (!best, !worst /. !best)

let run_b1 () =
  let iters = scaled 30_000 in
  let t =
    Table.create
      ~title:"B1: queue-manager operation costs (paper 10: main-memory DB + log)"
      ~columns:[ "operation"; "ns/op"; "spread" ]
  in
  List.iter
    (fun (name, setup) ->
      let ns, spread = time_ns ~iters setup in
      Table.add_row t
        [ "B1 " ^ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.2f" spread ])
    b1_ops;
  t

(* ---- experiment registry ------------------------------------------------ *)

(* Every section is addressable by id for [--only] and serialized by
   [--json]; the thunk keeps unselected experiments from running. *)
type sect = { id : string; heading : string; produce : unit -> Table.t }

let sections =
  [
    {
      id = "E1";
      heading = "E1 - exactly-once request processing (figs. 4/5)";
      produce =
        (fun () ->
          Rrq_harness.E_exactly_once.table (Rrq_harness.E_exactly_once.run ()));
    };
    {
      id = "E2";
      heading = "E2 - multi-transaction request chains (fig. 6)";
      produce =
        (fun () ->
          Rrq_harness.E_chain.crash_table (Rrq_harness.E_chain.run_crash_matrix ()));
    };
    {
      id = "E3";
      heading = "E3 - interactive requests (fig. 7, sec. 8)";
      produce =
        (fun () ->
          Rrq_harness.E_interactive.table (Rrq_harness.E_interactive.run ()));
    };
    {
      id = "B1";
      heading = "B1 - queue operation micro-costs (sec. 10)";
      produce = run_b1;
    };
    {
      id = "B2";
      heading = "B2 - lock-holding client designs (sec. 2)";
      produce =
        (fun () ->
          Rrq_harness.E_contention.table (Rrq_harness.E_contention.run ()));
    };
    {
      id = "B3";
      heading = "B3/B5 - dequeue concurrency & load sharing (secs. 1, 10)";
      produce =
        (fun () ->
          Rrq_harness.E_queueing.drain_table (Rrq_harness.E_queueing.run_drain ()));
    };
    {
      id = "B4";
      heading = "B4 - burst absorption (sec. 1)";
      produce =
        (fun () ->
          Rrq_harness.E_queueing.burst_table (Rrq_harness.E_queueing.run_burst ()));
    };
    {
      id = "B6";
      heading = "B6 - chain vs one long transaction (sec. 6)";
      produce =
        (fun () ->
          Rrq_harness.E_chain.contention_table (Rrq_harness.E_chain.run_contention ()));
    };
    {
      id = "B7";
      heading = "B7 - recovery and checkpointing (sec. 10)";
      produce =
        (fun () -> Rrq_harness.E_recovery.table (Rrq_harness.E_recovery.run ()));
    };
    {
      id = "B8";
      heading = "B8 - request serializability via lock inheritance (sec. 6)";
      produce =
        (fun () ->
          Rrq_harness.E_chain.serializability_table
            (Rrq_harness.E_chain.run_serializability ()));
    };
    {
      id = "B9";
      heading = "B9 - replicated queues (sec. 11)";
      produce =
        (fun () ->
          Rrq_harness.E_replication.table (Rrq_harness.E_replication.run ()));
    };
    {
      id = "B10";
      heading = "B10 - streaming requests and replies (sec. 11)";
      produce =
        (fun () -> Rrq_harness.E_stream.table (Rrq_harness.E_stream.run ()));
    };
    {
      id = "B11";
      heading = "B11 - priority scheduling (sec. 11)";
      produce =
        (fun () ->
          Rrq_harness.E_queueing.priority_table
            (Rrq_harness.E_queueing.run_priority ()));
    };
    {
      id = "B12";
      heading = "B12 - group commit on the commit path (sec. 10)";
      produce =
        (fun () ->
          Rrq_harness.E_group_commit.table
            (Rrq_harness.E_group_commit.run ~jobs:(scaled 200) ()));
    };
    {
      id = "B13";
      heading = "B13 - sharded multi-repository scale-out (sec. 11)";
      produce =
        (fun () ->
          Rrq_harness.E_shard.table
            (Rrq_harness.E_shard.run ~reqs:(scaled 25) ()));
    };
    {
      id = "B14";
      heading = "B14 - adaptive group commit vs fixed window (sec. 10)";
      produce =
        (fun () ->
          Rrq_harness.E_group_commit.table_b14
            (Rrq_harness.E_group_commit.run_b14 ~jobs:(scaled 200) ()));
    };
    {
      id = "B15";
      heading = "B15 - failover latency of the HA pair (sec. 11)";
      produce =
        (fun () ->
          Rrq_harness.E_failover.table
            (Rrq_harness.E_failover.run ~warmup:(scaled 40) ()));
    };
    {
      id = "A1";
      heading = "A1 - ablation: error queues vs cyclic restart (secs. 4.2, 5)";
      produce =
        (fun () ->
          Rrq_harness.E_queueing.poison_table (Rrq_harness.E_queueing.run_poison ()));
    };
  ]

(* ---- JSON export -------------------------------------------------------- *)

(* Hand-rolled: the build deliberately has no JSON dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_of_table id (t : Table.t) =
  let arr items = "[" ^ String.concat ", " items ^ "]" in
  Printf.sprintf
    "    {\n      \"id\": %s,\n      \"title\": %s,\n      \"columns\": %s,\n      \"rows\": [\n%s\n      ]\n    }"
    (json_string id)
    (json_string (Table.title t))
    (arr (List.map json_string (Table.columns t)))
    (String.concat ",\n"
       (List.map
          (fun row -> "        " ^ arr (List.map json_string row))
          (Table.rows t)))

let write_json file results =
  let oc = open_out file in
  output_string oc
    (Printf.sprintf "{\n  \"sections\": [\n%s\n  ]\n}\n"
       (String.concat ",\n"
          (List.map (fun (id, t) -> json_of_table id t) results)));
  close_out oc;
  Printf.printf "wrote %s (%d sections)\n%!" file (List.length results)

(* ---- driver ------------------------------------------------------------- *)

let usage () =
  print_endline "usage: main.exe [--only ID]... [--json FILE] [--smoke]";
  print_endline "  --only ID    run only the section with this id (repeatable);";
  print_endline
    "               ids: E1 E2 E3 B1 B2 B3 B4 B6 B7 B8 B9 B10 B11 B12 B13 B14 B15 A1";
  print_endline "  --json FILE  also write the selected tables to FILE as JSON";
  print_endline
    "  --smoke      tiny iteration counts: exercise the harness, not measure";
  exit 2

let parse_args () =
  let only = ref [] and json = ref None in
  let rec go = function
    | [] -> ()
    | "--only" :: id :: rest ->
      if not (List.exists (fun s -> s.id = id) sections) then begin
        Printf.eprintf "unknown section id %s\n" id;
        usage ()
      end;
      only := id :: !only;
      go rest
    | "--json" :: file :: rest ->
      json := Some file;
      go rest
    | "--smoke" :: rest ->
      smoke := true;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (List.rev !only, !json)

let () =
  let only, json = parse_args () in
  let selected =
    match only with
    | [] -> sections
    | ids -> List.filter (fun s -> List.mem s.id ids) sections
  in
  let results =
    List.map
      (fun s ->
        Printf.printf "\n######## %s ########\n\n%!" s.heading;
        let t = s.produce () in
        Table.print t;
        (s.id, t))
      selected
  in
  (match json with Some file -> write_json file results | None -> ());
  Printf.printf "all experiments completed (%d sections)\n" (List.length results)
