(* Benchmark & experiment harness: regenerates every table of
   EXPERIMENTS.md. The paper (SIGMOD 1990) has no quantitative tables of
   its own — figs. 1-7 are protocol artifacts — so each table here
   corresponds to a figure-reproduction (E-series) or to a performance
   claim made in the paper's prose (B-series). See DESIGN.md §4. *)

open Bechamel
open Toolkit
module Disk = Rrq_storage.Disk
module Wal = Rrq_wal.Wal
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Tm = Rrq_txn.Tm
module Table = Rrq_util.Table

(* ---- B1: micro-benchmarks (bechamel) ----------------------------------- *)

let bench_stable_roundtrip () =
  let disk = Disk.create "bench" in
  let qm = Qm.open_qm disk ~name:"qm" in
  Qm.create_queue qm "q";
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"b" ~stable:false in
  let payload = String.make 128 'x' in
  Staged.stage (fun () ->
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h payload));
      ignore (Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait)))

let bench_volatile_roundtrip () =
  let disk = Disk.create "bench" in
  let qm = Qm.open_qm disk ~name:"qm" in
  Qm.create_queue qm ~attrs:{ Qm.default_attrs with durability = Qm.Volatile } "q";
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"b" ~stable:false in
  let payload = String.make 128 'x' in
  Staged.stage (fun () ->
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h payload));
      ignore (Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait)))

let bench_tagged_roundtrip () =
  let disk = Disk.create "bench" in
  let qm = Qm.open_qm disk ~name:"qm" in
  Qm.create_queue qm "q";
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"b" ~stable:true in
  let payload = String.make 128 'x' in
  let n = ref 0 in
  Staged.stage (fun () ->
      incr n;
      let tag = "rid" ^ string_of_int !n in
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h ~tag payload));
      ignore (Qm.auto_commit qm (fun id -> Qm.dequeue qm id h ~tag Qm.No_wait)))

let bench_read () =
  let disk = Disk.create "bench" in
  let qm = Qm.open_qm disk ~name:"qm" in
  Qm.create_queue qm "q";
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"b" ~stable:false in
  let eid = Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "payload") in
  Staged.stage (fun () -> ignore (Qm.read qm eid))

let bench_wal_append () =
  let disk = Disk.create "bench" in
  let wal, _ = Wal.open_log disk ~name:"w" in
  let record = String.make 128 'r' in
  Staged.stage (fun () -> Wal.append_sync wal record)

let bench_kv_put () =
  let disk = Disk.create "bench" in
  let kv = Kvdb.open_kv disk ~name:"kv" in
  let n = ref 0 in
  Staged.stage (fun () ->
      incr n;
      let id = Rrq_txn.Txid.make ~origin:"b" ~inc:1 ~n:!n in
      Kvdb.put kv id ("k" ^ string_of_int (!n mod 512)) "v";
      ignore ((Kvdb.participant kv).Tm.p_one_phase id))

let b1_tests =
  Test.make_grouped ~name:"B1" ~fmt:"%s %s"
    [
      Test.make ~name:"stable enq+deq (128B)" (bench_stable_roundtrip ());
      Test.make ~name:"volatile enq+deq (128B)" (bench_volatile_roundtrip ());
      Test.make ~name:"tagged enq+deq (ckpt)" (bench_tagged_roundtrip ());
      Test.make ~name:"read by eid" (bench_read ());
      Test.make ~name:"wal append+sync (128B)" (bench_wal_append ());
      Test.make ~name:"kvdb put (1-phase)" (bench_kv_put ());
    ]

let run_b1 () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances b1_tests in
  let results =
    Analyze.merge ols instances
      (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  let t =
    Table.create
      ~title:"B1: queue-manager operation costs (paper 10: main-memory DB + log)"
      ~columns:[ "operation"; "ns/op"; "r^2" ]
  in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some per_test ->
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
    |> List.sort compare
    |> List.iter (fun (name, ols) ->
           let est =
             match Analyze.OLS.estimates ols with
             | Some (e :: _) -> Printf.sprintf "%.0f" e
             | _ -> "?"
           in
           let r2 =
             match Analyze.OLS.r_square ols with
             | Some r -> Printf.sprintf "%.3f" r
             | None -> "?"
           in
           Table.add_row t [ name; est; r2 ]));
  Table.print t

(* ---- experiment tables -------------------------------------------------- *)

let section title = Printf.printf "\n######## %s ########\n\n%!" title

let () =
  section "E1 - exactly-once request processing (figs. 4/5)";
  Table.print
    (Rrq_harness.E_exactly_once.table (Rrq_harness.E_exactly_once.run ()));
  section "E2 - multi-transaction request chains (fig. 6)";
  Table.print (Rrq_harness.E_chain.crash_table (Rrq_harness.E_chain.run_crash_matrix ()));
  section "E3 - interactive requests (fig. 7, sec. 8)";
  Table.print (Rrq_harness.E_interactive.table (Rrq_harness.E_interactive.run ()));
  section "B1 - queue operation micro-costs (sec. 10)";
  run_b1 ();
  section "B2 - lock-holding client designs (sec. 2)";
  Table.print (Rrq_harness.E_contention.table (Rrq_harness.E_contention.run ()));
  section "B3/B5 - dequeue concurrency & load sharing (secs. 1, 10)";
  Table.print (Rrq_harness.E_queueing.drain_table (Rrq_harness.E_queueing.run_drain ()));
  section "B4 - burst absorption (sec. 1)";
  Table.print (Rrq_harness.E_queueing.burst_table (Rrq_harness.E_queueing.run_burst ()));
  section "B6 - chain vs one long transaction (sec. 6)";
  Table.print
    (Rrq_harness.E_chain.contention_table (Rrq_harness.E_chain.run_contention ()));
  section "B7 - recovery and checkpointing (sec. 10)";
  Table.print (Rrq_harness.E_recovery.table (Rrq_harness.E_recovery.run ()));
  section "B8 - request serializability via lock inheritance (sec. 6)";
  Table.print
    (Rrq_harness.E_chain.serializability_table
       (Rrq_harness.E_chain.run_serializability ()));
  section "B9 - replicated queues (sec. 11)";
  Table.print
    (Rrq_harness.E_replication.table (Rrq_harness.E_replication.run ()));
  section "B10 - streaming requests and replies (sec. 11)";
  Table.print (Rrq_harness.E_stream.table (Rrq_harness.E_stream.run ()));
  section "B11 - priority scheduling (sec. 11)";
  Table.print
    (Rrq_harness.E_queueing.priority_table (Rrq_harness.E_queueing.run_priority ()));
  section "A1 - ablation: error queues vs cyclic restart (secs. 4.2, 5)";
  Table.print
    (Rrq_harness.E_queueing.poison_table (Rrq_harness.E_queueing.run_poison ()));
  print_endline "all experiments completed"
