(* Tests for the HA primary-backup role (paper §11 promoted to WAL
   shipping, lib/core/ha.ml), distributed-commit atomicity under a
   crash-time sweep, and content-based scheduling.

   The first suite ports the old two-copy Replica tests onto the HA role:
   mirroring is now asynchronous state (shipped WAL batches applied by the
   warm standby) rather than a 2PC write to both copies, so "both copies
   filled" becomes "the standby's replayed state matches after a sync
   ship", and "peer down aborts" becomes "peer down degrades" — the HA
   role trades the old consistency-first abort for availability plus
   resync. The failover suite drives the full scenario world through
   crashpoint-armed kills around every replication step. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter
module Site = Rrq_core.Site
module Ha = Rrq_core.Ha
module Scenario = Rrq_check.Scenario
module Audit = Rrq_check.Audit
module Plan = Rrq_check.Plan
module H = Rrq_test_support.Sim_harness

(* --- the HA pair: shipping, degrade, resync ------------------------------ *)

let make_ha_pair ?(mode = Ha.Sync) ?(ship_timeout = 0.3) s =
  let net = Net.create ~latency:0.005 s (Rng.create 77) in
  let a =
    Site.create ~queues:[ ("rq", Qm.default_attrs) ] ~stale_timeout:2.0
      (Net.make_node net "siteA")
  in
  let b =
    Site.create ~queues:[ ("rq", Qm.default_attrs) ] ~stale_timeout:2.0
      (Net.make_node net "siteB")
  in
  let ha_a = Ha.attach ~mode ~ship_timeout a ~peer:"siteB" ~role:Ha.Primary in
  let ha_b = Ha.attach ~mode ~ship_timeout b ~peer:"siteA" ~role:Ha.Standby in
  (* Serving needs the boot-time rejoin probe; shipping needs the link
     daemon's first resync round. Both are a handful of RPCs away. *)
  let deadline = Sched.clock () +. 5.0 in
  while
    (not (Ha.is_serving ha_a && Ha.shipping ha_a)) && Sched.clock () < deadline
  do
    Sched.sleep 0.05
  done;
  Alcotest.(check bool) "primary serving and shipping" true
    (Ha.is_serving ha_a && Ha.shipping ha_a);
  (a, b, ha_a, ha_b)

let eids site queue =
  List.map (fun el -> el.Element.eid) (Qm.elements (Site.qm site) queue)

let test_sync_ship_mirrors_state () =
  H.run_fiber' (fun s ->
      let a, b, _, _ = make_ha_pair s in
      let qm = Site.qm a in
      let h, _ = Qm.register qm ~queue:"rq" ~registrant:"t" ~stable:false in
      let e1 = Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "one") in
      let e2 = Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "two") in
      Alcotest.(check bool) "distinct eids" true (e1 <> e2);
      (* Sync mode: the commit force gated on the backup's ack, so by the
         time auto_commit returned the standby had already replayed it. *)
      Alcotest.(check (list int64)) "standby mirrors the queue" (eids a "rq")
        (eids b "rq");
      (match Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait) with
      | Some el -> Alcotest.(check string) "fifo" "one" el.Element.payload
      | None -> Alcotest.fail "dequeue failed");
      Alcotest.(check (list int64)) "standby mirrors the dequeue too"
        (eids a "rq") (eids b "rq");
      Alcotest.(check int) "one element left" 1 (Qm.depth (Site.qm b) "rq"))

let test_abort_ships_no_state () =
  H.run_fiber' (fun s ->
      let a, b, _, _ = make_ha_pair s in
      (try
         Site.with_txn a (fun txn ->
             let qm = Site.qm a in
             let h, _ =
               Qm.register qm ~queue:"rq" ~registrant:"t" ~stable:false
             in
             ignore (Qm.enqueue qm (Tm.txn_id txn) h "doomed");
             failwith "change of heart")
       with Failure _ -> ());
      Sched.sleep 0.5;
      Alcotest.(check int) "primary copy empty" 0 (Qm.depth (Site.qm a) "rq");
      Alcotest.(check int) "standby replayed no element" 0
        (Qm.depth (Site.qm b) "rq"))

let test_peer_down_degrades_then_resyncs () =
  H.run_fiber' (fun s ->
      let a, b, ha_a, _ = make_ha_pair s in
      let qm = Site.qm a in
      let h, _ = Qm.register qm ~queue:"rq" ~registrant:"t" ~stable:false in
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "one"));
      let resyncs_before = Ha.resyncs ha_a in
      Site.crash b;
      (* Availability over the old Replica's consistency-first abort: the
         enqueue must still commit, the link must degrade. *)
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "two"));
      Alcotest.(check int) "primary served alone" 2 (Qm.depth qm "rq");
      Alcotest.(check bool) "link degraded" true (Ha.degrades ha_a >= 1);
      Alcotest.(check bool) "not shipping" false (Ha.shipping ha_a);
      (* The failed standby returns; the link daemon resyncs it with a
         full snapshot, catching up the element committed while it was
         away. *)
      Site.restart b;
      let deadline = Sched.clock () +. 10.0 in
      while
        (not (Ha.shipping ha_a && Ha.resyncs ha_a > resyncs_before))
        && Sched.clock () < deadline
      do
        Sched.sleep 0.1
      done;
      Alcotest.(check bool) "resynced" true (Ha.resyncs ha_a > resyncs_before);
      Alcotest.(check (list int64)) "standby caught up after resync"
        (eids a "rq") (eids b "rq"))

let ha_suite =
  [
    Alcotest.test_case "sync ship mirrors queue state" `Quick
      test_sync_ship_mirrors_state;
    Alcotest.test_case "abort ships no state" `Quick test_abort_ships_no_state;
    Alcotest.test_case "peer down degrades, resync catches up" `Quick
      test_peer_down_degrades_then_resyncs;
  ]

(* --- failover: the scenario world under kills around every HA step ------- *)

let check_pass name (o : Scenario.outcome) =
  Alcotest.(check string)
    (name ^ ": auditors")
    "all auditors passed"
    (Audit.findings_to_string o.Scenario.findings);
  Alcotest.(check int) (name ^ ": every reply delivered") o.Scenario.requests
    o.Scenario.replies

let plan faults = Plan.make ~seed:0 ~policy:`Fifo ~faults

let test_ha_fault_free () =
  check_pass "fault-free" (Scenario.run Scenario.ha (plan []))

let test_kill_primary_before_first_ship () =
  (* t=0.05: before any conversation traffic shipped — the standby
     promotes from (at most) registration state and serves every request
     itself. *)
  check_pass "kill before ship"
    (Scenario.run Scenario.ha
       (plan [ Plan.Crash { node = "primary"; at = 0.05; recover_after = 6.0 } ]))

let test_kill_primary_at_ship_sent () =
  (* The backup holds the first batch and has acked it; the primary dies
     before releasing the committer (no reply escaped). *)
  check_pass "kill at ship.sent"
    (Scenario.ha_crash_at ~site:"ship.sent" ~hit:1 ~victim:"primary"
       ~recover_after:6.0)

let test_kill_primary_at_ship_applied () =
  (* The batch is durable on the backup but the ack is still in flight:
     the primary dies mid-RPC, the shipped effects must survive on the
     promoted standby exactly once. *)
  check_pass "kill at ship.applied"
    (Scenario.ha_crash_at ~site:"ship.applied" ~hit:1 ~victim:"primary"
       ~recover_after:6.0)

let test_kill_backup_during_promote () =
  (* The standby dies inside promotion, before the durable role flip: its
     next incarnation must detect the still-dead primary and promote
     again, and the auditors must hold across the repeated takeover. *)
  check_pass "kill during promote"
    (Scenario.ha_crash_at ~site:"ha.promote" ~hit:1 ~victim:"backup"
       ~recover_after:4.0)

let test_double_failover () =
  (* Primary dies; backup promotes (epoch 2); ex-primary returns, demotes
     itself into the standby seat; then the new primary dies too and the
     recovered ex-primary takes the service back (epoch 3). *)
  check_pass "double failover"
    (Scenario.run Scenario.ha
       (plan
          [
            Plan.Crash { node = "primary"; at = 2.0; recover_after = 4.0 };
            Plan.Crash { node = "backup"; at = 12.0; recover_after = 6.0 };
          ]))

let failover_suite =
  [
    Alcotest.test_case "fault-free pair" `Quick test_ha_fault_free;
    Alcotest.test_case "kill primary before first ship" `Quick
      test_kill_primary_before_first_ship;
    Alcotest.test_case "kill primary at ship.sent" `Quick
      test_kill_primary_at_ship_sent;
    Alcotest.test_case "kill primary at ship.applied" `Quick
      test_kill_primary_at_ship_applied;
    Alcotest.test_case "kill backup during promote" `Quick
      test_kill_backup_during_promote;
    Alcotest.test_case "double failover" `Quick test_double_failover;
  ]

(* --- an HA pair as one shard of a sharded deployment ---------------------- *)

module Shard = Rrq_core.Shard
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Envelope = Rrq_core.Envelope
module Kvdb = Rrq_kvdb.Kvdb

(* Shard0 is an HA pair (hs0p primary, hs0b warm standby — the shard map
   lists hs0b as shard0's backup candidate); hs1 and hs2 are plain shard
   repositories. Client "ha" is pinned entirely onto the pair; client "hb"
   spans the healthy shards (requests on hs1, replies on hs2, so every one
   of its requests commits through cross-shard 2PC). Killing hs0p mid-run
   must fail client "ha" over to the promoted hs0b — same rids, duplicate
   suppression from shipped registration state — while "hb" and its
   in-flight cross-shard transactions never notice. *)
let test_shard_ha_failover () =
  let replies = ref 0 in
  let clients_done = ref 0 in
  let hb_done_at = ref infinity in
  let rids = [ "ha-r0"; "ha-r1"; "hb-r0"; "hb-r1" ] in
  let smap =
    {
      Shard.version = 1;
      shards = [ "hs0p"; "hs1"; "hs2" ];
      backups = [ ("hs0p", [ "hs0b" ]) ];
      sharded_queues = [ "req" ];
      pins =
        [
          ("req#ha", "hs0p");
          ("reply.ha", "hs0p");
          ("req#hb", "hs1");
          ("reply.hb", "hs2");
        ];
    }
  in
  let client ~client_node ~client_id () =
    let rec connect n =
      match
        Clerk.connect ~client_node ~system:"hs0p" ~shard_map:smap ~client_id
          ~req_queue:"req" ~retries:8 ()
      with
      | clerk, _ -> clerk
      | exception Clerk.Unavailable _ when n > 0 ->
        Sched.sleep 1.0;
        connect (n - 1)
    in
    let clerk = connect 60 in
    for r = 0 to 1 do
      (* the second request straddles the t=1.5 primary kill *)
      if r > 0 then Sched.sleep 1.2;
      let rid = Printf.sprintf "%s-r%d" client_id r in
      let rec send n =
        try ignore (Clerk.send clerk ~rid ("work:" ^ rid))
        with Clerk.Unavailable _ when n > 0 ->
          Sched.sleep 1.0;
          send (n - 1)
      in
      send 60;
      let deadline = Sched.clock () +. 60.0 in
      let rec recv () =
        let reply =
          try Clerk.receive clerk ~timeout:2.0 ()
          with Clerk.Unavailable _ ->
            Sched.sleep 1.0;
            None
        in
        match reply with
        | Some env when env.Envelope.kind <> "intermediate" -> incr replies
        | _ -> if Sched.clock () < deadline then recv ()
      in
      recv ()
    done
  in
  H.run_fiber' (fun s ->
      let net = Net.create ~latency:0.005 s (Rng.create 99) in
      let plain name =
        let site =
          Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
            (Net.make_node net name)
        in
        ignore
          (Server.start site ~req_queue:"req" ~threads:2 Audit.counting_handler);
        ignore (Shard.attach site smap);
        site
      in
      let site_p =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
          (Net.make_node net "hs0p")
      in
      let site_b =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
          (Net.make_node net "hs0b")
      in
      let serve ha =
        ignore
          (Server.start_here (Ha.site ha) ~req_queue:"req" ~threads:2
             Audit.counting_handler)
      in
      let _ha_p =
        Ha.attach ~mode:Ha.Sync ~on_serving:serve site_p ~peer:"hs0b"
          ~role:Ha.Primary
      in
      let ha_b =
        Ha.attach ~mode:Ha.Sync ~on_serving:serve site_b ~peer:"hs0p"
          ~role:Ha.Standby
      in
      ignore (Shard.attach site_p smap);
      ignore (Shard.attach site_b smap);
      let site_1 = plain "hs1" in
      let site_2 = plain "hs2" in
      let client_node = Net.make_node net "client" in
      Sched.at s 1.5 (fun () -> Site.crash_restart site_p ~after:8.0);
      ignore
        (Sched.fork ~name:"client-ha" (fun () ->
             client ~client_node ~client_id:"ha" ();
             incr clients_done));
      ignore
        (Sched.fork ~name:"client-hb" (fun () ->
             client ~client_node ~client_id:"hb" ();
             hb_done_at := Sched.clock ();
             incr clients_done));
      let deadline = Sched.clock () +. 200.0 in
      while !clients_done < 2 && Sched.clock () < deadline do
        Sched.sleep 0.25
      done;
      Alcotest.(check int) "both clients finished" 2 !clients_done;
      (* settle: failover, rejoin, resolvers, janitors *)
      Sched.sleep 25.0;
      Alcotest.(check bool) "the pair failed over" true (Ha.is_serving ha_b);
      (* The healthy shards never noticed: client hb's conversations — all
         cross-shard 2PC — completed before the pair even finished its
         takeover, let alone the t=9.5 primary recovery. *)
      Alcotest.(check bool)
        (Printf.sprintf "hb unaffected by the shard0 failover (done at %.2f)"
           !hb_done_at)
        true (!hb_done_at < 5.0);
      Alcotest.(check int) "every reply delivered" 4 !replies;
      let pair_auth () = if Ha.is_serving ha_b then site_b else site_p in
      let auth_sites () = [ pair_auth (); site_1; site_2 ] in
      let all_sites () = [ site_p; site_b; site_1; site_2 ] in
      let findings =
        Audit.run
          [
            Audit.exactly_once ~sites:auth_sites ~rids:(fun () -> rids);
            Audit.conservation ~name:"exec-total" ~expected:(List.length rids)
              ~actual:(fun () ->
                List.fold_left
                  (fun acc site ->
                    acc
                    +
                    match Kvdb.committed_value (Site.kv site) "total" with
                    | Some v -> Option.value ~default:0 (int_of_string_opt v)
                    | None -> 0)
                  0 (auth_sites ()));
            Audit.queue_integrity ~sites:all_sites;
            Audit.no_in_doubt ~sites:all_sites;
          ]
      in
      Alcotest.(check string) "auditors across the sharded pair"
        "all auditors passed"
        (Audit.findings_to_string findings))

let shard_ha_suite =
  [
    Alcotest.test_case "HA pair as one shard: failover isolated" `Quick
      test_shard_ha_failover;
  ]

(* --- distributed commit atomicity under a crash-time sweep ---------------- *)

(* A transaction enqueues on two sites via 2PC while site B crashes at a
   swept offset. Whatever the timing, after recovery both queues must agree
   (both have the element or neither). *)
let atomicity_at_crash_time crash_at =
  H.run_fiber' (fun s ->
      let net = Net.create s (Rng.create 7) in
      let a =
        Site.create ~queues:[ ("qa", Qm.default_attrs) ] ~stale_timeout:1.0
          (Net.make_node net "siteA")
      in
      let b =
        Site.create ~queues:[ ("qb", Qm.default_attrs) ] ~stale_timeout:1.0
          (Net.make_node net "siteB")
      in
      Sched.at s crash_at (fun () -> Site.crash_restart b ~after:1.0);
      let committed =
        match
          Site.with_txn a (fun txn ->
              let h, _ =
                Qm.register (Site.qm a) ~queue:"qa" ~registrant:"t" ~stable:false
              in
              ignore (Qm.enqueue (Site.qm a) (Tm.txn_id txn) h "x");
              Site.remote_enqueue a txn ~dst:"siteB" ~queue:"qb" "x")
        with
        | () -> true
        | exception Site.Aborted _ -> false
      in
      (* allow in-doubt resolution and commit redelivery to settle *)
      Sched.sleep 15.0;
      let da = Qm.depth (Site.qm a) "qa" in
      let db = Qm.depth (Site.qm b) "qb" in
      (committed, da, db))

let test_2pc_atomic_under_crash_sweep () =
  List.iter
    (fun crash_at ->
      let committed, da, db = atomicity_at_crash_time crash_at in
      let tag = Printf.sprintf "crash at %.3f (committed=%b)" crash_at committed in
      Alcotest.(check bool)
        (tag ^ ": both or neither")
        true
        ((da = 1 && db = 1) || (da = 0 && db = 0));
      if committed then
        Alcotest.(check int) (tag ^ ": committed implies both") 1 da)
    [ 0.001; 0.004; 0.008; 0.012; 0.016; 0.02; 0.03; 0.05 ]

(* --- content-based scheduling (ranked dequeue, paper 11) ------------------ *)

let test_ranked_dequeue_highest_dollar_first () =
  H.run_fiber (fun () ->
      let disk = Rrq_storage.Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "orders";
      let h, _ = Qm.register qm ~queue:"orders" ~registrant:"t" ~stable:false in
      List.iter
        (fun (p, amt) ->
          ignore
            (Qm.auto_commit qm (fun id ->
                 Qm.enqueue qm id h ~props:[ ("amount", string_of_int amt) ] p)))
        [ ("small", 10); ("huge", 5000); ("medium", 300) ];
      let rank el =
        match Element.prop el "amount" with
        | Some a -> float_of_string a
        | None -> 0.0
      in
      let next () =
        match
          Qm.auto_commit qm (fun id -> Qm.dequeue qm id h ~rank Qm.No_wait)
        with
        | Some el -> el.Element.payload
        | None -> "<empty>"
      in
      let first = next () in
      let second = next () in
      let third = next () in
      Alcotest.(check (list string)) "largest amounts first"
        [ "huge"; "medium"; "small" ]
        [ first; second; third ])

let test_ranked_dequeue_with_filter () =
  H.run_fiber (fun () ->
      let disk = Rrq_storage.Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "orders";
      let h, _ = Qm.register qm ~queue:"orders" ~registrant:"t" ~stable:false in
      List.iter
        (fun (p, kind, amt) ->
          ignore
            (Qm.auto_commit qm (fun id ->
                 Qm.enqueue qm id h
                   ~props:[ ("kind", kind); ("amount", string_of_int amt) ]
                   p)))
        [ ("a", "sell", 100); ("b", "buy", 900); ("c", "sell", 500) ];
      let rank el =
        match Element.prop el "amount" with
        | Some a -> float_of_string a
        | None -> 0.0
      in
      match
        Qm.auto_commit qm (fun id ->
            Qm.dequeue qm id h ~filter:(Filter.Prop_eq ("kind", "sell")) ~rank
              Qm.No_wait)
      with
      | Some el ->
        Alcotest.(check string) "largest sell, not the larger buy" "c"
          el.Element.payload
      | None -> Alcotest.fail "expected an element")

let atomicity_suite =
  [
    Alcotest.test_case "2PC atomic under crash sweep" `Quick
      test_2pc_atomic_under_crash_sweep;
  ]

let scheduling_suite =
  [
    Alcotest.test_case "highest dollar first" `Quick
      test_ranked_dequeue_highest_dollar_first;
    Alcotest.test_case "rank + filter" `Quick test_ranked_dequeue_with_filter;
  ]

let () =
  Alcotest.run "rrq-ha"
    [
      ("ha", ha_suite);
      ("failover", failover_suite);
      ("sharded-failover", shard_ha_suite);
      ("atomicity", atomicity_suite);
      ("scheduling", scheduling_suite);
    ]
