(* The observability layer, tested in isolation:

   - the metrics registry: counters, gauges and sample series; snapshot,
     interval diff, lookup helpers and the two renderings (text, JSON);
   - disabled mode really is a no-op (the registry and the trace stream
     stay untouched);
   - the trace ring buffer: bounded, wraps around dropping oldest first,
     and timestamps come from the pluggable clock;
   - the event codec: to_string/of_string round-trips every constructor,
     including field values containing the framing characters. *)

module Obs = Rrq_obs

let with_obs f =
  Obs.reset ();
  Fun.protect ~finally:Obs.disable f

(* ---- metrics registry --------------------------------------------------- *)

let test_counters_gauges () =
  with_obs (fun () ->
      Obs.Metrics.inc "a.x";
      Obs.Metrics.inc "a.x";
      Obs.Metrics.inc ~by:5 "a.y";
      Obs.Metrics.inc "b.z";
      Obs.Metrics.set_gauge "g.one" 1.5;
      Obs.Metrics.set_gauge "g.one" 2.5;
      Obs.Metrics.set_gauge "g.two" 4.0;
      Alcotest.(check int) "inc twice" 2 (Obs.Metrics.counter "a.x");
      Alcotest.(check int) "inc ~by" 5 (Obs.Metrics.counter "a.y");
      Alcotest.(check int) "absent counter is 0" 0 (Obs.Metrics.counter "nope");
      Alcotest.(check (float 0.0)) "gauge keeps last value" 2.5
        (Obs.Metrics.gauge "g.one");
      Alcotest.(check (float 0.0)) "absent gauge is 0" 0.0
        (Obs.Metrics.gauge "nope");
      Alcotest.(check int) "sum_counters by prefix" 7
        (Obs.Metrics.sum_counters ~prefix:"a.");
      Alcotest.(check (float 0.0)) "sum_gauges by prefix" 6.5
        (Obs.Metrics.sum_gauges ~prefix:"g."))

let test_snapshot_diff () =
  with_obs (fun () ->
      Obs.Metrics.inc ~by:3 "c";
      Obs.Metrics.set_gauge "g" 1.0;
      Obs.Metrics.observe "lat" 10.0;
      Obs.Metrics.observe "lat" 20.0;
      let before = Obs.Metrics.snapshot () in
      Obs.Metrics.inc ~by:4 "c";
      Obs.Metrics.inc "fresh";
      Obs.Metrics.set_gauge "g" 9.0;
      Obs.Metrics.observe "lat" 30.0;
      Obs.Metrics.observe "lat" 40.0;
      let after = Obs.Metrics.snapshot () in
      Alcotest.(check int) "snapshot is a copy" 3
        (Obs.Metrics.find_counter before "c");
      let d = Obs.Metrics.diff ~before ~after in
      Alcotest.(check int) "diff subtracts counters" 4
        (Obs.Metrics.find_counter d "c");
      Alcotest.(check int) "counter born in the interval" 1
        (Obs.Metrics.find_counter d "fresh");
      Alcotest.(check (float 0.0)) "diff keeps after's gauge" 9.0
        (Obs.Metrics.find_gauge d "g");
      let h = Obs.Metrics.histogram d "lat" in
      Alcotest.(check int) "diff slices the new samples" 2
        (Rrq_util.Histogram.count h);
      Alcotest.(check (float 0.0)) "and only those" 35.0
        (Rrq_util.Histogram.mean h);
      let full = Obs.Metrics.histogram after "lat" in
      Alcotest.(check int) "full snapshot keeps all samples" 4
        (Rrq_util.Histogram.count full);
      let empty = Obs.Metrics.histogram after "absent" in
      Alcotest.(check int) "absent series is empty" 0
        (Rrq_util.Histogram.count empty))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_renderings () =
  with_obs (fun () ->
      Obs.Metrics.inc ~by:2 "beta";
      Obs.Metrics.inc "alpha";
      Obs.Metrics.set_gauge "depth" 3.0;
      Obs.Metrics.observe "lat" 5.0;
      let snap = Obs.Metrics.snapshot () in
      (match snap.Obs.Metrics.s_counters with
      | [ ("alpha", 1); ("beta", 2) ] -> ()
      | _ -> Alcotest.fail "counters not sorted by name");
      let j = Obs.Metrics.to_json snap in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "JSON contains %s" needle)
            true (contains j needle))
        [
          {|"counters":{|};
          {|"alpha":1|};
          {|"beta":2|};
          {|"gauges":{|};
          {|"depth":3|};
          {|"histograms":{|};
          {|"lat":{"count":1|};
          {|"p95":|};
        ];
      let t = Obs.Metrics.to_text snap in
      Alcotest.(check bool) "text names the counter" true (contains t "alpha");
      Alcotest.(check bool) "text names the series" true (contains t "lat"))

let test_disabled_noop () =
  Obs.reset ();
  Obs.Metrics.inc "live";
  Obs.Trace.emit (Obs.Event.Read { qm = "q"; queue = "r"; found = true });
  Obs.disable ();
  Alcotest.(check bool) "disable turns recording off" false (Obs.enabled ());
  Obs.Metrics.inc "live";
  Obs.Metrics.inc "dead";
  Obs.Metrics.set_gauge "dead.g" 7.0;
  Obs.Metrics.observe "dead.s" 7.0;
  Obs.Trace.emit (Obs.Event.Read { qm = "q"; queue = "r"; found = false });
  Alcotest.(check int) "counter frozen while disabled" 1
    (Obs.Metrics.counter "live");
  Alcotest.(check int) "no counter created while disabled" 0
    (Obs.Metrics.counter "dead");
  Alcotest.(check (float 0.0)) "no gauge created while disabled" 0.0
    (Obs.Metrics.gauge "dead.g");
  Alcotest.(check int) "trace frozen while disabled" 1 (Obs.Trace.length ());
  Alcotest.(check int) "accumulated data stays readable" 1
    (Obs.Metrics.counter "live")

(* ---- trace ring buffer -------------------------------------------------- *)

let read_event i =
  Obs.Event.Read { qm = "qm"; queue = Printf.sprintf "q%d" i; found = true }

let test_ring_wraparound () =
  Obs.reset ~trace_capacity:4 ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let tick = ref 0.0 in
      Obs.Trace.set_clock (fun () ->
          tick := !tick +. 1.0;
          !tick);
      for i = 1 to 10 do
        Obs.Trace.emit (read_event i)
      done;
      Alcotest.(check int) "length capped at capacity" 4 (Obs.Trace.length ());
      Alcotest.(check int) "dropped counts evictions" 6 (Obs.Trace.dropped ());
      let evs = Obs.Trace.events () in
      Alcotest.(check (list (float 0.0)))
        "oldest first, newest kept, clock timestamps"
        [ 7.0; 8.0; 9.0; 10.0 ] (List.map fst evs);
      Alcotest.(check (list string)) "the last four events survive"
        (List.map (fun i -> Obs.Event.to_string (read_event i)) [ 7; 8; 9; 10 ])
        (List.map (fun (_, e) -> Obs.Event.to_string e) evs);
      let dump = Obs.Trace.dump_jsonl () in
      let lines = String.split_on_char '\n' dump in
      let lines = List.filter (fun l -> l <> "") lines in
      Alcotest.(check int) "dump has one line per held event" 4
        (List.length lines);
      Alcotest.(check bool) "lines carry the timestamp" true
        (contains (List.hd lines) {|"ts":7|}))

let test_ring_partial_fill () =
  Obs.reset ~trace_capacity:8 ();
  Fun.protect ~finally:Obs.disable (fun () ->
      for i = 1 to 3 do
        Obs.Trace.emit (read_event i)
      done;
      Alcotest.(check int) "length below capacity" 3 (Obs.Trace.length ());
      Alcotest.(check int) "nothing dropped" 0 (Obs.Trace.dropped ());
      Alcotest.(check int) "events returns them all" 3
        (List.length (Obs.Trace.events ()));
      Obs.reset ();
      Alcotest.(check int) "reset clears the ring" 0 (Obs.Trace.length ()))

(* ---- event codec -------------------------------------------------------- *)

(* Strings exercising the escapes: the field separator, the escape
   character itself, and newlines (which would break JSON-lines dumps). *)
let nasty = [ "plain"; "with|pipe"; "back\\slash"; "new\nline"; "mix|\\\n|" ]

let all_variants =
  let open Obs.Event in
  List.concat_map
    (fun s ->
      [
        Enqueue { qm = s; queue = "q"; eid = 1L; txid = s };
        Dequeue { qm = "m"; queue = s; eid = Int64.max_int; txid = "t" };
        Read { qm = s; queue = ""; found = false };
        Error_spill { qm = "m"; error_queue = s; eid = 42L; code = s };
        Txn_begin { tm = s; txid = "x1" };
        Txn_commit { tm = "tm"; txid = s };
        Txn_abort { tm = s; txid = s };
        Wal_append { wal = s; lsn = 7; bytes = 123 };
        Wal_force { wal = s; lsn = 0 };
        Batch_seal { wal = s; batch = 9; reason = "rate" };
        Crashpoint_fired { site = s; hit = 3 };
        Client_fsm { client = s; from_state = "Idle"; event = s; to_state = "Sent" };
        Clerk_send { client = s; rid = s; eid = 5L };
        Clerk_receive { client = "c"; rid = s };
        Server_exec { server = s; rid = "r"; txid = s };
        Shard_forward { node = s; owner = "shard1"; version = 3 };
        Shard_map_install { node = "shard2"; version = 41 };
      ])
    nasty

let test_codec_roundtrip () =
  List.iter
    (fun ev ->
      let line = Obs.Event.to_string ev in
      Alcotest.(check bool)
        (Printf.sprintf "single line: %s" line)
        false
        (String.contains line '\n');
      let back = Obs.Event.of_string line in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip: %s" line)
        true (ev = back))
    all_variants

let test_codec_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Event.of_string s with
      | _ -> Alcotest.fail (Printf.sprintf "parsed garbage %S" s)
      | exception Failure _ -> ())
    [ ""; "nonsense"; "enq|only|two"; "wappend|w|notanint|0" ]

let test_json_lines () =
  let ev =
    Obs.Event.Enqueue { qm = "qm\"1"; queue = "req"; eid = 17L; txid = "t|x" }
  in
  let line = Obs.Event.to_json_line ~ts:2.5 ev in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json line has %s" needle)
        true (contains line needle))
    [ {|"ts":2.5|}; {|"type":"enq"|}; {|"eid":"17"|}; {|"qm\"1"|} ];
  Alcotest.(check bool) "json line is one line" false (String.contains line '\n')

(* Arbitrary field content survives the codec, not just the handpicked
   nasty strings. *)
let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"event codec roundtrips arbitrary strings" ~count:500
    QCheck2.Gen.(triple string string string)
    (fun (a, b, c) ->
      let ev = Obs.Event.Client_fsm
          { client = a; from_state = b; event = c; to_state = a }
      in
      ev = Obs.Event.of_string (Obs.Event.to_string ev))

let () =
  Alcotest.run "rrq-obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "snapshot and diff" `Quick test_snapshot_diff;
          Alcotest.test_case "text and JSON renderings" `Quick test_renderings;
          Alcotest.test_case "disabled mode is a no-op" `Quick
            test_disabled_noop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "partial fill and reset" `Quick
            test_ring_partial_fill;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip all constructors" `Quick
            test_codec_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_codec_rejects_garbage;
          Alcotest.test_case "JSON lines shape" `Quick test_json_lines;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
    ]
