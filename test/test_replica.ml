(* Tests for replicated queues (paper §11), distributed-commit atomicity
   under a crash-time sweep, and content-based scheduling. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter
module Site = Rrq_core.Site
module Replica = Rrq_core.Replica
module H = Rrq_test_support.Sim_harness

let make_pair s =
  let net = Net.create s (Rng.create 77) in
  let a = Site.create ~stale_timeout:2.0 (Net.make_node net "siteA") in
  let b = Site.create ~stale_timeout:2.0 (Net.make_node net "siteB") in
  (net, a, b)

(* --- replicated queues --------------------------------------------------- *)

let test_replicated_roundtrip () =
  H.run_fiber' (fun s ->
      let _, a, b = make_pair s in
      let rq = Replica.create ~primary:a ~backup:b ~queue:"rq" in
      let r1 = Site.with_txn a (fun txn -> Replica.enqueue rq txn "one") in
      let r2 = Site.with_txn a (fun txn -> Replica.enqueue rq txn "two") in
      Alcotest.(check bool) "distinct rep ids" true (r1 <> r2);
      Alcotest.(check (pair int int)) "both copies filled" (2, 2)
        (Replica.depths rq);
      Alcotest.(check (list string)) "same contents"
        (Replica.rep_ids a ~queue:"rq")
        (Replica.rep_ids b ~queue:"rq");
      (match Site.with_txn a (fun txn -> Replica.dequeue rq txn) with
      | Some (rep, payload) ->
        Alcotest.(check string) "fifo payload" "one" payload;
        Alcotest.(check string) "fifo rep id" r1 rep
      | None -> Alcotest.fail "dequeue failed");
      Alcotest.(check (pair int int)) "both copies drained once" (1, 1)
        (Replica.depths rq))

let test_replicated_abort_affects_neither () =
  H.run_fiber' (fun s ->
      let _, a, b = make_pair s in
      let rq = Replica.create ~primary:a ~backup:b ~queue:"rq" in
      (try
         Site.with_txn a (fun txn ->
             ignore (Replica.enqueue rq txn "doomed");
             failwith "change of heart")
       with Failure _ -> ());
      Alcotest.(check (pair int int)) "neither copy touched" (0, 0)
        (Replica.depths rq))

let test_replicated_peer_down_aborts () =
  H.run_fiber' (fun s ->
      let _, a, b = make_pair s in
      let rq = Replica.create ~primary:a ~backup:b ~queue:"rq" in
      Site.crash b;
      (match
         Site.with_txn a (fun txn -> ignore (Replica.enqueue rq txn "x"))
       with
      | () -> Alcotest.fail "should degrade"
      | exception Replica.Degraded _ -> ()
      | exception Site.Aborted _ -> ());
      Alcotest.(check int) "primary copy not half-written" 0
        (Qm.depth (Site.qm a) "rq"))

let test_failover_and_resync () =
  H.run_fiber' (fun s ->
      let _, a, b = make_pair s in
      let rq = Replica.create ~primary:a ~backup:b ~queue:"rq" in
      let drained = ref [] in
      List.iter
        (fun p -> ignore (Site.with_txn a (fun txn -> Replica.enqueue rq txn p)))
        [ "one"; "two"; "three" ];
      (* primary dies; the backup is promoted and serves alone *)
      Site.crash a;
      Replica.promote rq;
      Replica.set_degraded rq true;
      (match Site.with_txn b (fun txn -> Replica.dequeue rq txn) with
      | Some (_, p) -> drained := p :: !drained
      | None -> Alcotest.fail "promoted copy should serve");
      ignore
        (Site.with_txn b (fun txn -> Replica.enqueue rq txn "four"));
      (* the failed site returns with a stale copy; reconcile it *)
      Site.restart a;
      Replica.resync rq;
      Replica.set_degraded rq false;
      Alcotest.(check (list string)) "copies identical after resync"
        (Replica.rep_ids b ~queue:"rq")
        (Replica.rep_ids a ~queue:"rq");
      (* fully replicated service resumes; drain everything *)
      let rec drain () =
        match Site.with_txn b (fun txn -> Replica.dequeue rq txn) with
        | Some (_, p) ->
          drained := p :: !drained;
          drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check (list string)) "each element served exactly once"
        (List.sort compare [ "one"; "two"; "three"; "four" ])
        (List.sort compare !drained);
      Alcotest.(check (pair int int)) "both empty" (0, 0) (Replica.depths rq))

(* --- distributed commit atomicity under a crash-time sweep ---------------- *)

(* A transaction enqueues on two sites via 2PC while site B crashes at a
   swept offset. Whatever the timing, after recovery both queues must agree
   (both have the element or neither). *)
let atomicity_at_crash_time crash_at =
  H.run_fiber' (fun s ->
      let net = Net.create s (Rng.create 7) in
      let a =
        Site.create ~queues:[ ("qa", Qm.default_attrs) ] ~stale_timeout:1.0
          (Net.make_node net "siteA")
      in
      let b =
        Site.create ~queues:[ ("qb", Qm.default_attrs) ] ~stale_timeout:1.0
          (Net.make_node net "siteB")
      in
      Sched.at s crash_at (fun () -> Site.crash_restart b ~after:1.0);
      let committed =
        match
          Site.with_txn a (fun txn ->
              let h, _ =
                Qm.register (Site.qm a) ~queue:"qa" ~registrant:"t" ~stable:false
              in
              ignore (Qm.enqueue (Site.qm a) (Tm.txn_id txn) h "x");
              Site.remote_enqueue a txn ~dst:"siteB" ~queue:"qb" "x")
        with
        | () -> true
        | exception Site.Aborted _ -> false
      in
      (* allow in-doubt resolution and commit redelivery to settle *)
      Sched.sleep 15.0;
      let da = Qm.depth (Site.qm a) "qa" in
      let db = Qm.depth (Site.qm b) "qb" in
      (committed, da, db))

let test_2pc_atomic_under_crash_sweep () =
  List.iter
    (fun crash_at ->
      let committed, da, db = atomicity_at_crash_time crash_at in
      let tag = Printf.sprintf "crash at %.3f (committed=%b)" crash_at committed in
      Alcotest.(check bool)
        (tag ^ ": both or neither")
        true
        ((da = 1 && db = 1) || (da = 0 && db = 0));
      if committed then
        Alcotest.(check int) (tag ^ ": committed implies both") 1 da)
    [ 0.001; 0.004; 0.008; 0.012; 0.016; 0.02; 0.03; 0.05 ]

(* --- content-based scheduling (ranked dequeue, paper 11) ------------------ *)

let test_ranked_dequeue_highest_dollar_first () =
  H.run_fiber (fun () ->
      let disk = Rrq_storage.Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "orders";
      let h, _ = Qm.register qm ~queue:"orders" ~registrant:"t" ~stable:false in
      List.iter
        (fun (p, amt) ->
          ignore
            (Qm.auto_commit qm (fun id ->
                 Qm.enqueue qm id h ~props:[ ("amount", string_of_int amt) ] p)))
        [ ("small", 10); ("huge", 5000); ("medium", 300) ];
      let rank el =
        match Element.prop el "amount" with
        | Some a -> float_of_string a
        | None -> 0.0
      in
      let next () =
        match
          Qm.auto_commit qm (fun id -> Qm.dequeue qm id h ~rank Qm.No_wait)
        with
        | Some el -> el.Element.payload
        | None -> "<empty>"
      in
      let first = next () in
      let second = next () in
      let third = next () in
      Alcotest.(check (list string)) "largest amounts first"
        [ "huge"; "medium"; "small" ]
        [ first; second; third ])

let test_ranked_dequeue_with_filter () =
  H.run_fiber (fun () ->
      let disk = Rrq_storage.Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "orders";
      let h, _ = Qm.register qm ~queue:"orders" ~registrant:"t" ~stable:false in
      List.iter
        (fun (p, kind, amt) ->
          ignore
            (Qm.auto_commit qm (fun id ->
                 Qm.enqueue qm id h
                   ~props:[ ("kind", kind); ("amount", string_of_int amt) ]
                   p)))
        [ ("a", "sell", 100); ("b", "buy", 900); ("c", "sell", 500) ];
      let rank el =
        match Element.prop el "amount" with
        | Some a -> float_of_string a
        | None -> 0.0
      in
      match
        Qm.auto_commit qm (fun id ->
            Qm.dequeue qm id h ~filter:(Filter.Prop_eq ("kind", "sell")) ~rank
              Qm.No_wait)
      with
      | Some el ->
        Alcotest.(check string) "largest sell, not the larger buy" "c"
          el.Element.payload
      | None -> Alcotest.fail "expected an element")

let replica_suite =
  [
    Alcotest.test_case "replicated roundtrip" `Quick test_replicated_roundtrip;
    Alcotest.test_case "abort affects neither copy" `Quick
      test_replicated_abort_affects_neither;
    Alcotest.test_case "peer down aborts (consistency first)" `Quick
      test_replicated_peer_down_aborts;
    Alcotest.test_case "failover, degraded service, resync" `Quick
      test_failover_and_resync;
  ]

let atomicity_suite =
  [
    Alcotest.test_case "2PC atomic under crash sweep" `Quick
      test_2pc_atomic_under_crash_sweep;
  ]

let scheduling_suite =
  [
    Alcotest.test_case "highest dollar first" `Quick
      test_ranked_dequeue_highest_dollar_first;
    Alcotest.test_case "rank + filter" `Quick test_ranked_dequeue_with_filter;
  ]

let () =
  Alcotest.run "rrq-replica"
    [
      ("replica", replica_suite);
      ("atomicity", atomicity_suite);
      ("scheduling", scheduling_suite);
    ]
