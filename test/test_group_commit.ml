(* Group commit (Rrq_wal.Group_commit): batching behavior and, more
   importantly, the crash-safety contract — a crash between a commit
   record's append and its batched sync may lose only transactions that
   were never acknowledged. "Acknowledged" is modeled honestly: a commit
   counts as acked only if force returned while the disk was still alive
   (a process that observes its own disk dead is about to be declared
   crashed, so nothing it says afterwards reaches a client). *)

module Disk = Rrq_storage.Disk
module Wal = Rrq_wal.Wal
module Group_commit = Rrq_wal.Group_commit
module Sched = Rrq_sim.Sched
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Element = Rrq_qm.Element
module Rng = Rrq_util.Rng
module H = Rrq_test_support.Sim_harness

let batch = Group_commit.Batch { max_delay = 0.0005; max_batch = 64 }

(* ---- WAL-level batching ------------------------------------------------ *)

(* N concurrent committers, one (or very few) physical syncs; every record
   durable once everyone's force returned. *)
let test_wal_batching_coalesces () =
  H.run_fiber (fun () ->
      let disk = Disk.create "gc" in
      let wal, _ = Wal.open_log disk ~name:"log" in
      let gc = Group_commit.create ~policy:batch wal in
      let n = 10 in
      let fibers =
        List.init n (fun i ->
            Sched.fork ~name:(Printf.sprintf "c%d" i) (fun () ->
                Group_commit.append_force gc (Printf.sprintf "r%d" i)))
      in
      while List.exists Sched.alive fibers do
        Sched.sleep 0.0001
      done;
      Alcotest.(check int) "every committer forced" n (Group_commit.forces gc);
      Alcotest.(check bool)
        (Printf.sprintf "syncs (%d) < forces (%d)" (Group_commit.syncs gc) n)
        true
        (Group_commit.syncs gc < n);
      Alcotest.(check int) "durable lsn caught up" (Wal.appended_lsn wal)
        (Wal.durable_lsn wal);
      Disk.crash disk;
      let _, r = Wal.open_log disk ~name:"log" in
      Alcotest.(check int) "all records durable" n (List.length r.Wal.records))

(* Outside a fiber the Batch policy must degrade to a direct sync rather
   than touch the scheduler. *)
let test_force_outside_fiber () =
  let disk = Disk.create "gc" in
  let wal, _ = Wal.open_log disk ~name:"log" in
  let gc = Group_commit.create ~policy:batch wal in
  Group_commit.append_force gc "solo";
  Alcotest.(check int) "synced directly" 1 (Group_commit.syncs gc);
  Disk.crash disk;
  let _, r = Wal.open_log disk ~name:"log" in
  Alcotest.(check (list string)) "durable" [ "solo" ] r.Wal.records

(* force with nothing undurable must not touch the device. *)
let test_force_idempotent () =
  let disk = Disk.create "gc" in
  let wal, _ = Wal.open_log disk ~name:"log" in
  let gc = Group_commit.create ~policy:batch wal in
  Group_commit.append_force gc "a";
  let syncs = Group_commit.syncs gc in
  Group_commit.force gc;
  Group_commit.force gc;
  Alcotest.(check int) "no extra syncs" syncs (Group_commit.syncs gc)

(* ---- acked-commit durability under crash points ------------------------ *)

(* Preload a queue, then drain it with [servers] concurrent auto-committed
   dequeues under the Batch policy while the disk is rigged to die at sync
   boundary [point]. Returns (acked eids, eids remaining after recovery,
   preloaded eids). *)
let drain_with_crash ~torn ~servers ~jobs ~point =
  H.run_fiber (fun () ->
      let disk =
        if torn then Disk.create ~torn_writes:true ~rng:(Rng.create 11) "gc"
        else Disk.create "gc"
      in
      let qm = Qm.open_qm ~commit_policy:batch disk ~name:"qm" in
      Qm.create_queue qm "q";
      let h, _ = Qm.register qm ~queue:"q" ~registrant:"c" ~stable:false in
      let preloaded =
        List.init jobs (fun i ->
            Qm.auto_commit qm (fun id ->
                Qm.enqueue qm id h (Printf.sprintf "job%d" i)))
      in
      (* Count (and crash) only the drain phase's durability boundaries. *)
      Disk.reset_counters disk;
      (match point with Some p -> Disk.kill_after_syncs disk p | None -> ());
      let acked = ref [] in
      let fibers =
        List.init servers (fun i ->
            Sched.fork ~name:(Printf.sprintf "s%d" i) (fun () ->
                let rec loop () =
                  match
                    Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait)
                  with
                  | Some el ->
                    (* The ack decision, taken the instant force returns:
                       only a live process can answer a client. *)
                    if not (Disk.is_dead disk) then
                      acked := el.Element.eid :: !acked;
                    loop ()
                  | None -> ()
                in
                loop ()))
      in
      while List.exists Sched.alive fibers do
        Sched.sleep 0.0001
      done;
      let syncs = Disk.sync_count disk in
      Disk.revive disk;
      (* Fresh incarnation recovers from whatever the disk retained. *)
      let qm' = Qm.open_qm disk ~name:"qm" in
      let remaining =
        List.map (fun el -> el.Element.eid) (Qm.elements qm' "q")
      in
      (!acked, remaining, preloaded, syncs))

let check_drain ~ctx (acked, remaining, preloaded, _syncs) =
  (* Safety: an acknowledged dequeue is durable — its element is gone. *)
  List.iter
    (fun eid ->
      if List.mem eid remaining then
        Alcotest.failf "%s: acked dequeue of eid %Ld lost by recovery" ctx eid)
    acked;
  (* Sanity: recovery invents nothing. *)
  List.iter
    (fun eid ->
      if not (List.mem eid preloaded) then
        Alcotest.failf "%s: phantom eid %Ld after recovery" ctx eid)
    remaining

let test_acked_commit_sweep () =
  let servers = 6 and jobs = 18 in
  (* Clean run: everything acked and drained; also counts the boundaries. *)
  let (acked, remaining, _, total_syncs) as clean =
    drain_with_crash ~torn:false ~servers ~jobs ~point:None
  in
  check_drain ~ctx:"clean" clean;
  Alcotest.(check int) "clean: all acked" jobs (List.length acked);
  Alcotest.(check int) "clean: queue drained" 0 (List.length remaining);
  Alcotest.(check bool) "clean: batching happened" true (total_syncs < jobs);
  for point = 1 to total_syncs do
    check_drain
      ~ctx:(Printf.sprintf "crash@%d" point)
      (drain_with_crash ~torn:false ~servers ~jobs ~point:(Some point))
  done

(* Same sweep with torn writes: the dying flush may persist a partial
   frame, which recovery must truncate without losing acked commits. *)
let test_acked_commit_sweep_torn () =
  let servers = 6 and jobs = 18 in
  let _, _, _, total_syncs =
    drain_with_crash ~torn:true ~servers ~jobs ~point:None
  in
  for point = 1 to total_syncs do
    check_drain
      ~ctx:(Printf.sprintf "torn-crash@%d" point)
      (drain_with_crash ~torn:true ~servers ~jobs ~point:(Some point))
  done

(* ---- adaptive policy: low-concurrency regression fix ------------------- *)

(* The B12 regression this PR fixes: a fixed batch window at 1 server costs
   a window's worth of latency per commit (667 vs 1000 commits/s at 0.5ms
   window over a 1ms flush). Adaptive sealing must detect the idle device
   and degrade to immediate forces: 1-server throughput within 5% of the
   Immediate baseline, while still batching (beating Immediate) once
   enough servers contend for the device. *)
let test_adaptive_single_server_parity () =
  let run policy =
    Rrq_harness.E_group_commit.one_run ~policy ~servers:1 ~jobs:200
      ~sync_latency:0.001
  in
  let imm = run Group_commit.Immediate in
  let ada = run Rrq_harness.E_group_commit.default_adaptive in
  let fixed = run Rrq_harness.E_group_commit.default_batch in
  Alcotest.(check bool)
    (Printf.sprintf "fixed window regresses at 1 server (%.0f < %.0f)"
       fixed.commits_per_sec imm.commits_per_sec)
    true
    (fixed.commits_per_sec < 0.95 *. imm.commits_per_sec);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive within 5%% of immediate (%.0f vs %.0f)"
       ada.commits_per_sec imm.commits_per_sec)
    true
    (ada.commits_per_sec >= 0.95 *. imm.commits_per_sec)

let test_adaptive_batches_under_load () =
  let run policy servers =
    Rrq_harness.E_group_commit.one_run ~policy ~servers ~jobs:200
      ~sync_latency:0.001
  in
  let imm = run Group_commit.Immediate 8 in
  let ada = run Rrq_harness.E_group_commit.default_adaptive 8 in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive batches at 8 servers (%.0f >= %.0f)"
       ada.commits_per_sec imm.commits_per_sec)
    true
    (ada.commits_per_sec >= imm.commits_per_sec);
  Alcotest.(check bool) "adaptive syncs per commit below 1 under load" true
    (ada.syncs_per_commit < 1.0)

(* ---- 2PC decision durability under the batched force ------------------- *)

(* A two-RM transaction committed under the Batch policy: if the
   coordinator reported Committed while its disk was alive, the decision
   (and both RMs' effects) must survive any crash point; the decision is
   never observable before it is durable. *)
let twopc_with_crash ~point =
  H.run_fiber (fun () ->
      let disk = Disk.create "gc" in
      let open_world ?commit_policy () =
        let tm = Tm.open_tm ?commit_policy disk ~name:"node" in
        let qm = Qm.open_qm ?commit_policy disk ~name:"qm@node" in
        let kv = Kvdb.open_kv ?commit_policy disk ~name:"kv@node" in
        Qm.create_queue qm "q";
        (tm, qm, kv)
      in
      let tm, qm, kv = open_world ~commit_policy:batch () in
      let h, _ = Qm.register qm ~queue:"q" ~registrant:"c" ~stable:false in
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "first"));
      (match point with Some p -> Disk.kill_after_syncs disk p | None -> ());
      let txn = Tm.begin_txn tm in
      let id = Tm.txn_id txn in
      ignore (Qm.dequeue qm id h Qm.No_wait);
      Kvdb.put kv id "got" "1";
      Tm.join txn (Qm.participant qm);
      Tm.join txn (Kvdb.participant kv);
      let outcome = Tm.commit tm txn in
      let acked = outcome = Tm.Committed && not (Disk.is_dead disk) in
      Disk.revive disk;
      let tm', qm', kv' = open_world () in
      let resolve in_doubt participant =
        List.iter
          (fun (txid, _coord) ->
            match Tm.decision tm' txid with
            | `Committed -> ignore (participant.Tm.p_commit txid)
            | `Aborted | `Pending -> participant.Tm.p_abort txid)
          in_doubt
      in
      resolve (Qm.in_doubt qm') (Qm.participant qm');
      resolve (Kvdb.in_doubt kv') (Kvdb.participant kv');
      let consumed = Qm.elements qm' "q" = [] in
      let got = Kvdb.committed_value kv' "got" = Some "1" in
      (acked, consumed, got))

let test_twopc_decision_sweep () =
  let acked, consumed, got = twopc_with_crash ~point:None in
  Alcotest.(check bool) "clean: acked" true acked;
  Alcotest.(check bool) "clean: consumed" true consumed;
  Alcotest.(check bool) "clean: kv written" true got;
  for point = 1 to 10 do
    let acked, consumed, got = twopc_with_crash ~point:(Some point) in
    let ctx = Printf.sprintf "crash@%d" point in
    if acked then begin
      Alcotest.(check bool) (ctx ^ ": acked => element consumed") true consumed;
      Alcotest.(check bool) (ctx ^ ": acked => kv durable") true got
    end
    else
      (* Unacknowledged: both RMs must agree either way (atomicity). *)
      Alcotest.(check bool)
        (ctx ^ ": unacked still atomic")
        true
        (consumed = got || (not consumed && not got))
  done

let () =
  Alcotest.run "rrq-group-commit"
    [
      ( "wal",
        [
          Alcotest.test_case "batching coalesces syncs" `Quick
            test_wal_batching_coalesces;
          Alcotest.test_case "force outside fiber" `Quick
            test_force_outside_fiber;
          Alcotest.test_case "force is idempotent" `Quick test_force_idempotent;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "1-server commits/s within 5% of immediate"
            `Quick test_adaptive_single_server_parity;
          Alcotest.test_case "batches under load" `Quick
            test_adaptive_batches_under_load;
        ] );
      ( "crashpoints",
        [
          Alcotest.test_case "acked commits survive every sync boundary"
            `Quick test_acked_commit_sweep;
          Alcotest.test_case "acked commits survive torn writes" `Quick
            test_acked_commit_sweep_torn;
          Alcotest.test_case "2PC decision durable before ack" `Quick
            test_twopc_decision_sweep;
        ] );
    ]
