(* Contract checks for the smaller corners of the public API: accessors,
   orderings, edge cases, introspection counters. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Disk = Rrq_storage.Disk
module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter
module Envelope = Rrq_core.Envelope
module Session = Rrq_core.Session
module H = Rrq_test_support.Sim_harness

let test_element_key_ordering () =
  let mk ~prio ~time ~eid =
    Element.make ~eid ~payload:"" ~props:[] ~priority:prio ~enq_time:time
  in
  let k = Element.key in
  Alcotest.(check bool) "higher priority sorts first" true
    (k (mk ~prio:5 ~time:9.0 ~eid:9L) < k (mk ~prio:1 ~time:0.0 ~eid:1L));
  Alcotest.(check bool) "same priority: earlier time first" true
    (k (mk ~prio:3 ~time:1.0 ~eid:9L) < k (mk ~prio:3 ~time:2.0 ~eid:1L));
  Alcotest.(check bool) "full tie: lower eid first" true
    (k (mk ~prio:3 ~time:1.0 ~eid:1L) < k (mk ~prio:3 ~time:1.0 ~eid:2L))

let test_envelope_constructors () =
  let env =
    Envelope.make ~rid:"r" ~client_id:"c" ~reply_node:"n" ~reply_queue:"q"
      ~scratch:"s0" "body"
  in
  Alcotest.(check string) "default kind" "request" env.Envelope.kind;
  let reply = Envelope.reply_to env ~body:"out" in
  Alcotest.(check string) "reply kind" "reply" reply.Envelope.kind;
  Alcotest.(check string) "reply keeps rid" "r" reply.Envelope.rid;
  Alcotest.(check string) "reply scratch cleared" "" reply.Envelope.scratch;
  let next = Envelope.with_body env ~body:"b2" ~scratch:"s1" in
  Alcotest.(check int) "step bumped" 1 next.Envelope.step;
  Alcotest.(check string) "scratch carried" "s1" next.Envelope.scratch;
  Alcotest.(check (list (pair string string))) "props"
    [ ("rid", "r"); ("kind", "request"); ("client", "c") ]
    (Envelope.props env)

let test_session_rid_helpers () =
  Alcotest.(check string) "rid_of_seq" "r17" (Session.rid_of_seq 17);
  Alcotest.(check (option int)) "seq_of_rid" (Some 17) (Session.seq_of_rid "r17");
  Alcotest.(check (option int)) "malformed" None (Session.seq_of_rid "x17");
  Alcotest.(check (option int)) "not a number" None (Session.seq_of_rid "rxx")

let test_txid_compare_and_equal () =
  let a = Txid.make ~origin:"n" ~inc:1 ~n:1 in
  let b = Txid.make ~origin:"n" ~inc:1 ~n:2 in
  Alcotest.(check bool) "distinct" false (Txid.equal a b);
  Alcotest.(check bool) "ordered" true (Txid.compare a b < 0);
  Alcotest.(check bool) "reflexive" true (Txid.equal a a)

let test_filter_to_string () =
  let f =
    Filter.(And (Prop_eq ("k", "v"), Or (Priority_ge 3, Not (Prop_exists "x"))))
  in
  Alcotest.(check string) "rendering"
    "(k=\"v\" and (prio>=3 or not(has(x))))" (Filter.to_string f)

let test_qm_introspection () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"repo" in
      Alcotest.(check string) "name" "repo" (Qm.name qm);
      Qm.create_queue qm "b";
      Qm.create_queue qm "a";
      Alcotest.(check (list string)) "sorted names" [ "a"; "b" ]
        (Qm.queue_names qm);
      let h, _ = Qm.register qm ~queue:"a" ~registrant:"t" ~stable:false in
      Alcotest.(check string) "handle accessors" "a" (Qm.handle_queue h);
      Alcotest.(check string) "handle registrant" "t" (Qm.handle_registrant h);
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h "x"));
      ignore (Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait));
      Alcotest.(check (pair int int)) "counts" (1, 1) (Qm.counts qm "a");
      Alcotest.(check (option pass)) "read of unknown eid" None (Qm.read qm 424242L);
      Alcotest.check_raises "depth of unknown queue" (Qm.No_such_queue "zz")
        (fun () -> ignore (Qm.depth qm "zz")))

let test_qm_dequeue_set_timeout_empty () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "a";
      Qm.create_queue qm "b";
      let ha, _ = Qm.register qm ~queue:"a" ~registrant:"t" ~stable:false in
      let hb, _ = Qm.register qm ~queue:"b" ~registrant:"t" ~stable:false in
      Alcotest.(check bool) "empty set times out" true
        (Qm.auto_commit qm (fun id ->
             Qm.dequeue_set qm id [ ha; hb ] Qm.No_wait)
        = None))

let test_tm_stats () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let tm = Tm.open_tm disk ~name:"tm" in
      Alcotest.(check string) "name" "tm" (Tm.name tm);
      let t1 = Tm.begin_txn tm in
      ignore (Tm.commit tm t1);
      let t2 = Tm.begin_txn tm in
      Tm.abort tm t2;
      Alcotest.(check bool) "t2 inactive" false (Tm.is_active t2);
      Alcotest.(check (pair int int)) "stats" (1, 1) (Tm.stats tm))

let test_net_counters () =
  H.run_fiber' (fun s ->
      let net = Net.create s (Rng.create 1) in
      let a = Net.make_node net "a" in
      Net.add_service a "echo" (fun m -> m);
      let b = Net.make_node net "b" in
      Alcotest.(check string) "node name" "b" (Net.node_name b);
      Alcotest.(check bool) "up" true (Net.is_up b);
      ignore (Net.call b ~dst:"a" ~service:"echo" Net.Ack);
      Alcotest.(check bool) "messages counted" true (Net.messages_sent net >= 2);
      Alcotest.(check int) "none dropped" 0 (Net.messages_dropped net))

let test_histogram_merge_and_total () =
  let open Rrq_util.Histogram in
  let a = create () and b = create () in
  add a 1.0;
  add a 2.0;
  add b 3.0;
  let m = merge a b in
  Alcotest.(check int) "merged count" 3 (count m);
  Alcotest.(check (float 1e-9)) "merged total" 6.0 (total m);
  Alcotest.(check bool) "summary mentions n=3" true
    (String.length (summary m) > 0 && String.sub (summary m) 0 3 = "n=3")

let () =
  Alcotest.run "rrq-api-surface"
    [
      ( "api",
        [
          Alcotest.test_case "element key ordering" `Quick
            test_element_key_ordering;
          Alcotest.test_case "envelope constructors" `Quick
            test_envelope_constructors;
          Alcotest.test_case "session rid helpers" `Quick test_session_rid_helpers;
          Alcotest.test_case "txid compare/equal" `Quick test_txid_compare_and_equal;
          Alcotest.test_case "filter to_string" `Quick test_filter_to_string;
          Alcotest.test_case "qm introspection" `Quick test_qm_introspection;
          Alcotest.test_case "dequeue_set empty" `Quick
            test_qm_dequeue_set_timeout_empty;
          Alcotest.test_case "tm stats" `Quick test_tm_stats;
          Alcotest.test_case "net counters" `Quick test_net_counters;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge_and_total;
        ] );
    ]
