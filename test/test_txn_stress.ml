(* Concurrency stress tests: many interleaved transactions against the
   lock manager / KV store (no lost updates despite deadlock-retry storms),
   and concurrent cross-site queue moves under crashes (conservation). *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Envelope = Rrq_core.Envelope
module H = Rrq_test_support.Sim_harness

(* Every committed transaction increments a few random keys and the grand
   total. The final database must equal the count of commits — no lost
   updates, no phantom updates — despite deadlocks forcing retries. *)
let test_no_lost_updates_under_contention () =
  let commits_per_key = Array.make 5 0 in
  let total_commits = ref 0 in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 21) in
        let backend = Site.create ~stale_timeout:60.0 (Net.make_node net "b") in
        let rng = Rng.create 22 in
        for f = 1 to 20 do
          ignore
            (Sched.spawn s ~group:"workers" ~name:(Printf.sprintf "w%d" f)
               (fun () ->
                 for _ = 1 to 10 do
                   (* pick 2 distinct keys; lock order randomized on purpose
                      so deadlocks actually occur *)
                   let a = Rng.int rng 5 in
                   let b = (a + 1 + Rng.int rng 4) mod 5 in
                   let rec attempt tries =
                     if tries > 50 then Alcotest.fail "starved out"
                     else begin
                       match
                         Site.with_txn backend (fun txn ->
                             let kv = Site.kv backend in
                             let id = Tm.txn_id txn in
                             ignore (Kvdb.add kv id (Printf.sprintf "k%d" a) 1);
                             Sched.sleep 0.001 (* widen the deadlock window *);
                             ignore (Kvdb.add kv id (Printf.sprintf "k%d" b) 1);
                             ignore (Kvdb.add kv id "grand" 1))
                       with
                       | () ->
                         commits_per_key.(a) <- commits_per_key.(a) + 1;
                         commits_per_key.(b) <- commits_per_key.(b) + 1;
                         incr total_commits
                       | exception Site.Aborted _ ->
                         Sched.sleep 0.002;
                         attempt (tries + 1)
                     end
                   in
                   attempt 0
                 done));
        done;
        Sched.at s 300.0 (fun () -> ()) (* keep virtual time bounded *);
        ignore
          (Sched.spawn s ~name:"auditor" (fun () ->
               let rec wait () =
                 if !total_commits < 200 then begin
                   Sched.sleep 0.5;
                   wait ()
                 end
               in
               wait ();
               let kv = Site.kv backend in
               Alcotest.(check int) "all transactions committed" 200 !total_commits;
               for k = 0 to 4 do
                 let v =
                   match Kvdb.committed_value kv (Printf.sprintf "k%d" k) with
                   | Some s -> int_of_string s
                   | None -> 0
                 in
                 Alcotest.(check int)
                   (Printf.sprintf "k%d consistent" k)
                   commits_per_key.(k) v
               done;
               Alcotest.(check (option string)) "grand total" (Some "200")
                 (Kvdb.committed_value kv "grand"))))
  in
  ()

(* Three concurrent movers shuttle elements from a source site to a sink
   site (local dequeue + remote enqueue, 2PC each) while the sink crashes
   twice. Every element must end up at the sink exactly once. *)
let test_concurrent_cross_site_moves_conserve () =
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 23) in
        let src =
          Site.create ~queues:[ ("out", Qm.default_attrs) ] ~stale_timeout:2.0
            (Net.make_node net "src")
        in
        let sink =
          Site.create ~queues:[ ("in", Qm.default_attrs) ] ~stale_timeout:2.0
            (Net.make_node net "sink")
        in
        (* 30 elements to move *)
        ignore
          (Sched.spawn s ~name:"loader" (fun () ->
               let qm = Site.qm src in
               let h, _ =
                 Qm.register qm ~queue:"out" ~registrant:"loader" ~stable:false
               in
               for i = 1 to 30 do
                 ignore
                   (Qm.auto_commit qm (fun id ->
                        Qm.enqueue qm id h
                          ~props:[ ("n", string_of_int i) ]
                          (Printf.sprintf "item%d" i)))
               done));
        Sched.at s 1.0 (fun () -> Site.crash_restart sink ~after:1.5);
        Sched.at s 5.0 (fun () -> Site.crash_restart sink ~after:1.5);
        for m = 1 to 3 do
          ignore
            (Sched.spawn s ~group:"movers" ~name:(Printf.sprintf "mover%d" m)
               (fun () ->
                 let qm = Site.qm src in
                 let h, _ =
                   Qm.register qm ~queue:"out"
                     ~registrant:(Printf.sprintf "mover%d" m) ~stable:false
                 in
                 let rec loop idle =
                   if idle > 40 then () (* source stayed empty: done *)
                   else begin
                     match
                       Site.with_txn src (fun txn ->
                           match
                             Qm.dequeue qm (Tm.txn_id txn) h (Qm.Timeout 0.5)
                           with
                           | None -> false
                           | Some el ->
                             Site.remote_enqueue src txn ~dst:"sink" ~queue:"in"
                               ~props:el.Rrq_qm.Element.props
                               el.Rrq_qm.Element.payload;
                             true)
                     with
                     | true -> loop 0
                     | false -> loop (idle + 1)
                     | exception Site.Aborted _ ->
                       Sched.sleep 0.3;
                       loop 0
                   end
                 in
                 loop 0))
        done;
        ignore
          (Sched.spawn s ~name:"auditor" (fun () ->
               let rec wait n =
                 if n > 600 then Alcotest.fail "moves never completed"
                 else if Qm.depth (Site.qm sink) "in" < 30
                         || Qm.depth (Site.qm src) "out" > 0
                 then begin
                   Sched.sleep 0.5;
                   wait (n + 1)
                 end
               in
               wait 0;
               Sched.sleep 10.0;
               Alcotest.(check int) "source drained" 0
                 (Qm.depth (Site.qm src) "out");
               Alcotest.(check int) "sink has exactly 30" 30
                 (Qm.depth (Site.qm sink) "in");
               (* no duplicates: the 30 distinct "n" properties *)
               let ns =
                 Qm.elements (Site.qm sink) "in"
                 |> List.filter_map (fun el -> Rrq_qm.Element.prop el "n")
                 |> List.sort_uniq compare
               in
               Alcotest.(check int) "all distinct" 30 (List.length ns))))
  in
  ()

let () =
  Alcotest.run "rrq-txn-stress"
    [
      ( "stress",
        [
          Alcotest.test_case "no lost updates under contention" `Quick
            test_no_lost_updates_under_contention;
          Alcotest.test_case "concurrent cross-site moves conserve" `Quick
            test_concurrent_cross_site_moves_conserve;
        ] );
    ]
