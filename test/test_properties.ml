(* Property-based tests on core invariants: lock-table compatibility, queue
   dequeue ordering, codec roundtrips, filter encode/eval consistency. *)

module Lock = Rrq_txn.Lock
module Txid = Rrq_txn.Txid
module Tm = Rrq_txn.Tm
module Sched = Rrq_sim.Sched
module Obs = Rrq_obs
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter
module Envelope = Rrq_core.Envelope
module Tag = Rrq_core.Tag
module Disk = Rrq_storage.Disk
module H = Rrq_test_support.Sim_harness

let tx n = Txid.make ~origin:"p" ~inc:1 ~n

(* --- lock manager: no incompatible co-holders, ever --------------------- *)

(* Random sequences of try_acquire / release_all over 4 transactions and 3
   keys. After every step, for every key the granted set must be
   compatible: at most one holder unless all holders are shared. *)
let prop_lock_compatibility =
  QCheck2.Test.make ~name:"lock: granted sets always compatible" ~count:300
    QCheck2.Gen.(list_size (int_bound 60) (tup3 (int_bound 3) (int_bound 2) (int_bound 2)))
    (fun script ->
      let lm = Lock.create () in
      let keys = [| "a"; "b"; "c" |] in
      let check_invariant () =
        Array.for_all
          (fun key ->
            let holders =
              List.filter_map
                (fun n ->
                  let id = tx n in
                  if Lock.holds lm id ~key Lock.X then Some (n, Lock.X)
                  else if Lock.holds lm id ~key Lock.S then Some (n, Lock.S)
                  else None)
                [ 0; 1; 2; 3 ]
            in
            match holders with
            | [] | [ _ ] -> true
            | many -> List.for_all (fun (_, m) -> m = Lock.S) many)
          keys
      in
      List.for_all
        (fun (who, key_i, action) ->
          let id = tx who in
          (match action with
          | 0 -> ignore (Lock.try_acquire lm id ~key:keys.(key_i) Lock.S)
          | 1 -> ignore (Lock.try_acquire lm id ~key:keys.(key_i) Lock.X)
          | _ -> Lock.release_all lm id);
          check_invariant ())
        script)

(* try_acquire must be consistent with holds. *)
let prop_lock_try_acquire_grants =
  QCheck2.Test.make ~name:"lock: try_acquire implies holds" ~count:200
    QCheck2.Gen.(list_size (int_bound 40) (tup2 (int_bound 3) (int_bound 1)))
    (fun script ->
      let lm = Lock.create () in
      List.for_all
        (fun (who, mode_i) ->
          let id = tx who in
          let mode = if mode_i = 0 then Lock.S else Lock.X in
          if Lock.try_acquire lm id ~key:"k" mode then
            Lock.holds lm id ~key:"k" mode
          else true)
        script)

(* --- QM: dequeue order ---------------------------------------------------- *)

(* Whatever the enqueue order, repeated dequeues return elements sorted by
   (priority desc, enqueue order). *)
let prop_qm_dequeue_order =
  QCheck2.Test.make ~name:"qm: dequeue respects priority then FIFO" ~count:100
    QCheck2.Gen.(list_size (int_bound 25) (int_bound 4))
    (fun priorities ->
      H.run_fiber (fun () ->
          let disk = Disk.create "p" in
          let qm = Qm.open_qm disk ~name:"qm" in
          Qm.create_queue qm "q";
          let h, _ = Qm.register qm ~queue:"q" ~registrant:"p" ~stable:false in
          List.iteri
            (fun i prio ->
              ignore
                (Qm.auto_commit qm (fun id ->
                     Qm.enqueue qm id h ~priority:prio
                       (Printf.sprintf "%d:%d" prio i))))
            priorities;
          let rec drain acc =
            match
              Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait)
            with
            | Some el -> drain (el.Element.payload :: acc)
            | None -> List.rev acc
          in
          let order = drain [] in
          let decoded =
            List.map
              (fun p ->
                match String.split_on_char ':' p with
                | [ prio; i ] -> (-int_of_string prio, int_of_string i)
                | _ -> assert false)
              order
          in
          (* sorted by (-priority, enqueue index) *)
          decoded = List.sort compare decoded))

(* Ranked dequeue always returns the ready element with the highest rank. *)
let prop_qm_rank_max =
  QCheck2.Test.make ~name:"qm: ranked dequeue returns the max" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (int_bound 1000))
    (fun amounts ->
      H.run_fiber (fun () ->
          let disk = Disk.create "p" in
          let qm = Qm.open_qm disk ~name:"qm" in
          Qm.create_queue qm "q";
          let h, _ = Qm.register qm ~queue:"q" ~registrant:"p" ~stable:false in
          List.iter
            (fun a ->
              ignore
                (Qm.auto_commit qm (fun id ->
                     Qm.enqueue qm id h
                       ~props:[ ("amount", string_of_int a) ]
                       (string_of_int a))))
            amounts;
          let rank el =
            match Element.prop el "amount" with
            | Some a -> float_of_string a
            | None -> 0.0
          in
          match Qm.auto_commit qm (fun id -> Qm.dequeue qm id h ~rank Qm.No_wait) with
          | Some el ->
            int_of_string el.Element.payload
            = List.fold_left max min_int amounts
          | None -> false))

(* --- codecs ---------------------------------------------------------------- *)

let gen_small_string = QCheck2.Gen.(string_size ~gen:printable (int_bound 30))

let prop_envelope_roundtrip =
  QCheck2.Test.make ~name:"envelope: to_string/of_string roundtrip" ~count:300
    QCheck2.Gen.(
      tup4 gen_small_string gen_small_string gen_small_string
        (tup3 gen_small_string gen_small_string (int_bound 10)))
    (fun (rid, client_id, body, (kind, scratch, step)) ->
      let env =
        Envelope.make ~rid ~client_id ~reply_node:"n" ~reply_queue:"rq"
          ~kind ~scratch ~step body
      in
      Envelope.of_string (Envelope.to_string env) = env)

let prop_tag_roundtrip =
  QCheck2.Test.make ~name:"tag: rid/ckpt pieces roundtrip" ~count:300
    QCheck2.Gen.(tup2 gen_small_string (option gen_small_string))
    (fun (rid, ckpt) ->
      let send_tag = Tag.send ~rid in
      let recv_tag = Tag.receive ~rid:(Some rid) ~ckpt in
      Tag.rid_piece send_tag = Some rid
      && Tag.rid_piece recv_tag = Some rid
      && Tag.ckpt_piece recv_tag = ckpt)

(* A filter survives encode/decode with identical semantics on random
   elements. *)
let gen_filter =
  let open QCheck2.Gen in
  let key = oneofl [ "k1"; "k2"; "k3" ] in
  let value = oneofl [ "a"; "b"; "7"; "42" ] in
  sized
  @@ fix (fun self n ->
         if n = 0 then
           oneof
             [
               return Filter.True;
               map2 (fun k v -> Filter.Prop_eq (k, v)) key value;
               map (fun k -> Filter.Prop_exists k) key;
               map2 (fun k b -> Filter.Prop_ge (k, b)) key (int_bound 50);
               map (fun p -> Filter.Priority_ge p) (int_bound 5);
             ]
         else
           oneof
             [
               map (fun f -> Filter.Not f) (self (n / 2));
               map2 (fun a b -> Filter.And (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Filter.Or (a, b)) (self (n / 2)) (self (n / 2));
             ])

let gen_element =
  let open QCheck2.Gen in
  let prop =
    tup2 (oneofl [ "k1"; "k2"; "k3" ]) (oneofl [ "a"; "b"; "7"; "42" ])
  in
  map2
    (fun props priority ->
      Element.make ~eid:1L ~payload:"x" ~props ~priority ~enq_time:0.0)
    (list_size (int_bound 4) prop)
    (int_bound 5)

let prop_filter_codec_semantics =
  QCheck2.Test.make ~name:"filter: codec preserves semantics" ~count:400
    QCheck2.Gen.(tup2 gen_filter gen_element)
    (fun (f, el) ->
      let e = Rrq_util.Codec.encoder () in
      Filter.encode e f;
      let f' = Filter.decode (Rrq_util.Codec.decoder (Rrq_util.Codec.to_string e)) in
      Filter.matches f el = Filter.matches f' el)

(* Element codec roundtrip (status resets to Ready by design). *)
let prop_element_roundtrip =
  QCheck2.Test.make ~name:"element: codec roundtrip" ~count:200
    QCheck2.Gen.(
      tup4 gen_small_string
        (list_size (int_bound 4) (tup2 gen_small_string gen_small_string))
        (int_bound 9) (int_bound 1000))
    (fun (payload, props, priority, dc) ->
      let el = Element.make ~eid:77L ~payload ~props ~priority ~enq_time:1.5 in
      el.Element.delivery_count <- dc;
      el.Element.abort_code <- (if dc > 500 then Some "code" else None);
      let e = Rrq_util.Codec.encoder () in
      Element.encode e el;
      let el' = Element.decode (Rrq_util.Codec.decoder (Rrq_util.Codec.to_string e)) in
      el'.Element.eid = 77L
      && el'.Element.payload = payload
      && el'.Element.props = props
      && el'.Element.priority = priority
      && el'.Element.enq_time = 1.5
      && el'.Element.delivery_count = dc
      && el'.Element.abort_code = el.Element.abort_code
      && el'.Element.status = Element.Ready)

(* --- HA shipping: prefix replay consistency -------------------------------- *)

(* The correctness core of WAL shipping (and of the warm standby's takeover
   claim): whatever prefix of the shipped record stream reaches the backup
   before the primary dies, replaying it yields the primary's committed
   queue state as of some ship boundary — never a torn state. Random op
   sequences (enqueues, dequeues, explicit two-phase commits) run against a
   primary QM with a capturing shipper; every prefix of the captured stream
   is replayed into a fresh standby QM and compared against the snapshot
   taken at the largest covered boundary. A cut between a shipped prepare
   and its commit must leave the transaction prepared, not applied. *)
let prop_ha_prefix_consistent =
  QCheck2.Test.make ~name:"ha: shipped-prefix replay is prefix-consistent"
    ~count:60
    QCheck2.Gen.(list_size (int_bound 30) (tup2 (int_bound 5) (int_bound 4)))
    (fun ops ->
      H.run_fiber (fun () ->
          let module Gc = Rrq_wal.Group_commit in
          let disk = Disk.create "p" in
          let qm = Qm.open_qm disk ~name:"qmp" in
          let shipped = ref [] in
          let nship = ref 0 in
          Gc.set_shipper ~sync:true (Qm.group_commit qm) (fun batch ->
              List.iter
                (fun (_, r) ->
                  shipped := r :: !shipped;
                  incr nship)
                batch);
          Qm.create_queue qm "q";
          let h, _ = Qm.register qm ~queue:"q" ~registrant:"p" ~stable:true in
          Gc.force (Qm.group_commit qm);
          let state_of m =
            (* A short prefix may predate the queue-creation record. *)
            match Qm.elements m "q" with
            | els ->
              List.map
                (fun el ->
                  (el.Element.eid, el.Element.payload, el.Element.priority))
                els
            | exception Qm.No_such_queue _ -> []
          in
          let snaps = ref [ (!nship, state_of qm) ] in
          List.iteri
            (fun i (op, prio) ->
              (match op with
              | 0 | 1 | 2 ->
                ignore
                  (Qm.auto_commit qm (fun id ->
                       Qm.enqueue qm id h ~priority:prio
                         (Printf.sprintf "e%d" i)))
              | 3 ->
                ignore
                  (Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.No_wait))
              | _ ->
                (* Explicit two-phase commit: a shipped prepare record with
                   its commit record one or more cuts later. *)
                let id = Txid.make ~origin:"coord" ~inc:1 ~n:(1000 + i) in
                ignore (Qm.enqueue qm id h ~priority:prio (Printf.sprintf "t%d" i));
                let p = Qm.participant qm in
                if p.Tm.p_prepare id ~coordinator:"coord" then
                  ignore (p.Tm.p_commit id));
              snaps := (!nship, state_of qm) :: !snaps)
            ops;
          let records = Array.of_list (List.rev !shipped) in
          let total = Array.length records in
          let expected_at k =
            (* The committed state at the largest ship boundary <= k. *)
            List.fold_left
              (fun (bc, bs) (c, s) -> if c <= k && c > bc then (c, s) else (bc, bs))
              (-1, []) !snaps
            |> snd
          in
          let ok = ref true in
          for k = 0 to total do
            let bqm = Qm.open_qm (Disk.create "b") ~name:"qmb" in
            for i = 0 to k - 1 do
              Qm.standby_apply bqm records.(i)
            done;
            Qm.standby_force bqm;
            if state_of bqm <> expected_at k then begin
              ok := false;
              QCheck2.Test.fail_reportf
                "prefix %d/%d: backup state diverges from the boundary state"
                k total
            end;
            if k = total && Qm.in_doubt bqm <> [] then begin
              ok := false;
              QCheck2.Test.fail_reportf
                "full replay left %d transactions in doubt"
                (List.length (Qm.in_doubt bqm))
            end
          done;
          !ok))

(* --- observability: the registry obeys conservation laws ------------------ *)

(* Random transactional workloads over one TM and one QM. Whatever the mix
   of committed enqueues/dequeues and aborted dequeues (which bump retry
   counts and eventually spill to the error queue), the registry must
   balance: elements are conserved, every begun transaction ends exactly
   once, and spills only happen on aborts. *)
let prop_obs_conservation =
  QCheck2.Test.make ~name:"obs: metrics registry conservation laws" ~count:60
    QCheck2.Gen.(list_size (int_bound 40) (int_bound 5))
    (fun ops ->
      Obs.reset ();
      Fun.protect ~finally:Obs.disable (fun () ->
          H.run_fiber' (fun s ->
              let disk = Disk.create "p" in
              let tm = Tm.open_tm disk ~name:"tmobs" in
              let qm = Qm.open_qm disk ~name:"q" in
              Qm.set_clock qm (fun () -> Sched.now s);
              Qm.create_queue qm
                ~attrs:{ Qm.default_attrs with Qm.retry_limit = 2 }
                "work";
              let h, _ =
                Qm.register qm ~queue:"work" ~registrant:"p" ~stable:false
              in
              List.iter
                (fun op ->
                  let txn = Tm.begin_txn tm in
                  let id = Tm.txn_id txn in
                  Tm.join txn (Qm.participant qm);
                  match op with
                  | 0 | 1 | 2 ->
                    ignore (Qm.enqueue qm id h "payload");
                    ignore (Tm.commit tm txn)
                  | 3 ->
                    ignore (Qm.dequeue qm id h Qm.No_wait);
                    ignore (Tm.commit tm txn)
                  | _ ->
                    ignore (Qm.dequeue qm id h Qm.No_wait);
                    Tm.abort tm txn)
                ops;
              let c = Obs.Metrics.counter in
              let enq = c "qm.enqueues:q" in
              let deq = c "qm.dequeues:q" in
              let kills = c "qm.kills:q" in
              let spills = c "qm.spills:q" in
              let begins = c "tm.begins:tmobs" in
              let commits = c "tm.commits:tmobs" in
              let aborts = c "tm.aborts:tmobs" in
              let depth =
                int_of_float (Obs.Metrics.sum_gauges ~prefix:"qm.depth:q/")
              in
              if enq - deq - kills <> depth then
                QCheck2.Test.fail_reportf
                  "element conservation: enq=%d deq=%d kills=%d but depth=%d"
                  enq deq kills depth
              else if commits + aborts <> begins then
                QCheck2.Test.fail_reportf
                  "txn conservation: begins=%d commits=%d aborts=%d" begins
                  commits aborts
              else if spills > aborts then
                QCheck2.Test.fail_reportf "spills=%d exceed aborts=%d" spills
                  aborts
              else true)))

(* --- shard map: placement is a function, conservation across shards ------ *)

module Shard = Rrq_core.Shard

(* Random shard maps (1..5 shards, random pins, a version chain where later
   versions drop the pins) against random element batches. For every map
   version, every element must route to exactly one shard (the owner is a
   total, deterministic function into the shard list, honoring pins), and
   the per-shard buckets must conserve the batch: summed across shards the
   buckets hold each element exactly once — nothing is lost and nothing is
   placed twice, whichever version is in force. *)
let prop_shard_routing =
  QCheck2.Test.make
    ~name:"shard: every element routes to exactly one shard, per version"
    ~count:200
    QCheck2.Gen.(
      tup4 (int_range 1 5) (int_bound 8) (int_range 1 25) (int_bound 1_000_000))
    (fun (nshards, npins, nelems, salt) ->
      let shards = List.init nshards (Printf.sprintf "n%d") in
      let elems =
        List.init nelems (fun i ->
            Printf.sprintf "req#client%d" ((i * 131) + salt))
      in
      let pins =
        List.filteri (fun i _ -> i < npins) elems
        |> List.mapi (fun i k -> (k, List.nth shards ((i + salt) mod nshards)))
      in
      let v1 =
        {
          Shard.version = 1;
          shards;
          backups = [];
          sharded_queues = [ "req" ];
          pins;
        }
      in
      let versions = [ v1; { v1 with Shard.version = 2; pins = [] } ] in
      List.for_all
        (fun m ->
          (* total + deterministic + pinned *)
          List.for_all
            (fun key ->
              let o = Shard.owner m key in
              if not (List.mem o m.Shard.shards) then
                QCheck2.Test.fail_reportf
                  "v%d: owner of %s is %s, not a shard" m.Shard.version key o
              else if Shard.owner m key <> o then
                QCheck2.Test.fail_reportf "v%d: owner of %s not deterministic"
                  m.Shard.version key
              else
                match (List.assoc_opt key m.Shard.pins, Shard.candidates m key) with
                | Some p, _ when p <> o ->
                  QCheck2.Test.fail_reportf
                    "v%d: pin of %s is %s but owner says %s" m.Shard.version
                    key p o
                | _, c :: _ when c <> o ->
                  QCheck2.Test.fail_reportf
                    "v%d: candidates of %s do not lead with the owner"
                    m.Shard.version key
                | _ -> true)
            elems
          &&
          (* conservation summed across shards *)
          let bucket s = List.filter (fun k -> Shard.owner m k = s) elems in
          let buckets = List.map bucket m.Shard.shards in
          let total = List.fold_left (fun a b -> a + List.length b) 0 buckets in
          if total <> List.length elems then
            QCheck2.Test.fail_reportf
              "v%d: buckets sum to %d, batch has %d elements" m.Shard.version
              total (List.length elems)
          else
            List.for_all
              (fun k ->
                let holders =
                  List.length
                    (List.filter (List.exists (String.equal k)) buckets)
                in
                holders = 1
                || QCheck2.Test.fail_reportf
                     "v%d: element %s held by %d shards" m.Shard.version k
                     holders)
              elems)
        versions)

(* Umbrella-module smoke: the [Rrq] re-exports resolve and link. *)
let test_umbrella_links () =
  Alcotest.(check bool) "filter through the umbrella" true
    (Rrq.Filter.matches Rrq.Filter.True
       (Rrq.Element.make ~eid:1L ~payload:"x" ~props:[] ~priority:0
          ~enq_time:0.0));
  Alcotest.(check string) "txid through the umbrella" "n.1.2"
    (Rrq.Txid.to_string (Rrq.Txid.make ~origin:"n" ~inc:1 ~n:2))

let () =
  Alcotest.run "rrq-properties"
    [
      ( "locks",
        [
          QCheck_alcotest.to_alcotest prop_lock_compatibility;
          QCheck_alcotest.to_alcotest prop_lock_try_acquire_grants;
        ] );
      ( "qm",
        [
          QCheck_alcotest.to_alcotest prop_qm_dequeue_order;
          QCheck_alcotest.to_alcotest prop_qm_rank_max;
        ] );
      ("ha", [ QCheck_alcotest.to_alcotest prop_ha_prefix_consistent ]);
      ("shard", [ QCheck_alcotest.to_alcotest prop_shard_routing ]);
      ("obs", [ QCheck_alcotest.to_alcotest prop_obs_conservation ]);
      ("umbrella", [ Alcotest.test_case "links" `Quick test_umbrella_links ]);
      ( "codecs",
        [
          QCheck_alcotest.to_alcotest prop_envelope_roundtrip;
          QCheck_alcotest.to_alcotest prop_tag_roundtrip;
          QCheck_alcotest.to_alcotest prop_filter_codec_semantics;
          QCheck_alcotest.to_alcotest prop_element_roundtrip;
        ] );
    ]
