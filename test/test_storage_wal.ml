(* Tests for the simulated disk and the write-ahead log, including crash
   and torn-write recovery properties. *)

module Disk = Rrq_storage.Disk
module Wal = Rrq_wal.Wal
module Rng = Rrq_util.Rng
module Codec = Rrq_util.Codec

(* --- Disk ---------------------------------------------------------- *)

let test_disk_sync_survives_crash () =
  let d = Disk.create "d0" in
  let f = Disk.open_file d "a" in
  Disk.append f "hello";
  Disk.sync f;
  Disk.append f "lost";
  Alcotest.(check string) "pre-crash read sees all" "hellolost" (Disk.read f);
  Disk.crash d;
  Alcotest.(check string) "post-crash only synced" "hello" (Disk.read f)

let test_disk_atomic_replace () =
  let d = Disk.create "d0" in
  Disk.replace_atomic d "ck" "v1";
  Disk.crash d;
  Alcotest.(check (option string)) "atomic replace durable" (Some "v1")
    (Disk.read_file d "ck");
  Disk.replace_atomic d "ck" "v2";
  Alcotest.(check (option string)) "replaced" (Some "v2") (Disk.read_file d "ck")

let test_disk_delete_and_list () =
  let d = Disk.create "d0" in
  ignore (Disk.open_file d "x");
  ignore (Disk.open_file d "y");
  Alcotest.(check (list string)) "listed" [ "x"; "y" ] (Disk.list_files d);
  Disk.delete d "x";
  Alcotest.(check bool) "gone" false (Disk.exists d "x")

let test_disk_counters () =
  let d = Disk.create "d0" in
  let f = Disk.open_file d "a" in
  Disk.append f "12345";
  Disk.sync f;
  Alcotest.(check int) "synced bytes" 5 (Disk.synced_bytes d);
  Alcotest.(check int) "sync count" 1 (Disk.sync_count d);
  Disk.reset_counters d;
  Alcotest.(check int) "reset" 0 (Disk.synced_bytes d)

(* --- WAL ----------------------------------------------------------- *)

let test_wal_roundtrip () =
  let d = Disk.create "d0" in
  let w, r0 = Wal.open_log d ~name:"log" in
  Alcotest.(check (option string)) "fresh: no snapshot" None r0.Wal.snapshot;
  Alcotest.(check (list string)) "fresh: no records" [] r0.Wal.records;
  Wal.append w "one";
  Wal.append w "two";
  Wal.sync w;
  let _, r1 = Wal.open_log d ~name:"log" in
  Alcotest.(check (list string)) "recovered" [ "one"; "two" ] r1.Wal.records

let test_wal_unsynced_lost () =
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  Wal.append_sync w "durable";
  Wal.append w "volatile";
  Disk.crash d;
  let _, r = Wal.open_log d ~name:"log" in
  Alcotest.(check (list string)) "only synced survives" [ "durable" ] r.Wal.records

let test_wal_checkpoint_truncates () =
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  Wal.append_sync w "a";
  Wal.append_sync w "b";
  Wal.checkpoint w "SNAP";
  Wal.append_sync w "c";
  let _, r = Wal.open_log d ~name:"log" in
  Alcotest.(check (option string)) "snapshot" (Some "SNAP") r.Wal.snapshot;
  Alcotest.(check (list string)) "post-ckpt records only" [ "c" ] r.Wal.records

let test_wal_since_checkpoint_counter () =
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  Wal.append_sync w "a";
  Alcotest.(check int) "one" 1 (Wal.records_since_checkpoint w);
  Wal.checkpoint w "s";
  Alcotest.(check int) "zero" 0 (Wal.records_since_checkpoint w)

let test_wal_append_after_recovery () =
  let d = Disk.create "d0" in
  let w1, _ = Wal.open_log d ~name:"log" in
  Wal.append_sync w1 "a";
  Disk.crash d;
  let w2, r = Wal.open_log d ~name:"log" in
  Alcotest.(check (list string)) "a recovered" [ "a" ] r.Wal.records;
  Wal.append_sync w2 "b";
  let _, r2 = Wal.open_log d ~name:"log" in
  Alcotest.(check (list string)) "both" [ "a"; "b" ] r2.Wal.records

let test_wal_torn_tail_truncated () =
  (* Write a frame, then corrupt its tail manually by syncing only part of
     it: emulate by appending garbage that is not a valid frame. *)
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  Wal.append_sync w "good";
  (* A torn half-frame at the durable tail: *)
  let f = Disk.open_file d "log.seg0" in
  Disk.append f "\x99\x00\x00garbage";
  Disk.sync f;
  let w2, r = Wal.open_log d ~name:"log" in
  Alcotest.(check (list string)) "good record kept" [ "good" ] r.Wal.records;
  Wal.append_sync w2 "after";
  let _, r2 = Wal.open_log d ~name:"log" in
  Alcotest.(check (list string)) "log usable after torn tail" [ "good"; "after" ]
    r2.Wal.records

let test_wal_segment_gc () =
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  for i = 1 to 5 do
    Wal.append_sync w (Printf.sprintf "r%d" i)
  done;
  let files_before = List.length (Disk.list_files d) in
  Wal.checkpoint w "S1";
  Wal.append_sync w "r6";
  Wal.checkpoint w "S2";
  Wal.append_sync w "r7";
  (* old segments must have been deleted *)
  let seg_files =
    List.filter
      (fun f -> String.length f > 7 && String.sub f 0 7 = "log.seg")
      (Disk.list_files d)
  in
  Alcotest.(check int) "exactly one live segment" 1 (List.length seg_files);
  Alcotest.(check bool) "file count bounded" true
    (List.length (Disk.list_files d) <= files_before + 1);
  let _, r = Wal.open_log d ~name:"log" in
  Alcotest.(check (option string)) "latest snapshot" (Some "S2") r.Wal.snapshot;
  Alcotest.(check (list string)) "post-ckpt records" [ "r7" ] r.Wal.records

let test_disk_file_size () =
  let d = Disk.create "d0" in
  Alcotest.(check (option int)) "missing file" None (Disk.file_size d "nope");
  let f = Disk.open_file d "a" in
  Disk.append f "12345";
  Alcotest.(check (option int)) "pending counted" (Some 5) (Disk.file_size d "a");
  Disk.sync f;
  Disk.append f "67";
  Alcotest.(check (option int)) "durable+pending" (Some 7) (Disk.file_size d "a")

let test_wal_lsn_split () =
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  Alcotest.(check (pair int int)) "fresh" (0, 0)
    (Wal.appended_lsn w, Wal.durable_lsn w);
  Wal.append w "a";
  Wal.append w "b";
  Alcotest.(check (pair int int)) "appends buffer" (2, 0)
    (Wal.appended_lsn w, Wal.durable_lsn w);
  Wal.sync w;
  Alcotest.(check (pair int int)) "sync catches up" (2, 2)
    (Wal.appended_lsn w, Wal.durable_lsn w);
  Wal.append w "c";
  (* A checkpoint snapshot covers applied-but-unsynced records (commit
     paths apply before yielding), so it advances the durable LSN too. *)
  Wal.checkpoint w "S";
  Alcotest.(check (pair int int)) "checkpoint is a force" (3, 3)
    (Wal.appended_lsn w, Wal.durable_lsn w);
  Wal.append w "d";
  Disk.kill_after_syncs d 1;
  Wal.sync w;
  Alcotest.(check bool) "disk died on the sync" true (Disk.is_dead d);
  Alcotest.(check (pair int int)) "suppressed sync moves nothing" (4, 3)
    (Wal.appended_lsn w, Wal.durable_lsn w)

(* Recovery over a log spread across many segments (each reopen retires the
   active segment) must return every record in order — and do it in time
   linear in the log, not quadratic (the old accumulate-with-[@] scan). *)
let test_wal_multi_segment_recovery () =
  let d = Disk.create "d0" in
  let n_opens = 40 and per = 25 in
  for s = 0 to n_opens - 1 do
    let w, _ = Wal.open_log d ~name:"log" in
    for i = 1 to per do
      Wal.append_sync w (Printf.sprintf "s%d-%d" s i)
    done
  done;
  let t0 = Sys.time () in
  let _, r = Wal.open_log d ~name:"log" in
  let dt = Sys.time () -. t0 in
  Alcotest.(check int) "all records recovered" (n_opens * per)
    (List.length r.Wal.records);
  Alcotest.(check (option string)) "in order, oldest first" (Some "s0-1")
    (List.nth_opt r.Wal.records 0);
  Alcotest.(check (option string))
    "in order, newest last"
    (Some (Printf.sprintf "s%d-%d" (n_opens - 1) per))
    (List.nth_opt r.Wal.records ((n_opens * per) - 1));
  Alcotest.(check bool)
    (Printf.sprintf "recovery fast enough (%.3fs)" dt)
    true (dt < 2.0)

let test_wal_checkpoint_one_live_segment () =
  let d = Disk.create "d0" in
  let seg_files () =
    List.filter
      (fun f -> String.length f > 7 && String.sub f 0 7 = "log.seg")
      (Disk.list_files d)
  in
  let w, _ = Wal.open_log d ~name:"log" in
  for i = 1 to 5 do
    Wal.append_sync w (Printf.sprintf "r%d" i)
  done;
  Wal.checkpoint w "S1";
  Alcotest.(check int) "checkpoint leaves exactly one live segment" 1
    (List.length (seg_files ()));
  (* A crash between checkpoint install and segment deletion leaves stale
     pre-checkpoint segments behind; recovery must drop them unscanned.
     Resurrect one by hand (with garbage, so scanning it would show). *)
  let stale = Disk.open_file d "log.seg0" in
  Disk.append stale "\x99\x99garbage-not-a-frame";
  Disk.sync stale;
  Disk.crash d;
  let w2, r = Wal.open_log d ~name:"log" in
  Alcotest.(check (option string)) "snapshot survives" (Some "S1") r.Wal.snapshot;
  Alcotest.(check (list string)) "no pre-checkpoint records" [] r.Wal.records;
  Alcotest.(check bool) "stale segment deleted" false (Disk.exists d "log.seg0");
  Wal.append_sync w2 "r6";
  Wal.checkpoint w2 "S2";
  Alcotest.(check int) "still exactly one live segment" 1
    (List.length (seg_files ()))

let test_wal_crash_during_checkpoint_install () =
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  for i = 1 to 5 do
    Wal.append_sync w (Printf.sprintf "r%d" i)
  done;
  (* The next durability action is the checkpoint's atomic install: the
     crash voids the whole checkpoint, and recovery falls back to the log. *)
  Disk.kill_after_syncs d 1;
  Wal.checkpoint w "S1";
  Alcotest.(check bool) "died installing the checkpoint" true (Disk.is_dead d);
  Disk.revive d;
  let w2, r = Wal.open_log d ~name:"log" in
  Alcotest.(check (option string)) "no snapshot installed" None r.Wal.snapshot;
  Alcotest.(check (list string)) "all records recovered from segments"
    [ "r1"; "r2"; "r3"; "r4"; "r5" ]
    r.Wal.records;
  (* The incarnation recovers fully: a later checkpoint compacts as usual. *)
  Wal.checkpoint w2 "S2";
  Wal.append_sync w2 "r6";
  let seg_files =
    List.filter
      (fun f -> String.length f > 7 && String.sub f 0 7 = "log.seg")
      (Disk.list_files d)
  in
  Alcotest.(check int) "recovered checkpoint leaves one live segment" 1
    (List.length seg_files);
  let _, r2 = Wal.open_log d ~name:"log" in
  Alcotest.(check (option string)) "snapshot" (Some "S2") r2.Wal.snapshot;
  Alcotest.(check (list string)) "post-ckpt records" [ "r6" ] r2.Wal.records

let test_wal_live_log_bytes_shrinks () =
  let d = Disk.create "d0" in
  let w, _ = Wal.open_log d ~name:"log" in
  for _ = 1 to 50 do
    Wal.append_sync w (String.make 100 'x')
  done;
  let before = Wal.live_log_bytes w in
  Wal.checkpoint w "snap";
  Alcotest.(check bool) "log shrank" true (Wal.live_log_bytes w < before / 10)

(* Property: for any interleaving of appends/syncs/crashes, recovery yields
   a prefix of the appended records that includes every synced record. *)
let prop_wal_prefix_durability =
  QCheck2.Test.make ~name:"wal recovers synced-prefix" ~count:200
    QCheck2.Gen.(list_size (int_bound 60) (int_range 0 2))
    (fun script ->
      let d = Disk.create ~torn_writes:true ~rng:(Rng.create 7) "d" in
      let w = ref (fst (Wal.open_log d ~name:"log")) in
      let appended = ref [] in
      let synced_hwm = ref 0 in
      let n = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            incr n;
            let r = Printf.sprintf "r%d" !n in
            Wal.append !w r;
            appended := !appended @ [ r ]
          | 1 ->
            Wal.sync !w;
            synced_hwm := List.length !appended
          | _ ->
            Disk.crash d;
            let w', rec_ = Wal.open_log d ~name:"log" in
            w := w';
            (* Recovered records must be a prefix of appended covering all
               synced ones. *)
            let recs = rec_.Wal.records in
            let len = List.length recs in
            if len < !synced_hwm then failwith "lost synced record";
            if len > List.length !appended then failwith "phantom record";
            List.iteri
              (fun i r ->
                if List.nth !appended i <> r then failwith "order mismatch")
              recs;
            appended := recs;
            synced_hwm := len)
        script;
      true)

let suite =
  [
    Alcotest.test_case "disk: sync survives crash" `Quick
      test_disk_sync_survives_crash;
    Alcotest.test_case "disk: atomic replace" `Quick test_disk_atomic_replace;
    Alcotest.test_case "disk: delete/list" `Quick test_disk_delete_and_list;
    Alcotest.test_case "disk: counters" `Quick test_disk_counters;
    Alcotest.test_case "wal: roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: unsynced lost" `Quick test_wal_unsynced_lost;
    Alcotest.test_case "wal: checkpoint truncates" `Quick
      test_wal_checkpoint_truncates;
    Alcotest.test_case "wal: since-checkpoint counter" `Quick
      test_wal_since_checkpoint_counter;
    Alcotest.test_case "wal: append after recovery" `Quick
      test_wal_append_after_recovery;
    Alcotest.test_case "wal: torn tail truncated" `Quick
      test_wal_torn_tail_truncated;
    Alcotest.test_case "wal: segment gc" `Quick test_wal_segment_gc;
    Alcotest.test_case "disk: file_size metadata" `Quick test_disk_file_size;
    Alcotest.test_case "wal: append/durable lsn split" `Quick
      test_wal_lsn_split;
    Alcotest.test_case "wal: multi-segment recovery" `Quick
      test_wal_multi_segment_recovery;
    Alcotest.test_case "wal: checkpoint leaves one live segment" `Quick
      test_wal_checkpoint_one_live_segment;
    Alcotest.test_case "wal: crash during checkpoint install" `Quick
      test_wal_crash_during_checkpoint_install;
    Alcotest.test_case "wal: live bytes shrink at checkpoint" `Quick
      test_wal_live_log_bytes_shrinks;
    QCheck_alcotest.to_alcotest prop_wal_prefix_durability;
  ]

(* --- Codec --------------------------------------------------------- *)

let test_codec_roundtrip () =
  let e = Codec.encoder () in
  Codec.int e 42;
  Codec.i64 e (-7L);
  Codec.bool e true;
  Codec.float e 3.25;
  Codec.string e "hello";
  Codec.option Codec.string e None;
  Codec.option Codec.int e (Some 9);
  Codec.list Codec.string e [ "a"; "b" ];
  Codec.pair Codec.int Codec.string e (1, "x");
  let d = Codec.decoder (Codec.to_string e) in
  Alcotest.(check int) "int" 42 (Codec.get_int d);
  Alcotest.(check int64) "i64" (-7L) (Codec.get_i64 d);
  Alcotest.(check bool) "bool" true (Codec.get_bool d);
  Alcotest.(check (float 0.0)) "float" 3.25 (Codec.get_float d);
  Alcotest.(check string) "string" "hello" (Codec.get_string d);
  Alcotest.(check (option string)) "none" None (Codec.get_option Codec.get_string d);
  Alcotest.(check (option int)) "some" (Some 9) (Codec.get_option Codec.get_int d);
  Alcotest.(check (list string)) "list" [ "a"; "b" ] (Codec.get_list Codec.get_string d);
  let p = Codec.get_pair Codec.get_int Codec.get_string d in
  Alcotest.(check (pair int string)) "pair" (1, "x") p;
  Alcotest.(check bool) "at end" true (Codec.at_end d)

let test_codec_truncated () =
  let d = Codec.decoder "\x01" in
  Alcotest.check_raises "truncated i64"
    (Codec.Decode_error "truncated input at 0 (+8 > 1)") (fun () ->
      ignore (Codec.get_i64 d))

let prop_codec_string_roundtrip =
  QCheck2.Test.make ~name:"codec string roundtrip" ~count:200
    QCheck2.Gen.(list_size (int_bound 20)
                   (string_size ~gen:printable (int_bound 40)))
    (fun ss ->
      let e = Codec.encoder () in
      Codec.list Codec.string e ss;
      let d = Codec.decoder (Codec.to_string e) in
      Codec.get_list Codec.get_string d = ss && Codec.at_end d)

let codec_suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec truncated input" `Quick test_codec_truncated;
    QCheck_alcotest.to_alcotest prop_codec_string_roundtrip;
  ]

(* --- Rng / Histogram ----------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 42 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let f = Rng.float r 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.fail "float out of bounds";
    let z = Rng.zipf r ~n:100 ~theta:0.9 in
    if z < 0 || z >= 100 then Alcotest.fail "zipf out of bounds"
  done

let test_rng_zipf_skew () =
  let r = Rng.create 7 in
  let hits = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let z = Rng.zipf r ~n:100 ~theta:0.9 in
    hits.(z) <- hits.(z) + 1
  done;
  Alcotest.(check bool) "head is hot" true (hits.(0) > hits.(50) * 5)

let test_histogram () =
  let h = Rrq_util.Histogram.create () in
  for i = 1 to 100 do
    Rrq_util.Histogram.add h (float_of_int i)
  done;
  let open Rrq_util.Histogram in
  Alcotest.(check int) "count" 100 (count h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (mean h);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (percentile h 0.99);
  Alcotest.(check (float 1e-9)) "max" 100.0 (max_value h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (min_value h)

let test_table_render () =
  let t = Rrq_util.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Rrq_util.Table.add_row t [ "1"; "2" ];
  let s = Rrq_util.Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 6 = "== T =")

let util_suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng zipf skew" `Quick test_rng_zipf_skew;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]

let () =
  Alcotest.run "rrq-storage-wal"
    [ ("disk+wal", suite); ("codec", codec_suite); ("util", util_suite) ]
