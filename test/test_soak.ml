(* Seeded mini-soaks inside the regular test suite: random crash/partition
   schedules against the single-site system model and the 3-site transfer
   chain. The full-size version is `rrq_demo soak`; the extended seed lists
   here are tagged `Slow (skipped under ALCOTEST_QUICK_TESTS=1). *)

module E_soak = Rrq_harness.E_soak

let check_ok tag (r : E_soak.result) =
  Alcotest.(check int) (tag ^ ": nothing lost") 0 r.E_soak.lost;
  Alcotest.(check int) (tag ^ ": nothing duplicated") 0 r.E_soak.duplicated;
  Alcotest.(check int)
    (tag ^ ": every reply delivered")
    r.E_soak.requests r.E_soak.replies

let request_soak seeds () =
  List.iter
    (fun seed ->
      let r =
        E_soak.run ~seed ~clients:4 ~per_client:5 ~drop:0.08 ~crash_mean:3.0 ()
      in
      check_ok (Printf.sprintf "seed %d" seed) r)
    seeds

let chain_soak seeds () =
  List.iter
    (fun seed ->
      let r = E_soak.run_chain ~seed ~transfers:4 () in
      check_ok (Printf.sprintf "chain seed %d" seed) r)
    seeds

(* The soak is a deterministic simulation: the same seed must produce the
   same result record, field for field — the regression guard for the whole
   record/replay machinery underneath (any hidden nondeterminism in the
   scheduler, RNG plumbing or fault injection shows up here first). *)
let test_determinism () =
  let run () = E_soak.run ~seed:77 ~clients:3 ~per_client:4 ~drop:0.1 () in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "identical result records" true (r1 = r2);
  let c1 = E_soak.run_chain ~seed:78 () and c2 = E_soak.run_chain ~seed:78 () in
  Alcotest.(check bool) "identical chain result records" true (c1 = c2)

let () =
  Alcotest.run "rrq-soak"
    [
      ( "soak",
        [
          Alcotest.test_case "request soak (seed 101)" `Quick
            (request_soak [ 101 ]);
          Alcotest.test_case "chain soak (seed 201)" `Quick (chain_soak [ 201 ]);
          Alcotest.test_case "same seed, same record" `Quick test_determinism;
          Alcotest.test_case "request soak (extended seeds)" `Slow
            (request_soak [ 102; 103 ]);
          Alcotest.test_case "chain soak (extended seeds)" `Slow
            (chain_soak [ 202 ]);
        ] );
    ]
