(* Seeded mini-soaks inside the regular test suite: random crash/partition
   schedules against the single-site system model and the 3-site transfer
   chain. The full-size version is `rrq_demo soak`. *)

module E_soak = Rrq_harness.E_soak

let check_ok tag (r : E_soak.result) =
  Alcotest.(check int) (tag ^ ": nothing lost") 0 r.E_soak.lost;
  Alcotest.(check int) (tag ^ ": nothing duplicated") 0 r.E_soak.duplicated;
  Alcotest.(check int)
    (tag ^ ": every reply delivered")
    r.E_soak.requests r.E_soak.replies

let test_request_soak () =
  List.iter
    (fun seed ->
      let r =
        E_soak.run ~seed ~clients:4 ~per_client:5 ~drop:0.08 ~crash_mean:3.0 ()
      in
      check_ok (Printf.sprintf "seed %d" seed) r)
    [ 101; 102; 103 ]

let test_chain_soak () =
  List.iter
    (fun seed ->
      let r = E_soak.run_chain ~seed ~transfers:4 ()
      in
      check_ok (Printf.sprintf "chain seed %d" seed) r)
    [ 201; 202 ]

let () =
  Alcotest.run "rrq-soak"
    [
      ( "soak",
        [
          Alcotest.test_case "request soak (3 seeds)" `Quick test_request_soak;
          Alcotest.test_case "chain soak (2 seeds)" `Quick test_chain_soak;
        ] );
    ]
