(* Tests for the upper request-management layer: the fig. 1/2 client
   machinery, multi-transaction pipelines with saga cancellation,
   interactive requests (both implementations), the store-and-forward
   daemon and threshold-driven server scaling. *)

module Sched = Rrq_sim.Sched
module Rng = Rrq_util.Rng
module Net = Rrq_net.Net
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Server = Rrq_core.Server
module Session = Rrq_core.Session
module Fsm = Rrq_core.Client_fsm
module Envelope = Rrq_core.Envelope
module Pipeline = Rrq_core.Pipeline
module Interactive = Rrq_core.Interactive
module Forwarder = Rrq_core.Forwarder
module Autoscale = Rrq_core.Autoscale
module H = Rrq_test_support.Sim_harness

(* --- client FSM (fig. 1 / fig. 7) -------------------------------------- *)

let test_fsm_legal_traces () =
  let ok trace = Alcotest.(check bool) "legal" true (Fsm.run trace <> None) in
  ok [ Fsm.Connect_fresh; Send; Receive_reply; Send; Receive_reply; Disconnect ];
  ok [ Fsm.Connect_req_sent; Receive_reply; Disconnect ];
  ok [ Fsm.Connect_reply_recvd; Rereceive; Send; Receive_reply; Disconnect ];
  (* fig. 7: interactive cycle *)
  ok
    [
      Fsm.Connect_fresh;
      Send;
      Receive_intermediate;
      Send_intermediate;
      Receive_intermediate;
      Send_intermediate;
      Receive_reply;
      Disconnect;
    ]

let test_fsm_illegal_traces () =
  let bad trace = Alcotest.(check bool) "illegal" true (Fsm.run trace = None) in
  bad [ Fsm.Send ];
  bad [ Fsm.Connect_fresh; Receive_reply ];
  bad [ Fsm.Connect_fresh; Send; Send ];
  bad [ Fsm.Connect_fresh; Send; Disconnect ];
  bad [ Fsm.Connect_fresh; Send_intermediate ]

let prop_fsm_legal_events_step =
  QCheck2.Test.make ~name:"fsm: legal_events matches step" ~count:200
    QCheck2.Gen.(list_size (int_bound 12) (int_bound 8))
    (fun trace_ints ->
      let all = Array.of_list (Fsm.legal_events Fsm.Disconnected @ [] ) in
      ignore all;
      let events =
        [|
          Fsm.Connect_fresh;
          Fsm.Connect_req_sent;
          Fsm.Connect_reply_recvd;
          Fsm.Send;
          Fsm.Receive_reply;
          Fsm.Rereceive;
          Fsm.Receive_intermediate;
          Fsm.Send_intermediate;
          Fsm.Disconnect;
        |]
      in
      let state = ref (Some Fsm.initial) in
      List.for_all
        (fun i ->
          match !state with
          | None -> true
          | Some s ->
            let e = events.(i) in
            let next = Fsm.step s e in
            let listed = List.mem e (Fsm.legal_events s) in
            state := next;
            (next <> None) = listed)
        trace_ints)

(* --- session (fig. 2) --------------------------------------------------- *)

(* Standard rig shared with the session tests: backend + counting server +
   a simulated ticket printer as the client's testable output device. *)
let session_rig s =
  let net = Net.create s (Rng.create 7) in
  let backend_node = Net.make_node net "backend" in
  let backend =
    Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
      backend_node
  in
  let _server =
    Server.start backend ~req_queue:"req" (fun site txn env ->
        ignore
          (Kvdb.add (Site.kv site) (Tm.txn_id txn)
             ("exec:" ^ env.Envelope.rid) 1);
        Server.Reply ("ok:" ^ env.Envelope.rid))
  in
  let client_node = Net.make_node net "client" in
  (net, backend, client_node)

let ticket_printer () =
  let printed = ref [] in
  let state () = string_of_int (List.length !printed) in
  let print (env : Envelope.t) = printed := env.Envelope.rid :: !printed in
  (printed, state, print)

let session_config ~n ~state ~print =
  {
    Session.default_config with
    next_request =
      (fun seq ->
        if seq <= n then Some (Session.rid_of_seq seq, Printf.sprintf "job%d" seq)
        else None);
    process_reply = print;
    device_state = state;
    (* One ticket per request: the printed count tells the user where to
       resume even after a post-Disconnect crash (paper 11). *)
    resume_seq = (fun () -> int_of_string (state ()) + 1);
    receive_timeout = 5.0;
  }

let new_clerk client_node =
  Clerk.connect ~client_node ~system:"backend" ~client_id:"alice"
    ~req_queue:"req" ()

let test_session_fresh_run () =
  let outcome = ref None in
  let _ =
    H.run (fun s ->
        let _, _, client_node = session_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ = new_clerk client_node in
               let printed, state, print = ticket_printer () in
               let o = Session.run clerk (session_config ~n:3 ~state ~print) in
               outcome := Some (o, List.length !printed))))
  in
  match !outcome with
  | Some (o, tickets) ->
    Alcotest.(check (list string)) "sent all" [ "r1"; "r2"; "r3" ] o.Session.sent;
    Alcotest.(check bool) "no resync" true (o.Session.resynced = `None);
    Alcotest.(check int) "3 tickets printed" 3 tickets
  | None -> Alcotest.fail "session did not complete"

(* Crash the client at various points; the next incarnation must finish the
   work list with every ticket printed exactly once. *)
let session_crash_scenario ~kill_at =
  let total_tickets = ref (-1) in
  let resync = ref `None in
  let completed = ref false in
  let _ =
    H.run (fun s ->
        let _, _, client_node = session_rig s in
        (* The printer device survives client crashes (it is external). *)
        let printed, state, print = ticket_printer () in
        ignore
          (Sched.spawn s ~group:"client1" ~name:"alice-1" (fun () ->
               let clerk, _ = new_clerk client_node in
               (match Session.run clerk (session_config ~n:4 ~state ~print) with
               | _ -> completed := true
               | exception _ -> ());
               total_tickets := List.length !printed));
        Sched.at s kill_at (fun () -> Sched.kill_group s "client1");
        Sched.at s (kill_at +. 1.0) (fun () ->
            (* A user restarts the client only if the work wasn't done. *)
            if not !completed then
              ignore
                (Sched.spawn s ~group:"client2" ~name:"alice-2" (fun () ->
                     let clerk, _ = new_clerk client_node in
                     let o =
                       Session.run clerk (session_config ~n:4 ~state ~print)
                     in
                     resync := o.Session.resynced;
                     total_tickets := List.length !printed))))
  in
  (!total_tickets, !resync)

let test_session_crash_early () =
  (* Crash almost immediately: whatever happened, the second incarnation
     finishes with exactly 4 tickets. *)
  let tickets, _ = session_crash_scenario ~kill_at:0.012 in
  Alcotest.(check int) "exactly 4 tickets" 4 tickets

let test_session_crash_midway () =
  let tickets, _ = session_crash_scenario ~kill_at:0.05 in
  Alcotest.(check int) "exactly 4 tickets" 4 tickets

let test_session_crash_many_points () =
  (* Sweep the kill time across the whole run: the invariant must hold at
     every crash point (this is the fig. 2 argument, exhaustively). *)
  List.iter
    (fun kill_at ->
      let tickets, _ = session_crash_scenario ~kill_at in
      Alcotest.(check int)
        (Printf.sprintf "exactly 4 tickets (kill at %.3f)" kill_at)
        4 tickets)
    [ 0.02; 0.03; 0.04; 0.06; 0.08; 0.1; 0.15; 0.2 ]

(* --- pipeline (fig. 6) --------------------------------------------------- *)

(* The paper's running example: a funds transfer as debit / credit / log,
   across three sites. *)
type transfer_rig = {
  site_a : Site.t;
  site_b : Site.t;
  site_c : Site.t;
  pipeline : Pipeline.t;
  client_node : Net.node;
}

let amount = 100

let transfer_stages site_a site_b site_c =
  [
    {
      Pipeline.stage_site = site_a;
      in_queue = "debit";
      work =
        (fun site txn env ->
          let kv = Site.kv site in
          let id = Tm.txn_id txn in
          ignore (Kvdb.add kv id "acct:src" (-amount));
          (env.Envelope.body, "debited"));
      compensate =
        Some
          (fun site txn _env ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "acct:src" amount));
    };
    {
      Pipeline.stage_site = site_b;
      in_queue = "credit";
      work =
        (fun site txn env ->
          let kv = Site.kv site in
          let id = Tm.txn_id txn in
          ignore (Kvdb.add kv id "acct:dst" amount);
          (env.Envelope.body, env.Envelope.scratch ^ "+credited"));
      compensate =
        Some
          (fun site txn _env ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "acct:dst" (-amount)));
    };
    {
      Pipeline.stage_site = site_c;
      in_queue = "clear";
      work =
        (fun site txn env ->
          let kv = Site.kv site in
          let id = Tm.txn_id txn in
          ignore (Kvdb.add kv id "cleared" 1);
          ("transfer-complete:" ^ env.Envelope.rid, ""));
      compensate =
        Some
          (fun site txn _env ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "cleared" (-1)));
    };
  ]

let make_transfer_rig s =
  let net = Net.create s (Rng.create 11) in
  let site_a = Site.create ~stale_timeout:3.0 (Net.make_node net "bankA") in
  let site_b = Site.create ~stale_timeout:3.0 (Net.make_node net "bankB") in
  let site_c = Site.create ~stale_timeout:3.0 (Net.make_node net "clearing") in
  let pipeline = Pipeline.install (transfer_stages site_a site_b site_c) in
  let client_node = Net.make_node net "client" in
  (* initial funding *)
  Site.with_txn site_a (fun txn ->
      Kvdb.put (Site.kv site_a) (Tm.txn_id txn) "acct:src" "1000");
  { site_a; site_b; site_c; pipeline; client_node }

let balance site key =
  match Kvdb.committed_value (Site.kv site) key with
  | Some s -> int_of_string s
  | None -> 0

let transfer_clerk rig ?(client_id = "alice") () =
  Clerk.connect ~client_node:rig.client_node
    ~system:(Pipeline.entry_site rig.pipeline)
    ~client_id
    ~req_queue:(Pipeline.entry_queue rig.pipeline)
    ()

let test_pipeline_transfer () =
  let done_ = ref false in
  let _ =
    H.run (fun s ->
        let rig = ref None in
        ignore
          (Sched.spawn s ~name:"setup" (fun () ->
               rig := Some (make_transfer_rig s);
               let rg = Option.get !rig in
               ignore
                 (Sched.fork ~name:"alice" (fun () ->
                      let clerk, _ = transfer_clerk rg () in
                      match Clerk.transceive clerk ~rid:"t1" "xfer" with
                      | Some reply ->
                        Alcotest.(check string) "reply" "transfer-complete:t1"
                          reply.Envelope.body;
                        Alcotest.(check int) "src debited" 900
                          (balance rg.site_a "acct:src");
                        Alcotest.(check int) "dst credited" 100
                          (balance rg.site_b "acct:dst");
                        Alcotest.(check int) "cleared" 1
                          (balance rg.site_c "cleared");
                        done_ := true
                      | None -> Alcotest.fail "no reply")))))
  in
  Alcotest.(check bool) "completed" true !done_

let test_pipeline_survives_stage_crash () =
  (* Crash the middle site while transfers are in flight; the chain cannot
     be broken (paper 6): every transfer completes exactly once. *)
  let done_ = ref 0 in
  let rigref = ref None in
  let _ =
    H.run (fun s ->
        ignore
          (Sched.spawn s ~name:"setup" (fun () ->
               let rg = make_transfer_rig s in
               rigref := Some rg;
               Sched.at s 0.5 (fun () -> Site.crash_restart rg.site_b ~after:4.0);
               for i = 1 to 3 do
                 ignore
                   (Sched.fork ~name:(Printf.sprintf "cl%d" i) (fun () ->
                        let clerk, _ =
                          transfer_clerk rg
                            ~client_id:(Printf.sprintf "alice%d" i) ()
                        in
                        let rid = Printf.sprintf "t%d" i in
                        let rec go n =
                          if n > 40 then Alcotest.fail "transfer stuck"
                          else begin
                            ignore (Clerk.send clerk ~rid "xfer");
                            match Clerk.receive clerk ~timeout:5.0 () with
                            | Some _ -> incr done_
                            | None -> go (n + 1)
                          end
                        in
                        go 0))
               done)))
  in
  let rg = Option.get !rigref in
  Alcotest.(check int) "all transfers done" 3 !done_;
  Alcotest.(check int) "src" (1000 - (3 * amount)) (balance rg.site_a "acct:src");
  Alcotest.(check int) "dst" (3 * amount) (balance rg.site_b "acct:dst");
  Alcotest.(check int) "cleared" 3 (balance rg.site_c "cleared")

let test_pipeline_cancel_compensates () =
  (* Cancel after completion: the saga runs compensations in reverse and
     restores all balances (paper 7). *)
  let final = ref None in
  let rigref = ref None in
  let _ =
    H.run (fun s ->
        ignore
          (Sched.spawn s ~name:"setup" (fun () ->
               let rg = make_transfer_rig s in
               rigref := Some rg;
               ignore
                 (Sched.fork ~name:"alice" (fun () ->
                      let clerk, _ = transfer_clerk rg () in
                      (match Clerk.transceive clerk ~rid:"t1" "xfer" with
                      | Some _ -> ()
                      | None -> Alcotest.fail "transfer failed");
                      (* too late for Kill_element: the request finished *)
                      Alcotest.(check bool) "kill fails after completion" false
                        (Clerk.cancel_last_request clerk);
                      (* saga cancellation instead *)
                      let cancel_clerk, _ =
                        Clerk.connect ~client_node:rg.client_node
                          ~system:(Pipeline.cancel_site rg.pipeline)
                          ~client_id:"alice-cancel"
                          ~req_queue:(Pipeline.cancel_queue rg.pipeline)
                          ()
                      in
                      match Clerk.transceive cancel_clerk ~rid:"c1" "t1" with
                      | Some reply -> final := Some reply.Envelope.body
                      | None -> Alcotest.fail "no cancel reply")))))
  in
  let rg = Option.get !rigref in
  Alcotest.(check (option string)) "cancel acknowledged"
    (Some "cancelled:t1") !final;
  Alcotest.(check int) "src restored" 1000 (balance rg.site_a "acct:src");
  Alcotest.(check int) "dst restored" 0 (balance rg.site_b "acct:dst");
  Alcotest.(check int) "clearing compensated" 0 (balance rg.site_c "cleared")

let test_pipeline_cancel_race_is_consistent () =
  (* Cancel while the request is between stages. Whatever the interleaving,
     the end state is: acknowledged cancel, all balances restored, and each
     stage either executed-then-compensated or never executed. *)
  let rigref = ref None in
  let _ =
    H.run (fun s ->
        ignore
          (Sched.spawn s ~name:"setup" (fun () ->
               let net = Net.create s (Rng.create 13) in
               let site_a = Site.create (Net.make_node net "bankA") in
               let site_b = Site.create (Net.make_node net "bankB") in
               let site_c = Site.create (Net.make_node net "clearing") in
               let stages = transfer_stages site_a site_b site_c in
               (* slow down the middle stage to widen the race window *)
               let stages =
                 List.mapi
                   (fun i st ->
                     if i = 1 then
                       {
                         st with
                         Pipeline.work =
                           (fun site txn env ->
                             Sched.sleep 2.0;
                             st.Pipeline.work site txn env);
                       }
                     else st)
                   stages
               in
               let pipeline = Pipeline.install stages in
               let client_node = Net.make_node net "client" in
               Site.with_txn site_a (fun txn ->
                   Kvdb.put (Site.kv site_a) (Tm.txn_id txn) "acct:src" "1000");
               rigref := Some (site_a, site_b, site_c);
               ignore
                 (Sched.fork ~name:"alice" (fun () ->
                      let clerk, _ =
                        Clerk.connect ~client_node
                          ~system:(Pipeline.entry_site pipeline)
                          ~client_id:"alice"
                          ~req_queue:(Pipeline.entry_queue pipeline) ()
                      in
                      ignore (Clerk.send clerk ~rid:"t1" "xfer")));
               (* cancel ~1s in: stage 1 done, stage 2 mid-flight *)
               Sched.at s 1.0 (fun () ->
                   ignore
                     (Sched.spawn s ~name:"canceller" (fun () ->
                          let cancel_clerk, _ =
                            Clerk.connect ~client_node
                              ~system:(Pipeline.cancel_site pipeline)
                              ~client_id:"alice-cancel"
                              ~req_queue:(Pipeline.cancel_queue pipeline) ()
                          in
                          match
                            Clerk.transceive cancel_clerk ~rid:"c1" ~timeout:60.0
                              "t1"
                          with
                          | Some _ -> ()
                          | None -> Alcotest.fail "no cancel reply"))))))
  in
  let site_a, site_b, site_c = Option.get !rigref in
  Alcotest.(check int) "src restored" 1000 (balance site_a "acct:src");
  Alcotest.(check int) "dst restored" 0 (balance site_b "acct:dst");
  Alcotest.(check int) "clearing net zero" 0 (balance site_c "cleared")

(* --- interactive requests (8) ------------------------------------------- *)

let test_pseudo_conversation () =
  (* Three-leg seat-booking conversation via the scratch pad. *)
  let final = ref None in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 5) in
        let backend =
          Site.create ~queues:[ ("conv", Qm.default_attrs) ]
            (Net.make_node net "backend")
        in
        let _ =
          Interactive.pseudo_server backend ~req_queue:"conv"
            (fun site txn env ->
              let kv = Site.kv site in
              let id = Tm.txn_id txn in
              match env.Envelope.step with
              | 0 ->
                Interactive.Intermediate
                  { output = "which-row?"; scratch = "flight=BA42" }
              | 1 ->
                Interactive.Intermediate
                  {
                    output = "which-seat?";
                    scratch = env.Envelope.scratch ^ ";row=" ^ env.Envelope.body;
                  }
              | _ ->
                let booking = env.Envelope.scratch ^ ";seat=" ^ env.Envelope.body in
                Kvdb.put kv id "booking" booking;
                Interactive.Final ("booked:" ^ booking))
        in
        let client_node = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"conv" ()
               in
               let respond ~step ~output =
                 match (step, output) with
                 | 1, "which-row?" -> "12"
                 | 2, "which-seat?" -> "C"
                 | _ -> Alcotest.fail "unexpected prompt"
               in
               final :=
                 Interactive.pseudo_client clerk ~rid:"bk1" ~body:"book"
                   ~respond ();
               Alcotest.(check (option string)) "booking committed"
                 (Some "flight=BA42;row=12;seat=C")
                 (Kvdb.committed_value (Site.kv backend) "booking"))))
  in
  match !final with
  | Some reply ->
    Alcotest.(check string) "final reply" "booked:flight=BA42;row=12;seat=C"
      reply.Envelope.body
  | None -> Alcotest.fail "conversation did not finish"

let test_pseudo_conversation_server_crash_between_legs () =
  (* Each leg is a full transaction: crashing the backend between legs
     loses nothing. *)
  let final = ref None in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 6) in
        let backend =
          Site.create ~queues:[ ("conv", Qm.default_attrs) ] ~stale_timeout:2.0
            (Net.make_node net "backend")
        in
        let _ =
          Interactive.pseudo_server backend ~req_queue:"conv"
            (fun _site _txn env ->
              match env.Envelope.step with
              | 0 -> Interactive.Intermediate { output = "q1"; scratch = "s1" }
              | _ -> Interactive.Final ("done:" ^ env.Envelope.scratch))
        in
        Sched.at s 0.5 (fun () -> Site.crash_restart backend ~after:2.0);
        let client_node = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"conv" ()
               in
               Sched.sleep 0.4 (* leg 1 lands just before the crash *);
               final :=
                 Interactive.pseudo_client clerk ~rid:"c1" ~body:"go"
                   ~respond:(fun ~step:_ ~output:_ -> "a1")
                   ())))
  in
  match !final with
  | Some reply ->
    Alcotest.(check string) "conversation completed across crash" "done:s1"
      reply.Envelope.body
  | None -> Alcotest.fail "conversation did not finish"

let test_single_txn_conversation_replay () =
  (* 8.3: one transaction solicits two inputs by direct messages. The
     first execution is made to abort after both inputs; the re-execution
     replays them from the client's durable I/O log, so the user is asked
     each question exactly once. *)
  let result = ref None in
  let asks = ref 0 in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 8) in
        let backend =
          Site.create ~queues:[ ("conv", Qm.default_attrs) ]
            (Net.make_node net "backend")
        in
        let client_node = Net.make_node net "client" in
        Interactive.install_display client_node ~user:(fun ~rid:_ ~seq ~prompt:_ ->
            Printf.sprintf "answer%d" seq);
        let attempts = ref 0 in
        let _ =
          Server.start backend ~req_queue:"conv" (fun site _txn env ->
              let c = Interactive.console site env ~display:"client" in
              let a1 = Interactive.ask c "q1" in
              let a2 = Interactive.ask c "q2" in
              incr attempts;
              if !attempts = 1 then failwith "injected abort after inputs";
              Server.Reply (Printf.sprintf "got:%s,%s" a1 a2))
        in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"conv" ()
               in
               (match Clerk.transceive clerk ~rid:"c1" ~timeout:20.0 "go" with
               | Some reply -> result := Some reply.Envelope.body
               | None -> Alcotest.fail "no reply");
               asks := Interactive.display_asks client_node)))
  in
  Alcotest.(check (option string)) "reply" (Some "got:answer1,answer2") !result;
  Alcotest.(check int) "each question asked once despite re-execution" 2 !asks

(* 8.3 divergence rule: replay logged inputs only while the server's
   outputs match the log; discard the tail at the first divergence and
   solicit fresh input. *)
let test_single_txn_conversation_divergence () =
  let result = ref None in
  let asks = ref 0 in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 14) in
        let backend =
          Site.create ~queues:[ ("conv", Qm.default_attrs) ]
            (Net.make_node net "backend")
        in
        let client_node = Net.make_node net "client" in
        Interactive.install_display client_node ~user:(fun ~rid:_ ~seq ~prompt ->
            Printf.sprintf "ans(%d,%s)" seq prompt);
        let attempts = ref 0 in
        let _ =
          Server.start backend ~req_queue:"conv" (fun site _txn env ->
              let c = Interactive.console site env ~display:"client" in
              incr attempts;
              let a1 = Interactive.ask c "q1" in
              (* the second prompt differs on re-execution *)
              let p2 = if !attempts = 1 then "q2" else "q2-changed" in
              let a2 = Interactive.ask c p2 in
              if !attempts = 1 then failwith "injected abort";
              Server.Reply (Printf.sprintf "%s|%s" a1 a2))
        in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"conv" ()
               in
               (match Clerk.transceive clerk ~rid:"c1" ~timeout:30.0 "go" with
               | Some reply -> result := Some reply.Envelope.body
               | None -> Alcotest.fail "no reply");
               asks := Interactive.display_asks client_node)))
  in
  (* q1 replayed from the log; the changed q2 asked fresh *)
  Alcotest.(check (option string)) "final uses replay + fresh input"
    (Some "ans(1,q1)|ans(2,q2-changed)") !result;
  Alcotest.(check int) "user asked 3 times total (q1, q2, q2-changed)" 3 !asks

(* CICS Transaction Routing (paper 9): system A receives a request and
   forwards it to system B; the request carries enough information that B
   can bind to the display that produced it and converse directly. *)
let test_transaction_routing_display_binding () =
  let result = ref None in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 12) in
        let site_a =
          Site.create ~queues:[ ("route", Qm.default_attrs) ]
            (Net.make_node net "siteA")
        in
        let site_b =
          Site.create ~queues:[ ("conv", Qm.default_attrs) ]
            (Net.make_node net "siteB")
        in
        (* A: pure router *)
        let _ =
          Server.start site_a ~req_queue:"route" (fun _site _txn env ->
              Server.Forward { dst = "siteB"; queue = "conv"; env })
        in
        (* B: converses directly with the display named in the request body *)
        let _ =
          Server.start site_b ~req_queue:"conv" (fun site _txn env ->
              let c =
                Interactive.console site env ~display:env.Envelope.body
              in
              let answer = Interactive.ask c "routed-question" in
              Server.Reply ("routed-answer:" ^ answer))
        in
        let client_node = Net.make_node net "client" in
        Interactive.install_display client_node
          ~user:(fun ~rid:_ ~seq:_ ~prompt -> "to:" ^ prompt);
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"siteA" ~client_id:"alice"
                   ~req_queue:"route" ()
               in
               (* body = the display node, the "communication binding" info *)
               result := Clerk.transceive clerk ~rid:"r1" ~timeout:20.0 "client")))
  in
  match !result with
  | Some reply ->
    Alcotest.(check string) "B conversed with A's client directly"
      "routed-answer:to:routed-question" reply.Rrq_core.Envelope.body
  | None -> Alcotest.fail "no reply through the route"

(* --- forwarder (2) ------------------------------------------------------- *)

let test_forwarder_masks_partition () =
  let got = ref None in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 9) in
        let front =
          Site.create ~queues:[ ("outbox", Qm.default_attrs) ]
            (Net.make_node net "front")
        in
        let backend =
          Site.create ~queues:[ ("req", Qm.default_attrs) ]
            (Net.make_node net "backend")
        in
        let _ =
          Server.start backend ~req_queue:"req" (fun _site _txn env ->
              Server.Reply ("served:" ^ env.Envelope.rid))
        in
        Forwarder.start front ~local_queue:"outbox" ~dst:"backend"
          ~remote_queue:"req" ();
        (* the wide-area link is down for a while *)
        Net.partition net "front" "backend";
        Sched.at s 5.0 (fun () -> Net.heal net "front" "backend");
        let client_node = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"front" ~client_id:"alice"
                   ~req_queue:"outbox" ()
               in
               (* send succeeds immediately: the local queue accepts it *)
               ignore (Clerk.send clerk ~rid:"r1" "work");
               Alcotest.(check int) "captured locally during partition" 1
                 (Qm.depth (Site.qm front) "outbox");
               let rec get n =
                 if n > 20 then None
                 else begin
                   match Clerk.receive clerk ~timeout:3.0 () with
                   | Some r -> Some r
                   | None -> get (n + 1)
                 end
               in
               got := get 0)))
  in
  match !got with
  | Some reply ->
    Alcotest.(check string) "served after heal" "served:r1" reply.Envelope.body
  | None -> Alcotest.fail "reply never arrived"

(* --- autoscale (9/11) --------------------------------------------------- *)

let test_autoscale_surge () =
  let scaler = ref None in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 10) in
        let backend = Site.create (Net.make_node net "backend") in
        let sc =
          Autoscale.install backend ~req_queue:"req" ~min_threads:1
            ~max_threads:4 ~scale_at:5 (fun site txn _env ->
              ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "served" 1);
              Sched.sleep 0.5 (* slow enough that one thread cannot keep up *);
              Server.No_reply)
        in
        scaler := Some (sc, backend);
        ignore
          (Sched.spawn s ~name:"burst" (fun () ->
               let qm = Site.qm backend in
               let h, _ =
                 Qm.register qm ~queue:"req" ~registrant:"burster" ~stable:false
               in
               for i = 1 to 20 do
                 let env =
                   Envelope.make ~rid:(Printf.sprintf "b%d" i)
                     ~client_id:"burster" ~reply_node:"backend"
                     ~reply_queue:"req" "job"
                 in
                 ignore
                   (Qm.auto_commit qm (fun id ->
                        Qm.enqueue qm id h (Envelope.to_string env)))
               done)))
  in
  match !scaler with
  | Some (sc, backend) ->
    Alcotest.(check bool) "surge threads were spawned" true
      (Autoscale.surge_spawned sc > 0);
    Alcotest.(check int) "all jobs served" 20
      (int_of_string
         (Option.value ~default:"0"
            (Kvdb.committed_value (Site.kv backend) "served")));
    Alcotest.(check int) "surge retired after drain" 0 (Autoscale.active_surge sc)
  | None -> Alcotest.fail "no scaler"

let fsm_suite =
  [
    Alcotest.test_case "legal traces" `Quick test_fsm_legal_traces;
    Alcotest.test_case "illegal traces" `Quick test_fsm_illegal_traces;
    QCheck_alcotest.to_alcotest prop_fsm_legal_events_step;
  ]

(* Property form of the sweep: ANY crash time in (0, 0.3] leaves exactly
   4 tickets after the second incarnation finishes. *)
let prop_session_crash_anywhere =
  QCheck2.Test.make ~name:"session: any crash point yields exactly 4 tickets"
    ~count:40
    QCheck2.Gen.(map (fun n -> 0.001 +. (float_of_int n /. 1000.0)) (int_bound 300))
    (fun kill_at ->
      let tickets, _ = session_crash_scenario ~kill_at in
      tickets = 4)

let session_suite =
  [
    Alcotest.test_case "fresh run" `Quick test_session_fresh_run;
    Alcotest.test_case "crash early" `Quick test_session_crash_early;
    Alcotest.test_case "crash midway" `Quick test_session_crash_midway;
    Alcotest.test_case "crash sweep" `Quick test_session_crash_many_points;
    QCheck_alcotest.to_alcotest prop_session_crash_anywhere;
  ]

let pipeline_suite =
  [
    Alcotest.test_case "three-site transfer" `Quick test_pipeline_transfer;
    Alcotest.test_case "survives stage crash" `Quick
      test_pipeline_survives_stage_crash;
    Alcotest.test_case "cancel compensates" `Quick test_pipeline_cancel_compensates;
    Alcotest.test_case "cancel race consistent" `Quick
      test_pipeline_cancel_race_is_consistent;
  ]

let interactive_suite =
  [
    Alcotest.test_case "pseudo-conversation" `Quick test_pseudo_conversation;
    Alcotest.test_case "pseudo-conversation across crash" `Quick
      test_pseudo_conversation_server_crash_between_legs;
    Alcotest.test_case "single-txn conversation replay" `Quick
      test_single_txn_conversation_replay;
    Alcotest.test_case "transaction routing (CICS, 9)" `Quick
      test_transaction_routing_display_binding;
    Alcotest.test_case "single-txn conversation divergence" `Quick
      test_single_txn_conversation_divergence;
  ]

let infra_suite =
  [
    Alcotest.test_case "forwarder masks partition" `Quick
      test_forwarder_masks_partition;
    Alcotest.test_case "autoscale surge" `Quick test_autoscale_surge;
  ]

let () =
  Alcotest.run "rrq-core-features"
    [
      ("client-fsm", fsm_suite);
      ("session", session_suite);
      ("pipeline", pipeline_suite);
      ("interactive", interactive_suite);
      ("infrastructure", infra_suite);
    ]
