(* End-to-end tests of the System Model (fig. 4/5): clerk, queues, server,
   exactly-once request processing under crashes and message loss. *)

module Sched = Rrq_sim.Sched
module Rng = Rrq_util.Rng
module Net = Rrq_net.Net
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope
module H = Rrq_test_support.Sim_harness

(* A standard rig: one backend site with a request queue, one bare client
   node, a server whose handler increments per-rid and total counters. *)
type rig = {
  sched : Sched.t;
  net : Net.t;
  backend : Site.t;
  client_node : Net.node;
  server : Server.t;
}

let counting_handler site txn env =
  let kv = Site.kv site in
  let id = Rrq_txn.Tm.txn_id txn in
  ignore (Kvdb.add kv id ("exec:" ^ env.Envelope.rid) 1);
  ignore (Kvdb.add kv id "total" 1);
  Server.Reply ("done:" ^ env.Envelope.body)

let make_rig ?(drop_rate = 0.0) ?(server_threads = 1) ?(stale_timeout = 3.0)
    ?handler s =
  let net = Net.create ~drop_rate s (Rng.create 42) in
  let backend_node = Net.make_node net "backend" in
  let backend =
    Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout backend_node
  in
  let client_node = Net.make_node net "client" in
  let handler = match handler with Some h -> h | None -> counting_handler in
  let server =
    Server.start backend ~req_queue:"req" ~threads:server_threads handler
  in
  { sched = s; net; backend; client_node; server }

let exec_count rig rid =
  match Kvdb.committed_value (Site.kv rig.backend) ("exec:" ^ rid) with
  | Some s -> int_of_string s
  | None -> 0

let connect rig ?(client_id = "alice") () =
  Clerk.connect ~client_node:rig.client_node ~system:"backend"
    ~client_id ~req_queue:"req" ()

(* --- happy path -------------------------------------------------------- *)

let test_happy_path () =
  let done_ = ref false in
  let _ =
    H.run (fun s ->
        let rig = make_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, info = connect rig () in
               Alcotest.(check bool) "fresh session" true
                 (info.Clerk.s_rid = None && info.Clerk.r_rid = None);
               for i = 1 to 5 do
                 let rid = Printf.sprintf "r%d" i in
                 ignore (Clerk.send clerk ~rid (Printf.sprintf "work-%d" i));
                 match Clerk.receive clerk () with
                 | Some reply ->
                   (* Request-Reply Matching *)
                   Alcotest.(check string) "reply matches request" rid
                     reply.Envelope.rid;
                   Alcotest.(check string) "reply body"
                     (Printf.sprintf "done:work-%d" i)
                     reply.Envelope.body
                 | None -> Alcotest.fail "no reply"
               done;
               Clerk.disconnect clerk;
               for i = 1 to 5 do
                 Alcotest.(check int) "exactly once" 1
                   (exec_count rig (Printf.sprintf "r%d" i))
               done;
               done_ := true)))
  in
  Alcotest.(check bool) "completed" true !done_

let test_two_clients_private_reply_queues () =
  let done_ = ref 0 in
  let _ =
    H.run (fun s ->
        let rig = make_rig s ~server_threads:2 in
        let spawn_client name =
          ignore
            (Sched.spawn s ~group:"client" ~name (fun () ->
                 let clerk, _ = connect rig ~client_id:name () in
                 for i = 1 to 3 do
                   let rid = Printf.sprintf "%s-%d" name i in
                   match Clerk.transceive clerk ~rid ("b" ^ rid) with
                   | Some reply ->
                     Alcotest.(check string)
                       (name ^ " gets own reply") rid reply.Envelope.rid
                   | None -> Alcotest.fail "no reply"
                 done;
                 incr done_))
        in
        spawn_client "alice";
        spawn_client "bob")
  in
  Alcotest.(check int) "both clients done" 2 !done_

(* --- failures ----------------------------------------------------------- *)

let test_server_crash_exactly_once () =
  (* Crash the backend twice while a client pushes 10 requests through.
     Every request must execute exactly once and every reply must reach the
     client. *)
  let done_ = ref false in
  let _ =
    H.run (fun s ->
        let rig = make_rig s in
        Sched.at s 2.0 (fun () -> Site.crash_restart rig.backend ~after:1.5);
        Sched.at s 9.0 (fun () -> Site.crash_restart rig.backend ~after:1.5);
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ = connect rig () in
               for i = 1 to 10 do
                 let rid = Printf.sprintf "r%d" i in
                 ignore (Clerk.send clerk ~rid ("w" ^ string_of_int i));
                 let rec get () =
                   match Clerk.receive clerk ~timeout:3.0 () with
                   | Some reply -> reply
                   | None -> get ()
                 in
                 let reply = get () in
                 Alcotest.(check string) "matching reply" rid reply.Envelope.rid;
                 Sched.sleep 1.0
               done;
               for i = 1 to 10 do
                 Alcotest.(check int)
                   (Printf.sprintf "r%d exactly once" i)
                   1
                   (exec_count rig (Printf.sprintf "r%d" i))
               done;
               done_ := true)))
  in
  Alcotest.(check bool) "completed" true !done_

let test_message_loss_exactly_once () =
  (* 20% of messages vanish; the tagged-retry protocol still delivers
     exactly-once processing and at-least-once replies. *)
  let done_ = ref false in
  let _ =
    H.run (fun s ->
        let rig = make_rig ~drop_rate:0.2 s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ = connect rig () in
               for i = 1 to 15 do
                 let rid = Printf.sprintf "r%d" i in
                 ignore (Clerk.send clerk ~rid ("w" ^ string_of_int i));
                 let rec get n =
                   if n > 50 then Alcotest.fail "reply never arrived";
                   match Clerk.receive clerk ~timeout:2.0 () with
                   | Some reply -> reply
                   | None -> get (n + 1)
                 in
                 let reply = get 0 in
                 Alcotest.(check string) "matching reply" rid reply.Envelope.rid
               done;
               for i = 1 to 15 do
                 Alcotest.(check int)
                   (Printf.sprintf "r%d exactly once" i)
                   1
                   (exec_count rig (Printf.sprintf "r%d" i))
               done;
               done_ := true)))
  in
  Alcotest.(check bool) "completed" true !done_

let test_client_crash_resynchronization () =
  (* The client dies after Send but before Receive. Its next incarnation
     reconnects, learns s_rid <> r_rid, so it must Receive (fig. 2, first
     branch) — the reply is waiting and nothing executes twice. *)
  let verdict = ref "" in
  let _ =
    H.run (fun s ->
        let rig = make_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice-1" (fun () ->
               let clerk, _ = connect rig () in
               ignore (Clerk.send clerk ~rid:"r1" "important")));
        (* incarnation 1 is killed right after send *)
        Sched.at s 1.0 (fun () -> Sched.kill_group s "client");
        Sched.at s 3.0 (fun () ->
            ignore
              (Sched.spawn s ~group:"client2" ~name:"alice-2" (fun () ->
                   let clerk, info = connect rig () in
                   match (info.Clerk.s_rid, info.Clerk.r_rid) with
                   | Some "r1", None ->
                     (* must receive, not resend *)
                     (match Clerk.receive clerk () with
                     | Some reply when reply.Envelope.rid = "r1" ->
                       if exec_count rig "r1" = 1 then verdict := "ok"
                       else verdict := "executed twice"
                     | Some _ -> verdict := "wrong reply"
                     | None -> verdict := "no reply")
                   | _ -> verdict := "bad connect info"))))
  in
  Alcotest.(check string) "resync verdict" "ok" !verdict

let test_client_crash_after_receive_rereceive () =
  (* The client receives the reply, then dies before processing it. The new
     incarnation sees s_rid = r_rid and uses Rereceive to fetch the retained
     copy (fig. 2, second branch). *)
  let verdict = ref "" in
  let _ =
    H.run (fun s ->
        let rig = make_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice-1" (fun () ->
               let clerk, _ = connect rig () in
               ignore (Clerk.send clerk ~rid:"r1" "important");
               ignore (Clerk.receive clerk ~ckpt:"ticket-0" ());
               (* dies here, before processing the reply *)
               Sched.sleep 1000.0));
        Sched.at s 5.0 (fun () -> Sched.kill_group s "client");
        Sched.at s 6.0 (fun () ->
            ignore
              (Sched.spawn s ~group:"client2" ~name:"alice-2" (fun () ->
                   let clerk, info = connect rig () in
                   match (info.Clerk.s_rid, info.Clerk.r_rid) with
                   | Some "r1", Some "r1" ->
                     Alcotest.(check (option string)) "checkpoint returned"
                       (Some "ticket-0") info.Clerk.ckpt;
                     (match Clerk.rereceive clerk with
                     | Some reply when reply.Envelope.rid = "r1" ->
                       verdict := "ok"
                     | Some _ -> verdict := "wrong reply"
                     | None -> verdict := "no retained copy")
                   | _ -> verdict := "bad connect info"))))
  in
  Alcotest.(check string) "rereceive verdict" "ok" !verdict

let test_poison_request_lands_in_error_queue () =
  (* A request whose handler always fails must not cycle forever: after the
     retry limit it moves to the error queue and the server moves on. *)
  let done_ = ref false in
  let handler site txn env =
    if env.Envelope.body = "poison" then failwith "cannot process"
    else counting_handler site txn env
  in
  let _ =
    H.run (fun s ->
        let rig = make_rig ~handler s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ = connect rig () in
               ignore (Clerk.send clerk ~rid:"bad" "poison");
               ignore (Clerk.send clerk ~rid:"good" "fine");
               (match Clerk.receive clerk ~timeout:10.0 () with
               | Some reply ->
                 Alcotest.(check string) "good request still served" "good"
                   reply.Envelope.rid
               | None -> Alcotest.fail "good request starved");
               Alcotest.(check int) "poison parked in error queue" 1
                 (Qm.depth (Site.qm rig.backend) "req.err");
               Alcotest.(check int) "poison never committed" 0
                 (exec_count rig "bad");
               done_ := true)))
  in
  Alcotest.(check bool) "completed" true !done_

let test_cancel_waiting_request () =
  (* Cancellation (paper 7): kill a request still sitting in the queue. *)
  let verdict = ref "" in
  let _ =
    H.run (fun s ->
        (* no server: requests stay queued *)
        let net = Net.create s (Rng.create 1) in
        let backend_node = Net.make_node net "backend" in
        let backend =
          Site.create ~queues:[ ("req", Qm.default_attrs) ] backend_node
        in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node:(Net.make_node net "client")
                   ~system:"backend" ~client_id:"alice" ~req_queue:"req" ()
               in
               ignore (Clerk.send clerk ~rid:"r1" "todo");
               Alcotest.(check int) "queued" 1 (Qm.depth (Site.qm backend) "req");
               let cancelled = Clerk.cancel_last_request clerk in
               if cancelled && Qm.depth (Site.qm backend) "req" = 0 then
                 verdict := "ok"
               else verdict := "not cancelled")))
  in
  Alcotest.(check string) "cancel verdict" "ok" !verdict

let test_load_sharing_many_servers () =
  (* Many dequeuers on one queue, many concurrent client threads (the
     paper's client-concurrency extension: one registrant per thread). All
     requests processed exactly once. *)
  let done_ = ref 0 in
  let _ =
    H.run (fun s ->
        let rig = make_rig ~server_threads:4 s in
        for i = 1 to 12 do
          ignore
            (Sched.spawn s ~group:"client" ~name:(Printf.sprintf "cl%d" i)
               (fun () ->
                 let clerk, _ =
                   connect rig ~client_id:(Printf.sprintf "alice#%d" i) ()
                 in
                 let rid = Printf.sprintf "r%d" i in
                 match Clerk.transceive clerk ~rid ("w" ^ rid) with
                 | Some reply ->
                   Alcotest.(check string) "own reply" rid reply.Envelope.rid;
                   incr done_
                 | None -> Alcotest.fail "no reply"))
        done)
  in
  Alcotest.(check int) "all threads done" 12 !done_;
  ()

(* Deterministic sweep: crash the backend at each offset across the whole
   exchange; 3 requests must execute exactly once for every crash time. *)
let test_server_crash_time_sweep () =
  List.iter
    (fun crash_at ->
      let done_ = ref false in
      let _ =
        H.run (fun s ->
            let rig = make_rig s in
            Sched.at s crash_at (fun () ->
                Site.crash_restart rig.backend ~after:1.0);
            ignore
              (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
                   let clerk, _ = connect rig () in
                   for i = 1 to 3 do
                     let rid = Printf.sprintf "r%d" i in
                     (try ignore (Clerk.send clerk ~rid "w")
                      with Clerk.Unavailable _ ->
                        Alcotest.fail "send gave up");
                     let rec get n =
                       if n > 30 then Alcotest.fail "reply never arrived"
                       else begin
                         match Clerk.receive clerk ~timeout:2.0 () with
                         | Some reply ->
                           Alcotest.(check string) "matching" rid
                             reply.Envelope.rid
                         | None -> get (n + 1)
                       end
                     in
                     get 0
                   done;
                   for i = 1 to 3 do
                     Alcotest.(check int)
                       (Printf.sprintf "crash@%.3f: r%d exactly once" crash_at i)
                       1
                       (exec_count rig (Printf.sprintf "r%d" i))
                   done;
                   done_ := true)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "crash@%.3f completed" crash_at)
        true !done_)
    [ 0.005; 0.012; 0.02; 0.03; 0.045; 0.06; 0.08; 0.12; 0.2; 0.5; 1.0 ]

let suite =
  [
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "two clients, private reply queues" `Quick
      test_two_clients_private_reply_queues;
    Alcotest.test_case "server crashes: exactly-once" `Quick
      test_server_crash_exactly_once;
    Alcotest.test_case "message loss: exactly-once" `Quick
      test_message_loss_exactly_once;
    Alcotest.test_case "client crash: resynchronize + receive" `Quick
      test_client_crash_resynchronization;
    Alcotest.test_case "client crash: rereceive retained copy" `Quick
      test_client_crash_after_receive_rereceive;
    Alcotest.test_case "poison request -> error queue" `Quick
      test_poison_request_lands_in_error_queue;
    Alcotest.test_case "cancel waiting request" `Quick test_cancel_waiting_request;
    Alcotest.test_case "load sharing" `Quick test_load_sharing_many_servers;
    Alcotest.test_case "server crash-time sweep" `Quick
      test_server_crash_time_sweep;
  ]

let () = Alcotest.run "rrq-request" [ ("system-model", suite) ]
