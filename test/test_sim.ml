(* Tests for the discrete-event scheduler, channels, ivars and conditions. *)

module Sched = Rrq_sim.Sched
module Chan = Rrq_sim.Chan
module Ivar = Rrq_sim.Ivar
module Cond = Rrq_sim.Cond

let run_sim f =
  let s = Sched.create () in
  f s;
  Sched.run s;
  Alcotest.(check (list (pair string pass)))
    "no unhandled fiber exceptions" [] (Sched.failures s);
  s

let test_sleep_order () =
  let log = ref [] in
  let push tag = log := tag :: !log in
  let _ =
    run_sim (fun s ->
        ignore
          (Sched.spawn s ~name:"a" (fun () ->
               Sched.sleep 3.0;
               push "a"));
        ignore
          (Sched.spawn s ~name:"b" (fun () ->
               Sched.sleep 1.0;
               push "b";
               Sched.sleep 3.0;
               push "b2"));
        ignore (Sched.spawn s ~name:"c" (fun () -> push "c")))
  in
  Alcotest.(check (list string)) "order" [ "c"; "b"; "a"; "b2" ] (List.rev !log)

let test_virtual_time () =
  let seen = ref 0.0 in
  let s =
    run_sim (fun s ->
        ignore
          (Sched.spawn s ~name:"t" (fun () ->
               Sched.sleep 5.0;
               Sched.sleep 2.5;
               seen := Sched.clock ())))
  in
  Alcotest.(check (float 1e-9)) "clock inside fiber" 7.5 !seen;
  Alcotest.(check (float 1e-9)) "final scheduler time" 7.5 (Sched.now s)

let test_chan_fifo () =
  let got = ref [] in
  let _ =
    run_sim (fun s ->
        let c = Chan.create () in
        ignore
          (Sched.spawn s ~name:"consumer" (fun () ->
               for _ = 1 to 3 do
                 got := Chan.recv c :: !got
               done));
        ignore
          (Sched.spawn s ~name:"producer" (fun () ->
               List.iter (Chan.send c) [ 1; 2; 3 ])))
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_chan_timeout () =
  let r1 = ref (Some 99) and r2 = ref None in
  let _ =
    run_sim (fun s ->
        let c = Chan.create () in
        ignore
          (Sched.spawn s ~name:"waiter" (fun () ->
               r1 := Chan.recv_timeout c 1.0;
               r2 := Chan.recv_timeout c 10.0));
        ignore
          (Sched.spawn s ~name:"late-sender" (fun () ->
               Sched.sleep 5.0;
               Chan.send c 42)))
  in
  Alcotest.(check (option int)) "timed out" None !r1;
  Alcotest.(check (option int)) "delivered" (Some 42) !r2

let test_timed_out_waiter_does_not_eat_message () =
  (* A waiter that timed out must not consume a later send: the value must
     go to the next waiter instead. *)
  let impatient = ref (Some 0) and patient = ref None in
  let _ =
    run_sim (fun s ->
        let c = Chan.create () in
        ignore
          (Sched.spawn s ~name:"impatient" (fun () ->
               impatient := Chan.recv_timeout c 1.0));
        ignore
          (Sched.spawn s ~name:"patient" (fun () ->
               Sched.sleep 0.5;
               patient := Chan.recv_timeout c 10.0));
        ignore
          (Sched.spawn s ~name:"sender" (fun () ->
               Sched.sleep 2.0;
               Chan.send c 7)))
  in
  Alcotest.(check (option int)) "impatient timed out" None !impatient;
  Alcotest.(check (option int)) "patient got it" (Some 7) !patient

let test_kill_group () =
  let survivor = ref false and victim = ref false in
  let _ =
    run_sim (fun s ->
        ignore
          (Sched.spawn s ~group:"nodeA" ~name:"victim" (fun () ->
               Sched.sleep 10.0;
               victim := true));
        ignore
          (Sched.spawn s ~group:"nodeB" ~name:"survivor" (fun () ->
               Sched.sleep 10.0;
               survivor := true));
        Sched.at s 5.0 (fun () -> Sched.kill_group s "nodeA"))
  in
  Alcotest.(check bool) "victim never resumed" false !victim;
  Alcotest.(check bool) "survivor resumed" true !survivor

let test_kill_before_first_run () =
  let ran = ref false in
  let _ =
    run_sim (fun s ->
        let f = Sched.spawn s ~name:"doomed" (fun () -> ran := true) in
        Sched.kill s f)
  in
  Alcotest.(check bool) "never started" false !ran

let test_fork_inherits_group () =
  let child_group = ref None in
  let _ =
    run_sim (fun s ->
        ignore
          (Sched.spawn s ~group:"g1" ~name:"parent" (fun () ->
               let child = Sched.fork ~name:"child" (fun () -> ()) in
               child_group := Sched.fiber_group child)))
  in
  Alcotest.(check (option string)) "inherited" (Some "g1") !child_group

let test_ivar () =
  let a = ref 0 and b = ref 0 and late = ref None in
  let _ =
    run_sim (fun s ->
        let iv = Ivar.create () in
        ignore (Sched.spawn s ~name:"r1" (fun () -> a := Ivar.read iv));
        ignore (Sched.spawn s ~name:"r2" (fun () -> b := Ivar.read iv));
        ignore
          (Sched.spawn s ~name:"filler" (fun () ->
               Sched.sleep 1.0;
               Ivar.fill iv 5;
               Ivar.fill iv 6 (* ignored *)));
        ignore
          (Sched.spawn s ~name:"late" (fun () ->
               Sched.sleep 2.0;
               late := Ivar.read_timeout iv 1.0)))
  in
  Alcotest.(check int) "reader 1" 5 !a;
  Alcotest.(check int) "reader 2" 5 !b;
  Alcotest.(check (option int)) "late reader sees value" (Some 5) !late

let test_ivar_timeout () =
  let r = ref (Some 1) in
  let _ =
    run_sim (fun s ->
        let iv = Ivar.create () in
        ignore
          (Sched.spawn s ~name:"reader" (fun () ->
               r := Ivar.read_timeout iv 3.0)))
  in
  Alcotest.(check (option int)) "timed out" None !r

let test_cond_signal_broadcast () =
  let woken = ref 0 in
  let _ =
    run_sim (fun s ->
        let c = Cond.create () in
        for i = 1 to 3 do
          ignore
            (Sched.spawn s ~name:(Printf.sprintf "w%d" i) (fun () ->
                 Cond.wait c;
                 incr woken))
        done;
        ignore
          (Sched.spawn s ~name:"sig" (fun () ->
               Sched.sleep 1.0;
               Cond.signal c;
               Sched.sleep 1.0;
               Cond.broadcast c)))
  in
  Alcotest.(check int) "all woken" 3 !woken

let test_cond_wait_timeout () =
  let r = ref true in
  let _ =
    run_sim (fun s ->
        let c = Cond.create () in
        ignore
          (Sched.spawn s ~name:"w" (fun () -> r := Cond.wait_timeout c 2.0)))
  in
  Alcotest.(check bool) "timed out" false !r

let test_signal_skips_dead_waiter () =
  let ok = ref false in
  let _ =
    run_sim (fun s ->
        let c = Cond.create () in
        ignore
          (Sched.spawn s ~group:"dead" ~name:"w1" (fun () -> Cond.wait c));
        ignore
          (Sched.spawn s ~name:"w2" (fun () ->
               Cond.wait c;
               ok := true));
        Sched.at s 1.0 (fun () -> Sched.kill_group s "dead");
        Sched.at s 2.0 (fun () ->
            ignore (Sched.spawn s ~name:"sig" (fun () -> Cond.signal c))))
  in
  Alcotest.(check bool) "live waiter woken" true !ok

let test_failures_recorded () =
  let s = Sched.create () in
  ignore (Sched.spawn s ~name:"boom" (fun () -> failwith "bang"));
  Sched.run s;
  match Sched.failures s with
  | [ ("boom", Failure msg) ] when msg = "bang" -> ()
  | _ -> Alcotest.fail "expected one recorded failure"

let test_live_fibers_reports_blocked () =
  let s = Sched.create () in
  let c : int Chan.t = Chan.create () in
  ignore (Sched.spawn s ~name:"stuck" (fun () -> ignore (Chan.recv c)));
  Sched.run s;
  Alcotest.(check (list string)) "stuck fiber listed" [ "stuck" ]
    (Sched.live_fibers s)

let test_many_fibers () =
  let n = 2000 in
  let total = ref 0 in
  let _ =
    run_sim (fun s ->
        let c = Chan.create () in
        for i = 1 to n do
          ignore
            (Sched.spawn s ~name:(Printf.sprintf "p%d" i) (fun () ->
                 Sched.sleep (float_of_int (i mod 17));
                 Chan.send c i))
        done;
        ignore
          (Sched.spawn s ~name:"sum" (fun () ->
               for _ = 1 to n do
                 total := !total + Chan.recv c
               done)))
  in
  Alcotest.(check int) "all delivered" (n * (n + 1) / 2) !total

let suite =
  [
    Alcotest.test_case "sleep ordering" `Quick test_sleep_order;
    Alcotest.test_case "virtual time" `Quick test_virtual_time;
    Alcotest.test_case "chan fifo" `Quick test_chan_fifo;
    Alcotest.test_case "chan timeout" `Quick test_chan_timeout;
    Alcotest.test_case "timed-out waiter yields message" `Quick
      test_timed_out_waiter_does_not_eat_message;
    Alcotest.test_case "kill group" `Quick test_kill_group;
    Alcotest.test_case "kill before first run" `Quick test_kill_before_first_run;
    Alcotest.test_case "fork inherits group" `Quick test_fork_inherits_group;
    Alcotest.test_case "ivar" `Quick test_ivar;
    Alcotest.test_case "ivar timeout" `Quick test_ivar_timeout;
    Alcotest.test_case "cond signal/broadcast" `Quick test_cond_signal_broadcast;
    Alcotest.test_case "cond wait timeout" `Quick test_cond_wait_timeout;
    Alcotest.test_case "signal skips dead waiter" `Quick
      test_signal_skips_dead_waiter;
    Alcotest.test_case "fiber failures recorded" `Quick test_failures_recorded;
    Alcotest.test_case "live fibers reports blocked" `Quick
      test_live_fibers_reports_blocked;
    Alcotest.test_case "many fibers" `Quick test_many_fibers;
  ]

let () = Alcotest.run "rrq-sim" [ ("sched", suite) ]
