(* Tests for the lock manager, the RM base (via the KV store) and the
   transaction manager, including crash-recovery and two-phase commit. *)

module Sched = Rrq_sim.Sched
module Disk = Rrq_storage.Disk
module Lock = Rrq_txn.Lock
module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Kvdb = Rrq_kvdb.Kvdb
module H = Rrq_test_support.Sim_harness

let tx n = Txid.make ~origin:"t" ~inc:1 ~n

(* --- Lock manager --------------------------------------------------- *)

let test_lock_shared_compatible () =
  H.run_fiber (fun () ->
      let lm = Lock.create () in
      Lock.acquire lm (tx 1) ~key:"k" Lock.S;
      Lock.acquire lm (tx 2) ~key:"k" Lock.S;
      Alcotest.(check bool) "both hold" true
        (Lock.holds lm (tx 1) ~key:"k" Lock.S && Lock.holds lm (tx 2) ~key:"k" Lock.S))

let test_lock_exclusive_blocks () =
  let order = ref [] in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        ignore
          (Sched.spawn s ~name:"t1" (fun () ->
               Lock.acquire lm (tx 1) ~key:"k" Lock.X;
               order := "t1-got" :: !order;
               Sched.sleep 5.0;
               Lock.release_all lm (tx 1);
               order := "t1-rel" :: !order));
        ignore
          (Sched.spawn s ~name:"t2" (fun () ->
               Sched.sleep 1.0;
               Lock.acquire lm (tx 2) ~key:"k" Lock.X;
               order := "t2-got" :: !order)))
  in
  Alcotest.(check (list string)) "fifo order"
    [ "t1-got"; "t1-rel"; "t2-got" ] (List.rev !order)

let test_lock_reentrant_and_upgrade () =
  H.run_fiber (fun () ->
      let lm = Lock.create () in
      Lock.acquire lm (tx 1) ~key:"k" Lock.S;
      Lock.acquire lm (tx 1) ~key:"k" Lock.S;
      Lock.acquire lm (tx 1) ~key:"k" Lock.X;
      Alcotest.(check bool) "upgraded" true (Lock.holds lm (tx 1) ~key:"k" Lock.X))

let test_lock_fairness_no_starvation () =
  (* An X waiter must not be starved by a stream of later S requests. *)
  let got_x = ref false in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        ignore
          (Sched.spawn s ~name:"s1" (fun () ->
               Lock.acquire lm (tx 1) ~key:"k" Lock.S;
               Sched.sleep 2.0;
               Lock.release_all lm (tx 1)));
        ignore
          (Sched.spawn s ~name:"xw" (fun () ->
               Sched.sleep 1.0;
               Lock.acquire lm (tx 2) ~key:"k" Lock.X;
               got_x := true;
               Lock.release_all lm (tx 2)));
        ignore
          (Sched.spawn s ~name:"s2" (fun () ->
               Sched.sleep 1.5;
               (* queued behind the X waiter despite being S-compatible with
                  the current holder *)
               Lock.acquire lm (tx 3) ~key:"k" Lock.S;
               Alcotest.(check bool) "X granted before later S" true !got_x;
               Lock.release_all lm (tx 3))))
  in
  Alcotest.(check bool) "x eventually granted" true !got_x

let test_lock_deadlock_detected () =
  let deadlocked = ref 0 in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        let worker me mine theirs =
          ignore
            (Sched.spawn s ~name:(Txid.to_string me) (fun () ->
                 Lock.acquire lm me ~key:mine Lock.X;
                 Sched.sleep 1.0;
                 (try Lock.acquire lm me ~key:theirs Lock.X
                  with Lock.Deadlock _ ->
                    incr deadlocked;
                    Lock.release_all lm me);
                 Lock.release_all lm me))
        in
        worker (tx 1) "a" "b";
        worker (tx 2) "b" "a")
  in
  Alcotest.(check int) "exactly one victim" 1 !deadlocked

let test_lock_upgrade_deadlock_detected () =
  (* Two S holders both upgrading to X is a deadlock. *)
  let deadlocked = ref 0 and succeeded = ref 0 in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        let worker me =
          ignore
            (Sched.spawn s ~name:(Txid.to_string me) (fun () ->
                 Lock.acquire lm me ~key:"k" Lock.S;
                 Sched.sleep 1.0;
                 (try
                    Lock.acquire lm me ~key:"k" Lock.X;
                    incr succeeded
                  with Lock.Deadlock _ -> incr deadlocked);
                 Lock.release_all lm me))
        in
        worker (tx 1);
        worker (tx 2))
  in
  Alcotest.(check int) "one victim" 1 !deadlocked;
  Alcotest.(check int) "one winner" 1 !succeeded

let test_lock_cancel_waits () =
  let cancelled = ref false in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        ignore
          (Sched.spawn s ~name:"holder" (fun () ->
               Lock.acquire lm (tx 1) ~key:"k" Lock.X;
               Sched.sleep 10.0;
               Lock.release_all lm (tx 1)));
        ignore
          (Sched.spawn s ~name:"waiter" (fun () ->
               Sched.sleep 1.0;
               try Lock.acquire lm (tx 2) ~key:"k" Lock.X
               with Lock.Cancelled -> cancelled := true));
        ignore
          (Sched.spawn s ~name:"canceller" (fun () ->
               Sched.sleep 2.0;
               Lock.cancel_waits lm (tx 2))))
  in
  Alcotest.(check bool) "woken with Cancelled" true !cancelled

let test_lock_timeout () =
  let timed_out = ref false in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        ignore
          (Sched.spawn s ~name:"holder" (fun () ->
               Lock.acquire lm (tx 1) ~key:"k" Lock.X;
               Sched.sleep 10.0;
               Lock.release_all lm (tx 1)));
        ignore
          (Sched.spawn s ~name:"waiter" (fun () ->
               Sched.sleep 1.0;
               try Lock.acquire ~timeout:2.0 lm (tx 2) ~key:"k" Lock.X
               with Lock.Deadlock _ -> timed_out := true)))
  in
  Alcotest.(check bool) "timed out" true !timed_out

let test_lock_transfer () =
  (* Lock inheritance across chained transactions (paper 6). *)
  let t3_blocked_until = ref 0.0 in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        ignore
          (Sched.spawn s ~name:"chain" (fun () ->
               Lock.acquire lm (tx 1) ~key:"acct" Lock.X;
               Sched.sleep 1.0;
               (* commit tx1, inherit its lock into tx2 *)
               Lock.transfer lm ~from:(tx 1) ~to_:(tx 2);
               Sched.sleep 1.0;
               Lock.release_all lm (tx 2)));
        ignore
          (Sched.spawn s ~name:"other" (fun () ->
               Sched.sleep 0.5;
               Lock.acquire lm (tx 3) ~key:"acct" Lock.X;
               t3_blocked_until := Sched.clock ();
               Lock.release_all lm (tx 3))))
  in
  Alcotest.(check (float 1e-9)) "blocked across the transfer" 2.0 !t3_blocked_until

let test_lock_release_unblocks_shared_group () =
  let got = ref 0 in
  let _ =
    H.run (fun s ->
        let lm = Lock.create () in
        ignore
          (Sched.spawn s ~name:"x" (fun () ->
               Lock.acquire lm (tx 1) ~key:"k" Lock.X;
               Sched.sleep 1.0;
               Lock.release_all lm (tx 1)));
        for i = 2 to 4 do
          ignore
            (Sched.spawn s ~name:(Printf.sprintf "s%d" i) (fun () ->
                 Sched.sleep 0.5;
                 Lock.acquire lm (tx i) ~key:"k" Lock.S;
                 incr got))
        done)
  in
  Alcotest.(check int) "all shared granted together" 3 !got

(* --- KVDB (RM base) -------------------------------------------------- *)

let fresh_kv ?(name = "kv") disk () = Kvdb.open_kv disk ~name

let test_kv_commit_durable () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      let id = tx 1 in
      Kvdb.put kv id "a" "1";
      Kvdb.put kv id "b" "2";
      let p = Kvdb.participant kv in
      Alcotest.(check bool) "one-phase ok" true (p.Tm.p_one_phase id);
      Disk.crash disk;
      let kv2 = fresh_kv disk () in
      Alcotest.(check (option string)) "a" (Some "1") (Kvdb.committed_value kv2 "a");
      Alcotest.(check (option string)) "b" (Some "2") (Kvdb.committed_value kv2 "b"))

let test_kv_abort_discards () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      let id = tx 1 in
      Kvdb.put kv id "a" "1";
      (Kvdb.participant kv).Tm.p_abort id;
      Alcotest.(check (option string)) "nothing" None (Kvdb.committed_value kv "a");
      (* the lock was released: a new transaction can take the key at once *)
      let id2 = tx 2 in
      Kvdb.put kv id2 "a" "2";
      ignore ((Kvdb.participant kv).Tm.p_one_phase id2);
      Alcotest.(check (option string)) "second txn wins" (Some "2")
        (Kvdb.committed_value kv "a"))

let test_kv_read_own_writes () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      let id = tx 1 in
      Kvdb.put kv id "a" "1";
      Alcotest.(check (option string)) "own write" (Some "1") (Kvdb.get kv id "a");
      Kvdb.delete kv id "a";
      Alcotest.(check (option string)) "own delete" None (Kvdb.get kv id "a"))

let test_kv_add_helper () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      let id = tx 1 in
      Alcotest.(check int) "0+5" 5 (Kvdb.add kv id "c" 5);
      Alcotest.(check int) "5+3" 8 (Kvdb.add kv id "c" 3);
      ignore ((Kvdb.participant kv).Tm.p_one_phase id);
      Alcotest.(check (option string)) "committed" (Some "8")
        (Kvdb.committed_value kv "c"))

let test_kv_crash_loses_uncommitted () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      Kvdb.put kv (tx 1) "a" "1";
      Disk.crash disk;
      let kv2 = fresh_kv disk () in
      Alcotest.(check (option string)) "lost" None (Kvdb.committed_value kv2 "a"))

let test_kv_prepared_survives_crash () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      let id = tx 1 in
      Kvdb.put kv id "a" "1";
      let p = Kvdb.participant kv in
      Alcotest.(check bool) "prepared" true (p.Tm.p_prepare id ~coordinator:"c");
      Disk.crash disk;
      let kv2 = fresh_kv disk () in
      (* in doubt: invisible but recorded *)
      Alcotest.(check (option string)) "invisible" None (Kvdb.committed_value kv2 "a");
      let p2 = Kvdb.participant kv2 in
      Alcotest.(check bool) "commit delivers" true (p2.Tm.p_commit id);
      Alcotest.(check (option string)) "applied" (Some "1")
        (Kvdb.committed_value kv2 "a");
      (* and survives another crash *)
      Disk.crash disk;
      let kv3 = fresh_kv disk () in
      Alcotest.(check (option string)) "still applied" (Some "1")
        (Kvdb.committed_value kv3 "a"))

let test_kv_indoubt_blocks_readers () =
  let read_done_at = ref 0.0 in
  let _ =
    H.run (fun s ->
        let disk = Disk.create "n1" in
        let kv = fresh_kv disk () in
        ignore
          (Sched.spawn s ~name:"flow" (fun () ->
               let id = tx 1 in
               Kvdb.put kv id "a" "1";
               ignore ((Kvdb.participant kv).Tm.p_prepare id ~coordinator:"c");
               Disk.crash disk;
               let kv2 = fresh_kv disk () in
               ignore
                 (Sched.fork ~name:"reader" (fun () ->
                      (* blocked by the in-doubt X lock *)
                      ignore (Kvdb.get kv2 (tx 2) "a");
                      read_done_at := Sched.clock ();
                      Kvdb.release_locks kv2 (tx 2)));
               Sched.sleep 5.0;
               ignore ((Kvdb.participant kv2).Tm.p_commit id))))
  in
  Alcotest.(check bool) "reader waited for resolution" true (!read_done_at >= 5.0)

let test_kv_abort_prepared () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      let id = tx 1 in
      Kvdb.put kv id "a" "1";
      ignore ((Kvdb.participant kv).Tm.p_prepare id ~coordinator:"c");
      (Kvdb.participant kv).Tm.p_abort id;
      Disk.crash disk;
      let kv2 = fresh_kv disk () in
      Alcotest.(check (option string)) "aborted stays gone" None
        (Kvdb.committed_value kv2 "a"))

let test_kv_checkpoint_recovery_equivalence () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let kv = fresh_kv disk () in
      for i = 1 to 20 do
        let id = tx i in
        Kvdb.put kv id (Printf.sprintf "k%d" (i mod 5)) (string_of_int i);
        ignore ((Kvdb.participant kv).Tm.p_one_phase id)
      done;
      Kvdb.checkpoint kv;
      for i = 21 to 30 do
        let id = tx i in
        Kvdb.put kv id (Printf.sprintf "k%d" (i mod 5)) (string_of_int i);
        ignore ((Kvdb.participant kv).Tm.p_one_phase id)
      done;
      let before = Kvdb.committed_bindings kv in
      Disk.crash disk;
      let kv2 = fresh_kv disk () in
      Alcotest.(check (list (pair string string))) "same state" before
        (Kvdb.committed_bindings kv2))

(* --- TM / two-phase commit ------------------------------------------ *)

let test_tm_two_rm_commit () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let tm = Tm.open_tm disk ~name:"tm1" in
      let kva = Kvdb.open_kv disk ~name:"kva" in
      let kvb = Kvdb.open_kv disk ~name:"kvb" in
      let txn = Tm.begin_txn tm in
      let id = Tm.txn_id txn in
      Kvdb.put kva id "x" "1";
      Kvdb.put kvb id "y" "2";
      Tm.join txn (Kvdb.participant kva);
      Tm.join txn (Kvdb.participant kvb);
      (match Tm.commit tm txn with
      | Tm.Committed -> ()
      | Tm.Aborted -> Alcotest.fail "should commit");
      Alcotest.(check (option string)) "x" (Some "1") (Kvdb.committed_value kva "x");
      Alcotest.(check (option string)) "y" (Some "2") (Kvdb.committed_value kvb "y");
      Alcotest.(check (list pass)) "nothing pending" [] (Tm.pending_decisions tm))

let test_tm_vote_no_aborts_all () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let tm = Tm.open_tm disk ~name:"tm1" in
      let kva = Kvdb.open_kv disk ~name:"kva" in
      let txn = Tm.begin_txn tm in
      let id = Tm.txn_id txn in
      Kvdb.put kva id "x" "1";
      Tm.join txn (Kvdb.participant kva);
      Tm.join txn
        {
          Tm.part_name = "naysayer";
          p_prepare = (fun _ ~coordinator:_ -> false);
          p_commit = (fun _ -> true);
          p_abort = (fun _ -> ());
          p_one_phase = (fun _ -> true);
          p_has_work = (fun _ -> true);
          p_is_local = true;
        };
      (match Tm.commit tm txn with
      | Tm.Aborted -> ()
      | Tm.Committed -> Alcotest.fail "must abort");
      Alcotest.(check (option string)) "x discarded" None
        (Kvdb.committed_value kva "x"))

let test_tm_coordinator_crash_before_decision_presumes_abort () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let tm = Tm.open_tm disk ~name:"tm1" in
      let kva = Kvdb.open_kv disk ~name:"kva" in
      let txn = Tm.begin_txn tm in
      let id = Tm.txn_id txn in
      Kvdb.put kva id "x" "1";
      (* Participant prepares, then the coordinator "crashes" before logging
         a decision. *)
      ignore ((Kvdb.participant kva).Tm.p_prepare id ~coordinator:"tm1");
      Disk.crash disk;
      let tm2 = Tm.open_tm disk ~name:"tm1" in
      Alcotest.(check bool) "presumed abort" true (Tm.decision tm2 id = `Aborted))

let test_tm_decision_survives_crash_and_redelivers () =
  let committed_value = ref None in
  let _ =
    H.run (fun s ->
        let disk = Disk.create "n1" in
        ignore
          (Sched.spawn s ~name:"flow" (fun () ->
               let tm = Tm.open_tm disk ~name:"tm1" in
               let kva = Kvdb.open_kv disk ~name:"kva" in
               let kvb = Kvdb.open_kv disk ~name:"kvb" in
               let txn = Tm.begin_txn tm in
               let id = Tm.txn_id txn in
               Kvdb.put kva id "x" "1";
               Kvdb.put kvb id "y" "2";
               Tm.join txn (Kvdb.participant kva);
               (* kvb's commit delivery fails the first time around *)
               let flaky_done = ref false in
               let pb = Kvdb.participant kvb in
               Tm.join txn
                 {
                   pb with
                   Tm.p_commit =
                     (fun tid ->
                       if !flaky_done then pb.Tm.p_commit tid
                       else begin
                         flaky_done := true;
                         false
                       end);
                 };
               (match Tm.commit tm txn with
               | Tm.Committed -> ()
               | Tm.Aborted -> Alcotest.fail "should commit");
               Alcotest.(check bool) "decision pending" true
                 (Tm.pending_decisions tm <> []);
               (* background redelivery retries after 1s *)
               Sched.sleep 3.0;
               Alcotest.(check (list pass)) "retired" [] (Tm.pending_decisions tm);
               committed_value := Kvdb.committed_value kvb "y")))
  in
  Alcotest.(check (option string)) "kvb applied via redelivery" (Some "2")
    !committed_value

let test_tm_recover_pending_after_crash () =
  let final = ref None in
  let retired = ref false in
  let disk = Disk.create "n1" in
  let _ =
    H.run (fun s ->
        (* Incarnation 1: commit a 2PC transaction whose second participant
           never acknowledges, then crash the whole node (fibers + volatile
           disk state). *)
        ignore
          (Sched.spawn s ~group:"inc1" ~name:"flow1" (fun () ->
               let tm = Tm.open_tm disk ~name:"tm1" in
               let kva = Kvdb.open_kv disk ~name:"kva" in
               let kvb = Kvdb.open_kv disk ~name:"kvb" in
               let txn = Tm.begin_txn tm in
               let id = Tm.txn_id txn in
               Kvdb.put kva id "x" "1";
               Kvdb.put kvb id "y" "2";
               Tm.join txn (Kvdb.participant kva);
               let pb = Kvdb.participant kvb in
               Tm.join txn { pb with Tm.p_commit = (fun _ -> false) };
               match Tm.commit tm txn with
               | Tm.Committed -> ()
               | Tm.Aborted -> Alcotest.fail "should commit"));
        Sched.at s 10.0 (fun () ->
            Sched.kill_group s "inc1";
            Disk.crash disk;
            (* Incarnation 2: recovery finds the decision and redelivers. *)
            ignore
              (Sched.spawn s ~group:"inc2" ~name:"flow2" (fun () ->
                   let tm2 = Tm.open_tm disk ~name:"tm1" in
                   let kva2 = Kvdb.open_kv disk ~name:"kva" in
                   let kvb2 = Kvdb.open_kv disk ~name:"kvb" in
                   Tm.set_resolver tm2 (fun pname ->
                       if pname = "kva" then Some (Kvdb.participant kva2)
                       else if pname = "kvb" then Some (Kvdb.participant kvb2)
                       else None);
                   Alcotest.(check bool) "decision recovered" true
                     (Tm.pending_decisions tm2 <> []);
                   Tm.recover_pending tm2;
                   Sched.sleep 5.0;
                   retired := Tm.pending_decisions tm2 = [];
                   final := Kvdb.committed_value kvb2 "y"))))
  in
  Alcotest.(check bool) "retired after recovery" true !retired;
  Alcotest.(check (option string)) "kvb eventually applied" (Some "2") !final

let test_tm_empty_and_single () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let tm = Tm.open_tm disk ~name:"tm1" in
      let txn = Tm.begin_txn tm in
      Alcotest.(check bool) "empty commits" true (Tm.commit tm txn = Tm.Committed);
      let kva = Kvdb.open_kv disk ~name:"kva" in
      let txn2 = Tm.begin_txn tm in
      Kvdb.put kva (Tm.txn_id txn2) "x" "1";
      Tm.join txn2 (Kvdb.participant kva);
      Alcotest.(check bool) "single commits one-phase" true
        (Tm.commit tm txn2 = Tm.Committed);
      Alcotest.(check (list pass)) "no 2pc pending" [] (Tm.pending_decisions tm))

let test_tm_abort_releases () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let tm = Tm.open_tm disk ~name:"tm1" in
      let kva = Kvdb.open_kv disk ~name:"kva" in
      let txn = Tm.begin_txn tm in
      Kvdb.put kva (Tm.txn_id txn) "x" "1";
      Tm.join txn (Kvdb.participant kva);
      Tm.abort tm txn;
      Tm.abort tm txn (* idempotent *);
      let txn2 = Tm.begin_txn tm in
      Kvdb.put kva (Tm.txn_id txn2) "x" "2";
      Tm.join txn2 (Kvdb.participant kva);
      ignore (Tm.commit tm txn2);
      Alcotest.(check (option string)) "second txn proceeds" (Some "2")
        (Kvdb.committed_value kva "x"))

let test_tm_hooks () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n1" in
      let tm = Tm.open_tm disk ~name:"tm1" in
      let log = ref [] in
      let txn = Tm.begin_txn tm in
      Tm.on_commit txn (fun () -> log := "c1" :: !log);
      Tm.on_commit txn (fun () -> log := "c2" :: !log);
      Tm.on_abort txn (fun () -> log := "a" :: !log);
      ignore (Tm.commit tm txn);
      Alcotest.(check (list string)) "commit hooks in order" [ "c1"; "c2" ]
        (List.rev !log))

let test_txid_roundtrip () =
  let id = Txid.make ~origin:"node-7" ~inc:3 ~n:42 in
  let e = Rrq_util.Codec.encoder () in
  Txid.encode e id;
  let d = Rrq_util.Codec.decoder (Rrq_util.Codec.to_string e) in
  Alcotest.(check bool) "roundtrip" true (Txid.equal id (Txid.decode d));
  Alcotest.(check string) "to_string" "node-7.3.42" (Txid.to_string id)

let lock_suite =
  [
    Alcotest.test_case "S/S compatible" `Quick test_lock_shared_compatible;
    Alcotest.test_case "X blocks, FIFO" `Quick test_lock_exclusive_blocks;
    Alcotest.test_case "reentrant + upgrade" `Quick test_lock_reentrant_and_upgrade;
    Alcotest.test_case "fairness: no X starvation" `Quick
      test_lock_fairness_no_starvation;
    Alcotest.test_case "deadlock detected" `Quick test_lock_deadlock_detected;
    Alcotest.test_case "upgrade deadlock detected" `Quick
      test_lock_upgrade_deadlock_detected;
    Alcotest.test_case "cancel waits" `Quick test_lock_cancel_waits;
    Alcotest.test_case "timeout" `Quick test_lock_timeout;
    Alcotest.test_case "transfer (lock inheritance)" `Quick test_lock_transfer;
    Alcotest.test_case "release unblocks shared group" `Quick
      test_lock_release_unblocks_shared_group;
  ]

let kv_suite =
  [
    Alcotest.test_case "commit durable" `Quick test_kv_commit_durable;
    Alcotest.test_case "abort discards" `Quick test_kv_abort_discards;
    Alcotest.test_case "read own writes" `Quick test_kv_read_own_writes;
    Alcotest.test_case "add helper" `Quick test_kv_add_helper;
    Alcotest.test_case "crash loses uncommitted" `Quick
      test_kv_crash_loses_uncommitted;
    Alcotest.test_case "prepared survives crash" `Quick
      test_kv_prepared_survives_crash;
    Alcotest.test_case "in-doubt blocks readers" `Quick
      test_kv_indoubt_blocks_readers;
    Alcotest.test_case "abort prepared" `Quick test_kv_abort_prepared;
    Alcotest.test_case "checkpoint recovery equivalence" `Quick
      test_kv_checkpoint_recovery_equivalence;
  ]

let tm_suite =
  [
    Alcotest.test_case "two-RM 2PC commit" `Quick test_tm_two_rm_commit;
    Alcotest.test_case "no-vote aborts all" `Quick test_tm_vote_no_aborts_all;
    Alcotest.test_case "coordinator crash => presumed abort" `Quick
      test_tm_coordinator_crash_before_decision_presumes_abort;
    Alcotest.test_case "decision survives crash, redelivers" `Quick
      test_tm_decision_survives_crash_and_redelivers;
    Alcotest.test_case "recover_pending after crash" `Quick
      test_tm_recover_pending_after_crash;
    Alcotest.test_case "empty + single participant" `Quick test_tm_empty_and_single;
    Alcotest.test_case "abort releases" `Quick test_tm_abort_releases;
    Alcotest.test_case "hooks" `Quick test_tm_hooks;
    Alcotest.test_case "txid roundtrip" `Quick test_txid_roundtrip;
  ]

let () =
  Alcotest.run "rrq-txn"
    [ ("lock", lock_suite); ("kvdb", kv_suite); ("tm", tm_suite) ]
