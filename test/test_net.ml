(* Tests for the simulated network: RPC semantics, loss, partitions,
   service errors, node crash/restart, one-way messages. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module H = Rrq_test_support.Sim_harness

type Net.payload += Ping of int | Pong of int | Boom | Slow of float

let echo_service msg =
  match msg with
  | Ping n -> Pong (n * 2)
  | Boom -> failwith "service exploded"
  | Slow d ->
    Sched.sleep d;
    Net.Ack
  | _ -> raise (Invalid_argument "unexpected")

let rig ?drop_rate ?latency s =
  let net = Net.create ?latency ?drop_rate s (Rng.create 99) in
  let server = Net.make_node net "server" in
  Net.add_service server "echo" echo_service;
  let client = Net.make_node net "client" in
  (net, server, client)

let test_rpc_roundtrip () =
  H.run_fiber' (fun s ->
      let _, _, client = rig s in
      match Net.call client ~dst:"server" ~service:"echo" (Ping 21) with
      | Pong n -> Alcotest.(check int) "doubled" 42 n
      | _ -> Alcotest.fail "wrong reply")

let test_rpc_latency () =
  H.run_fiber' (fun s ->
      let _, _, client = rig ~latency:0.1 s in
      let t0 = Sched.clock () in
      ignore (Net.call client ~dst:"server" ~service:"echo" (Ping 1));
      Alcotest.(check (float 1e-9)) "two hops" 0.2 (Sched.clock () -. t0))

let test_rpc_unknown_service () =
  H.run_fiber' (fun s ->
      let _, _, client = rig s in
      match Net.call client ~dst:"server" ~service:"nope" (Ping 1) with
      | _ -> Alcotest.fail "should not succeed"
      | exception Net.Service_error msg ->
        Alcotest.(check bool) "mentions service" true
          (String.length msg > 0))

let test_rpc_service_exception () =
  H.run_fiber' (fun s ->
      let _, _, client = rig s in
      match Net.call client ~dst:"server" ~service:"echo" Boom with
      | _ -> Alcotest.fail "should not succeed"
      | exception Net.Service_error _ -> ())

let test_rpc_timeout_on_dead_node () =
  H.run_fiber' (fun s ->
      let _, server, client = rig s in
      Net.crash server;
      let t0 = Sched.clock () in
      match Net.call client ~timeout:1.0 ~dst:"server" ~service:"echo" (Ping 1) with
      | _ -> Alcotest.fail "should time out"
      | exception Net.Rpc_timeout ->
        Alcotest.(check (float 1e-9)) "after the timeout" 1.0
          (Sched.clock () -. t0))

let test_rpc_timeout_on_slow_service () =
  H.run_fiber' (fun s ->
      let _, _, client = rig s in
      match
        Net.call client ~timeout:0.5 ~dst:"server" ~service:"echo" (Slow 5.0)
      with
      | _ -> Alcotest.fail "should time out"
      | exception Net.Rpc_timeout -> ())

let test_partition_and_heal () =
  H.run_fiber' (fun s ->
      let net, _, client = rig s in
      Net.partition net "client" "server";
      Alcotest.(check bool) "partitioned" true (Net.partitioned net "server" "client");
      (match Net.call client ~timeout:0.5 ~dst:"server" ~service:"echo" (Ping 1) with
      | _ -> Alcotest.fail "should time out across partition"
      | exception Net.Rpc_timeout -> ());
      Net.heal net "client" "server";
      match Net.call client ~dst:"server" ~service:"echo" (Ping 1) with
      | Pong 2 -> ()
      | _ -> Alcotest.fail "should work after heal")

let test_drop_rate_counted () =
  H.run_fiber' (fun s ->
      let net, _, client = rig ~drop_rate:0.5 s in
      let ok = ref 0 in
      for _ = 1 to 40 do
        match Net.call client ~timeout:0.2 ~dst:"server" ~service:"echo" (Ping 1) with
        | Pong _ -> incr ok
        | _ -> ()
        | exception Net.Rpc_timeout -> ()
      done;
      Alcotest.(check bool) "some dropped" true (Net.messages_dropped net > 0);
      Alcotest.(check bool) "some delivered" true (!ok > 0);
      Alcotest.(check bool) "not all delivered" true (!ok < 40))

let test_crash_kills_service_fibers () =
  let progressed = ref false in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 1) in
        let server = Net.make_node net "server" in
        Net.add_service server "slow" (fun _ ->
            Sched.sleep 10.0;
            progressed := true;
            Net.Ack);
        let client = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"client" ~name:"caller" (fun () ->
               match
                 Net.call client ~timeout:2.0 ~dst:"server" ~service:"slow" Net.Ack
               with
               | _ -> Alcotest.fail "should time out"
               | exception Net.Rpc_timeout -> ()));
        Sched.at s 1.0 (fun () -> Net.crash server))
  in
  Alcotest.(check bool) "handler never resumed after crash" false !progressed

let test_restart_runs_boot () =
  H.run_fiber' (fun s ->
      let net = Net.create s (Rng.create 1) in
      let server = Net.make_node net "server" in
      let boots = ref 0 in
      Net.set_boot server (fun node ->
          incr boots;
          Net.add_service node "echo" echo_service);
      Net.boot server;
      let client = Net.make_node net "client" in
      ignore (Net.call client ~dst:"server" ~service:"echo" (Ping 1));
      Net.crash server;
      Net.restart server;
      (match Net.call client ~dst:"server" ~service:"echo" (Ping 3) with
      | Pong 6 -> ()
      | _ -> Alcotest.fail "service back after restart");
      Alcotest.(check int) "boot ran twice" 2 !boots)

let test_cast_fire_and_forget () =
  let got = ref [] in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 1) in
        let server = Net.make_node net "server" in
        Net.add_service server "sink" (fun msg ->
            (match msg with Ping n -> got := n :: !got | _ -> ());
            Net.Ack);
        let client = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"c" ~name:"caster" (fun () ->
               Net.cast client ~dst:"server" ~service:"sink" (Ping 1);
               Net.cast client ~dst:"server" ~service:"sink" (Ping 2))))
  in
  Alcotest.(check (list int)) "both delivered in order" [ 1; 2 ] (List.rev !got)

let test_duplicate_node_rejected () =
  H.run_fiber' (fun s ->
      let net = Net.create s (Rng.create 1) in
      ignore (Net.make_node net "n");
      match Net.make_node net "n" with
      | _ -> Alcotest.fail "duplicate should be rejected"
      | exception Invalid_argument _ -> ())

let suite =
  [
    Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
    Alcotest.test_case "rpc latency" `Quick test_rpc_latency;
    Alcotest.test_case "unknown service" `Quick test_rpc_unknown_service;
    Alcotest.test_case "service exception" `Quick test_rpc_service_exception;
    Alcotest.test_case "timeout on dead node" `Quick test_rpc_timeout_on_dead_node;
    Alcotest.test_case "timeout on slow service" `Quick
      test_rpc_timeout_on_slow_service;
    Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
    Alcotest.test_case "drop rate" `Quick test_drop_rate_counted;
    Alcotest.test_case "crash kills service fibers" `Quick
      test_crash_kills_service_fibers;
    Alcotest.test_case "restart runs boot" `Quick test_restart_runs_boot;
    Alcotest.test_case "cast fire-and-forget" `Quick test_cast_fire_and_forget;
    Alcotest.test_case "duplicate node rejected" `Quick test_duplicate_node_rejected;
  ]

let () = Alcotest.run "rrq-net" [ ("net", suite) ]
