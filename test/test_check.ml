(* The simulation-testing subsystem, tested on itself:

   - scheduling policies: randomized priorities really explore different
     interleavings, and both policies are deterministic per seed;
   - decision traces: record/replay reproduces a run event-for-event, and
     the trace and plan codecs round-trip;
   - the explorer: >= 200 schedules on the correct protocol pass every
     auditor, and the intentionally buggy clerk (untagged blind re-Send) is
     caught and shrunk to a minimal still-failing plan;
   - the crash-site enumerator: every (site, hit) combination of the
     quickstart world recovers cleanly;
   - the HA pair: >= 200 random fault plans (primary kills, client
     partitions) pass every auditor through failover, the lag-buggy
     shipper is caught and shrunk, and killing the primary at every
     replication crash site (ship and ha prefixes) fails over cleanly;
   - the sharded world: >= 200 random fault plans (shard kills,
     client/shard and shard/shard partitions) across a mid-run shard-map
     change pass every auditor, the tag-stripping forwarder (the designed
     misroute-during-map-change anomaly) is caught and shrunk, and killing
     the reaching shard at every shard./wal./tm. crash site recovers to a
     clean audit. *)

module Sched = Rrq_sim.Sched
module C = Rrq_check
module Obs = Rrq_obs

(* ---- scheduling policies ------------------------------------------------ *)

(* Five fibers, each yielding between appends: the execution order is the
   scheduler's choice and nothing else. *)
let interleaving policy =
  let order = ref [] in
  let s = Sched.create ~policy () in
  for i = 0 to 4 do
    ignore
      (Sched.spawn s ~name:(Printf.sprintf "f%d" i) (fun () ->
           for step = 0 to 2 do
             order := (i, step) :: !order;
             Sched.yield ()
           done))
  done;
  Sched.run s;
  (List.rev !order, s)

let test_policies () =
  let fifo, _ = interleaving Sched.Fifo in
  let rand1, _ = interleaving (Sched.Random_priority 7) in
  let rand1', _ = interleaving (Sched.Random_priority 7) in
  let rand2, _ = interleaving (Sched.Random_priority 8) in
  Alcotest.(check bool)
    "random priorities change the interleaving" true (fifo <> rand1);
  Alcotest.(check bool) "same seed, same interleaving" true (rand1 = rand1');
  Alcotest.(check bool)
    "different seeds explore differently" true (rand1 <> rand2)

let test_trace_replay () =
  let original, s = interleaving (Sched.Random_priority 42) in
  Alcotest.(check bool) "trace not truncated" false (Sched.trace_truncated s);
  let trace = Sched.trace s in
  Alcotest.(check bool) "trace is non-trivial" true (Array.length trace > 10);
  let replayed, s' = interleaving (Sched.Replay trace) in
  Alcotest.(check bool)
    "replay reproduces the event order" true (original = replayed);
  Alcotest.(check string) "replay re-records the same trace"
    (Sched.trace_to_string trace)
    (Sched.trace_to_string (Sched.trace s'))

let test_trace_codec () =
  List.iter
    (fun d ->
      Alcotest.(check string) "decision roundtrip"
        (Sched.decision_to_string d)
        (Sched.decision_to_string
           (Sched.decision_of_string (Sched.decision_to_string d))))
    [ Sched.Pick 0; Sched.Pick 31; Sched.Timer_fired 17; Sched.Fault "crash b" ];
  let _, s = interleaving (Sched.Random_priority 3) in
  Sched.note_fault s "synthetic";
  let t = Sched.trace s in
  Alcotest.(check string) "trace roundtrip" (Sched.trace_to_string t)
    (Sched.trace_to_string (Sched.trace_of_string (Sched.trace_to_string t)))

(* A livelock's step-limit failure must name the spinning fibers and the
   recent decisions, so it is diagnosable from test output alone. *)
let test_step_limit_diagnostics () =
  let s = Sched.create () in
  ignore
    (Sched.spawn s ~name:"spinner-a" (fun () ->
         while true do
           Sched.yield ()
         done));
  ignore
    (Sched.spawn s ~name:"spinner-b" (fun () ->
         while true do
           Sched.yield ()
         done));
  match Sched.run ~max_steps:200 s with
  | () -> Alcotest.fail "expected a step-limit failure"
  | exception Failure msg ->
    let contains needle =
      let nl = String.length needle and ml = String.length msg in
      let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the live fibers" true (contains "spinner-a");
    Alcotest.(check bool) "both of them" true (contains "spinner-b");
    Alcotest.(check bool) "shows recent decisions" true (contains "decisions")

(* ---- plan codec --------------------------------------------------------- *)

let profile = C.Scenario.quickstart.C.Scenario.profile

let test_plan_codec () =
  for seed = 1 to 50 do
    let plan = C.Plan.random ~seed ~profile in
    let back = C.Plan.of_string (C.Plan.to_string plan) in
    Alcotest.(check string)
      (Printf.sprintf "plan %d roundtrips" seed)
      (C.Plan.to_string plan) (C.Plan.to_string back);
    Alcotest.(check bool)
      (Printf.sprintf "plan %d equal after roundtrip" seed)
      true (plan = back)
  done

(* ---- the explorer on the correct protocol ------------------------------- *)

let test_explore_correct () =
  let report = C.Explore.run ~budget:200 ~seed:1 C.Scenario.quickstart in
  Alcotest.(check int) "explored the whole budget" 200 report.C.Explore.explored;
  Alcotest.(check int) "every schedule passed" 200 report.C.Explore.passed;
  Alcotest.(check bool) "no failure" true (report.C.Explore.failure = None)

(* ---- the explorer on the buggy clerk ------------------------------------ *)

let test_explore_buggy_and_shrink () =
  let report = C.Explore.run ~budget:100 ~seed:1 C.Scenario.buggy_clerk in
  let f =
    match report.C.Explore.failure with
    | Some f -> f
    | None -> Alcotest.fail "explorer failed to catch the buggy clerk"
  in
  Alcotest.(check bool) "the failing outcome has findings" true
    (f.C.Explore.outcome.C.Scenario.findings <> []);
  let minimal = C.Explore.minimal_plan f in
  Alcotest.(check bool) "shrunk plan is no larger" true
    (List.length minimal.C.Plan.faults <= List.length f.C.Explore.plan.C.Plan.faults);
  (* The minimized plan must still fail... *)
  let o = C.Scenario.run C.Scenario.buggy_clerk minimal in
  Alcotest.(check bool) "minimal plan still fails" true (C.Scenario.failed o);
  (* ... and be minimal under single-fault removal. *)
  List.iteri
    (fun i _ ->
      let without =
        {
          minimal with
          C.Plan.faults = List.filteri (fun j _ -> j <> i) minimal.C.Plan.faults;
        }
      in
      Alcotest.(check bool)
        (Printf.sprintf "dropping fault %d makes it pass" i)
        false
        (C.Scenario.failed (C.Scenario.run C.Scenario.buggy_clerk without)))
    minimal.C.Plan.faults;
  (* The printed repro must parse back to the minimal plan. *)
  let line = C.Explore.repro_line "buggy" minimal in
  Alcotest.(check bool) "repro line carries the plan" true
    (String.length line > String.length (C.Plan.to_string minimal))

(* A scenario run is a pure function of its plan: same plan, same outcome,
   same decision trace. *)
let test_outcome_determinism () =
  let plan = C.Explore.plan_of_index C.Scenario.quickstart ~seed:5 3 in
  let o1 = C.Scenario.run C.Scenario.quickstart plan in
  let o2 = C.Scenario.run C.Scenario.quickstart plan in
  Alcotest.(check string) "same findings"
    (C.Audit.findings_to_string o1.C.Scenario.findings)
    (C.Audit.findings_to_string o2.C.Scenario.findings);
  Alcotest.(check int) "same replies" o1.C.Scenario.replies o2.C.Scenario.replies;
  Alcotest.(check (float 0.0)) "same virtual time" o1.C.Scenario.virtual_time
    o2.C.Scenario.virtual_time;
  Alcotest.(check string) "same decision trace"
    (Sched.trace_to_string o1.C.Scenario.trace)
    (Sched.trace_to_string o2.C.Scenario.trace)

(* Replaying a recorded trace through the Replay policy reproduces the
   identical audit outcome — on a failing schedule of the buggy clerk. *)
let test_replay_reproduces_failure () =
  let report = C.Explore.run ~budget:100 ~seed:1 ~shrink_failures:false C.Scenario.buggy_clerk in
  let f =
    match report.C.Explore.failure with
    | Some f -> f
    | None -> Alcotest.fail "no failure to replay"
  in
  let o1 = f.C.Explore.outcome in
  Alcotest.(check bool) "trace replayable" false o1.C.Scenario.trace_truncated;
  let o2 =
    C.Scenario.run ~policy:(Sched.Replay o1.C.Scenario.trace)
      C.Scenario.buggy_clerk f.C.Explore.plan
  in
  Alcotest.(check string) "replay reproduces the audit result"
    (C.Audit.findings_to_string o1.C.Scenario.findings)
    (C.Audit.findings_to_string o2.C.Scenario.findings);
  Alcotest.(check int) "replay reproduces the replies" o1.C.Scenario.replies
    o2.C.Scenario.replies;
  Alcotest.(check string) "replay re-records the identical trace"
    (Sched.trace_to_string o1.C.Scenario.trace)
    (Sched.trace_to_string o2.C.Scenario.trace)

(* ---- the crash-site enumerator ------------------------------------------ *)

let test_crash_site_sweep () =
  let failures = ref [] in
  let visited =
    C.Sweep.crash_sites
      ~probe:(fun () ->
        let clean = C.Plan.make ~seed:0 ~policy:`Fifo ~faults:[] in
        ignore (C.Scenario.run C.Scenario.quickstart clean))
      ~at:(fun ~site ~hit ->
        let o = C.Scenario.quickstart_crash_at ~site ~hit ~recover_after:1.0 in
        if C.Scenario.failed o then
          failures :=
            Printf.sprintf "%s hit %d: %s" site hit
              (C.Audit.findings_to_string o.C.Scenario.findings)
            :: !failures)
      ()
  in
  let has prefix =
    List.exists
      (fun (site, _) ->
        String.length site >= String.length prefix
        && String.sub site 0 (String.length prefix) = prefix)
      visited
  in
  Alcotest.(check bool) "probe found WAL sync sites" true (has "wal.sync:");
  Alcotest.(check bool) "probe found 2PC decision sites" true (has "tm.");
  Alcotest.(check bool) "probe found clerk sites" true (has "clerk.");
  Alcotest.(check bool) "probe found the server commit site" true
    (has "server.handled:req");
  let combos = List.fold_left (fun a (_, n) -> a + n) 0 visited in
  Alcotest.(check bool)
    (Printf.sprintf "swept a substantial site space (%d combos)" combos)
    true (combos >= 50);
  Alcotest.(check (list string)) "every crash point recovered cleanly" []
    (List.rev !failures)

(* ---- main-memory queue mode under crash sweeps --------------------------- *)

let starts_with prefix site =
  String.length site >= String.length prefix
  && String.sub site 0 (String.length prefix) = prefix

(* The redo-only recovery claim behind the main-memory fast path: with the
   request queue in [Main_memory] durability, element payload and order
   live purely in memory, only redo records hit the WAL, and recovery
   rebuilds queue state from the redo scan. Crashing at every WAL sync
   boundary (before and after the force) and every 2PC decision point must
   still leave exactly-once intact — the same invariant the stable sweep
   checks, now with no stable queue image to fall back on. *)
let mm_swept_prefixes = [ "wal.sync:"; "wal.synced:"; "tm.prepared"; "tm.decided" ]

let test_mm_crash_sweep () =
  let failures = ref [] in
  let visited =
    C.Sweep.crash_sites
      ~only:(fun site -> List.exists (fun p -> starts_with p site) mm_swept_prefixes)
      ~probe:(fun () ->
        let clean = C.Plan.make ~seed:0 ~policy:`Fifo ~faults:[] in
        ignore (C.Scenario.run C.Scenario.quickstart_mm clean))
      ~at:(fun ~site ~hit ->
        let o =
          C.Scenario.quickstart_mm_crash_at ~site ~hit ~recover_after:1.0
        in
        if C.Scenario.failed o then
          failures :=
            Printf.sprintf "%s hit %d: %s" site hit
              (C.Audit.findings_to_string o.C.Scenario.findings)
            :: !failures)
      ()
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "probe reaches %s sites in mm mode" p)
        true
        (List.exists (fun (site, _) -> starts_with p site) visited))
    mm_swept_prefixes;
  let combos = List.fold_left (fun a (_, n) -> a + n) 0 visited in
  Alcotest.(check bool)
    (Printf.sprintf "swept a substantial mm site space (%d combos)" combos)
    true (combos >= 20);
  Alcotest.(check (list string))
    "every mm crash point recovered to exactly-once" []
    (List.rev !failures)

(* The explorer over the mm scenario: random fault plans (crashes,
   partitions, delays) against the main-memory queue must pass every
   auditor, same as the stable quickstart. *)
let test_mm_explore () =
  (match C.Scenario.by_name "quickstart-mm" with
  | Some s -> Alcotest.(check string) "registered" "quickstart-mm" s.C.Scenario.name
  | None -> Alcotest.fail "quickstart-mm not in the scenario registry");
  let report = C.Explore.run ~budget:100 ~seed:2 C.Scenario.quickstart_mm in
  Alcotest.(check int) "explored the whole budget" 100 report.C.Explore.explored;
  Alcotest.(check int) "every schedule passed" 100 report.C.Explore.passed;
  Alcotest.(check bool) "no failure" true (report.C.Explore.failure = None)

(* ---- the HA pair under the explorer and the crash-site enumerator -------- *)

(* The explorer over the HA scenario: random plans drawn from a fault space
   that kills the primary and partitions it from the client. Synchronous
   shipping gates every reply on the backup's ack, so every schedule must
   pass all five auditors through whatever failover the plan provokes. *)
let test_ha_explore () =
  (match C.Scenario.by_name "ha" with
  | Some s -> Alcotest.(check string) "registered" "ha" s.C.Scenario.name
  | None -> Alcotest.fail "ha not in the scenario registry");
  let report = C.Explore.run ~budget:200 ~seed:1 C.Scenario.ha in
  Alcotest.(check int) "explored the whole budget" 200 report.C.Explore.explored;
  Alcotest.(check int) "every schedule passed" 200 report.C.Explore.passed;
  Alcotest.(check bool) "no failure" true (report.C.Explore.failure = None)

(* The lag-buggy shipper ([Lagged 1.0]: replies released up to a second
   ahead of the backup). Fault-free it passes; the explorer must catch a
   primary kill inside the lag window — the promoted backup either never
   saw an acknowledged conversation or re-runs one whose reply already
   escaped — and ddmin must shrink the plan to one that still fails. *)
let test_ha_lagged_caught_and_shrunk () =
  (match C.Scenario.by_name "ha-lagged" with
  | Some s -> Alcotest.(check string) "registered" "ha-lagged" s.C.Scenario.name
  | None -> Alcotest.fail "ha-lagged not in the scenario registry");
  let clean = C.Plan.make ~seed:0 ~policy:`Fifo ~faults:[] in
  Alcotest.(check bool) "fault-free lagged run passes" false
    (C.Scenario.failed (C.Scenario.run C.Scenario.ha_lagged clean));
  let report = C.Explore.run ~budget:100 ~seed:1 C.Scenario.ha_lagged in
  let f =
    match report.C.Explore.failure with
    | Some f -> f
    | None -> Alcotest.fail "explorer failed to catch the lagged shipper"
  in
  Alcotest.(check bool) "the failing outcome has findings" true
    (f.C.Explore.outcome.C.Scenario.findings <> []);
  let minimal = C.Explore.minimal_plan f in
  Alcotest.(check bool) "shrunk plan is no larger" true
    (List.length minimal.C.Plan.faults
    <= List.length f.C.Explore.plan.C.Plan.faults);
  let o = C.Scenario.run C.Scenario.ha_lagged minimal in
  Alcotest.(check bool) "minimal plan still fails" true (C.Scenario.failed o);
  let line = C.Explore.repro_line "ha-lagged" minimal in
  Alcotest.(check bool) "repro line carries the plan" true
    (String.length line > String.length (C.Plan.to_string minimal))

(* Crash-site sweep over the replication machinery: kill the primary at
   every reach of every ship- and ha-prefixed site the probe discovers (the probe
   plan itself kills the primary at t=2, so the heartbeat-miss/promote
   path is on the map). Whatever the timing — batch shipped but unacked,
   ack in flight, mid-promotion — the audited outcome must be clean. *)
let ha_swept_prefixes = [ "ship."; "ha." ]

let test_ha_crash_site_sweep () =
  let visited = C.Scenario.ha_crash_sites () in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "probe reaches %s" site)
        true (List.mem_assoc site visited))
    [ "ship.sent"; "ship.applied"; "ha.heartbeat_miss"; "ha.promote" ];
  let failures = ref [] in
  let combos = ref 0 in
  List.iter
    (fun (site, hits) ->
      if List.exists (fun p -> starts_with p site) ha_swept_prefixes then
        for hit = 1 to hits do
          incr combos;
          let o =
            C.Scenario.ha_crash_at ~site ~hit ~victim:"primary"
              ~recover_after:4.0
          in
          if C.Scenario.failed o then
            failures :=
              Printf.sprintf "%s hit %d: %s" site hit
                (C.Audit.findings_to_string o.C.Scenario.findings)
              :: !failures
        done)
    visited;
  Alcotest.(check bool)
    (Printf.sprintf "swept a substantial replication site space (%d combos)"
       !combos)
    true (!combos >= 50);
  Alcotest.(check (list string))
    "every replication crash point failed over cleanly" []
    (List.rev !failures)

(* ---- the sharded multi-repository world --------------------------------- *)

(* The explorer over the sharded scenario: three shard repositories, a
   mid-run map change that moves every client's key off shard0, forwarding,
   registration pulls and cross-shard 2PC reply enqueues — under random
   crash/partition plans that kill any shard and cut shard/shard links
   (including mid-2PC). Every schedule must pass exactly-once, conservation
   summed across shards, queue-integrity and no-in-doubt. *)
let test_sharded_explore () =
  (match C.Scenario.by_name "sharded" with
  | Some s -> Alcotest.(check string) "registered" "sharded" s.C.Scenario.name
  | None -> Alcotest.fail "sharded not in the scenario registry");
  let report = C.Explore.run ~budget:200 ~seed:1 C.Scenario.sharded in
  Alcotest.(check int) "explored the whole budget" 200 report.C.Explore.explored;
  Alcotest.(check int) "every schedule passed" 200 report.C.Explore.passed;
  Alcotest.(check bool) "no failure" true (report.C.Explore.failure = None)

(* The designed misroute-during-map-change anomaly: forwarders that strip
   registration tags. Fault-free every request is forwarded at most once and
   nothing retries, so it passes; a fault that costs an acknowledgment
   around the map change makes the stale-pinned retry execute a second,
   untagged copy at the new owner. The explorer must catch the duplicate
   and ddmin must shrink the plan to a still-failing core. *)
let test_sharded_anomaly_caught_and_shrunk () =
  (match C.Scenario.by_name "sharded-buggy" with
  | Some s ->
    Alcotest.(check string) "registered" "sharded-buggy" s.C.Scenario.name
  | None -> Alcotest.fail "sharded-buggy not in the scenario registry");
  let clean = C.Plan.make ~seed:0 ~policy:`Fifo ~faults:[] in
  Alcotest.(check bool) "fault-free buggy run passes" false
    (C.Scenario.failed (C.Scenario.run C.Scenario.sharded_buggy clean));
  let report = C.Explore.run ~budget:200 ~seed:1 C.Scenario.sharded_buggy in
  let f =
    match report.C.Explore.failure with
    | Some f -> f
    | None -> Alcotest.fail "explorer failed to catch the untagging forwarder"
  in
  Alcotest.(check bool) "the failing outcome has findings" true
    (f.C.Explore.outcome.C.Scenario.findings <> []);
  let minimal = C.Explore.minimal_plan f in
  Alcotest.(check bool) "shrunk plan is no larger" true
    (List.length minimal.C.Plan.faults
    <= List.length f.C.Explore.plan.C.Plan.faults);
  let o = C.Scenario.run C.Scenario.sharded_buggy minimal in
  Alcotest.(check bool) "minimal plan still fails" true (C.Scenario.failed o);
  (* ... and is minimal under single-fault removal. *)
  List.iteri
    (fun i _ ->
      let without =
        {
          minimal with
          C.Plan.faults = List.filteri (fun j _ -> j <> i) minimal.C.Plan.faults;
        }
      in
      Alcotest.(check bool)
        (Printf.sprintf "dropping fault %d makes it pass" i)
        false
        (C.Scenario.failed (C.Scenario.run C.Scenario.sharded_buggy without)))
    minimal.C.Plan.faults;
  let line = C.Explore.repro_line "sharded-buggy" minimal in
  Alcotest.(check bool) "repro line carries the plan" true
    (String.length line > String.length (C.Plan.to_string minimal))

(* Crash-site sweep across the routing machinery AND each shard's own WAL
   and 2PC sites (their names embed the shard node, so the victim is the
   shard that reached the site). The fault-free probe still performs the
   map change, so shard.forward (stale-pin relays), shard.map_install and
   cross-shard tm.prepared/tm.decided are all on the map. *)
let shard_swept_prefixes = [ "shard."; "wal."; "tm." ]

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_sharded_crash_site_sweep () =
  let visited = C.Scenario.sharded_crash_sites () in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "probe reaches %s" site)
        true (List.mem_assoc site visited))
    [
      "shard.route:shard0";
      "shard.route:shard1";
      "shard.route:shard2";
      "shard.forward:shard0";
      "shard.map_install:shard0";
      "shard.map_install:shard1";
      "shard.map_install:shard2";
      "tm.prepared:shard1";
      "wal.sync:qm@shard2.qmlog";
    ];
  let victim_of site =
    match
      List.find_opt (contains site) [ "shard0"; "shard1"; "shard2" ]
    with
    | Some v -> v
    | None -> "shard0"
  in
  let failures = ref [] in
  let combos = ref 0 in
  List.iter
    (fun (site, hits) ->
      if List.exists (fun p -> starts_with p site) shard_swept_prefixes then
        for hit = 1 to hits do
          incr combos;
          let o =
            C.Scenario.sharded_crash_at ~site ~hit ~victim:(victim_of site)
              ~recover_after:1.0
          in
          if C.Scenario.failed o then
            failures :=
              Printf.sprintf "%s hit %d: %s" site hit
                (C.Audit.findings_to_string o.C.Scenario.findings)
              :: !failures
        done)
    visited;
  Alcotest.(check bool)
    (Printf.sprintf "swept a substantial shard site space (%d combos)" !combos)
    true (!combos >= 100);
  Alcotest.(check (list string)) "every shard crash point recovered cleanly" []
    (List.rev !failures)

(* ---- recorded runs: the observability layer under the checker ----------- *)

(* A recorded fault-free run must produce a non-empty trace that the
   trace-based exactly-once auditor validates from events alone (it joins
   the outcome's findings in [run_recorded]). *)
let test_recorded_fault_free () =
  let plan = C.Plan.make ~seed:0 ~policy:`Fifo ~faults:[] in
  let r = C.Scenario.run_recorded C.Scenario.quickstart plan in
  let o = r.C.Scenario.rec_outcome in
  Alcotest.(check string) "all auditors passed, including exactly-once-trace"
    "all auditors passed"
    (C.Audit.findings_to_string o.C.Scenario.findings);
  Alcotest.(check bool) "trace dump is non-empty" true
    (String.length r.C.Scenario.rec_trace > 0);
  (* Every dumped line is a well-formed JSON-lines record. *)
  let lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' r.C.Scenario.rec_trace)
  in
  Alcotest.(check bool) "a real run emits many events" true
    (List.length lines > 50);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  (* The registry snapshot carries the headline counters. *)
  let m = r.C.Scenario.rec_metrics in
  Alcotest.(check bool) "counted client requests" true
    (Obs.Metrics.find_counter m "qm.enqueues:qm@backend" >= 4);
  Alcotest.(check bool) "counted transaction commits" true
    (Obs.Metrics.find_counter m "tm.commits:backend" >= 4)

(* Recording is passive: the same fault plan recorded twice yields
   byte-identical metric and trace dumps — on a faulty schedule too. *)
let test_recorded_determinism () =
  let plans =
    C.Plan.make ~seed:0 ~policy:`Fifo ~faults:[]
    :: List.map (fun seed -> C.Plan.random ~seed ~profile) [ 3; 11 ]
  in
  List.iter
    (fun plan ->
      let r1 = C.Scenario.run_recorded C.Scenario.quickstart plan in
      let r2 = C.Scenario.run_recorded C.Scenario.quickstart plan in
      let label = C.Plan.to_string plan in
      Alcotest.(check string)
        (Printf.sprintf "byte-identical trace dump [%s]" label)
        r1.C.Scenario.rec_trace r2.C.Scenario.rec_trace;
      Alcotest.(check bool)
        (Printf.sprintf "trace non-empty [%s]" label)
        true
        (String.length r1.C.Scenario.rec_trace > 0);
      Alcotest.(check string)
        (Printf.sprintf "byte-identical metrics JSON [%s]" label)
        (Obs.Metrics.to_json r1.C.Scenario.rec_metrics)
        (Obs.Metrics.to_json r2.C.Scenario.rec_metrics))
    plans

(* Recording must not perturb the schedule: the un-recorded run of the
   same plan takes the identical decision sequence. *)
let test_recording_is_passive () =
  let plan = C.Plan.random ~seed:7 ~profile in
  let bare = C.Scenario.run C.Scenario.quickstart plan in
  let recorded = C.Scenario.run_recorded C.Scenario.quickstart plan in
  Alcotest.(check string) "same decision trace with recording on"
    (Sched.trace_to_string bare.C.Scenario.trace)
    (Sched.trace_to_string recorded.C.Scenario.rec_outcome.C.Scenario.trace);
  Alcotest.(check int) "same replies"
    bare.C.Scenario.replies
    recorded.C.Scenario.rec_outcome.C.Scenario.replies

(* ---- property: auditors hold under arbitrary small fault schedules ------ *)

let prop_quickstart_audits_hold =
  QCheck2.Test.make ~name:"quickstart passes all auditors under random plans"
    ~count:25
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let base = C.Plan.random ~seed ~profile in
      List.for_all
        (fun policy ->
          let plan = { base with C.Plan.policy } in
          let o = C.Scenario.run C.Scenario.quickstart plan in
          if C.Scenario.failed o then
            QCheck2.Test.fail_reportf "plan %s: %s" (C.Plan.to_string plan)
              (C.Audit.findings_to_string o.C.Scenario.findings)
          else true)
        [ `Fifo; `Random (seed * 31) ])

let () =
  Alcotest.run "rrq-check"
    [
      ( "sched",
        [
          Alcotest.test_case "scheduling policies" `Quick test_policies;
          Alcotest.test_case "trace record/replay" `Quick test_trace_replay;
          Alcotest.test_case "trace codec" `Quick test_trace_codec;
          Alcotest.test_case "step-limit diagnostics" `Quick
            test_step_limit_diagnostics;
        ] );
      ("plan", [ Alcotest.test_case "codec roundtrip" `Quick test_plan_codec ]);
      ( "explore",
        [
          Alcotest.test_case "correct protocol: 200 schedules" `Slow
            test_explore_correct;
          Alcotest.test_case "buggy clerk caught and shrunk" `Quick
            test_explore_buggy_and_shrink;
          Alcotest.test_case "outcome determinism" `Quick
            test_outcome_determinism;
          Alcotest.test_case "trace replay reproduces failure" `Quick
            test_replay_reproduces_failure;
        ] );
      ( "crashpoints",
        [ Alcotest.test_case "exhaustive site sweep" `Slow test_crash_site_sweep ] );
      ( "main-memory",
        [
          Alcotest.test_case "mm crash sweep: wal.sync/synced, tm.prepared/decided"
            `Slow test_mm_crash_sweep;
          Alcotest.test_case "mm explorer plan suite" `Slow test_mm_explore;
        ] );
      ( "ha",
        [
          Alcotest.test_case "HA explorer: 200 random fault plans" `Slow
            test_ha_explore;
          Alcotest.test_case "lag-buggy shipper caught and shrunk" `Slow
            test_ha_lagged_caught_and_shrunk;
          Alcotest.test_case "replication crash-site sweep: ship.*, ha.*"
            `Slow test_ha_crash_site_sweep;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "shard explorer: 200 random fault plans" `Slow
            test_sharded_explore;
          Alcotest.test_case "untagging forwarder caught and shrunk" `Slow
            test_sharded_anomaly_caught_and_shrunk;
          Alcotest.test_case "shard crash-site sweep: shard.*, wal.*, tm.*"
            `Slow test_sharded_crash_site_sweep;
        ] );
      ( "recorded",
        [
          Alcotest.test_case "fault-free run audited from the trace" `Quick
            test_recorded_fault_free;
          Alcotest.test_case "byte-identical dumps per plan" `Quick
            test_recorded_determinism;
          Alcotest.test_case "recording is passive" `Quick
            test_recording_is_passive;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:true prop_quickstart_audits_hold ] );
    ]
