(* Shared helper: run a scenario under the discrete-event scheduler and fail
   the test if any fiber died with an unhandled exception. *)

module Sched = Rrq_sim.Sched

let run ?(expect_failures = false) f =
  let s = Sched.create () in
  f s;
  Sched.run s;
  if not expect_failures then begin
    match Sched.failures s with
    | [] -> ()
    | (name, e) :: _ ->
      Alcotest.failf "fiber %s raised: %s" name (Printexc.to_string e)
  end;
  s

(* Run a single top-level fiber (with access to the scheduler) and return
   its result. *)
let run_fiber' f =
  let result = ref None in
  let _ =
    run (fun s ->
        ignore (Sched.spawn s ~name:"main" (fun () -> result := Some (f s))))
  in
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "main fiber did not complete (simulated deadlock?)"

(* Run a single top-level fiber and return its result. *)
let run_fiber f =
  let result = ref None in
  let _ =
    run (fun s ->
        ignore (Sched.spawn s ~name:"main" (fun () -> result := Some (f ()))))
  in
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "main fiber did not complete (simulated deadlock?)"
