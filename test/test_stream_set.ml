(* Tests for the streaming client extension (paper §11) and queue-set
   servers (§9). *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Server = Rrq_core.Server
module Stream_clerk = Rrq_core.Stream_clerk
module Envelope = Rrq_core.Envelope
module H = Rrq_test_support.Sim_harness

let make_backend ?(latency = 0.005) ?(threads = 4) ?(work = 0.0) s =
  let net = Net.create ~latency s (Rng.create 55) in
  let backend =
    Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
      (Net.make_node net "backend")
  in
  let _ =
    Server.start backend ~req_queue:"req" ~threads (fun site txn env ->
        if work > 0.0 then Sched.sleep work;
        ignore
          (Kvdb.add (Site.kv site) (Tm.txn_id txn) ("exec:" ^ env.Envelope.rid) 1);
        Server.Reply ("done:" ^ env.Envelope.rid))
  in
  (net, backend, Net.make_node net "client")

let exec_count backend rid =
  match Kvdb.committed_value (Site.kv backend) ("exec:" ^ rid) with
  | Some s -> int_of_string s
  | None -> 0

(* --- stream clerk -------------------------------------------------------- *)

let test_stream_ordered_replies () =
  H.run_fiber' (fun s ->
      let _, backend, client_node = make_backend s in
      let stream =
        Stream_clerk.connect ~client_node ~system:"backend" ~client_id:"alice"
          ~req_queue:"req" ~width:4 ()
      in
      for i = 1 to 10 do
        Stream_clerk.submit stream ~rid:(Printf.sprintf "r%d" i)
          (Printf.sprintf "w%d" i)
      done;
      let replies = Stream_clerk.drain stream () in
      Alcotest.(check (list string)) "replies in submission order"
        (List.init 10 (fun i -> Printf.sprintf "r%d" (i + 1)))
        (List.map (fun r -> r.Envelope.rid) replies);
      for i = 1 to 10 do
        Alcotest.(check int) "exactly once" 1
          (exec_count backend (Printf.sprintf "r%d" i))
      done;
      Stream_clerk.disconnect stream)

let test_stream_hides_latency () =
  (* With 50ms one-way latency and an 8-thread server, a window of 4 must
     finish much faster than the one-at-a-time client model. *)
  let run_with_width width =
    H.run_fiber' (fun s ->
        let _, _, client_node = make_backend ~latency:0.05 ~threads:8 s in
        let stream =
          Stream_clerk.connect ~client_node ~system:"backend" ~client_id:"w"
            ~req_queue:"req" ~width ()
        in
        let t0 = Sched.clock () in
        for i = 1 to 12 do
          Stream_clerk.submit stream ~rid:(Printf.sprintf "r%d" i) "job"
        done;
        ignore (Stream_clerk.drain stream ());
        Sched.clock () -. t0)
  in
  let serial = run_with_width 1 in
  let streamed = run_with_width 4 in
  Alcotest.(check bool)
    (Printf.sprintf "window 4 at least 2x faster (%.2f vs %.2f)" serial streamed)
    true
    (streamed *. 2.0 < serial)

let test_stream_survives_backend_crash () =
  let done_ = ref false in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 56) in
        let backend =
          Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:2.0
            (Net.make_node net "backend")
        in
        let _ =
          Server.start backend ~req_queue:"req" ~threads:2 (fun site txn env ->
              ignore
                (Kvdb.add (Site.kv site) (Tm.txn_id txn)
                   ("exec:" ^ env.Envelope.rid) 1);
              Server.Reply "ok")
        in
        Sched.at s 0.5 (fun () -> Site.crash_restart backend ~after:2.0);
        let client_node = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let stream =
                 Stream_clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"req" ~width:3 ()
               in
               for i = 1 to 9 do
                 Stream_clerk.submit stream ~rid:(Printf.sprintf "r%d" i) "job";
                 Sched.sleep 0.2
               done;
               let replies = Stream_clerk.drain stream ~timeout:60.0 () in
               Alcotest.(check int) "all replies across the crash" 9
                 (List.length replies);
               for i = 1 to 9 do
                 Alcotest.(check int) "exactly once" 1
                   (exec_count backend (Printf.sprintf "r%d" i))
               done;
               done_ := true)))
  in
  Alcotest.(check bool) "completed" true !done_

(* --- queue-set servers ---------------------------------------------------- *)

let await pred =
  let rec go n =
    if pred () then true
    else if n > 1000 then false
    else begin
      Sched.sleep 0.01;
      go (n + 1)
    end
  in
  go 0

let test_server_queue_set () =
  H.run_fiber' (fun s ->
      let net = Net.create s (Rng.create 57) in
      let backend =
        Site.create
          ~queues:
            [ ("express", Qm.default_attrs); ("standard", Qm.default_attrs) ]
          (Net.make_node net "backend")
      in
      let served = ref [] in
      let _ =
        Server.start_set backend ~req_queues:[ "express"; "standard" ]
          (fun _site _txn env ->
            served := env.Envelope.body :: !served;
            Server.No_reply)
      in
      let qm = Site.qm backend in
      let h_exp, _ =
        Qm.register qm ~queue:"express" ~registrant:"loader" ~stable:false
      in
      let h_std, _ =
        Qm.register qm ~queue:"standard" ~registrant:"loader" ~stable:false
      in
      let push h prio body =
        let env =
          Envelope.make ~rid:body ~client_id:"loader" ~reply_node:"backend"
            ~reply_queue:"express" body
        in
        ignore
          (Qm.auto_commit qm (fun id ->
               Qm.enqueue qm id h ~priority:prio (Envelope.to_string env)))
      in
      (* standard jobs arrive first, but the express queue's high-priority
         job must be served first once present *)
      push h_std 0 "std1";
      push h_std 0 "std2";
      push h_exp 9 "exp1";
      ignore (await (fun () -> List.length !served = 3));
      Alcotest.(check string) "express served first" "exp1"
        (List.nth (List.rev !served) 0))

let () =
  Alcotest.run "rrq-stream-set"
    [
      ( "stream",
        [
          Alcotest.test_case "ordered replies, exactly once" `Quick
            test_stream_ordered_replies;
          Alcotest.test_case "hides latency" `Quick test_stream_hides_latency;
          Alcotest.test_case "survives backend crash" `Quick
            test_stream_survives_backend_crash;
        ] );
      ( "queue-set",
        [ Alcotest.test_case "set server priority" `Quick test_server_queue_set ] );
    ]
