(* rrq_lint: every rule must demonstrably fire on bad input and stay silent
   on good input, the baseline must suppress and go stale correctly, and
   the Swallow/Crash machinery the rules push code toward must behave. The
   lint's cleanliness on the real lib/ tree is asserted by the root dune
   rule (part of `dune runtest`), not here — fixtures keep this suite
   hermetic. *)

module Driver = Rrq_lint.Driver
module Rules = Rrq_lint.Rules
module Finding = Rrq_lint.Finding
module Swallow = Rrq_util.Swallow
module Sched = Rrq_sim.Sched
module Crashpoint = Rrq_sim.Crashpoint

let lint ?(file = "lib/example/fixture.ml") src = Driver.lint_source ~file src

let rules_of fs = List.map (fun f -> f.Finding.rule) fs

let fires rule ?file src () =
  let fs = lint ?file src in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on: %s" rule src)
    true
    (List.mem rule (rules_of fs))

let silent rule ?file src () =
  let fs = lint ?file src in
  Alcotest.(check (list string))
    (Printf.sprintf "%s silent on: %s" rule src)
    []
    (List.filter (fun r -> r = rule) (rules_of fs))

(* ---- R1: exception swallowing ----------------------------------------- *)

let r1_cases =
  [
    ("fires: try with _", fires "R1" "let f g = try g () with _ -> 0");
    ("fires: try with e unused", fires "R1" "let f g = try g () with e -> ignore e; 0");
    ( "fires: catch-all among specific handlers",
      fires "R1" "let f g = try g () with Not_found -> 1 | _ -> 0" );
    ( "fires: match exception wildcard",
      fires "R1" "let f g = match g () with x -> x | exception _ -> 0" );
    ("silent: specific exception", silent "R1" "let f g = try g () with Not_found -> 0");
    ( "silent: nonfatal guard",
      silent "R1" "let f g = try g () with e when Swallow.nonfatal e -> 0" );
    ( "silent: handler re-raises",
      silent "R1" "let f g h = try g () with e -> h (); raise e" );
    ( "silent: match exception specific",
      silent "R1" "let f g = match g () with x -> x | exception Exit -> 0" );
  ]

(* ---- R2: determinism --------------------------------------------------- *)

let r2_cases =
  [
    ("fires: Sys.time", fires "R2" "let t () = Sys.time ()");
    ("fires: Unix.gettimeofday", fires "R2" "let t () = Unix.gettimeofday ()");
    ("fires: Random.self_init", fires "R2" "let r () = Random.self_init ()");
    ("fires: Random.int", fires "R2" "let r n = Random.int n");
    ("fires: Sys.getenv", fires "R2" "let e () = Sys.getenv \"HOME\"");
    ("silent: Sched.clock", silent "R2" "let t () = Sched.clock ()");
    ("silent: Rng.int", silent "R2" "let r g n = Rng.int g n");
    ("silent: Sys.readdir", silent "R2" "let l d = Sys.readdir d");
  ]

(* ---- R3: layering ------------------------------------------------------ *)

let r3_cases =
  [
    ( "fires: Disk.append outside storage/wal",
      fires "R3" ~file:"lib/core/fixture.ml" "let f d = Disk.append d \"x\"" );
    ( "fires: Disk.replace_atomic in qm",
      fires "R3" ~file:"lib/qm/fixture.ml"
        "let f d = Disk.replace_atomic d \"ckpt\" \"bytes\"" );
    ( "fires: Wal.append in core",
      fires "R3" ~file:"lib/core/fixture.ml" "let f w = Wal.append w \"rec\"" );
    ( "fires: Group_commit.force in harness",
      fires "R3" ~file:"lib/harness/fixture.ml" "let f gc = Group_commit.force gc" );
    ( "fires: Element field write outside qm",
      fires "R3" ~file:"lib/core/fixture.ml"
        "let f el id = el.Element.status <- Element.Deq_pending id" );
    ( "fires: Disk.write_page outside storage/wal",
      fires "R3" ~file:"lib/qm/fixture.ml" "let f d p = Disk.write_page d p" );
    ( "fires: bare Element-only field write outside qm",
      fires "R3" ~file:"lib/core/fixture.ml"
        "let f el = el.delivery_count <- el.delivery_count + 1" );
    ( "fires: redo-record emission outside wal/rm",
      fires "R3" ~file:"lib/core/fixture.ml"
        "let f el = log_raw (REnq (\"q\", el))" );
    ( "fires: qualified redo emission outside wal/rm",
      fires "R3" ~file:"lib/harness/fixture.ml"
        "let f eid = log_raw (Qm.RDeq eid)" );
    ( "silent: Disk.append inside wal",
      silent "R3" ~file:"lib/wal/fixture.ml" "let f d = Disk.append d \"x\"" );
    ( "silent: Wal.append inside txn",
      silent "R3" ~file:"lib/txn/fixture.ml" "let f w = Wal.append w \"rec\"" );
    ( "silent: Disk.crash anywhere (fault injection is not mutation)",
      silent "R3" ~file:"lib/check/fixture.ml" "let f d = Disk.crash d" );
    ( "silent: Element field write inside qm",
      silent "R3" ~file:"lib/qm/fixture.ml"
        "let f el id = el.Element.status <- Element.Deq_pending id" );
    ( "silent: bare Element-only field write inside qm",
      silent "R3" ~file:"lib/qm/fixture.ml"
        "let f el = el.delivery_count <- el.delivery_count + 1" );
    ( "silent: redo emission inside qm",
      silent "R3" ~file:"lib/qm/fixture.ml"
        "let f el = log_raw (REnq (\"q\", el))" );
    ( "silent: unrelated constructor outside rm dirs",
      silent "R3" ~file:"lib/core/fixture.ml" "let f x = Result (x, 0)" );
  ]

(* ---- R4: transaction pairing ------------------------------------------- *)

let with_txn_fixture =
  "let with_txn tm f =\n\
  \  let txn = Tm.begin_txn tm in\n\
  \  match f txn with\n\
  \  | v -> ignore (Tm.commit tm txn); v\n\
  \  | exception e -> Tm.abort tm txn; raise e"

let r4_cases =
  [
    ( "fires: begin without commit/abort",
      fires "R4" "let f tm = let txn = Tm.begin_txn tm in ignore txn" );
    ( "fires: begin with commit but no abort path",
      fires "R4"
        "let f tm = let txn = Tm.begin_txn tm in ignore (Tm.commit tm txn)" );
    ("silent: the with_txn shape", silent "R4" with_txn_fixture);
    ( "silent: no begin at all",
      silent "R4" "let f tm txn = ignore (Tm.commit tm txn)" );
  ]

(* ---- R5: blocking under lock ------------------------------------------- *)

let r5_cases =
  [
    ( "fires: Cond.wait after acquire",
      fires "R5" "let f l id c = Lock.acquire l id ~key:\"k\" X; Cond.wait c" );
    ( "fires: Sched.sleep after try_acquire",
      fires "R5"
        "let f l id = ignore (Lock.try_acquire l id ~key:\"k\" X); Sched.sleep 1.0"
    );
    ( "fires: Ivar.read in nested closure after acquire",
      fires "R5"
        "let f l id iv = Lock.acquire l id ~key:\"k\" X;\n\
        \  let g () = Ivar.read iv in g ()" );
    ( "silent: blocking before acquire",
      silent "R5" "let f l id c = Cond.wait c; Lock.acquire l id ~key:\"k\" X" );
    ( "silent: released before blocking",
      silent "R5"
        "let f l id c = Lock.acquire l id ~key:\"k\" X; Lock.release_all l id;\n\
        \  Cond.wait c" );
    ( "silent: blocking in a different item",
      silent "R5"
        "let f l id = Lock.acquire l id ~key:\"k\" X\nlet g c = Cond.wait c" );
  ]

(* ---- R6: interface coverage -------------------------------------------- *)

let r6_fires () =
  let fs = Rules.interface_coverage ~files:[ "lib/a/x.ml"; "lib/a/y.ml"; "lib/a/y.mli" ] in
  Alcotest.(check (list string)) "only x.ml flagged" [ "lib/a/x.ml" ]
    (List.map (fun f -> f.Finding.file) fs)

let r6_silent () =
  let fs = Rules.interface_coverage ~files:[ "lib/a/x.ml"; "lib/a/x.mli" ] in
  Alcotest.(check int) "covered pair is clean" 0 (List.length fs)

(* ---- parse failures ----------------------------------------------------- *)

let parse_error_reported () =
  let fs = lint "let f = (" in
  Alcotest.(check (list string)) "P0 parse finding" [ "P0" ] (rules_of fs)

(* ---- baseline ----------------------------------------------------------- *)

let baseline_text =
  "# comment line\n\
   R5 lib/qm/qm.ml dequeue  # strict-FIFO hold-and-wait is the design\n"

let finding ~rule ~file ~item =
  {
    Finding.rule;
    rule_name = "x";
    severity = Finding.Error;
    file;
    line = 1;
    col = 0;
    item;
    message = "m";
    hint = "h";
  }

let baseline_suppresses () =
  let entries = Driver.parse_baseline baseline_text in
  let f1 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"dequeue" in
  let f2 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"enqueue" in
  let kept, suppressed, stale = Driver.apply_baseline entries [ f1; f2 ] in
  Alcotest.(check int) "one kept" 1 (List.length kept);
  Alcotest.(check string) "the unmatched one" "enqueue"
    (List.hd kept).Finding.item;
  Alcotest.(check int) "one suppressed" 1 suppressed;
  Alcotest.(check int) "no stale" 0 (List.length stale)

let baseline_matches_all_same_item () =
  (* One entry covers every finding of the (rule, file, item) coordinate —
     e.g. both Cond.wait sites inside dequeue. *)
  let entries = Driver.parse_baseline baseline_text in
  let f1 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"dequeue" in
  let f2 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"dequeue" in
  let kept, suppressed, _ = Driver.apply_baseline entries [ f1; f2 ] in
  Alcotest.(check int) "none kept" 0 (List.length kept);
  Alcotest.(check int) "both suppressed" 2 suppressed

let baseline_goes_stale () =
  let entries = Driver.parse_baseline baseline_text in
  let kept, suppressed, stale = Driver.apply_baseline entries [] in
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "nothing suppressed" 0 suppressed;
  Alcotest.(check int) "entry is stale" 1 (List.length stale)

let baseline_rejects_malformed () =
  Alcotest.check_raises "two-field line rejected"
    (Failure "baseline line 1: expected `RULE path item  # rationale'")
    (fun () -> ignore (Driver.parse_baseline "R5 lib/qm/qm.ml\n"))

(* ---- Swallow and Crash -------------------------------------------------- *)

let swallow_tolerates_nonfatal () =
  Alcotest.(check int) "default on Failure" 7
    (Swallow.run ~default:7 (fun () -> failwith "participant down"));
  Alcotest.(check bool) "Not_found nonfatal" true (Swallow.nonfatal Not_found)

let swallow_reraises_crash () =
  Alcotest.(check bool) "Crash is fatal" true (Swallow.fatal Crashpoint.Crash);
  Alcotest.check_raises "Crash escapes Swallow.run" Crashpoint.Crash (fun () ->
      Swallow.run ~default:() (fun () -> raise Crashpoint.Crash))

let swallow_reraises_assert () =
  Alcotest.(check bool) "assert false fatal" true
    (try
       ignore (Swallow.run ~default:0 (fun () -> assert false));
       false
     with Assert_failure _ -> true)

let crash_kills_fiber_silently () =
  let s = Sched.create () in
  let reached_end = ref false in
  ignore
    (Sched.spawn s ~name:"doomed" (fun () ->
         (Crashpoint.crash () : unit);
         reached_end := true));
  ignore (Sched.spawn s ~name:"bystander" (fun () -> Sched.sleep 1.0));
  Sched.run s;
  Alcotest.(check bool) "fiber unwound" false !reached_end;
  Alcotest.(check int) "no failure recorded" 0 (List.length (Sched.failures s))

let ordinary_exn_still_fails () =
  let s = Sched.create () in
  ignore (Sched.spawn s ~name:"bug" (fun () -> failwith "real bug"));
  Sched.run s;
  Alcotest.(check int) "failure recorded" 1 (List.length (Sched.failures s))

(* ---- runner ------------------------------------------------------------- *)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "rrq-lint"
    [
      ("r1", List.map (fun (n, f) -> quick n f) r1_cases);
      ("r2", List.map (fun (n, f) -> quick n f) r2_cases);
      ("r3", List.map (fun (n, f) -> quick n f) r3_cases);
      ("r4", List.map (fun (n, f) -> quick n f) r4_cases);
      ("r5", List.map (fun (n, f) -> quick n f) r5_cases);
      ( "r6",
        [ quick "fires: missing mli" r6_fires; quick "silent: covered" r6_silent ]
      );
      ("parse", [ quick "syntax error reported" parse_error_reported ]);
      ( "baseline",
        [
          quick "suppresses matching findings" baseline_suppresses;
          quick "one entry covers an item's findings" baseline_matches_all_same_item;
          quick "unmatched entry is stale" baseline_goes_stale;
          quick "malformed line rejected" baseline_rejects_malformed;
        ] );
      ( "swallow",
        [
          quick "tolerates nonfatal" swallow_tolerates_nonfatal;
          quick "re-raises Crash" swallow_reraises_crash;
          quick "re-raises Assert_failure" swallow_reraises_assert;
        ] );
      ( "crash",
        [
          quick "Crash kills the fiber silently" crash_kills_fiber_silently;
          quick "ordinary exception still recorded" ordinary_exn_still_fails;
        ] );
    ]
