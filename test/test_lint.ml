(* rrq_lint: every rule must demonstrably fire on bad input and stay silent
   on good input, the baseline must suppress and go stale correctly, and
   the Swallow/Crash machinery the rules push code toward must behave. The
   lint's cleanliness on the real lib/ tree is asserted by the root dune
   rule (part of `dune runtest`), not here — fixtures keep this suite
   hermetic. *)

module Driver = Rrq_lint.Driver
module Rules = Rrq_lint.Rules
module Finding = Rrq_lint.Finding
module Callgraph = Rrq_lint.Callgraph
module Swallow = Rrq_util.Swallow
module Sched = Rrq_sim.Sched
module Crashpoint = Rrq_sim.Crashpoint

let lint ?(file = "lib/example/fixture.ml") src = Driver.lint_source ~file src

let rules_of fs = List.map (fun f -> f.Finding.rule) fs

let fires rule ?file src () =
  let fs = lint ?file src in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on: %s" rule src)
    true
    (List.mem rule (rules_of fs))

let silent rule ?file src () =
  let fs = lint ?file src in
  Alcotest.(check (list string))
    (Printf.sprintf "%s silent on: %s" rule src)
    []
    (List.filter (fun r -> r = rule) (rules_of fs))

(* Multi-file variants, for the cross-module flow rules. *)
let fires_multi rule sources () =
  let fs = Driver.lint_sources sources in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on multi-file fixture" rule)
    true
    (List.mem rule (rules_of fs))

let silent_multi rule sources () =
  let fs = Driver.lint_sources sources in
  Alcotest.(check (list string))
    (Printf.sprintf "%s silent on multi-file fixture" rule)
    []
    (List.filter (fun r -> r = rule) (rules_of fs))

(* Call graph over in-memory fixtures. *)
let graph_of sources =
  Callgraph.build
    (List.map
       (fun (file, src) ->
         match Driver.parse_impl ~file src with
         | Ok str -> (file, str)
         | Error f -> Alcotest.failf "fixture does not parse: %s" f.Finding.message)
       sources)

(* ---- R1: exception swallowing ----------------------------------------- *)

let r1_cases =
  [
    ("fires: try with _", fires "R1" "let f g = try g () with _ -> 0");
    ("fires: try with e unused", fires "R1" "let f g = try g () with e -> ignore e; 0");
    ( "fires: catch-all among specific handlers",
      fires "R1" "let f g = try g () with Not_found -> 1 | _ -> 0" );
    ( "fires: match exception wildcard",
      fires "R1" "let f g = match g () with x -> x | exception _ -> 0" );
    ("silent: specific exception", silent "R1" "let f g = try g () with Not_found -> 0");
    ( "silent: nonfatal guard",
      silent "R1" "let f g = try g () with e when Swallow.nonfatal e -> 0" );
    ( "silent: handler re-raises",
      silent "R1" "let f g h = try g () with e -> h (); raise e" );
    ( "silent: match exception specific",
      silent "R1" "let f g = match g () with x -> x | exception Exit -> 0" );
  ]

(* ---- R2: determinism --------------------------------------------------- *)

let r2_cases =
  [
    ("fires: Sys.time", fires "R2" "let t () = Sys.time ()");
    ("fires: Unix.gettimeofday", fires "R2" "let t () = Unix.gettimeofday ()");
    ("fires: Random.self_init", fires "R2" "let r () = Random.self_init ()");
    ("fires: Random.int", fires "R2" "let r n = Random.int n");
    ("fires: Sys.getenv", fires "R2" "let e () = Sys.getenv \"HOME\"");
    ("silent: Sched.clock", silent "R2" "let t () = Sched.clock ()");
    ("silent: Rng.int", silent "R2" "let r g n = Rng.int g n");
    ("silent: Sys.readdir", silent "R2" "let l d = Sys.readdir d");
  ]

(* ---- R3: layering ------------------------------------------------------ *)

let r3_cases =
  [
    ( "fires: Disk.append outside storage/wal",
      fires "R3" ~file:"lib/core/fixture.ml" "let f d = Disk.append d \"x\"" );
    ( "fires: Disk.replace_atomic in qm",
      fires "R3" ~file:"lib/qm/fixture.ml"
        "let f d = Disk.replace_atomic d \"ckpt\" \"bytes\"" );
    ( "fires: Wal.append in core",
      fires "R3" ~file:"lib/core/fixture.ml" "let f w = Wal.append w \"rec\"" );
    ( "fires: Group_commit.force in harness",
      fires "R3" ~file:"lib/harness/fixture.ml" "let f gc = Group_commit.force gc" );
    ( "fires: Element field write outside qm",
      fires "R3" ~file:"lib/core/fixture.ml"
        "let f el id = el.Element.status <- Element.Deq_pending id" );
    ( "fires: Disk.write_page outside storage/wal",
      fires "R3" ~file:"lib/qm/fixture.ml" "let f d p = Disk.write_page d p" );
    ( "fires: bare Element-only field write outside qm",
      fires "R3" ~file:"lib/core/fixture.ml"
        "let f el = el.delivery_count <- el.delivery_count + 1" );
    ( "fires: redo-record emission outside wal/rm",
      fires "R3" ~file:"lib/core/fixture.ml"
        "let f el = log_raw (REnq (\"q\", el))" );
    ( "fires: qualified redo emission outside wal/rm",
      fires "R3" ~file:"lib/harness/fixture.ml"
        "let f eid = log_raw (Qm.RDeq eid)" );
    ( "silent: Disk.append inside wal",
      silent "R3" ~file:"lib/wal/fixture.ml" "let f d = Disk.append d \"x\"" );
    ( "silent: Wal.append inside txn",
      silent "R3" ~file:"lib/txn/fixture.ml" "let f w = Wal.append w \"rec\"" );
    ( "silent: Disk.crash anywhere (fault injection is not mutation)",
      silent "R3" ~file:"lib/check/fixture.ml" "let f d = Disk.crash d" );
    ( "silent: Element field write inside qm",
      silent "R3" ~file:"lib/qm/fixture.ml"
        "let f el id = el.Element.status <- Element.Deq_pending id" );
    ( "silent: bare Element-only field write inside qm",
      silent "R3" ~file:"lib/qm/fixture.ml"
        "let f el = el.delivery_count <- el.delivery_count + 1" );
    ( "silent: redo emission inside qm",
      silent "R3" ~file:"lib/qm/fixture.ml"
        "let f el = log_raw (REnq (\"q\", el))" );
    ( "silent: unrelated constructor outside rm dirs",
      silent "R3" ~file:"lib/core/fixture.ml" "let f x = Result (x, 0)" );
  ]

(* ---- R4: transaction pairing ------------------------------------------- *)

let with_txn_fixture =
  "let with_txn tm f =\n\
  \  let txn = Tm.begin_txn tm in\n\
  \  match f txn with\n\
  \  | v -> ignore (Tm.commit tm txn); v\n\
  \  | exception e -> Tm.abort tm txn; raise e"

let r4_cases =
  [
    ( "fires: begin without commit/abort",
      fires "R4" "let f tm = let txn = Tm.begin_txn tm in ignore txn" );
    ( "fires: begin with commit but no abort path",
      fires "R4"
        "let f tm = let txn = Tm.begin_txn tm in ignore (Tm.commit tm txn)" );
    ("silent: the with_txn shape", silent "R4" with_txn_fixture);
    ( "silent: no begin at all",
      silent "R4" "let f tm txn = ignore (Tm.commit tm txn)" );
  ]

(* ---- R5: blocking under lock ------------------------------------------- *)

let r5_cases =
  [
    ( "fires: Cond.wait after acquire",
      fires "R5" "let f l id c = Lock.acquire l id ~key:\"k\" X; Cond.wait c" );
    ( "fires: Sched.sleep after try_acquire",
      fires "R5"
        "let f l id = ignore (Lock.try_acquire l id ~key:\"k\" X); Sched.sleep 1.0"
    );
    ( "fires: Ivar.read in nested closure after acquire",
      fires "R5"
        "let f l id iv = Lock.acquire l id ~key:\"k\" X;\n\
        \  let g () = Ivar.read iv in g ()" );
    ( "silent: blocking before acquire",
      silent "R5" "let f l id c = Cond.wait c; Lock.acquire l id ~key:\"k\" X" );
    ( "silent: released before blocking",
      silent "R5"
        "let f l id c = Lock.acquire l id ~key:\"k\" X; Lock.release_all l id;\n\
        \  Cond.wait c" );
    ( "silent: blocking in a different item",
      silent "R5"
        "let f l id = Lock.acquire l id ~key:\"k\" X\nlet g c = Cond.wait c" );
    (* Flow-sensitivity: what matters is where the helper is CALLED, not
       where it is defined — the false negative the per-item pass had. *)
    ( "fires: helper defined before the acquire, called after it",
      fires "R5"
        "let f l id c =\n\
        \  let g () = Cond.wait c in\n\
        \  Lock.acquire l id ~key:\"k\" X;\n\
        \  g ()" );
    ( "silent: helper defined under the lock, called after release",
      silent "R5"
        "let f l id c =\n\
        \  Lock.acquire l id ~key:\"k\" X;\n\
        \  let g () = Cond.wait c in\n\
        \  Lock.release_all l id;\n\
        \  g ()" );
    ( "silent: helper called before the acquire",
      silent "R5"
        "let f l id c =\n\
        \  let g () = Cond.wait c in\n\
        \  g ();\n\
        \  Lock.acquire l id ~key:\"k\" X" );
    (* R5 expands local helpers but deliberately stops at top-level
       callees: charging every transitive caller of a may-block function
       (e.g. strict-FIFO [Qm.dequeue]) would restate the R7 summaries as
       noise. Cross-item hold-and-wait is R7's domain. *)
    ( "silent: blocking inside another top-level item called under lock",
      silent "R5"
        "let wait c = Cond.wait c\n\
         let f l id c = Lock.acquire l id ~key:\"k\" X; wait c" );
    ( "silent: blocking lambda stored in a record under lock",
      silent "R5"
        "let f l id c =\n\
        \  Lock.acquire l id ~key:\"k\" X;\n\
        \  { handler = (fun () -> Cond.wait c) }" );
    ( "fires: Net.call under lock",
      fires "R5"
        "let f l id nd = Lock.acquire l id ~key:\"k\" X;\n\
        \  ignore (Net.call nd ~dst:\"a\" ~service:\"s\" ())" );
  ]

(* ---- call graph --------------------------------------------------------- *)

let callees_of g label =
  match Callgraph.find g label with
  | None -> Alcotest.failf "node %s not found" label
  | Some id ->
    List.sort String.compare
      (List.map (Callgraph.label g) (Callgraph.callees g id))

let cg_nested_modules () =
  let g =
    graph_of
      [ ( "lib/a/kv.ml",
          "module State = struct let relock x = x end\n\
           let f y = State.relock y" ) ]
  in
  Alcotest.(check (list string)) "nested module edge" [ "Kv.State.relock" ]
    (callees_of g "Kv.f")

let cg_functor () =
  let g =
    graph_of
      [ ("lib/a/rm.ml", "module Make (X : S) = struct let commit () = () end");
        ( "lib/b/use.ml",
          "module Base = Rm.Make (Arg)\nlet f () = Base.commit ()" );
      ]
  in
  Alcotest.(check (list string)) "functor application resolves"
    [ "Rm.Make.commit" ] (callees_of g "Use.f")

let cg_shadowed_names () =
  (* Equally named modules in different files: edges to every candidate —
     the deliberate over-approximation. *)
  let g =
    graph_of
      [ ("lib/a/store.ml", "let write () = ()");
        ("lib/b/store.ml", "let write () = ()");
        ("lib/c/use.ml", "let f () = Store.write ()");
      ]
  in
  Alcotest.(check (list string)) "both candidates"
    [ "Store.write"; "Store.write" ] (callees_of g "Use.f")

let cg_first_class_module () =
  let g =
    graph_of
      [ ( "lib/a/use.ml",
          "let helper () = ()\n\
           let f () = (module struct let x = helper end : S)" ) ]
  in
  (* The payload is a definition, not an execution: no edge. *)
  Alcotest.(check (list string)) "no edge from module payload" []
    (callees_of g "Use.f")

let cg_mutual_recursion () =
  let g =
    graph_of
      [ ( "lib/a/p.ml",
          "let rec even n = if n = 0 then true else odd (n - 1)\n\
           and odd n = if n = 0 then false else even (n - 1)" ) ]
  in
  Alcotest.(check (list string)) "even -> odd" [ "P.odd" ]
    (callees_of g "P.even");
  Alcotest.(check (list string)) "odd -> even" [ "P.even" ]
    (callees_of g "P.odd")

let cg_alias_resolution () =
  let g =
    graph_of
      [ ("lib/txn/lock.ml", "let acquire l = l");
        ( "lib/b/use.ml",
          "module Lock = Rrq_txn.Lock\nlet f l = Lock.acquire l" );
      ]
  in
  Alcotest.(check (list string)) "alias + library wrapping"
    [ "Lock.acquire" ] (callees_of g "Use.f")

let cg_under_application_is_edge () =
  (* A partial application is still a graph edge (the closure escapes),
     even though the flow rules refuse to charge its effects there. *)
  let g =
    graph_of
      [ ( "lib/a/m.ml",
          "let handler site txn env = ()\n\
           let f start = start (handler 1)" ) ]
  in
  Alcotest.(check (list string)) "edge kept" [ "M.handler" ]
    (callees_of g "M.f")

(* ---- R7: lock order ----------------------------------------------------- *)

(* Two lock-manager instances (classes from the directory basename: aa,
   bb), each acquired through its own file. *)
let r7_cross aa_body bb_body =
  [ ("lib/aa/ma.ml", aa_body); ("lib/bb/mb.ml", bb_body) ]

let r7_cycle_fixture =
  r7_cross
    "let take l id = Lock.acquire l id ~key:\"k\" X\n\
     let cross l id = take l id; Mb.take l id"
    "let take l id = Lock.acquire l id ~key:\"k\" X\n\
     let cross l id = take l id; Ma.take l id"

let r7_consistent_fixture =
  (* Both files acquire in the same global order: aa before bb. *)
  r7_cross
    "let take l id = Lock.acquire l id ~key:\"k\" X\n\
     let cross l id = take l id; Mb.take l id"
    "let take l id = Lock.acquire l id ~key:\"k\" X\n\
     let cross l id = Ma.take l id; take l id"

let r7_release_between_fixture =
  r7_cross
    "let take l id = Lock.acquire l id ~key:\"k\" X\n\
     let cross l id = take l id; Lock.release_all l id; Mb.take l id"
    "let take l id = Lock.acquire l id ~key:\"k\" X\n\
     let cross l id = take l id; Lock.release_all l id; Ma.take l id"

let r7_edges_of sources =
  let g = graph_of sources in
  List.map (fun e -> (e.Rules.e_from, e.Rules.e_to)) (Rules.lock_order_edges g)

let r7_edge_set () =
  let edges = r7_edges_of r7_cycle_fixture in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "edge %s -> %s present" (fst e) (snd e))
        true (List.mem e edges))
    [ ("aa", "bb"); ("bb", "aa"); ("aa", "aa"); ("bb", "bb") ]

let r7_cases =
  [
    ("fires: opposite acquisition orders", fires_multi "R7" r7_cycle_fixture);
    ( "silent: one global acquisition order",
      silent_multi "R7" r7_consistent_fixture );
    ( "silent: release between the two managers",
      silent_multi "R7" r7_release_between_fixture );
    ("edge set has both cross edges and self edges", r7_edge_set);
  ]

(* ---- R8: durability before reply --------------------------------------- *)

let r8_cases =
  [
    ( "fires: reply released under an unforced append",
      fires "R8" "let f w iv = Wal.append w \"r\"; Ivar.fill iv 0" );
    ( "silent: sync before the reply",
      silent "R8" "let f w iv = Wal.append w \"r\"; Wal.sync w; Ivar.fill iv 0"
    );
    ( "fires: wakeup pending at exit with no force",
      fires "R8" "let f w c = Wal.append w \"r\"; Cond.signal c" );
    ( "silent: wakeup pending, force before exit",
      silent "R8"
        "let f w c = Wal.append w \"r\"; Cond.signal c; Wal.sync w" );
    ( "fires: taint introduced by a callee",
      fires "R8"
        "let stage w = Wal.append w \"r\"\n\
         let f w iv = stage w; Ivar.fill iv 0" );
    ( "silent: callee forces before returning",
      silent "R8"
        "let stage w = Wal.append w \"r\"; Wal.sync w\n\
         let f w iv = stage w; Ivar.fill iv 0" );
    ( "silent: no durability traffic at all",
      silent "R8" "let f iv = Ivar.fill iv 0" );
    ( "fires: group-commit append without force before net send",
      fires "R8"
        "let f gc nd = ignore (Group_commit.append gc \"r\");\n\
        \  ignore (Net.call nd ~dst:\"a\" ~service:\"s\" ())" );
    ( "silent: append_force before net send",
      silent "R8"
        "let f gc nd = ignore (Group_commit.append_force gc \"r\");\n\
        \  ignore (Net.call nd ~dst:\"a\" ~service:\"s\" ())" );
  ]

(* ---- R6: interface coverage -------------------------------------------- *)

let r6_fires () =
  let fs = Rules.interface_coverage ~files:[ "lib/a/x.ml"; "lib/a/y.ml"; "lib/a/y.mli" ] in
  Alcotest.(check (list string)) "only x.ml flagged" [ "lib/a/x.ml" ]
    (List.map (fun f -> f.Finding.file) fs)

let r6_silent () =
  let fs = Rules.interface_coverage ~files:[ "lib/a/x.ml"; "lib/a/x.mli" ] in
  Alcotest.(check int) "covered pair is clean" 0 (List.length fs)

(* ---- parse failures ----------------------------------------------------- *)

let parse_error_reported () =
  let fs = lint "let f = (" in
  Alcotest.(check (list string)) "P0 parse finding" [ "P0" ] (rules_of fs)

(* ---- baseline ----------------------------------------------------------- *)

let baseline_text =
  "# comment line\n\
   R5 lib/qm/qm.ml dequeue  # strict-FIFO hold-and-wait is the design\n"

let finding ~rule ~file ~item =
  {
    Finding.rule;
    rule_name = "x";
    severity = Finding.Error;
    file;
    line = 1;
    col = 0;
    item;
    message = "m";
    hint = "h";
    detail = [];
  }

let baseline_suppresses () =
  let entries = Driver.parse_baseline baseline_text in
  let f1 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"dequeue" in
  let f2 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"enqueue" in
  let kept, suppressed, stale = Driver.apply_baseline entries [ f1; f2 ] in
  Alcotest.(check int) "one kept" 1 (List.length kept);
  Alcotest.(check string) "the unmatched one" "enqueue"
    (List.hd kept).Finding.item;
  Alcotest.(check int) "one suppressed" 1 suppressed;
  Alcotest.(check int) "no stale" 0 (List.length stale)

let baseline_matches_all_same_item () =
  (* One entry covers every finding of the (rule, file, item) coordinate —
     e.g. both Cond.wait sites inside dequeue. *)
  let entries = Driver.parse_baseline baseline_text in
  let f1 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"dequeue" in
  let f2 = finding ~rule:"R5" ~file:"lib/qm/qm.ml" ~item:"dequeue" in
  let kept, suppressed, _ = Driver.apply_baseline entries [ f1; f2 ] in
  Alcotest.(check int) "none kept" 0 (List.length kept);
  Alcotest.(check int) "both suppressed" 2 suppressed

let baseline_goes_stale () =
  let entries = Driver.parse_baseline baseline_text in
  let kept, suppressed, stale = Driver.apply_baseline entries [] in
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "nothing suppressed" 0 suppressed;
  Alcotest.(check int) "entry is stale" 1 (List.length stale)

let baseline_rejects_malformed () =
  Alcotest.check_raises "two-field line rejected"
    (Failure "baseline line 1: expected `RULE path item  # rationale'")
    (fun () -> ignore (Driver.parse_baseline "R5 lib/qm/qm.ml\n"))

(* ---- Swallow and Crash -------------------------------------------------- *)

let swallow_tolerates_nonfatal () =
  Alcotest.(check int) "default on Failure" 7
    (Swallow.run ~default:7 (fun () -> failwith "participant down"));
  Alcotest.(check bool) "Not_found nonfatal" true (Swallow.nonfatal Not_found)

let swallow_reraises_crash () =
  Alcotest.(check bool) "Crash is fatal" true (Swallow.fatal Crashpoint.Crash);
  Alcotest.check_raises "Crash escapes Swallow.run" Crashpoint.Crash (fun () ->
      Swallow.run ~default:() (fun () -> raise Crashpoint.Crash))

let swallow_reraises_assert () =
  Alcotest.(check bool) "assert false fatal" true
    (try
       ignore (Swallow.run ~default:0 (fun () -> assert false));
       false
     with Assert_failure _ -> true)

let crash_kills_fiber_silently () =
  let s = Sched.create () in
  let reached_end = ref false in
  ignore
    (Sched.spawn s ~name:"doomed" (fun () ->
         (Crashpoint.crash () : unit);
         reached_end := true));
  ignore (Sched.spawn s ~name:"bystander" (fun () -> Sched.sleep 1.0));
  Sched.run s;
  Alcotest.(check bool) "fiber unwound" false !reached_end;
  Alcotest.(check int) "no failure recorded" 0 (List.length (Sched.failures s))

let ordinary_exn_still_fails () =
  let s = Sched.create () in
  ignore (Sched.spawn s ~name:"bug" (fun () -> failwith "real bug"));
  Sched.run s;
  Alcotest.(check int) "failure recorded" 1 (List.length (Sched.failures s))

(* ---- runner ------------------------------------------------------------- *)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "rrq-lint"
    [
      ("r1", List.map (fun (n, f) -> quick n f) r1_cases);
      ("r2", List.map (fun (n, f) -> quick n f) r2_cases);
      ("r3", List.map (fun (n, f) -> quick n f) r3_cases);
      ("r4", List.map (fun (n, f) -> quick n f) r4_cases);
      ("r5", List.map (fun (n, f) -> quick n f) r5_cases);
      ( "callgraph",
        [
          quick "nested modules" cg_nested_modules;
          quick "functor application" cg_functor;
          quick "shadowed module names: every candidate" cg_shadowed_names;
          quick "first-class module payload: no edge" cg_first_class_module;
          quick "mutually recursive bindings" cg_mutual_recursion;
          quick "module alias + library wrapping" cg_alias_resolution;
          quick "under-application still an edge" cg_under_application_is_edge;
        ] );
      ("r7", List.map (fun (n, f) -> quick n f) r7_cases);
      ("r8", List.map (fun (n, f) -> quick n f) r8_cases);
      ( "r6",
        [ quick "fires: missing mli" r6_fires; quick "silent: covered" r6_silent ]
      );
      ("parse", [ quick "syntax error reported" parse_error_reported ]);
      ( "baseline",
        [
          quick "suppresses matching findings" baseline_suppresses;
          quick "one entry covers an item's findings" baseline_matches_all_same_item;
          quick "unmatched entry is stale" baseline_goes_stale;
          quick "malformed line rejected" baseline_rejects_malformed;
        ] );
      ( "swallow",
        [
          quick "tolerates nonfatal" swallow_tolerates_nonfatal;
          quick "re-raises Crash" swallow_reraises_crash;
          quick "re-raises Assert_failure" swallow_reraises_assert;
        ] );
      ( "crash",
        [
          quick "Crash kills the fiber silently" crash_kills_fiber_silently;
          quick "ordinary exception still recorded" ordinary_exn_still_fails;
        ] );
    ]
