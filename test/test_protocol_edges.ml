(* Edge cases of the client protocol: the remaining fig. 2 recovery
   branches, one-way sends, transceive, and identity-based cancellation
   across forwarded queues. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Server = Rrq_core.Server
module Session = Rrq_core.Session
module Forwarder = Rrq_core.Forwarder
module Envelope = Rrq_core.Envelope
module H = Rrq_test_support.Sim_harness

let make_rig s =
  let net = Net.create s (Rng.create 88) in
  let backend =
    Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
      (Net.make_node net "backend")
  in
  let _ =
    Server.start backend ~req_queue:"req" (fun site txn env ->
        ignore
          (Kvdb.add (Site.kv site) (Tm.txn_id txn) ("exec:" ^ env.Envelope.rid) 1);
        Server.Reply ("done:" ^ env.Envelope.rid))
  in
  (net, backend, Net.make_node net "client")

(* fig. 2, branch 2, sub-case "already processed": the client crashed after
   printing the ticket but before the next Send. The device (ticket count)
   disagrees with the checkpoint stored at Receive time, so the new
   incarnation must NOT reprocess. *)
let test_session_already_processed_branch () =
  let outcome = ref None in
  let tickets = ref 0 in
  let _ =
    H.run (fun s ->
        let _, _, client_node = make_rig s in
        ignore
          (Sched.spawn s ~group:"inc1" ~name:"alice-1" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"req" ()
               in
               ignore (Clerk.send clerk ~rid:"r1" "job");
               (* checkpoint the device state (0 tickets) with the Receive *)
               (match Clerk.receive clerk ~ckpt:(string_of_int !tickets) () with
               | Some _ -> incr tickets (* the ticket prints *)
               | None -> Alcotest.fail "no reply");
               (* crash before Send r2 *)
               Sched.sleep 1000.0));
        Sched.at s 5.0 (fun () -> Sched.kill_group s "inc1");
        Sched.at s 6.0 (fun () ->
            ignore
              (Sched.spawn s ~group:"inc2" ~name:"alice-2" (fun () ->
                   let clerk, _ =
                     Clerk.connect ~client_node ~system:"backend"
                       ~client_id:"alice" ~req_queue:"req" ()
                   in
                   let config =
                     {
                       Session.default_config with
                       next_request = (fun _ -> None) (* no new work *);
                       process_reply = (fun _ -> incr tickets);
                       device_state = (fun () -> string_of_int !tickets);
                       resume_seq = (fun () -> !tickets + 1);
                     }
                   in
                   outcome := Some (Session.run clerk config)))))
  in
  (match !outcome with
  | Some o ->
    Alcotest.(check bool) "already-processed branch taken" true
      (o.Session.resynced = `Already_processed)
  | None -> Alcotest.fail "second incarnation did not run");
  Alcotest.(check int) "ticket printed exactly once" 1 !tickets

let test_send_oneway_and_receive () =
  let got = ref None in
  let _ =
    H.run (fun s ->
        let _, _, client_node = make_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"req" ()
               in
               Clerk.send_oneway clerk ~rid:"r1" "fire-and-forget";
               got := Clerk.receive clerk ~timeout:10.0 ())))
  in
  match !got with
  | Some reply ->
    Alcotest.(check string) "reply arrives without a send ack" "r1"
      reply.Envelope.rid
  | None -> Alcotest.fail "no reply"

let test_transceive () =
  let _ =
    H.run (fun s ->
        let _, backend, client_node = make_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"req" ()
               in
               (match Clerk.transceive clerk ~rid:"r1" "job" with
               | Some reply ->
                 Alcotest.(check string) "combined send+receive" "done:r1"
                   reply.Envelope.body
               | None -> Alcotest.fail "no reply");
               Alcotest.(check (option string)) "executed once" (Some "1")
                 (Kvdb.committed_value (Site.kv backend) "exec:r1"))))
  in
  ()

(* Identity-based cancel: the request has been forwarded from the front
   site to the backend, so its original eid is gone; kill it by
   (client, rid) wherever it is. *)
let test_cancel_after_forwarding () =
  let verdict = ref "" in
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 89) in
        let front =
          Site.create ~queues:[ ("outbox", Qm.default_attrs) ]
            (Net.make_node net "front")
        in
        let backend =
          Site.create ~queues:[ ("req", Qm.default_attrs) ]
            (Net.make_node net "backend")
        in
        (* no server: the request parks in the backend queue *)
        Forwarder.start front ~local_queue:"outbox" ~dst:"backend"
          ~remote_queue:"req" ();
        let client_node = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"front" ~client_id:"alice"
                   ~req_queue:"outbox" ()
               in
               ignore (Clerk.send clerk ~rid:"r1" "job");
               (* wait for the forwarder to move it *)
               Sched.sleep 2.0;
               Alcotest.(check int) "moved off the front" 0
                 (Qm.depth (Site.qm front) "outbox");
               Alcotest.(check int) "parked at the backend" 1
                 (Qm.depth (Site.qm backend) "req");
               (* eid-based cancel fails: the element moved *)
               let by_eid = Clerk.cancel_last_request clerk in
               (* identity-based cancel finds it at the backend *)
               let by_identity =
                 Clerk.cancel_request_anywhere clerk
                   ~sites:[ "front"; "backend" ] ~rid:"r1"
               in
               if
                 (not by_eid) && by_identity
                 && Qm.depth (Site.qm backend) "req" = 0
               then verdict := "ok"
               else
                 verdict :=
                   Printf.sprintf "by_eid=%b by_identity=%b depth=%d" by_eid
                     by_identity
                     (Qm.depth (Site.qm backend) "req"))))
  in
  Alcotest.(check string) "cancel-anywhere verdict" "ok" !verdict

let test_kill_where_scopes_to_matching_elements () =
  H.run_fiber (fun () ->
      let disk = Rrq_storage.Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "q";
      let h, _ = Qm.register qm ~queue:"q" ~registrant:"t" ~stable:false in
      let put rid client =
        ignore
          (Qm.auto_commit qm (fun id ->
               Qm.enqueue qm id h ~props:[ ("rid", rid); ("client", client) ] rid))
      in
      put "r1" "alice";
      put "r2" "alice";
      put "r1" "bob";
      let killed =
        Qm.kill_where qm
          (Rrq_qm.Filter.And
             (Rrq_qm.Filter.Prop_eq ("client", "alice"),
              Rrq_qm.Filter.Prop_eq ("rid", "r1")))
      in
      Alcotest.(check int) "only alice's r1" 1 killed;
      Alcotest.(check int) "two remain" 2 (Qm.depth qm "q"))

(* Strict clerks enforce the fig. 1 machine: a second Send with a fresh
   rid before receiving is a protocol violation; retrying the same Send is
   recovery and stays legal. *)
let test_strict_clerk_enforcement () =
  let verdict = ref "" in
  let _ =
    H.run (fun s ->
        let _, _, client_node = make_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"req" ~strict:true ()
               in
               ignore (Clerk.send clerk ~rid:"r1" "a");
               (* retrying the SAME rid is fine *)
               ignore (Clerk.send clerk ~rid:"r1" "a");
               (* a NEW rid before the reply is illegal *)
               (match Clerk.send clerk ~rid:"r2" "b" with
               | _ -> verdict := "violation not detected"
               | exception Clerk.Protocol_violation _ -> verdict := "caught");
               (* the legal continuation still works *)
               match Clerk.receive clerk () with
               | Some reply when reply.Envelope.rid = "r1" ->
                 ignore (Clerk.send clerk ~rid:"r2" "b");
                 (match Clerk.receive clerk () with
                 | Some _ -> Clerk.disconnect clerk
                 | None -> verdict := "second reply lost")
               | _ -> verdict := "first reply lost")))
  in
  Alcotest.(check string) "strict clerk verdict" "caught" !verdict

let test_clerk_state_tracking () =
  let states = ref [] in
  let _ =
    H.run (fun s ->
        let _, _, client_node = make_rig s in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let clerk, _ =
                 Clerk.connect ~client_node ~system:"backend"
                   ~client_id:"alice" ~req_queue:"req" ()
               in
               let snap () = states := Clerk.state clerk :: !states in
               snap ();
               ignore (Clerk.send clerk ~rid:"r1" "a");
               snap ();
               ignore (Clerk.receive clerk ());
               snap ())))
  in
  Alcotest.(check (list string)) "state trajectory"
    [ "Connected"; "Req-Sent"; "Reply-Recvd" ]
    (List.rev_map Rrq_core.Client_fsm.state_to_string !states)

(* Duplicate suppression at the QM: the same tagged Send arriving twice
   (a retry after a lost acknowledgment) must enqueue exactly one element
   and return the original eid. *)
let test_duplicate_send_suppressed () =
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 90) in
        let backend =
          Site.create ~queues:[ ("req", Qm.default_attrs) ]
            (Net.make_node net "backend")
        in
        let client_node = Net.make_node net "client" in
        ignore
          (Sched.spawn s ~group:"client" ~name:"alice" (fun () ->
               let call msg =
                 Net.call client_node ~dst:"backend" ~service:"qm" msg
               in
               let enqueue () =
                 call
                   (Site.Q_enqueue
                      {
                        registrant = "alice";
                        queue = "req";
                        tag = Some (Rrq_core.Tag.send ~rid:"r1");
                        props = [];
                        priority = 0;
                        body = "payload";
                      })
               in
               ignore
                 (call
                    (Site.Q_register
                       { queue = "req"; registrant = "alice"; stable = true }));
               let e1 = enqueue () in
               let e2 = enqueue () in
               (match (e1, e2) with
               | Site.R_eid a, Site.R_eid b ->
                 Alcotest.(check int64) "same eid returned" a b
               | _ -> Alcotest.fail "unexpected replies");
               Alcotest.(check int) "exactly one element" 1
                 (Qm.depth (Site.qm backend) "req"))))
  in
  ()

(* Volatile queue pair (paper 11): a volatile outbox forwarded into a
   remote queue works while everything is up, and a crash loses exactly
   the not-yet-forwarded contents — the documented trade. *)
let test_volatile_queue_pair () =
  let _ =
    H.run (fun s ->
        let net = Net.create s (Rng.create 91) in
        let vattrs = { Qm.default_attrs with durability = Qm.Volatile } in
        let front =
          Site.create ~queues:[ ("outbox", vattrs) ] (Net.make_node net "front")
        in
        let backend =
          Site.create ~queues:[ ("req", vattrs) ] (Net.make_node net "backend")
        in
        Forwarder.start front ~local_queue:"outbox" ~dst:"backend"
          ~remote_queue:"req" ();
        ignore
          (Sched.spawn s ~group:"client" ~name:"driver" (fun () ->
               let qm = Site.qm front in
               let h, _ =
                 Qm.register qm ~queue:"outbox" ~registrant:"d" ~stable:false
               in
               for i = 1 to 5 do
                 ignore
                   (Qm.auto_commit qm (fun id ->
                        Qm.enqueue qm id h (Printf.sprintf "m%d" i)))
               done;
               Sched.sleep 2.0;
               (* all five made it across the volatile pair *)
               Alcotest.(check int) "all forwarded" 5
                 (Qm.depth (Site.qm backend) "req");
               (* park two more, crash the front before forwarding *)
               Site.crash front;
               Site.restart front;
               Sched.sleep 1.0;
               Alcotest.(check int) "volatile outbox empty after crash" 0
                 (Qm.depth (Site.qm front) "outbox");
               Alcotest.(check int) "backend volatile copy also bounded" 5
                 (Qm.depth (Site.qm backend) "req"))))
  in
  ()

let () =
  Alcotest.run "rrq-protocol-edges"
    [
      ( "edges",
        [
          Alcotest.test_case "session already-processed branch" `Quick
            test_session_already_processed_branch;
          Alcotest.test_case "send_oneway" `Quick test_send_oneway_and_receive;
          Alcotest.test_case "transceive" `Quick test_transceive;
          Alcotest.test_case "cancel after forwarding" `Quick
            test_cancel_after_forwarding;
          Alcotest.test_case "kill_where scoping" `Quick
            test_kill_where_scopes_to_matching_elements;
          Alcotest.test_case "strict clerk enforcement" `Quick
            test_strict_clerk_enforcement;
          Alcotest.test_case "clerk state tracking" `Quick
            test_clerk_state_tracking;
          Alcotest.test_case "duplicate send suppressed" `Quick
            test_duplicate_send_suppressed;
          Alcotest.test_case "volatile queue pair" `Quick
            test_volatile_queue_pair;
        ] );
    ]
