(* Tests for the recoverable queue manager: fig. 3 operations, error
   queues, persistent registration, volatility, redirection, triggers,
   strict FIFO, crash recovery and the kill/cancel path. *)

module Sched = Rrq_sim.Sched
module Disk = Rrq_storage.Disk
module Txid = Rrq_txn.Txid
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter
module H = Rrq_test_support.Sim_harness

let tx n = Txid.make ~origin:"test" ~inc:1 ~n

let setup ?(attrs = Qm.default_attrs) ?triggers disk qname =
  let qm = Qm.open_qm ?triggers disk ~name:"qm" in
  Qm.create_queue qm ~attrs qname;
  let h, last = Qm.register qm ~queue:qname ~registrant:"tester" ~stable:true in
  (qm, h, last)

let enq ?tag ?props ?priority qm h payload =
  Qm.auto_commit qm (fun id -> Qm.enqueue qm id h ?tag ?props ?priority payload)

let deq ?tag ?filter qm h =
  Qm.auto_commit qm (fun id -> Qm.dequeue qm id h ?tag ?filter Qm.No_wait)

let payload_of = function
  | Some el -> el.Element.payload
  | None -> "<empty>"

(* --- basics ----------------------------------------------------------- *)

let test_roundtrip () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, last = setup disk "q" in
      Alcotest.(check bool) "fresh registration" true (last = None);
      ignore (enq qm h "hello");
      Alcotest.(check int) "depth 1" 1 (Qm.depth qm "q");
      Alcotest.(check string) "fifo" "hello" (payload_of (deq qm h));
      Alcotest.(check int) "depth 0" 0 (Qm.depth qm "q");
      Alcotest.(check bool) "empty now" true (deq qm h = None))

let test_fifo_order () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      List.iter (fun p -> ignore (enq qm h p)) [ "a"; "b"; "c" ];
      Alcotest.(check (list string)) "fifo order" [ "a"; "b"; "c" ]
        (List.init 3 (fun _ -> payload_of (deq qm h))))

let test_priority_order () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq ~priority:1 qm h "low");
      ignore (enq ~priority:9 qm h "high");
      ignore (enq ~priority:5 qm h "mid");
      ignore (enq ~priority:9 qm h "high2");
      Alcotest.(check (list string)) "priority then fifo"
        [ "high"; "high2"; "mid"; "low" ]
        (List.init 4 (fun _ -> payload_of (deq qm h))))

let test_filter_dequeue () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq ~props:[ ("type", "credit") ] qm h "c1");
      ignore (enq ~props:[ ("type", "debit"); ("amount", "500") ] qm h "d1");
      ignore (enq ~props:[ ("type", "debit"); ("amount", "100") ] qm h "d2");
      let debit = Filter.Prop_eq ("type", "debit") in
      Alcotest.(check string) "first debit" "d1" (payload_of (deq ~filter:debit qm h));
      let big = Filter.(And (debit, Prop_ge ("amount", 200))) in
      Alcotest.(check bool) "no big debit left" true (deq ~filter:big qm h = None);
      Alcotest.(check string) "credit still first overall" "c1"
        (payload_of (deq qm h)))

let test_txn_visibility () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      let id = tx 1 in
      ignore (Qm.enqueue qm id h "pending");
      Alcotest.(check int) "invisible before commit" 0 (Qm.depth qm "q");
      Alcotest.(check bool) "not dequeueable" true (deq qm h = None);
      ignore ((Qm.participant qm).Tm.p_one_phase id);
      Alcotest.(check string) "visible after commit" "pending" (payload_of (deq qm h)))

let test_skip_locked () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "a");
      ignore (enq qm h "b");
      let id1 = tx 1 and id2 = tx 2 in
      let e1 = Qm.dequeue qm id1 h Qm.No_wait in
      Alcotest.(check string) "t1 sees a" "a" (payload_of e1);
      (* second, concurrent dequeuer skips the locked head (paper 10) *)
      let e2 = Qm.dequeue qm id2 h Qm.No_wait in
      Alcotest.(check string) "t2 skips to b" "b" (payload_of e2);
      ignore ((Qm.participant qm).Tm.p_one_phase id1);
      ignore ((Qm.participant qm).Tm.p_one_phase id2);
      Alcotest.(check int) "both gone" 0 (Qm.depth qm "q"))

let test_abort_returns_element () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "a");
      let id = tx 1 in
      ignore (Qm.dequeue qm id h Qm.No_wait);
      (Qm.participant qm).Tm.p_abort id;
      let el = deq qm h in
      Alcotest.(check string) "back in queue" "a" (payload_of el);
      (match el with
      | Some e -> Alcotest.(check int) "retry counted" 1 e.Element.delivery_count
      | None -> Alcotest.fail "missing"))

let test_error_queue_after_n_aborts () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ =
        setup ~attrs:{ Qm.default_attrs with retry_limit = 3 } disk "q"
      in
      ignore (enq qm h "poison");
      for i = 1 to 3 do
        let id = tx i in
        let el = Qm.dequeue qm id h Qm.No_wait in
        Alcotest.(check bool) (Printf.sprintf "attempt %d sees it" i) true
          (el <> None);
        (Qm.participant qm).Tm.p_abort id
      done;
      Alcotest.(check int) "main queue empty" 0 (Qm.depth qm "q");
      Alcotest.(check int) "error queue has it" 1 (Qm.depth qm "q.err");
      match Qm.elements qm "q.err" with
      | [ el ] ->
        Alcotest.(check int) "count" 3 el.Element.delivery_count;
        Alcotest.(check bool) "abort code set" true (el.Element.abort_code <> None)
      | _ -> Alcotest.fail "expected exactly one error element")

let test_error_queue_override_per_call () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ =
        setup ~attrs:{ Qm.default_attrs with retry_limit = 1 } disk "q"
      in
      Qm.create_queue qm "special.err";
      ignore (enq qm h "p");
      let id = tx 1 in
      ignore (Qm.dequeue qm id h ~error_queue:"special.err" Qm.No_wait);
      (Qm.participant qm).Tm.p_abort id;
      Alcotest.(check int) "moved to the per-call error queue" 1
        (Qm.depth qm "special.err"))

let test_retry_counter_durable () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ =
        setup ~attrs:{ Qm.default_attrs with retry_limit = 3 } disk "q"
      in
      ignore (enq qm h "p");
      let id = tx 1 in
      ignore (Qm.dequeue qm id h Qm.No_wait);
      (Qm.participant qm).Tm.p_abort id;
      (* crash: the bump must persist so the element cannot cycle forever *)
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      match Qm.elements qm2 "q" with
      | [ el ] -> Alcotest.(check int) "durable retry count" 1 el.Element.delivery_count
      | _ -> Alcotest.fail "element lost")

(* --- persistence ------------------------------------------------------- *)

let test_committed_enqueue_survives_crash () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "keep");
      let id = tx 1 in
      ignore (Qm.enqueue qm id h "lose") (* never committed *);
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      let h2, _ = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      Alcotest.(check int) "only committed element" 1 (Qm.depth qm2 "q");
      Alcotest.(check string) "payload" "keep" (payload_of (deq qm2 h2)))

let test_committed_dequeue_survives_crash () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "a");
      ignore (deq qm h);
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      Alcotest.(check int) "stays dequeued" 0 (Qm.depth qm2 "q"))

let test_uncommitted_dequeue_returns_after_crash () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "a");
      let id = tx 1 in
      ignore (Qm.dequeue qm id h Qm.No_wait);
      (* crash with the dequeue unresolved (neither committed nor prepared):
         the request must be back in the queue after recovery (paper 2) *)
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      let h2, _ = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      Alcotest.(check string) "request reappears" "a" (payload_of (deq qm2 h2)))

let test_prepared_dequeue_stays_locked_after_crash () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "a");
      let id = tx 1 in
      ignore (Qm.dequeue qm id h Qm.No_wait);
      Alcotest.(check bool) "prepare ok" true
        ((Qm.participant qm).Tm.p_prepare id ~coordinator:"c");
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      let h2, _ = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      (* element present but locked by the in-doubt transaction *)
      Alcotest.(check int) "present" 1 (Qm.depth qm2 "q");
      Alcotest.(check bool) "not dequeueable" true (deq qm2 h2 = None);
      (* commit resolves and removes it *)
      ignore ((Qm.participant qm2).Tm.p_commit id);
      Alcotest.(check int) "gone after commit" 0 (Qm.depth qm2 "q"))

let test_prepared_enqueue_applies_on_commit_after_crash () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      let id = tx 1 in
      ignore (Qm.enqueue qm id h "deferred");
      ignore ((Qm.participant qm).Tm.p_prepare id ~coordinator:"c");
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      Alcotest.(check int) "invisible while in doubt" 0 (Qm.depth qm2 "q");
      ignore ((Qm.participant qm2).Tm.p_commit id);
      Alcotest.(check int) "applied on commit" 1 (Qm.depth qm2 "q"))

let test_checkpoint_equivalence () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      for i = 1 to 10 do
        ignore (enq ~priority:(i mod 3) qm h (Printf.sprintf "p%d" i))
      done;
      ignore (deq qm h);
      Qm.checkpoint qm;
      for i = 11 to 15 do
        ignore (enq qm h (Printf.sprintf "p%d" i))
      done;
      ignore (deq qm h);
      let before = List.map (fun e -> e.Element.payload) (Qm.elements qm "q") in
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      let after = List.map (fun e -> e.Element.payload) (Qm.elements qm2 "q") in
      Alcotest.(check (list string)) "same queue state" before after)

(* --- registration ------------------------------------------------------ *)

let test_registration_tags_roundtrip () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq ~tag:"rid-42" qm h "req");
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      let _, last = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      match last with
      | Some l ->
        Alcotest.(check string) "tag" "rid-42" l.Qm.tag;
        Alcotest.(check bool) "kind" true (l.Qm.op_kind = `Enqueue);
        Alcotest.(check string) "element copy" "req"
          (match l.Qm.element_copy with Some e -> e.Element.payload | None -> "?")
      | None -> Alcotest.fail "expected last-op info")

let test_tag_atomic_with_op () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      (* an aborted tagged operation must not update the tag *)
      let id = tx 1 in
      ignore (Qm.enqueue qm id h ~tag:"lost" "x");
      (Qm.participant qm).Tm.p_abort id;
      let _, last = Qm.register qm ~queue:"q" ~registrant:"tester" ~stable:true in
      Alcotest.(check bool) "no tag recorded" true (last = None))

let test_dequeue_tag_and_rereceive () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "reply-1");
      ignore (deq ~tag:"ckpt-7" qm h);
      (* Rereceive: the copy is readable even though the element is gone *)
      (match Qm.read_last qm h with
      | Some el -> Alcotest.(check string) "copy" "reply-1" el.Element.payload
      | None -> Alcotest.fail "expected saved copy");
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      let h2, last = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      (match last with
      | Some l ->
        Alcotest.(check string) "tag after crash" "ckpt-7" l.Qm.tag;
        Alcotest.(check bool) "kind" true (l.Qm.op_kind = `Dequeue)
      | None -> Alcotest.fail "tag lost");
      match Qm.read_last qm2 h2 with
      | Some el -> Alcotest.(check string) "copy survives" "reply-1" el.Element.payload
      | None -> Alcotest.fail "copy lost")

let test_unstable_registration_keeps_no_tags () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "q";
      let h, _ = Qm.register qm ~queue:"q" ~registrant:"srv" ~stable:false in
      ignore (enq ~tag:"t" qm h "x");
      let _, last = Qm.register qm ~queue:"q" ~registrant:"srv" ~stable:false in
      Alcotest.(check bool) "no tag" true (last = None))

let test_deregister () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      Qm.deregister qm h;
      Alcotest.check_raises "handle dead" (Qm.Not_registered "tester@q")
        (fun () -> ignore (enq qm h "x"));
      let _, last = Qm.register qm ~queue:"q" ~registrant:"tester" ~stable:true in
      Alcotest.(check bool) "state wiped" true (last = None))

(* --- volatile / redirect / alert / triggers ---------------------------- *)

let test_volatile_queue_lost_on_crash_and_unlogged () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm
        ~attrs:{ Qm.default_attrs with durability = Qm.Volatile }
        "vq";
      let h, _ = Qm.register qm ~queue:"vq" ~registrant:"t" ~stable:false in
      let synced_before = Disk.synced_bytes disk in
      for i = 1 to 10 do
        ignore (enq qm h (string_of_int i))
      done;
      Alcotest.(check int) "present" 10 (Qm.depth qm "vq");
      Alcotest.(check int) "no forced log writes for volatile ops"
        synced_before (Disk.synced_bytes disk);
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      Alcotest.(check bool) "queue definition survives" true
        (Qm.queue_exists qm2 "vq");
      Alcotest.(check int) "contents lost" 0 (Qm.depth qm2 "vq"))

let test_redirect () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "target";
      Qm.create_queue qm
        ~attrs:{ Qm.default_attrs with redirect_to = Some "target" }
        "source";
      let h, _ = Qm.register qm ~queue:"source" ~registrant:"t" ~stable:false in
      ignore (enq qm h "x");
      Alcotest.(check int) "source empty" 0 (Qm.depth qm "source");
      Alcotest.(check int) "target got it" 1 (Qm.depth qm "target"))

let test_alert_threshold () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm
        ~attrs:{ Qm.default_attrs with alert_threshold = Some 3 }
        "q";
      let alerts = ref [] in
      Qm.set_alert_callback qm (fun qn d -> alerts := (qn, d) :: !alerts);
      let h, _ = Qm.register qm ~queue:"q" ~registrant:"t" ~stable:false in
      for i = 1 to 5 do
        ignore (enq qm h (string_of_int i))
      done;
      (* fires once on crossing, not on every further insert *)
      Alcotest.(check (list (pair string int))) "one alert" [ ("q", 3) ]
        (List.rev !alerts);
      (* drain below threshold, refill: fires again *)
      let h2, _ = Qm.register qm ~queue:"q" ~registrant:"d" ~stable:false in
      for _ = 1 to 4 do
        ignore (deq qm h2)
      done;
      ignore (enq qm h "x");
      ignore (enq qm h "y");
      Alcotest.(check int) "fires again after dropping below" 2
        (List.length !alerts))

let test_trigger_join () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let trig =
        {
          Qm.on_queue = "join";
          group_prop = "fork";
          complete =
            (fun members ->
              match Element.prop (List.hd members) "total" with
              | Some total -> List.length members >= int_of_string total
              | None -> false);
          make =
            (fun members ->
              let fork =
                match Element.prop (List.hd members) "fork" with
                | Some f -> f
                | None -> "?"
              in
              let merged =
                String.concat "+"
                  (List.map (fun m -> m.Element.payload) members)
              in
              [ ("next", merged, [ ("fork", fork) ]) ]);
        }
      in
      let qm = Qm.open_qm ~triggers:[ trig ] disk ~name:"qm" in
      Qm.create_queue qm "join";
      Qm.create_queue qm "next";
      let h, _ = Qm.register qm ~queue:"join" ~registrant:"t" ~stable:false in
      let props i = [ ("fork", "f1"); ("total", "3"); ("i", string_of_int i) ] in
      ignore (enq ~props:(props 1) qm h "r1");
      ignore (enq ~props:(props 2) qm h "r2");
      Alcotest.(check int) "not fired yet" 0 (Qm.depth qm "next");
      ignore (enq ~props:(props 3) qm h "r3");
      Alcotest.(check int) "group consumed" 0 (Qm.depth qm "join");
      Alcotest.(check int) "continuation produced" 1 (Qm.depth qm "next");
      match Qm.elements qm "next" with
      | [ el ] -> Alcotest.(check string) "merged" "r1+r2+r3" el.Element.payload
      | _ -> Alcotest.fail "expected one element")

let test_trigger_replay_deterministic () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let trig =
        {
          Qm.on_queue = "join";
          group_prop = "fork";
          complete = (fun members -> List.length members >= 2);
          make = (fun _ -> [ ("next", "done", []) ]);
        }
      in
      let qm = Qm.open_qm ~triggers:[ trig ] disk ~name:"qm" in
      Qm.create_queue qm "join";
      Qm.create_queue qm "next";
      let h, _ = Qm.register qm ~queue:"join" ~registrant:"t" ~stable:false in
      ignore (enq ~props:[ ("fork", "f") ] qm h "a");
      ignore (enq ~props:[ ("fork", "f") ] qm h "b");
      Alcotest.(check int) "fired live" 1 (Qm.depth qm "next");
      Disk.crash disk;
      let qm2 = Qm.open_qm ~triggers:[ trig ] disk ~name:"qm" in
      Alcotest.(check int) "join still consumed after replay" 0
        (Qm.depth qm2 "join");
      Alcotest.(check int) "continuation still there" 1 (Qm.depth qm2 "next"))

(* --- kill / cancel ------------------------------------------------------ *)

let test_kill_ready_element () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      let eid = enq qm h "victim" in
      Alcotest.(check bool) "killed" true (Qm.kill_element qm eid);
      Alcotest.(check int) "gone" 0 (Qm.depth qm "q");
      Alcotest.(check bool) "idempotent" false (Qm.kill_element qm eid);
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      Alcotest.(check int) "durably gone" 0 (Qm.depth qm2 "q"))

let test_kill_locked_element_aborts_holder () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      let aborted = ref None in
      Qm.set_abort_callback qm (fun id ->
          aborted := Some id;
          (Qm.participant qm).Tm.p_abort id);
      let eid = enq qm h "victim" in
      let id = tx 1 in
      ignore (Qm.dequeue qm id h Qm.No_wait);
      Alcotest.(check bool) "killed" true (Qm.kill_element qm eid);
      Alcotest.(check bool) "holder aborted" true (!aborted = Some id);
      Alcotest.(check int) "gone" 0 (Qm.depth qm "q"))

let test_read_and_read_locked () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      let eid = enq qm h "data" in
      (match Qm.read qm eid with
      | Some el -> Alcotest.(check string) "read" "data" el.Element.payload
      | None -> Alcotest.fail "missing");
      let id = tx 1 in
      ignore (Qm.dequeue qm id h Qm.No_wait);
      (* reads ignore write-locks (paper 10) *)
      Alcotest.(check bool) "readable while locked" true (Qm.read qm eid <> None);
      ignore ((Qm.participant qm).Tm.p_one_phase id);
      Alcotest.(check bool) "gone after commit" true (Qm.read qm eid = None))

(* --- blocking, sets, strict fifo ---------------------------------------- *)

let test_blocking_dequeue () =
  let got = ref "" and woke_at = ref 0.0 in
  let _ =
    H.run (fun s ->
        let disk = Disk.create "n" in
        let qm, h, _ = setup disk "q" in
        Qm.set_clock qm (fun () -> Sched.now s);
        ignore
          (Sched.spawn s ~name:"consumer" (fun () ->
               match Qm.auto_commit qm (fun id -> Qm.dequeue qm id h Qm.Block) with
               | Some el ->
                 got := el.Element.payload;
                 woke_at := Sched.clock ()
               | None -> Alcotest.fail "blocked dequeue returned None"));
        ignore
          (Sched.spawn s ~name:"producer" (fun () ->
               Sched.sleep 3.0;
               ignore (enq qm h "late"))))
  in
  Alcotest.(check string) "value" "late" !got;
  Alcotest.(check (float 1e-9)) "woke when produced" 3.0 !woke_at

let test_dequeue_timeout () =
  let r = ref (Some "x") in
  let _ =
    H.run (fun s ->
        let disk = Disk.create "n" in
        let qm, h, _ = setup disk "q" in
        Qm.set_clock qm (fun () -> Sched.now s);
        ignore
          (Sched.spawn s ~name:"consumer" (fun () ->
               r :=
                 Qm.auto_commit qm (fun id ->
                     Qm.dequeue qm id h (Qm.Timeout 2.0))
                 |> Option.map (fun el -> el.Element.payload))))
  in
  Alcotest.(check (option string)) "timed out empty" None !r

let test_dequeue_set () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm = Qm.open_qm disk ~name:"qm" in
      Qm.create_queue qm "qa";
      Qm.create_queue qm "qb";
      let ha, _ = Qm.register qm ~queue:"qa" ~registrant:"t" ~stable:false in
      let hb, _ = Qm.register qm ~queue:"qb" ~registrant:"t" ~stable:false in
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id ha ~priority:1 "a"));
      ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id hb ~priority:5 "b"));
      match
        Qm.auto_commit qm (fun id -> Qm.dequeue_set qm id [ ha; hb ] Qm.No_wait)
      with
      | Some (h, el) ->
        Alcotest.(check string) "highest priority across set" "b"
          el.Element.payload;
        Alcotest.(check string) "from qb" "qb" (Qm.handle_queue h)
      | None -> Alcotest.fail "expected an element")

let test_strict_fifo_serializes () =
  let order = ref [] in
  let _ =
    H.run (fun s ->
        let disk = Disk.create "n" in
        let qm, h, _ =
          setup ~attrs:{ Qm.default_attrs with strict_fifo = true } disk "q"
        in
        Qm.set_clock qm (fun () -> Sched.now s);
        ignore (Sched.spawn s ~name:"seed" (fun () ->
            ignore (enq qm h "a");
            ignore (enq qm h "b")));
        ignore
          (Sched.spawn s ~name:"t1" (fun () ->
               Sched.sleep 1.0;
               let id = tx 1 in
               let el = Qm.dequeue qm id h Qm.No_wait in
               order := ("t1:" ^ payload_of el) :: !order;
               Sched.sleep 5.0;
               ignore ((Qm.participant qm).Tm.p_one_phase id);
               order := "t1:commit" :: !order));
        ignore
          (Sched.spawn s ~name:"t2" (fun () ->
               Sched.sleep 2.0;
               let id = tx 2 in
               (* blocks on the queue lock until t1 commits *)
               let el = Qm.dequeue qm id h Qm.No_wait in
               order := ("t2:" ^ payload_of el) :: !order;
               ignore ((Qm.participant qm).Tm.p_one_phase id))))
  in
  Alcotest.(check (list string)) "strict order"
    [ "t1:a"; "t1:commit"; "t2:b" ] (List.rev !order)

let test_abort_stale () =
  let _ =
    H.run (fun s ->
        let disk = Disk.create "n" in
        let qm, h, _ = setup disk "q" in
        Qm.set_clock qm (fun () -> Sched.now s);
        ignore
          (Sched.spawn s ~name:"flow" (fun () ->
               ignore (enq qm h "a");
               let id = tx 1 in
               ignore (Qm.dequeue qm id h Qm.No_wait);
               Sched.sleep 10.0;
               Alcotest.(check int) "one stale txn aborted" 1
                 (Qm.abort_stale qm ~older_than:5.0);
               Alcotest.(check string) "element freed" "a"
                 (payload_of (deq qm h)))))
  in
  ()

let test_auto_commit_exception_aborts () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      (try
         Qm.auto_commit qm (fun id ->
             ignore (Qm.enqueue qm id h "x");
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "nothing enqueued" 0 (Qm.depth qm "q"))

(* --- DDL: stop / start / destroy ---------------------------------------- *)

let test_stop_start_queue () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "before");
      Qm.stop_queue qm "q";
      Alcotest.(check bool) "stopped" true (Qm.queue_stopped qm "q");
      Alcotest.check_raises "enqueue rejected" (Qm.Stopped "q") (fun () ->
          ignore (enq qm h "x"));
      Alcotest.check_raises "dequeue rejected" (Qm.Stopped "q") (fun () ->
          ignore (deq qm h));
      Alcotest.(check int) "contents retained" 1 (Qm.depth qm "q");
      (* stopped state survives a crash *)
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      Alcotest.(check bool) "stopped after recovery" true
        (Qm.queue_stopped qm2 "q");
      Qm.start_queue qm2 "q";
      let h2, _ = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      Alcotest.(check string) "flows again" "before" (payload_of (deq qm2 h2)))

let test_destroy_queue () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ = setup disk "q" in
      ignore (enq qm h "doomed");
      Qm.destroy_queue qm "q";
      Alcotest.(check bool) "gone" false (Qm.queue_exists qm "q");
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      Alcotest.(check bool) "durably gone" false (Qm.queue_exists qm2 "q");
      (* recreating starts fresh, registrations were wiped *)
      Qm.create_queue qm2 "q";
      let _, last = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      Alcotest.(check bool) "registration wiped" true (last = None);
      Alcotest.(check int) "empty" 0 (Qm.depth qm2 "q"))

let test_alter_queue () =
  H.run_fiber (fun () ->
      let disk = Disk.create "n" in
      let qm, h, _ =
        setup ~attrs:{ Qm.default_attrs with retry_limit = 2 } disk "q"
      in
      (* raise the retry limit on the live queue *)
      Qm.alter_queue qm "q" { Qm.default_attrs with retry_limit = 5 };
      ignore (enq qm h "p");
      for i = 1 to 4 do
        let id = tx i in
        ignore (Qm.dequeue qm id h Qm.No_wait);
        (Qm.participant qm).Tm.p_abort id
      done;
      Alcotest.(check int) "still in main queue under the new limit" 1
        (Qm.depth qm "q");
      (* the change is durable *)
      Disk.crash disk;
      let qm2 = Qm.open_qm disk ~name:"qm" in
      let h2, _ = Qm.register qm2 ~queue:"q" ~registrant:"tester" ~stable:true in
      let id = tx 9 in
      ignore (Qm.dequeue qm2 id h2 Qm.No_wait);
      (Qm.participant qm2).Tm.p_abort id;
      Alcotest.(check int) "5th abort parks it" 1 (Qm.depth qm2 "q.err");
      (* durability class cannot change *)
      match
        Qm.alter_queue qm2 "q"
          { Qm.default_attrs with durability = Qm.Volatile }
      with
      | () -> Alcotest.fail "durability change must be rejected"
      | exception Invalid_argument _ -> ())

(* --- model-based property test ----------------------------------------- *)

(* Random auto-committed enqueues/dequeues with crashes; the committed
   dequeues plus the surviving queue contents must equal the committed
   enqueues, with nothing processed twice. *)
let prop_no_loss_no_dup =
  QCheck2.Test.make ~name:"qm: no loss, no duplication under crashes" ~count:60
    QCheck2.Gen.(list_size (int_bound 80) (int_bound 9))
    (fun script ->
      H.run_fiber (fun () ->
          let disk = Disk.create "n" in
          let open_it () =
            let qm = Qm.open_qm disk ~name:"qm" in
            Qm.create_queue qm "q";
            let h, _ = Qm.register qm ~queue:"q" ~registrant:"m" ~stable:false in
            (qm, h)
          in
          let qm = ref (fst (open_it ())) in
          let h = ref (snd (open_it ())) in
          let n = ref 0 in
          let enqueued = Hashtbl.create 16 in
          let dequeued = Hashtbl.create 16 in
          List.iter
            (fun op ->
              if op <= 5 then begin
                incr n;
                let p = Printf.sprintf "e%d" !n in
                ignore (enq !qm !h p);
                Hashtbl.replace enqueued p ()
              end
              else if op <= 8 then begin
                match deq !qm !h with
                | Some el ->
                  if Hashtbl.mem dequeued el.Element.payload then
                    failwith "duplicate dequeue";
                  Hashtbl.replace dequeued el.Element.payload ()
                | None -> ()
              end
              else begin
                Disk.crash disk;
                let q2, h2 = open_it () in
                qm := q2;
                h := h2
              end)
            script;
          let remaining =
            List.map (fun e -> e.Element.payload) (Qm.elements !qm "q")
          in
          List.iter
            (fun p ->
              if Hashtbl.mem dequeued p then failwith "element both dequeued and present")
            remaining;
          let accounted = List.length remaining + Hashtbl.length dequeued in
          if accounted <> Hashtbl.length enqueued then
            failwith
              (Printf.sprintf "lost elements: enqueued %d accounted %d"
                 (Hashtbl.length enqueued) accounted);
          true))

let basics =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "priority order" `Quick test_priority_order;
    Alcotest.test_case "filter dequeue" `Quick test_filter_dequeue;
    Alcotest.test_case "txn visibility" `Quick test_txn_visibility;
    Alcotest.test_case "skip-locked concurrency" `Quick test_skip_locked;
    Alcotest.test_case "abort returns element" `Quick test_abort_returns_element;
    Alcotest.test_case "error queue after n aborts" `Quick
      test_error_queue_after_n_aborts;
    Alcotest.test_case "per-call error queue" `Quick
      test_error_queue_override_per_call;
    Alcotest.test_case "retry counter durable" `Quick test_retry_counter_durable;
  ]

let persistence =
  [
    Alcotest.test_case "committed enqueue survives crash" `Quick
      test_committed_enqueue_survives_crash;
    Alcotest.test_case "committed dequeue survives crash" `Quick
      test_committed_dequeue_survives_crash;
    Alcotest.test_case "uncommitted dequeue returns after crash" `Quick
      test_uncommitted_dequeue_returns_after_crash;
    Alcotest.test_case "prepared dequeue stays locked" `Quick
      test_prepared_dequeue_stays_locked_after_crash;
    Alcotest.test_case "prepared enqueue applies on commit" `Quick
      test_prepared_enqueue_applies_on_commit_after_crash;
    Alcotest.test_case "checkpoint equivalence" `Quick test_checkpoint_equivalence;
    QCheck_alcotest.to_alcotest prop_no_loss_no_dup;
  ]

let registration =
  [
    Alcotest.test_case "tags roundtrip crash" `Quick test_registration_tags_roundtrip;
    Alcotest.test_case "tag atomic with op" `Quick test_tag_atomic_with_op;
    Alcotest.test_case "dequeue tag + rereceive" `Quick test_dequeue_tag_and_rereceive;
    Alcotest.test_case "unstable registration" `Quick
      test_unstable_registration_keeps_no_tags;
    Alcotest.test_case "deregister" `Quick test_deregister;
  ]

let features =
  [
    Alcotest.test_case "volatile queue" `Quick
      test_volatile_queue_lost_on_crash_and_unlogged;
    Alcotest.test_case "redirect" `Quick test_redirect;
    Alcotest.test_case "alert threshold" `Quick test_alert_threshold;
    Alcotest.test_case "trigger join" `Quick test_trigger_join;
    Alcotest.test_case "trigger replay deterministic" `Quick
      test_trigger_replay_deterministic;
    Alcotest.test_case "kill ready element" `Quick test_kill_ready_element;
    Alcotest.test_case "kill locked element aborts holder" `Quick
      test_kill_locked_element_aborts_holder;
    Alcotest.test_case "read (incl. locked)" `Quick test_read_and_read_locked;
  ]

let blocking =
  [
    Alcotest.test_case "blocking dequeue" `Quick test_blocking_dequeue;
    Alcotest.test_case "dequeue timeout" `Quick test_dequeue_timeout;
    Alcotest.test_case "dequeue set" `Quick test_dequeue_set;
    Alcotest.test_case "strict fifo serializes" `Quick test_strict_fifo_serializes;
    Alcotest.test_case "abort stale workspaces" `Quick test_abort_stale;
    Alcotest.test_case "auto-commit exception aborts" `Quick
      test_auto_commit_exception_aborts;
    Alcotest.test_case "stop/start queue" `Quick test_stop_start_queue;
    Alcotest.test_case "destroy queue" `Quick test_destroy_queue;
    Alcotest.test_case "alter queue" `Quick test_alter_queue;
  ]

let () =
  Alcotest.run "rrq-qm"
    [
      ("basics", basics);
      ("persistence", persistence);
      ("registration", registration);
      ("features", features);
      ("blocking", blocking);
    ]
