(* Crash-point sweep: run a mixed workload (tagged enqueues, a two-RM 2PC
   transaction, a checkpoint) and replay it once per durability boundary,
   freezing the disk exactly there. After recovery (including manual
   in-doubt resolution, as the site resolver would do), the cross-RM
   atomicity invariants must hold at EVERY crash point:

     I1  kv "got" written      =>  e1 consumed and op1's tag durable
     I2  e1 still available    =>  tag is exactly "r1" and kv untouched
     I3  "second" present      <=> tag is "r2"
     I4  tag "r2"              =>  kv "got" written (op2 preceded op3)

   This is the strongest evidence that the deferred-update logging, the
   presumed-abort protocol and the tag atomicity of §4.3 compose
   correctly. *)

module Disk = Rrq_storage.Disk
module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Element = Rrq_qm.Element
module H = Rrq_test_support.Sim_harness
module C = Rrq_check
module Obs = Rrq_obs

let open_world ?commit_policy disk =
  let tm = Tm.open_tm ?commit_policy disk ~name:"node" in
  let qm = Qm.open_qm ?commit_policy disk ~name:"qm@node" in
  let kv = Kvdb.open_kv ?commit_policy disk ~name:"kv@node" in
  Qm.create_queue qm "q";
  (tm, qm, kv)

let workload ?commit_policy disk =
  let tm, qm, kv = open_world ?commit_policy disk in
  let h, _ = Qm.register qm ~queue:"q" ~registrant:"client" ~stable:true in
  (* op1: tagged enqueue (auto-commit) *)
  ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h ~tag:"r1" "first"));
  (* op2: 2PC across QM and KV: consume "first", record it in the db *)
  let txn = Tm.begin_txn tm in
  let id = Tm.txn_id txn in
  (match Qm.dequeue qm id h Qm.No_wait with
  | Some _ -> ()
  | None -> () (* op1's effects died with the disk; nothing to consume *));
  Kvdb.put kv id "got" "1";
  Tm.join txn (Qm.participant qm);
  Tm.join txn (Kvdb.participant kv);
  ignore (Tm.commit tm txn);
  (* checkpoint in the middle so the sweep crosses a checkpoint too *)
  Qm.checkpoint qm;
  Kvdb.checkpoint kv;
  (* op3: second tagged enqueue *)
  ignore (Qm.auto_commit qm (fun id -> Qm.enqueue qm id h ~tag:"r2" "second"))

(* Reopen after the freeze, resolve any in-doubt transactions against the
   recovered coordinator (what the site resolver daemon does over RPC).
   The caller must have revived the disk. *)
let recover_and_audit disk =
  let tm, qm, kv = open_world disk in
  List.iter
    (fun (id, _coord) ->
      match Tm.decision tm id with
      | `Committed -> ignore ((Qm.participant qm).Tm.p_commit id)
      | `Aborted | `Pending -> (Qm.participant qm).Tm.p_abort id)
    (Qm.in_doubt qm);
  List.iter
    (fun (id, _coord) ->
      match Tm.decision tm id with
      | `Committed -> ignore ((Kvdb.participant kv).Tm.p_commit id)
      | `Aborted | `Pending -> (Kvdb.participant kv).Tm.p_abort id)
    (Kvdb.in_doubt kv);
  let _, last = Qm.register qm ~queue:"q" ~registrant:"client" ~stable:true in
  let tag = match last with Some l -> Some l.Qm.tag | None -> None in
  let payloads =
    List.map (fun el -> el.Element.payload) (Qm.elements qm "q")
  in
  let first_present = List.mem "first" payloads in
  let second_present = List.mem "second" payloads in
  let got = Kvdb.committed_value kv "got" = Some "1" in
  (tag, first_present, second_present, got)

let check_invariants ~point (tag, first_present, second_present, got) =
  let ctx fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.sprintf "crash@%d tag=%s first=%b second=%b got=%b: %s" point
          (match tag with Some t -> t | None -> "-")
          first_present second_present got msg)
      fmt
  in
  if got then begin
    Alcotest.(check bool) (ctx "I1 got => e1 consumed") false first_present;
    Alcotest.(check bool)
      (ctx "I1 got => op1 tag durable")
      true
      (tag = Some "r1" || tag = Some "r2")
  end;
  if first_present then begin
    Alcotest.(check (option string)) (ctx "I2 e1 present => tag r1") (Some "r1") tag;
    Alcotest.(check bool) (ctx "I2 e1 present => kv untouched") false got
  end;
  Alcotest.(check bool)
    (ctx "I3 second <=> tag r2")
    (tag = Some "r2") second_present;
  if tag = Some "r2" then
    Alcotest.(check bool) (ctx "I4 tag r2 => got") true got

(* The same invariants must hold whether commit points force the log
   one-by-one (Immediate, the default) or through the batched group-commit
   path, which reorders the apply/force interleaving. *)
let policies =
  [
    ("immediate", None);
    ( "batch",
      Some
        (Rrq_wal.Group_commit.Batch { max_delay = 0.0005; max_batch = 64 }) );
  ]

let test_sweep () =
  List.iter
    (fun (pname, commit_policy) ->
      (* The generic enumerator counts the durability boundaries on a clean
         run (point 0, which must also show the fully-durable end state),
         then freezes the disk at every boundary and audits recovery. *)
      let total_syncs =
        Rrq_check.Sweep.disk_sweep
          ~make:(fun point -> Disk.create (Printf.sprintf "%s-sweep%d" pname point))
          ~workload:(workload ?commit_policy)
          ~audit:(fun ~point disk ->
            let audit = recover_and_audit disk in
            check_invariants ~point audit;
            if point = 0 then begin
              let tag, first_present, second_present, got = audit in
              Alcotest.(check (option string)) (pname ^ ": final tag") (Some "r2") tag;
              Alcotest.(check bool) (pname ^ ": final first gone") false first_present;
              Alcotest.(check bool) (pname ^ ": final second there") true second_present;
              Alcotest.(check bool) (pname ^ ": final got") true got
            end)
          ()
      in
      Alcotest.(check bool)
        (pname ^ ": workload has enough sync points")
        true (total_syncs > 8))
    policies

(* The same sweep, but the crash lands during the *recovery* of the first
   crash (double failures, paper-grade paranoia). *)
let test_double_crash_sweep () =
  let total_syncs =
    H.run_fiber (fun () ->
        let disk = Disk.create "clean" in
        workload disk;
        Disk.sync_count disk)
  in
  let mid = total_syncs / 2 in
  (* First crash at the midpoint; then sweep a second crash through the
     recovery + resumed workload. *)
  for point2 = 1 to 6 do
    H.run_fiber (fun () ->
        let disk = Disk.create (Printf.sprintf "double%d" point2) in
        Disk.kill_after_syncs disk mid;
        workload disk;
        Disk.revive disk;
        (* the second crash lands while the first recovery is writing *)
        Disk.kill_after_syncs disk point2;
        ignore (recover_and_audit disk);
        Disk.revive disk;
        check_invariants ~point:(1000 + point2) (recover_and_audit disk))
  done

(* ---- named crash sites announce themselves in the trace ----------------- *)

(* When an armed [Crashpoint] fires it must emit a [Crashpoint_fired] trace
   event, so a recorded fault-injection run shows exactly where the fault
   landed. Runs one armed quickstart run per site under the observability
   layer and looks for the event. *)
let crashed_site_in_trace ~site =
  Obs.reset ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let o = C.Scenario.quickstart_crash_at ~site ~hit:1 ~recover_after:1.0 in
      let fired =
        List.filter
          (fun (_, e) ->
            match e with
            | Obs.Event.Crashpoint_fired { site = s; hit = h } ->
              s = site && h = 1
            | _ -> false)
          (Obs.Trace.events ())
      in
      Alcotest.(check int)
        (Printf.sprintf "%s fired exactly once in the trace" site)
        1 (List.length fired);
      Alcotest.(check bool)
        (Printf.sprintf "%s still recovers cleanly" site)
        false (C.Scenario.failed o))

let quickstart_sites () =
  let sites = C.Scenario.quickstart_crash_sites () in
  Alcotest.(check bool) "the probe finds a rich site space" true
    (List.length sites > 10);
  List.map fst sites

let test_crashpoint_trace_single () =
  let sites = quickstart_sites () in
  (* One site per subsystem prefix keeps the Quick tier fast. *)
  let pick prefix =
    match List.find_opt (String.starts_with ~prefix) sites with
    | Some s -> s
    | None -> Alcotest.failf "no crash site with prefix %s" prefix
  in
  List.iter
    (fun prefix -> crashed_site_in_trace ~site:(pick prefix))
    [ "wal.sync:"; "tm."; "clerk."; "server." ]

let test_crashpoint_trace_all_sites () =
  List.iter (fun site -> crashed_site_in_trace ~site) (quickstart_sites ())

let () =
  Alcotest.run "rrq-crashpoints"
    [
      ( "sweep",
        [
          Alcotest.test_case "every sync boundary" `Quick test_sweep;
          Alcotest.test_case "double crash" `Quick test_double_crash_sweep;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fired sites appear in the trace" `Quick
            test_crashpoint_trace_single;
          Alcotest.test_case "every named site emits its event" `Slow
            test_crashpoint_trace_all_sites;
        ] );
    ]
