(* Funds transfer as a multi-transaction request (paper §6, fig. 6) with
   saga cancellation (§7).

   The transfer runs as three chained transactions on three sites:
   debit at bankA, credit at bankB, log at the clearinghouse. We crash
   bankB mid-stream to show the chain cannot be broken, then cancel a
   completed transfer to show compensation running in reverse.

   Run with: dune exec examples/funds_transfer.exe *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Envelope = Rrq_core.Envelope
module Pipeline = Rrq_core.Pipeline

let amount = 250

let balance site key =
  match Kvdb.committed_value (Site.kv site) key with
  | Some s -> int_of_string s
  | None -> 0

let () =
  let sched = Sched.create () in
  let net = Net.create sched (Rng.create 2) in
  let bank_a = Site.create ~stale_timeout:2.0 (Net.make_node net "bankA") in
  let bank_b = Site.create ~stale_timeout:2.0 (Net.make_node net "bankB") in
  let clearing = Site.create ~stale_timeout:2.0 (Net.make_node net "clearing") in

  let stage site ~q ~narrate ~work ~undo =
    {
      Pipeline.stage_site = site;
      in_queue = q;
      work =
        (fun site txn env ->
          Printf.printf "  [%s] t=%.2f %s for %s\n" q (Sched.clock ()) narrate
            env.Envelope.rid;
          work site txn env);
      compensate =
        Some
          (fun site txn env ->
            Printf.printf "  [%s] t=%.2f COMPENSATE %s\n" q (Sched.clock ())
              env.Envelope.rid;
            undo site txn env);
    }
  in
  let pipeline =
    Pipeline.install
      [
        stage bank_a ~q:"debit" ~narrate:"debit source account"
          ~work:(fun site txn env ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "alice" (-amount));
            (env.Envelope.body, "debited"))
          ~undo:(fun site txn _ ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "alice" amount));
        stage bank_b ~q:"credit" ~narrate:"credit target account"
          ~work:(fun site txn env ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "bob" amount);
            (env.Envelope.body, "credited"))
          ~undo:(fun site txn _ ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "bob" (-amount)));
        stage clearing ~q:"clear" ~narrate:"log with clearinghouse"
          ~work:(fun site txn env ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "entries" 1);
            ("transfer complete", env.Envelope.scratch))
          ~undo:(fun site txn _ ->
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "entries" (-1)));
      ]
  in

  Site.with_txn bank_a (fun txn ->
      Kvdb.put (Site.kv bank_a) (Tm.txn_id txn) "alice" "1000");
  let client_node = Net.make_node net "client" in

  (* bankB goes down just as the transfers start flowing. *)
  Sched.at sched 0.08 (fun () ->
      print_endline "  [chaos] bankB crashes mid-chain!";
      Site.crash_restart bank_b ~after:2.5);

  let print_balances tag =
    Printf.printf
      "[%s] alice=%d bob=%d clearing-entries=%d (alice+bob=%d)\n" tag
      (balance bank_a "alice") (balance bank_b "bob")
      (balance clearing "entries")
      (balance bank_a "alice" + balance bank_b "bob")
  in

  ignore
    (Sched.spawn sched ~group:"client" ~name:"alice" (fun () ->
         let clerk, _ =
           Clerk.connect ~client_node ~system:(Pipeline.entry_site pipeline)
             ~client_id:"alice"
             ~req_queue:(Pipeline.entry_queue pipeline) ()
         in
         print_balances "before";
         for i = 1 to 2 do
           let rid = Printf.sprintf "xfer-%d" i in
           Printf.printf "[client] t=%.2f request %s: alice -> bob (%d)\n"
             (Sched.clock ()) rid amount;
           ignore (Clerk.send clerk ~rid "transfer");
           let rec get () =
             match Clerk.receive clerk ~timeout:5.0 () with
             | Some r -> r
             | None ->
               print_endline "[client] ... waiting (a bank may be down)";
               get ()
           in
           let reply = get () in
           Printf.printf "[client] t=%.2f reply for %s: %S\n" (Sched.clock ())
             reply.Envelope.rid reply.Envelope.body
         done;
         print_balances "after 2 transfers";

         (* Alice regrets transfer 2: too late to Kill_element (it already
            committed everywhere), so the saga compensates it. *)
         print_endline "[client] cancelling xfer-2 (runs compensations in reverse)";
         let cancel_clerk, _ =
           Clerk.connect ~client_node ~system:(Pipeline.cancel_site pipeline)
             ~client_id:"alice-cancel"
             ~req_queue:(Pipeline.cancel_queue pipeline) ()
         in
         (match Clerk.transceive cancel_clerk ~rid:"cancel-1" "xfer-2" with
         | Some reply ->
           Printf.printf "[client] cancel reply: %S\n" reply.Envelope.body
         | None -> print_endline "[client] cancel reply missing!");
         print_balances "after cancellation"));

  Sched.run sched;
  match Sched.failures sched with
  | [] -> print_endline "funds_transfer: OK"
  | (name, e) :: _ ->
    Printf.printf "funds_transfer: FIBER FAILURE %s: %s\n" name
      (Printexc.to_string e);
    exit 1
