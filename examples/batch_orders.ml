(* Batch input, load sharing and store-and-forward (paper §1, §2, §9).

   A branch office captures orders in its local queue even while the link
   to headquarters is down (store-and-forward masks the partition); at HQ
   an alert threshold on the order queue spawns surge server threads to
   drain the backlog (CICS-style task starting), sharing the load across
   dequeuers of one queue.

   Run with: dune exec examples/batch_orders.exe *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Server = Rrq_core.Server
module Autoscale = Rrq_core.Autoscale
module Forwarder = Rrq_core.Forwarder

let () =
  let sched = Sched.create () in
  let net = Net.create sched (Rng.create 4) in
  let branch =
    Site.create ~queues:[ ("outbox", Qm.default_attrs) ] ~stale_timeout:2.0
      (Net.make_node net "branch")
  in
  let hq = Site.create ~stale_timeout:2.0 (Net.make_node net "hq") in

  (* HQ: min 1 / max 5 server threads; surge when 8+ orders pile up. *)
  let scaler =
    Autoscale.install hq ~req_queue:"orders" ~min_threads:1 ~max_threads:5
      ~scale_at:8 (fun site txn _env ->
        Sched.sleep 0.2 (* each order takes 200ms to process *);
        ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "processed" 1);
        Server.No_reply)
  in

  (* Branch -> HQ forwarding (one element per transaction, 2PC). *)
  Forwarder.start branch ~local_queue:"outbox" ~dst:"hq" ~remote_queue:"orders" ();

  (* The WAN is down while the morning orders arrive. *)
  Net.partition net "branch" "hq";
  print_endline "[chaos] branch <-> hq link is DOWN";
  Sched.at sched 3.0 (fun () ->
      print_endline "[chaos] link restored";
      Net.heal net "branch" "hq");

  let client_node = Net.make_node net "teller" in
  ignore
    (Sched.spawn sched ~group:"teller" ~name:"teller" (fun () ->
         let clerk, _ =
           Clerk.connect ~client_node ~system:"branch" ~client_id:"teller"
             ~req_queue:"outbox" ()
         in
         for i = 1 to 25 do
           ignore
             (Clerk.send clerk ~rid:(Printf.sprintf "order-%d" i)
                (Printf.sprintf "25 widgets, order %d" i));
           Sched.sleep 0.05
         done;
         Printf.printf
           "[teller] t=%.2f captured 25 orders locally (%d still queued at branch)\n"
           (Sched.clock ())
           (Qm.depth (Site.qm branch) "outbox");
         (* wait for everything to drain through HQ *)
         let rec wait () =
           let processed =
             match Kvdb.committed_value (Site.kv hq) "processed" with
             | Some n -> int_of_string n
             | None -> 0
           in
           if processed < 25 then begin
             Sched.sleep 0.5;
             wait ()
           end
         in
         wait ();
         Printf.printf
           "[audit] t=%.2f all 25 orders processed at HQ; surge threads used: %d\n"
           (Sched.clock ())
           (Autoscale.surge_spawned scaler);
         Printf.printf "[audit] branch outbox now %d, hq queue now %d\n"
           (Qm.depth (Site.qm branch) "outbox")
           (Qm.depth (Site.qm hq) "orders")));

  Sched.run sched;
  match Sched.failures sched with
  | [] -> print_endline "batch_orders: OK"
  | (name, e) :: _ ->
    Printf.printf "batch_orders: FIBER FAILURE %s: %s\n" name
      (Printexc.to_string e);
    exit 1
