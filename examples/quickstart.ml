(* Quickstart: the paper's System Model (fig. 4/5) end to end.

   One back-end site hosts a request queue, a reply queue and a database;
   a front-end client submits requests through the clerk. Midway we crash
   the back-end to show that a committed request is processed exactly once
   anyway.

   Run with: dune exec examples/quickstart.exe *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope

let () =
  let sched = Sched.create () in
  let net = Net.create sched (Rng.create 1) in

  (* The back-end: transaction manager + queue manager + database, with a
     request queue. Crash-recovery is wired up by Site.create. *)
  let backend =
    Site.create
      ~queues:[ ("orders", Qm.default_attrs) ]
      ~stale_timeout:2.0
      (Net.make_node net "backend")
  in

  (* The server: dequeue - update the database - enqueue reply, all in one
     transaction (fig. 5). *)
  let _server =
    Server.start backend ~req_queue:"orders" (fun site txn env ->
        let kv = Site.kv site in
        let id = Tm.txn_id txn in
        let total = Kvdb.add kv id "orders_taken" 1 in
        Printf.printf "  [server] processing %s (%s) -> order #%d\n"
          env.Envelope.rid env.Envelope.body total;
        Server.Reply (Printf.sprintf "order #%d confirmed" total))
  in

  (* Crash the whole back-end at t=1.0s; it restarts 2s later and recovers
     from its log. *)
  Sched.at sched 1.0 (fun () ->
      print_endline "  [chaos] backend crashes!";
      Site.crash_restart backend ~after:2.0);
  Sched.at sched 3.0 (fun () -> print_endline "  [chaos] backend is back up");

  (* The client: a plain sequential program using the five-operation client
     model (Connect / Send / Receive / Rereceive / Disconnect). *)
  let client_node = Net.make_node net "client" in
  ignore
    (Sched.spawn sched ~group:"client" ~name:"alice" (fun () ->
         let clerk, info =
           Clerk.connect ~client_node ~system:"backend" ~client_id:"alice"
             ~req_queue:"orders" ()
         in
         Printf.printf "[client] connected (fresh session: %b)\n"
           (info.Clerk.s_rid = None);
         for i = 1 to 5 do
           let rid = Printf.sprintf "order-%d" i in
           Printf.printf "[client] t=%.2f send %s\n" (Sched.clock ()) rid;
           ignore (Clerk.send clerk ~rid (Printf.sprintf "widget x%d" i));
           let rec get () =
             match Clerk.receive clerk ~timeout:3.0 () with
             | Some reply -> reply
             | None ->
               print_endline "[client] ... no reply yet, retrying receive";
               get ()
           in
           let reply = get () in
           Printf.printf "[client] t=%.2f got reply for %s: %S\n"
             (Sched.clock ()) reply.Envelope.rid reply.Envelope.body;
           Sched.sleep 0.5
         done;
         Clerk.disconnect clerk;
         print_endline "[client] disconnected";
         match Kvdb.committed_value (Site.kv backend) "orders_taken" with
         | Some n -> Printf.printf "[audit] orders taken exactly once each: %s/5\n" n
         | None -> print_endline "[audit] no orders recorded?!"));

  Sched.run sched;
  match Sched.failures sched with
  | [] -> print_endline "quickstart: OK"
  | (name, e) :: _ ->
    Printf.printf "quickstart: FIBER FAILURE %s: %s\n" name (Printexc.to_string e);
    exit 1
