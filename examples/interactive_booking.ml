(* Interactive requests (paper §8): a seat-booking conversation implemented
   both ways.

   First as a pseudo-conversational request (§8.2): each prompt/answer pair
   is a reply/request leg, the conversation state rides in the scratch pad,
   and a back-end crash between legs loses nothing.

   Then as a single-transaction conversation (§8.3): the server asks the
   client's display directly from inside one transaction; we inject an
   abort after the answers and show the re-execution replaying the logged
   inputs without bothering the user again.

   Run with: dune exec examples/interactive_booking.exe *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Clerk = Rrq_core.Clerk
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope
module Interactive = Rrq_core.Interactive

let () =
  let sched = Sched.create () in
  let net = Net.create sched (Rng.create 3) in
  let backend =
    Site.create
      ~queues:
        [ ("book-pseudo", Qm.default_attrs); ("book-conv", Qm.default_attrs) ]
      ~stale_timeout:2.0
      (Net.make_node net "backend")
  in
  let client_node = Net.make_node net "client" in

  (* --- pseudo-conversational server (8.2) --- *)
  let _ =
    Interactive.pseudo_server backend ~req_queue:"book-pseudo"
      (fun site txn env ->
        match env.Envelope.step with
        | 0 ->
          Printf.printf "  [server] leg 1 (txn commits): ask for a row\n";
          Interactive.Intermediate { output = "which row?"; scratch = "flight=BA42" }
        | 1 ->
          Printf.printf "  [server] leg 2 (txn commits): ask for a seat\n";
          Interactive.Intermediate
            {
              output = "which seat?";
              scratch = env.Envelope.scratch ^ ";row=" ^ env.Envelope.body;
            }
        | _ ->
          let booking = env.Envelope.scratch ^ ";seat=" ^ env.Envelope.body in
          Kvdb.put (Site.kv site) (Tm.txn_id txn) "booking" booking;
          Printf.printf "  [server] leg 3: commit booking %s\n" booking;
          Interactive.Final ("BOOKED " ^ booking))
  in

  (* --- single-transaction conversational server (8.3) --- *)
  Interactive.install_display client_node ~user:(fun ~rid:_ ~seq ~prompt ->
      Printf.printf "  [user] prompt %d: %S -> answering\n" seq prompt;
      match seq with 1 -> "14" | _ -> "A");
  let attempts = ref 0 in
  let _ =
    Server.start backend ~req_queue:"book-conv" (fun site txn env ->
        let console = Interactive.console site env ~display:"client" in
        let row = Interactive.ask console "which row?" in
        let seat = Interactive.ask console "which seat?" in
        incr attempts;
        if !attempts = 1 then begin
          print_endline "  [chaos] transaction aborts after the answers!";
          failwith "injected abort"
        end;
        let booking = Printf.sprintf "flight=BA42;row=%s;seat=%s" row seat in
        Kvdb.put (Site.kv site) (Tm.txn_id txn) "booking2" booking;
        Server.Reply ("BOOKED " ^ booking))
  in

  ignore
    (Sched.spawn sched ~group:"client" ~name:"alice" (fun () ->
         print_endline "=== pseudo-conversational booking (8.2) ===";
         let clerk, _ =
           Clerk.connect ~client_node ~system:"backend" ~client_id:"alice"
             ~req_queue:"book-pseudo" ()
         in
         (* Crash the backend between legs 1 and 2. *)
         Sched.at sched (Sched.clock () +. 0.1) (fun () ->
             print_endline "  [chaos] backend crashes between legs!";
             Site.crash_restart backend ~after:1.5);
         let respond ~step ~output =
           Printf.printf "  [user] leg %d asks %S\n" step output;
           match output with "which row?" -> "12" | _ -> "C"
         in
         (match
            Interactive.pseudo_client clerk ~rid:"bk1" ~body:"book a seat"
              ~respond ()
          with
         | Some reply -> Printf.printf "[client] final: %S\n" reply.Envelope.body
         | None -> print_endline "[client] conversation failed");

         print_endline "=== single-transaction booking (8.3) ===";
         let clerk2, _ =
           Clerk.connect ~client_node ~system:"backend" ~client_id:"alice2"
             ~req_queue:"book-conv" ()
         in
         (match Clerk.transceive clerk2 ~rid:"bk2" ~timeout:30.0 "book a seat" with
         | Some reply -> Printf.printf "[client] final: %S\n" reply.Envelope.body
         | None -> print_endline "[client] conversation failed");
         Printf.printf
           "[audit] user prompted %d times (2 questions, despite 2 executions)\n"
           (Interactive.display_asks client_node)));

  Sched.run sched;
  match Sched.failures sched with
  | [] -> print_endline "interactive_booking: OK"
  | (name, e) :: _ ->
    Printf.printf "interactive_booking: FIBER FAILURE %s: %s\n" name
      (Printexc.to_string e);
    exit 1
