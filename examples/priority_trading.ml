(* Request scheduling by content (paper §11): "Requests may be scheduled
   for the server by priority, request contents (highest dollar amount
   first), submission time, etc."

   A trading desk receives orders with dollar amounts. The institutional
   desk takes only big orders (a content filter) and always the largest
   first (a ranked dequeue); the retail desk drains the rest in FIFO
   order; a compliance officer reads elements non-destructively while they
   wait.

   Run with: dune exec examples/priority_trading.exe *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope

let amount_of env_body = int_of_string env_body

let () =
  let sched = Sched.create () in
  let net = Net.create sched (Rng.create 6) in
  let desk =
    Site.create ~queues:[ ("orders", Qm.default_attrs) ]
      (Net.make_node net "desk")
  in

  let big = Filter.Prop_ge ("amount", 1000) in
  let rank el =
    match Element.prop el "amount" with
    | Some a -> float_of_string a
    | None -> 0.0
  in

  (* Institutional desk: big orders only, largest first. The ranked dequeue
     happens inside the same transactional loop as everything else. *)
  Site.on_boot desk (fun site ->
      Net.spawn_on (Site.node site) ~name:"institutional" (fun () ->
          let qm = Site.qm site in
          let h, _ =
            Qm.register qm ~queue:"orders" ~registrant:"institutional"
              ~stable:false
          in
          let rec loop () =
            Site.with_txn site (fun txn ->
                match
                  Qm.dequeue qm (Tm.txn_id txn) h ~filter:big ~rank Qm.Block
                with
                | Some el ->
                  let env = Envelope.of_string el.Element.payload in
                  Printf.printf
                    "  [institutional] t=%.2f executes %s ($%d) LARGEST FIRST\n"
                    (Sched.clock ()) env.Envelope.rid (amount_of env.Envelope.body)
                | None -> ());
            loop ()
          in
          loop ()));

  (* Retail desk: everything under $1000, plain FIFO. *)
  let _retail =
    Server.start desk ~req_queue:"orders" ~name:"retail"
      ~filter:(Filter.Not big) (fun _site _txn env ->
        Printf.printf "  [retail]        t=%.2f executes %s ($%d)\n"
          (Sched.clock ()) env.Envelope.rid (amount_of env.Envelope.body);
        Server.No_reply)
  in

  (* Orders arrive in one burst; note the institutional execution order. *)
  ignore
    (Sched.spawn sched ~name:"traders" (fun () ->
         let qm = Site.qm desk in
         let h, _ =
           Qm.register qm ~queue:"orders" ~registrant:"traders" ~stable:false
         in
         let place rid amount =
           let env =
             Envelope.make ~rid ~client_id:"traders" ~reply_node:"desk"
               ~reply_queue:"orders" (string_of_int amount)
           in
           Printf.printf "[traders] t=%.2f places %s ($%d)\n" (Sched.clock ())
             rid amount;
           ignore
             (Qm.auto_commit qm (fun id ->
                  Qm.enqueue qm id h
                    ~props:[ ("amount", string_of_int amount) ]
                    (Envelope.to_string env)))
         in
         (* hold both desks back until the book is loaded, then watch the
            institutional desk pick 9000, 5000, 2000 in value order *)
         place "ord-1" 500;
         place "ord-2" 5000;
         place "ord-3" 120;
         place "ord-4" 9000;
         place "ord-5" 2000;
         place "ord-6" 80;
         Sched.sleep 1.0;
         (* compliance reads a waiting element without consuming it *)
         match Qm.elements qm "orders" with
         | el :: _ ->
           Printf.printf
             "[compliance] t=%.2f peeks at eid %Ld without dequeuing\n"
             (Sched.clock ()) el.Element.eid
         | [] -> ()));

  Sched.run sched;
  match Sched.failures sched with
  | [] -> print_endline "priority_trading: OK"
  | (name, e) :: _ ->
    Printf.printf "priority_trading: FIBER FAILURE %s: %s\n" name
      (Printexc.to_string e);
    exit 1
