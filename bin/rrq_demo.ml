(* rrq_demo: command-line front door to the experiment harness.

   - `rrq_demo experiments [NAME...]` prints the EXPERIMENTS.md tables
     (all of them, or a subset by name: e1 e2 e3 b2 b3 b4 b6 b7 b8);
   - `rrq_demo soak` runs seeded randomized crash/partition schedules and
     exits non-zero if exactly-once was ever violated. *)

open Cmdliner
module H = Rrq_harness
module Table = Rrq_util.Table

let run_experiment name =
  match String.lowercase_ascii name with
  | "e1" -> Table.print (H.E_exactly_once.table (H.E_exactly_once.run ()))
  | "e2" -> Table.print (H.E_chain.crash_table (H.E_chain.run_crash_matrix ()))
  | "e3" -> Table.print (H.E_interactive.table (H.E_interactive.run ()))
  | "b2" -> Table.print (H.E_contention.table (H.E_contention.run ()))
  | "b3" | "b5" -> Table.print (H.E_queueing.drain_table (H.E_queueing.run_drain ()))
  | "b4" -> Table.print (H.E_queueing.burst_table (H.E_queueing.run_burst ()))
  | "b6" -> Table.print (H.E_chain.contention_table (H.E_chain.run_contention ()))
  | "b7" -> Table.print (H.E_recovery.table (H.E_recovery.run ()))
  | "b8" ->
    Table.print (H.E_chain.serializability_table (H.E_chain.run_serializability ()))
  | "b9" -> Table.print (H.E_replication.table (H.E_replication.run ()))
  | "b10" -> Table.print (H.E_stream.table (H.E_stream.run ()))
  | "b11" ->
    Table.print (H.E_queueing.priority_table (H.E_queueing.run_priority ()))
  | "a1" -> Table.print (H.E_queueing.poison_table (H.E_queueing.run_poison ()))
  | other ->
    Printf.eprintf "unknown experiment %S (try e1 e2 e3 b2 b3 b4 b6 b7 b8 b9)\n" other;
    exit 2

let all_experiments =
  [ "e1"; "e2"; "e3"; "b2"; "b3"; "b4"; "b6"; "b7"; "b8"; "b9"; "b10"; "b11"; "a1" ]

let experiments_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME"
           ~doc:"Experiments to run (default: all). One of e1 e2 e3 b2 b3 b4 b6 b7 b8 b9.")
  in
  let run names =
    let names = if names = [] then all_experiments else names in
    List.iter run_experiment names
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Print the EXPERIMENTS.md tables")
    Term.(const run $ names)

let soak_cmd =
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds"; "n" ] ~docv:"N"
           ~doc:"Number of random schedules to try (seeds 1..N).")
  in
  let clients =
    Arg.(value & opt int 6 & info [ "clients" ] ~docv:"C" ~doc:"Concurrent clients.")
  in
  let per_client =
    Arg.(value & opt int 8 & info [ "per-client" ] ~docv:"K"
           ~doc:"Requests per client.")
  in
  let drop =
    Arg.(value & opt float 0.05 & info [ "drop" ] ~docv:"P"
           ~doc:"Message drop probability.")
  in
  let chain =
    Arg.(value & flag & info [ "chain" ]
           ~doc:"Soak the 3-site multi-transaction pipeline instead (money \
                 conservation audit).")
  in
  let run seeds clients per_client drop chain =
    let results =
      List.init seeds (fun i ->
          if chain then H.E_soak.run_chain ~seed:(i + 1) ()
          else H.E_soak.run ~seed:(i + 1) ~clients ~per_client ~drop ())
    in
    Table.print (H.E_soak.table results);
    if List.for_all H.E_soak.ok results then
      print_endline "soak: exactly-once held under every schedule"
    else begin
      print_endline "soak: VIOLATION detected";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "soak" ~doc:"Randomized crash/partition soak of exactly-once")
    Term.(const run $ seeds $ clients $ per_client $ drop $ chain)

let () =
  let doc = "recoverable-request queuing (Bernstein/Hsu/Mann, SIGMOD 1990) demos" in
  exit (Cmd.eval (Cmd.group (Cmd.info "rrq_demo" ~doc) [ experiments_cmd; soak_cmd ]))
