(* rrq_demo: command-line front door to the experiment harness.

   - `rrq_demo experiments [NAME...]` prints the EXPERIMENTS.md tables
     (all of them, or a subset by name: e1 e2 e3 b2 b3 b4 b6 b7 b8);
   - `rrq_demo soak` runs seeded randomized crash/partition schedules and
     exits non-zero if exactly-once was ever violated. *)

open Cmdliner
module H = Rrq_harness
module Table = Rrq_util.Table

let run_experiment name =
  match String.lowercase_ascii name with
  | "e1" -> Table.print (H.E_exactly_once.table (H.E_exactly_once.run ()))
  | "e2" -> Table.print (H.E_chain.crash_table (H.E_chain.run_crash_matrix ()))
  | "e3" -> Table.print (H.E_interactive.table (H.E_interactive.run ()))
  | "b2" -> Table.print (H.E_contention.table (H.E_contention.run ()))
  | "b3" | "b5" -> Table.print (H.E_queueing.drain_table (H.E_queueing.run_drain ()))
  | "b4" -> Table.print (H.E_queueing.burst_table (H.E_queueing.run_burst ()))
  | "b6" -> Table.print (H.E_chain.contention_table (H.E_chain.run_contention ()))
  | "b7" -> Table.print (H.E_recovery.table (H.E_recovery.run ()))
  | "b8" ->
    Table.print (H.E_chain.serializability_table (H.E_chain.run_serializability ()))
  | "b9" -> Table.print (H.E_replication.table (H.E_replication.run ()))
  | "b10" -> Table.print (H.E_stream.table (H.E_stream.run ()))
  | "b11" ->
    Table.print (H.E_queueing.priority_table (H.E_queueing.run_priority ()))
  | "a1" -> Table.print (H.E_queueing.poison_table (H.E_queueing.run_poison ()))
  | other ->
    Printf.eprintf "unknown experiment %S (try e1 e2 e3 b2 b3 b4 b6 b7 b8 b9)\n" other;
    exit 2

let all_experiments =
  [ "e1"; "e2"; "e3"; "b2"; "b3"; "b4"; "b6"; "b7"; "b8"; "b9"; "b10"; "b11"; "a1" ]

let experiments_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME"
           ~doc:"Experiments to run (default: all). One of e1 e2 e3 b2 b3 b4 b6 b7 b8 b9.")
  in
  let run names =
    let names = if names = [] then all_experiments else names in
    List.iter run_experiment names
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Print the EXPERIMENTS.md tables")
    Term.(const run $ names)

let soak_cmd =
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds"; "n" ] ~docv:"N"
           ~doc:"Number of random schedules to try (seeds 1..N).")
  in
  let clients =
    Arg.(value & opt int 6 & info [ "clients" ] ~docv:"C" ~doc:"Concurrent clients.")
  in
  let per_client =
    Arg.(value & opt int 8 & info [ "per-client" ] ~docv:"K"
           ~doc:"Requests per client.")
  in
  let drop =
    Arg.(value & opt float 0.05 & info [ "drop" ] ~docv:"P"
           ~doc:"Message drop probability.")
  in
  let chain =
    Arg.(value & flag & info [ "chain" ]
           ~doc:"Soak the 3-site multi-transaction pipeline instead (money \
                 conservation audit).")
  in
  let run seeds clients per_client drop chain =
    let results =
      List.init seeds (fun i ->
          if chain then H.E_soak.run_chain ~seed:(i + 1) ()
          else H.E_soak.run ~seed:(i + 1) ~clients ~per_client ~drop ())
    in
    Table.print (H.E_soak.table results);
    if List.for_all H.E_soak.ok results then
      print_endline "soak: exactly-once held under every schedule"
    else begin
      print_endline "soak: VIOLATION detected";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "soak" ~doc:"Randomized crash/partition soak of exactly-once")
    Term.(const run $ seeds $ clients $ per_client $ drop $ chain)

let check_cmd =
  let module C = Rrq_check in
  let scenario_arg =
    Arg.(value & opt string "quickstart" & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Scenario to check: quickstart (correct protocol), \
                 quickstart-mm (main-memory queue fast path), ha \
                 (primary-backup pair under crash/partition faults), \
                 ha-lagged (lag-buggy WAL shipper - a designed catchable \
                 anomaly), sharded (three shard repositories with a mid-run \
                 map change, forwarding and cross-shard 2PC), sharded-buggy \
                 (tag-stripping forwarder - a designed catchable anomaly) \
                 or buggy (clerk with untagged blind re-sends).")
  in
  let budget =
    Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N"
           ~doc:"Fault plans to explore (stops at the first failure).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
           ~doc:"Base seed for plan generation.")
  in
  let replay =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"PLAN"
           ~doc:"Run this one fault plan (as printed in a repro line) \
                 instead of exploring.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"With --replay: print the scheduling-decision trace.")
  in
  let sites =
    Arg.(value & flag & info [ "sites" ]
           ~doc:"Enumerate the named crash sites of the quickstart scenario \
                 and crash at every (site, hit) combination.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"With --replay: record the run under the observability layer \
                 and write its JSON-lines trace-event dump to FILE (the \
                 trace-based exactly-once auditor joins the audit).")
  in
  let run scen_name budget seed replay trace sites trace_out =
    let scenario =
      match C.Scenario.by_name scen_name with
      | Some s -> s
      | None ->
        Printf.eprintf "unknown scenario %S (try quickstart, quickstart-mm, ha, ha-lagged, sharded, sharded-buggy or buggy)\n" scen_name;
        exit 2
    in
    if sites then begin
      let failures = ref 0 in
      let report site hit o =
        if C.Scenario.failed o then begin
          incr failures;
          Printf.printf "  %-28s hit %d  FAILED: %s\n" site hit
            (C.Audit.findings_to_string o.C.Scenario.findings)
        end
      in
      let visited =
        match scen_name with
        | "sharded" | "sharded-buggy" ->
          (* Each crash-site name embeds the node that reaches it (the WAL
             and TM bases are per-shard); kill that shard, else shard0. *)
          let contains hay needle =
            let nl = String.length needle and hl = String.length hay in
            let rec go i =
              i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
            in
            go 0
          in
          let victim_of site =
            match
              List.find_opt (contains site) [ "shard0"; "shard1"; "shard2" ]
            with
            | Some v -> v
            | None -> "shard0"
          in
          let visited = C.Scenario.sharded_crash_sites () in
          List.iter
            (fun (site, hits) ->
              for hit = 1 to hits do
                report site hit
                  (C.Scenario.sharded_crash_at ~site ~hit
                     ~victim:(victim_of site) ~recover_after:1.0)
              done)
            visited;
          visited
        | _ ->
          C.Sweep.crash_sites
            ~probe:(fun () ->
              let clean = C.Plan.make ~seed:0 ~policy:`Fifo ~faults:[] in
              ignore (C.Scenario.run scenario clean))
            ~at:(fun ~site ~hit ->
              let crash_at =
                if scen_name = "quickstart-mm" then
                  C.Scenario.quickstart_mm_crash_at
                else C.Scenario.quickstart_crash_at
              in
              report site hit (crash_at ~site ~hit ~recover_after:1.0))
            ()
      in
      let combos = List.fold_left (fun a (_, n) -> a + n) 0 visited in
      Printf.printf "crash-site sweep: %d sites, %d (site, hit) combinations\n"
        (List.length visited) combos;
      List.iter (fun (s, n) -> Printf.printf "  %-28s x%d\n" s n) visited;
      if !failures = 0 then print_endline "all crash points recovered cleanly"
      else begin
        Printf.printf "%d crash points FAILED their audit\n" !failures;
        exit 1
      end
    end
    else
      match replay with
      | Some line ->
        let plan = C.Plan.of_string line in
        let o =
          match trace_out with
          | None -> C.Scenario.run scenario plan
          | Some file ->
            let r = C.Scenario.run_recorded scenario plan in
            let oc = open_out file in
            output_string oc r.C.Scenario.rec_trace;
            close_out oc;
            Printf.printf "trace: %d events written to %s\n"
              (String.fold_left
                 (fun n c -> if c = '\n' then n + 1 else n)
                 0 r.C.Scenario.rec_trace)
              file;
            r.C.Scenario.rec_outcome
        in
        Printf.printf "%s: %s (%d/%d replies, t=%.1f)\n" scenario.C.Scenario.name
          (C.Audit.findings_to_string o.C.Scenario.findings)
          o.C.Scenario.replies o.C.Scenario.requests o.C.Scenario.virtual_time;
        if trace then begin
          Printf.printf "trace (%d decisions%s):\n"
            (Array.length o.C.Scenario.trace)
            (if o.C.Scenario.trace_truncated then ", TRUNCATED" else "");
          print_endline (Rrq_sim.Sched.trace_to_string o.C.Scenario.trace)
        end;
        if C.Scenario.failed o then exit 1
      | None ->
        let report = C.Explore.run ~budget ~seed scenario in
        print_endline (C.Explore.report_to_string report);
        if report.C.Explore.failure <> None then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Deterministic simulation testing: explore fault \
                            schedules, enumerate crash points, replay repros")
    Term.(const run $ scenario_arg $ budget $ seed $ replay $ trace $ sites
          $ trace_out)

let stats_cmd =
  let module C = Rrq_check in
  let scenario_arg =
    Arg.(value & opt string "quickstart" & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Scenario to run: quickstart or buggy.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Seed for the (fault-free) plan.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the metrics registry as JSON instead of text.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Also write the JSON-lines trace-event dump to FILE.")
  in
  let run scen_name seed json trace_out =
    let scenario =
      match C.Scenario.by_name scen_name with
      | Some s -> s
      | None ->
        Printf.eprintf "unknown scenario %S (try quickstart, quickstart-mm, ha, ha-lagged or buggy)\n" scen_name;
        exit 2
    in
    let plan = C.Plan.make ~seed ~policy:`Fifo ~faults:[] in
    let r = C.Scenario.run_recorded scenario plan in
    (match trace_out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc r.C.Scenario.rec_trace;
      close_out oc);
    if json then print_endline (Rrq_obs.Metrics.to_json r.C.Scenario.rec_metrics)
    else begin
      print_string (Rrq_obs.Metrics.to_text r.C.Scenario.rec_metrics);
      let o = r.C.Scenario.rec_outcome in
      Printf.printf "audit: %s (%d/%d replies, t=%.1f)\n"
        (C.Audit.findings_to_string o.C.Scenario.findings)
        o.C.Scenario.replies o.C.Scenario.requests o.C.Scenario.virtual_time
    end;
    if C.Scenario.failed r.C.Scenario.rec_outcome then exit 1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a scenario fault-free under the observability layer and \
             dump its metrics registry (text or JSON) and trace events")
    Term.(const run $ scenario_arg $ seed $ json $ trace_out)

let () =
  let doc = "recoverable-request queuing (Bernstein/Hsu/Mann, SIGMOD 1990) demos" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "rrq_demo" ~doc)
          [ experiments_cmd; soak_cmd; check_cmd; stats_cmd ]))
