(* rrq_lint: the repo's own static analyzer. See doc/INTERNALS.md for the
   rule set and the suppression-baseline policy, and doc/CI.md for how the
   lint stage gates the build (it also runs under `dune runtest` via the
   root dune rule). *)

module Driver = Rrq_lint.Driver
module Rules = Rrq_lint.Rules

let usage () =
  print_string
    "usage: rrq_lint [--json] [--baseline FILE] [--dot DIR] [--list-rules] \
     [PATH...]\n\n\
     Static analysis for transaction, durability and determinism\n\
     discipline. PATHs (default: lib) are .ml/.mli files or directories\n\
     walked recursively. Exit status is 0 iff no finding survives the\n\
     baseline and no baseline entry is stale.\n\n\
     --json           machine-readable report on stdout\n\
     --baseline FILE  suppression baseline (entries: `RULE path item  # why')\n\
     --dot DIR        write callgraph.dot and lockorder.dot into DIR\n\
     --list-rules     print the rule set and exit\n"

let list_rules () =
  List.iter
    (fun (id, slug, descr) -> Printf.printf "%s %-20s %s\n" id slug descr)
    Rules.all

let () =
  let json = ref false in
  let baseline = ref None in
  let dot_dir = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse rest
    | "--baseline" :: [] ->
      prerr_endline "rrq_lint: --baseline needs a file";
      exit 2
    | "--dot" :: dir :: rest ->
      dot_dir := Some dir;
      parse rest
    | "--dot" :: [] ->
      prerr_endline "rrq_lint: --dot needs a directory";
      exit 2
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | "--list-rules" :: _ ->
      list_rules ();
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "rrq_lint: unknown option %s\n" arg;
      exit 2
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = if !paths = [] then [ "lib" ] else List.rev !paths in
  let baseline =
    match !baseline with
    | None -> []
    | Some file -> Driver.load_baseline file
  in
  let analysis = Driver.analyze ~baseline paths in
  let result = analysis.Driver.a_result in
  (match !dot_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name contents =
      let oc = open_out (Filename.concat dir name) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents)
    in
    write "callgraph.dot" (Rrq_lint.Callgraph.to_dot analysis.Driver.a_graph);
    write "lockorder.dot" (Driver.render_lock_dot analysis.Driver.a_lock_edges);
    Printf.eprintf "rrq_lint: wrote %s/callgraph.dot and %s/lockorder.dot\n"
      dir dir);
  print_string
    (if !json then Driver.render_json result else Driver.render_text result);
  exit (if Driver.ok result then 0 else 1)
