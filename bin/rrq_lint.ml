(* rrq_lint: the repo's own static analyzer. See doc/INTERNALS.md for the
   rule set and the suppression-baseline policy, and doc/CI.md for how the
   lint stage gates the build (it also runs under `dune runtest` via the
   root dune rule). *)

module Driver = Rrq_lint.Driver
module Rules = Rrq_lint.Rules

let usage () =
  print_string
    "usage: rrq_lint [--json] [--baseline FILE] [--list-rules] [PATH...]\n\n\
     Static analysis for transaction, durability and determinism\n\
     discipline. PATHs (default: lib) are .ml/.mli files or directories\n\
     walked recursively. Exit status is 0 iff no finding survives the\n\
     baseline and no baseline entry is stale.\n\n\
     --json           machine-readable report on stdout\n\
     --baseline FILE  suppression baseline (entries: `RULE path item  # why')\n\
     --list-rules     print the rule set and exit\n"

let list_rules () =
  List.iter
    (fun (id, slug, descr) -> Printf.printf "%s %-20s %s\n" id slug descr)
    Rules.all

let () =
  let json = ref false in
  let baseline = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse rest
    | "--baseline" :: [] ->
      prerr_endline "rrq_lint: --baseline needs a file";
      exit 2
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | "--list-rules" :: _ ->
      list_rules ();
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "rrq_lint: unknown option %s\n" arg;
      exit 2
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = if !paths = [] then [ "lib" ] else List.rev !paths in
  let baseline =
    match !baseline with
    | None -> []
    | Some file -> Driver.load_baseline file
  in
  let result = Driver.run ~baseline paths in
  print_string
    (if !json then Driver.render_json result else Driver.render_text result);
  exit (if Driver.ok result then 0 else 1)
