(* rrq_witness: the runtime half of rrq_lint's R7 lock-order rule.

   R7 builds a static lock-order graph — which lock-manager instance a
   transaction acquires while already holding another — and reports
   cycles. A static graph is only trustworthy if it over-approximates
   reality, so this binary closes the loop: it runs lock-heavy workloads
   under observability, collects the acquisition-order edges the lock
   manager actually granted (Rrq_obs.Lock_order, fed by the hooks in
   Rrq_txn.Lock), and asserts that every observed edge is present in the
   static graph. An observed edge the analyzer cannot derive means an
   analyzer approximation went the wrong (unsound) way.

   The workloads below are written as straight-line dequeue/put code on
   purpose: the analyzer reads this very file, so the instance orders the
   runtime will observe are statically visible here even where lib/'s own
   code reaches them only through stored handler closures. *)

module Driver = Rrq_lint.Driver
module Rules = Rrq_lint.Rules
module Runner = Rrq_check.Runner
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Site = Rrq_core.Site
module Tm = Rrq_txn.Tm

let strict = { Qm.default_attrs with Qm.strict_fifo = true }

(* W1: several keys inside one transaction — the within-instance
   re-acquisition self-edge kvdb -> kvdb. *)
let multi_key_txn () =
  Runner.run_scenario (fun s ->
      let net = Net.create s (Rng.create 7) in
      let site = Site.create (Net.make_node net "w1") in
      fun () ->
        Site.with_txn site (fun txn ->
            let kv = Site.kv site in
            let id = Tm.txn_id txn in
            Kvdb.put kv id "acct:a" "1";
            Kvdb.put kv id "acct:b" "2"))

(* W2: strict-FIFO dequeue then a KV write in the same transaction — the
   canonical server shape, edge qm -> kvdb. *)
let dequeue_then_put () =
  Runner.run_scenario (fun s ->
      let net = Net.create s (Rng.create 8) in
      let site = Site.create ~queues:[ ("req", strict) ] (Net.make_node net "w2") in
      fun () ->
        let qm = Site.qm site in
        let h, _ = Qm.register qm ~queue:"req" ~registrant:"witness" ~stable:false in
        Site.with_txn site (fun txn ->
            ignore (Qm.enqueue qm (Tm.txn_id txn) h "job"));
        Site.with_txn site (fun txn ->
            let id = Tm.txn_id txn in
            match Qm.dequeue qm id h Qm.No_wait with
            | None -> failwith "witness: enqueued element not dequeuable"
            | Some _ -> Kvdb.put (Site.kv site) id "done" "1"))

(* W3: two strict queues inside one transaction — the within-instance
   self-edge qm -> qm. *)
let two_queues_one_txn () =
  Runner.run_scenario (fun s ->
      let net = Net.create s (Rng.create 9) in
      let site =
        Site.create ~queues:[ ("qa", strict); ("qb", strict) ]
          (Net.make_node net "w3")
      in
      fun () ->
        let qm = Site.qm site in
        let ha, _ = Qm.register qm ~queue:"qa" ~registrant:"wa" ~stable:false in
        let hb, _ = Qm.register qm ~queue:"qb" ~registrant:"wb" ~stable:false in
        Site.with_txn site (fun txn ->
            let id = Tm.txn_id txn in
            ignore (Qm.enqueue qm id ha "a");
            ignore (Qm.enqueue qm id hb "b"));
        Site.with_txn site (fun txn ->
            let id = Tm.txn_id txn in
            ignore (Qm.dequeue qm id ha Qm.No_wait);
            ignore (Qm.dequeue qm id hb Qm.No_wait)))

let () =
  let analysis = Driver.analyze [ "lib"; "bin/rrq_witness.ml" ] in
  let static_edges =
    List.map
      (fun e -> (e.Rules.e_from, e.Rules.e_to))
      analysis.Driver.a_lock_edges
  in
  Rrq_obs.reset ();
  multi_key_txn ();
  dequeue_then_put ();
  two_queues_one_txn ();
  let observed = Rrq_obs.Lock_order.edges () in
  Rrq_obs.disable ();
  Printf.printf "rrq_witness: static lock-order graph: %d edges; observed: %d\n"
    (List.length static_edges) (List.length observed);
  let missing =
    List.filter (fun e -> not (List.mem e static_edges)) observed
  in
  List.iter
    (fun (a, b) ->
      Printf.printf "  observed %s -> %s: %s\n" a b
        (if List.mem (a, b) static_edges then "in static graph"
         else "MISSING from static graph"))
    observed;
  if observed = [] then begin
    (* An empty observation means the hooks or the workloads broke — that
       must fail as loudly as a containment violation. *)
    print_endline "rrq_witness: FAIL (no lock-order edges observed at all)";
    exit 1
  end;
  if missing <> [] then begin
    Printf.printf
      "rrq_witness: FAIL (%d observed edge(s) missing from the static \
       graph — an rrq_lint approximation is unsound)\n"
      (List.length missing);
    exit 1
  end;
  print_endline "rrq_witness: OK (observed lock-order edges \xe2\x8a\x86 static graph)"
