(** The [rrq_lint] rule set: one untyped-AST pass over a parsed
    implementation, plus the file-level interface-coverage rule.

    Rules match on the conventional module aliases of this tree ([Disk],
    [Wal], [Lock], [Sched], ...) — they are linters over names, not typed
    proofs. Per-rule rationale, the exact approximations, and the
    suppression policy are documented in doc/INTERNALS.md. *)

val all : (string * string * string) list
(** [(id, slug, description)] for every rule, R1..R6, in order. *)

val check_structure : file:string -> Parsetree.structure -> Finding.t list
(** Run R1–R5 over one parsed implementation. [file] is the path used in
    findings and in R3's layer checks (so fixture files can place
    themselves in an arbitrary layer). Sorted by location. *)

val interface_coverage : files:string list -> Finding.t list
(** R6 over a file listing: every [*.ml] must have a sibling [*.mli] in the
    same listing. Pure — pass the files actually collected. *)
