(** The [rrq_lint] rule set: one untyped-AST pass over a parsed
    implementation (R1–R4), the file-level interface-coverage rule (R6),
    and the flow-aware rules (R5, R7, R8) over the {!Callgraph}.

    Rules match on the conventional module aliases of this tree ([Disk],
    [Wal], [Lock], [Sched], ...) — they are linters over names, not typed
    proofs. Per-rule rationale, the exact approximations, and the
    suppression policy are documented in doc/INTERNALS.md. *)

val all : (string * string * string) list
(** [(id, slug, description)] for every rule, R1..R8, in order. *)

val check_structure : file:string -> Parsetree.structure -> Finding.t list
(** Run the syntactic rules (R1–R4) over one parsed implementation. [file]
    is the path used in findings and in R3's layer checks (so fixture
    files can place themselves in an arbitrary layer). Sorted by location. *)

val interface_coverage : files:string list -> Finding.t list
(** R6 over a file listing: every [*.ml] must have a sibling [*.mli] in the
    same listing. Pure — pass the files actually collected. *)

type lock_edge = {
  e_from : string;  (** Held lock-manager instance. *)
  e_to : string;  (** Instance being acquired. *)
  e_file : string;
  e_line : int;
  e_item : string;  (** Witness site: first acquisition seen per edge. *)
  e_via : string option;
      (** Callee label when the acquisition is interprocedural. *)
}

val lock_order_edges : Callgraph.t -> lock_edge list
(** The static lock-order graph: an edge per (held instance, acquired
    instance) pair observed on some linearized path, self-edges included.
    This is the reference set the runtime witness ([bin/rrq_witness])
    checks observed acquisition orders against. Sorted, deduplicated. *)

val flow_check : Callgraph.t -> Finding.t list
(** Run R5 (blocking under lock, local helpers expanded), R7 (lock-order
    cycle over {!lock_order_edges}, self-edges excluded) and R8
    (durability before reply, interprocedural taint) over a built call
    graph. Sorted by location. *)
