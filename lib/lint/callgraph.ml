(* The call graph over the repo's own sources, built from untyped ASTs.

   Nodes are top-level value bindings (including bindings inside named
   nested modules and functor bodies — [Kvdb.State.relock], [Rm.Make.commit]).
   Edges are applications whose head resolves to another node; resolution
   follows the per-file [module X = Path] aliases and matches the remaining
   path against node coordinates from the right, so the conventional
   aliases ([module Lock = Rrq_txn.Lock]) and library wrapping
   ([Rrq_txn.Lock] vs file [lock.ml]) both land on the same node. Two
   files defining equally named modules yield edges to every candidate —
   a deliberate over-approximation, in the conservative direction for the
   rules built on top.

   Besides the edge list, every node carries its *event list*: the
   source-order sequence of references inside its body, with local helper
   functions factored out as [Def] (not executed where defined) and calls
   to them as [Local] (expanded at call position by the rules). That event
   IR is what makes R5 flow-sensitive and what R7/R8 run their
   interprocedural walks over. Lambdas passed as arguments are inlined at
   the application site (they run, at the latest, under the callee), but
   lambdas stored in data positions — record fields, tuple/array
   elements, constructor payloads — are stored closures: like named
   helpers they become [Def] events (edges for the graph, nothing
   executed where they are built), because a handler table constructed
   here runs in someone else's fibers under someone else's locks.
   Module expressions inside expressions (first-class module payloads,
   [let module]) are definitions, not executions, and contribute no
   events. *)

type call = {
  c_line : int;
  c_mod : string option;
      (* raw last-but-one path component, for primitive matching *)
  c_name : string;
  c_path : string list; (* alias-resolved module path, [] for bare idents *)
  mutable c_ref : bool;
      (* a value reference, not an execution at this site: the name appears
         outside call-head position (passed as an argument, stored in a
         record), or — set during resolution — it is under-applied (fewer
         positional arguments than every target takes: a closure being
         built, [stage_handler stages i] handed to [Server.start]). Still
         an edge for the graph, but the flow rules must not charge its
         effects here — a handler runs in the server's fibers, not under
         the caller's locks. *)
  c_nargs : int; (* positional (unlabelled) arguments at this site *)
  mutable c_tgts : int list; (* resolved node ids (filled by [build]) *)
}

type event =
  | Call of call
  | Local of { l_line : int; l_name : string }
  | Def of { d_name : string; d_body : event list }

type node = {
  n_id : int;
  n_file : string;
  n_modpath : string list; (* module path within the file *)
  n_name : string;
  n_line : int;
  n_arity : int; (* positional (unlabelled) parameters of the binding *)
  n_events : event list;
  mutable n_callees : int list; (* deduped, derived from events *)
}

type t = {
  cg_nodes : node array;
  (* (last module component, binding name) -> candidate node ids *)
  by_key : (string * string, int list) Hashtbl.t;
  (* (file, module path, binding name) -> id, for same-file bare idents *)
  by_scope : (string * string list * string, int) Hashtbl.t;
  (* file -> lock-manager instance name (from [Lock.create ~name:"..."],
     else the file's directory basename) *)
  instances : (string, string) Hashtbl.t;
}

(* ---- identifier helpers ------------------------------------------------ *)

let rec flatten lid =
  match lid with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (_, l) -> flatten l

let module_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let bound_var p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var v -> Some v.Location.txt
  | Parsetree.Ppat_alias (_, v) -> Some v.Location.txt
  | Parsetree.Ppat_constraint (q, _) -> (
    match q.Parsetree.ppat_desc with
    | Parsetree.Ppat_var v -> Some v.Location.txt
    | _ -> None)
  | _ -> None

let rec is_function e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | Parsetree.Pexp_constraint (e, _) -> is_function e
  | Parsetree.Pexp_newtype (_, e) -> is_function e
  | _ -> false

(* Positional parameter count of a binding's body: labelled/optional
   parameters are excluded on both sides of the under-application test,
   since call sites may omit or reorder them. *)
let rec arity_of e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (Asttypes.Nolabel, _, _, body) -> 1 + arity_of body
  | Parsetree.Pexp_fun (_, _, _, body) -> arity_of body
  | Parsetree.Pexp_function _ -> 1
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_newtype (_, e) ->
    arity_of e
  | _ -> 0

(* Match a resolved reference path against a node's module coordinates from
   the right: [Rrq_txn.Lock] matches file [lock.ml] (key [Lock]); [Metrics]
   matches the nested module key [Rrq_obs; Metrics]. *)
let tail_match full key =
  let rec go a b =
    match (a, b) with
    | [], _ | _, [] -> true
    | x :: a', y :: b' -> String.equal x y && go a' b'
  in
  go (List.rev full) (List.rev key)

(* ---- event extraction -------------------------------------------------- *)

type builder = {
  mutable next_id : int;
  mutable acc_nodes : node list; (* reverse order *)
  b_by_key : (string * string, int list) Hashtbl.t;
  b_by_scope : (string * string list * string, int) Hashtbl.t;
  b_instances : (string, string) Hashtbl.t;
}

(* Per-file state while scanning one structure. *)
type fctx = {
  f_file : string;
  f_aliases : (string, string list) Hashtbl.t; (* module alias -> path *)
  b : builder;
}

let resolve_path fc comps =
  match comps with
  | [] -> []
  | head :: rest -> (
    match Hashtbl.find_opt fc.f_aliases head with
    | Some target -> target @ rest
    | None -> comps)

let string_const e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* [Lock.create ~name:"qm"] pins the file's lock-manager instance name; the
   runtime witness hooks report edges under the same name, so the static
   and observed lock-order graphs share a vocabulary. *)
let note_instance fc args =
  List.iter
    (fun (lbl, a) ->
      match (lbl, string_const a) with
      | Asttypes.Labelled "name", Some s ->
        if not (Hashtbl.mem fc.b.b_instances fc.f_file) then
          Hashtbl.replace fc.b.b_instances fc.f_file s
      | _ -> ())
    args

let last_two comps =
  match List.rev comps with
  | f :: m :: _ -> (Some m, f)
  | [ f ] -> (None, f)
  | [] -> (None, "")

(* Callees that *store* their functional arguments (or hand them to other
   fibers / boot) instead of invoking them in the caller's dynamic extent.
   A lambda passed here is a stored closure, not an execution at the call
   site: a server handler runs in the server's fibers under the server's
   transactions, a boot hook runs at (re)boot scope. Matched on the raw
   [Module.fn] spelling, like the lock primitives. A missing entry errs
   in the conservative direction — the lambda is charged to the caller,
   which can only add edges, never hide one. *)
let stores_callbacks m name =
  match (m, name) with
  | Some "Sched", ("fork" | "at") -> true
  | Some "Net", ("spawn_on" | "add_service" | "set_boot") -> true
  | Some "Site", "on_boot" -> true
  | Some "Server", ("start" | "start_set") -> true
  | Some "Qm", ("set_clock" | "set_abort_callback" | "set_alert_callback") ->
    true
  | Some "Tm", "set_resolver" -> true
  | _ -> false

(* Callees that run their functional argument inside a {e fresh
   transaction} ([begin_txn] — join — f — [commit]). The inlined lambda
   body must see the transaction boundary on both sides: a synthetic
   [Tm.begin_txn] event precedes it (a new transaction holds no locks —
   whatever the caller's walk accumulated belongs to other transactions),
   and the combinator's own summary ends in [Tm.commit], clearing what
   the body acquired. *)
let txn_combinator m name =
  match (m, name) with Some "Site", "with_txn" -> true | _ -> false

(* Walk one expression into an ordered event list. [scope] is the set of
   local helper names currently in scope (a reference shared down the walk
   of one item; shadowing by a non-function binding removes the name). *)
let extract_events fc body_expr =
  let rec walk acc scope e =
    let open Parsetree in
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> add_ident acc scope ~ref_:true txt loc []
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      (* Arguments evaluate — and argument lambdas run, at the latest —
         before the callee's effect, so their events precede the call.
         Exceptions, in order: callees that store their lambdas take them
         as data; a local helper's own (expanded) body is the truth about
         what runs, so its lambda arguments are data too; a transaction
         combinator's lambda runs inside a fresh transaction, so a
         synthetic [begin_txn] precedes it. *)
      let m, name = last_two (flatten txt) in
      let local =
        match flatten txt with [ n ] -> Hashtbl.mem scope n | _ -> false
      in
      if local || stores_callbacks m name then
        List.iter (fun (_, a) -> walk_data acc scope a) args
      else begin
        if txn_combinator m name then
          acc :=
            Call
              { c_line = line_of loc; c_mod = Some "Tm"; c_name = "begin_txn";
                c_path = [ "Tm" ]; c_ref = false; c_nargs = 1; c_tgts = [] }
            :: !acc;
        List.iter (fun (_, a) -> walk acc scope a) args
      end;
      add_ident acc scope ~ref_:false txt loc args
    | Pexp_apply (f, args) ->
      List.iter (fun (_, a) -> walk acc scope a) args;
      walk acc scope f
    | Pexp_let (rf, vbs, body) ->
      let defines =
        List.filter_map
          (fun vb ->
            match bound_var vb.pvb_pat with
            | Some n when is_function vb.pvb_expr -> Some n
            | _ -> None)
          vbs
      in
      (* let rec: the helpers are in scope inside their own bodies. *)
      if rf = Asttypes.Recursive then
        List.iter (fun n -> Hashtbl.replace scope n ()) defines;
      List.iter
        (fun vb ->
          match bound_var vb.pvb_pat with
          | Some n when is_function vb.pvb_expr ->
            let sub = ref [] in
            walk sub scope vb.pvb_expr;
            acc := Def { d_name = n; d_body = List.rev !sub } :: !acc
          | Some n ->
            Hashtbl.remove scope n;
            (* a non-function shadows any helper of the same name *)
            walk acc scope vb.pvb_expr
          | None -> walk acc scope vb.pvb_expr)
        vbs;
      List.iter (fun n -> Hashtbl.replace scope n ()) defines;
      walk acc scope body
    | Pexp_fun (_, default, _, body) ->
      Option.iter (walk acc scope) default;
      walk acc scope body
    | Pexp_function cases -> cases_events acc scope cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk acc scope scrut;
      cases_events acc scope cases
    | Pexp_sequence (a, b) ->
      walk acc scope a;
      walk acc scope b
    | Pexp_ifthenelse (c, t, e) ->
      walk acc scope c;
      walk acc scope t;
      Option.iter (walk acc scope) e
    | Pexp_while (c, b) ->
      walk acc scope c;
      walk acc scope b
    | Pexp_for (_, a, b, _, body) ->
      walk acc scope a;
      walk acc scope b;
      walk acc scope body
    | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      Option.iter (walk_data acc scope) arg
    | Pexp_tuple es | Pexp_array es -> List.iter (walk_data acc scope) es
    | Pexp_record (fields, base) ->
      Option.iter (walk acc scope) base;
      List.iter (fun (_, v) -> walk_data acc scope v) fields
    | Pexp_field (e, _) -> walk acc scope e
    | Pexp_setfield (a, _, b) ->
      walk acc scope a;
      walk_data acc scope b
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_assert e
    | Pexp_lazy e
    | Pexp_open (_, e)
    | Pexp_newtype (_, e)
    | Pexp_letexception (_, e)
    | Pexp_send (e, _) ->
      walk acc scope e
    | Pexp_letmodule (_, _, e) ->
      (* The module payload is a definition, not an execution. *)
      walk acc scope e
    | Pexp_letop { let_; ands; body } ->
      walk acc scope let_.pbop_exp;
      List.iter (fun a -> walk acc scope a.pbop_exp) ands;
      walk acc scope body
    | Pexp_pack _ (* first-class module payload: definition, no events *)
      ->
      ()
    | _ -> () (* constants, extensions, objects: nothing executable to track *)
  (* A value flowing into a data position: a lambda here is a stored
     closure, not an execution — factor it out like a local helper, under
     a name no call site can reference. *)
  and walk_data acc scope e =
    if is_function e then begin
      let sub = ref [] in
      walk sub scope e;
      acc := Def { d_name = "(closure)"; d_body = List.rev !sub } :: !acc
    end
    else walk acc scope e
  and cases_events acc scope cases =
    List.iter
      (fun c ->
        Option.iter (walk acc scope) c.Parsetree.pc_guard;
        walk acc scope c.Parsetree.pc_rhs)
      cases
  and add_ident acc scope ~ref_ lid loc args =
    let comps = flatten lid in
    match comps with
    | [ name ] when Hashtbl.mem scope name ->
      acc := Local { l_line = line_of loc; l_name = name } :: !acc
    | _ ->
      let m, name = last_two comps in
      if m = Some "Lock" && name = "create" then note_instance fc args;
      let path =
        match List.rev comps with
        | [] | [ _ ] -> []
        | _ :: mods_rev -> resolve_path fc (List.rev mods_rev)
      in
      let nargs =
        List.length
          (List.filter (fun (lbl, _) -> lbl = Asttypes.Nolabel) args)
      in
      acc :=
        Call
          { c_line = line_of loc; c_mod = m; c_name = name; c_path = path;
            c_ref = ref_; c_nargs = nargs; c_tgts = [] }
        :: !acc
  in
  let acc = ref [] in
  walk acc (Hashtbl.create 8) body_expr;
  List.rev !acc

(* ---- structure scanning ------------------------------------------------ *)

let add_node fc modpath name line arity events =
  let b = fc.b in
  let id = b.next_id in
  b.next_id <- id + 1;
  let n =
    {
      n_id = id;
      n_file = fc.f_file;
      n_modpath = modpath;
      n_name = name;
      n_line = line;
      n_arity = arity;
      n_events = events;
      n_callees = [];
    }
  in
  b.acc_nodes <- n :: b.acc_nodes;
  let key_mod =
    match List.rev (module_of_file fc.f_file :: modpath) with
    | last :: _ -> last
    | [] -> assert false
  in
  let key = (key_mod, name) in
  let prev = Option.value ~default:[] (Hashtbl.find_opt b.b_by_key key) in
  Hashtbl.replace b.b_by_key key (id :: prev);
  Hashtbl.replace b.b_by_scope (fc.f_file, modpath, name) id

let rec scan_structure fc modpath str =
  List.iter
    (fun si ->
      match si.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name =
              match bound_var vb.Parsetree.pvb_pat with
              | Some n -> n
              | None -> "_"
            in
            let events = extract_events fc vb.Parsetree.pvb_expr in
            add_node fc modpath name
              (line_of vb.Parsetree.pvb_loc)
              (arity_of vb.Parsetree.pvb_expr)
              events)
          vbs
      | Parsetree.Pstr_module mb -> scan_module fc modpath mb
      | Parsetree.Pstr_recmodule mbs -> List.iter (scan_module fc modpath) mbs
      | _ -> ())
    str

and scan_module fc modpath mb =
  let name = Option.value ~default:"_" mb.Parsetree.pmb_name.Location.txt in
  scan_module_expr fc modpath name mb.Parsetree.pmb_expr

and scan_module_expr fc modpath name me =
  match me.Parsetree.pmod_desc with
  | Parsetree.Pmod_structure str -> scan_structure fc (modpath @ [ name ]) str
  | Parsetree.Pmod_ident { txt; _ } ->
    (* module Lock = Rrq_txn.Lock — the alias table behind resolution *)
    Hashtbl.replace fc.f_aliases name (resolve_path fc (flatten txt))
  | Parsetree.Pmod_functor (_, body) ->
    (* functor body bindings live under File.Name, one level regardless of
       the parameter count *)
    scan_module_expr fc modpath name body
  | Parsetree.Pmod_apply (f, _) | Parsetree.Pmod_apply_unit f -> (
    (* module Base = Rm.Make (State): calls through Base resolve against
       the functor's own bindings *)
    match f.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident { txt; _ } ->
      Hashtbl.replace fc.f_aliases name (resolve_path fc (flatten txt))
    | _ -> ())
  | Parsetree.Pmod_constraint (me, _) -> scan_module_expr fc modpath name me
  | Parsetree.Pmod_unpack _ | Parsetree.Pmod_extension _ -> ()

(* ---- resolution -------------------------------------------------------- *)

let node_key n = module_of_file n.n_file :: n.n_modpath

let resolve_call t n c =
  match c.c_path with
  | [] -> (
    (* bare ident: same-file binding in the innermost enclosing scope *)
    let rec try_scope modpath =
      match Hashtbl.find_opt t.by_scope (n.n_file, modpath, c.c_name) with
      | Some id -> [ id ]
      | None -> (
        match List.rev modpath with
        | [] -> []
        | _ :: outer_rev -> try_scope (List.rev outer_rev))
    in
    try_scope n.n_modpath)
  | path -> (
    match List.rev path with
    | [] -> []
    | last :: _ -> (
      match Hashtbl.find_opt t.by_key (last, c.c_name) with
      | None -> []
      | Some ids ->
        List.filter
          (fun id -> tail_match path (node_key t.cg_nodes.(id)))
          ids))

let rec resolve_events t n events acc_callees =
  List.iter
    (function
      | Call c ->
        c.c_tgts <- resolve_call t n c;
        (* Under-application: fewer positional arguments than every target
           takes means a closure is being built here, not run — downgrade
           to a reference. (If any candidate could be fully applied, keep
           it an execution: the conservative direction.) *)
        if
          (not c.c_ref) && c.c_tgts <> []
          && List.for_all
               (fun id -> t.cg_nodes.(id).n_arity > c.c_nargs)
               c.c_tgts
        then c.c_ref <- true;
        List.iter
          (fun id ->
            if not (List.mem id !acc_callees) then acc_callees := id :: !acc_callees)
          c.c_tgts
      | Local _ -> ()
      | Def d -> resolve_events t n d.d_body acc_callees)
    events

let build sources =
  let b =
    {
      next_id = 0;
      acc_nodes = [];
      b_by_key = Hashtbl.create 256;
      b_by_scope = Hashtbl.create 256;
      b_instances = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (file, str) ->
      let fc = { f_file = file; f_aliases = Hashtbl.create 16; b } in
      scan_structure fc [] str;
      if not (Hashtbl.mem b.b_instances file) then
        Hashtbl.replace b.b_instances file
          (Filename.basename (Filename.dirname file)))
    sources;
  let t =
    {
      cg_nodes = Array.of_list (List.rev b.acc_nodes);
      by_key = b.b_by_key;
      by_scope = b.b_by_scope;
      instances = b.b_instances;
    }
  in
  Array.iter
    (fun n ->
      let callees = ref [] in
      resolve_events t n n.n_events callees;
      n.n_callees <- List.rev !callees)
    t.cg_nodes;
  t

(* ---- accessors --------------------------------------------------------- *)

let nodes t = Array.to_list t.cg_nodes
let node t id = t.cg_nodes.(id)
let node_count t = Array.length t.cg_nodes

let label t id =
  let n = t.cg_nodes.(id) in
  String.concat "." (node_key n @ [ n.n_name ])

let instance t file =
  match Hashtbl.find_opt t.instances file with
  | Some name -> name
  | None -> Filename.basename (Filename.dirname file)

let callees t id = t.cg_nodes.(id).n_callees

let find t qualified =
  let matches n = String.equal (label t n.n_id) qualified in
  Array.fold_left
    (fun acc n -> match acc with Some _ -> acc | None -> if matches n then Some n.n_id else None)
    None t.cg_nodes

(* ---- graphviz export --------------------------------------------------- *)

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_dot t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  Array.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  n%d [label=\"%s\"];\n" n.n_id
           (dot_escape (label t n.n_id))))
    t.cg_nodes;
  Array.iter
    (fun n ->
      List.iter
        (fun callee ->
          Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" n.n_id callee))
        n.n_callees)
    t.cg_nodes;
  Buffer.add_string b "}\n";
  Buffer.contents b
