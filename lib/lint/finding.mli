(** One diagnostic produced by an [rrq_lint] rule. *)

type severity = Error | Warning

type t = {
  rule : string;  (** Stable rule id, e.g. ["R1"]. *)
  rule_name : string;  (** Short slug, e.g. ["exn-swallow"]. *)
  severity : severity;
  file : string;  (** Path as given on the command line. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, as the compiler reports. *)
  item : string;
      (** Name of the enclosing top-level binding ([""] if none) — the
          stable coordinate the suppression baseline matches on, so
          baselines survive reformatting. *)
  message : string;
  hint : string;  (** How to fix (or legitimately suppress) the finding. *)
  detail : string list;
      (** Witness lines for flow findings (R7's cycle path, R8's taint
          trail), rendered indented under the message and as a JSON
          array; [[]] for the syntactic rules. *)
}

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Order by file, line, column, rule. *)

val to_text : t -> string
(** Two-line human form: location + message, then the fix hint. *)

val to_json : t -> string
(** One JSON object (machine consumption; used by [--json]). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (used by [Driver] for
    the report envelope). *)
