(** Call graph over the repo's own sources, from untyped ASTs.

    Nodes are top-level value bindings, including bindings inside named
    nested modules and functor bodies. Edges are applications whose head
    resolves to another node: per-file [module X = Path] aliases are
    followed (including [module B = F (Arg)], which aliases [B] to the
    functor's own bindings), and the remaining path is matched against
    node coordinates from the right, so library wrapping
    ([Rrq_txn.Lock] vs file [lock.ml]) resolves too. Identically named
    modules in different files produce edges to every candidate — a
    deliberate, conservative over-approximation.

    Each node also carries its ordered {e event list}: the source-order
    references inside its body with local helper functions factored out
    ([Def], not executed at the definition site) and calls to them marked
    ([Local], expanded at call position by the flow rules). Lambdas passed
    as arguments are inlined at the application site; lambdas stored in
    data positions (record fields, tuple/array elements, constructor
    payloads) become unreferenceable [Def]s — edges, but no execution at
    the construction site. Module expressions inside expressions
    (first-class module payloads, [let module]) are definitions and
    contribute no events. *)

type call = {
  c_line : int;
  c_mod : string option;
      (** Raw last-but-one path component ([Cond] in [Cond.wait]), before
          alias resolution — what the primitive tables match on. *)
  c_name : string;
  c_path : string list;  (** Alias-resolved module path; [[]] for bare idents. *)
  mutable c_ref : bool;
      (** A value reference, not an execution at this site: outside
          call-head position (argument, record field), or under-applied
          (fewer positional arguments than every resolved target takes —
          a closure being built). A graph edge either way, but the flow
          rules skip it and analyze the referenced node on its own. *)
  c_nargs : int;  (** Positional (unlabelled) arguments at this site. *)
  mutable c_tgts : int list;  (** Resolved node ids (filled by {!build}). *)
}

type event =
  | Call of call
  | Local of { l_line : int; l_name : string }
  | Def of { d_name : string; d_body : event list }

type node = {
  n_id : int;
  n_file : string;
  n_modpath : string list;  (** Module path within the file. *)
  n_name : string;
  n_line : int;
  n_arity : int;  (** Positional (unlabelled) parameters of the binding. *)
  n_events : event list;
  mutable n_callees : int list;  (** Deduped resolved targets. *)
}

type t

val build : (string * Parsetree.structure) list -> t
(** Build nodes, resolve every call, and record per-file lock-manager
    instance names (from [Lock.create ~name:"..."], else the directory
    basename). Input pairs are (path, parsed implementation). *)

val nodes : t -> node list
val node : t -> int -> node
val node_count : t -> int

val label : t -> int -> string
(** ["Qm.dequeue"], ["Kvdb.State.relock"], ["Rm.Make.commit_prepared"]. *)

val instance : t -> string -> string
(** The lock-manager instance name of a file (see {!build}). *)

val callees : t -> int -> int list

val find : t -> string -> int option
(** Node id by {!label}, for tests. *)

val to_dot : t -> string
(** The whole graph in Graphviz format ([rrq_lint --dot]). *)
