type severity = Error | Warning

type t = {
  rule : string;
  rule_name : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  item : string;
  message : string;
  hint : string;
  detail : string list;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text f =
  let where =
    if f.item = "" then "" else Printf.sprintf " (in `%s')" f.item
  in
  let detail =
    String.concat ""
      (List.map (fun d -> Printf.sprintf "\n      %s" d) f.detail)
  in
  Printf.sprintf "%s:%d:%d: [%s %s]%s %s%s\n    hint: %s" f.file f.line f.col
    f.rule f.rule_name where f.message detail f.hint

(* Minimal JSON: every field is a string or an int, so escaping the usual
   control characters is enough. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  let detail =
    String.concat ","
      (List.map (fun d -> "\"" ^ json_escape d ^ "\"") f.detail)
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"name\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\
     \"line\":%d,\"col\":%d,\"item\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\",\
     \"detail\":[%s]}"
    (json_escape f.rule) (json_escape f.rule_name)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.item)
    (json_escape f.message) (json_escape f.hint) detail
