(* The rule set: a per-file Parsetree pass (compiler-libs [Ast_iterator])
   for the syntactic rules R1–R4, the file-level R6, and a flow-aware pass
   (R5, R7, R8) over the call graph built by [Callgraph].

   Rules work on the *untyped* AST: they see names, not resolved paths, so
   they match on the conventional module aliases used throughout the tree
   ([Disk], [Wal], [Lock], [Sched], ...). That makes them linters, not
   proofs — cheap, fast, zero-annotation — and the suppression baseline
   (see [Driver]) is the escape hatch for the rare intentional exception.

   Scoping: R4 reasons per top-level value binding ("item"), linearizing
   the body in source order. The flow rules reason over each item's event
   list (local helpers expanded at call position, lambdas inlined at their
   application site) plus interprocedural summaries computed over the call
   graph; branches are linearized in source order — an over-approximation
   in the conservative direction for every hazard these rules target. The
   exact approximations are documented per rule in doc/INTERNALS.md. *)

module F = Finding
module CG = Callgraph

let all =
  [
    ( "R1", "exn-swallow",
      "no catch-all exception handlers: `try ... with _ ->' (or `| \
       exception _ ->') can eat Crashpoint.Crash or a scheduler-fatal \
       exception; use Rrq_util.Swallow or a `when Swallow.nonfatal e' guard"
    );
    ( "R2", "determinism",
      "no ambient time, randomness or environment under lib/: Sys.time, \
       Unix.*, Random.*, Sys.getenv break byte-identical trace replay; \
       route time through Rrq_sim.Sched and randomness through Rrq_util.Rng"
    );
    ( "R3", "layering",
      "no direct Disk mutation outside lib/storage + lib/wal, no raw \
       WAL/group-commit appends or redo-record construction outside the \
       resource-manager layers (lib/wal, lib/txn, lib/qm, lib/kvdb), and \
       no Element payload/state writes outside lib/qm" );
    ( "R4", "txn-pairing",
      "an item that calls begin_txn must also reach both a commit and an \
       abort (the with_txn shape): a missing abort path leaks the \
       transaction and its locks when the body raises" );
    ( "R5", "blocking-under-lock",
      "no blocking primitive (Sched.yield/sleep, Cond.wait*, Chan.send/\
       recv, Ivar.read*, Net.call, Group_commit.force) after Lock.acquire \
       and before Lock.release_all in the same item, including through \
       local helper functions (expanded at their call position): \
       hold-and-wait invites deadlock and stretches lock hold times" );
    ( "R6", "interface-coverage",
      "every lib/**.ml has a sibling .mli: the public surface of each \
       module is explicit" );
    ( "R7", "lock-order",
      "the static lock-order graph (edges: lock-manager instance held \
       while acquiring from another) must be acyclic; a cycle is a \
       potential cross-manager deadlock the dynamic waits-for detector \
       cannot see, reported with the full witness path" );
    ( "R8", "durability-before-reply",
      "no reply/publish release (Ivar.fill, Chan.send, Net.call/cast; \
       Cond.signal/broadcast only if unforced at item exit) while a WAL \
       or group-commit append is not yet covered by a force: a waiter \
       woken past that window can act on — and answer for — state a \
       crash would revoke" );
  ]

(* ---- identifier helpers ---------------------------------------------- *)

let rec flatten lid =
  match lid with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (_, l) -> flatten l

let last_two comps =
  match List.rev comps with
  | f :: m :: _ -> (Some m, f)
  | [ f ] -> (None, f)
  | [] -> (None, "")

(* ---- per-file context ------------------------------------------------- *)

type ctx = {
  file : string;
  mutable item : string;
  mutable findings : F.t list;
  (* R4, per item *)
  mutable begin_sites : Location.t list;
  mutable saw_commit : bool;
  mutable saw_abort : bool;
}

let emit ctx ~rule ~rule_name ~loc ~message ~hint =
  let p = loc.Location.loc_start in
  ctx.findings <-
    {
      F.rule;
      rule_name;
      severity = F.Error;
      file = ctx.file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      item = ctx.item;
      message;
      hint;
      detail = [];
    }
    :: ctx.findings

(* ---- R1: catch-all exception handlers --------------------------------- *)

let rec is_catchall p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (q, _) -> is_catchall q
  | Parsetree.Ppat_or (a, b) -> is_catchall a || is_catchall b
  | Parsetree.Ppat_constraint (q, _) -> is_catchall q
  | _ -> false

let bound_var p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var v -> Some v.Location.txt
  | Parsetree.Ppat_alias (_, v) -> Some v.Location.txt
  | _ -> None

(* A handler that re-raises the exception it bound ([... ; raise e]) keeps
   the fiber-fatal path open, so it is not a swallow. *)
let reraises var body =
  match var with
  | None -> false
  | Some v ->
    let found = ref false in
    let expr self e =
      (match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_apply
          ({ pexp_desc = Parsetree.Pexp_ident { txt = f; _ }; _ }, args) ->
        let _, fn = last_two (flatten f) in
        if fn = "raise" || fn = "raise_notrace" || fn = "reraise" then
          List.iter
            (fun (_, a) ->
              match a.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident { txt = Longident.Lident x; _ }
                when x = v ->
                found := true
              | _ -> ())
            args
      | _ -> ());
      Ast_iterator.default_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.expr it body;
    !found

let r1_msg =
  "catch-all exception handler: can swallow Crashpoint.Crash or a \
   scheduler-fatal exception and turn an injected crash into a wrong \
   protocol outcome"

let r1_hint =
  "match the specific exceptions, guard with `when Rrq_util.Swallow.nonfatal \
   e', or use Rrq_util.Swallow.run ~default"

let check_handler ctx pat guard body =
  if is_catchall pat && guard = None && not (reraises (bound_var pat) body)
  then
    emit ctx ~rule:"R1" ~rule_name:"exn-swallow" ~loc:pat.Parsetree.ppat_loc
      ~message:r1_msg ~hint:r1_hint

let r1_case ctx (c : Parsetree.case) =
  check_handler ctx c.pc_lhs c.pc_guard c.pc_rhs

let r1_exception_case ctx (c : Parsetree.case) =
  match c.pc_lhs.Parsetree.ppat_desc with
  | Parsetree.Ppat_exception inner -> check_handler ctx inner c.pc_guard c.pc_rhs
  | _ -> ()

(* ---- R2: determinism -------------------------------------------------- *)

let r2_hint =
  "route time through Rrq_sim.Sched.clock (or an injected clock) and \
   randomness through Rrq_util.Rng; configuration comes in through \
   constructor arguments, not the environment"

let r2_check ctx loc comps =
  let has m = List.mem m comps in
  let m2, f = last_two comps in
  let bad what =
    emit ctx ~rule:"R2" ~rule_name:"determinism" ~loc
      ~message:(what ^ " breaks deterministic, replayable simulation")
      ~hint:r2_hint
  in
  if has "Unix" then bad "Unix.* (wall clock / ambient syscalls)"
  else if has "Random" then bad "stdlib Random (ambient randomness)"
  else if m2 = Some "Sys" && f = "time" then bad "Sys.time (host CPU clock)"
  else if m2 = Some "Sys" && (f = "getenv" || f = "getenv_opt") then
    bad "Sys.getenv (ambient environment)"

(* ---- R3: layering ----------------------------------------------------- *)

type layer = {
  l_mod : string;
  l_funcs : string list;
  l_allowed : string list;
  l_what : string;
  l_hint : string;
}

let rm_dirs = [ "lib/wal/"; "lib/txn/"; "lib/qm/"; "lib/kvdb/" ]

let layers =
  [
    {
      l_mod = "Disk";
      l_funcs =
        [ "open_file"; "append"; "append_i64"; "append_sub"; "sync";
          "sync_all"; "replace_atomic"; "delete"; "read_page"; "write_page" ];
      l_allowed = [ "lib/storage/"; "lib/wal/" ];
      l_what = "direct disk mutation";
      l_hint =
        "stable storage is written only through the WAL (lib/wal) so every \
         update is logged, checksummed and recoverable; call the Wal/Qm/Kvdb \
         layer instead";
    };
    {
      l_mod = "Wal";
      l_funcs = [ "append"; "append_sync"; "sync"; "checkpoint" ];
      l_allowed = rm_dirs;
      l_what = "raw WAL mutation";
      l_hint =
        "log records are owned by the resource managers (TM/RM/QM/KVDB \
         deferred-update path); higher layers express updates as \
         transactions";
    };
    {
      l_mod = "Group_commit";
      l_funcs = [ "append"; "append_force"; "force" ];
      l_allowed = rm_dirs;
      l_what = "raw group-commit append/force";
      l_hint =
        "log records are owned by the resource managers (TM/RM/QM/KVDB \
         deferred-update path); higher layers express updates as \
         transactions";
    };
  ]

let under prefixes file = List.exists (fun p -> String.starts_with ~prefix:p file) prefixes

let r3_check_ident ctx loc comps =
  let m2, f = last_two comps in
  match m2 with
  | None -> ()
  | Some m ->
    List.iter
      (fun l ->
        if l.l_mod = m && List.mem f l.l_funcs && not (under l.l_allowed ctx.file)
        then
          emit ctx ~rule:"R3" ~rule_name:"layering" ~loc
            ~message:
              (Printf.sprintf "%s (%s.%s) outside %s" l.l_what m f
                 (String.concat ", " l.l_allowed))
            ~hint:l.l_hint)
      layers

(* Qm state is also mutated by writing [Element] record fields directly
   (status, delivery_count, abort_code); outside lib/qm that bypasses the
   deferred-update path entirely. Matched both qualified
   ([el.Element.status <- ...]) and — for the field names unique to
   Element — bare ([el.delivery_count <- ...] under an open). *)
let element_only_fields = [ "delivery_count"; "abort_code" ]

let r3_check_setfield ctx loc lid =
  let comps = flatten lid in
  let _, f = last_two comps in
  if
    (List.mem "Element" comps || List.mem f element_only_fields)
    && not (under [ "lib/qm/" ] ctx.file)
  then
    emit ctx ~rule:"R3" ~rule_name:"layering" ~loc
      ~message:"direct Element state mutation outside lib/qm"
      ~hint:
        "queue-element state changes only via the QM's transactional \
         operations (enqueue/dequeue/kill), which log them for recovery"

(* Redo records are the recovery contract: only the WAL and the
   resource-manager layers may fabricate them. A redo constructed anywhere
   else would describe an update no RM's apply/recovery path owns. *)
let redo_ctors =
  [
    "RCreate"; "REnq"; "RDeq"; "RKill"; "RBump"; "RMove_error"; "RRegister";
    "RDeregister"; "RSet_last"; "RIncarnation"; "RDestroy"; "RSet_stopped";
    "RAlter";
  ]

let r3_check_construct ctx loc lid =
  let _, c = last_two (flatten lid) in
  if List.mem c redo_ctors && not (under rm_dirs ctx.file) then
    emit ctx ~rule:"R3" ~rule_name:"layering" ~loc
      ~message:
        (Printf.sprintf "redo-record emission (%s) outside %s" c
           (String.concat ", " rm_dirs))
      ~hint:
        "redo records are owned by the WAL and resource-manager layers; \
         express the update as a transactional QM/KVDB operation instead \
         of logging it by hand"

(* ---- R4: txn pairing -------------------------------------------------- *)

let commit_names = [ "commit"; "auto_commit" ]
let abort_names = [ "abort"; "force_abort" ]

let r4_check_ident ctx loc comps =
  let _, f = last_two comps in
  if f = "begin_txn" then ctx.begin_sites <- loc :: ctx.begin_sites;
  if List.mem f commit_names then ctx.saw_commit <- true;
  if List.mem f abort_names then ctx.saw_abort <- true

let r4_finalize ctx =
  if ctx.begin_sites <> [] && not (ctx.saw_commit && ctx.saw_abort) then
    List.iter
      (fun loc ->
        emit ctx ~rule:"R4" ~rule_name:"txn-pairing" ~loc
          ~message:
            (Printf.sprintf
               "begin_txn without %s in the same item: the transaction (and \
                its locks) leaks on the missing path"
               (if ctx.saw_commit then "an abort path"
                else if ctx.saw_abort then "a commit path"
                else "commit/abort"))
          ~hint:
            "pair begin_txn with commit on the success path and abort on the \
             exception path (the Site.with_txn shape), or hand the open \
             handle to a helper that does")
      (List.rev ctx.begin_sites)

(* ---- the pass --------------------------------------------------------- *)

let check_ident ctx loc lid =
  let comps = flatten lid in
  r2_check ctx loc comps;
  r3_check_ident ctx loc comps;
  r4_check_ident ctx loc comps

let reset_item ctx name =
  ctx.item <- name;
  ctx.begin_sites <- [];
  ctx.saw_commit <- false;
  ctx.saw_abort <- false

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let expr self e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> check_ident ctx e.Parsetree.pexp_loc txt
    | Parsetree.Pexp_try (_, cases) -> List.iter (r1_case ctx) cases
    | Parsetree.Pexp_match (_, cases) -> List.iter (r1_exception_case ctx) cases
    | Parsetree.Pexp_setfield (_, lid, _) ->
      r3_check_setfield ctx e.Parsetree.pexp_loc lid.Location.txt
    | Parsetree.Pexp_construct (lid, _) ->
      r3_check_construct ctx e.Parsetree.pexp_loc lid.Location.txt
    | _ -> ());
    super.expr self e
  in
  let structure_item self si =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let name =
            match bound_var vb.Parsetree.pvb_pat with
            | Some n -> n
            | None -> "_"
          in
          reset_item ctx name;
          self.Ast_iterator.expr self vb.Parsetree.pvb_expr;
          r4_finalize ctx;
          reset_item ctx "")
        vbs
    | _ -> super.structure_item self si
  in
  { super with expr; structure_item }

let check_structure ~file str =
  let ctx =
    {
      file;
      item = "";
      findings = [];
      begin_sites = [];
      saw_commit = false;
      saw_abort = false;
    }
  in
  let it = make_iterator ctx in
  it.Ast_iterator.structure it str;
  List.sort F.compare ctx.findings

(* ---- R6: interface coverage (file-level, no parsing needed) ------------ *)

let interface_coverage ~files =
  let set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace set f ()) files;
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".ml" && not (Hashtbl.mem set (f ^ "i")) then
        Some
          {
            F.rule = "R6";
            rule_name = "interface-coverage";
            severity = F.Error;
            file = f;
            line = 1;
            col = 0;
            item = "";
            message = "implementation without a sibling .mli interface";
            hint =
              "write the .mli: the module's public surface must be explicit \
               (abstract types, documented vals), everything else private";
            detail = [];
          }
      else None)
    (List.sort String.compare files)

(* ====== flow-aware rules (R5, R7, R8) over the call graph =============== *)

(* Iterate the [Call] events of an event list in execution order, expanding
   local helpers at their call position. A [Def] enters the helper map; a
   [Local] splices the helper's body in (cycle-guarded, since `let rec`
   helpers recurse — one expansion per helper per chain is enough for the
   may-style properties these rules check). Value references ([c_ref]) are
   not executions and are skipped — the referenced node is analyzed in its
   own right. *)
let iter_exec events f =
  let defs = Hashtbl.create 8 in
  let rec go expanding evs =
    List.iter
      (fun ev ->
        match ev with
        | CG.Def d -> Hashtbl.replace defs d.d_name d.d_body
        | CG.Local l -> (
          match Hashtbl.find_opt defs l.l_name with
          | Some body when not (List.mem l.l_name expanding) ->
            go (l.l_name :: expanding) body
          | _ -> ())
        | CG.Call c -> if not c.CG.c_ref then f c)
      evs
  in
  go [] events

let flow_finding ~rule ~rule_name ~file ~line ~item ~message ~hint ~detail =
  {
    F.rule;
    rule_name;
    severity = F.Error;
    file;
    line;
    col = 0;
    item;
    message;
    hint;
    detail;
  }

(* ---- R5: blocking under lock (flow-sensitive, local helpers expanded) -- *)

let blocking =
  [
    ("Sched", [ "yield"; "sleep"; "sleep_background"; "suspend" ]);
    ("Cond", [ "wait"; "wait_timeout"; "wait_any" ]);
    ("Chan", [ "send"; "recv"; "recv_timeout" ]);
    ("Ivar", [ "read"; "read_timeout" ]);
    ("Net", [ "call" ]);
    ("Group_commit", [ "force"; "append_force" ]);
  ]

let is_blocking m f =
  List.exists (fun (bm, fs) -> bm = m && List.mem f fs) blocking

let r5_node acc (n : CG.node) =
  let held = ref false in
  iter_exec n.CG.n_events (fun c ->
    match (c.CG.c_mod, c.CG.c_name) with
    | Some "Lock", ("acquire" | "try_acquire") -> held := true
    | Some "Lock", "release_all" -> held := false
    | Some m, f when !held && is_blocking m f ->
      acc :=
        flow_finding ~rule:"R5" ~rule_name:"blocking-under-lock"
          ~file:n.CG.n_file ~line:c.CG.c_line ~item:n.CG.n_name
          ~message:
            (Printf.sprintf
               "%s.%s while a Lock acquired earlier in this item may still \
                be held"
               m f)
          ~hint:
            "release (or do not yet acquire) the lock around the blocking \
             call; if the hold-and-wait is the design (e.g. strict-FIFO \
             dequeue), document it in the suppression baseline"
          ~detail:[]
        :: !acc
    | _ -> ())

(* ---- R7: lock order ---------------------------------------------------- *)

module SS = Set.Make (String)

let lock_prim c =
  match (c.CG.c_mod, c.CG.c_name) with
  | Some "Lock", ("acquire" | "try_acquire") -> `Acquire
  | Some "Lock", "release_all" -> `Release
  (* Transaction boundaries are release-all points by the system's own
     2PL contract. On exit, TM resolution releases every participant's
     locks through the [p_release] closures, which a static walk cannot
     see into; on entry, a fresh transaction holds nothing — whatever the
     walk accumulated before [begin_txn] (boot-time recovery relocks, a
     previous scenario's 2PL holds) belongs to other transactions, and
     lock order is a per-transaction property. *)
  | Some "Tm", ("begin_txn" | "commit" | "abort" | "force_abort") -> `Release
  | _ -> `No

(* Per-node lock summary, computed to fixpoint over the call graph:

   - [s_acq]: every instance a call into the node may acquire, transitively
     (releases ignored) — the edge targets a call site contributes.
   - [s_clears]: the linearized path through the node ends past a
     [release_all] (its own, or one every callee candidate performs) — so
     a caller's held set does not survive the call. This is what lets
     [Site.create]'s recovery — which relocks prepared keys and then
     releases them as the recovered transactions resolve — come out clean
     instead of poisoning every harness driver's held set forever.
   - [s_net]: instances acquired after the last clear, i.e. still held at
     exit (the strict-FIFO [dequeue] hands its lock to the caller's
     commit).

   Calls that are the [Lock] primitives themselves count as the caller's
   own instance and are never chased as edges — [lock.ml]'s internals are
   the mechanism, not a user of it. *)
type r7_sum = { s_acq : SS.t; s_clears : bool; s_net : SS.t }

let r7_walk cg get (node : CG.node) ~on_acquire ~on_call =
  let own = CG.instance cg node.CG.n_file in
  let acq = ref SS.empty in
  let cleared = ref false in
  let held = ref SS.empty in
  iter_exec node.CG.n_events (fun c ->
    match lock_prim c with
    | `Acquire ->
      on_acquire c !held own;
      acq := SS.add own !acq;
      held := SS.add own !held
    | `Release ->
      cleared := true;
      held := SS.empty
    | `No -> (
      match c.CG.c_tgts with
      | [] -> ()
      | tgts ->
        let subs = List.map get tgts in
        let sub_acq =
          List.fold_left (fun s x -> SS.union x.s_acq s) SS.empty subs
        in
        let sub_net =
          List.fold_left (fun s x -> SS.union x.s_net s) SS.empty subs
        in
        if not (SS.is_empty sub_acq) then on_call c !held sub_acq tgts;
        acq := SS.union sub_acq !acq;
        (* several candidates (shadowed module names): the callee clears
           only if every candidate clears — the conservative direction *)
        if List.for_all (fun x -> x.s_clears) subs then begin
          cleared := true;
          held := sub_net
        end
        else held := SS.union !held sub_net));
  { s_acq = !acq; s_clears = !cleared; s_net = !held }

let r7_summaries cg =
  let ids = List.init (CG.node_count cg) (fun i -> i) in
  let eq a b =
    SS.equal a.s_acq b.s_acq
    && a.s_clears = b.s_clears
    && SS.equal a.s_net b.s_net
  in
  let step get id =
    r7_walk cg get (CG.node cg id)
      ~on_acquire:(fun _ _ _ -> ())
      ~on_call:(fun _ _ _ _ -> ())
  in
  Flow.fixpoint ~nodes:ids ~eq ~step
    ~init:{ s_acq = SS.empty; s_clears = false; s_net = SS.empty }

type lock_edge = {
  e_from : string;
  e_to : string;
  e_file : string;
  e_line : int;
  e_item : string;
  e_via : string option;  (* callee label when acquired interprocedurally *)
}

(* Walk every node with a held-set of instance classes, recording a
   [held -> acquired] edge per acquisition (first witness site per edge
   kept). Every acquisition also records the self-edge [own -> own]: a
   loop re-acquiring within one manager (multi-key relock, strict-FIFO
   element locks) produces exactly that edge at runtime, and the static
   walk linearizes loop bodies once. Self-edges are excluded from the
   cycle check — intra-instance ordering is the dynamic waits-for
   detector's job — but they must be in the witness reference set. *)
let lock_order_edges_of cg summaries =
  let edges : (string * string, lock_edge) Hashtbl.t = Hashtbl.create 32 in
  let add e =
    if not (Hashtbl.mem edges (e.e_from, e.e_to)) then
      Hashtbl.replace edges (e.e_from, e.e_to) e
  in
  List.iter
    (fun (node : CG.node) ->
      let site line via from to_ =
        { e_from = from; e_to = to_; e_file = node.CG.n_file; e_line = line;
          e_item = node.CG.n_name; e_via = via }
      in
      ignore
        (r7_walk cg summaries node
           ~on_acquire:(fun c held own ->
             add (site c.CG.c_line None own own);
             SS.iter (fun h -> add (site c.CG.c_line None h own)) held)
           ~on_call:(fun c held acq tgts ->
             let via = Some (CG.label cg (List.hd tgts)) in
             SS.iter
               (fun h ->
                 SS.iter (fun a -> add (site c.CG.c_line via h a)) acq)
               held)))
    (CG.nodes cg);
  List.sort compare (Hashtbl.fold (fun _ e acc -> e :: acc) edges [])

let lock_order_edges cg = lock_order_edges_of cg (r7_summaries cg)

let edge_site e =
  Printf.sprintf "%s -> %s: %s:%d in `%s'%s" e.e_from e.e_to e.e_file
    e.e_line e.e_item
    (match e.e_via with None -> "" | Some v -> Printf.sprintf " (via %s)" v)

(* Cycle check over the distinct-instance graph. Self-edges (multi-key
   acquisition inside one manager) are expected — intra-instance ordering
   is the dynamic waits-for detector's job — so they are excluded here. *)
let r7_check acc edges =
  let classes =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) edges)
  in
  let arr = Array.of_list classes in
  let idx = Hashtbl.create 8 in
  Array.iteri (fun i c -> Hashtbl.replace idx c i) arr;
  let succ i =
    List.filter_map
      (fun e ->
        if e.e_from = arr.(i) && e.e_to <> arr.(i) then
          Hashtbl.find_opt idx e.e_to
        else None)
      edges
  in
  match
    Flow.find_cycle ~nodes:(List.init (Array.length arr) (fun i -> i)) ~succ
  with
  | None -> ()
  | Some cycle ->
    let names = List.map (fun i -> arr.(i)) cycle in
    let pairs =
      match names with
      | [] -> []
      | first :: _ ->
        let rec pair = function
          | [ last ] -> [ (last, first) ]
          | a :: (b :: _ as rest) -> (a, b) :: pair rest
          | [] -> []
        in
        pair names
    in
    let witness =
      List.filter_map
        (fun (a, b) ->
          List.find_opt (fun e -> e.e_from = a && e.e_to = b) edges)
        pairs
    in
    let head =
      match witness with
      | e :: _ -> e
      | [] -> { e_from = ""; e_to = ""; e_file = "?"; e_line = 0;
                e_item = ""; e_via = None }
    in
    acc :=
      flow_finding ~rule:"R7" ~rule_name:"lock-order" ~file:head.e_file
        ~line:head.e_line ~item:head.e_item
        ~message:
          (Printf.sprintf
             "lock-order cycle between manager instances: %s -> %s"
             (String.concat " -> " names)
             (List.hd names))
        ~hint:
          "impose a global acquisition order across lock-manager instances \
           (acquire in one fixed order everywhere) or release the first \
           manager's locks before taking the second's"
        ~detail:(List.map edge_site witness)
      :: !acc

(* ---- R8: durability before reply --------------------------------------- *)

(* Taint model: an un-forced WAL/group-commit append marks the item
   undurable. A force/sync clears it. Releasing a reply or publishing
   state while undurable is the hazard; two severities of release:

   - hard (Ivar.fill, Chan.send, Net.call/cast): the waiter runs with the
     value no matter what happens next — a finding at the release site.
   - soft (Cond.signal/broadcast, Sched.wake): the woken fiber still has
     to re-check shared state; the group-commit design *relies* on
     signal-then-force (apply in memory, wake waiters, then force before
     answering the client). A soft release under taint is therefore only
     pending — a later force in the same item absolves it; pending at item
     exit is the finding.

   Interprocedural: each node gets two symbolic outcomes — entered clean
   and entered tainted — computed to fixpoint; a call site consults the
   outcome matching the caller's current taint. A call-site finding is
   charged to the caller only when caused by the caller's own taint
   (violates when entered tainted, clean when entered clean) — violations
   unconditional in the callee are the callee's own report. *)

type r8_outcome = {
  o_taint : bool;  (* undurable at exit, given the entry taint *)
  o_pending : bool;  (* soft releases outstanding at exit *)
  o_viol : bool;  (* a violation fires inside, given the entry taint *)
  o_force : bool;  (* a force/sync happens inside (entry-independent) *)
}

type r8_summary = { v_false : r8_outcome; v_true : r8_outcome }

let r8_prim c =
  match (c.CG.c_mod, c.CG.c_name) with
  | Some ("Wal" | "Group_commit"), ("append" | "append_enc") -> `Taint
  | Some "Group_commit", ("force" | "append_force") -> `Clear
  | Some "Wal", ("sync" | "append_sync") -> `Clear
  | Some "Disk", ("sync" | "sync_all") -> `Clear
  | Some "Cond", ("signal" | "broadcast") -> `Soft
  | Some "Sched", "wake" -> `Soft
  | Some "Ivar", "fill" -> `Hard
  | Some "Chan", "send" -> `Hard
  | Some "Net", ("call" | "cast") -> `Hard
  | _ -> `No

(* Appends of recovery-optional bookkeeping whose loss is unobservable:
   the TM's END record (Tm.log_end) is appended after the commit decision
   was already forced, purely to let recovery skip resolved transactions —
   the paper's own lazy-END optimization. Chasing that taint upward would
   mark every committed transaction undurable forever. *)
let r8_lazy = [ "Tm.log_end" ]

let r8_targets cg c =
  List.filter
    (fun t -> not (List.mem (CG.label cg t) r8_lazy))
    c.CG.c_tgts

let r8_run cg get (node : CG.node) entry =
  let taint = ref entry in
  let pending = ref false in
  let viol = ref false in
  let force = ref false in
  iter_exec node.CG.n_events (fun c ->
    match r8_prim c with
    | `Taint -> taint := true
    | `Clear ->
      force := true;
      taint := false;
      pending := false
    | `Soft -> if !taint then pending := true
    | `Hard -> if !taint then viol := true
    | `No -> (
      match r8_targets cg c with
      | [] -> ()
      | tgts ->
        let outs =
          List.map
            (fun t ->
              let s = get t in
              if !taint then s.v_true else s.v_false)
            tgts
        in
        let any f = List.exists f outs in
        if any (fun o -> o.o_viol) then viol := true;
        (* several candidates (shadowed module names): force only counts
           if every candidate forces — the conservative direction *)
        if List.for_all (fun o -> o.o_force) outs then begin
          force := true;
          pending := false
        end;
        if any (fun o -> o.o_pending) then pending := true;
        taint := any (fun o -> o.o_taint)));
  { o_taint = !taint; o_pending = !pending; o_viol = !viol; o_force = !force }

let r8_summaries cg =
  let ids = List.init (CG.node_count cg) (fun i -> i) in
  let bot = { o_taint = false; o_pending = false; o_viol = false; o_force = false } in
  let init = { v_false = bot; v_true = { bot with o_taint = true } } in
  let step get id =
    let node = CG.node cg id in
    { v_false = r8_run cg get node false; v_true = r8_run cg get node true }
  in
  Flow.fixpoint ~nodes:ids ~eq:( = ) ~step ~init

let r8_hint =
  "force the log (Group_commit.force / Wal.sync) before releasing the \
   reply, or restructure so the release happens on the post-force path; \
   if the waiter genuinely re-validates against durable state, document \
   the suppression in the baseline"

let r8_node cg get acc (node : CG.node) =
  let taint = ref false in
  let tsite = ref 0 in
  let pending = ref [] in
  (* (line, what, append site) *)
  let report line message detail =
    acc :=
      flow_finding ~rule:"R8" ~rule_name:"durability-before-reply"
        ~file:node.CG.n_file ~line ~item:node.CG.n_name ~message ~hint:r8_hint
        ~detail
      :: !acc
  in
  iter_exec node.CG.n_events (fun c ->
    let line = c.CG.c_line in
    let prim_label () =
      Printf.sprintf "%s.%s"
        (Option.value ~default:"?" c.CG.c_mod)
        c.CG.c_name
    in
    match r8_prim c with
    | `Taint ->
      if not !taint then begin
        taint := true;
        tsite := line
      end
    | `Clear ->
      taint := false;
      pending := []
    | `Soft ->
      if !taint then pending := (line, prim_label (), !tsite) :: !pending
    | `Hard ->
      if !taint then
        report line
          (Printf.sprintf
             "%s releases a reply while the append at line %d is not yet \
              forced"
             (prim_label ()) !tsite)
          [ Printf.sprintf "undurable since line %d" !tsite ]
    | `No -> (
      match r8_targets cg c with
      | [] -> ()
      | tgts ->
        let callee = CG.label cg (List.hd tgts) in
        let outs_false = List.map (fun t -> (get t).v_false) tgts in
        let outs_true = List.map (fun t -> (get t).v_true) tgts in
        let any l f = List.exists f l in
        if
          !taint
          && any outs_true (fun o -> o.o_viol)
          && not (any outs_false (fun o -> o.o_viol))
        then
          report line
            (Printf.sprintf
               "a reply released inside `%s' escapes while the append at \
                line %d is not yet forced"
               callee !tsite)
            [ Printf.sprintf "undurable since line %d" !tsite ];
        let outs = if !taint then outs_true else outs_false in
        if List.for_all (fun o -> o.o_force) outs then pending := [];
        if
          !taint
          && any outs_true (fun o -> o.o_pending)
          && not (any outs_false (fun o -> o.o_pending))
        then
          pending :=
            (line, Printf.sprintf "wake inside `%s'" callee, !tsite)
            :: !pending;
        let nt = any outs (fun o -> o.o_taint) in
        if nt && not !taint then tsite := line;
        taint := nt));
  List.iter
    (fun (line, what, site) ->
      report line
        (Printf.sprintf
           "%s under an unforced append (line %d) with no force before the \
            item returns"
           what site)
        [ Printf.sprintf "undurable since line %d, still unforced at exit"
            site ])
    (List.rev !pending)

(* ---- entry point -------------------------------------------------------- *)

let flow_check cg =
  let acc = ref [] in
  let ns = CG.nodes cg in
  List.iter (r5_node acc) ns;
  r7_check acc (lock_order_edges cg);
  let r8 = r8_summaries cg in
  List.iter (r8_node cg r8 acc) ns;
  (* A helper expanded at several call sites can replay the same witness:
     keep one finding per distinct (site, message). *)
  let deduped = List.sort_uniq Stdlib.compare !acc in
  List.sort F.compare deduped
