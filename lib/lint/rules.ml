(* The rule set, as a single Parsetree pass (compiler-libs [Ast_iterator]).

   Rules work on the *untyped* AST: they see names, not resolved paths, so
   they match on the conventional module aliases used throughout the tree
   ([Disk], [Wal], [Lock], [Sched], ...). That makes them linters, not
   proofs — cheap, fast, zero-annotation — and the suppression baseline
   (see [Driver]) is the escape hatch for the rare intentional exception.

   Scoping: R4 and R5 reason per top-level value binding ("item"). The
   iterator linearizes an item's body in source order, which approximates
   control flow well enough for the hazards these rules target; the
   approximations are documented per rule in doc/INTERNALS.md. *)

module F = Finding

let all =
  [
    ( "R1", "exn-swallow",
      "no catch-all exception handlers: `try ... with _ ->' (or `| \
       exception _ ->') can eat Crashpoint.Crash or a scheduler-fatal \
       exception; use Rrq_util.Swallow or a `when Swallow.nonfatal e' guard"
    );
    ( "R2", "determinism",
      "no ambient time, randomness or environment under lib/: Sys.time, \
       Unix.*, Random.*, Sys.getenv break byte-identical trace replay; \
       route time through Rrq_sim.Sched and randomness through Rrq_util.Rng"
    );
    ( "R3", "layering",
      "no direct Disk mutation outside lib/storage + lib/wal, no raw \
       WAL/group-commit appends or redo-record construction outside the \
       resource-manager layers (lib/wal, lib/txn, lib/qm, lib/kvdb), and \
       no Element payload/state writes outside lib/qm" );
    ( "R4", "txn-pairing",
      "an item that calls begin_txn must also reach both a commit and an \
       abort (the with_txn shape): a missing abort path leaks the \
       transaction and its locks when the body raises" );
    ( "R5", "blocking-under-lock",
      "no blocking primitive (Sched.yield/sleep, Cond.wait*, Chan.send/\
       recv, Ivar.read*) after Lock.acquire and before Lock.release_all \
       in the same item: hold-and-wait invites deadlock and stretches \
       lock hold times" );
    ( "R6", "interface-coverage",
      "every lib/**.ml has a sibling .mli: the public surface of each \
       module is explicit" );
  ]

(* ---- identifier helpers ---------------------------------------------- *)

let rec flatten lid =
  match lid with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (_, l) -> flatten l

let last_two comps =
  match List.rev comps with
  | f :: m :: _ -> (Some m, f)
  | [ f ] -> (None, f)
  | [] -> (None, "")

(* ---- per-file context ------------------------------------------------- *)

type ctx = {
  file : string;
  mutable item : string;
  mutable findings : F.t list;
  (* R4, per item *)
  mutable begin_sites : Location.t list;
  mutable saw_commit : bool;
  mutable saw_abort : bool;
  (* R5, per item *)
  mutable lock_held : bool;
}

let emit ctx ~rule ~rule_name ~loc ~message ~hint =
  let p = loc.Location.loc_start in
  ctx.findings <-
    {
      F.rule;
      rule_name;
      severity = F.Error;
      file = ctx.file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      item = ctx.item;
      message;
      hint;
    }
    :: ctx.findings

(* ---- R1: catch-all exception handlers --------------------------------- *)

let rec is_catchall p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (q, _) -> is_catchall q
  | Parsetree.Ppat_or (a, b) -> is_catchall a || is_catchall b
  | Parsetree.Ppat_constraint (q, _) -> is_catchall q
  | _ -> false

let bound_var p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var v -> Some v.Location.txt
  | Parsetree.Ppat_alias (_, v) -> Some v.Location.txt
  | _ -> None

(* A handler that re-raises the exception it bound ([... ; raise e]) keeps
   the fiber-fatal path open, so it is not a swallow. *)
let reraises var body =
  match var with
  | None -> false
  | Some v ->
    let found = ref false in
    let expr self e =
      (match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_apply
          ({ pexp_desc = Parsetree.Pexp_ident { txt = f; _ }; _ }, args) ->
        let _, fn = last_two (flatten f) in
        if fn = "raise" || fn = "raise_notrace" || fn = "reraise" then
          List.iter
            (fun (_, a) ->
              match a.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident { txt = Longident.Lident x; _ }
                when x = v ->
                found := true
              | _ -> ())
            args
      | _ -> ());
      Ast_iterator.default_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.expr it body;
    !found

let r1_msg =
  "catch-all exception handler: can swallow Crashpoint.Crash or a \
   scheduler-fatal exception and turn an injected crash into a wrong \
   protocol outcome"

let r1_hint =
  "match the specific exceptions, guard with `when Rrq_util.Swallow.nonfatal \
   e', or use Rrq_util.Swallow.run ~default"

let check_handler ctx pat guard body =
  if is_catchall pat && guard = None && not (reraises (bound_var pat) body)
  then
    emit ctx ~rule:"R1" ~rule_name:"exn-swallow" ~loc:pat.Parsetree.ppat_loc
      ~message:r1_msg ~hint:r1_hint

let r1_case ctx (c : Parsetree.case) =
  check_handler ctx c.pc_lhs c.pc_guard c.pc_rhs

let r1_exception_case ctx (c : Parsetree.case) =
  match c.pc_lhs.Parsetree.ppat_desc with
  | Parsetree.Ppat_exception inner -> check_handler ctx inner c.pc_guard c.pc_rhs
  | _ -> ()

(* ---- R2: determinism -------------------------------------------------- *)

let r2_hint =
  "route time through Rrq_sim.Sched.clock (or an injected clock) and \
   randomness through Rrq_util.Rng; configuration comes in through \
   constructor arguments, not the environment"

let r2_check ctx loc comps =
  let has m = List.mem m comps in
  let m2, f = last_two comps in
  let bad what =
    emit ctx ~rule:"R2" ~rule_name:"determinism" ~loc
      ~message:(what ^ " breaks deterministic, replayable simulation")
      ~hint:r2_hint
  in
  if has "Unix" then bad "Unix.* (wall clock / ambient syscalls)"
  else if has "Random" then bad "stdlib Random (ambient randomness)"
  else if m2 = Some "Sys" && f = "time" then bad "Sys.time (host CPU clock)"
  else if m2 = Some "Sys" && (f = "getenv" || f = "getenv_opt") then
    bad "Sys.getenv (ambient environment)"

(* ---- R3: layering ----------------------------------------------------- *)

type layer = {
  l_mod : string;
  l_funcs : string list;
  l_allowed : string list;
  l_what : string;
  l_hint : string;
}

let rm_dirs = [ "lib/wal/"; "lib/txn/"; "lib/qm/"; "lib/kvdb/" ]

let layers =
  [
    {
      l_mod = "Disk";
      l_funcs =
        [ "open_file"; "append"; "append_i64"; "append_sub"; "sync";
          "sync_all"; "replace_atomic"; "delete"; "read_page"; "write_page" ];
      l_allowed = [ "lib/storage/"; "lib/wal/" ];
      l_what = "direct disk mutation";
      l_hint =
        "stable storage is written only through the WAL (lib/wal) so every \
         update is logged, checksummed and recoverable; call the Wal/Qm/Kvdb \
         layer instead";
    };
    {
      l_mod = "Wal";
      l_funcs = [ "append"; "append_sync"; "sync"; "checkpoint" ];
      l_allowed = rm_dirs;
      l_what = "raw WAL mutation";
      l_hint =
        "log records are owned by the resource managers (TM/RM/QM/KVDB \
         deferred-update path); higher layers express updates as \
         transactions";
    };
    {
      l_mod = "Group_commit";
      l_funcs = [ "append"; "append_force"; "force" ];
      l_allowed = rm_dirs;
      l_what = "raw group-commit append/force";
      l_hint =
        "log records are owned by the resource managers (TM/RM/QM/KVDB \
         deferred-update path); higher layers express updates as \
         transactions";
    };
  ]

let under prefixes file = List.exists (fun p -> String.starts_with ~prefix:p file) prefixes

let r3_check_ident ctx loc comps =
  let m2, f = last_two comps in
  match m2 with
  | None -> ()
  | Some m ->
    List.iter
      (fun l ->
        if l.l_mod = m && List.mem f l.l_funcs && not (under l.l_allowed ctx.file)
        then
          emit ctx ~rule:"R3" ~rule_name:"layering" ~loc
            ~message:
              (Printf.sprintf "%s (%s.%s) outside %s" l.l_what m f
                 (String.concat ", " l.l_allowed))
            ~hint:l.l_hint)
      layers

(* Qm state is also mutated by writing [Element] record fields directly
   (status, delivery_count, abort_code); outside lib/qm that bypasses the
   deferred-update path entirely. Matched both qualified
   ([el.Element.status <- ...]) and — for the field names unique to
   Element — bare ([el.delivery_count <- ...] under an open). *)
let element_only_fields = [ "delivery_count"; "abort_code" ]

let r3_check_setfield ctx loc lid =
  let comps = flatten lid in
  let _, f = last_two comps in
  if
    (List.mem "Element" comps || List.mem f element_only_fields)
    && not (under [ "lib/qm/" ] ctx.file)
  then
    emit ctx ~rule:"R3" ~rule_name:"layering" ~loc
      ~message:"direct Element state mutation outside lib/qm"
      ~hint:
        "queue-element state changes only via the QM's transactional \
         operations (enqueue/dequeue/kill), which log them for recovery"

(* Redo records are the recovery contract: only the WAL and the
   resource-manager layers may fabricate them. A redo constructed anywhere
   else would describe an update no RM's apply/recovery path owns. *)
let redo_ctors =
  [
    "RCreate"; "REnq"; "RDeq"; "RKill"; "RBump"; "RMove_error"; "RRegister";
    "RDeregister"; "RSet_last"; "RIncarnation"; "RDestroy"; "RSet_stopped";
    "RAlter";
  ]

let r3_check_construct ctx loc lid =
  let _, c = last_two (flatten lid) in
  if List.mem c redo_ctors && not (under rm_dirs ctx.file) then
    emit ctx ~rule:"R3" ~rule_name:"layering" ~loc
      ~message:
        (Printf.sprintf "redo-record emission (%s) outside %s" c
           (String.concat ", " rm_dirs))
      ~hint:
        "redo records are owned by the WAL and resource-manager layers; \
         express the update as a transactional QM/KVDB operation instead \
         of logging it by hand"

(* ---- R4: txn pairing -------------------------------------------------- *)

let commit_names = [ "commit"; "auto_commit" ]
let abort_names = [ "abort"; "force_abort" ]

let r4_check_ident ctx loc comps =
  let _, f = last_two comps in
  if f = "begin_txn" then ctx.begin_sites <- loc :: ctx.begin_sites;
  if List.mem f commit_names then ctx.saw_commit <- true;
  if List.mem f abort_names then ctx.saw_abort <- true

let r4_finalize ctx =
  if ctx.begin_sites <> [] && not (ctx.saw_commit && ctx.saw_abort) then
    List.iter
      (fun loc ->
        emit ctx ~rule:"R4" ~rule_name:"txn-pairing" ~loc
          ~message:
            (Printf.sprintf
               "begin_txn without %s in the same item: the transaction (and \
                its locks) leaks on the missing path"
               (if ctx.saw_commit then "an abort path"
                else if ctx.saw_abort then "a commit path"
                else "commit/abort"))
          ~hint:
            "pair begin_txn with commit on the success path and abort on the \
             exception path (the Site.with_txn shape), or hand the open \
             handle to a helper that does")
      (List.rev ctx.begin_sites)

(* ---- R5: blocking under lock ------------------------------------------ *)

let blocking =
  [
    ("Sched", [ "yield"; "sleep"; "sleep_background"; "suspend" ]);
    ("Cond", [ "wait"; "wait_timeout"; "wait_any" ]);
    ("Chan", [ "send"; "recv"; "recv_timeout" ]);
    ("Ivar", [ "read"; "read_timeout" ]);
  ]

let r5_check_ident ctx loc comps =
  let m2, f = last_two comps in
  match m2 with
  | None -> ()
  | Some m ->
    if m = "Lock" && (f = "acquire" || f = "try_acquire") then
      ctx.lock_held <- true
    else if m = "Lock" && f = "release_all" then ctx.lock_held <- false
    else if
      ctx.lock_held
      && List.exists (fun (bm, fs) -> bm = m && List.mem f fs) blocking
    then
      emit ctx ~rule:"R5" ~rule_name:"blocking-under-lock" ~loc
        ~message:
          (Printf.sprintf
             "%s.%s while a Lock acquired earlier in this item may still be \
              held"
             m f)
        ~hint:
          "release (or do not yet acquire) the lock around the blocking \
           call; if the hold-and-wait is the design (e.g. strict-FIFO \
           dequeue), document it in the suppression baseline"

(* ---- the pass --------------------------------------------------------- *)

let check_ident ctx loc lid =
  let comps = flatten lid in
  r2_check ctx loc comps;
  r3_check_ident ctx loc comps;
  r4_check_ident ctx loc comps;
  r5_check_ident ctx loc comps

let reset_item ctx name =
  ctx.item <- name;
  ctx.begin_sites <- [];
  ctx.saw_commit <- false;
  ctx.saw_abort <- false;
  ctx.lock_held <- false

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let expr self e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> check_ident ctx e.Parsetree.pexp_loc txt
    | Parsetree.Pexp_try (_, cases) -> List.iter (r1_case ctx) cases
    | Parsetree.Pexp_match (_, cases) -> List.iter (r1_exception_case ctx) cases
    | Parsetree.Pexp_setfield (_, lid, _) ->
      r3_check_setfield ctx e.Parsetree.pexp_loc lid.Location.txt
    | Parsetree.Pexp_construct (lid, _) ->
      r3_check_construct ctx e.Parsetree.pexp_loc lid.Location.txt
    | _ -> ());
    super.expr self e
  in
  let structure_item self si =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let name =
            match bound_var vb.Parsetree.pvb_pat with
            | Some n -> n
            | None -> "_"
          in
          reset_item ctx name;
          self.Ast_iterator.expr self vb.Parsetree.pvb_expr;
          r4_finalize ctx;
          reset_item ctx "")
        vbs
    | _ -> super.structure_item self si
  in
  { super with expr; structure_item }

let check_structure ~file str =
  let ctx =
    {
      file;
      item = "";
      findings = [];
      begin_sites = [];
      saw_commit = false;
      saw_abort = false;
      lock_held = false;
    }
  in
  let it = make_iterator ctx in
  it.Ast_iterator.structure it str;
  List.sort F.compare ctx.findings

(* ---- R6: interface coverage (file-level, no parsing needed) ------------ *)

let interface_coverage ~files =
  let set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace set f ()) files;
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".ml" && not (Hashtbl.mem set (f ^ "i")) then
        Some
          {
            F.rule = "R6";
            rule_name = "interface-coverage";
            severity = F.Error;
            file = f;
            line = 1;
            col = 0;
            item = "";
            message = "implementation without a sibling .mli interface";
            hint =
              "write the .mli: the module's public surface must be explicit \
               (abstract types, documented vals), everything else private";
          }
      else None)
    (List.sort String.compare files)
