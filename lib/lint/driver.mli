(** Everything around the rules: file discovery, parsing, the suppression
    baseline, and rendering. Process-free (no exit, no argv) so tests can
    drive each stage on in-memory fixtures; bin/rrq_lint.ml is the thin
    CLI over this. *)

val collect_files : string list -> string list
(** Expand paths: directories are walked recursively ([_build], [_opam]
    and dotted entries skipped), files kept if [.ml]/[.mli]. Leading
    [./] is stripped so finding paths match baseline paths. *)

val parse_impl :
  file:string -> string -> (Parsetree.structure, Finding.t) result
(** Parse one implementation source with the toolchain's own grammar.
    [Error] carries the [P0 parse] finding. Exposed so tests can build
    {!Callgraph.t} values from in-memory fixtures. *)

val lint_source : file:string -> string -> Finding.t list
(** Parse one implementation source (given as a string) and run the
    syntactic rules (R1–R4) plus the flow rules (R5/R7/R8) over its
    single-file call graph. Unparseable input yields a single [P0 parse]
    finding. [file] is used for finding locations and R3's layer
    placement. *)

val lint_sources : (string * string) list -> Finding.t list
(** Like {!lint_source} over several [(file, source)] pairs that form one
    program: the per-file rules run on each, and one call graph spanning
    all of them feeds the flow rules — the entry point for
    multi-file / cross-module fixtures. *)

(** {1 Suppression baseline}

    A baseline file documents the {e intentional} violations: one entry
    per line, [RULE path item], where [item] is the enclosing top-level
    binding from the finding — stable across reformatting. Everything
    after [#] is the mandatory human rationale. Entries that no longer
    match any finding are {e stale} and fail the run: the documentation
    must be removed together with the violation it excused. *)

type baseline_entry = {
  b_rule : string;
  b_file : string;
  b_item : string;
  b_line : int;
}

val parse_baseline : string -> baseline_entry list
(** Parse baseline text. @raise Failure on a malformed line. *)

val load_baseline : string -> baseline_entry list
(** [parse_baseline] over a file's contents. *)

val apply_baseline :
  baseline_entry list ->
  Finding.t list ->
  Finding.t list * int * baseline_entry list
(** [(kept, suppressed_count, stale_entries)]. *)

(** {1 Full runs} *)

type result = {
  files : int;
  findings : Finding.t list;  (** after suppression, sorted by location *)
  suppressed : int;
  stale : baseline_entry list;
}

val ok : result -> bool
(** No findings and no stale baseline entries. *)

type analysis = {
  a_result : result;
  a_graph : Callgraph.t;  (** For [--dot] and the runtime witness. *)
  a_lock_edges : Rules.lock_edge list;  (** Static lock-order graph. *)
}

val analyze : ?baseline:baseline_entry list -> string list -> analysis
(** Collect, read and parse every source under the given paths once; run
    the syntactic rules per file, build the program-wide call graph, run
    the flow rules over it, and add R6 (interface coverage) over the full
    listing. *)

val run : ?baseline:baseline_entry list -> string list -> result
(** [analyze] keeping only the findings. *)

val render_text : result -> string
(** Findings, stale-entry complaints, the summary line, and a per-rule
    finding-count line. *)

val render_json : result -> string

val render_lock_dot : Rules.lock_edge list -> string
(** The static lock-order graph in Graphviz form ([--dot]). *)
