(** Everything around the rules: file discovery, parsing, the suppression
    baseline, and rendering. Process-free (no exit, no argv) so tests can
    drive each stage on in-memory fixtures; bin/rrq_lint.ml is the thin
    CLI over this. *)

val collect_files : string list -> string list
(** Expand paths: directories are walked recursively ([_build], [_opam]
    and dotted entries skipped), files kept if [.ml]/[.mli]. Leading
    [./] is stripped so finding paths match baseline paths. *)

val lint_source : file:string -> string -> Finding.t list
(** Parse one implementation source (given as a string) and run the AST
    rules (R1–R5). Unparseable input yields a single [P0 parse] finding.
    [file] is used for finding locations and R3's layer placement. *)

(** {1 Suppression baseline}

    A baseline file documents the {e intentional} violations: one entry
    per line, [RULE path item], where [item] is the enclosing top-level
    binding from the finding — stable across reformatting. Everything
    after [#] is the mandatory human rationale. Entries that no longer
    match any finding are {e stale} and fail the run: the documentation
    must be removed together with the violation it excused. *)

type baseline_entry = {
  b_rule : string;
  b_file : string;
  b_item : string;
  b_line : int;
}

val parse_baseline : string -> baseline_entry list
(** Parse baseline text. @raise Failure on a malformed line. *)

val load_baseline : string -> baseline_entry list
(** [parse_baseline] over a file's contents. *)

val apply_baseline :
  baseline_entry list ->
  Finding.t list ->
  Finding.t list * int * baseline_entry list
(** [(kept, suppressed_count, stale_entries)]. *)

(** {1 Full runs} *)

type result = {
  files : int;
  findings : Finding.t list;  (** after suppression, sorted by location *)
  suppressed : int;
  stale : baseline_entry list;
}

val ok : result -> bool
(** No findings and no stale baseline entries. *)

val run : ?baseline:baseline_entry list -> string list -> result
(** Collect, read, parse and check every source under the given paths;
    [.ml] files get the AST rules, and the whole listing gets R6
    (interface coverage). *)

val render_text : result -> string
val render_json : result -> string
