(** Graph algorithms under the flow-aware rules (R5/R7/R8).

    Nodes are ints — callers intern call-graph node ids or lock-class ids;
    edges come in as a successor function so the same engine serves both
    graphs. Everything here is pure and total. *)

module IntSet : Set.S with type elt = int

val reachable : succ:(int -> int list) -> int list -> (int, unit) Hashtbl.t
(** Every node reachable from the roots (roots included). *)

val reaches : succ:(int -> int list) -> from:int -> target:int -> bool

val passes_through :
  succ:(int -> int list) -> from:int -> target:int -> via:int -> bool
(** Every path from [from] to [target] passes through [via] (the
    dominance-style cut test: removing [via] disconnects them). [false]
    when [target] is not reachable at all. *)

val find_cycle : nodes:int list -> succ:(int -> int list) -> int list option
(** First cycle found, as the node sequence [n1; ...; nk] with an implied
    edge from [nk] back to [n1]. Self-loops are reported iff [succ] yields
    them. [None] iff the graph restricted to [nodes] is acyclic. *)

val fixpoint :
  nodes:int list ->
  eq:('a -> 'a -> bool) ->
  step:((int -> 'a) -> int -> 'a) ->
  init:'a ->
  int -> 'a
(** Round-robin fixpoint: recompute [step get n] for every node until
    stable (bounded at 50 rounds as a non-termination belt), then return
    the lookup function. The rules' transfer functions are monotone over
    finite sets, so the bound is never the stopping reason in practice. *)
