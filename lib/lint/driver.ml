(* File discovery, parsing, baseline application and reporting — everything
   around the rules themselves. Kept free of process concerns (no exit, no
   argv) so the test suite can drive each stage on in-memory fixtures; the
   CLI in bin/rrq_lint.ml is a thin wrapper. *)

module F = Finding

(* ---- collection ------------------------------------------------------- *)

let normalize path =
  if String.starts_with ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec collect acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && entry.[0] = '_' then acc
        else if String.length entry > 0 && entry.[0] = '.' then acc
        else collect acc (Filename.concat path entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if is_source path then path :: acc
  else acc

let collect_files paths =
  List.rev (List.fold_left (fun acc p -> collect acc (normalize p)) [] paths)

(* ---- parsing and per-file checking ------------------------------------ *)

let parse_error ~file ~line message =
  {
    F.rule = "P0";
    rule_name = "parse";
    severity = F.Error;
    file;
    line;
    col = 0;
    item = "";
    message;
    hint = "the linter parses with the toolchain's own grammar; if dune \
            builds this file, this is an rrq_lint bug";
  }

(* Only implementations are parsed: every AST rule reasons about executable
   code, and R6 needs just the file listing. *)
let lint_source ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | str -> Rules.check_structure ~file str
  | exception Syntaxerr.Error _ ->
    [ parse_error ~file ~line:lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
        "syntax error" ]
  | exception Lexer.Error (_, loc) ->
    [ parse_error ~file ~line:loc.Location.loc_start.Lexing.pos_lnum
        "lexical error" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- suppression baseline --------------------------------------------- *)

type baseline_entry = {
  b_rule : string;
  b_file : string;
  b_item : string;
  b_line : int;  (* line in the baseline file, for stale-entry messages *)
}

let entry_to_string e =
  Printf.sprintf "%s %s %s (baseline line %d)" e.b_rule e.b_file e.b_item
    e.b_line

let parse_baseline source =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ rule; file; item ] ->
        entries :=
          { b_rule = rule; b_file = normalize file; b_item = item;
            b_line = i + 1 }
          :: !entries
      | _ ->
        failwith
          (Printf.sprintf
             "baseline line %d: expected `RULE path item  # rationale'"
             (i + 1)))
    (String.split_on_char '\n' source);
  List.rev !entries

let load_baseline path = parse_baseline (read_file path)

(* Every baseline entry must still match something: a stale entry means the
   violation it documented is gone, and the documentation must go with it. *)
let apply_baseline entries findings =
  let matches e f =
    e.b_rule = f.F.rule && e.b_file = f.F.file && e.b_item = f.F.item
  in
  let kept, suppressed =
    List.partition
      (fun f -> not (List.exists (fun e -> matches e f) entries))
      findings
  in
  let stale =
    List.filter
      (fun e -> not (List.exists (fun f -> matches e f) findings))
      entries
  in
  (kept, List.length suppressed, stale)

(* ---- the full run ----------------------------------------------------- *)

type result = {
  files : int;
  findings : F.t list;  (* after suppression, sorted *)
  suppressed : int;
  stale : baseline_entry list;
}

let ok r = r.findings = [] && r.stale = []

let run ?(baseline = []) paths =
  let files = collect_files paths in
  let ast_findings =
    List.concat_map
      (fun f ->
        if Filename.check_suffix f ".ml" then lint_source ~file:f (read_file f)
        else [])
      files
  in
  let findings = ast_findings @ Rules.interface_coverage ~files in
  let kept, suppressed, stale = apply_baseline baseline findings in
  {
    files = List.length files;
    findings = List.sort F.compare kept;
    suppressed;
    stale;
  }

(* ---- reporting -------------------------------------------------------- *)

let render_text r =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (F.to_text f);
      Buffer.add_char b '\n')
    r.findings;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           "stale baseline entry: %s no longer matches any finding — remove \
            it\n"
           (entry_to_string e)))
    r.stale;
  Buffer.add_string b
    (Printf.sprintf "rrq_lint: %d file%s, %d finding%s, %d suppressed%s\n"
       r.files
       (if r.files = 1 then "" else "s")
       (List.length r.findings)
       (if List.length r.findings = 1 then "" else "s")
       r.suppressed
       (if ok r then " — clean" else ""));
  Buffer.contents b

let render_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (F.to_json f))
    r.findings;
  Buffer.add_string b "],\"stale_baseline\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"rule\":\"%s\",\"file\":\"%s\",\"item\":\"%s\"}"
           (F.json_escape e.b_rule) (F.json_escape e.b_file)
           (F.json_escape e.b_item)))
    r.stale;
  Buffer.add_string b
    (Printf.sprintf "],\"files\":%d,\"suppressed\":%d,\"ok\":%b}\n" r.files
       r.suppressed (ok r));
  Buffer.contents b
