(* File discovery, parsing, baseline application and reporting — everything
   around the rules themselves. Kept free of process concerns (no exit, no
   argv) so the test suite can drive each stage on in-memory fixtures; the
   CLI in bin/rrq_lint.ml is a thin wrapper.

   Sources are parsed once: the same ASTs feed the per-file syntactic pass
   and the whole-program call graph the flow rules (R5/R7/R8) run over. *)

module F = Finding

(* ---- collection ------------------------------------------------------- *)

let normalize path =
  if String.starts_with ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec collect acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && entry.[0] = '_' then acc
        else if String.length entry > 0 && entry.[0] = '.' then acc
        else collect acc (Filename.concat path entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if is_source path then path :: acc
  else acc

let collect_files paths =
  List.rev (List.fold_left (fun acc p -> collect acc (normalize p)) [] paths)

(* ---- parsing ----------------------------------------------------------- *)

let parse_error ~file ~line message =
  {
    F.rule = "P0";
    rule_name = "parse";
    severity = F.Error;
    file;
    line;
    col = 0;
    item = "";
    message;
    hint = "the linter parses with the toolchain's own grammar; if dune \
            builds this file, this is an rrq_lint bug";
    detail = [];
  }

(* Only implementations are parsed: every AST rule reasons about executable
   code, and R6 needs just the file listing. *)
let parse_impl ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception Syntaxerr.Error _ ->
    Error
      (parse_error ~file ~line:lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
         "syntax error")
  | exception Lexer.Error (_, loc) ->
    Error
      (parse_error ~file ~line:loc.Location.loc_start.Lexing.pos_lnum
         "lexical error")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- in-memory linting (the test suite's entry points) ----------------- *)

(* Syntactic + flow rules over a set of in-memory sources that form one
   program: per-file pass on each, call graph over all of them together. *)
let lint_sources sources =
  let parsed, errors =
    List.fold_left
      (fun (ok, err) (file, source) ->
        match parse_impl ~file source with
        | Ok str -> ((file, str) :: ok, err)
        | Error f -> (ok, f :: err))
      ([], []) sources
  in
  let parsed = List.rev parsed in
  let syntactic =
    List.concat_map (fun (file, str) -> Rules.check_structure ~file str) parsed
  in
  let flow = Rules.flow_check (Callgraph.build parsed) in
  List.sort F.compare (List.rev errors @ syntactic @ flow)

let lint_source ~file source = lint_sources [ (file, source) ]

(* ---- suppression baseline --------------------------------------------- *)

type baseline_entry = {
  b_rule : string;
  b_file : string;
  b_item : string;
  b_line : int;  (* line in the baseline file, for stale-entry messages *)
}

let entry_to_string e =
  Printf.sprintf "%s %s %s (baseline line %d)" e.b_rule e.b_file e.b_item
    e.b_line

let parse_baseline source =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ rule; file; item ] ->
        entries :=
          { b_rule = rule; b_file = normalize file; b_item = item;
            b_line = i + 1 }
          :: !entries
      | _ ->
        failwith
          (Printf.sprintf
             "baseline line %d: expected `RULE path item  # rationale'"
             (i + 1)))
    (String.split_on_char '\n' source);
  List.rev !entries

let load_baseline path = parse_baseline (read_file path)

(* Every baseline entry must still match something: a stale entry means the
   violation it documented is gone, and the documentation must go with it. *)
let apply_baseline entries findings =
  let matches e f =
    e.b_rule = f.F.rule && e.b_file = f.F.file && e.b_item = f.F.item
  in
  let kept, suppressed =
    List.partition
      (fun f -> not (List.exists (fun e -> matches e f) entries))
      findings
  in
  let stale =
    List.filter
      (fun e -> not (List.exists (fun f -> matches e f) findings))
      entries
  in
  (kept, List.length suppressed, stale)

(* ---- the full run ----------------------------------------------------- *)

type result = {
  files : int;
  findings : F.t list;  (* after suppression, sorted *)
  suppressed : int;
  stale : baseline_entry list;
}

type analysis = {
  a_result : result;
  a_graph : Callgraph.t;
  a_lock_edges : Rules.lock_edge list;
}

let ok r = r.findings = [] && r.stale = []

let analyze ?(baseline = []) paths =
  let files = collect_files paths in
  let parsed, parse_findings =
    List.fold_left
      (fun (ok_acc, err_acc) f ->
        if Filename.check_suffix f ".ml" then
          match parse_impl ~file:f (read_file f) with
          | Ok str -> ((f, str) :: ok_acc, err_acc)
          | Error e -> (ok_acc, e :: err_acc)
        else (ok_acc, err_acc))
      ([], []) files
  in
  let parsed = List.rev parsed in
  let syntactic =
    List.concat_map (fun (file, str) -> Rules.check_structure ~file str) parsed
  in
  let graph = Callgraph.build parsed in
  let flow = Rules.flow_check graph in
  let findings =
    List.rev parse_findings @ syntactic @ flow
    @ Rules.interface_coverage ~files
  in
  let kept, suppressed, stale = apply_baseline baseline findings in
  {
    a_result =
      {
        files = List.length files;
        findings = List.sort F.compare kept;
        suppressed;
        stale;
      };
    a_graph = graph;
    a_lock_edges = Rules.lock_order_edges graph;
  }

let run ?baseline paths = (analyze ?baseline paths).a_result

(* ---- reporting -------------------------------------------------------- *)

let rule_counts r =
  List.map
    (fun (id, _, _) ->
      ( id,
        List.length (List.filter (fun f -> f.F.rule = id) r.findings) ))
    Rules.all

let render_text r =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (F.to_text f);
      Buffer.add_char b '\n')
    r.findings;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           "stale baseline entry: %s no longer matches any finding — remove \
            it\n"
           (entry_to_string e)))
    r.stale;
  Buffer.add_string b
    (Printf.sprintf "rrq_lint: %d file%s, %d finding%s, %d suppressed%s\n"
       r.files
       (if r.files = 1 then "" else "s")
       (List.length r.findings)
       (if List.length r.findings = 1 then "" else "s")
       r.suppressed
       (if ok r then " — clean" else ""));
  Buffer.add_string b
    (Printf.sprintf "per rule: %s\n"
       (String.concat " "
          (List.map (fun (id, n) -> Printf.sprintf "%s %d" id n)
             (rule_counts r))));
  Buffer.contents b

let render_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (F.to_json f))
    r.findings;
  Buffer.add_string b "],\"stale_baseline\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"rule\":\"%s\",\"file\":\"%s\",\"item\":\"%s\"}"
           (F.json_escape e.b_rule) (F.json_escape e.b_file)
           (F.json_escape e.b_item)))
    r.stale;
  Buffer.add_string b "],\"rules\":{";
  List.iteri
    (fun i (id, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (F.json_escape id) n))
    (rule_counts r);
  Buffer.add_string b
    (Printf.sprintf "},\"files\":%d,\"suppressed\":%d,\"ok\":%b}\n" r.files
       r.suppressed (ok r));
  Buffer.contents b

(* The static lock-order graph in Graphviz form: one node per lock-manager
   instance, edge labels point at the witness acquisition site. *)
let render_lock_dot edges =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph lockorder {\n  node [shape=ellipse];\n";
  let classes =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> Rules.[ e.e_from; e.e_to ]) edges)
  in
  List.iter
    (fun c -> Buffer.add_string b (Printf.sprintf "  \"%s\";\n" c))
    classes;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s:%d\"];\n"
           e.Rules.e_from e.Rules.e_to e.Rules.e_file e.Rules.e_line))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
