(* Small graph engine under the flow-aware rules (R5/R7/R8): reachability,
   a dominance-style cut test, and cycle extraction with an explicit witness
   path. Nodes are ints (callers intern whatever they analyze — call-graph
   node ids, lock-class ids); edges come in as a successor function so the
   same algorithms serve both the call graph and the lock-order graph. *)

module IntSet = Set.Make (Int)

let reachable ~succ roots =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      List.iter go (succ n)
    end
  in
  List.iter go roots;
  seen

let reaches ~succ ~from ~target =
  Hashtbl.mem (reachable ~succ [ from ]) target

(* Every path from [from] to [target] passes through [via]: the cut test
   behind "every path from the reply back to the enqueue passes through a
   force". Trivially false when [target] is unreachable to begin with. *)
let passes_through ~succ ~from ~target ~via =
  if not (reaches ~succ ~from ~target) then false
  else if from = via || target = via then true
  else
    let succ' n = if n = via then [] else succ n in
    not (reaches ~succ:succ' ~from ~target)

(* First cycle found by DFS, as the node sequence [n1; ...; nk] with an
   implied edge nk -> n1 — the witness path R7 reports. Self-loops are the
   caller's choice: pass them in [succ] and they come back as [n]. *)
let find_cycle ~nodes ~succ =
  let color = Hashtbl.create 64 in
  (* 0 absent = white, 1 = on stack, 2 = done *)
  let cycle = ref None in
  let rec visit path n =
    match Hashtbl.find_opt color n with
    | Some 2 -> ()
    | Some _ ->
      if !cycle = None then begin
        (* [path] holds the stack, most recent first; the cycle is the
           prefix up to (and including) the back edge's target. *)
        let rec upto acc = function
          | [] -> acc
          | x :: rest -> if x = n then x :: acc else upto (x :: acc) rest
        in
        cycle := Some (upto [] path)
      end
    | None ->
      Hashtbl.replace color n 1;
      List.iter
        (fun m -> if !cycle = None then visit (n :: path) m)
        (succ n);
      Hashtbl.replace color n 2
  in
  List.iter (fun n -> if !cycle = None then visit [] n) nodes;
  !cycle

(* Bounded fixpoint driver for the interprocedural summaries: recompute
   every node's value from its current neighbours until nothing changes.
   The rules' transfer functions are monotone over finite sets, so this
   terminates; [max_rounds] is a belt against a non-monotone bug turning
   the lint into a spin. *)
let fixpoint ~nodes ~eq ~step ~init =
  let values = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace values n init) nodes;
  let get n = match Hashtbl.find_opt values n with Some v -> v | None -> init in
  let max_rounds = 50 in
  let rec iterate round =
    if round < max_rounds then begin
      let changed = ref false in
      List.iter
        (fun n ->
          let v' = step get n in
          if not (eq (get n) v') then begin
            Hashtbl.replace values n v';
            changed := true
          end)
        nodes;
      if !changed then iterate (round + 1)
    end
  in
  iterate 0;
  get
