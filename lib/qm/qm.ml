module Codec = Rrq_util.Codec
module Wal = Rrq_wal.Wal
module Group_commit = Rrq_wal.Group_commit
module Disk = Rrq_storage.Disk
module Lock = Rrq_txn.Lock
module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Cond = Rrq_sim.Cond

type wait = No_wait | Block | Timeout of float
type durability = Stable | Volatile | Main_memory

type attrs = {
  durability : durability;
  retry_limit : int;
  error_queue : string option;
  redirect_to : string option;
  alert_threshold : int option;
  strict_fifo : bool;
}

let default_attrs =
  {
    durability = Stable;
    retry_limit = 3;
    error_queue = None;
    redirect_to = None;
    alert_threshold = None;
    strict_fifo = false;
  }

type trigger = {
  on_queue : string;
  group_prop : string;
  complete : Element.t list -> bool;
  make : Element.t list -> (string * string * (string * string) list) list;
}

type last_op = {
  op_kind : [ `Enqueue | `Dequeue ];
  tag : string;
  op_eid : int64;
  element_copy : Element.t option;
}

type handle = { h_registrant : string; h_queue : string }

exception No_such_queue of string
exception Not_registered of string
exception Conflict of string
exception Stopped of string

(* Elements sorted by (priority desc, enq_time, eid): Map ascending order is
   dequeue order. The compare is written out monomorphically — the generic
   structural compare walks the tuple through the runtime representation on
   every Map operation, which shows up on the enqueue/dequeue hot path. *)
module Emap = Map.Make (struct
  type t = int * float * int64

  let compare (p1, t1, e1) (p2, t2, e2) =
    let c = Int.compare p1 p2 in
    if c <> 0 then c
    else
      let c = Float.compare t1 t2 in
      if c <> 0 then c else Int64.compare e1 e2
end)

(* Eid-keyed index: same reasoning, a direct int64 hash instead of the
   polymorphic one. *)
module Eidtbl = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal
  let hash e = Int64.to_int e land max_int
end)

type queue = {
  qname : string;
  mutable qattrs : attrs;
  mutable elems : Element.t Emap.t;
  nonempty : Cond.t;
  mutable n_enq : int;
  mutable n_deq : int;
  mutable alerted : bool;
  mutable stopped : bool;
  (* Disk-resident queue page of a [Stable] queue, opened lazily on its
     first committed element update. [Main_memory] and [Volatile] queues
     never have one. *)
  mutable qstore : Disk.file option;
}

type reg = {
  r_registrant : string;
  r_queue : string;
  r_stable : bool;
  mutable r_last : last_op option;
}

type redo =
  | RCreate of string * attrs
  | REnq of string * Element.t
  | RDeq of int64
  | RKill of int64
  | RBump of int64
  | RMove_error of int64 * string * string
  | RRegister of string * string * bool
  | RDeregister of string * string
  | RSet_last of string * string * last_op option
  | RIncarnation
  | RDestroy of string
  | RSet_stopped of string * bool
  | RAlter of string * attrs

type ws_op = { op_redo : redo; op_errq : string option }

type ws = { mutable ops : ws_op list (* newest first *); mutable activity : float }
type prep = { p_coord : string; p_ops : ws_op list (* oldest first *) }

type t = {
  qm_name : string;
  wal : Wal.t;
  gc : Group_commit.t;
  queues : (string, queue) Hashtbl.t;
  index : (string * Element.t) Eidtbl.t;
  regs : (string * string, reg) Hashtbl.t;
  locks : Lock.t;
  workspaces : (Txid.t, ws) Hashtbl.t;
  prepared : (Txid.t, prep) Hashtbl.t;
  triggers : (string, trigger list) Hashtbl.t;
  mutable incarnations : int;
  mutable next_eid_low : int64;
  mutable replaying : bool;
  mutable abort_cb : Txid.t -> unit;
  mutable alert_cb : string -> int -> unit;
  mutable clock : unit -> float;
  mutable internal_seq : float;
  mutable auto_n : int;
  (* Reused by the main-memory commit encode: one buffer per QM instead of
     one fresh encoder + string per record. Commit paths fill and hand it
     to [Group_commit.append_enc] without yielding in between. *)
  scratch : Codec.encoder;
  auto_origin : string; (* qm_name ^ "!auto", hoisted off the commit path *)
  (* Page image buffer for the stable queue store's read-modify-write. *)
  page : Bytes.t;
  (* One-slot workspace cache: the single open transaction of the default
     auto-commit flow bypasses the Txid-keyed [workspaces] table entirely.
     Invariant: a cached workspace is NOT in the table. *)
  mutable ws_cache : (Txid.t * ws) option;
}

(* ---- codecs -------------------------------------------------------- *)

let encode_attrs e a =
  Codec.u8 e
    (match a.durability with Stable -> 0 | Volatile -> 1 | Main_memory -> 2);
  Codec.int e a.retry_limit;
  Codec.option Codec.string e a.error_queue;
  Codec.option Codec.string e a.redirect_to;
  Codec.option Codec.int e a.alert_threshold;
  Codec.bool e a.strict_fifo

let decode_attrs d =
  let durability =
    match Codec.get_u8 d with
    | 0 -> Stable
    | 2 -> Main_memory
    | _ -> Volatile
  in
  let retry_limit = Codec.get_int d in
  let error_queue = Codec.get_option Codec.get_string d in
  let redirect_to = Codec.get_option Codec.get_string d in
  let alert_threshold = Codec.get_option Codec.get_int d in
  let strict_fifo = Codec.get_bool d in
  { durability; retry_limit; error_queue; redirect_to; alert_threshold; strict_fifo }

let encode_last_op e l =
  Codec.u8 e (match l.op_kind with `Enqueue -> 0 | `Dequeue -> 1);
  Codec.string e l.tag;
  Codec.i64 e l.op_eid;
  Codec.option Element.encode e l.element_copy

let decode_last_op d =
  let op_kind = match Codec.get_u8 d with 0 -> `Enqueue | _ -> `Dequeue in
  let tag = Codec.get_string d in
  let op_eid = Codec.get_i64 d in
  let element_copy = Codec.get_option Element.decode d in
  { op_kind; tag; op_eid; element_copy }

let encode_redo e = function
  | RCreate (q, a) ->
    Codec.u8 e 1;
    Codec.string e q;
    encode_attrs e a
  | REnq (q, el) ->
    Codec.u8 e 2;
    Codec.string e q;
    Element.encode e el
  | RDeq eid ->
    Codec.u8 e 3;
    Codec.i64 e eid
  | RKill eid ->
    Codec.u8 e 4;
    Codec.i64 e eid
  | RBump eid ->
    Codec.u8 e 5;
    Codec.i64 e eid
  | RMove_error (eid, q, code) ->
    Codec.u8 e 6;
    Codec.i64 e eid;
    Codec.string e q;
    Codec.string e code
  | RRegister (r, q, stable) ->
    Codec.u8 e 7;
    Codec.string e r;
    Codec.string e q;
    Codec.bool e stable
  | RDeregister (r, q) ->
    Codec.u8 e 8;
    Codec.string e r;
    Codec.string e q
  | RSet_last (r, q, l) ->
    Codec.u8 e 9;
    Codec.string e r;
    Codec.string e q;
    Codec.option encode_last_op e l
  | RIncarnation -> Codec.u8 e 10
  | RDestroy q ->
    Codec.u8 e 11;
    Codec.string e q
  | RSet_stopped (q, flag) ->
    Codec.u8 e 12;
    Codec.string e q;
    Codec.bool e flag
  | RAlter (q, a) ->
    Codec.u8 e 13;
    Codec.string e q;
    encode_attrs e a

let decode_redo d =
  match Codec.get_u8 d with
  | 1 ->
    let q = Codec.get_string d in
    let a = decode_attrs d in
    RCreate (q, a)
  | 2 ->
    let q = Codec.get_string d in
    let el = Element.decode d in
    REnq (q, el)
  | 3 -> RDeq (Codec.get_i64 d)
  | 4 -> RKill (Codec.get_i64 d)
  | 5 -> RBump (Codec.get_i64 d)
  | 6 ->
    let eid = Codec.get_i64 d in
    let q = Codec.get_string d in
    let code = Codec.get_string d in
    RMove_error (eid, q, code)
  | 7 ->
    let r = Codec.get_string d in
    let q = Codec.get_string d in
    let stable = Codec.get_bool d in
    RRegister (r, q, stable)
  | 8 ->
    let r = Codec.get_string d in
    let q = Codec.get_string d in
    RDeregister (r, q)
  | 9 ->
    let r = Codec.get_string d in
    let q = Codec.get_string d in
    let l = Codec.get_option decode_last_op d in
    RSet_last (r, q, l)
  | 10 -> RIncarnation
  | 11 -> RDestroy (Codec.get_string d)
  | 12 ->
    let q = Codec.get_string d in
    let flag = Codec.get_bool d in
    RSet_stopped (q, flag)
  | 13 ->
    let q = Codec.get_string d in
    let a = decode_attrs d in
    RAlter (q, a)
  | n -> raise (Codec.Decode_error (Printf.sprintf "qm: bad redo tag %d" n))

let encode_ws_op e op =
  Codec.option Codec.string e op.op_errq;
  encode_redo e op.op_redo

let decode_ws_op d =
  let op_errq = Codec.get_option Codec.get_string d in
  let op_redo = decode_redo d in
  { op_redo; op_errq }

(* Log record kinds (framing around redo lists). *)
let k_one_phase = 1
let k_prepare = 2
let k_commit = 3
let k_abort = 4
let k_now = 5

let encode_record kind txid_opt coordinator ops =
  let e = Codec.encoder () in
  Codec.u8 e kind;
  Codec.option Txid.encode e txid_opt;
  Codec.string e coordinator;
  Codec.list encode_ws_op e ops;
  Codec.to_string e

let decode_record payload =
  let d = Codec.decoder payload in
  let kind = Codec.get_u8 d in
  let txid = Codec.get_option Txid.decode d in
  let coordinator = Codec.get_string d in
  let ops = Codec.get_list decode_ws_op d in
  (kind, txid, coordinator, ops)

(* ---- state helpers -------------------------------------------------- *)

let get_queue t qn =
  match Hashtbl.find_opt t.queues qn with
  | Some q -> q
  | None -> raise (No_such_queue qn)

let make_queue qname qattrs =
  {
    qname;
    qattrs;
    elems = Emap.empty;
    nonempty = Cond.create ();
    n_enq = 0;
    n_deq = 0;
    alerted = false;
    stopped = false;
    qstore = None;
  }

let default_error_queue q =
  match q.qattrs.error_queue with Some n -> n | None -> q.qname ^ ".err"

let ensure_queue t qn attrs =
  if not (Hashtbl.mem t.queues qn) then
    Hashtbl.replace t.queues qn (make_queue qn attrs)

let queue_depth q = Emap.cardinal q.elems

let check_alert t q =
  if not t.replaying then
    match q.qattrs.alert_threshold with
    | Some thr ->
      let d = queue_depth q in
      if d >= thr && not q.alerted then begin
        q.alerted <- true;
        t.alert_cb q.qname d
      end
      else if d < thr then q.alerted <- false
    | None -> ()

let remove_element t eid =
  match Eidtbl.find_opt t.index eid with
  | None -> None
  | Some (qn, el) ->
    let q = get_queue t qn in
    q.elems <- Emap.remove (Element.key el) q.elems;
    Eidtbl.remove t.index eid;
    (match q.qattrs.alert_threshold with
    | Some thr when queue_depth q < thr -> q.alerted <- false
    | _ -> ());
    if Rrq_obs.enabled () then
      Rrq_obs.Metrics.set_gauge
        (Printf.sprintf "qm.depth:%s/%s" t.qm_name q.qname)
        (float_of_int (queue_depth q));
    Some (q, el)

(* Insert, following redirection, then fire any completed trigger group. *)
let rec insert_element t qn el =
  let q = get_queue t qn in
  match q.qattrs.redirect_to with
  | Some target when target <> qn && Hashtbl.mem t.queues target ->
    insert_element t target el
  | _ ->
    q.elems <- Emap.add (Element.key el) el q.elems;
    Eidtbl.replace t.index el.Element.eid (q.qname, el);
    if not t.replaying then q.n_enq <- q.n_enq + 1;
    if Rrq_obs.enabled () then
      Rrq_obs.Metrics.set_gauge
        (Printf.sprintf "qm.depth:%s/%s" t.qm_name q.qname)
        (float_of_int (queue_depth q));
    Cond.signal q.nonempty;
    check_alert t q;
    check_triggers t q el

and check_triggers t q el =
  match Hashtbl.find_opt t.triggers q.qname with
  | None -> ()
  | Some trigs ->
    List.iter
      (fun trig ->
        match Element.prop el trig.group_prop with
        | None -> ()
        | Some gv ->
          let members =
            Emap.fold
              (fun _ m acc ->
                if m.Element.status = Element.Ready
                   && Element.prop m trig.group_prop = Some gv
                then m :: acc
                else acc)
              q.elems []
            |> List.rev
          in
          if members <> [] && trig.complete members then begin
            let outputs = trig.make members in
            List.iter
              (fun m -> ignore (remove_element t m.Element.eid))
              members;
            List.iter
              (fun (target, payload, props) ->
                let eid = fresh_eid t in
                let out =
                  Element.make ~eid ~payload ~props ~priority:0
                    ~enq_time:(now t)
                in
                insert_element t target out)
              outputs
          end)
      trigs

and fresh_eid t =
  t.next_eid_low <- Int64.add t.next_eid_low 1L;
  Int64.add (Int64.mul (Int64.of_int t.incarnations) 0x100000000L) t.next_eid_low

and now t =
  t.internal_seq <- t.internal_seq +. 1.0;
  t.clock () +. (t.internal_seq *. 1e-9)

(* Trigger outputs allocate eids at apply time. During replay this re-runs
   with the same incarnation counter state as the original run *only if*
   the original run allocated them in the same order — which holds because
   apply order equals log order. Post-crash incarnation bumps keep fresh
   eids unique anyway. *)

let apply t op =
  (* Operation counters live here (not in the workspace path) so they count
     committed effects only, and the [replaying] guard keeps recovery from
     double-counting a run's history. *)
  let live = not t.replaying && Rrq_obs.enabled () in
  match op with
  | RCreate (qn, a) -> ensure_queue t qn a
  | REnq (qn, el) ->
    if live then Rrq_obs.Metrics.inc ("qm.enqueues:" ^ t.qm_name);
    insert_element t qn el
  | RDeq eid -> begin
    match remove_element t eid with
    | Some (q, el) ->
      if not t.replaying then q.n_deq <- q.n_deq + 1;
      if live then begin
        Rrq_obs.Metrics.inc ("qm.dequeues:" ^ t.qm_name);
        Rrq_obs.Metrics.observe
          (Printf.sprintf "qm.wait:%s/%s" t.qm_name q.qname)
          (t.clock () -. el.Element.enq_time)
      end
    | None -> ()
  end
  | RKill eid ->
    if live then Rrq_obs.Metrics.inc ("qm.kills:" ^ t.qm_name);
    ignore (remove_element t eid)
  | RBump eid -> begin
    match Eidtbl.find_opt t.index eid with
    | Some (_, el) ->
      el.Element.delivery_count <- el.Element.delivery_count + 1;
      if live then begin
        Rrq_obs.Metrics.inc ("qm.bumps:" ^ t.qm_name);
        Rrq_obs.Metrics.observe
          ("qm.abort_count:" ^ t.qm_name)
          (float_of_int el.Element.delivery_count)
      end
    | None -> ()
  end
  | RMove_error (eid, errq, code) -> begin
    match remove_element t eid with
    | None -> ()
    | Some (_, el) ->
      el.Element.abort_code <- Some code;
      el.Element.status <- Element.Ready;
      if live then begin
        Rrq_obs.Metrics.inc ("qm.spills:" ^ t.qm_name);
        Rrq_obs.Trace.emit
          (Rrq_obs.Event.Error_spill
             { qm = t.qm_name; error_queue = errq; eid; code })
      end;
      ensure_queue t errq
        { default_attrs with retry_limit = max_int; error_queue = Some errq };
      insert_element t errq el
  end
  | RRegister (r, qn, stable) ->
    if not (Hashtbl.mem t.regs (r, qn)) then
      Hashtbl.replace t.regs (r, qn)
        { r_registrant = r; r_queue = qn; r_stable = stable; r_last = None }
  | RDeregister (r, qn) -> Hashtbl.remove t.regs (r, qn)
  | RSet_last (r, qn, l) -> begin
    match Hashtbl.find_opt t.regs (r, qn) with
    | Some reg -> reg.r_last <- l
    | None -> ()
  end
  | RIncarnation ->
    t.incarnations <- t.incarnations + 1;
    t.next_eid_low <- 0L
  | RDestroy qn -> begin
    match Hashtbl.find_opt t.queues qn with
    | None -> ()
    | Some q ->
      Emap.iter (fun _ el -> Eidtbl.remove t.index el.Element.eid) q.elems;
      Hashtbl.remove t.queues qn;
      let doomed =
        Hashtbl.fold
          (fun key reg acc -> if reg.r_queue = qn then key :: acc else acc)
          t.regs []
      in
      List.iter (Hashtbl.remove t.regs) doomed
  end
  | RSet_stopped (qn, flag) -> begin
    match Hashtbl.find_opt t.queues qn with
    | Some q ->
      q.stopped <- flag;
      if not flag then Cond.broadcast q.nonempty
    | None -> ()
  end
  | RAlter (qn, a) -> begin
    match Hashtbl.find_opt t.queues qn with
    | Some q ->
      q.qattrs <- a;
      check_alert t q
    | None -> ()
  end

(* A redo is logged iff every queue it touches is recoverable (stable or
   main-memory); registration records are always logged. Volatile-queue
   updates are applied but never logged — they cost no forced writes and
   evaporate on crash. Main-memory queues are logged like stable ones (the
   redo record IS their durability), they just take the cheaper encode
   route at commit. *)
let redo_is_stable t = function
  | RCreate (_, _) -> true (* DDL is durable even for volatile queues *)
  | REnq (qn, _) -> begin
    match Hashtbl.find_opt t.queues qn with
    | Some q -> q.qattrs.durability <> Volatile
    | None -> true
  end
  | RDeq eid | RKill eid | RBump eid | RMove_error (eid, _, _) -> begin
    match Eidtbl.find_opt t.index eid with
    | Some (qn, _) -> (get_queue t qn).qattrs.durability <> Volatile
    | None -> true
  end
  | RRegister _ | RDeregister _ | RSet_last _ | RIncarnation -> true
  | RDestroy _ | RSet_stopped _ | RAlter _ -> true

(* One classification pass per commit, resolving each op's queue durability
   exactly once (this replaced a [List.filter] + [List.for_all] pair that
   re-resolved every op). Returns:
   - [any_volatile]: some op touches a volatile queue, so the logged set is
     a strict subset of [ops] (recomputed with {!redo_is_stable} — rare);
   - [all_mm]: every op touches a main-memory queue, making the record
     eligible for the zero-copy scratch encode;
   - [pages]: the element updates on [Stable] queues that owe an in-place
     queue-page write, with their queue resolved before any effect is
     applied (a dequeue's index entry is gone after apply). *)
let classify_ops t ops =
  let any_volatile = ref false in
  let all_mm = ref (ops <> []) in
  let pages = ref [] in
  let on_queue qn op =
    match Hashtbl.find_opt t.queues qn with
    | None -> all_mm := false
    | Some q -> begin
      match q.qattrs.durability with
      | Main_memory -> ()
      | Volatile ->
        any_volatile := true;
        all_mm := false
      | Stable ->
        all_mm := false;
        pages := (qn, op.op_redo) :: !pages
    end
  in
  List.iter
    (fun op ->
      match op.op_redo with
      | REnq (qn, _) -> on_queue qn op
      | RDeq eid | RKill eid | RBump eid | RMove_error (eid, _, _) -> begin
        match Eidtbl.find_opt t.index eid with
        | Some (qn, _) -> on_queue qn op
        | None -> all_mm := false
      end
      | RCreate _ | RRegister _ | RDeregister _ | RSet_last _ | RIncarnation
      | RDestroy _ | RSet_stopped _ | RAlter _ -> all_mm := false)
    ops;
  (!any_volatile, !all_mm, List.rev !pages)

(* Disk-resident queue modeling (paper secs. 2 and 10): every committed
   element update on a [Stable] queue pays a read-modify-write of the
   queue's 4 KiB page — read the page image back, splice the update in,
   write the full page. This is the stable-storage traffic a conventional
   disk-resident queue does on top of its redo record, and exactly what
   [Main_memory] queues skip: their only stable write is the redo record
   itself, and recovery rebuilds their state from the redo scan. The page
   store is overwrite-in-place (bounded, one page per queue), never synced
   as a log force, and ignored by recovery — the WAL stays authoritative. *)
let page_size = 4096

let qstore_file t qn q =
  match q.qstore with
  | Some f -> f
  | None ->
    let f = Disk.open_file (Wal.disk t.wal) (t.qm_name ^ ".qstore." ^ qn) in
    q.qstore <- Some f;
    f

let store_write t pages =
  List.iter
    (fun (qn, redo) ->
      match Hashtbl.find_opt t.queues qn with
      | None -> () (* queue destroyed in the same transaction *)
      | Some q ->
        let f = qstore_file t qn q in
        let e = t.scratch in
        Codec.reset e;
        (match redo with
        | REnq (_, el) ->
          Codec.u8 e 1;
          Element.encode e el
        | RDeq eid ->
          Codec.u8 e 2;
          Codec.i64 e eid
        | RKill eid ->
          Codec.u8 e 3;
          Codec.i64 e eid
        | RBump eid ->
          Codec.u8 e 4;
          Codec.i64 e eid
        | RMove_error (eid, _, _) ->
          Codec.u8 e 5;
          Codec.i64 e eid
        | RCreate _ | RRegister _ | RDeregister _ | RSet_last _
        | RIncarnation | RDestroy _ | RSet_stopped _ | RAlter _ -> ());
        (* read back ... *)
        Disk.read_page f t.page;
        (* ... modify in place ... *)
        let len = min (Codec.length e) page_size in
        Bytes.blit (Codec.bytes e) 0 t.page 0 len;
        (* ... write the whole page *)
        Disk.write_page f t.page)
    pages

(* Append one commit-point record, choosing the encode route. [all_mm]
   records (only main-memory queues touched) are encoded into the QM's
   scratch buffer and framed straight into the device's pending bytes — no
   fresh encoder, no [to_string], no frame copy (this is what "no stable
   read-back or copy on the hot path" buys in B1). Everything else keeps
   the historical allocate-and-copy route. Both routes produce the same
   record bytes, so replay cannot tell them apart. *)
let append_record t kind txid_opt coordinator ops ~all_mm =
  if all_mm then begin
    let e = t.scratch in
    Codec.reset e;
    Codec.u8 e kind;
    Codec.option Txid.encode e txid_opt;
    Codec.string e coordinator;
    Codec.list encode_ws_op e ops;
    Group_commit.append_enc t.gc e
  end
  else Group_commit.append t.gc (encode_record kind txid_opt coordinator ops)

(* ---- snapshot / recovery ------------------------------------------- *)

let encode_snapshot t =
  let e = Codec.encoder () in
  Codec.int e t.incarnations;
  (* recoverable queues only: volatile contents die with the process
     anyway. Main-memory queues must be included — the checkpoint deletes
     the segments holding their redo records, so the snapshot is the
     materialized prefix of exactly the log they recover from. *)
  let stable_queues =
    Hashtbl.fold
      (fun _ q acc -> if q.qattrs.durability <> Volatile then q :: acc else acc)
      t.queues []
    |> List.sort (fun a b -> compare a.qname b.qname)
  in
  Codec.int e (List.length stable_queues);
  List.iter
    (fun q ->
      Codec.string e q.qname;
      encode_attrs e q.qattrs;
      Codec.int e (Emap.cardinal q.elems);
      Emap.iter (fun _ el -> Element.encode e el) q.elems)
    stable_queues;
  let stopped_queues =
    Hashtbl.fold (fun qn q acc -> if q.stopped then qn :: acc else acc) t.queues []
  in
  Codec.list Codec.string e (List.sort compare stopped_queues);
  Codec.int e (Hashtbl.length t.regs);
  Hashtbl.iter
    (fun (r, qn) reg ->
      Codec.string e r;
      Codec.string e qn;
      Codec.bool e reg.r_stable;
      Codec.option encode_last_op e reg.r_last)
    t.regs;
  Codec.int e (Hashtbl.length t.prepared);
  Hashtbl.iter
    (fun id p ->
      Txid.encode e id;
      Codec.string e p.p_coord;
      Codec.list encode_ws_op e
        (List.filter (fun op -> redo_is_stable t op.op_redo) p.p_ops))
    t.prepared;
  Codec.to_string e

let restore_snapshot t snap =
  let d = Codec.decoder snap in
  t.incarnations <- Codec.get_int d;
  let nq = Codec.get_int d in
  for _ = 1 to nq do
    let qn = Codec.get_string d in
    let a = decode_attrs d in
    let q = make_queue qn a in
    Hashtbl.replace t.queues qn q;
    let ne = Codec.get_int d in
    for _ = 1 to ne do
      let el = Element.decode d in
      q.elems <- Emap.add (Element.key el) el q.elems;
      Eidtbl.replace t.index el.Element.eid (qn, el)
    done
  done;
  let stopped_queues = Codec.get_list Codec.get_string d in
  List.iter
    (fun qn ->
      match Hashtbl.find_opt t.queues qn with
      | Some q -> q.stopped <- true
      | None -> ())
    stopped_queues;
  let nr = Codec.get_int d in
  for _ = 1 to nr do
    let r = Codec.get_string d in
    let qn = Codec.get_string d in
    let stable = Codec.get_bool d in
    let last = Codec.get_option decode_last_op d in
    Hashtbl.replace t.regs (r, qn)
      { r_registrant = r; r_queue = qn; r_stable = stable; r_last = last }
  done;
  let np = Codec.get_int d in
  for _ = 1 to np do
    let id = Txid.decode d in
    let coord = Codec.get_string d in
    let ops = Codec.get_list decode_ws_op d in
    Hashtbl.replace t.prepared id { p_coord = coord; p_ops = ops }
  done

let replay_record t payload =
  let kind, txid, coordinator, ops = decode_record payload in
  if kind = k_one_phase || kind = k_now then
    List.iter (fun op -> apply t op.op_redo) ops
  else if kind = k_prepare then begin
    match txid with
    | Some id -> Hashtbl.replace t.prepared id { p_coord = coordinator; p_ops = ops }
    | None -> failwith "qm: prepare record without txid"
  end
  else if kind = k_commit then begin
    match txid with
    | Some id -> begin
      match Hashtbl.find_opt t.prepared id with
      | Some p ->
        List.iter (fun op -> apply t op.op_redo) p.p_ops;
        Hashtbl.remove t.prepared id
      | None -> ()
    end
    | None -> failwith "qm: commit record without txid"
  end
  else if kind = k_abort then begin
    match txid with
    | Some id -> Hashtbl.remove t.prepared id
    | None -> failwith "qm: abort record without txid"
  end
  else failwith (Printf.sprintf "qm: unknown record kind %d" kind)

(* Re-assert the volatile exclusions of in-doubt transactions: dequeued
   elements stay locked, strict-FIFO queue locks are re-taken. *)
let relock_prepared t =
  Hashtbl.iter
    (fun id p ->
      List.iter
        (fun op ->
          match op.op_redo with
          | RDeq eid -> begin
            match Eidtbl.find_opt t.index eid with
            | Some (qn, el) ->
              el.Element.status <- Element.Deq_pending id;
              let q = get_queue t qn in
              if q.qattrs.strict_fifo then
                Lock.acquire t.locks id ~key:("q:" ^ qn) Lock.X
            | None -> ()
          end
          | RCreate _ | REnq _ | RKill _ | RBump _ | RMove_error _
          | RRegister _ | RDeregister _ | RSet_last _ | RIncarnation
          | RDestroy _ | RSet_stopped _ | RAlter _ -> ())
        p.p_ops)
    t.prepared

let log_now t ops =
  let any_volatile, all_mm, pages = classify_ops t ops in
  let stable =
    if any_volatile then List.filter (fun op -> redo_is_stable t op.op_redo) ops
    else ops
  in
  (* Group-commit discipline: append, apply in memory without yielding, then
     force (which may park the fiber). *)
  if stable <> [] then append_record t k_now None "" stable ~all_mm;
  List.iter (fun op -> apply t op.op_redo) ops;
  if stable <> [] then begin
    Group_commit.force t.gc;
    (* In-place page updates follow the log force (write-ahead rule). *)
    if pages <> [] then store_write t pages
  end

let open_qm ?commit_policy ?(triggers = []) disk ~name:qm_name =
  let wal, recovered = Wal.open_log disk ~name:(qm_name ^ ".qmlog") in
  let gc = Group_commit.create ?policy:commit_policy wal in
  let t =
    {
      qm_name;
      wal;
      gc;
      queues = Hashtbl.create 16;
      index = Eidtbl.create 256;
      regs = Hashtbl.create 32;
      locks = Lock.create ~name:"qm" ();
      workspaces = Hashtbl.create 16;
      prepared = Hashtbl.create 8;
      triggers = Hashtbl.create 4;
      incarnations = 0;
      next_eid_low = 0L;
      replaying = true;
      abort_cb = (fun _ -> ());
      alert_cb = (fun _ _ -> ());
      clock = (fun () -> 0.0);
      internal_seq = 0.0;
      auto_n = 0;
      scratch = Codec.encoder ();
      auto_origin = qm_name ^ "!auto";
      page = Bytes.make page_size '\000';
      ws_cache = None;
    }
  in
  List.iter
    (fun trig ->
      let cur =
        match Hashtbl.find_opt t.triggers trig.on_queue with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace t.triggers trig.on_queue (cur @ [ trig ]))
    triggers;
  (match recovered.Wal.snapshot with
  | Some snap -> restore_snapshot t snap
  | None -> ());
  List.iter (replay_record t) recovered.Wal.records;
  relock_prepared t;
  t.replaying <- false;
  (* Bump the incarnation durably so eids and auto-txids never repeat. *)
  log_now t [ { op_redo = RIncarnation; op_errq = None } ];
  t

let name t = t.qm_name

(* ---- DDL ------------------------------------------------------------ *)

let create_queue t ?(attrs = default_attrs) qn =
  if not (Hashtbl.mem t.queues qn) then
    log_now t [ { op_redo = RCreate (qn, attrs); op_errq = None } ]

let alter_queue t qn attrs =
  let q = get_queue t qn in
  if q.qattrs.durability <> attrs.durability then
    invalid_arg "Qm.alter_queue: durability class is immutable";
  log_now t [ { op_redo = RAlter (qn, attrs); op_errq = None } ]

let destroy_queue t qn =
  ignore (get_queue t qn);
  log_now t [ { op_redo = RDestroy qn; op_errq = None } ]

let stop_queue t qn =
  ignore (get_queue t qn);
  log_now t [ { op_redo = RSet_stopped (qn, true); op_errq = None } ]

let start_queue t qn =
  ignore (get_queue t qn);
  log_now t [ { op_redo = RSet_stopped (qn, false); op_errq = None } ]

let queue_stopped t qn = (get_queue t qn).stopped

let queue_exists t qn = Hashtbl.mem t.queues qn

let queue_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.queues [] |> List.sort compare

let depth t qn = queue_depth (get_queue t qn)

(* ---- registration ---------------------------------------------------- *)

let register t ~queue ~registrant ~stable =
  if not (Hashtbl.mem t.queues queue) then raise (No_such_queue queue);
  let h = { h_registrant = registrant; h_queue = queue } in
  match Hashtbl.find_opt t.regs (registrant, queue) with
  | Some reg -> (h, if reg.r_stable then reg.r_last else None)
  | None ->
    log_now t [ { op_redo = RRegister (registrant, queue, stable); op_errq = None } ];
    (h, None)

let reg_of t h =
  match Hashtbl.find_opt t.regs (h.h_registrant, h.h_queue) with
  | Some reg -> reg
  | None ->
    raise (Not_registered (Printf.sprintf "%s@%s" h.h_registrant h.h_queue))

(* Read-only: no registration is created and nothing is logged, so a
   peer repository can be probed for duplicate-suppression evidence
   (shard registration pull) without perturbing its durable state. *)
let lookup_registration t ~queue ~registrant =
  match Hashtbl.find_opt t.regs (registrant, queue) with
  | Some reg when reg.r_stable -> reg.r_last
  | _ -> None

let deregister t h =
  ignore (reg_of t h);
  log_now t
    [ { op_redo = RDeregister (h.h_registrant, h.h_queue); op_errq = None } ]

let handle_queue h = h.h_queue
let handle_registrant h = h.h_registrant

(* ---- workspaces ------------------------------------------------------ *)

(* All workspace access goes through these: the one-slot [ws_cache] holds
   the most recent transaction's workspace OUTSIDE the table, so the
   common one-open-transaction flow (auto-commit) never pays a Txid-keyed
   hash. A second concurrent transaction spills the cached one back into
   the table. *)
let ws_find t id =
  match t.ws_cache with
  | Some (cid, ws) when Txid.equal cid id -> Some ws
  | _ -> Hashtbl.find_opt t.workspaces id

let ws_mem t id =
  match ws_find t id with Some _ -> true | None -> false

let ws_remove t id =
  match t.ws_cache with
  | Some (cid, _) when Txid.equal cid id -> t.ws_cache <- None
  | _ -> Hashtbl.remove t.workspaces id

let ws_fold t f acc =
  let acc = Hashtbl.fold f t.workspaces acc in
  match t.ws_cache with Some (id, ws) -> f id ws acc | None -> acc

let ws_of t id =
  match ws_find t id with
  | Some ws ->
    ws.activity <- t.clock ();
    ws
  | None ->
    let ws = { ops = []; activity = t.clock () } in
    (match t.ws_cache with
    | Some (cid, cws) -> Hashtbl.replace t.workspaces cid cws
    | None -> ());
    t.ws_cache <- Some (id, ws);
    ws

let add_op t id op =
  let ws = ws_of t id in
  ws.ops <- op :: ws.ops

(* ---- data manipulation ----------------------------------------------- *)

let enqueue t id h ?tag ?(props = []) ?(priority = 0) payload =
  let reg = reg_of t h in
  if (get_queue t h.h_queue).stopped then raise (Stopped h.h_queue);
  let eid = fresh_eid t in
  let el = Element.make ~eid ~payload ~props ~priority ~enq_time:(now t) in
  add_op t id { op_redo = REnq (h.h_queue, el); op_errq = None };
  (match tag with
  | Some tag when reg.r_stable ->
    add_op t id
      {
        op_redo =
          RSet_last
            ( h.h_registrant,
              h.h_queue,
              Some { op_kind = `Enqueue; tag; op_eid = eid; element_copy = Some el }
            );
        op_errq = None;
      }
  | _ -> ());
  if Rrq_obs.enabled () then
    Rrq_obs.Trace.emit
      (Rrq_obs.Event.Enqueue
         { qm = t.qm_name; queue = h.h_queue; eid; txid = Txid.to_string id });
  eid

let select_ready ?rank q filter =
  match rank with
  | None ->
    (* queue order: first ready match wins *)
    let found = ref None in
    (try
       Emap.iter
         (fun _ el ->
           if el.Element.status = Element.Ready && Filter.matches filter el
           then begin
             found := Some el;
             raise Exit
           end)
         q.elems
     with Exit -> ());
    !found
  | Some rank ->
    (* content-based scheduling: highest rank among ready matches (paper
       11: "highest dollar amount first") *)
    Emap.fold
      (fun _ el best ->
        if el.Element.status = Element.Ready && Filter.matches filter el then begin
          match best with
          | Some (b, _) when b >= rank el -> best
          | _ -> Some (rank el, el)
        end
        else best)
      q.elems None
    |> Option.map snd

(* [reg] is the caller's already-resolved registration for [h] — dequeue
   validates it up front, so resolving it again here would be a second
   hash of the same key on every dequeue. *)
let take t id h ~reg ?tag ?errq q el =
  el.Element.status <- Element.Deq_pending id;
  add_op t id { op_redo = RDeq el.Element.eid; op_errq = errq };
  (match tag with
  | Some tag when reg.r_stable ->
    add_op t id
      {
        op_redo =
          RSet_last
            ( h.h_registrant,
              h.h_queue,
              Some
                {
                  op_kind = `Dequeue;
                  tag;
                  op_eid = el.Element.eid;
                  element_copy = Some el;
                } );
        op_errq = None;
      }
  | _ -> ());
  ignore q;
  if Rrq_obs.enabled () then
    Rrq_obs.Trace.emit
      (Rrq_obs.Event.Dequeue
         {
           qm = t.qm_name;
           queue = h.h_queue;
           eid = el.Element.eid;
           txid = Txid.to_string id;
         });
  el

let with_lock_conflicts f =
  try f () with
  | Lock.Deadlock msg -> raise (Conflict ("deadlock: " ^ msg))
  | Lock.Cancelled -> raise (Conflict "cancelled")

let dequeue t id h ?tag ?(filter = Filter.True) ?rank ?error_queue wait =
  let reg = reg_of t h in
  let q = get_queue t h.h_queue in
  if q.stopped then raise (Stopped h.h_queue);
  if q.qattrs.strict_fifo then
    with_lock_conflicts (fun () ->
        Lock.acquire t.locks id ~key:("q:" ^ q.qname) Lock.X);
  let deadline =
    match wait with Timeout d -> Some (t.clock () +. d) | No_wait | Block -> None
  in
  let rec attempt () =
    match select_ready ?rank q filter with
    | Some el -> Some (take t id h ~reg ?tag ?errq:error_queue q el)
    | None -> begin
      match wait with
      | No_wait -> None
      | Block ->
        Cond.wait q.nonempty;
        attempt ()
      | Timeout _ -> begin
        match deadline with
        | Some dl when t.clock () < dl ->
          if Cond.wait_timeout q.nonempty (dl -. t.clock ()) then attempt ()
          else None
        | _ -> None
      end
    end
  in
  attempt ()

let dequeue_set t id hs ?tag ?(filter = Filter.True) wait =
  let queues =
    List.map (fun h -> (h, reg_of t h, get_queue t h.h_queue)) hs
  in
  let deadline =
    match wait with Timeout d -> Some (t.clock () +. d) | No_wait | Block -> None
  in
  let rec attempt () =
    let best =
      List.fold_left
        (fun acc (h, reg, q) ->
          match select_ready q filter with
          | None -> acc
          | Some el -> begin
            match acc with
            | Some (_, _, _, best_el)
              when Element.key best_el <= Element.key el -> acc
            | _ -> Some (h, reg, q, el)
          end)
        None queues
    in
    match best with
    | Some (h, reg, q, el) -> Some (h, take t id h ~reg ?tag q el)
    | None -> begin
      let conds = List.map (fun (_, _, q) -> q.nonempty) queues in
      match wait with
      | No_wait -> None
      | Block ->
        ignore (Cond.wait_any conds);
        attempt ()
      | Timeout _ -> begin
        match deadline with
        | Some dl when t.clock () < dl ->
          if Cond.wait_any ~timeout:(dl -. t.clock ()) conds then attempt ()
          else attempt () (* deadline re-checked at loop head *)
        | _ -> None
      end
    end
  in
  attempt ()

let read t eid =
  match Eidtbl.find_opt t.index eid with
  | Some (qn, el) ->
    if Rrq_obs.enabled () then
      Rrq_obs.Trace.emit
        (Rrq_obs.Event.Read { qm = t.qm_name; queue = qn; found = true });
    Some el
  | None ->
    if Rrq_obs.enabled () then
      Rrq_obs.Trace.emit
        (Rrq_obs.Event.Read { qm = t.qm_name; queue = ""; found = false });
    None

let read_last t h =
  match (reg_of t h).r_last with
  | Some { element_copy; _ } -> element_copy
  | None -> None

(* Refresh per-queue depth and head-of-line age gauges; called periodically
   (the site janitor) and before metric dumps, since age only decays as the
   clock advances, not on queue activity. *)
let observe_queues t =
  if Rrq_obs.enabled () then
    Hashtbl.iter
      (fun qn q ->
        Rrq_obs.Metrics.set_gauge
          (Printf.sprintf "qm.depth:%s/%s" t.qm_name qn)
          (float_of_int (queue_depth q));
        let age =
          match Emap.min_binding_opt q.elems with
          | Some (_, el) -> t.clock () -. el.Element.enq_time
          | None -> 0.0
        in
        Rrq_obs.Metrics.set_gauge (Printf.sprintf "qm.age:%s/%s" t.qm_name qn) age)
      t.queues

(* ---- commitment ------------------------------------------------------ *)

let release_locks t id =
  Lock.cancel_waits t.locks id;
  Lock.release_all t.locks id

let commit_one_phase t id =
  match ws_find t id with
  | None -> release_locks t id
  | Some ws ->
    let ops = List.rev ws.ops in
    ws_remove t id;
    let any_volatile, all_mm, pages = classify_ops t ops in
    let stable =
      if any_volatile then
        List.filter (fun op -> redo_is_stable t op.op_redo) ops
      else ops
    in
    if stable <> [] then append_record t k_one_phase (Some id) "" stable ~all_mm;
    List.iter (fun op -> apply t op.op_redo) ops;
    if stable <> [] then begin
      Group_commit.force t.gc;
      if pages <> [] then store_write t pages
    end;
    release_locks t id

let prepare t id ~coordinator =
  match ws_find t id with
  | None -> true
  | Some ws ->
    let ops = List.rev ws.ops in
    ws_remove t id;
    let any_volatile, all_mm, _pages = classify_ops t ops in
    let stable =
      if any_volatile then
        List.filter (fun op -> redo_is_stable t op.op_redo) ops
      else ops
    in
    append_record t k_prepare (Some id) coordinator stable ~all_mm;
    Hashtbl.replace t.prepared id { p_coord = coordinator; p_ops = ops };
    Group_commit.force t.gc;
    true

let commit_prepared t id =
  match Hashtbl.find_opt t.prepared id with
  | None -> release_locks t id
  | Some p ->
    (* Page targets must be resolved before apply removes dequeued
       elements from the index. *)
    let _, _, pages = classify_ops t p.p_ops in
    Group_commit.append t.gc (encode_record k_commit (Some id) "" []);
    List.iter (fun op -> apply t op.op_redo) p.p_ops;
    Hashtbl.remove t.prepared id;
    Group_commit.force t.gc;
    if pages <> [] then store_write t pages;
    release_locks t id

(* Returning a dequeued element to its queue after an abort: bump its retry
   count durably; if the limit is hit, move it to the error queue instead
   (§4.2). *)
let restore_element t op =
  match op.op_redo with
  | RDeq eid -> begin
    match Eidtbl.find_opt t.index eid with
    | None -> []
    | Some (qn, el) ->
      let q = get_queue t qn in
      el.Element.status <- Element.Ready;
      Cond.signal q.nonempty;
      let bump = { op_redo = RBump eid; op_errq = None } in
      if el.Element.delivery_count + 1 >= q.qattrs.retry_limit then begin
        let errq =
          match op.op_errq with Some e -> e | None -> default_error_queue q
        in
        let code =
          Printf.sprintf "aborted %d times" (el.Element.delivery_count + 1)
        in
        [ bump; { op_redo = RMove_error (eid, errq, code); op_errq = None } ]
      end
      else [ bump ]
  end
  | RCreate _ | REnq _ | RKill _ | RBump _ | RMove_error _ | RRegister _
  | RDeregister _ | RSet_last _ | RIncarnation | RDestroy _ | RSet_stopped _
  | RAlter _ ->
    []

let abort t id =
  let restore ops =
    let fixups = List.concat_map (restore_element t) ops in
    if fixups <> [] then log_now t fixups
  in
  (match ws_find t id with
  | Some ws ->
    ws_remove t id;
    restore (List.rev ws.ops)
  | None -> ());
  (match Hashtbl.find_opt t.prepared id with
  | Some p ->
    Group_commit.append t.gc (encode_record k_abort (Some id) "" []);
    Hashtbl.remove t.prepared id;
    restore p.p_ops;
    (* [restore]'s own force covers the abort record when there were
       fixups; this one covers the bare-abort case (no-op otherwise). *)
    Group_commit.force t.gc
  | None -> ());
  release_locks t id

let participant t =
  {
    Tm.part_name = t.qm_name;
    p_prepare = (fun id ~coordinator -> prepare t id ~coordinator);
    p_commit =
      (fun id ->
        commit_prepared t id;
        true);
    p_abort = (fun id -> abort t id);
    p_one_phase =
      (fun id ->
        commit_one_phase t id;
        true);
    p_has_work = (fun id -> ws_mem t id || Hashtbl.mem t.prepared id);
    p_is_local = true;
  }

let auto_commit t f =
  t.auto_n <- t.auto_n + 1;
  let id = Txid.make ~origin:t.auto_origin ~inc:t.incarnations ~n:t.auto_n in
  let t0 = if Rrq_obs.enabled () then t.clock () else 0.0 in
  match f id with
  | v ->
    (* Only count transactions that buffered work: polling an empty queue
       auto-commits too, and counting those would skew commit rates. *)
    let worked = ws_mem t id in
    commit_one_phase t id;
    if worked && Rrq_obs.enabled () then begin
      Rrq_obs.Metrics.inc ("qm.auto_commits:" ^ t.qm_name);
      Rrq_obs.Metrics.observe
        ("qm.commit.latency:" ^ t.qm_name)
        (t.clock () -. t0)
    end;
    v
  | exception e ->
    abort t id;
    raise e

let abort_stale t ~older_than =
  let cutoff = t.clock () -. older_than in
  let stale =
    ws_fold t
      (fun id ws acc -> if ws.activity < cutoff then id :: acc else acc)
      []
  in
  List.iter
    (fun id ->
      abort t id;
      t.abort_cb id)
    stale;
  List.length stale

let kill_element t eid =
  match Eidtbl.find_opt t.index eid with
  | None -> false
  | Some (_, el) ->
    (match el.Element.status with
    | Element.Deq_pending id -> t.abort_cb id
    | Element.Ready -> ());
    (* The abort may have moved it to an error queue; chase the eid. *)
    if Eidtbl.mem t.index eid then begin
      log_now t [ { op_redo = RKill eid; op_errq = None } ];
      true
    end
    else false

let kill_where t filter =
  let victims =
    Eidtbl.fold
      (fun eid (_, el) acc -> if Filter.matches filter el then eid :: acc else acc)
      t.index []
  in
  List.fold_left
    (fun n eid -> if kill_element t eid then n + 1 else n)
    0 victims

(* ---- callbacks / maintenance ---------------------------------------- *)

let in_doubt t =
  Hashtbl.fold (fun id p acc -> (id, p.p_coord) :: acc) t.prepared []

let set_abort_callback t f = t.abort_cb <- f
let set_alert_callback t f = t.alert_cb <- f
let set_clock t f = t.clock <- f

let checkpoint t = Wal.checkpoint t.wal (encode_snapshot t)

let maybe_checkpoint t ~every =
  if Wal.records_since_checkpoint t.wal >= every then checkpoint t

(* ---- replication hooks (primary-backup WAL shipping) ------------------ *)

let group_commit t = t.gc
let snapshot_image t = encode_snapshot t

(* The backup half of shipping (see Rrq_core.Ha and Rrq_txn.Rm): append the
   shipped record verbatim into our OWN log, then replay it into memory —
   the standby stays warm, and a backup crash recovers through the native
   path. [replaying] suppresses alert callbacks and trigger side effects
   exactly as recovery replay does. No locks are re-asserted: a standby
   runs no competing transactions, and promotion resolves every in-doubt
   entry before serving. *)
let standby_apply t payload =
  t.replaying <- true;
  Fun.protect
    ~finally:(fun () -> t.replaying <- false)
    (fun () ->
      Group_commit.append t.gc payload;
      replay_record t payload)

let standby_force t = Group_commit.force t.gc

let standby_install t snap =
  Hashtbl.reset t.queues;
  Eidtbl.reset t.index;
  Hashtbl.reset t.regs;
  Hashtbl.reset t.workspaces;
  Hashtbl.reset t.prepared;
  t.ws_cache <- None;
  t.replaying <- true;
  Fun.protect
    ~finally:(fun () -> t.replaying <- false)
    (fun () -> restore_snapshot t snap);
  (* Restart our own log from the installed image. *)
  Wal.checkpoint t.wal (encode_snapshot t)

(* Durably open a fresh incarnation without reopening the repository — the
   promotion path: a new primary must never mint eids or auto-txids that
   collide with ones the old primary handed out. *)
let bump_incarnation t =
  log_now t [ { op_redo = RIncarnation; op_errq = None } ]

let live_log_bytes t = Wal.live_log_bytes t.wal

let counts t qn =
  let q = get_queue t qn in
  (q.n_enq, q.n_deq)

let elements t qn =
  let q = get_queue t qn in
  Emap.fold (fun _ el acc -> el :: acc) q.elems [] |> List.rev
