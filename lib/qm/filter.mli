(** Content-based retrieval predicates (paper §1, §11: "content-based
    retrieval", "request contents (highest dollar amount first)").

    A filter is evaluated against an element's properties and priority when
    a dequeuer wants a specific subset of a queue — e.g. a server that only
    handles requests of one type, or a scheduler draining high-value
    requests first. *)

type t =
  | True  (** Matches everything. *)
  | Prop_eq of string * string  (** Property present with this exact value. *)
  | Prop_exists of string
  | Prop_ge of string * int  (** Property parses as an int >= bound. *)
  | Priority_ge of int
  | Not of t
  | And of t * t
  | Or of t * t

val matches : t -> Element.t -> bool

val to_string : t -> string
(** Debug rendering. *)

val encode : Rrq_util.Codec.encoder -> t -> unit
val decode : Rrq_util.Codec.decoder -> t
