module Codec = Rrq_util.Codec

type t =
  | True
  | Prop_eq of string * string
  | Prop_exists of string
  | Prop_ge of string * int
  | Priority_ge of int
  | Not of t
  | And of t * t
  | Or of t * t

let rec matches f (el : Element.t) =
  match f with
  | True -> true
  | Prop_eq (k, v) -> Element.prop el k = Some v
  | Prop_exists k -> Element.prop el k <> None
  | Prop_ge (k, bound) -> begin
    match Element.prop el k with
    | None -> false
    | Some s -> ( match int_of_string_opt s with Some n -> n >= bound | None -> false)
  end
  | Priority_ge p -> el.Element.priority >= p
  | Not g -> not (matches g el)
  | And (a, b) -> matches a el && matches b el
  | Or (a, b) -> matches a el || matches b el

let rec to_string = function
  | True -> "true"
  | Prop_eq (k, v) -> Printf.sprintf "%s=%S" k v
  | Prop_exists k -> Printf.sprintf "has(%s)" k
  | Prop_ge (k, n) -> Printf.sprintf "%s>=%d" k n
  | Priority_ge p -> Printf.sprintf "prio>=%d" p
  | Not g -> Printf.sprintf "not(%s)" (to_string g)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)

let rec encode e = function
  | True -> Codec.u8 e 0
  | Prop_eq (k, v) ->
    Codec.u8 e 1;
    Codec.string e k;
    Codec.string e v
  | Prop_exists k ->
    Codec.u8 e 2;
    Codec.string e k
  | Prop_ge (k, n) ->
    Codec.u8 e 3;
    Codec.string e k;
    Codec.int e n
  | Priority_ge p ->
    Codec.u8 e 4;
    Codec.int e p
  | Not g ->
    Codec.u8 e 5;
    encode e g
  | And (a, b) ->
    Codec.u8 e 6;
    encode e a;
    encode e b
  | Or (a, b) ->
    Codec.u8 e 7;
    encode e a;
    encode e b

let rec decode d =
  match Codec.get_u8 d with
  | 0 -> True
  | 1 ->
    let k = Codec.get_string d in
    let v = Codec.get_string d in
    Prop_eq (k, v)
  | 2 -> Prop_exists (Codec.get_string d)
  | 3 ->
    let k = Codec.get_string d in
    let n = Codec.get_int d in
    Prop_ge (k, n)
  | 4 -> Priority_ge (Codec.get_int d)
  | 5 -> Not (decode d)
  | 6 ->
    let a = decode d in
    let b = decode d in
    And (a, b)
  | 7 ->
    let a = decode d in
    let b = decode d in
    Or (a, b)
  | n -> raise (Codec.Decode_error (Printf.sprintf "filter: bad tag %d" n))
