(** Queue elements.

    An element is the unit stored in a queue: an uninterpreted payload plus
    application-visible properties (used for content-based retrieval), a
    priority, and bookkeeping the QM maintains — the delivery (abort) count
    that drives error-queue handling, and the abort code stamped when the
    element is moved to an error queue. *)

type status =
  | Ready  (** Visible and dequeueable. *)
  | Deq_pending of Rrq_txn.Txid.t
      (** Dequeued by an uncommitted transaction: skipped by other
          dequeuers (the "readers ignore write-locked elements" rule of
          paper §10). *)

type t = {
  eid : int64;  (** Repository-unique element identifier. *)
  payload : string;
  props : (string * string) list;
  priority : int;  (** Higher priorities dequeue first. *)
  enq_time : float;  (** Submission (virtual) time; FIFO tie-break. *)
  mutable delivery_count : int;
  mutable abort_code : string option;
  mutable status : status;
}

val make :
  eid:int64 -> payload:string -> props:(string * string) list ->
  priority:int -> enq_time:float -> t

val prop : t -> string -> string option
(** Look up a property value. *)

val key : t -> int * float * int64
(** Dequeue-order sort key: (-priority, enq_time, eid) — smallest first. *)

val encode : Rrq_util.Codec.encoder -> t -> unit
(** Serialize (status is not persisted; decoded elements are [Ready]). *)

val decode : Rrq_util.Codec.decoder -> t
