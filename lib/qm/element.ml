module Codec = Rrq_util.Codec

type status = Ready | Deq_pending of Rrq_txn.Txid.t

type t = {
  eid : int64;
  payload : string;
  props : (string * string) list;
  priority : int;
  enq_time : float;
  mutable delivery_count : int;
  mutable abort_code : string option;
  mutable status : status;
}

let make ~eid ~payload ~props ~priority ~enq_time =
  {
    eid;
    payload;
    props;
    priority;
    enq_time;
    delivery_count = 0;
    abort_code = None;
    status = Ready;
  }

let prop t name = List.assoc_opt name t.props
let key t = (-t.priority, t.enq_time, t.eid)

let encode e t =
  Codec.i64 e t.eid;
  Codec.string e t.payload;
  Codec.list (Codec.pair Codec.string Codec.string) e t.props;
  Codec.int e t.priority;
  Codec.float e t.enq_time;
  Codec.int e t.delivery_count;
  Codec.option Codec.string e t.abort_code

let decode d =
  let eid = Codec.get_i64 d in
  let payload = Codec.get_string d in
  let props = Codec.get_list (Codec.get_pair Codec.get_string Codec.get_string) d in
  let priority = Codec.get_int d in
  let enq_time = Codec.get_float d in
  let delivery_count = Codec.get_int d in
  let abort_code = Codec.get_option Codec.get_string d in
  {
    eid;
    payload;
    props;
    priority;
    enq_time;
    delivery_count;
    abort_code;
    status = Ready;
  }
