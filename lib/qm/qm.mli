(** The recoverable queue manager (paper §4, §10, §11).

    A QM is "a type of database system" storing queue elements, and "a type
    of communication system" decoupling clients from servers. This module
    implements the paper's full queue abstraction:

    - {b Data manipulation} (fig. 3): [enqueue], [dequeue], [read], all
      usable inside transactions (via the node TM) or standalone
      (auto-commit). Dequeue supports priorities, FIFO order, content-based
      filters, blocking with notify semantics (§10), and skip-locked scans
      — concurrent dequeuers are not blocked by uncommitted dequeues, at
      the cost of strict FIFO order (§10). A strict-FIFO queue mode exists
      for comparison.
    - {b Error queues} (§4.2): an element dequeued by [n] successively
      aborting transactions is moved, marked with an abort code, to an
      error queue, preventing cyclic restart of a poisonous request. The
      retry counter is durable.
    - {b Persistent registration with operation tags} (§4.3): the QM
      durably remembers, per (registrant, queue), the kind/tag/eid and
      element copy of the last tagged operation — updated atomically with
      the operation itself — and returns them on re-registration. This is
      the paper's mechanism for client checkpointing and resynchronization.
    - {b Kill_element} (§7): delete a waiting element; if an uncommitted
      transaction holds it, that transaction is aborted first (via the
      abort callback installed by the hosting node).
    - {b Queue attributes} (§9-§11): stable or volatile durability, retry
      limits, error-queue designation, redirection to another queue, alert
      thresholds, and strict-FIFO mode.
    - {b Triggers} (§6): a deterministic rule that fires when a property
      group in a queue completes (all replies of a fork arrived) and
      replaces the group with new elements — the fork/join join-side.

    Durability follows the deferred-update discipline of {!Rrq_txn.Rm}, with
    two QM-specific twists: updates to volatile queues are applied at commit
    but never logged, so they cost no forced writes and vanish on crash; and
    main-memory queues are fully recoverable but keep element payloads and
    queue order purely in memory — only their redo records hit the WAL,
    through a zero-copy encode, and recovery rebuilds the queue from the
    redo scan (the paper's §10 "queue as main-memory database" design). *)

type t

type wait = No_wait | Block | Timeout of float
(** Empty-queue behavior of [dequeue]: return [None] immediately, block
    until an element arrives ("notify lock", §10), or block with a bound. *)

type durability =
  | Stable
      (** Logged and snapshotted, and every committed element update also
          pays a page-granular read-modify-write of the queue's
          disk-resident page (after the force — the write-ahead rule):
          the historical recoverable queue at §10's disk-based price. *)
  | Volatile  (** Applied at commit, never logged; contents die on crash. *)
  | Main_memory
      (** Recoverable like [Stable] — same redo records, same replay, same
          checkpoint snapshots — but commits encode straight from a reused
          buffer into the log device with no intermediate string, and
          nothing on the hot path reads stable storage back. *)

type attrs = {
  durability : durability;
  retry_limit : int;
      (** Abort count after which an element moves to the error queue. *)
  error_queue : string option;
      (** Default error queue; [None] means ["<name>.err"]. *)
  redirect_to : string option;
      (** If set, committed enqueues land in this queue instead (§9). *)
  alert_threshold : int option;
      (** Depth at which the alert callback fires (§9 / CICS task start). *)
  strict_fifo : bool;
      (** Dequeuers serialize on a queue lock held to commit — the strict
          ordering the paper argues against (§10); kept as a baseline. *)
}

val default_attrs : attrs
(** Stable, retry limit 3, default error queue, no redirect, no alert,
    skip-locked (non-strict). *)

type trigger = {
  on_queue : string;  (** Queue whose arrivals are inspected. *)
  group_prop : string;  (** Property that identifies the group. *)
  complete : Element.t list -> bool;
      (** Whether the group (all current members) is complete. Must be
          deterministic — it re-runs during recovery replay. *)
  make : Element.t list -> (string * string * (string * string) list) list;
      (** Replacement elements: (target queue, payload, props). Must be
          deterministic. *)
}

type last_op = {
  op_kind : [ `Enqueue | `Dequeue ];
  tag : string;
  op_eid : int64;
  element_copy : Element.t option;
      (** Copy of the element operated on, retained even after the element
          leaves the queue (what [Rereceive] reads). *)
}

type handle
(** A registrant's binding to one queue. *)

exception No_such_queue of string
exception Not_registered of string

exception Conflict of string
(** A strict-FIFO queue lock deadlocked, timed out or was cancelled: abort
    the surrounding transaction and retry. *)

(** {1 Opening and DDL} *)

val open_qm :
  ?commit_policy:Rrq_wal.Group_commit.policy ->
  ?triggers:trigger list ->
  Rrq_storage.Disk.t ->
  name:string ->
  t
(** Open (recovering) the repository called [name] on [disk]. Triggers are
    code configuration and must be re-supplied identically on every open.
    [commit_policy] (default [Immediate]) selects how commit-point log
    forces are batched; see {!Rrq_wal.Group_commit}. *)

val name : t -> string

val create_queue : t -> ?attrs:attrs -> string -> unit
(** Durably create a queue (no-op if it exists, so node setup code can be
    re-run after recovery). *)

val alter_queue : t -> string -> attrs -> unit
(** Durably replace a queue's attributes (fig. 3 DDL: "modify a queue") —
    retry limit, error queue, redirection, alert threshold, strict mode.
    The durability class cannot change ([Invalid_argument]): stable
    contents cannot be retroactively declared volatile or vice versa.
    @raise No_such_queue *)

val destroy_queue : t -> string -> unit
(** Durably destroy a queue and its contents (fig. 3 DDL). Registrations on
    the queue are destroyed with it.
    @raise No_such_queue *)

val stop_queue : t -> string -> unit
(** Durably stop a queue (fig. 3 DDL): enqueues and dequeues raise
    {!Stopped} until {!start_queue}; existing elements are retained.
    Already-buffered transactional operations still commit. *)

val start_queue : t -> string -> unit

val queue_stopped : t -> string -> bool

exception Stopped of string
(** Operation attempted on a stopped queue. *)

val queue_exists : t -> string -> bool
val queue_names : t -> string list
val depth : t -> string -> int
(** Number of elements present (ready or pending-dequeue).
    @raise No_such_queue *)

(** {1 Registration (fig. 3, §4.3)} *)

val register :
  t -> queue:string -> registrant:string -> stable:bool ->
  handle * last_op option
(** Durably associate [registrant] with the queue and return the last
    tagged operation if this registrant was already registered (recovery
    path). With [stable:false] no last-op info is maintained. *)

val deregister : t -> handle -> unit
(** Durably destroy the registration and its saved state. *)

val lookup_registration :
  t -> queue:string -> registrant:string -> last_op option
(** Read-only probe of a stable registration's last tagged operation:
    nothing is created, nothing is logged. [None] when the registrant is
    unknown here (or registered [stable:false]). This is what a shard
    repository answers a peer's registration pull with — the
    duplicate-suppression evidence for a retried operation that crossed a
    shard-map change. *)

val handle_queue : handle -> string
val handle_registrant : handle -> string

(** {1 Data manipulation (fig. 3)}

    Operations taking a {!Rrq_txn.Txid.t} join that transaction's workspace;
    the effects become visible at commit via {!participant}. *)

val enqueue :
  t -> Rrq_txn.Txid.t -> handle -> ?tag:string ->
  ?props:(string * string) list -> ?priority:int -> string -> int64
(** Buffer an enqueue of a payload; returns the new element's eid. [tag]
    atomically updates the registration's last-op record (stable
    registrants only). *)

val dequeue :
  t -> Rrq_txn.Txid.t -> handle -> ?tag:string -> ?filter:Filter.t ->
  ?rank:(Element.t -> float) -> ?error_queue:string -> wait ->
  Element.t option
(** Remove the best ready element matching the filter: by default in queue
    order (priority desc, then FIFO); with [rank], the ready match with the
    highest rank (content-based scheduling, §11 — "highest dollar amount
    first"). The element is immediately invisible to other dequeuers; it
    returns (with its retry count bumped, durably) if the transaction
    aborts. [error_queue] overrides the queue's attribute for this call. *)

val dequeue_set :
  t -> Rrq_txn.Txid.t -> handle list -> ?tag:string -> ?filter:Filter.t ->
  wait -> (handle * Element.t) option
(** Dequeue the globally best element across several queues (queue sets,
    §9). The tag update, if any, applies to the handle that won. *)

val read : t -> int64 -> Element.t option
(** Read an element's contents by eid without modifying it. Elements locked
    by uncommitted dequeues are readable (§10); uncommitted enqueues are
    not visible. *)

val read_last : t -> handle -> Element.t option
(** The registration's saved element copy (Rereceive support): available
    even after the element was dequeued — possibly by someone else. *)

val observe_queues : t -> unit
(** Refresh the [Rrq_obs] per-queue depth and head-of-line-age gauges.
    No-op when observability is disabled. Depth gauges also track every
    insert/remove; age only moves when this is called, so periodic callers
    (the site janitor) keep it current. *)

val kill_element : t -> int64 -> bool
(** Cancel support (§7): durably delete the element. If an uncommitted
    transaction dequeued it, that transaction is aborted through the abort
    callback first. Returns whether the element was deleted. *)

val kill_where : t -> Filter.t -> int
(** Kill every element (in any queue of the repository) matching the
    filter; returns how many were deleted. Elements keep their identifying
    properties as they move between queues (§11's element-identity
    discussion), so a request can be cancelled by its rid/client
    properties wherever forwarding or pipelining has taken it. *)

(** {1 Transaction integration} *)

val participant : t -> Rrq_txn.Tm.participant
(** Enlist the QM in a transaction. *)

val auto_commit : t -> (Rrq_txn.Txid.t -> 'a) -> 'a
(** Run one or more QM operations as a standalone atomic action: effects
    are durable and visible when the call returns (the paper's
    outside-a-transaction mode, visible "before the operation returns").
    Uses an internal transaction id. *)

val abort_stale : t -> older_than:float -> int
(** Unilaterally abort active (unprepared) workspaces idle longer than the
    bound — the QM-side timeout that frees elements locked by a dequeuer
    whose node died (prepared transactions are never touched). Returns how
    many were aborted. *)

(** {1 Callbacks installed by the hosting node} *)

val in_doubt : t -> (Rrq_txn.Txid.t * string) list
(** Prepared-but-unresolved transactions and their coordinators, for the
    hosting node's resolver daemon. *)

val set_abort_callback : t -> (Rrq_txn.Txid.t -> unit) -> unit
(** How [kill_element] aborts the transaction holding an element (normally
    the node TM's force-abort). *)

val set_alert_callback : t -> (string -> int -> unit) -> unit
(** Fired when a queue's depth reaches its alert threshold (queue name,
    depth). *)

val set_clock : t -> (unit -> float) -> unit
(** Source of enqueue timestamps and staleness decisions; the hosting node
    wires this to the simulator clock. Defaults to an internal sequence
    that still yields correct FIFO ordering. *)

(** {1 Maintenance and introspection} *)

val checkpoint : t -> unit
val maybe_checkpoint : t -> every:int -> unit
val live_log_bytes : t -> int

val counts : t -> string -> int * int
(** (total committed enqueues, total committed dequeues) for a queue in
    this incarnation. *)

val elements : t -> string -> Element.t list
(** Snapshot of a queue's current elements in dequeue order (tests and
    audits). *)

(** {1 Replication hooks}

    The queue manager as a primary-backup replication endpoint (see
    {!Rrq_core.Ha}). The primary ships its WAL records through
    {!Rrq_wal.Group_commit.set_shipper} on {!group_commit}; the backup
    applies them with {!standby_apply} (which also appends them to its own
    log, so a backup crash recovers natively) and makes each batch durable
    with {!standby_force} before acknowledging. {!standby_install}
    replaces the whole state from a primary {!snapshot_image} — the full
    resync after a gap or role change. *)

val group_commit : t -> Rrq_wal.Group_commit.t
val snapshot_image : t -> string
val standby_apply : t -> string -> unit
val standby_force : t -> unit
val standby_install : t -> string -> unit

val bump_incarnation : t -> unit
(** Durably open a fresh incarnation without reopening the repository —
    called at promotion so a new primary never mints eids or auto-txids
    that collide with the old primary's. *)
