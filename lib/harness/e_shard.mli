(** Experiment B13: sharded multi-repository scale-out ({!Rrq_core.Shard})
    — a fixed clerk load (16 clients whose routing keys hash evenly)
    against 1, 2 and 4 shard repositories, crossed with the reply-queue
    placement: "co-located" pins each client's reply queue onto its
    request shard (conversation affinity — near-linear scaling),
    "scattered" puts every reply queue on a foreign shard so each request
    finishes with a cross-shard 2PC (pricing its two extra log forces).
    Every shard disk charges a per-force [sync_latency], so commits/s
    measures how shards multiply log-force bandwidth; the speedup column
    is relative to the shared 1-shard row. *)

type row = {
  shards : int;  (** Shard repositories in the map. *)
  placement : string;
      (** "(single)", "co-located" (replies pinned to the request shard)
          or "scattered" (every reply on a foreign shard). *)
  clients : int;  (** Concurrent clerk clients (fixed across rows). *)
  requests : int;  (** Total conversation turns completed. *)
  forwards : int;  (** Misroute relays observed (0: the map is exact). *)
  commits : int;  (** Committed transactions summed over shards. *)
  elapsed_s : float;  (** Virtual seconds the load took. *)
  commits_per_s : float;  (** [commits /. elapsed_s]. *)
  speedup : float;  (** [commits_per_s] relative to the 1-shard row. *)
}

val run : ?clients:int -> ?reqs:int -> ?seed:int -> unit -> row list
val table : row list -> Rrq_util.Table.t
