(* B7: recovery cost vs. checkpointing (paper §10: queues are main-memory
   databases that must log updates; checkpoints bound replay work). Runs
   directly against a QM on a disk (no network needed): enqueue a stream of
   elements with some dequeues, crash, and measure real (host) time spent
   re-opening the repository, plus the live log size that had to be
   scanned. *)

module Disk = Rrq_storage.Disk
module Qm = Rrq_qm.Qm
module Table = Rrq_util.Table

type row = {
  ops : int;
  checkpoint_every : int option;
  log_bytes : int;
  recovery_seconds : float;
  recovered_elements : int;
}

let one_run ~ops ~checkpoint_every =
  let disk = Disk.create "bench" in
  let qm = ref (Qm.open_qm disk ~name:"qm") in
  Qm.create_queue !qm "q";
  let h, _ = Qm.register !qm ~queue:"q" ~registrant:"bench" ~stable:false in
  let payload = String.make 128 'x' in
  for i = 1 to ops do
    ignore (Qm.auto_commit !qm (fun id -> Qm.enqueue !qm id h payload));
    (* dequeue half of them so recovery replays both kinds of records *)
    if i mod 2 = 0 then
      ignore (Qm.auto_commit !qm (fun id -> Qm.dequeue !qm id h Qm.No_wait));
    match checkpoint_every with
    | Some every -> Qm.maybe_checkpoint !qm ~every
    | None -> ()
  done;
  let log_bytes = Qm.live_log_bytes !qm in
  Disk.crash disk;
  let t0 = Sys.time () in
  let reopened = Qm.open_qm disk ~name:"qm" in
  let recovery_seconds = Sys.time () -. t0 in
  {
    ops;
    checkpoint_every;
    log_bytes;
    recovery_seconds;
    recovered_elements = Qm.depth reopened "q";
  }

let run ?(sizes = [ 1_000; 5_000; 20_000 ]) () =
  List.concat_map
    (fun ops ->
      [
        one_run ~ops ~checkpoint_every:None;
        one_run ~ops ~checkpoint_every:(Some 1000);
      ])
    sizes

let table rows =
  let t =
    Table.create
      ~title:"B7: recovery time and log size vs checkpointing (128-byte payloads)"
      ~columns:
        [ "ops"; "checkpoint every"; "live log KB"; "recovery (host s)";
          "elements recovered" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.ops;
          (match r.checkpoint_every with
          | None -> "never"
          | Some n -> string_of_int n);
          Printf.sprintf "%.1f" (float_of_int r.log_bytes /. 1024.0);
          Printf.sprintf "%.4f" r.recovery_seconds;
          string_of_int r.recovered_elements;
        ])
    rows;
  t
