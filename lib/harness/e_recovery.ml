(* B7: recovery cost vs. checkpointing (paper §10: queues are main-memory
   databases that must log updates; checkpoints bound replay work). Runs
   directly against a QM on a disk (no network needed): enqueue a stream of
   elements with some dequeues, crash, and measure the recovery work of
   re-opening the repository.

   Recovery time is measured on the {e simulated} clock, under an explicit
   replay-cost model ([replay_bytes_per_sec]): re-opening scans the live
   log, and the experiment charges the scan at a fixed device rate, exactly
   like [Disk.sync_latency] charges forces. Host time would make the row
   nondeterministic and break byte-identical trace replay (rrq_lint R2);
   virtual time makes the B7 table a pure function of the workload. *)

module Disk = Rrq_storage.Disk
module Qm = Rrq_qm.Qm
module Sched = Rrq_sim.Sched
module Table = Rrq_util.Table

type row = {
  ops : int;
  checkpoint_every : int option;
  log_bytes : int;
  recovery_seconds : float;
  recovered_elements : int;
}

(* The modeled log-scan rate: a sequential read of a warm main-memory log.
   The absolute value only scales the column; the shape of the table (how
   checkpointing bounds replay) is what the experiment demonstrates. *)
let replay_bytes_per_sec = 256.0 *. 1024.0 *. 1024.0

let one_run ~ops ~checkpoint_every =
  Common.run_scenario (fun _s () ->
      let disk = Disk.create "bench" in
      let qm = ref (Qm.open_qm disk ~name:"qm") in
      Qm.create_queue !qm "q";
      let h, _ = Qm.register !qm ~queue:"q" ~registrant:"bench" ~stable:false in
      let payload = String.make 128 'x' in
      for i = 1 to ops do
        ignore (Qm.auto_commit !qm (fun id -> Qm.enqueue !qm id h payload));
        (* dequeue half of them so recovery replays both kinds of records *)
        if i mod 2 = 0 then
          ignore (Qm.auto_commit !qm (fun id -> Qm.dequeue !qm id h Qm.No_wait));
        match checkpoint_every with
        | Some every -> Qm.maybe_checkpoint !qm ~every
        | None -> ()
      done;
      let log_bytes = Qm.live_log_bytes !qm in
      Disk.crash disk;
      let t0 = Sched.clock () in
      let reopened = Qm.open_qm disk ~name:"qm" in
      Sched.sleep (float_of_int log_bytes /. replay_bytes_per_sec);
      let recovery_seconds = Sched.clock () -. t0 in
      {
        ops;
        checkpoint_every;
        log_bytes;
        recovery_seconds;
        recovered_elements = Qm.depth reopened "q";
      })

let run ?(sizes = [ 1_000; 5_000; 20_000 ]) () =
  List.concat_map
    (fun ops ->
      [
        one_run ~ops ~checkpoint_every:None;
        one_run ~ops ~checkpoint_every:(Some 1000);
      ])
    sizes

let table rows =
  let t =
    Table.create
      ~title:"B7: recovery time and log size vs checkpointing (128-byte payloads)"
      ~columns:
        [ "ops"; "checkpoint every"; "live log KB"; "recovery (virt ms)";
          "elements recovered" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.ops;
          (match r.checkpoint_every with
          | None -> "never"
          | Some n -> string_of_int n);
          Printf.sprintf "%.1f" (float_of_int r.log_bytes /. 1024.0);
          Printf.sprintf "%.4f" (r.recovery_seconds *. 1000.0);
          string_of_int r.recovered_elements;
        ])
    rows;
  t
