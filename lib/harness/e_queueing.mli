(** Queueing-behavior experiments.

    {b B3/B5} (paper §1, §10): many servers dequeue one queue. With
    skip-locked dequeue, throughput scales with the number of servers (load
    sharing); with strict FIFO (queue lock held to commit), dequeuers
    serialize and adding servers does not help — the performance argument
    §10 makes for tolerating non-FIFO order.

    {b B4} (paper §1): queues buffer bursts. A 1-second burst of 100
    requests against 3 servers: the queued system serves everything (depth
    absorbs the burst); a queueless reject-when-busy server loses most of
    it. *)

type drain_row = {
  mode : string;
  servers : int;
  jobs : int;
  makespan : float;
  throughput : float;
}

val run_drain : ?jobs:int -> ?work:float -> unit -> drain_row list
val drain_table : drain_row list -> Rrq_util.Table.t

type priority_row = {
  policy : string;
  backlog : int;
  express_jobs : int;
  express_p95 : float;
  standard_p95 : float;
}

val run_priority :
  ?backlog:int -> ?express:int -> ?work:float -> unit -> priority_row list
(** B11 (§11): express requests against a standard-job backlog, with and
    without priority scheduling. *)

val priority_table : priority_row list -> Rrq_util.Table.t

type poison_row = {
  p_policy : string;
  good_served : int;
  wasted_executions : int;
  poison_parked : bool;
}

val run_poison : ?good:int -> unit -> poison_row list
(** A1 ablation (§4.2, §5): a poisonous request with and without the
    error-queue machinery — parked after n aborts vs cyclic restart. *)

val poison_table : poison_row list -> Rrq_util.Table.t

type burst_row = {
  system : string;
  offered : int;
  served : int;
  rejected : int;
  b_makespan : float;
  max_depth : int;
}

val run_burst :
  ?offered:int -> ?service_time:float -> ?capacity:int -> unit -> burst_row list

val burst_table : burst_row list -> Rrq_util.Table.t
