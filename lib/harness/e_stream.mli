(** Experiment B10 (paper §11): the streaming client extension — window
    width vs end-to-end throughput over a high-latency link. *)

type row = {
  width : int;
  requests : int;
  latency : float;
  elapsed : float;
  throughput : float;
  exactly_once : bool;
}

val run : ?requests:int -> ?latency:float -> unit -> row list
val table : row list -> Rrq_util.Table.t
