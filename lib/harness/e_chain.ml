module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Envelope = Rrq_core.Envelope
module Pipeline = Rrq_core.Pipeline
module Table = Rrq_util.Table
module Histogram = Rrq_util.Histogram

let amount = 100

let balance site key =
  match Kvdb.committed_value (Site.kv site) key with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
  | None -> 0

(* ---- E2: crash matrix ------------------------------------------------- *)

type crash_row = {
  crash_site : string;
  transfers : int;
  completed : int;
  src_balance : int;
  dst_balance : int;
  cleared : int;
  conserved : bool;
}

let transfer_stages site_a site_b site_c =
  [
    {
      Pipeline.stage_site = site_a;
      in_queue = "debit";
      work =
        (fun site txn env ->
          ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "acct:src" (-amount));
          (env.Envelope.body, "debited"));
      compensate = None;
    };
    {
      Pipeline.stage_site = site_b;
      in_queue = "credit";
      work =
        (fun site txn env ->
          ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "acct:dst" amount);
          (env.Envelope.body, "credited"));
      compensate = None;
    };
    {
      Pipeline.stage_site = site_c;
      in_queue = "clear";
      work =
        (fun site txn env ->
          ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "cleared" 1);
          ("ok:" ^ env.Envelope.rid, ""));
      compensate = None;
    };
  ]

let one_crash_run ~crash_site ~transfers ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let site_a = Site.create ~stale_timeout:2.0 (Net.make_node net "bankA") in
      let site_b = Site.create ~stale_timeout:2.0 (Net.make_node net "bankB") in
      let site_c = Site.create ~stale_timeout:2.0 (Net.make_node net "clearing") in
      let pipeline = Pipeline.install (transfer_stages site_a site_b site_c) in
      let client_node = Net.make_node net "client" in
      Site.with_txn site_a (fun txn ->
          Kvdb.put (Site.kv site_a) (Tm.txn_id txn) "acct:src" "1000");
      (match crash_site with
      | "none" -> ()
      | name ->
        let site =
          match name with
          | "bankA" -> site_a
          | "bankB" -> site_b
          | _ -> site_c
        in
        Sched.at s 0.4 (fun () -> Site.crash_restart site ~after:3.0));
      fun () ->
        let completed = ref 0 in
        for i = 1 to transfers do
          ignore
            (Sched.fork ~name:(Printf.sprintf "cl%d" i) (fun () ->
                 let clerk, _ =
                   Clerk.connect ~client_node
                     ~system:(Pipeline.entry_site pipeline)
                     ~client_id:(Printf.sprintf "c%d" i)
                     ~req_queue:(Pipeline.entry_queue pipeline) ()
                 in
                 let rid = Printf.sprintf "t%d" i in
                 ignore (Clerk.send clerk ~rid "xfer");
                 let rec get n =
                   if n > 30 then ()
                   else begin
                     match Clerk.receive clerk ~timeout:3.0 () with
                     | Some _ -> incr completed
                     | None -> get (n + 1)
                   end
                 in
                 get 0))
        done;
        ignore (Common.await ~timeout:120.0 (fun () -> !completed = transfers));
        Sched.sleep 5.0;
        let src = balance site_a "acct:src" in
        let dst = balance site_b "acct:dst" in
        let cleared = balance site_c "cleared" in
        {
          crash_site;
          transfers;
          completed = !completed;
          src_balance = src;
          dst_balance = dst;
          cleared;
          conserved = src + dst = 1000 && dst = amount * transfers;
        })

let run_crash_matrix ?(transfers = 4) () =
  List.map
    (fun crash_site -> one_crash_run ~crash_site ~transfers ~seed:17)
    [ "none"; "bankA"; "bankB"; "clearing" ]

let crash_table rows =
  let t =
    Table.create
      ~title:"E2: 3-site transfer chain vs. crash of each site (fig. 6)"
      ~columns:
        [ "crashed site"; "transfers"; "completed"; "src"; "dst"; "cleared"; "conserved" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.crash_site;
          string_of_int r.transfers;
          string_of_int r.completed;
          string_of_int r.src_balance;
          string_of_int r.dst_balance;
          string_of_int r.cleared;
          (if r.conserved then "yes" else "NO");
        ])
    rows;
  t

(* ---- B6: chain vs one long transaction -------------------------------- *)

type contention_row = {
  design : string;
  stage_work : float;
  clients : int;
  accounts : int;
  elapsed : float;
  throughput : float;
  p95_latency : float;
}

let parse_transfer body =
  match String.split_on_char '|' body with
  | [ a; b ] -> (a, b)
  | _ -> failwith "bad transfer body"

let one_contention_run ~design ~clients ~per_client ~accounts ~stage_work ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let backend = Site.create ~stale_timeout:5.0 (Net.make_node net "backend") in
      let entry_queue, entry_site =
        match design with
        | `Chain ->
          let stage ~q ~work =
            { Pipeline.stage_site = backend; in_queue = q; work; compensate = None }
          in
          let p =
            Pipeline.install
              [
                stage ~q:"debit" ~work:(fun site txn env ->
                    let src, _ = parse_transfer env.Envelope.body in
                    ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) src (-amount));
                    Sched.sleep stage_work;
                    (env.Envelope.body, ""));
                stage ~q:"credit" ~work:(fun site txn env ->
                    let _, dst = parse_transfer env.Envelope.body in
                    ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) dst amount);
                    Sched.sleep stage_work;
                    (env.Envelope.body, ""));
                stage ~q:"clear" ~work:(fun site txn _env ->
                    ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "cleared" 1);
                    ("ok", ""));
              ]
          in
          (Pipeline.entry_queue p, Pipeline.entry_site p)
        | `Long ->
          (* Deadlock victims retry many times under heavy contention; a
             small retry limit would shunt them to the error queue and
             measure an artifact instead of contention. *)
          Qm.create_queue (Site.qm backend)
            ~attrs:{ Qm.default_attrs with retry_limit = 100_000 }
            "xfer";
          ignore
            (Server.start backend ~req_queue:"xfer" ~threads:clients
               (fun site txn env ->
                 let src, dst = parse_transfer env.Envelope.body in
                 let kv = Site.kv site in
                 let id = Tm.txn_id txn in
                 ignore (Kvdb.add kv id src (-amount));
                 Sched.sleep stage_work;
                 ignore (Kvdb.add kv id dst amount);
                 Sched.sleep stage_work;
                 ignore (Kvdb.add kv id "cleared" 1);
                 Server.Reply "ok"));
          ("xfer", "backend")
      in
      let client_node = Net.make_node net "client" in
      fun () ->
        let rng = Rng.create (seed + 1) in
        let lat = Histogram.create () in
        let done_clients = ref 0 in
        let start = Sched.clock () in
        for c = 1 to clients do
          ignore
            (Sched.fork ~name:(Printf.sprintf "cl%d" c) (fun () ->
                 let clerk, _ =
                   Clerk.connect ~client_node ~system:entry_site
                     ~client_id:(Printf.sprintf "c%d" c) ~req_queue:entry_queue ()
                 in
                 for i = 1 to per_client do
                   let a = Rng.int rng accounts and b = Rng.int rng accounts in
                   let body = Printf.sprintf "acct%d|acct%d" a b in
                   let rid = Printf.sprintf "c%d-%d" c i in
                   let t0 = Sched.clock () in
                   let rec go n =
                     if n > 60 then ()
                     else begin
                       ignore (Clerk.send clerk ~rid body);
                       match Clerk.receive clerk ~timeout:10.0 () with
                       | Some _ -> Histogram.add lat (Sched.clock () -. t0)
                       | None -> go (n + 1)
                     end
                   in
                   go 0
                 done;
                 incr done_clients))
        done;
        ignore (Common.await ~timeout:3000.0 (fun () -> !done_clients = clients));
        let elapsed = Sched.clock () -. start in
        let total = clients * per_client in
        {
          design = (match design with `Chain -> "3-txn chain" | `Long -> "1 long txn");
          stage_work;
          clients;
          accounts;
          elapsed;
          throughput = float_of_int total /. elapsed;
          p95_latency = Histogram.percentile lat 0.95;
        })

let run_contention ?(clients = 8) ?(per_client = 4) ?(accounts = 4)
    ?(stage_work = 0.05) () =
  [
    one_contention_run ~design:`Long ~clients ~per_client ~accounts ~stage_work
      ~seed:23;
    one_contention_run ~design:`Chain ~clients ~per_client ~accounts ~stage_work
      ~seed:23;
  ]

let contention_table rows =
  let t =
    Table.create
      ~title:"B6: multi-transaction chain vs one long transaction (hot accounts)"
      ~columns:
        [ "design"; "stage work (s)"; "clients"; "accounts"; "elapsed (s)";
          "xfers/s"; "p95 latency (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.design;
          Printf.sprintf "%.3f" r.stage_work;
          string_of_int r.clients;
          string_of_int r.accounts;
          Printf.sprintf "%.2f" r.elapsed;
          Printf.sprintf "%.2f" r.throughput;
          Printf.sprintf "%.3f" r.p95_latency;
        ])
    rows;
  t

(* ---- B8: lock inheritance / request serializability -------------------- *)

type serial_row = {
  mode : string;
  s_transfers : int;
  audits : int;
  anomalies : int;
  s_elapsed : float;
}

let one_serializability_run ~inherit_locks ~transfers ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let backend = Site.create ~stale_timeout:5.0 (Net.make_node net "backend") in
      let stage ~q ~work =
        { Pipeline.stage_site = backend; in_queue = q; work; compensate = None }
      in
      let pipeline =
        Pipeline.install ~inherit_locks
          [
            stage ~q:"debit" ~work:(fun site txn env ->
                ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "acct:src" (-amount));
                Sched.sleep 0.05;
                (env.Envelope.body, ""));
            stage ~q:"credit" ~work:(fun site txn env ->
                (* think first, update late: between the stages the money is
                   in flight and nothing is locked - unless inherited *)
                Sched.sleep 0.05;
                ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "acct:dst" amount);
                ("ok:" ^ env.Envelope.rid, ""));
          ]
      in
      let client_node = Net.make_node net "client" in
      Site.with_txn backend (fun txn ->
          Kvdb.put (Site.kv backend) (Tm.txn_id txn) "acct:src" "1000";
          Kvdb.put (Site.kv backend) (Tm.txn_id txn) "acct:dst" "0");
      fun () ->
        let stop = ref false in
        let audits = ref 0 and anomalies = ref 0 in
        (* The invariant reader: src + dst must always total 1000 if whole
           requests are serializable. *)
        ignore
          (Sched.fork ~name:"auditor" (fun () ->
               while not !stop do
                 (try
                    Site.with_txn backend (fun txn ->
                        let kv = Site.kv backend in
                        let id = Tm.txn_id txn in
                        let src = Kvdb.get_int kv id "acct:src" in
                        let dst = Kvdb.get_int kv id "acct:dst" in
                        incr audits;
                        if src + dst <> 1000 then incr anomalies)
                  with Site.Aborted _ -> ());
                 Sched.sleep 0.005
               done));
        let start = Sched.clock () in
        let clerk, _ =
          Clerk.connect ~client_node ~system:(Pipeline.entry_site pipeline)
            ~client_id:"mover" ~req_queue:(Pipeline.entry_queue pipeline) ()
        in
        for i = 1 to transfers do
          match Clerk.transceive clerk ~rid:(Printf.sprintf "t%d" i) "move" with
          | Some _ -> ()
          | None -> failwith "transfer lost"
        done;
        let elapsed = Sched.clock () -. start in
        stop := true;
        {
          mode = (if inherit_locks then "inherited locks" else "plain chain");
          s_transfers = transfers;
          audits = !audits;
          anomalies = !anomalies;
          s_elapsed = elapsed;
        })

let run_serializability ?(transfers = 8) () =
  [
    one_serializability_run ~inherit_locks:false ~transfers ~seed:31;
    one_serializability_run ~inherit_locks:true ~transfers ~seed:31;
  ]

let serializability_table rows =
  let t =
    Table.create
      ~title:
        "B8: request serializability via lock inheritance (concurrent invariant reader)"
      ~columns:[ "mode"; "transfers"; "audits"; "anomalies"; "elapsed (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.mode;
          string_of_int r.s_transfers;
          string_of_int r.audits;
          string_of_int r.anomalies;
          Printf.sprintf "%.2f" r.s_elapsed;
        ])
    rows;
  t
