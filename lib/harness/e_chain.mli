(** Experiments on multi-transaction requests (paper §6).

    {b E2 — unbreakable chains}: a three-site funds-transfer pipeline
    (debit / credit / clearinghouse-log) is subjected to a crash of each
    site in turn while transfers are in flight; every transfer must
    complete exactly once and money must be conserved.

    {b B6 — chain vs. one long transaction}: the same business transaction
    executed as a 3-stage chain versus one long transaction, under
    contention on a small hot account set — the lock-contention argument
    the paper gives for splitting requests (§6).

    {b B8 — request-level serializability via lock inheritance}: a
    single-site chain with and without lock inheritance, audited by a
    concurrent invariant reader; inheritance eliminates the
    between-transactions anomalies at a throughput cost (§6). *)

val transfer_stages :
  Rrq_core.Site.t -> Rrq_core.Site.t -> Rrq_core.Site.t ->
  Rrq_core.Pipeline.stage list
(** The canonical debit/credit/clearing-log pipeline used by E2 and the
    chain soak. *)

type crash_row = {
  crash_site : string;
  transfers : int;
  completed : int;
  src_balance : int;  (** Expected [1000 - 100 * transfers]. *)
  dst_balance : int;  (** Expected [100 * transfers]. *)
  cleared : int;
  conserved : bool;
}

val run_crash_matrix : ?transfers:int -> unit -> crash_row list
val crash_table : crash_row list -> Rrq_util.Table.t

type contention_row = {
  design : string;
  stage_work : float;
  clients : int;
  accounts : int;
  elapsed : float;
  throughput : float;  (** Transfers per simulated second. *)
  p95_latency : float;
}

val run_contention :
  ?clients:int -> ?per_client:int -> ?accounts:int -> ?stage_work:float ->
  unit -> contention_row list
val contention_table : contention_row list -> Rrq_util.Table.t

type serial_row = {
  mode : string;
  s_transfers : int;
  audits : int;
  anomalies : int;  (** Invariant violations observed by the auditor. *)
  s_elapsed : float;
}

val run_serializability : ?transfers:int -> unit -> serial_row list
val serializability_table : serial_row list -> Rrq_util.Table.t
