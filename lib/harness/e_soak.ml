(* Randomized fault-injection soak: many concurrent clients push requests
   through the queued protocol while a chaos process crashes the backend
   and partitions the network at random (seeded) times. The audit at the
   end must show zero lost and zero duplicated executions, whatever the
   schedule — the strongest end-to-end statement of the paper's
   exactly-once guarantee. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Table = Rrq_util.Table

type result = {
  seed : int;
  clients : int;
  requests : int;
  replies : int;
  lost : int;
  exactly_once : int;
  duplicated : int;
  crashes : int;
  partitions : int;
  virtual_time : float;
}

let run ?(seed = 1) ?(clients = 6) ?(per_client = 8) ?(drop = 0.05)
    ?(crash_mean = 4.0) () =
  Common.run_scenario (fun s ->
      let rig = Common.make_rig ~drop_rate:drop ~seed s in
      ignore
        (Server.start rig.Common.backend ~req_queue:"req" ~threads:3
           Common.counting_handler);
      let chaos_rng = Rng.create (seed * 7919) in
      let crashes = ref 0 and partitions = ref 0 in
      let done_all = ref false in
      ignore
        (Sched.spawn s ~name:"chaos" (fun () ->
             while not !done_all do
               Sched.sleep_background (Rng.exponential chaos_rng ~mean:crash_mean);
               if not !done_all then
                 if Rng.chance chaos_rng 0.6 then begin
                   incr crashes;
                   Site.crash_restart rig.Common.backend
                     ~after:(0.5 +. Rng.float chaos_rng 2.0)
                 end
                 else begin
                   incr partitions;
                   Net.partition rig.Common.net "client" "backend";
                   let net = rig.Common.net in
                   Sched.at s
                     (Sched.now s +. 0.5 +. Rng.float chaos_rng 2.0)
                     (fun () -> Net.heal net "client" "backend")
                 end
             done));
      fun () ->
        let replies = ref 0 and finished = ref 0 in
        let rids = ref [] in
        for c = 1 to clients do
          ignore
            (Sched.fork ~name:(Printf.sprintf "cl%d" c) (fun () ->
                 let clerk, _ =
                   Clerk.connect ~client_node:rig.Common.client_node
                     ~system:"backend" ~client_id:(Printf.sprintf "soak%d" c)
                     ~retries:40 ()
                     ~req_queue:"req"
                 in
                 for i = 1 to per_client do
                   let rid = Printf.sprintf "c%d-%d" c i in
                   rids := rid :: !rids;
                   (try
                      ignore (Clerk.send clerk ~rid "work");
                      let rec get n =
                        if n > 60 then ()
                        else begin
                          match Clerk.receive clerk ~timeout:2.0 () with
                          | Some _ -> incr replies
                          | None -> get (n + 1)
                        end
                      in
                      get 0
                    with Clerk.Unavailable _ -> ())
                 done;
                 incr finished))
        done;
        ignore
          (Common.await ~timeout:3000.0 (fun () -> !finished = clients));
        done_all := true;
        Sched.sleep 30.0 (* let retries and recovery settle *);
        let lost, exactly_once, duplicated =
          Common.audit_executions [ rig.Common.backend ] ~rids:!rids
        in
        {
          seed;
          clients;
          requests = clients * per_client;
          replies = !replies;
          lost;
          exactly_once;
          duplicated;
          crashes = !crashes;
          partitions = !partitions;
          virtual_time = Sched.clock ();
        })

(* Cross-site variant: random crash schedules against the 3-site transfer
   pipeline; conservation of money is the audited invariant. *)
let run_chain ?(seed = 1) ?(transfers = 6) ?(crash_mean = 1.0) () =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create (seed * 131)) in
      let site_a = Site.create ~stale_timeout:2.0 (Net.make_node net "bankA") in
      let site_b = Site.create ~stale_timeout:2.0 (Net.make_node net "bankB") in
      let site_c = Site.create ~stale_timeout:2.0 (Net.make_node net "clearing") in
      let pipeline =
        Rrq_core.Pipeline.install (E_chain.transfer_stages site_a site_b site_c)
      in
      let client_node = Net.make_node net "client" in
      Site.with_txn site_a (fun txn ->
          Rrq_kvdb.Kvdb.put (Site.kv site_a) (Rrq_txn.Tm.txn_id txn) "acct:src"
            "1000");
      let chaos_rng = Rng.create (seed * 37) in
      let crashes = ref 0 in
      let done_all = ref false in
      ignore
        (Sched.spawn s ~name:"chaos" (fun () ->
             while not !done_all do
               Sched.sleep_background (Rng.exponential chaos_rng ~mean:crash_mean);
               if not !done_all then begin
                 incr crashes;
                 let victim =
                   Rng.pick chaos_rng [| site_a; site_b; site_c |]
                 in
                 Site.crash_restart victim ~after:(0.5 +. Rng.float chaos_rng 1.5)
               end
             done));
      fun () ->
        let completed = ref 0 in
        for i = 1 to transfers do
          ignore
            (Sched.fork ~name:(Printf.sprintf "cl%d" i) (fun () ->
                 (* stagger submissions so the chaos window covers them *)
                 Sched.sleep (float_of_int i *. 1.5);
                 let clerk, _ =
                   Clerk.connect ~client_node
                     ~system:(Rrq_core.Pipeline.entry_site pipeline)
                     ~client_id:(Printf.sprintf "soak%d" i)
                     ~req_queue:(Rrq_core.Pipeline.entry_queue pipeline)
                     ~retries:40 ()
                 in
                 (try
                    ignore (Clerk.send clerk ~rid:(Printf.sprintf "t%d" i) "x");
                    let rec get n =
                      if n > 60 then ()
                      else begin
                        match Clerk.receive clerk ~timeout:3.0 () with
                        | Some _ -> incr completed
                        | None -> get (n + 1)
                      end
                    in
                    get 0
                  with Clerk.Unavailable _ -> ())))
        done;
        ignore (Common.await ~timeout:3000.0 (fun () -> !completed = transfers));
        done_all := true;
        Sched.sleep 20.0;
        let bal site key =
          match Rrq_kvdb.Kvdb.committed_value (Site.kv site) key with
          | Some v -> int_of_string v
          | None -> 0
        in
        let src = bal site_a "acct:src" in
        let dst = bal site_b "acct:dst" in
        let cleared = bal site_c "cleared" in
        let conserved =
          Rrq_check.Audit.run
            [
              Rrq_check.Audit.conservation ~name:"money" ~expected:1000
                ~actual:(fun () -> src + dst);
            ]
          = []
        in
        {
          seed;
          clients = transfers;
          requests = transfers;
          replies = !completed;
          lost = (if conserved && dst = 100 * transfers then 0 else 1);
          exactly_once =
            (if dst = 100 * transfers && cleared = transfers then transfers else 0);
          duplicated = (if dst > 100 * transfers then 1 else 0);
          crashes = !crashes;
          partitions = 0;
          virtual_time = Sched.clock ();
        })

let table results =
  let t =
    Table.create ~title:"Soak: randomized crash/partition schedules"
      ~columns:
        [ "seed"; "requests"; "replies"; "lost"; "exactly-once"; "duplicated";
          "crashes"; "partitions"; "virtual s" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.seed;
          string_of_int r.requests;
          string_of_int r.replies;
          string_of_int r.lost;
          string_of_int r.exactly_once;
          string_of_int r.duplicated;
          string_of_int r.crashes;
          string_of_int r.partitions;
          Printf.sprintf "%.0f" r.virtual_time;
        ])
    results;
  t

let ok r = r.lost = 0 && r.duplicated = 0 && r.replies = r.requests
