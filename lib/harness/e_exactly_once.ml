module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Plain = Rrq_baseline.Plain
module Table = Rrq_util.Table

type row = {
  protocol : string;
  condition : string;
  requests : int;
  replies : int;
  lost : int;
  exactly_once : int;
  duplicated : int;
}

type protocol = Queued | At_most_once | At_least_once

let protocol_name = function
  | Queued -> "queued (this paper)"
  | At_most_once -> "plain msg, no retry"
  | At_least_once -> "plain msg, retry"

(* The plain-message server executes the request body in a transaction and
   counts executions per rid, like the queued server does. *)
let plain_handler site txn ~rid _body =
  let kv = Site.kv site in
  let id = Tm.txn_id txn in
  ignore (Kvdb.add kv id ("exec:" ^ rid) 1);
  "done"

let one_run ~protocol ~drop ~crashes ~requests ~seed =
  Common.run_scenario (fun s ->
      let rig = Common.make_rig ~drop_rate:drop ~seed s in
      (match protocol with
      | Queued ->
        ignore (Server.start rig.Common.backend ~req_queue:"req" Common.counting_handler)
      | At_most_once | At_least_once ->
        Plain.install_server rig.Common.backend ~service:"plain" plain_handler);
      if crashes then begin
        Sched.at s 2.0 (fun () -> Site.crash_restart rig.Common.backend ~after:1.5);
        Sched.at s 6.0 (fun () -> Site.crash_restart rig.Common.backend ~after:1.5)
      end;
      fun () ->
        let rids = List.init requests (fun i -> Printf.sprintf "r%d" (i + 1)) in
        let replies = ref 0 in
        (match protocol with
        | Queued ->
          let clerk, _ =
            Clerk.connect ~client_node:rig.Common.client_node ~system:"backend"
              ~client_id:"alice" ~req_queue:"req" ()
          in
          List.iter
            (fun rid ->
              (try
                 ignore (Clerk.send clerk ~rid "work");
                 let rec get n =
                   if n > 20 then ()
                   else begin
                     match Clerk.receive clerk ~timeout:2.0 () with
                     | Some _ -> incr replies
                     | None -> get (n + 1)
                   end
                 in
                 get 0
               with Clerk.Unavailable _ -> ());
              Sched.sleep 0.3)
            rids
        | At_most_once ->
          List.iter
            (fun rid ->
              (match
                 Plain.call_at_most_once rig.Common.client_node ~dst:"backend"
                   ~service:"plain" ~rid "work"
               with
              | Some _ -> incr replies
              | None -> ());
              Sched.sleep 0.3)
            rids
        | At_least_once ->
          List.iter
            (fun rid ->
              (match
                 Plain.call_at_least_once rig.Common.client_node ~dst:"backend"
                   ~service:"plain" ~rid ~attempts:8 "work"
               with
              | Some _ -> incr replies
              | None -> ());
              Sched.sleep 0.3)
            rids);
        (* Let in-flight retries and recovery settle before auditing. *)
        Sched.sleep 20.0;
        let lost, exactly_once, duplicated =
          Common.audit_executions [ rig.Common.backend ] ~rids
        in
        (!replies, lost, exactly_once, duplicated))

let run ?(requests = 30) () =
  let conditions =
    [
      ("healthy", 0.0, false);
      ("15% message loss", 0.15, false);
      ("2 backend crashes", 0.0, true);
      ("loss + crashes", 0.15, true);
    ]
  in
  List.concat_map
    (fun (condition, drop, crashes) ->
      List.map
        (fun protocol ->
          let replies, lost, exactly_once, duplicated =
            one_run ~protocol ~drop ~crashes ~requests ~seed:42
          in
          {
            protocol = protocol_name protocol;
            condition;
            requests;
            replies;
            lost;
            exactly_once;
            duplicated;
          })
        [ At_most_once; At_least_once; Queued ])
    conditions

let table rows =
  let t =
    Table.create ~title:"E1: request flow under failures (30 requests each)"
      ~columns:
        [ "condition"; "protocol"; "replies"; "lost"; "exactly-once"; "duplicated" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.condition;
          r.protocol;
          string_of_int r.replies;
          string_of_int r.lost;
          string_of_int r.exactly_once;
          string_of_int r.duplicated;
        ])
    rows;
  t
