(** Shared plumbing for the experiment harness: scenario runners, rig
    builders and auditing helpers used by both the benchmark executable and
    the integration tests. *)

val run_scenario :
  ?policy:Rrq_sim.Sched.policy -> (Rrq_sim.Sched.t -> unit -> 'a) -> 'a
(** Build a world and drive it: [f sched] runs during setup (outside any
    fiber) and returns the driver, which then runs as the root fiber; the
    call returns the driver's result once the simulation quiesces.
    Delegates to {!Rrq_check.Runner} (one driver for experiments and the
    simulation tester); [policy] selects the scheduling policy.
    @raise Failure if any fiber died with an unhandled exception or the
    driver never completed. *)

val await : ?timeout:float -> ?poll:float -> (unit -> bool) -> bool
(** Poll a predicate from inside a fiber until it holds (default poll 0.1,
    timeout 300 virtual seconds); returns whether it held. *)

(** A standard single-backend world. *)
type rig = {
  net : Rrq_net.Net.t;
  backend : Rrq_core.Site.t;
  client_node : Rrq_net.Net.node;
}

val make_rig :
  ?drop_rate:float -> ?latency:float -> ?queues:(string * Rrq_qm.Qm.attrs) list ->
  ?stale_timeout:float -> ?seed:int -> Rrq_sim.Sched.t -> rig
(** Backend site named "backend" (with a default "req" queue unless
    [queues] says otherwise) plus a bare "client" node. *)

val counting_handler : Rrq_core.Server.handler
(** Increments ["exec:" ^ rid] and ["total"], replies ["done:" ^ body] —
    the standard exactly-once audit handler. *)

val exec_count : Rrq_core.Site.t -> string -> int
(** Committed value of ["exec:" ^ rid] (0 when absent). *)

val audit_executions :
  Rrq_core.Site.t list -> rids:string list -> int * int * int
(** [(lost, exactly_once, duplicated)] across the given sites: for each
    rid, sums its exec counters over all sites and classifies. *)
