(** Randomized fault-injection soak runs: the strongest end-to-end check of
    Exactly-Once Request-Processing and At-Least-Once Reply-Processing
    under seeded random crash/partition schedules. *)

type result = {
  seed : int;
  clients : int;
  requests : int;
  replies : int;
  lost : int;
  exactly_once : int;
  duplicated : int;
  crashes : int;
  partitions : int;
  virtual_time : float;
}

val run :
  ?seed:int -> ?clients:int -> ?per_client:int -> ?drop:float ->
  ?crash_mean:float -> unit -> result

val run_chain :
  ?seed:int -> ?transfers:int -> ?crash_mean:float -> unit -> result
(** Cross-site variant: the 3-site transfer pipeline under a random crash
    schedule; "lost"/"duplicated" encode conservation violations. *)

val table : result list -> Rrq_util.Table.t

val ok : result -> bool
(** No loss, no duplication, every reply delivered. *)
