(** Experiment B9 (paper §11): what one-copy queue replication costs per
    operation and what it buys (survival of a site loss). The replicated
    configuration is the {!Rrq_core.Ha} primary-backup pair in [Sync]
    shipping mode, so the measured cost is the WAL-shipping round trip on
    every commit force. *)

type row = {
  config : string;
  ops : int;
  elapsed : float;
  ops_per_s : float;
  p95_latency : float;
  survives_site_loss : bool;
}

val run : ?ops:int -> ?seed:int -> unit -> row list
val table : row list -> Rrq_util.Table.t
