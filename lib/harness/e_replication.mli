(** Experiment B9 (paper §11): what one-copy queue replication costs per
    operation and what it buys (survival of a site loss). *)

type row = {
  config : string;
  ops : int;
  elapsed : float;
  ops_per_s : float;
  p95_latency : float;
  survives_site_loss : bool;
}

val run : ?ops:int -> unit -> row list
val table : row list -> Rrq_util.Table.t
