(* B2: the one-transaction client design vs the queued three-transaction
   design (paper §2). In the one-transaction design the database locks are
   held while the reply travels and while the user thinks; queuing confines
   locks to the server's short transaction. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Held = Rrq_baseline.Held_txn
module Table = Rrq_util.Table
module Histogram = Rrq_util.Histogram

type row = {
  design : string;
  think : float;
  clients : int;
  hot_accounts : int;
  completed : int;
  elapsed : float;
  throughput : float;
  p95_latency : float;
}

let one_run ~design ~think ~clients ~per_client ~hot_accounts ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let backend =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:60.0
          (Net.make_node net "backend")
      in
      (match design with
      | `Held -> Held.install_server backend ~service:"held"
      | `Queued ->
        ignore
          (Server.start backend ~req_queue:"req" ~threads:clients
             (fun site txn env ->
               ignore
                 (Kvdb.add (Site.kv site) (Tm.txn_id txn) env.Rrq_core.Envelope.body 1);
               Server.Reply "ok")));
      let client_node = Net.make_node net "client" in
      fun () ->
        let rng = Rng.create (seed + 1) in
        let lat = Histogram.create () in
        let completed = ref 0 and done_clients = ref 0 in
        let start = Sched.clock () in
        for c = 1 to clients do
          ignore
            (Sched.fork ~name:(Printf.sprintf "cl%d" c) (fun () ->
                 let clerk =
                   match design with
                   | `Held -> None
                   | `Queued ->
                     Some
                       (fst
                          (Clerk.connect ~client_node ~system:"backend"
                             ~client_id:(Printf.sprintf "c%d" c)
                             ~req_queue:"req" ()))
                 in
                 for i = 1 to per_client do
                   let acct =
                     Printf.sprintf "acct%d" (Rng.int rng hot_accounts)
                   in
                   let t0 = Sched.clock () in
                   (match (design, clerk) with
                   | `Held, _ ->
                     (* send + receive + process-the-reply inside ONE
                        transaction: locks held across the think time. *)
                     if
                       Held.call client_node ~dst:"backend" ~service:"held"
                         ~keys:[ acct ] ~delta:1 ~hold:think
                     then begin
                       Histogram.add lat (Sched.clock () -. t0);
                       incr completed
                     end
                   | `Queued, Some clerk ->
                     let rid = Printf.sprintf "c%d-%d" c i in
                     let rec go n =
                       if n > 40 then ()
                       else begin
                         ignore (Clerk.send clerk ~rid acct);
                         match Clerk.receive clerk ~timeout:10.0 () with
                         | Some _ ->
                           Histogram.add lat (Sched.clock () -. t0);
                           incr completed;
                           (* the user ponders the reply with no locks held *)
                           Sched.sleep think
                         | None -> go (n + 1)
                       end
                     in
                     go 0
                   | `Queued, None -> assert false);
                   ()
                 done;
                 incr done_clients))
        done;
        ignore (Common.await ~timeout:3000.0 (fun () -> !done_clients = clients));
        let elapsed = Sched.clock () -. start in
        {
          design =
            (match design with
            | `Held -> "1-txn client (locks across think)"
            | `Queued -> "queued 3-txn (this paper)");
          think;
          clients;
          hot_accounts;
          completed = !completed;
          elapsed;
          throughput = float_of_int !completed /. elapsed;
          p95_latency = Histogram.percentile lat 0.95;
        })

let run ?(clients = 10) ?(per_client = 3) ?(hot_accounts = 3) () =
  List.concat_map
    (fun think ->
      [
        one_run ~design:`Held ~think ~clients ~per_client ~hot_accounts ~seed:29;
        one_run ~design:`Queued ~think ~clients ~per_client ~hot_accounts ~seed:29;
      ])
    [ 0.1; 0.5; 2.0 ]

let table rows =
  let t =
    Table.create
      ~title:
        "B2: one-transaction client vs queued design (10 clients, 3 hot accounts)"
      ~columns:
        [ "design"; "think (s)"; "completed"; "elapsed (s)"; "req/s";
          "p95 latency (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.design;
          Printf.sprintf "%.1f" r.think;
          string_of_int r.completed;
          Printf.sprintf "%.2f" r.elapsed;
          Printf.sprintf "%.2f" r.throughput;
          Printf.sprintf "%.3f" r.p95_latency;
        ])
    rows;
  t
