(* B9: the cost of replicated queues (paper §11: one-copy replication
   "despite the cost of such strong synchronization"). Compares a plain
   single-copy queue against a primary-backup pair coupled by synchronous
   WAL shipping ({!Rrq_core.Ha}): every commit force on the primary gates
   on the backup's acknowledgement, so the pair latency is the price of
   the one-copy guarantee. The benefit side: after losing the primary the
   standby promotes and still holds the element. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Ha = Rrq_core.Ha
module Table = Rrq_util.Table
module Histogram = Rrq_util.Histogram

type row = {
  config : string;
  ops : int;
  elapsed : float;
  ops_per_s : float;
  p95_latency : float;
  survives_site_loss : bool;
}

let one_run ~replicated ~ops ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let a =
        Site.create ~queues:[ ("q", Qm.default_attrs) ] ~stale_timeout:5.0
          (Net.make_node net "siteA")
      in
      let pair =
        if not replicated then None
        else begin
          let b =
            Site.create ~queues:[ ("q", Qm.default_attrs) ] ~stale_timeout:5.0
              (Net.make_node net "siteB")
          in
          let ha_a =
            Ha.attach ~mode:Ha.Sync a ~peer:"siteB" ~role:Ha.Primary
          in
          let ha_b =
            Ha.attach ~mode:Ha.Sync b ~peer:"siteA" ~role:Ha.Standby
          in
          Some (b, ha_a, ha_b)
        end
      in
      fun () ->
        (* Replicated run: wait for the link before timing anything, so
           every commit force below really pays the shipping round trip. *)
        (match pair with
        | Some (_, ha_a, _) ->
          ignore
            (Common.await (fun () -> Ha.is_serving ha_a && Ha.shipping ha_a))
        | None -> ());
        let h, _ =
          Qm.register (Site.qm a) ~queue:"q" ~registrant:"bench" ~stable:true
        in
        let lat = Histogram.create () in
        let start = Sched.clock () in
        for i = 1 to ops do
          let t0 = Sched.clock () in
          ignore
            (Site.with_txn a (fun txn ->
                 ignore
                   (Qm.enqueue (Site.qm a) (Tm.txn_id txn) h
                      (Printf.sprintf "p%d" i))));
          ignore
            (Site.with_txn a (fun txn ->
                 ignore (Qm.dequeue (Site.qm a) (Tm.txn_id txn) h Qm.No_wait)));
          Histogram.add lat (Sched.clock () -. t0)
        done;
        let elapsed = Sched.clock () -. start in
        (* Does an element survive losing the site it was enqueued on? *)
        ignore
          (Site.with_txn a (fun txn ->
               ignore (Qm.enqueue (Site.qm a) (Tm.txn_id txn) h "survivor")));
        Site.crash a;
        let survives =
          match pair with
          | None -> false (* the only copy dies with siteA *)
          | Some (b, _, ha_b) ->
            (* The standby misses the heartbeats, promotes, and must find
               the shipped element in its replayed queue. *)
            Common.await ~timeout:30.0 (fun () -> Ha.is_serving ha_b)
            && Qm.depth (Site.qm b) "q" = 1
        in
        {
          config =
            (if replicated then "replicated (primary-backup, WAL shipping)"
             else "single copy");
          ops;
          elapsed;
          ops_per_s = float_of_int (2 * ops) /. elapsed;
          p95_latency = Histogram.percentile lat 0.95;
          survives_site_loss = survives;
        })

let run ?(ops = 100) ?(seed = 51) () =
  [
    one_run ~replicated:false ~ops ~seed; one_run ~replicated:true ~ops ~seed;
  ]

let table rows =
  let t =
    Table.create
      ~title:"B9: replicated queues - the cost and benefit of one-copy replication (sec. 11)"
      ~columns:
        [ "configuration"; "enq+deq pairs"; "elapsed (s)"; "ops/s";
          "p95 pair latency (s)"; "element survives site loss" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.config;
          string_of_int r.ops;
          Printf.sprintf "%.2f" r.elapsed;
          (if r.elapsed < 1e-9 then "n/a (all local, 0 virtual time)"
           else Printf.sprintf "%.1f" r.ops_per_s);
          Printf.sprintf "%.4f" r.p95_latency;
          (if r.survives_site_loss then "yes" else "no");
        ])
    rows;
  t
