(** Experiment E1: request-flow reliability under failures (paper §2, §5).

    Pushes a fixed workload through three protocols — plain messages fired
    once (at-most-once), plain messages with retry (at-least-once), and the
    paper's queued protocol — under combinations of message loss and
    backend crashes, and audits how many requests were lost, executed
    exactly once, or executed more than once, and how many replies the
    client obtained.

    The queued protocol must show [lost = duplicated = 0] in every
    condition; the baselines show the failure modes the paper's §2
    describes. *)

type row = {
  protocol : string;
  condition : string;
  requests : int;
  replies : int;
  lost : int;
  exactly_once : int;
  duplicated : int;
}

val run : ?requests:int -> unit -> row list

val table : row list -> Rrq_util.Table.t
