(* B15: failover latency. A clerk talks to an HA pair; the primary is
   killed mid-conversation and the virtual clock measures the gap from
   the kill to the first reply the clerk extracts from the promoted
   backup. The sweep crosses the shipping mode (Sync plus several lagged
   batch intervals) with the standby temperature: a warm standby replays
   shipped records as they arrive, a cold one only stores them and pays a
   replay scan at promotion time. The replay rate is set deliberately low
   so the scan is visible at this log size — the point is the shape
   (warm beats cold, and by how much), not the absolute seconds. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Ha = Rrq_core.Ha
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Envelope = Rrq_core.Envelope
module Table = Rrq_util.Table

type row = {
  mode : string;
  standby : string;
  warmup : int;
  ship_batches : int;
  applied_bytes : int;
  failover_s : float;
}

(* Slow enough that a few tens of kilobytes of shipped log cost the cold
   standby whole virtual seconds at promotion. *)
let replay_bytes_per_sec = 4.0 *. 1024.

let mode_label = function
  | Ha.Sync -> "sync"
  | Ha.Lagged d -> Printf.sprintf "lagged %.2fs" d

let one_run ~mode ~cold ~warmup ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create ~latency:0.005 s (Rng.create seed) in
      let site_p =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
          (Net.make_node net "primary")
      in
      let site_b =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:3.0
          (Net.make_node net "backup")
      in
      let serve ha =
        ignore
          (Server.start_here (Ha.site ha) ~req_queue:"req" ~threads:2
             Common.counting_handler)
      in
      let ha_p =
        Ha.attach ~mode ~on_serving:serve site_p ~peer:"backup"
          ~role:Ha.Primary
      in
      let ha_b =
        Ha.attach ~mode ~cold ~replay_bytes_per_sec ~on_serving:serve site_b
          ~peer:"primary" ~role:Ha.Standby
      in
      let client_node = Net.make_node net "client" in
      fun () ->
        ignore
          (Common.await (fun () -> Ha.is_serving ha_p && Ha.shipping ha_p));
        (* A short RPC timeout keeps the clerk's outage-rotation cycle well
           under the latencies being compared, so the measurement resolves
           the warm/cold difference instead of quantizing it away. *)
        let clerk, _ =
          Clerk.connect ~client_node ~system:"primary" ~backups:[ "backup" ]
            ~client_id:"b15" ~req_queue:"req" ~rpc_timeout:0.25 ~retries:8 ()
        in
        (* One full conversation turn, riding the clerk's backup rotation
           through any outage. *)
        let request rid =
          let rec send n =
            try ignore (Clerk.send clerk ~rid ("work:" ^ rid))
            with Clerk.Unavailable _ when n > 0 ->
              Sched.sleep 0.25;
              send (n - 1)
          in
          send 120;
          let rec recv () =
            let reply =
              try Clerk.receive clerk ~timeout:2.0 ()
              with Clerk.Unavailable _ ->
                Sched.sleep 0.25;
                None
            in
            match reply with
            | Some env
              when env.Envelope.kind <> "intermediate"
                   && env.Envelope.rid = rid ->
              ()
            | _ -> recv ()
          in
          recv ()
        in
        for i = 1 to warmup do
          request (Printf.sprintf "warm-%d" i)
        done;
        (* Let a lagged shipper drain, so the kill measures takeover time
           rather than the loss of the warmup tail. *)
        (match mode with
        | Ha.Lagged d -> Sched.sleep ((2.0 *. d) +. 0.1)
        | Ha.Sync -> ());
        let batches = Ha.ship_batches ha_p in
        let applied = Ha.applied_bytes ha_b in
        let killed_at = Sched.clock () in
        Site.crash site_p;
        request "post-failover";
        {
          mode = mode_label mode;
          standby = (if cold then "cold" else "warm");
          warmup;
          ship_batches = batches;
          applied_bytes = applied;
          failover_s = Sched.clock () -. killed_at;
        })

let modes = [ Ha.Sync; Ha.Lagged 0.1; Ha.Lagged 0.5; Ha.Lagged 1.0 ]

let run ?(warmup = 40) ?(seed = 71) () =
  List.concat_map
    (fun mode ->
      [
        one_run ~mode ~cold:false ~warmup ~seed;
        one_run ~mode ~cold:true ~warmup ~seed;
      ])
    modes

let table rows =
  let t =
    Table.create
      ~title:
        "B15: failover latency - primary kill to first post-failover reply"
      ~columns:
        [ "shipping mode"; "standby"; "warmup requests"; "shipped batches";
          "applied bytes"; "kill -> first reply (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.mode;
          r.standby;
          string_of_int r.warmup;
          string_of_int r.ship_batches;
          string_of_int r.applied_bytes;
          Printf.sprintf "%.3f" r.failover_s;
        ])
    rows;
  t
