(** Experiment B15: failover latency of the HA pair ({!Rrq_core.Ha}) —
    the virtual-clock time from the primary's kill to the first reply a
    mid-conversation clerk extracts from the promoted backup, swept over
    the shipping mode (sync plus several lagged batch intervals) crossed
    with warm vs cold standby. *)

type row = {
  mode : string;  (** Shipping mode: "sync" or "lagged <d>s". *)
  standby : string;  (** "warm" (replays on arrival) or "cold" (stores). *)
  warmup : int;  (** Conversation turns completed before the kill. *)
  ship_batches : int;  (** Batches the primary shipped before the kill. *)
  applied_bytes : int;  (** Shipped bytes held by the standby at the kill. *)
  failover_s : float;  (** Kill to first post-failover reply, seconds. *)
}

val run : ?warmup:int -> ?seed:int -> unit -> row list
val table : row list -> Rrq_util.Table.t
