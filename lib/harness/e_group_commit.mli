(** B12: the commit-path cost of one log force per transaction, and how
    group commit removes it.

    Paper §10 prices a recoverable queue operation at "a disk write to log
    the update" — with one forced write per enqueue/dequeue, the log device
    caps system throughput at one transaction per device flush regardless
    of server parallelism. This experiment drains a preloaded queue with N
    concurrent server fibers over a disk whose flush occupies the device
    for a fixed virtual latency, comparing the [Immediate] (one sync per
    commit) and [Batch] ({!Rrq_wal.Group_commit}) policies. The batch rows
    should show syncs/commit well below 1 and throughput scaling with N,
    while immediate rows stay pinned near [1/sync_latency]. *)

type row = {
  policy : string;
  servers : int;
  commits : int;
  elapsed : float;  (** Virtual seconds to drain the queue. *)
  commits_per_sec : float;
  syncs_per_commit : float;  (** Device flushes per committed dequeue. *)
  commit_p50 : float;  (** Median dequeue commit latency (virtual s). *)
  commit_p99 : float;
  seals : (string * int) list;
      (** Group-commit seal counts by reason (full/timeout/idle/rate/
          immediate) during the drain — see [Group_commit.seal_counts]. *)
}

val default_batch : Rrq_wal.Group_commit.policy
(** 0.5ms accumulation window, 64-commit batches. *)

val default_adaptive : Rrq_wal.Group_commit.policy
(** Adaptive sealing, capped at a 0.5ms window and 64-commit batches. *)

val one_run :
  policy:Rrq_wal.Group_commit.policy ->
  servers:int ->
  jobs:int ->
  sync_latency:float ->
  row

val run : ?jobs:int -> ?sync_latency:float -> unit -> row list
(** Sweep servers in [1; 2; 4; 8; 16] under both policies. Defaults: 200
    jobs, 1ms per device flush. *)

val run_b14 : ?jobs:int -> ?sync_latency:float -> unit -> row list
(** B14: sweep every server count in [1..16] under [Immediate],
    {!default_batch} and {!default_adaptive}. The claim under test:
    adaptive commits/s >= max(immediate, batch) at every point, and
    within 5% of immediate at one server. *)

val table : row list -> Rrq_util.Table.t

val table_b14 : row list -> Rrq_util.Table.t
(** Like {!table} but with a seal-reason column, so [--json] rows carry
    the seal counters. *)
