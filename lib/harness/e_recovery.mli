(** Experiment B7 (paper §10): recovery cost and the effect of
    checkpointing on a queue repository treated as a main-memory database
    with a log. *)

type row = {
  ops : int;
  checkpoint_every : int option;
  log_bytes : int;
  recovery_seconds : float;  (** Host CPU time to re-open after a crash. *)
  recovered_elements : int;
}

val run : ?sizes:int list -> unit -> row list
val table : row list -> Rrq_util.Table.t
