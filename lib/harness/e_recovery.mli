(** Experiment B7 (paper §10): recovery cost and the effect of
    checkpointing on a queue repository treated as a main-memory database
    with a log. *)

type row = {
  ops : int;
  checkpoint_every : int option;
  log_bytes : int;
  recovery_seconds : float;
      (** Virtual seconds to re-open after a crash, under the deterministic
          replay-cost model (live log scanned at a fixed device rate) — a
          pure function of the workload, so the B7 table is replayable. *)
  recovered_elements : int;
}

val run : ?sizes:int list -> unit -> row list
val table : row list -> Rrq_util.Table.t
