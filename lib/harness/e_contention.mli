(** Experiment B2 (paper §2): the cost of holding locks across reply
    delivery and user think time.

    Compares the one-transaction client design ({e send request, receive
    reply, process reply} inside one transaction — locks held for the whole
    round trip plus think time) against the paper's three-transaction
    queued design (server locks held only for its short transaction; the
    user thinks with no locks held), on a small hot account set, across a
    think-time sweep. The queued design's latency should stay flat while
    the held-lock design's p95 grows with think time. *)

type row = {
  design : string;
  think : float;
  clients : int;
  hot_accounts : int;
  completed : int;
  elapsed : float;
  throughput : float;
  p95_latency : float;
}

val run : ?clients:int -> ?per_client:int -> ?hot_accounts:int -> unit -> row list
val table : row list -> Rrq_util.Table.t
