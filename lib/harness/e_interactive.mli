(** Experiment E3 (paper §8): the two interactive-request implementations
    compared on the paper's own criteria — transactions per conversation,
    whether a failure re-solicits input from the user, and late
    cancellability. *)

type row = {
  mode : string;
  transactions : int;
  user_prompts : int;
  reprompts_after_abort : int;
  cancellable_after_output : bool;
  completed : bool;
}

val run : unit -> row list
val table : row list -> Rrq_util.Table.t
