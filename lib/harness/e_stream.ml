(* B10: the streaming extension (paper §11 / Mercury). The one-at-a-time
   Client Model pays a full round trip per request; a window of concurrent
   per-thread sessions hides the link latency. Sweep the window width over
   a high-latency link and measure makespan. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Stream_clerk = Rrq_core.Stream_clerk
module Table = Rrq_util.Table

type row = {
  width : int;
  requests : int;
  latency : float;
  elapsed : float;
  throughput : float;
  exactly_once : bool;
}

let one_run ~width ~requests ~latency ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create ~latency s (Rng.create seed) in
      let backend =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:10.0
          (Net.make_node net "backend")
      in
      let _ =
        Server.start backend ~req_queue:"req" ~threads:(max 8 width)
          (fun site txn env ->
            ignore
              (Kvdb.add (Site.kv site) (Tm.txn_id txn)
                 ("exec:" ^ env.Rrq_core.Envelope.rid) 1);
            Server.Reply "ok")
      in
      let client_node = Net.make_node net "client" in
      fun () ->
        let stream =
          Stream_clerk.connect ~client_node ~system:"backend" ~client_id:"s"
            ~req_queue:"req" ~width ()
        in
        let start = Sched.clock () in
        for i = 1 to requests do
          Stream_clerk.submit stream ~rid:(Printf.sprintf "r%d" i) "job"
        done;
        let replies = Stream_clerk.drain stream () in
        let elapsed = Sched.clock () -. start in
        let rids = List.init requests (fun i -> Printf.sprintf "r%d" (i + 1)) in
        let lost, exact, dup = Common.audit_executions [ backend ] ~rids in
        {
          width;
          requests;
          latency;
          elapsed;
          throughput = float_of_int (List.length replies) /. elapsed;
          exactly_once = lost = 0 && dup = 0 && exact = requests;
        })

let run ?(requests = 24) ?(latency = 0.05) () =
  List.map
    (fun width -> one_run ~width ~requests ~latency ~seed:61)
    [ 1; 2; 4; 8 ]

let table rows =
  let t =
    Table.create
      ~title:
        "B10: streaming requests/replies (sec. 11, Mercury-style) over a 50ms link"
      ~columns:
        [ "window width"; "requests"; "elapsed (s)"; "req/s"; "exactly-once" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.width;
          string_of_int r.requests;
          Printf.sprintf "%.2f" r.elapsed;
          Printf.sprintf "%.1f" r.throughput;
          (if r.exactly_once then "yes" else "NO");
        ])
    rows;
  t
