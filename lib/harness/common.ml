module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Tm = Rrq_txn.Tm
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope

let run_scenario f =
  let s = Sched.create () in
  let driver = f s in
  let result = ref None in
  ignore (Sched.spawn s ~name:"driver" (fun () -> result := Some (driver ())));
  Sched.run s;
  (match Sched.failures s with
  | [] -> ()
  | (name, e) :: _ ->
    failwith
      (Printf.sprintf "scenario: fiber %s raised %s" name (Printexc.to_string e)));
  match !result with
  | Some v -> v
  | None -> failwith "scenario driver did not complete (simulated deadlock?)"

let await ?(timeout = 300.0) ?(poll = 0.1) pred =
  let deadline = Sched.clock () +. timeout in
  let rec go () =
    if pred () then true
    else if Sched.clock () >= deadline then false
    else begin
      Sched.sleep poll;
      go ()
    end
  in
  go ()

type rig = { net : Net.t; backend : Site.t; client_node : Net.node }

let make_rig ?(drop_rate = 0.0) ?(latency = 0.005) ?queues
    ?(stale_timeout = 3.0) ?(seed = 42) s =
  let net = Net.create ~latency ~drop_rate s (Rng.create seed) in
  let queues =
    match queues with Some q -> q | None -> [ ("req", Qm.default_attrs) ]
  in
  let backend = Site.create ~queues ~stale_timeout (Net.make_node net "backend") in
  let client_node = Net.make_node net "client" in
  { net; backend; client_node }

let counting_handler site txn env =
  let kv = Site.kv site in
  let id = Tm.txn_id txn in
  ignore (Kvdb.add kv id ("exec:" ^ env.Envelope.rid) 1);
  ignore (Kvdb.add kv id "total" 1);
  Server.Reply ("done:" ^ env.Envelope.body)

let exec_count site rid =
  match Kvdb.committed_value (Site.kv site) ("exec:" ^ rid) with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
  | None -> 0

let audit_executions sites ~rids =
  List.fold_left
    (fun (lost, exact, dup) rid ->
      let n = List.fold_left (fun acc site -> acc + exec_count site rid) 0 sites in
      if n = 0 then (lost + 1, exact, dup)
      else if n = 1 then (lost, exact + 1, dup)
      else (lost, exact, dup + 1))
    (0, 0, 0) rids
