module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site

(* The scenario driver and the audit ledger live in [Rrq_check] now, shared
   with the simulation tester; the harness keeps its historical names. The
   Failure wrapper preserves this module's documented contract. *)
let run_scenario ?policy f =
  try Rrq_check.Runner.run_scenario ?policy f
  with Rrq_check.Runner.Scenario_failure msg -> failwith msg

let await = Rrq_check.Runner.await

type rig = { net : Net.t; backend : Site.t; client_node : Net.node }

let make_rig ?(drop_rate = 0.0) ?(latency = 0.005) ?queues
    ?(stale_timeout = 3.0) ?(seed = 42) s =
  let net = Net.create ~latency ~drop_rate s (Rng.create seed) in
  let queues =
    match queues with Some q -> q | None -> [ ("req", Qm.default_attrs) ]
  in
  let backend = Site.create ~queues ~stale_timeout (Net.make_node net "backend") in
  let client_node = Net.make_node net "client" in
  { net; backend; client_node }

let counting_handler = Rrq_check.Audit.counting_handler
let exec_count = Rrq_check.Audit.exec_count
let audit_executions = Rrq_check.Audit.audit_executions
