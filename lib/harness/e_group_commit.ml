(* B12: group commit on the commit path. See the .mli for the paper claim.

   The rig deliberately bypasses Site/Server: we want the commit path and
   nothing else. A queue is preloaded with jobs; [servers] fibers drain it
   with auto-committed dequeues against a disk whose flushes take
   [sync_latency] virtual seconds each (and serialize on the device). Under
   [Immediate] every commit pays its own flush, so total throughput is
   pinned near 1/sync_latency no matter how many servers run; under [Batch]
   one flush covers a whole boatload of commits.

   All numbers come from the [Rrq_obs] registry: the QM's own
   auto-commit counter and latency histogram and group commit's sync
   counter, diffed across the drain phase so the preload does not count. *)

module Sched = Rrq_sim.Sched
module Disk = Rrq_storage.Disk
module Group_commit = Rrq_wal.Group_commit
module Qm = Rrq_qm.Qm
module Table = Rrq_util.Table
module Histogram = Rrq_util.Histogram

type row = {
  policy : string;
  servers : int;
  commits : int;
  elapsed : float;
  commits_per_sec : float;
  syncs_per_commit : float;
  commit_p50 : float;
  commit_p99 : float;
  seals : (string * int) list;
}

let policy_name = function
  | Group_commit.Immediate -> "immediate"
  | Group_commit.Batch { max_delay; max_batch } ->
    Printf.sprintf "batch (%.1fms/%d)" (max_delay *. 1000.0) max_batch
  | Group_commit.Adaptive { max_delay; max_batch } ->
    Printf.sprintf "adaptive (%.1fms/%d)" (max_delay *. 1000.0) max_batch

let seal_reasons = [ "full"; "timeout"; "idle"; "rate"; "immediate" ]

let one_run ~policy ~servers ~jobs ~sync_latency =
  Rrq_obs.reset ();
  Fun.protect ~finally:Rrq_obs.disable (fun () ->
      Common.run_scenario (fun s ->
          let disk = Disk.create ~sync_latency "b12" in
          let qm = Qm.open_qm ~commit_policy:policy disk ~name:"qm" in
          Qm.set_clock qm (fun () -> Sched.now s);
          Qm.create_queue qm "req";
          let last_commit = ref 0.0 in
          fun () ->
            let h, _ =
              Qm.register qm ~queue:"req" ~registrant:"drain" ~stable:false
            in
            for i = 1 to jobs do
              ignore
                (Qm.auto_commit qm (fun id ->
                     Qm.enqueue qm id h (Printf.sprintf "job%d" i)))
            done;
            (* Only the drain phase is under measurement. *)
            let before = Rrq_obs.Metrics.snapshot () in
            let start = Sched.clock () in
            let fibers =
              List.init servers (fun i ->
                  Sched.fork ~name:(Printf.sprintf "server%d" i) (fun () ->
                      let rec loop () =
                        match
                          Qm.auto_commit qm (fun id ->
                              Qm.dequeue qm id h Qm.No_wait)
                        with
                        | Some _ ->
                          last_commit := Sched.clock ();
                          loop ()
                        | None -> ()
                      in
                      loop ()))
            in
            ignore
              (Common.await ~timeout:3000.0 ~poll:0.01 (fun () ->
                   not (List.exists Sched.alive fibers)));
            let d =
              Rrq_obs.Metrics.diff ~before
                ~after:(Rrq_obs.Metrics.snapshot ())
            in
            let commits = Rrq_obs.Metrics.find_counter d "qm.auto_commits:qm" in
            let syncs = Rrq_obs.Metrics.find_counter d "gc.syncs:qm.qmlog" in
            let lat = Rrq_obs.Metrics.histogram d "qm.commit.latency:qm" in
            (* Poll granularity must not skew throughput: stop the clock at
               the last commit, not at the poll that noticed it. *)
            let elapsed = !last_commit -. start in
            {
              policy = policy_name policy;
              servers;
              commits;
              elapsed;
              commits_per_sec =
                (if elapsed > 0.0 then float_of_int commits /. elapsed else 0.0);
              syncs_per_commit =
                (if commits > 0 then float_of_int syncs /. float_of_int commits
                 else 0.0);
              commit_p50 = Histogram.percentile lat 0.50;
              commit_p99 = Histogram.percentile lat 0.99;
              seals =
                List.map
                  (fun r ->
                    ( r,
                      Rrq_obs.Metrics.find_counter d
                        ("gc.seal." ^ r ^ ":qm.qmlog") ))
                  seal_reasons;
            }))

let default_batch = Group_commit.Batch { max_delay = 0.0005; max_batch = 64 }

let default_adaptive =
  Group_commit.Adaptive { max_delay = 0.0005; max_batch = 64 }

let run ?(jobs = 200) ?(sync_latency = 0.001) () =
  List.concat_map
    (fun servers ->
      List.map
        (fun policy -> one_run ~policy ~servers ~jobs ~sync_latency)
        [ Group_commit.Immediate; default_batch ])
    [ 1; 2; 4; 8; 16 ]

(* B14: every server count from 1 to 16 — the claim under test is that
   Adaptive dominates pointwise, so the sweep must not skip the awkward
   in-between counts where a fixed window is mistuned in both directions. *)
let run_b14 ?(jobs = 200) ?(sync_latency = 0.001) () =
  List.concat_map
    (fun servers ->
      List.map
        (fun policy -> one_run ~policy ~servers ~jobs ~sync_latency)
        [ Group_commit.Immediate; default_batch; default_adaptive ])
    (List.init 16 (fun i -> i + 1))

let table rows =
  let t =
    Table.create
      ~title:
        "B12: group commit - 200 auto-committed dequeues, 1ms disk flush (sec. 10)"
      ~columns:
        [
          "policy";
          "servers";
          "commits";
          "elapsed (s)";
          "commits/s";
          "syncs/commit";
          "p50 commit (ms)";
          "p99 commit (ms)";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.policy;
          string_of_int r.servers;
          string_of_int r.commits;
          Printf.sprintf "%.3f" r.elapsed;
          Printf.sprintf "%.0f" r.commits_per_sec;
          Printf.sprintf "%.3f" r.syncs_per_commit;
          Printf.sprintf "%.2f" (r.commit_p50 *. 1000.0);
          Printf.sprintf "%.2f" (r.commit_p99 *. 1000.0);
        ])
    rows;
  t

let seals_cell seals =
  match List.filter (fun (_, n) -> n > 0) seals with
  | [] -> "-"
  | nz ->
    String.concat " " (List.map (fun (r, n) -> Printf.sprintf "%s:%d" r n) nz)

let table_b14 rows =
  let t =
    Table.create
      ~title:
        "B14: adaptive vs fixed vs immediate group commit - 200 dequeues, 1ms flush (sec. 10)"
      ~columns:
        [
          "policy";
          "servers";
          "commits";
          "commits/s";
          "syncs/commit";
          "p50 commit (ms)";
          "seals";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.policy;
          string_of_int r.servers;
          string_of_int r.commits;
          Printf.sprintf "%.0f" r.commits_per_sec;
          Printf.sprintf "%.3f" r.syncs_per_commit;
          Printf.sprintf "%.2f" (r.commit_p50 *. 1000.0);
          seals_cell r.seals;
        ])
    rows;
  t
