(* E3: the two implementations of interactive requests (paper §8) compared
   on the properties the paper discusses: how many transactions a
   conversation costs, whether a server-side failure re-solicits input from
   the user, and whether the request can still be cancelled after the first
   intermediate output. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Envelope = Rrq_core.Envelope
module Interactive = Rrq_core.Interactive
module Table = Rrq_util.Table

type row = {
  mode : string;
  transactions : int;  (** Committed transactions per conversation. *)
  user_prompts : int;  (** Times the user was actually asked. *)
  reprompts_after_abort : int;  (** Extra prompts caused by the injected failure. *)
  cancellable_after_output : bool;
  completed : bool;
}

(* Pseudo-conversational: 2 intermediate turns; the second leg's first
   execution aborts. Inputs ride in the requests, so the retry re-asks
   nothing. *)
let pseudo_run ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let backend =
        Site.create ~queues:[ ("conv", Qm.default_attrs) ] ~stale_timeout:3.0
          (Net.make_node net "backend")
      in
      let leg2_attempts = ref 0 in
      let _ =
        Interactive.pseudo_server backend ~req_queue:"conv"
          (fun _site _txn env ->
            match env.Envelope.step with
            | 0 -> Interactive.Intermediate { output = "q1"; scratch = "s1" }
            | 1 ->
              incr leg2_attempts;
              if !leg2_attempts = 1 then failwith "injected leg-2 abort";
              Interactive.Intermediate
                { output = "q2"; scratch = env.Envelope.scratch ^ "+a1" }
            | _ -> Interactive.Final ("done:" ^ env.Envelope.scratch))
      in
      let client_node = Net.make_node net "client" in
      fun () ->
        let prompts = ref 0 in
        let clerk, _ =
          Clerk.connect ~client_node ~system:"backend" ~client_id:"alice"
            ~req_queue:"conv" ()
        in
        let final =
          Interactive.pseudo_client clerk ~rid:"c1" ~body:"go"
            ~respond:(fun ~step:_ ~output:_ ->
              incr prompts;
              "ans")
            ()
        in
        (* Cancellability probe in a fresh conversation: after the first
           output, the original request element is already consumed by the
           committed first leg, so Kill_element cannot cancel it. *)
        let clerk2, _ =
          Clerk.connect ~client_node ~system:"backend" ~client_id:"bob"
            ~req_queue:"conv" ()
        in
        ignore (Clerk.send clerk2 ~rid:"c2" "go");
        let cancellable =
          match Clerk.receive clerk2 () with
          | Some _first_output -> Clerk.cancel_last_request clerk2
          | None -> false
        in
        {
          mode = "pseudo-conversational (8.2)";
          transactions = 3;
          user_prompts = !prompts;
          reprompts_after_abort = !prompts - 2;
          cancellable_after_output = cancellable;
          completed = final <> None;
        })

(* Single-transaction conversation: 2 prompts via direct messages; the
   first execution aborts after both inputs; re-execution replays them from
   the client's durable I/O log. *)
let single_txn_run ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let backend =
        Site.create ~queues:[ ("conv", Qm.default_attrs) ] ~stale_timeout:3.0
          (Net.make_node net "backend")
      in
      let client_node = Net.make_node net "client" in
      let hesitating = ref false in
      Interactive.install_display client_node ~user:(fun ~rid ~seq ~prompt:_ ->
          if rid = "c2" && seq = 2 then begin
            (* the user hesitates: window for cancellation *)
            hesitating := true;
            Sched.sleep 3.0
          end;
          Printf.sprintf "a%d" seq);
      let attempts = ref 0 in
      let _ =
        Server.start backend ~req_queue:"conv" (fun site _txn env ->
            let c = Interactive.console site env ~display:"client" in
            let a1 = Interactive.ask c "q1" in
            let a2 = Interactive.ask c "q2" in
            if env.Envelope.rid = "c1" then begin
              incr attempts;
              if !attempts = 1 then failwith "injected abort after inputs"
            end;
            Server.Reply (Printf.sprintf "done:%s,%s" a1 a2))
      in
      fun () ->
        let clerk, _ =
          Clerk.connect ~client_node ~system:"backend" ~client_id:"alice"
            ~req_queue:"conv" ()
        in
        let reply = Clerk.transceive clerk ~rid:"c1" ~timeout:20.0 "go" in
        let prompts_c1 = Interactive.display_asks client_node in
        (* Cancellability probe: cancel while the user hesitates on q2. *)
        let clerk2, _ =
          Clerk.connect ~client_node ~system:"backend" ~client_id:"bob"
            ~req_queue:"conv" ()
        in
        let cancel_result = ref false in
        ignore
          (Sched.fork ~name:"canceller" (fun () ->
               ignore (Common.await ~timeout:30.0 (fun () -> !hesitating));
               cancel_result := Clerk.cancel_last_request clerk2));
        ignore (Clerk.send clerk2 ~rid:"c2" "go");
        (* wait for the cancel to land; no reply will come *)
        ignore (Common.await ~timeout:30.0 (fun () -> !cancel_result));
        Sched.sleep 5.0;
        {
          mode = "single-txn conversation (8.3)";
          transactions = 1;
          user_prompts = prompts_c1;
          reprompts_after_abort = prompts_c1 - 2;
          cancellable_after_output = !cancel_result;
          completed = reply <> None;
        })

let run () = [ pseudo_run ~seed:41; single_txn_run ~seed:43 ]

let table rows =
  let t =
    Table.create
      ~title:
        "E3: interactive requests - pseudo-conversational vs single transaction (2 prompts, 1 injected abort)"
      ~columns:
        [ "implementation"; "txns/conv"; "user prompts"; "re-prompts after abort";
          "cancellable after 1st output"; "completed" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.mode;
          string_of_int r.transactions;
          string_of_int r.user_prompts;
          string_of_int r.reprompts_after_abort;
          (if r.cancellable_after_output then "yes" else "no");
          (if r.completed then "yes" else "no");
        ])
    rows;
  t
