(* Queueing-behavior experiments: B3 (skip-locked vs strict FIFO dequeue),
   B4 (burst absorption vs a queueless server), B5 (load sharing). See the
   .mli for the paper claims each one reproduces. *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope
module Table = Rrq_util.Table
module Histogram = Rrq_util.Histogram

(* ---- B3/B5: dequeue concurrency ---------------------------------------- *)

type drain_row = {
  mode : string;
  servers : int;
  jobs : int;
  makespan : float;
  throughput : float;
}

(* Pre-load [jobs] requests, start [servers] threads whose handler takes
   [work] seconds, and measure the time to drain the queue. *)
let one_drain_run ~strict ~servers ~jobs ~work ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let attrs = { Qm.default_attrs with strict_fifo = strict } in
      let backend =
        Site.create ~queues:[ ("req", attrs) ] ~stale_timeout:30.0
          (Net.make_node net "backend")
      in
      let server =
        Server.start backend ~req_queue:"req" ~threads:servers
          (fun site txn _env ->
            Sched.sleep work;
            ignore (Kvdb.add (Site.kv site) (Tm.txn_id txn) "served" 1);
            Server.No_reply)
      in
      fun () ->
        let qm = Site.qm backend in
        let h, _ =
          Qm.register qm ~queue:"req" ~registrant:"loader" ~stable:false
        in
        for i = 1 to jobs do
          let env =
            Envelope.make ~rid:(Printf.sprintf "j%d" i) ~client_id:"loader"
              ~reply_node:"backend" ~reply_queue:"req" "job"
          in
          ignore
            (Qm.auto_commit qm (fun id ->
                 Qm.enqueue qm id h (Envelope.to_string env)))
        done;
        let start = Sched.clock () in
        ignore
          (Common.await ~timeout:3000.0 ~poll:0.05 (fun () ->
               Server.processed server >= jobs));
        let makespan = Sched.clock () -. start in
        {
          mode = (if strict then "strict FIFO" else "skip-locked");
          servers;
          jobs;
          makespan;
          throughput = float_of_int jobs /. makespan;
        })

let run_drain ?(jobs = 60) ?(work = 0.05) () =
  List.concat_map
    (fun strict ->
      List.map
        (fun servers -> one_drain_run ~strict ~servers ~jobs ~work ~seed:3)
        [ 1; 2; 4; 8 ])
    [ false; true ]

let drain_table rows =
  let t =
    Table.create
      ~title:
        "B3/B5: draining 60 jobs (50ms each) - skip-locked scales, strict FIFO serializes"
      ~columns:[ "dequeue mode"; "servers"; "makespan (s)"; "jobs/s" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.mode;
          string_of_int r.servers;
          Printf.sprintf "%.2f" r.makespan;
          Printf.sprintf "%.1f" r.throughput;
        ])
    rows;
  t

(* ---- B11: priority scheduling ------------------------------------------ *)

type priority_row = {
  policy : string;
  backlog : int;
  express_jobs : int;
  express_p95 : float;
  standard_p95 : float;
}

(* A backlog of standard jobs is draining; express jobs arrive during the
   drain. With priority scheduling the express jobs jump the backlog. *)
let one_priority_run ~use_priorities ~backlog ~express ~work ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let backend =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:60.0
          (Net.make_node net "backend")
      in
      let express_lat = Histogram.create () in
      let standard_lat = Histogram.create () in
      let served = ref 0 in
      let submitted : (string, float) Hashtbl.t = Hashtbl.create 64 in
      let _ =
        Server.start backend ~req_queue:"req" ~threads:2 (fun _site _txn env ->
            Sched.sleep work;
            (match Hashtbl.find_opt submitted env.Envelope.rid with
            | Some t0 ->
              let lat = Sched.clock () -. t0 in
              if String.length env.Envelope.rid >= 3
                 && String.sub env.Envelope.rid 0 3 = "exp"
              then Histogram.add express_lat lat
              else Histogram.add standard_lat lat
            | None -> ());
            incr served;
            Server.No_reply)
      in
      fun () ->
        let qm = Site.qm backend in
        let h, _ =
          Qm.register qm ~queue:"req" ~registrant:"load" ~stable:false
        in
        let push rid priority =
          Hashtbl.replace submitted rid (Sched.clock ());
          let env =
            Envelope.make ~rid ~client_id:"load" ~reply_node:"backend"
              ~reply_queue:"req" "job"
          in
          ignore
            (Qm.auto_commit qm (fun id ->
                 Qm.enqueue qm id h ~priority (Envelope.to_string env)))
        in
        for i = 1 to backlog do
          push (Printf.sprintf "std%d" i) 0
        done;
        (* express jobs trickle in while the backlog drains *)
        ignore
          (Sched.fork ~name:"express" (fun () ->
               for i = 1 to express do
                 Sched.sleep 0.3;
                 push (Printf.sprintf "exp%d" i) (if use_priorities then 9 else 0)
               done));
        ignore
          (Common.await ~timeout:600.0 (fun () -> !served >= backlog + express));
        {
          policy = (if use_priorities then "priority scheduling" else "FIFO only");
          backlog;
          express_jobs = express;
          express_p95 = Histogram.percentile express_lat 0.95;
          standard_p95 = Histogram.percentile standard_lat 0.95;
        })

let run_priority ?(backlog = 40) ?(express = 5) ?(work = 0.1) () =
  [
    one_priority_run ~use_priorities:false ~backlog ~express ~work ~seed:9;
    one_priority_run ~use_priorities:true ~backlog ~express ~work ~seed:9;
  ]

let priority_table rows =
  let t =
    Table.create
      ~title:
        "B11: priority scheduling (sec. 11) - express requests vs a 40-job backlog"
      ~columns:
        [ "policy"; "backlog"; "express jobs"; "express p95 (s)"; "standard p95 (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.policy;
          string_of_int r.backlog;
          string_of_int r.express_jobs;
          Printf.sprintf "%.2f" r.express_p95;
          Printf.sprintf "%.2f" r.standard_p95;
        ])
    rows;
  t

(* ---- A1 ablation: error queues off ------------------------------------- *)

type poison_row = {
  p_policy : string;
  good_served : int;
  wasted_executions : int;
  poison_parked : bool;
}

(* One poisonous request among a stream of good ones. With the error-queue
   machinery (retry limit n) the poison is parked after n attempts; with it
   ablated (infinite retries) the server burns capacity re-executing it
   forever (the "cyclic restart" of paper 4.2/5). *)
let one_poison_run ~retry_limit ~good ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let attrs = { Qm.default_attrs with retry_limit } in
      let backend =
        Site.create ~queues:[ ("req", attrs) ] ~stale_timeout:60.0
          (Net.make_node net "backend")
      in
      let wasted = ref 0 and served = ref 0 in
      let _ =
        Server.start backend ~req_queue:"req" (fun _site _txn env ->
            Sched.sleep 0.05;
            if env.Envelope.body = "poison" then begin
              incr wasted;
              failwith "cannot process"
            end;
            incr served;
            Server.No_reply)
      in
      fun () ->
        let qm = Site.qm backend in
        let h, _ =
          Qm.register qm ~queue:"req" ~registrant:"load" ~stable:false
        in
        let push rid body =
          let env =
            Envelope.make ~rid ~client_id:"load" ~reply_node:"backend"
              ~reply_queue:"req" body
          in
          ignore
            (Qm.auto_commit qm (fun id ->
                 Qm.enqueue qm id h (Envelope.to_string env)))
        in
        push "bad" "poison";
        for i = 1 to good do
          push (Printf.sprintf "g%d" i) "fine"
        done;
        (* run for a fixed window; good requests should all finish *)
        ignore (Common.await ~timeout:60.0 (fun () -> !served >= good));
        Sched.sleep 5.0;
        {
          p_policy =
            (if retry_limit >= 1_000_000 then "no error queue (ablated)"
             else Printf.sprintf "error queue after %d aborts" retry_limit);
          good_served = !served;
          wasted_executions = !wasted;
          poison_parked =
            Qm.queue_exists qm "req.err" && Qm.depth qm "req.err" = 1;
        })

let run_poison ?(good = 30) () =
  [
    one_poison_run ~retry_limit:1_000_000 ~good ~seed:15;
    one_poison_run ~retry_limit:3 ~good ~seed:15;
  ]

let poison_table rows =
  let t =
    Table.create
      ~title:
        "A1 (ablation): error queues vs cyclic restart of a poisonous request (secs. 4.2, 5)"
      ~columns:
        [ "policy"; "good served"; "poison executions"; "poison parked in error queue" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.p_policy;
          string_of_int r.good_served;
          string_of_int r.wasted_executions;
          (if r.poison_parked then "yes" else "no");
        ])
    rows;
  t

(* ---- B4: burst absorption ---------------------------------------------- *)

type burst_row = {
  system : string;
  offered : int;
  served : int;
  rejected : int;
  b_makespan : float;
  max_depth : int;
}

type Net.payload += B_job of string | B_ok | B_busy

let one_burst_run ~queued ~offered ~service_time ~capacity ~seed =
  Common.run_scenario (fun s ->
      let net = Net.create s (Rng.create seed) in
      let backend =
        Site.create ~queues:[ ("req", Qm.default_attrs) ] ~stale_timeout:60.0
          (Net.make_node net "backend")
      in
      let served = ref 0 and rejected = ref 0 in
      let max_depth = ref 0 in
      (if queued then
         ignore
           (Server.start backend ~req_queue:"req" ~threads:capacity
              (fun _site _txn _env ->
                Sched.sleep service_time;
                incr served;
                Server.No_reply))
       else begin
         (* Queueless server: [capacity] concurrent executions, no waiting
            room - excess arrivals are rejected busy. *)
         let active = ref 0 in
         Site.on_boot backend (fun site ->
             Net.add_service (Site.node site) "direct" (fun msg ->
                 match msg with
                 | B_job _ ->
                   if !active >= capacity then B_busy
                   else begin
                     incr active;
                     Sched.sleep service_time;
                     decr active;
                     incr served;
                     B_ok
                   end
                 | _ -> raise (Invalid_argument "direct: unexpected message")))
       end);
      let client_node = Net.make_node net "client" in
      fun () ->
        let qm = Site.qm backend in
        let h, _ =
          Qm.register qm ~queue:"req" ~registrant:"burst" ~stable:false
        in
        let rng = Rng.create (seed + 7) in
        let start = Sched.clock () in
        (* Poisson burst: [offered] arrivals in roughly one second. *)
        for i = 1 to offered do
          ignore
            (Sched.fork ~name:(Printf.sprintf "a%d" i) (fun () ->
                 Sched.sleep (Rng.float rng 1.0);
                 if queued then begin
                   let env =
                     Envelope.make ~rid:(Printf.sprintf "b%d" i)
                       ~client_id:"burst" ~reply_node:"backend"
                       ~reply_queue:"req" "job"
                   in
                   ignore
                     (Qm.auto_commit qm (fun id ->
                          Qm.enqueue qm id h (Envelope.to_string env)));
                   max_depth := max !max_depth (Qm.depth qm "req")
                 end
                 else begin
                   match
                     Net.call client_node ~timeout:30.0 ~dst:"backend"
                       ~service:"direct" (B_job "job")
                   with
                   | B_ok -> ()
                   | B_busy -> incr rejected
                   | _ -> incr rejected
                   | exception e when Rrq_util.Swallow.nonfatal e ->
                     incr rejected
                 end))
        done;
        ignore
          (Common.await ~timeout:600.0 (fun () -> !served + !rejected >= offered));
        let makespan = Sched.clock () -. start in
        {
          system = (if queued then "queued" else "no queue (reject when busy)");
          offered;
          served = !served;
          rejected = !rejected;
          b_makespan = makespan;
          max_depth = !max_depth;
        })

let run_burst ?(offered = 100) ?(service_time = 0.08) ?(capacity = 3) () =
  [
    one_burst_run ~queued:false ~offered ~service_time ~capacity ~seed:5;
    one_burst_run ~queued:true ~offered ~service_time ~capacity ~seed:5;
  ]

let burst_table rows =
  let t =
    Table.create
      ~title:
        "B4: absorbing a 100-request burst (3 servers, 80ms service time)"
      ~columns:
        [ "system"; "offered"; "served"; "rejected"; "makespan (s)"; "max queue depth" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.system;
          string_of_int r.offered;
          string_of_int r.served;
          string_of_int r.rejected;
          Printf.sprintf "%.2f" r.b_makespan;
          string_of_int r.max_depth;
        ])
    rows;
  t
