(* B13: sharded multi-repository scale-out. A fixed clerk population (16
   clients, ids chosen so their routing keys hash perfectly evenly) drives
   the same total load against 1, 2 and 4 shard repositories. Each shard
   node's disk charges [sync_latency] virtual seconds per WAL force and
   serializes them, so with one shard every force in the system queues on
   one device; with N shards the forces run on N devices in parallel.
   Commits/s is the committed-transaction count from the [Rrq_obs]
   registry (2PC commits plus auto-commits, summed over shards) divided by
   the virtual time the clerk load took.

   The sweep crosses the shard count with the reply-queue placement:
   "co-located" pins each client's reply queue onto the shard owning its
   request key (the deployment affinity the map's [pins] exist for — one
   client's whole conversation lives on one repository), "scattered" uses
   ids whose reply queues all hash onto a different shard than their
   request key, so every request finishes with a cross-shard 2PC reply
   enqueue. Co-located scaling is near-linear (the headline); the
   scattered rows price the cross-shard 2PC (two extra log forces per
   request — prepare and commit at the remote participant). *)

module Sched = Rrq_sim.Sched
module Net = Rrq_net.Net
module Rng = Rrq_util.Rng
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Shard = Rrq_core.Shard
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Envelope = Rrq_core.Envelope
module Table = Rrq_util.Table

type row = {
  shards : int;
  placement : string;
  clients : int;
  requests : int;
  forwards : int;
  commits : int;
  elapsed_s : float;
  commits_per_s : float;
  speedup : float;
}

(* One WAL force occupies a shard's disk for 5 virtual ms; messages cost
   0.5ms. The gap keeps the log force the bottleneck, which is the claim
   under test — shards multiply force bandwidth, not network bandwidth. *)
let sync_latency = 0.005
let net_latency = 0.0005

(* Client ids picked (by exhaustive search over the real FNV-1a placement)
   so that any prefix of 8 or the full 16 spreads both the request keys
   [req#<id>] and the reply queues [reply.<id>] perfectly evenly across 2
   and across 4 shards — and never co-locates a client's request key with
   its reply queue. Unpinned, every request is a cross-shard 2PC (the
   scattered worst case); the co-located configuration pins each reply
   queue back onto its client's request shard. *)
let client_ids =
  [ "b0"; "b1"; "b2"; "b3"; "b4"; "b5"; "b6"; "b7"; "b8"; "b9"; "b10";
    "b11"; "b12"; "b13"; "b102"; "b103" ]

let shard_names n = List.init n (fun i -> Printf.sprintf "s%d" i)

let map_of ~colocated ~ids n =
  let base =
    {
      Shard.version = 1;
      shards = shard_names n;
      backups = [];
      sharded_queues = [ "req" ];
      pins = [];
    }
  in
  if not colocated then base
  else
    {
      base with
      Shard.pins =
        List.map
          (fun id ->
            ( "reply." ^ id,
              Shard.owner base (Shard.key_for base ~queue:"req" ~registrant:id)
            ))
          ids;
    }

let one_run ~colocated ~shards:n ~clients ~reqs ~seed =
  Rrq_obs.reset ();
  Fun.protect ~finally:Rrq_obs.disable (fun () ->
      Common.run_scenario (fun s ->
          let net = Net.create ~latency:net_latency s (Rng.create seed) in
          let ids = List.filteri (fun i _ -> i < clients) client_ids in
          let smap = map_of ~colocated ~ids n in
          List.iter
            (fun name ->
              let site =
                Site.create
                  ~queues:[ ("req", Qm.default_attrs) ]
                  ~stale_timeout:3.0
                  (Net.make_node ~sync_latency net name)
              in
              ignore
                (Server.start site ~req_queue:"req" ~threads:8
                   Common.counting_handler);
              ignore (Shard.attach site smap))
            smap.Shard.shards;
          let client_nodes =
            List.map (fun id -> (id, Net.make_node net ("c-" ^ id))) ids
          in
          fun () ->
            let done_count = ref 0 in
            let t0 = Sched.clock () in
            let before = Rrq_obs.Metrics.snapshot () in
            List.iter
              (fun (client_id, client_node) ->
                ignore
                  (Sched.fork ~name:("load-" ^ client_id) (fun () ->
                       let clerk, _ =
                         Clerk.connect ~client_node ~system:"s0"
                           ~shard_map:smap ~client_id ~req_queue:"req"
                           ~retries:8 ()
                       in
                       for r = 1 to reqs do
                         let rid = Printf.sprintf "%s-%d" client_id r in
                         ignore (Clerk.send clerk ~rid ("work:" ^ rid));
                         let rec recv () =
                           match Clerk.receive clerk ~timeout:5.0 () with
                           | Some env
                             when env.Envelope.kind <> "intermediate"
                                  && env.Envelope.rid = rid ->
                             ()
                           | _ -> recv ()
                         in
                         recv ()
                       done;
                       incr done_count)))
              client_nodes;
            ignore
              (Common.await ~timeout:3000.0 (fun () ->
                   !done_count = clients));
            let elapsed = Sched.clock () -. t0 in
            let d =
              Rrq_obs.Metrics.diff ~before
                ~after:(Rrq_obs.Metrics.snapshot ())
            in
            let sum key_of =
              List.fold_left
                (fun acc name ->
                  acc + Rrq_obs.Metrics.find_counter d (key_of name))
                0 smap.Shard.shards
            in
            let commits =
              sum (fun name -> "tm.commits:" ^ name)
              + sum (fun name -> "qm.auto_commits:qm@" ^ name)
            in
            let forwards = sum (fun name -> "shard.forwards:" ^ name) in
            {
              shards = n;
              placement =
                (if n = 1 then "(single)"
                 else if colocated then "co-located"
                 else "scattered");
              clients;
              requests = clients * reqs;
              forwards;
              commits;
              elapsed_s = elapsed;
              commits_per_s = float_of_int commits /. elapsed;
              speedup = 1.0 (* filled in by [run] against the 1-shard row *);
            }))

let run ?(clients = 16) ?(reqs = 25) ?(seed = 113) () =
  let clients = min clients (List.length client_ids) in
  (* At one shard both placements are the same configuration (everything is
     local); the single base row anchors both speedup series. *)
  let base = one_run ~colocated:true ~shards:1 ~clients ~reqs ~seed in
  let sweep colocated =
    List.map (fun n -> one_run ~colocated ~shards:n ~clients ~reqs ~seed) [ 2; 4 ]
  in
  let rows = (base :: sweep true) @ sweep false in
  List.map
    (fun r -> { r with speedup = r.commits_per_s /. base.commits_per_s })
    rows

let table rows =
  let t =
    Table.create
      ~title:
        "B13: sharded scale-out - fixed clerk load vs shard count (virtual \
         time)"
      ~columns:
        [ "shards"; "reply placement"; "clients"; "requests"; "forwards";
          "commits"; "elapsed (s)"; "commits/s"; "speedup" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.shards;
          r.placement;
          string_of_int r.clients;
          string_of_int r.requests;
          string_of_int r.forwards;
          string_of_int r.commits;
          Printf.sprintf "%.2f" r.elapsed_s;
          Printf.sprintf "%.1f" r.commits_per_s;
          Printf.sprintf "%.2fx" r.speedup;
        ])
    rows;
  t
