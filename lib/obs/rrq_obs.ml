module Histogram = Rrq_util.Histogram

let on = ref false
let enabled () = !on

(* Shared by the metrics JSON renderer and the event JSON-lines dump. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

(* Deterministic float rendering (no locale, fixed precision) so JSON and
   text dumps are byte-stable across runs — the trace-determinism test in
   test_check.ml diffs whole dumps. *)
let fstr v = Printf.sprintf "%.6g" v

module Metrics = struct
  type series = { mutable buf : float array; mutable len : int }

  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64
  let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 64
  let samples : (string, series) Hashtbl.t = Hashtbl.create 64

  let clear () =
    Hashtbl.reset counters;
    Hashtbl.reset gauges;
    Hashtbl.reset samples

  let inc ?(by = 1) name =
    if !on then
      match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace counters name (ref by)

  let set_gauge name v =
    if !on then
      match Hashtbl.find_opt gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace gauges name (ref v)

  let observe name v =
    if !on then begin
      let s =
        match Hashtbl.find_opt samples name with
        | Some s -> s
        | None ->
          let s = { buf = Array.make 16 0.0; len = 0 } in
          Hashtbl.replace samples name s;
          s
      in
      if s.len = Array.length s.buf then begin
        let bigger = Array.make (2 * Array.length s.buf) 0.0 in
        Array.blit s.buf 0 bigger 0 s.len;
        s.buf <- bigger
      end;
      s.buf.(s.len) <- v;
      s.len <- s.len + 1
    end

  let counter name =
    match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

  let gauge name =
    match Hashtbl.find_opt gauges name with Some r -> !r | None -> 0.0

  let sum_counters ~prefix =
    Hashtbl.fold
      (fun k r acc ->
        if String.starts_with ~prefix k then acc + !r else acc)
      counters 0

  let sum_gauges ~prefix =
    Hashtbl.fold
      (fun k r acc ->
        if String.starts_with ~prefix k then acc +. !r else acc)
      gauges 0.0

  type snapshot = {
    s_counters : (string * int) list;
    s_gauges : (string * float) list;
    s_samples : (string * float array) list;
  }

  let by_name (a, _) (b, _) = compare a b

  let snapshot () =
    {
      s_counters =
        List.sort by_name
          (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters []);
      s_gauges =
        List.sort by_name
          (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauges []);
      s_samples =
        List.sort by_name
          (Hashtbl.fold
             (fun k s acc -> (k, Array.sub s.buf 0 s.len) :: acc)
             samples []);
    }

  let find_counter snap name =
    match List.assoc_opt name snap.s_counters with Some v -> v | None -> 0

  let find_gauge snap name =
    match List.assoc_opt name snap.s_gauges with Some v -> v | None -> 0.0

  (* Series are append-only and never reordered, so [before]'s length is a
     valid cut point into [after]'s samples. *)
  let diff ~before ~after =
    {
      s_counters =
        List.map
          (fun (k, v) -> (k, v - find_counter before k))
          after.s_counters;
      s_gauges = after.s_gauges;
      s_samples =
        List.map
          (fun (k, arr) ->
            let skip =
              match List.assoc_opt k before.s_samples with
              | Some prev -> Array.length prev
              | None -> 0
            in
            (k, Array.sub arr skip (Array.length arr - skip)))
          after.s_samples;
    }

  let histogram snap name =
    let h = Histogram.create () in
    (match List.assoc_opt name snap.s_samples with
    | Some arr -> Array.iter (Histogram.add h) arr
    | None -> ());
    h

  let to_text snap =
    let b = Buffer.create 1024 in
    Buffer.add_string b "== counters ==\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-44s %d\n" k v))
      snap.s_counters;
    Buffer.add_string b "== gauges ==\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string b (Printf.sprintf "  %-44s %s\n" k (fstr v)))
      snap.s_gauges;
    Buffer.add_string b "== histograms ==\n";
    List.iter
      (fun (k, _) ->
        let h = histogram snap k in
        Buffer.add_string b
          (Printf.sprintf "  %-44s %s\n" k (Histogram.summary h)))
      snap.s_samples;
    Buffer.contents b

  let to_json snap =
    let b = Buffer.create 1024 in
    let obj section render items =
      Buffer.add_string b (json_str section);
      Buffer.add_string b ":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (json_str k);
          Buffer.add_char b ':';
          Buffer.add_string b (render v))
        items;
      Buffer.add_char b '}'
    in
    Buffer.add_char b '{';
    obj "counters" string_of_int snap.s_counters;
    Buffer.add_char b ',';
    obj "gauges" fstr snap.s_gauges;
    Buffer.add_char b ',';
    obj "histograms"
      (fun arr ->
        let h = Histogram.create () in
        Array.iter (Histogram.add h) arr;
        Printf.sprintf
          "{\"count\":%d,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}"
          (Histogram.count h)
          (fstr (Histogram.mean h))
          (fstr (Histogram.percentile h 0.50))
          (fstr (Histogram.percentile h 0.95))
          (fstr (Histogram.percentile h 0.99))
          (fstr (Histogram.max_value h)))
      snap.s_samples;
    Buffer.add_char b '}';
    Buffer.contents b
end

module Event = struct
  type t =
    | Enqueue of { qm : string; queue : string; eid : int64; txid : string }
    | Dequeue of { qm : string; queue : string; eid : int64; txid : string }
    | Read of { qm : string; queue : string; found : bool }
    | Error_spill of {
        qm : string;
        error_queue : string;
        eid : int64;
        code : string;
      }
    | Txn_begin of { tm : string; txid : string }
    | Txn_commit of { tm : string; txid : string }
    | Txn_abort of { tm : string; txid : string }
    | Wal_append of { wal : string; lsn : int; bytes : int }
    | Wal_force of { wal : string; lsn : int }
    | Batch_seal of { wal : string; batch : int; reason : string }
    | Crashpoint_fired of { site : string; hit : int }
    | Client_fsm of {
        client : string;
        from_state : string;
        event : string;
        to_state : string;
      }
    | Clerk_send of { client : string; rid : string; eid : int64 }
    | Clerk_receive of { client : string; rid : string }
    | Server_exec of { server : string; rid : string; txid : string }
    | Shard_forward of { node : string; owner : string; version : int }
    | Shard_map_install of { node : string; version : int }

  (* kind tag + named fields; the names feed the JSON renderer, the order
     feeds the '|'-separated codec. *)
  let fields = function
    | Enqueue { qm; queue; eid; txid } ->
      ( "enq",
        [
          ("qm", qm);
          ("queue", queue);
          ("eid", Int64.to_string eid);
          ("txid", txid);
        ] )
    | Dequeue { qm; queue; eid; txid } ->
      ( "deq",
        [
          ("qm", qm);
          ("queue", queue);
          ("eid", Int64.to_string eid);
          ("txid", txid);
        ] )
    | Read { qm; queue; found } ->
      ("read", [ ("qm", qm); ("queue", queue); ("found", string_of_bool found) ])
    | Error_spill { qm; error_queue; eid; code } ->
      ( "spill",
        [
          ("qm", qm);
          ("error_queue", error_queue);
          ("eid", Int64.to_string eid);
          ("code", code);
        ] )
    | Txn_begin { tm; txid } -> ("begin", [ ("tm", tm); ("txid", txid) ])
    | Txn_commit { tm; txid } -> ("commit", [ ("tm", tm); ("txid", txid) ])
    | Txn_abort { tm; txid } -> ("abort", [ ("tm", tm); ("txid", txid) ])
    | Wal_append { wal; lsn; bytes } ->
      ( "wappend",
        [ ("wal", wal); ("lsn", string_of_int lsn); ("bytes", string_of_int bytes) ]
      )
    | Wal_force { wal; lsn } ->
      ("wforce", [ ("wal", wal); ("lsn", string_of_int lsn) ])
    | Batch_seal { wal; batch; reason } ->
      ("seal", [ ("wal", wal); ("batch", string_of_int batch); ("reason", reason) ])
    | Crashpoint_fired { site; hit } ->
      ("crashpoint", [ ("site", site); ("hit", string_of_int hit) ])
    | Client_fsm { client; from_state; event; to_state } ->
      ( "fsm",
        [
          ("client", client);
          ("from", from_state);
          ("event", event);
          ("to", to_state);
        ] )
    | Clerk_send { client; rid; eid } ->
      ("send", [ ("client", client); ("rid", rid); ("eid", Int64.to_string eid) ])
    | Clerk_receive { client; rid } ->
      ("receive", [ ("client", client); ("rid", rid) ])
    | Server_exec { server; rid; txid } ->
      ("exec", [ ("server", server); ("rid", rid); ("txid", txid) ])
    | Shard_forward { node; owner; version } ->
      ( "shfwd",
        [ ("node", node); ("owner", owner); ("version", string_of_int version) ]
      )
    | Shard_map_install { node; version } ->
      ("shmap", [ ("node", node); ("version", string_of_int version) ])

  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '|' -> Buffer.add_string b "\\!"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let unescape s =
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      if s.[!i] = '\\' && !i + 1 < n then begin
        (match s.[!i + 1] with
        | '\\' -> Buffer.add_char b '\\'
        | '!' -> Buffer.add_char b '|'
        | 'n' -> Buffer.add_char b '\n'
        | c -> Buffer.add_char b c);
        i := !i + 2
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b

  let to_string t =
    let kind, fs = fields t in
    String.concat "|" (kind :: List.map (fun (_, v) -> escape v) fs)

  (* Split on unescaped '|' only, then unescape each field. *)
  let split_fields s =
    let parts = ref [] in
    let b = Buffer.create 16 in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      if s.[!i] = '\\' && !i + 1 < n then begin
        Buffer.add_char b s.[!i];
        Buffer.add_char b s.[!i + 1];
        i := !i + 2
      end
      else if s.[!i] = '|' then begin
        parts := Buffer.contents b :: !parts;
        Buffer.clear b;
        incr i
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    parts := Buffer.contents b :: !parts;
    List.rev_map unescape !parts

  let of_string s =
    match split_fields s with
    | [ "enq"; qm; queue; eid; txid ] ->
      Enqueue { qm; queue; eid = Int64.of_string eid; txid }
    | [ "deq"; qm; queue; eid; txid ] ->
      Dequeue { qm; queue; eid = Int64.of_string eid; txid }
    | [ "read"; qm; queue; found ] ->
      Read { qm; queue; found = bool_of_string found }
    | [ "spill"; qm; error_queue; eid; code ] ->
      Error_spill { qm; error_queue; eid = Int64.of_string eid; code }
    | [ "begin"; tm; txid ] -> Txn_begin { tm; txid }
    | [ "commit"; tm; txid ] -> Txn_commit { tm; txid }
    | [ "abort"; tm; txid ] -> Txn_abort { tm; txid }
    | [ "wappend"; wal; lsn; bytes ] ->
      Wal_append { wal; lsn = int_of_string lsn; bytes = int_of_string bytes }
    | [ "wforce"; wal; lsn ] -> Wal_force { wal; lsn = int_of_string lsn }
    | [ "seal"; wal; batch ] ->
      (* Pre-reason traces: default the reason so old recordings replay. *)
      Batch_seal { wal; batch = int_of_string batch; reason = "full" }
    | [ "seal"; wal; batch; reason ] ->
      Batch_seal { wal; batch = int_of_string batch; reason }
    | [ "crashpoint"; site; hit ] ->
      Crashpoint_fired { site; hit = int_of_string hit }
    | [ "fsm"; client; from_state; event; to_state ] ->
      Client_fsm { client; from_state; event; to_state }
    | [ "send"; client; rid; eid ] ->
      Clerk_send { client; rid; eid = Int64.of_string eid }
    | [ "receive"; client; rid ] -> Clerk_receive { client; rid }
    | [ "exec"; server; rid; txid ] -> Server_exec { server; rid; txid }
    | [ "shfwd"; node; owner; version ] ->
      Shard_forward { node; owner; version = int_of_string version }
    | [ "shmap"; node; version ] ->
      Shard_map_install { node; version = int_of_string version }
    | _ -> failwith ("Rrq_obs.Event.of_string: unparseable event: " ^ s)

  (* Numeric-looking fields stay numeric in JSON for easy jq filtering. *)
  let numeric_fields = [ "lsn"; "bytes"; "batch"; "hit"; "found"; "version" ]

  let to_json_line ~ts t =
    let kind, fs = fields t in
    let b = Buffer.create 128 in
    Buffer.add_string b "{\"ts\":";
    Buffer.add_string b (fstr ts);
    Buffer.add_string b ",\"type\":";
    Buffer.add_string b (json_str kind);
    List.iter
      (fun (k, v) ->
        Buffer.add_char b ',';
        Buffer.add_string b (json_str k);
        Buffer.add_char b ':';
        if List.mem k numeric_fields then Buffer.add_string b v
        else Buffer.add_string b (json_str v))
      fs;
    Buffer.add_char b '}';
    Buffer.contents b
end

module Trace = struct
  let default_clock () = 0.0
  let clock = ref default_clock
  let set_clock f = clock := f

  let ring : (float * Event.t) option array ref = ref [||]
  let cap = ref 0
  let emitted = ref 0

  let reset_ring capacity =
    ring := Array.make capacity None;
    cap := capacity;
    emitted := 0

  let emit ev =
    if !on && !cap > 0 then begin
      !ring.(!emitted mod !cap) <- Some (!clock (), ev);
      incr emitted
    end

  let length () = min !emitted !cap
  let dropped () = max 0 (!emitted - !cap)

  let events () =
    let n = length () in
    let start = !emitted - n in
    List.init n (fun k ->
        match !ring.((start + k) mod !cap) with
        | Some e -> e
        | None -> assert false)

  let dump_jsonl () =
    let b = Buffer.create 4096 in
    List.iter
      (fun (ts, ev) ->
        Buffer.add_string b (Event.to_json_line ~ts ev);
        Buffer.add_char b '\n')
      (events ());
    Buffer.contents b
end

module Lock_order = struct
  (* Per-transaction first-acquisition order across lock-manager
     instances, fed by the hooks in Rrq_txn.Lock at grant and release
     points. [held] maps a live transaction to the instance classes it
     holds, in first-acquisition order (head newest); [seen] is the edge
     set the run accumulated. Lock transfers (strict-FIFO handoff) move
     keys without a grant, so the receiving transaction under-reports —
     the safe direction for an observed-⊆-static check. *)
  let held : (string, string list) Hashtbl.t = Hashtbl.create 64
  let seen : (string * string, unit) Hashtbl.t = Hashtbl.create 64

  let clear () =
    Hashtbl.reset held;
    Hashtbl.reset seen

  let note_acquire ~txid cls =
    if !on then begin
      let prior = Option.value ~default:[] (Hashtbl.find_opt held txid) in
      if List.mem cls prior then
        (* another key inside a class already held: a within-instance
           re-acquisition, the self-edge *)
        Hashtbl.replace seen (cls, cls) ()
      else begin
        List.iter (fun h -> Hashtbl.replace seen (h, cls) ()) prior;
        Hashtbl.replace held txid (cls :: prior)
      end
    end

  let note_release_all ~txid = if !on then Hashtbl.remove held txid

  let edges () =
    List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) seen [])
end

let reset ?(trace_capacity = 65536) () =
  Metrics.clear ();
  Trace.reset_ring trace_capacity;
  Trace.set_clock Trace.default_clock;
  Lock_order.clear ();
  on := true

let disable () = on := false
