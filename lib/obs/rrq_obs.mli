(** Observability: a process-wide metrics registry plus a structured
    trace-event stream, both driven by the simulator's virtual clock.

    Everything here is disabled by default and zero-cost when disabled:
    [Metrics.inc]/[Metrics.observe]/[Trace.emit] return after one boolean
    test. A run that wants measurements brackets itself with [reset] and
    [disable]; tests that never touch this module pay nothing.

    The registry is global (like [Rrq_sim.Crashpoint]) because the
    instrumented call sites span every layer — threading a handle through
    Wal/Tm/Qm/Clerk constructors would distort the APIs for a purely
    diagnostic concern. *)

val enabled : unit -> bool
(** Is recording on? Call sites use this to skip argument computation that
    is itself costly (e.g. scanning queues for depth gauges). *)

val reset : ?trace_capacity:int -> unit -> unit
(** Clear all metrics and trace events, reset the trace clock to the
    constant-zero default, and enable recording. [trace_capacity] bounds
    the event ring buffer (default 65536); older events are dropped once
    it is full (see {!Trace.dropped}). *)

val disable : unit -> unit
(** Stop recording. Accumulated metrics and events remain readable. *)

(** Named counters, gauges and latency sample series. *)
module Metrics : sig
  val inc : ?by:int -> string -> unit
  (** Add [by] (default 1) to a counter, creating it at zero. *)

  val set_gauge : string -> float -> unit
  (** Set a gauge to its latest value. *)

  val observe : string -> float -> unit
  (** Append one sample to a series (commit latency, batch size, ...).
      Series render as histograms; they are kept append-only so that
      {!diff} can slice a run's samples out of a longer-lived registry. *)

  val counter : string -> int
  (** Current value; 0 if the counter was never incremented. *)

  val gauge : string -> float
  (** Current value; 0.0 if the gauge was never set. *)

  val sum_counters : prefix:string -> int
  (** Sum of every counter whose name starts with [prefix]. *)

  val sum_gauges : prefix:string -> float
  (** Sum of every gauge whose name starts with [prefix]. *)

  type snapshot = {
    s_counters : (string * int) list;
    s_gauges : (string * float) list;
    s_samples : (string * float array) list;
  }
  (** Immutable copy of the registry, each section sorted by name. *)

  val snapshot : unit -> snapshot

  val diff : before:snapshot -> after:snapshot -> snapshot
  (** Per-interval view: counters subtract, gauges keep [after]'s value,
      sample series keep only the samples recorded after [before]. *)

  val find_counter : snapshot -> string -> int
  (** 0 when absent. *)

  val find_gauge : snapshot -> string -> float
  (** 0.0 when absent. *)

  val histogram : snapshot -> string -> Rrq_util.Histogram.t
  (** The named sample series as a histogram (empty when absent). *)

  val to_text : snapshot -> string
  (** Human-readable dump: counters, gauges, then histogram summaries. *)

  val to_json : snapshot -> string
  (** Deterministic JSON object:
      [{"counters":{..},"gauges":{..},"histograms":{name:{count,mean,p50,
      p95,p99,max},..}}] with names sorted. *)
end

(** Typed trace events. One constructor per interesting state transition;
    the textual codec exists so dumps can be re-parsed by tools and by the
    codec round-trip test. *)
module Event : sig
  type t =
    | Enqueue of { qm : string; queue : string; eid : int64; txid : string }
    | Dequeue of { qm : string; queue : string; eid : int64; txid : string }
    | Read of { qm : string; queue : string; found : bool }
    | Error_spill of {
        qm : string;
        error_queue : string;
        eid : int64;
        code : string;
      }
    | Txn_begin of { tm : string; txid : string }
    | Txn_commit of { tm : string; txid : string }
    | Txn_abort of { tm : string; txid : string }
    | Wal_append of { wal : string; lsn : int; bytes : int }
    | Wal_force of { wal : string; lsn : int }
    | Batch_seal of { wal : string; batch : int; reason : string }
        (** A group-commit batch sealed: [batch] committers covered by one
            sync, [reason] one of full/timeout/idle/rate/immediate. *)
    | Crashpoint_fired of { site : string; hit : int }
    | Client_fsm of {
        client : string;
        from_state : string;
        event : string;
        to_state : string;
      }
    | Clerk_send of { client : string; rid : string; eid : int64 }
    | Clerk_receive of { client : string; rid : string }
    | Server_exec of { server : string; rid : string; txid : string }
    | Shard_forward of { node : string; owner : string; version : int }
        (** A shard repository received an operation it does not own under
            its current map and relayed it to [owner]; [version] is the
            {e requester's} map version (a lower number than the node's own
            means a stale clerk was redirected). *)
    | Shard_map_install of { node : string; version : int }
        (** A shard repository accepted shard-map [version]. *)

  val to_string : t -> string
  (** Compact single-line form: kind and fields joined with ['|'],
      field text escaped. *)

  val of_string : string -> t
  (** Inverse of [to_string]. @raise Failure on malformed input. *)

  val to_json_line : ts:float -> t -> string
  (** One JSON object (no trailing newline):
      [{"ts":..,"type":"..",...fields}]. *)
end

(** Observed lock-acquisition order, the runtime half of the R7
    lock-order check: Rrq_txn.Lock's grant and release hooks report which
    lock-manager {e instance} each transaction touches, in order, and the
    accumulated instance-order edges are compared against rrq_lint's
    static lock-order graph (observed ⊆ static) by bin/rrq_witness.
    Like everything here: no-ops when recording is off. *)
module Lock_order : sig
  val note_acquire : txid:string -> string -> unit
  (** A fresh grant of some key in the named instance class to [txid].
      Records an edge from every class the transaction already holds,
      or the self-edge on a within-class re-acquisition. *)

  val note_release_all : txid:string -> unit
  (** The transaction resolved; its held-class list is dropped.
      Accumulated edges remain. *)

  val edges : unit -> (string * string) list
  (** Distinct observed (from, to) instance-order edges, sorted. *)

  val clear : unit -> unit
  (** Drop held state and edges (also done by {!reset}). *)
end

(** Bounded ring buffer of timestamped events. *)
module Trace : sig
  val set_clock : (unit -> float) -> unit
  (** Timestamp source for subsequent [emit]s; the check/harness runners
      point this at their scheduler's virtual clock. [reset] restores the
      constant-zero default. *)

  val emit : Event.t -> unit
  (** Record an event (no-op when disabled). *)

  val length : unit -> int
  (** Events currently held (≤ capacity). *)

  val dropped : unit -> int
  (** Events evicted by ring wraparound since [reset]. *)

  val events : unit -> (float * Event.t) list
  (** Held events, oldest first. *)

  val dump_jsonl : unit -> string
  (** Held events as JSON-lines, oldest first, one event per line. *)
end
