(** Simulated network of nodes with RPC.

    Nodes host services (named request handlers that run in their own fiber
    and may block). Messages experience configurable latency and loss, and
    node pairs can be partitioned. A node crash kills every fiber it runs
    and discards the unsynced tail of its disk; restart re-runs its boot
    procedure (the recovery path of whatever the node hosts).

    This substitutes for the multi-machine deployment of a real TP system:
    what the paper's protocols care about — independent failures of client,
    server, and the communication between them (§1, §2) — is preserved. *)

type t
(** A network bound to one scheduler. *)

type node

type payload = ..
(** Message payloads; each layer extends this with its own constructors,
    keeping the network generic without serialization overhead (durability
    realism lives in the WAL, not the wire). *)

type payload += Ack  (** Generic empty reply. *)

exception Rpc_timeout
(** The reply did not arrive in time: lost request, lost reply, dead or
    partitioned destination — indistinguishable to the caller, exactly the
    ambiguity the paper's protocols are built to tolerate. *)

exception Service_error of string
(** The remote handler raised; the error text travels back to the caller. *)

val create :
  ?latency:float -> ?jitter:float -> ?drop_rate:float ->
  Rrq_sim.Sched.t -> Rrq_util.Rng.t -> t
(** A network with one-way [latency] (default 0.005) plus uniform [jitter]
    (default 0), dropping each message with probability [drop_rate]. *)

val sched : t -> Rrq_sim.Sched.t
val set_drop_rate : t -> float -> unit
val set_latency : t -> float -> unit

val partition : t -> string -> string -> unit
(** Cut both directions between two nodes. *)

val heal : t -> string -> string -> unit
val partitioned : t -> string -> string -> bool

(** {1 Nodes} *)

val make_node : ?torn_writes:bool -> ?sync_latency:float -> t -> string -> node
(** Create a node (with its own disk) in the up state. [sync_latency]
    (default 0) is the virtual seconds one disk flush occupies the device —
    the knob that makes commit-path experiments measure something. *)

val node : t -> string -> node
(** Look up an existing node by name.
    @raise Not_found *)

val node_name : node -> string
val disk : node -> Rrq_storage.Disk.t
val is_up : node -> bool
val network : node -> t

val spawn_on : node -> name:string -> (unit -> unit) -> unit
(** Run a fiber belonging to the node (killed when the node crashes).
    No-op if the node is down. *)

val add_service : node -> string -> (payload -> payload) -> unit
(** Register/replace a named service. Handlers run in a fresh fiber per
    request and may block; whatever they raise becomes {!Service_error} at
    the caller. *)

val set_boot : node -> (node -> unit) -> unit
(** The boot procedure: opens the node's RMs from disk, re-registers
    services, spawns daemons. Run by {!boot} and by {!restart}. *)

val boot : node -> unit
(** Run the boot procedure now (initial start). *)

val crash : node -> unit
(** Kill all the node's fibers, clear its services, lose unsynced disk
    state. In-flight messages to the node are dropped. *)

val restart : node -> unit
(** Mark the node up and run its boot procedure. *)

val crash_restart : node -> after:float -> unit
(** Crash now and schedule a restart after a (virtual) delay. *)

(** {1 Messaging} *)

val call :
  node -> ?timeout:float -> dst:string -> service:string -> payload -> payload
(** Remote procedure call from a node (default timeout 5.0).
    @raise Rpc_timeout
    @raise Service_error *)

val cast : node -> dst:string -> service:string -> payload -> unit
(** One-way message: no reply, no delivery guarantee (the paper's
    "one-way message" Send optimization, §5). *)

(** {1 Accounting} *)

val messages_sent : t -> int
val messages_dropped : t -> int
