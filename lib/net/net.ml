module Sched = Rrq_sim.Sched
module Ivar = Rrq_sim.Ivar
module Rng = Rrq_util.Rng
module Disk = Rrq_storage.Disk

type payload = ..
type payload += Ack

exception Rpc_timeout
exception Service_error of string

type rpc_reply = Ok_reply of payload | Err_reply of string

type node = {
  nname : string;
  ndisk : Disk.t;
  net : t;
  mutable up : bool;
  services : (string, payload -> payload) Hashtbl.t;
  pending : (int, rpc_reply Ivar.t) Hashtbl.t;
  mutable boot_proc : node -> unit;
}

and t = {
  tsched : Sched.t;
  rng : Rng.t;
  mutable latency : float;
  mutable jitter : float;
  mutable drop_rate : float;
  cuts : (string * string, unit) Hashtbl.t;
  nodes : (string, node) Hashtbl.t;
  mutable n_sent : int;
  mutable n_dropped : int;
  mutable next_rpc : int;
}

let create ?(latency = 0.005) ?(jitter = 0.0) ?(drop_rate = 0.0) tsched rng =
  {
    tsched;
    rng;
    latency;
    jitter;
    drop_rate;
    cuts = Hashtbl.create 4;
    nodes = Hashtbl.create 8;
    n_sent = 0;
    n_dropped = 0;
    next_rpc = 0;
  }

let sched t = t.tsched
let set_drop_rate t r = t.drop_rate <- r
let set_latency t l = t.latency <- l

let pair a b = if a <= b then (a, b) else (b, a)

let partition t a b =
  Sched.note_fault t.tsched (Printf.sprintf "partition %s/%s" a b);
  Hashtbl.replace t.cuts (pair a b) ()

let heal t a b =
  Sched.note_fault t.tsched (Printf.sprintf "heal %s/%s" a b);
  Hashtbl.remove t.cuts (pair a b)

let partitioned t a b = Hashtbl.mem t.cuts (pair a b)

let make_node ?(torn_writes = false) ?sync_latency t nname =
  if Hashtbl.mem t.nodes nname then invalid_arg ("duplicate node " ^ nname);
  let node =
    {
      nname;
      ndisk = Disk.create ~torn_writes ?sync_latency ~rng:(Rng.split t.rng) nname;
      net = t;
      up = true;
      services = Hashtbl.create 8;
      pending = Hashtbl.create 16;
      boot_proc = (fun _ -> ());
    }
  in
  Hashtbl.replace t.nodes nname node;
  node

let node t nname = Hashtbl.find t.nodes nname
let node_name n = n.nname
let disk n = n.ndisk
let is_up n = n.up
let network n = n.net

let spawn_on n ~name f =
  if n.up then ignore (Sched.spawn n.net.tsched ~group:n.nname ~name f)

let add_service n sname handler = Hashtbl.replace n.services sname handler
let set_boot n proc = n.boot_proc <- proc
let boot n = n.boot_proc n

(* Deliver a thunk to [dst] after network delay, unless the message is
   dropped, the pair is partitioned, or the destination is down at delivery
   time. *)
let transmit t ~src ~dst (k : node -> unit) =
  t.n_sent <- t.n_sent + 1;
  let dropped =
    (t.drop_rate > 0.0 && Rng.chance t.rng t.drop_rate)
    || partitioned t src dst
  in
  if dropped then t.n_dropped <- t.n_dropped + 1
  else begin
    let delay = t.latency +. (if t.jitter > 0.0 then Rng.float t.rng t.jitter else 0.0) in
    Sched.at t.tsched
      (Sched.now t.tsched +. delay)
      (fun () ->
        match Hashtbl.find_opt t.nodes dst with
        | Some n when n.up -> k n
        | Some _ | None -> t.n_dropped <- t.n_dropped + 1)
  end

let run_service dst ~service ~request reply_k =
  match Hashtbl.find_opt dst.services service with
  | None -> reply_k (Err_reply ("no such service: " ^ service))
  | Some handler ->
    ignore
      (Sched.spawn dst.net.tsched ~group:dst.nname
         ~name:(dst.nname ^ ":" ^ service)
         (fun () ->
           let reply =
             (* Nonfatal only: an injected crash inside a handler must kill
                this service fiber, not surface as an error reply sent from
                a node that is supposed to be down. *)
             match handler request with
             | v -> Ok_reply v
             | exception e when Rrq_util.Swallow.nonfatal e ->
               Err_reply (Printexc.to_string e)
           in
           reply_k reply))

let call src ?(timeout = 5.0) ~dst ~service request =
  let t = src.net in
  t.next_rpc <- t.next_rpc + 1;
  let rpc_id = t.next_rpc in
  let iv = Ivar.create () in
  Hashtbl.replace src.pending rpc_id iv;
  transmit t ~src:src.nname ~dst (fun dnode ->
      run_service dnode ~service ~request (fun reply ->
          transmit t ~src:dnode.nname ~dst:src.nname (fun _src_node ->
              Ivar.fill iv reply)));
  let result = Ivar.read_timeout iv timeout in
  Hashtbl.remove src.pending rpc_id;
  match result with
  | None -> raise Rpc_timeout
  | Some (Ok_reply v) -> v
  | Some (Err_reply msg) -> raise (Service_error msg)

let cast src ~dst ~service request =
  transmit src.net ~src:src.nname ~dst (fun dnode ->
      run_service dnode ~service ~request (fun _ -> ()))

let crash n =
  Sched.note_fault n.net.tsched ("crash " ^ n.nname);
  n.up <- false;
  Sched.kill_group n.net.tsched n.nname;
  Hashtbl.reset n.services;
  Hashtbl.reset n.pending;
  Disk.crash n.ndisk

let restart n =
  Sched.note_fault n.net.tsched ("restart " ^ n.nname);
  n.up <- true;
  n.boot_proc n

let crash_restart n ~after =
  crash n;
  Sched.at n.net.tsched (Sched.now n.net.tsched +. after) (fun () -> restart n)

let messages_sent t = t.n_sent
let messages_dropped t = t.n_dropped
