type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 64 0.0; len = 0; sorted = true }

let add t v =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let total t =
  let s = ref 0.0 in
  for i = 0 to t.len - 1 do
    s := !s +. t.samples.(i)
  done;
  !s

let mean t = if t.len = 0 then 0.0 else total t /. float_of_int t.len

let min_value t =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    t.samples.(0)
  end

let max_value t =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    t.samples.(t.len - 1)
  end

let percentile t p =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p *. float_of_int t.len)) - 1 in
    t.samples.(max 0 (min (t.len - 1) rank))
  end

let merge a b =
  let t = create () in
  for i = 0 to a.len - 1 do add t a.samples.(i) done;
  for i = 0 to b.len - 1 do add t b.samples.(i) done;
  t

let summary t =
  Printf.sprintf "n=%d mean=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f"
    (count t) (mean t) (percentile t 0.5) (percentile t 0.95)
    (percentile t 0.99) (max_value t)
