(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator and the workload generators
    draws from an explicit [Rng.t], so a run is fully reproducible from its
    seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** Generator seeded from an integer. *)

val split : t -> t
(** Independent generator derived from [t] (advances [t]). *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (for inter-arrival
    times). *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen array element. The array must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed value in [0, n): a skewed hot-spot distribution used for
    hot-account workloads. [theta] in (0,1); larger is more skewed. *)
