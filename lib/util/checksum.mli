(** FNV-1a 64-bit checksums, used to detect torn or corrupted WAL records. *)

val fnv1a64 : string -> int64
(** Checksum of a whole string. *)

val fnv1a64_sub : string -> pos:int -> len:int -> int64
(** Checksum of the substring [pos, pos+len). *)

val fnv1a64_bytes : Bytes.t -> pos:int -> len:int -> int64
(** Same over a byte buffer, without copying it to a string first. *)

val frame64 : string -> int64
(** Word-wise FNV-1a variant in unboxed native-int arithmetic (mod 2^63):
    ~8x cheaper than {!fnv1a64} and what the WAL frames records with.
    Detects torn and corrupted frames; NOT canonical FNV-1a, so only use
    it where writer and reader are both this repo. *)

val frame64_sub : string -> pos:int -> len:int -> int64
(** {!frame64} of the substring [pos, pos+len). *)

val frame64_bytes : Bytes.t -> pos:int -> len:int -> int64
(** {!frame64} over a byte buffer, without copying. *)
