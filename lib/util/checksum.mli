(** FNV-1a 64-bit checksums, used to detect torn or corrupted WAL records. *)

val fnv1a64 : string -> int64
(** Checksum of a whole string. *)

val fnv1a64_sub : string -> pos:int -> len:int -> int64
(** Checksum of the substring [pos, pos+len). *)
