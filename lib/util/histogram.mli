(** Latency/size histograms with exact quantiles (sample-keeping).

    Used by the experiment harness to report mean/median/p95/p99. The
    implementation keeps all samples; experiment sizes are small enough that
    this is simpler and exact. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0.0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.99] is the p99 (nearest-rank). 0.0 when empty. *)

val total : t -> float
(** Sum of all samples. *)

val merge : t -> t -> t
(** New histogram holding the samples of both. *)

val summary : t -> string
(** One-line "n=.. mean=.. p50=.. p95=.. p99=.. max=.." rendering. *)
