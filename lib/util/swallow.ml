(* Disciplined exception tolerance. A bare [try ... with _ ->] can eat an
   injected crash ([Rrq_sim.Crashpoint.Crash]) or a scheduler-fatal
   exception and silently turn a simulated node failure into a wrong
   protocol outcome (a vote, an ack, a retry) — the exact bug class rule R1
   of [rrq_lint] forbids. Code that genuinely wants to tolerate a failing
   callee (participant RPCs, best-effort notifications) goes through [run],
   which re-raises anything fatal.

   Fatality is an open predicate: [rrq_util] cannot see the simulator's
   exception constructors (the dependency points the other way), so
   [Rrq_sim] registers its own — [Crashpoint.Crash] — at module
   initialization via [register_fatal]. *)

let extra : (exn -> bool) list ref = ref []

let register_fatal p = extra := p :: !extra

let fatal e =
  match e with
  | Assert_failure _ | Out_of_memory | Stack_overflow -> true
  | Effect.Unhandled _ | Effect.Continuation_already_resumed -> true
  | e -> List.exists (fun p -> p e) !extra

let nonfatal e = not (fatal e)

let run ~default f = try f () with e when nonfatal e -> default

let unit f = run ~default:() f
