let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fnv1a64_sub s ~pos ~len =
  let h = ref offset_basis in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h prime
  done;
  !h

let fnv1a64 s = fnv1a64_sub s ~pos:0 ~len:(String.length s)

let fnv1a64_bytes b ~pos ~len =
  let h = ref offset_basis in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h prime
  done;
  !h

(* Word-wise FNV-1a variant in native-int arithmetic (mod 2^63). Byte-wise
   FNV costs ~1.5ns/byte — boxed int64 ops per byte — which makes the
   checksum the single most expensive part of logging a commit record.
   This folds 8 bytes per step with unboxed ints instead: same
   xor-then-multiply structure, an 8th of the iterations, no boxing in the
   loop. Any single-bit corruption still lands in exactly one folded word,
   so the torn/corrupt frames WAL recovery cares about are detected just
   as well. Not interoperable with canonical FNV-1a. *)
let frame_prime = 0x100000001b3
let frame_basis = 0x4cb2f29ce484222

let frame64_sub s ~pos ~len =
  let h = ref frame_basis in
  let words = len / 8 in
  for i = 0 to words - 1 do
    let w = Int64.to_int (String.get_int64_le s (pos + (i * 8))) in
    h := (!h lxor w) * frame_prime
  done;
  for i = pos + (words * 8) to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * frame_prime
  done;
  Int64.of_int !h

let frame64 s = frame64_sub s ~pos:0 ~len:(String.length s)

let frame64_bytes b ~pos ~len =
  let h = ref frame_basis in
  let words = len / 8 in
  for i = 0 to words - 1 do
    let w = Int64.to_int (Bytes.get_int64_le b (pos + (i * 8))) in
    h := (!h lxor w) * frame_prime
  done;
  for i = pos + (words * 8) to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * frame_prime
  done;
  Int64.of_int !h
