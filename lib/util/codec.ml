type encoder = Buffer.t

let encoder () = Buffer.create 64
let to_string = Buffer.contents
let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let i64 b v = Buffer.add_int64_le b v
let int b v = i64 b (Int64.of_int v)
let bool b v = u8 b (if v then 1 else 0)
let float b v = i64 b (Int64.bits_of_float v)

let string b s =
  int b (String.length s);
  Buffer.add_string b s

let raw b s = Buffer.add_string b s

let option f b = function
  | None -> u8 b 0
  | Some v -> u8 b 1; f b v

let list f b l =
  int b (List.length l);
  List.iter (f b) l

let pair f g b (x, y) = f b x; g b y

type decoder = { src : string; mutable pos : int }

exception Decode_error of string

let decoder src = { src; pos = 0 }
let at_end d = d.pos >= String.length d.src

let need d n =
  if d.pos + n > String.length d.src then
    raise (Decode_error (Printf.sprintf "truncated input at %d (+%d > %d)"
                           d.pos n (String.length d.src)))

let get_u8 d =
  need d 1;
  let v = Char.code d.src.[d.pos] in
  d.pos <- d.pos + 1;
  v

let get_i64 d =
  need d 8;
  let v = String.get_int64_le d.src d.pos in
  d.pos <- d.pos + 8;
  v

let get_int d = Int64.to_int (get_i64 d)

let get_bool d =
  match get_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "bad bool byte %d" n))

let get_float d = Int64.float_of_bits (get_i64 d)

let get_string d =
  let n = get_int d in
  if n < 0 then raise (Decode_error "negative string length");
  need d n;
  let s = String.sub d.src d.pos n in
  d.pos <- d.pos + n;
  s

let get_option f d =
  match get_u8 d with
  | 0 -> None
  | 1 -> Some (f d)
  | n -> raise (Decode_error (Printf.sprintf "bad option byte %d" n))

let get_list f d =
  let n = get_int d in
  if n < 0 then raise (Decode_error "negative list length");
  List.init n (fun _ -> f d)

let get_pair f g d =
  let x = f d in
  let y = g d in
  (x, y)
