(* Bytes-backed rather than [Buffer.t]: callers on the commit fast path
   reuse one encoder ({!reset}) and hand the filled prefix to the WAL via
   {!bytes}/{!length} without materialising an intermediate string. *)
type encoder = { mutable buf : Bytes.t; mutable pos : int }

let encoder () = { buf = Bytes.create 64; pos = 0 }
let reset e = e.pos <- 0
let length e = e.pos
let bytes e = e.buf
let to_string e = Bytes.sub_string e.buf 0 e.pos

let ensure e n =
  let need = e.pos + n in
  if need > Bytes.length e.buf then begin
    let cap = ref (Bytes.length e.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let buf = Bytes.create !cap in
    Bytes.blit e.buf 0 buf 0 e.pos;
    e.buf <- buf
  end

let u8 e v =
  ensure e 1;
  Bytes.unsafe_set e.buf e.pos (Char.chr (v land 0xff));
  e.pos <- e.pos + 1

let i64 e v =
  ensure e 8;
  Bytes.set_int64_le e.buf e.pos v;
  e.pos <- e.pos + 8

let int e v = i64 e (Int64.of_int v)
let bool e v = u8 e (if v then 1 else 0)
let float e v = i64 e (Int64.bits_of_float v)

let raw e s =
  let n = String.length s in
  ensure e n;
  Bytes.blit_string s 0 e.buf e.pos n;
  e.pos <- e.pos + n

let string e s =
  int e (String.length s);
  raw e s

let option f b = function
  | None -> u8 b 0
  | Some v -> u8 b 1; f b v

let list f b l =
  int b (List.length l);
  List.iter (f b) l

let pair f g b (x, y) = f b x; g b y

type decoder = { src : string; mutable pos : int }

exception Decode_error of string

let decoder src = { src; pos = 0 }
let at_end d = d.pos >= String.length d.src

let need d n =
  if d.pos + n > String.length d.src then
    raise (Decode_error (Printf.sprintf "truncated input at %d (+%d > %d)"
                           d.pos n (String.length d.src)))

let get_u8 d =
  need d 1;
  let v = Char.code d.src.[d.pos] in
  d.pos <- d.pos + 1;
  v

let get_i64 d =
  need d 8;
  let v = String.get_int64_le d.src d.pos in
  d.pos <- d.pos + 8;
  v

let get_int d = Int64.to_int (get_i64 d)

let get_bool d =
  match get_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "bad bool byte %d" n))

let get_float d = Int64.float_of_bits (get_i64 d)

let get_string d =
  let n = get_int d in
  if n < 0 then raise (Decode_error "negative string length");
  need d n;
  let s = String.sub d.src d.pos n in
  d.pos <- d.pos + n;
  s

let get_option f d =
  match get_u8 d with
  | 0 -> None
  | 1 -> Some (f d)
  | n -> raise (Decode_error (Printf.sprintf "bad option byte %d" n))

let get_list f d =
  let n = get_int d in
  if n < 0 then raise (Decode_error "negative list length");
  List.init n (fun _ -> f d)

let get_pair f g d =
  let x = f d in
  let y = g d in
  (x, y)
