(** ASCII table rendering for benchmark/experiment output.

    Every experiment in [bench/main.exe] prints its result as one of these
    tables so the output can be compared row-by-row with EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t
(** Table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Rows in insertion order — for machine-readable exports (bench --json). *)

val render : t -> string
(** Multi-line string with the title, a header rule, and aligned rows. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
