type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 *)
let int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  (* Shift by 2 so the value fits OCaml's 63-bit int without wrapping. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L
let chance t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -. mean *. log u

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Zipf via the Gray et al. quick generator (as in YCSB), with the zeta
   constant memoized per (n, theta). *)
let zeta_cache : (int * float, float) Hashtbl.t = Hashtbl.create 8

let zeta n theta =
  match Hashtbl.find_opt zeta_cache (n, theta) with
  | Some z -> z
  | None ->
    let z = ref 0.0 in
    for i = 1 to n do
      z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    Hashtbl.add zeta_cache (n, theta) !z;
    !z

let zipf t ~n ~theta =
  let zetan = zeta n theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta 2 theta /. zetan))
  in
  let u = float t 1.0 in
  let uz = u *. zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 theta then 1
  else
    int_of_float (float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha)
    |> min (n - 1)
