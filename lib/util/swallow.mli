(** Disciplined exception tolerance.

    The codebase forbids bare catch-all handlers ([try ... with _ ->],
    [rrq_lint] rule R1): they can eat an injected crash
    ([Rrq_sim.Crashpoint.Crash]) or a scheduler-fatal exception and
    silently convert a simulated node failure into a wrong protocol
    outcome. Call sites that want to tolerate a failing callee — a
    participant RPC during two-phase commit, a best-effort notification —
    use {!run} instead: nonfatal exceptions produce [default], fatal ones
    propagate.

    Fatality is an open predicate. Always fatal: [Assert_failure],
    [Out_of_memory], [Stack_overflow], [Effect.Unhandled],
    [Effect.Continuation_already_resumed]. Layers above [rrq_util] extend
    the set with {!register_fatal} at module-initialization time —
    [Rrq_sim] registers [Crashpoint.Crash] this way. *)

val register_fatal : (exn -> bool) -> unit
(** Add a fatality predicate. Predicates are consulted by {!fatal} in
    addition to the built-in set; registering is idempotent in effect (a
    duplicate predicate only costs a redundant check). *)

val fatal : exn -> bool
(** Whether the exception must never be swallowed. *)

val nonfatal : exn -> bool
(** [not (fatal e)] — the canonical guard for handlers that must tolerate
    callee failure: [try f () with e when Swallow.nonfatal e -> ...]. *)

val run : default:'a -> (unit -> 'a) -> 'a
(** [run ~default f] is [f ()], except that a {e nonfatal} exception is
    swallowed and produces [default]. Fatal exceptions propagate. *)

val unit : (unit -> unit) -> unit
(** [run ~default:()] — best-effort notification calls. *)
