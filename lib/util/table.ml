type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.columns
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line cells =
    "| "
    ^ String.concat " | " (List.map2 pad widths cells)
    ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t =
  print_endline (render t);
  print_newline ()
