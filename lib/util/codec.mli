(** Binary encoding/decoding of structured values into byte strings.

    All multi-byte integers are little-endian. Strings are length-prefixed.
    The codec is used by the WAL, the checkpointers, and the registration
    store, so changes here change the on-"disk" format. *)

type encoder
(** Mutable accumulator for an encoding in progress. *)

val encoder : unit -> encoder
(** Fresh empty encoder. *)

val to_string : encoder -> string
(** Contents encoded so far. *)

val reset : encoder -> unit
(** Rewind to empty, keeping the underlying buffer. Commit fast paths
    reuse one scratch encoder per log rather than allocating per record. *)

val length : encoder -> int
(** Number of bytes encoded since creation or the last {!reset}. *)

val bytes : encoder -> Bytes.t
(** The underlying buffer; only the first {!length} bytes are valid, and
    any later encoder call may replace or overwrite it. For zero-copy
    handoff to framing layers ([Wal.append_enc]); everyone else should
    use {!to_string}. *)

val u8 : encoder -> int -> unit
(** Append one byte (0..255). *)

val i64 : encoder -> int64 -> unit
(** Append a 64-bit integer. *)

val int : encoder -> int -> unit
(** Append an OCaml int (stored as 64-bit). *)

val bool : encoder -> bool -> unit
(** Append a boolean as one byte. *)

val float : encoder -> float -> unit
(** Append a float (IEEE-754 bits). *)

val string : encoder -> string -> unit
(** Append a length-prefixed string. *)

val raw : encoder -> string -> unit
(** Append bytes verbatim, with no length prefix (for framing layers that
    track lengths themselves). *)

val option : (encoder -> 'a -> unit) -> encoder -> 'a option -> unit
(** Append an option: presence byte then payload. *)

val list : (encoder -> 'a -> unit) -> encoder -> 'a list -> unit
(** Append a list: length then elements. *)

val pair :
  (encoder -> 'a -> unit) -> (encoder -> 'b -> unit) -> encoder ->
  'a * 'b -> unit
(** Append a pair, first component first. *)

type decoder
(** Cursor over an encoded string. *)

exception Decode_error of string
(** Raised when the input is truncated or malformed. *)

val decoder : string -> decoder
(** Decoder positioned at the start of [s]. *)

val at_end : decoder -> bool
(** Whether all input has been consumed. *)

val get_u8 : decoder -> int
val get_i64 : decoder -> int64
val get_int : decoder -> int
val get_bool : decoder -> bool
val get_float : decoder -> float
val get_string : decoder -> string
val get_option : (decoder -> 'a) -> decoder -> 'a option
val get_list : (decoder -> 'a) -> decoder -> 'a list
val get_pair : (decoder -> 'a) -> (decoder -> 'b) -> decoder -> 'a * 'b
