(** Transaction manager: transaction lifecycle and atomic commitment.

    Each node runs one TM. A transaction collects {e participants} (resource
    managers, local or remote proxies). Commit uses:

    - nothing at all for read-only transactions,
    - one-phase commit when a single participant did work,
    - presumed-abort two-phase commit otherwise: the only forced coordinator
      write is the commit decision; a crash before that point aborts the
      transaction implicitly, and in-doubt participants that cannot find a
      logged decision are told to abort.

    The coordinator log also drives {e commit redelivery}: once a commit
    decision is logged, delivery to every participant is retried (across
    coordinator restarts, via {!set_resolver} + {!recover_pending}) until
    all have acknowledged, after which an End record retires the
    transaction. *)

type t

type outcome = Committed | Aborted

type participant = {
  part_name : string;  (** Stable name, resolvable after a restart. *)
  p_prepare : Txid.t -> coordinator:string -> bool;
      (** Force a yes-vote; [false] for a no-vote or an unreachable RM. *)
  p_commit : Txid.t -> bool;
      (** Deliver the commit decision; [true] once durably applied. *)
  p_abort : Txid.t -> unit;  (** Best-effort abort notice. *)
  p_one_phase : Txid.t -> bool;  (** Single-participant fast path. *)
  p_has_work : Txid.t -> bool;
      (** Whether the RM buffered any update for this transaction. Workless
          participants are excused from commitment with an abort notice
          (which only releases their read locks), so a transaction that
          wrote at one RM and only read at others still commits one-phase. *)
  p_is_local : bool;
      (** Whether the RM is co-located with the coordinator. The one-phase
          fast path applies only to a single {e local} participant: a lone
          remote participant still gets a logged decision, because a lost
          acknowledgement would otherwise leave its outcome unknowable. *)
}

type txn
(** An open transaction handle. *)

val open_tm :
  ?commit_policy:Rrq_wal.Group_commit.policy ->
  Rrq_storage.Disk.t ->
  name:string ->
  t
(** Open the TM named [name] (the coordinator identity participants will
    query), recovering its decision log and bumping its incarnation.
    [commit_policy] (default [Immediate]) selects how decision-record
    forces are batched; see {!Rrq_wal.Group_commit}. *)

val name : t -> string

val begin_txn : t -> txn
val txn_id : txn -> Txid.t

val join : txn -> participant -> unit
(** Enlist a participant (deduplicated by [part_name]). *)

val on_commit : txn -> (unit -> unit) -> unit
(** Hook run once, just after the transaction commits. *)

val on_abort : txn -> (unit -> unit) -> unit
(** Hook run once, just after the transaction aborts. *)

val commit : t -> txn -> outcome
(** Run the commitment protocol. Returns [Aborted] if any participant voted
    no or was unreachable during voting. Must be called from a fiber. *)

val abort : t -> txn -> unit
(** Abort an active transaction. Idempotent. *)

val force_abort : t -> Txid.t -> bool
(** Abort a live transaction by id, from outside its owning fiber — the
    cancellation path (paper §7: [Kill_element] aborts the dequeuer).
    The owner's eventual [commit] returns [Aborted] and re-notifies
    participants so any locks it acquired afterwards are released. Returns
    [false] if the transaction is unknown or already finished. *)

val is_active : txn -> bool

val decision : t -> Txid.t -> [ `Committed | `Aborted | `Pending ]
(** Answer an in-doubt participant: [`Committed] if a commit decision is
    logged and not yet retired, [`Pending] while the transaction is still
    deciding, [`Aborted] otherwise (presumed abort). *)

val set_resolver : t -> (string -> participant option) -> unit
(** How to reconstruct participant proxies by name after a restart. *)

val recover_pending : t -> unit
(** Spawn redelivery fibers for logged-but-unretired commit decisions.
    Call from a fiber, after {!set_resolver}. *)

val pending_decisions : t -> Txid.t list
(** Commit decisions not yet acknowledged by all participants. *)

val stats : t -> int * int
(** (committed, aborted) counts for this incarnation. *)

(** {1 Replication hooks (primary-backup WAL shipping)} *)

val group_commit : t -> Rrq_wal.Group_commit.t
(** The commit-point batcher, so a replication layer can ship the TM's
    decision log ({!Rrq_wal.Group_commit.set_shipper}). *)

val shipped_decision : string -> Txid.t option
(** Decode one shipped TM log record: [Some id] if it is a commit-decision
    record (under presumed abort only commit decisions are logged), [None]
    for bookkeeping records (incarnation, end) or undecodable input. The
    backup uses these to resolve in-doubt RM entries at promotion. *)
