(** Globally unique transaction identifiers.

    A txid is [(origin, incarnation, n)]: the name of the transaction
    manager that started it, that TM's durable incarnation number (bumped on
    every restart so ids are never reused after a crash), and a counter. *)

type t = { origin : string; inc : int; n : int }

val make : origin:string -> inc:int -> n:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val encode : Rrq_util.Codec.encoder -> t -> unit
val decode : Rrq_util.Codec.decoder -> t
