module Codec = Rrq_util.Codec

type t = { origin : string; inc : int; n : int }

let make ~origin ~inc ~n = { origin; inc; n }
let compare = Stdlib.compare
let equal a b = compare a b = 0
let to_string t = Printf.sprintf "%s.%d.%d" t.origin t.inc t.n

let encode e t =
  Codec.string e t.origin;
  Codec.int e t.inc;
  Codec.int e t.n

let decode d =
  let origin = Codec.get_string d in
  let inc = Codec.get_int d in
  let n = Codec.get_int d in
  { origin; inc; n }
