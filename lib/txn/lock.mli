(** Two-phase-locking lock manager with deadlock detection.

    Locks are named by strings (the KV store uses one per key; the QM uses
    one per queue in strict-FIFO mode). Shared ([S]) locks are compatible
    with each other; exclusive ([X]) locks conflict with everything held by
    other transactions. Requests are granted FIFO-fairly: a new request
    queues behind incompatible earlier waiters, except re-entrant requests
    and upgrades.

    Deadlocks are detected at block time by a cycle search over the dynamic
    waits-for graph; the requester is the victim and receives {!Deadlock}.
    A transaction aborted from the outside while one of its fibers is
    blocked here is woken with {!Cancelled} (used by request cancellation,
    paper §7).

    [transfer] reassigns every lock of one transaction to another without
    releasing — the lock-inheritance technique of paper §6 that makes a
    chain of transactions serializable as one request. *)

type mode = S | X

exception Deadlock of string
(** The request would close a waits-for cycle; the requester should abort. *)

exception Cancelled
(** The waiting transaction was aborted by a third party. *)

type t

val create : ?name:string -> unit -> t
(** [name] (default ["lock"]) is the instance class the lock-order
    witness reports under: every fresh grant and every release-all is
    mirrored into [Rrq_obs.Lock_order] when observability is on (and
    costs one boolean test when it is off). rrq_lint derives the same
    class names statically, so observed order edges can be checked for
    containment in the static lock-order graph. *)

val acquire : ?timeout:float -> t -> Txid.t -> key:string -> mode -> unit
(** Block until granted. Re-entrant; upgrades S to X when permissible.
    @raise Deadlock if granting would deadlock.
    @raise Cancelled if {!cancel_waits} removes the request.
    @raise Deadlock (as timeout surrogate) if [timeout] expires first. *)

val try_acquire : t -> Txid.t -> key:string -> mode -> bool
(** Non-blocking attempt. *)

val holds : t -> Txid.t -> key:string -> mode -> bool
(** Whether the transaction already holds the key in a mode at least as
    strong. *)

val release_all : t -> Txid.t -> unit
(** Release every lock held and cancel every wait of the transaction,
    waking newly grantable waiters. Called at commit and abort. *)

val cancel_waits : t -> Txid.t -> unit
(** Wake all pending [acquire]s of the transaction with {!Cancelled},
    without touching locks it already holds. *)

val transfer : t -> from:Txid.t -> to_:Txid.t -> unit
(** Move all locks held by [from] to [to_] (merging modes). *)

val held_keys : t -> Txid.t -> (string * mode) list
(** Locks currently held by the transaction. *)

val locked : t -> key:string -> bool
(** Whether anyone holds the key (test/diagnostic helper). *)

val waiting_count : t -> int
(** Number of blocked requests (diagnostics). *)
