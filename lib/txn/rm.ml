module Codec = Rrq_util.Codec
module Wal = Rrq_wal.Wal
module Group_commit = Rrq_wal.Group_commit
module Disk = Rrq_storage.Disk

module type STATE = sig
  type state
  type redo

  val empty : unit -> state
  val encode_redo : Codec.encoder -> redo -> unit
  val decode_redo : Codec.decoder -> redo
  val apply : state -> redo -> unit
  val snapshot : Codec.encoder -> state -> unit
  val restore : Codec.decoder -> state
  val relock : state -> Txid.t -> redo list -> unit
end

module Make (S : STATE) = struct
  type prepared = { coordinator : string; redos : S.redo list }

  type t = {
    rm_name : string;
    wal : Wal.t;
    gc : Group_commit.t;
    mutable st : S.state; (* replaced wholesale by a standby install *)
    workspaces : (Txid.t, S.redo list ref) Hashtbl.t; (* newest first *)
    prepared_txns : (Txid.t, prepared) Hashtbl.t;
  }

  (* Log record kinds. *)
  let k_one_phase = 1
  let k_prepare = 2
  let k_commit = 3
  let k_abort = 4
  let k_apply_now = 5

  let encode_record kind txid_opt coordinator redos =
    let e = Codec.encoder () in
    Codec.u8 e kind;
    Codec.option Txid.encode e txid_opt;
    Codec.string e coordinator;
    Codec.list S.encode_redo e redos;
    Codec.to_string e

  let decode_record payload =
    let d = Codec.decoder payload in
    let kind = Codec.get_u8 d in
    let txid = Codec.get_option Txid.decode d in
    let coordinator = Codec.get_string d in
    let redos = Codec.get_list S.decode_redo d in
    (kind, txid, coordinator, redos)

  let replay t payload =
    let kind, txid, coordinator, redos = decode_record payload in
    match kind with
    | k when k = k_one_phase || k = k_apply_now ->
      List.iter (S.apply t.st) redos
    | k when k = k_prepare -> begin
      match txid with
      | Some id -> Hashtbl.replace t.prepared_txns id { coordinator; redos }
      | None -> failwith "rm: prepare record without txid"
    end
    | k when k = k_commit -> begin
      match txid with
      | Some id -> begin
        match Hashtbl.find_opt t.prepared_txns id with
        | Some p ->
          List.iter (S.apply t.st) p.redos;
          Hashtbl.remove t.prepared_txns id
        | None -> () (* resolved before the snapshot; duplicate record *)
      end
      | None -> failwith "rm: commit record without txid"
    end
    | k when k = k_abort -> begin
      match txid with
      | Some id -> Hashtbl.remove t.prepared_txns id
      | None -> failwith "rm: abort record without txid"
    end
    | k -> failwith (Printf.sprintf "rm: unknown record kind %d" k)

  let encode_snapshot t =
    let e = Codec.encoder () in
    S.snapshot e t.st;
    Codec.int e (Hashtbl.length t.prepared_txns);
    Hashtbl.iter
      (fun id p ->
        Txid.encode e id;
        Codec.string e p.coordinator;
        Codec.list S.encode_redo e p.redos)
      t.prepared_txns;
    Codec.to_string e

  let open_rm ?commit_policy disk ~name:rm_name =
    let wal, recovered = Wal.open_log disk ~name:(rm_name ^ ".wal") in
    let gc = Group_commit.create ?policy:commit_policy wal in
    let st, prepared_txns =
      match recovered.Wal.snapshot with
      | None -> (S.empty (), Hashtbl.create 8)
      | Some snap ->
        let d = Codec.decoder snap in
        let st = S.restore d in
        let n = Codec.get_int d in
        let tbl = Hashtbl.create 8 in
        for _ = 1 to n do
          let id = Txid.decode d in
          let coordinator = Codec.get_string d in
          let redos = Codec.get_list S.decode_redo d in
          Hashtbl.replace tbl id { coordinator; redos }
        done;
        (st, tbl)
    in
    let t =
      { rm_name; wal; gc; st; workspaces = Hashtbl.create 16; prepared_txns }
    in
    List.iter (replay t) recovered.Wal.records;
    (* Re-assert exclusions for transactions still in doubt. *)
    Hashtbl.iter (fun id p -> S.relock t.st id p.redos) t.prepared_txns;
    t

  let name t = t.rm_name
  let state t = t.st

  let add_redo t id redo =
    match Hashtbl.find_opt t.workspaces id with
    | Some ws -> ws := redo :: !ws
    | None -> Hashtbl.add t.workspaces id (ref [ redo ])

  let workspace t id =
    match Hashtbl.find_opt t.workspaces id with
    | Some ws -> List.rev !ws
    | None -> []

  let has_workspace t id = Hashtbl.mem t.workspaces id

  let commit_one_phase t id =
    match Hashtbl.find_opt t.workspaces id with
    | None -> ()
    | Some ws ->
      let redos = List.rev !ws in
      Hashtbl.remove t.workspaces id;
      (* Group-commit discipline: append, apply in memory without yielding,
         then force (which may park the fiber) before acknowledging. *)
      Group_commit.append t.gc (encode_record k_one_phase (Some id) "" redos);
      List.iter (S.apply t.st) redos;
      Group_commit.force t.gc

  let prepare t id ~coordinator =
    match Hashtbl.find_opt t.workspaces id with
    | None -> true (* read-only here: nothing to make durable *)
    | Some ws ->
      let redos = List.rev !ws in
      Hashtbl.remove t.workspaces id;
      Group_commit.append t.gc
        (encode_record k_prepare (Some id) coordinator redos);
      Hashtbl.replace t.prepared_txns id { coordinator; redos };
      Group_commit.force t.gc;
      true

  let commit_prepared t id =
    match Hashtbl.find_opt t.prepared_txns id with
    | None -> () (* already resolved (idempotent) *)
    | Some p ->
      Group_commit.append t.gc (encode_record k_commit (Some id) "" []);
      List.iter (S.apply t.st) p.redos;
      Hashtbl.remove t.prepared_txns id;
      Group_commit.force t.gc

  let abort t id =
    Hashtbl.remove t.workspaces id;
    match Hashtbl.find_opt t.prepared_txns id with
    | None -> ()
    | Some _ ->
      Group_commit.append t.gc (encode_record k_abort (Some id) "" []);
      Hashtbl.remove t.prepared_txns id;
      Group_commit.force t.gc

  let is_prepared t id = Hashtbl.mem t.prepared_txns id

  let in_doubt t =
    Hashtbl.fold (fun id p acc -> (id, p.coordinator) :: acc) t.prepared_txns []

  let apply_now t redos =
    Group_commit.append t.gc (encode_record k_apply_now None "" redos);
    List.iter (S.apply t.st) redos;
    Group_commit.force t.gc

  let group_commit t = t.gc

  (* ---- warm-standby replication target --------------------------------
     The backup side of WAL shipping: shipped records are appended verbatim
     into this RM's OWN log (so a backup crash recovers through the native
     path) and replayed into memory immediately — the standby is warm by
     construction. Locks are not re-asserted here: a standby runs no
     competing transactions, and promotion resolves every in-doubt entry
     before serving. *)

  let standby_apply t payload =
    Group_commit.append t.gc payload;
    replay t payload

  let standby_force t = Group_commit.force t.gc

  let standby_install t snapshot =
    let d = Codec.decoder snapshot in
    let st = S.restore d in
    let n = Codec.get_int d in
    Hashtbl.reset t.prepared_txns;
    Hashtbl.reset t.workspaces;
    for _ = 1 to n do
      let id = Txid.decode d in
      let coordinator = Codec.get_string d in
      let redos = Codec.get_list S.decode_redo d in
      Hashtbl.replace t.prepared_txns id { coordinator; redos }
    done;
    t.st <- st;
    (* Restart our own log from the installed image. *)
    Wal.checkpoint t.wal (encode_snapshot t)

  let checkpoint t = Wal.checkpoint t.wal (encode_snapshot t)

  let maybe_checkpoint t ~every =
    if Wal.records_since_checkpoint t.wal >= every then checkpoint t

  let records_since_checkpoint t = Wal.records_since_checkpoint t.wal
  let live_log_bytes t = Wal.live_log_bytes t.wal
end
