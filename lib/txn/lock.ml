module Sched = Rrq_sim.Sched

type mode = S | X

exception Deadlock of string
exception Cancelled

type grant_result = Granted | Cancelled_by_peer | Timed_out

type waiter = {
  wtx : Txid.t;
  wmode : mode;
  waker : grant_result Sched.waker;
}

type entry = {
  key : string;
  mutable granted : (Txid.t * mode) list;
  mutable waiting : waiter list; (* FIFO, head oldest *)
}

type t = {
  lm_name : string; (* instance class for the lock-order witness *)
  table : (string, entry) Hashtbl.t;
  held : (Txid.t, (string, unit) Hashtbl.t) Hashtbl.t;
  waits : (Txid.t, entry * mode) Hashtbl.t; (* each tx waits on <=1 lock *)
}

let create ?(name = "lock") () =
  {
    lm_name = name;
    table = Hashtbl.create 64;
    held = Hashtbl.create 64;
    waits = Hashtbl.create 16;
  }

(* Lock-order witness hook, at every fresh grant (both grant points: the
   immediate [attempt] path and the FIFO [pump] path) and at release-all.
   [transfer] moves keys without a grant; the receiving transaction
   under-reports, which is the safe direction for the witness's
   observed-⊆-static containment check. *)
let note_grant t tx =
  if Rrq_obs.enabled () then
    Rrq_obs.Lock_order.note_acquire ~txid:(Txid.to_string tx) t.lm_name

let compatible a b = a = S && b = S
let weaker_or_equal a b = a = b || (a = S && b = X)

let entry_of t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
    let e = { key; granted = []; waiting = [] } in
    Hashtbl.add t.table key e;
    e

let held_set t tx =
  match Hashtbl.find_opt t.held tx with
  | Some s -> s
  | None ->
    let s = Hashtbl.create 8 in
    Hashtbl.add t.held tx s;
    s

let note_held t tx key = Hashtbl.replace (held_set t tx) key ()

let current_mode e tx =
  List.assoc_opt tx (List.map (fun (x, m) -> (x, m)) e.granted)

let set_granted e tx mode =
  e.granted <- (tx, mode) :: List.filter (fun (x, _) -> not (Txid.equal x tx)) e.granted

let conflicting_holders e tx mode =
  List.filter_map
    (fun (x, m) ->
      if Txid.equal x tx then None
      else if compatible mode m then None
      else Some x)
    e.granted

(* Grant as many waiters as possible, FIFO-strictly from the head.
   An upgrader (holds S, wants X) is granted when it is the sole holder. *)
let rec pump t e =
  match e.waiting with
  | [] -> ()
  | w :: rest ->
    let cur = current_mode e w.wtx in
    let is_upgrade = cur = Some S && w.wmode = X in
    let grantable =
      if is_upgrade then
        List.for_all (fun (x, _) -> Txid.equal x w.wtx) e.granted
      else conflicting_holders e w.wtx w.wmode = []
    in
    if grantable then begin
      e.waiting <- rest;
      Hashtbl.remove t.waits w.wtx;
      if Sched.waker_live w.waker then begin
        set_granted e w.wtx (if is_upgrade then X else w.wmode);
        note_held t w.wtx e.key;
        note_grant t w.wtx;
        ignore (Sched.wake w.waker Granted)
      end;
      pump t e
    end
    else if not (Sched.waker_live w.waker) then begin
      (* Dead waiter (fiber killed in a node crash): drop and continue. *)
      e.waiting <- rest;
      Hashtbl.remove t.waits w.wtx;
      pump t e
    end

(* Waits-for edges of a blocked transaction: the incompatible holders of the
   lock it waits on, plus incompatible waiters queued ahead of it. *)
let blockers t tx =
  match Hashtbl.find_opt t.waits tx with
  | None -> []
  | Some (e, mode) ->
    let ahead = ref [] in
    (try
       List.iter
         (fun w ->
           if Txid.equal w.wtx tx then raise Exit
           else if not (compatible mode w.wmode) then ahead := w.wtx :: !ahead)
         e.waiting
     with Exit -> ());
    conflicting_holders e tx mode @ !ahead

let would_deadlock t ~requester ~first_blockers =
  let visited = Hashtbl.create 16 in
  let rec reach tx =
    if Txid.equal tx requester then true
    else if Hashtbl.mem visited tx then false
    else begin
      Hashtbl.add visited tx ();
      List.exists reach (blockers t tx)
    end
  in
  List.exists reach first_blockers

let attempt t tx e mode =
  let cur = current_mode e tx in
  match cur with
  | Some m when weaker_or_equal mode m -> `Granted
  | _ ->
    let is_upgrade = cur = Some S && mode = X in
    let conflicts = conflicting_holders e tx mode in
    let grantable =
      conflicts = []
      && (is_upgrade
          || List.for_all (fun w -> not (Sched.waker_live w.waker)) e.waiting)
    in
    if grantable then begin
      set_granted e tx (if is_upgrade then X else mode);
      note_held t tx e.key;
      note_grant t tx;
      `Granted
    end
    else `Blocked conflicts

let acquire ?timeout t tx ~key mode =
  let e = entry_of t key in
  match attempt t tx e mode with
  | `Granted -> ()
  | `Blocked conflicts ->
    (* Both current holders and live queued waiters block this request. *)
    let waiter_txs =
      List.filter_map
        (fun w -> if Sched.waker_live w.waker then Some w.wtx else None)
        e.waiting
    in
    let first_blockers = conflicts @ waiter_txs in
    if would_deadlock t ~requester:tx ~first_blockers then
      raise (Deadlock (Printf.sprintf "lock %s for %s" key (Txid.to_string tx)));
    let result =
      Sched.suspend (fun sched w ->
          e.waiting <- e.waiting @ [ { wtx = tx; wmode = mode; waker = w } ];
          Hashtbl.replace t.waits tx (e, mode);
          match timeout with
          | None -> ()
          | Some d ->
            Sched.at sched (Sched.now sched +. d) (fun () ->
                if Sched.wake w Timed_out then begin
                  e.waiting <-
                    List.filter (fun w' -> not (Txid.equal w'.wtx tx)) e.waiting;
                  Hashtbl.remove t.waits tx
                end))
    in
    (match result with
    | Granted -> () (* pump granted the lock before waking us *)
    | Cancelled_by_peer -> raise Cancelled
    | Timed_out ->
      raise
        (Deadlock
           (Printf.sprintf "lock timeout on %s for %s" key (Txid.to_string tx))))

let try_acquire t tx ~key mode =
  let e = entry_of t key in
  match attempt t tx e mode with `Granted -> true | `Blocked _ -> false

let holds t tx ~key mode =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some e -> begin
    match current_mode e tx with
    | Some m -> weaker_or_equal mode m
    | None -> false
  end

(* Every commit releases, but in the default non-strict mode no QM lock is
   ever taken — so short-circuit on table emptiness ([Hashtbl.length] is a
   stored count) before paying any Txid-keyed hashing. *)
let cancel_waits t tx =
  if Hashtbl.length t.waits > 0 then begin
    match Hashtbl.find_opt t.waits tx with
    | None -> ()
    | Some (e, _) ->
      let mine, others =
        List.partition (fun w -> Txid.equal w.wtx tx) e.waiting
      in
      e.waiting <- others;
      Hashtbl.remove t.waits tx;
      List.iter (fun w -> ignore (Sched.wake w.waker Cancelled_by_peer)) mine;
      pump t e
  end

let release_all t tx =
  if Rrq_obs.enabled () then
    Rrq_obs.Lock_order.note_release_all ~txid:(Txid.to_string tx);
  cancel_waits t tx;
  if Hashtbl.length t.held > 0 then begin
    (match Hashtbl.find_opt t.held tx with
    | None -> ()
    | Some keys ->
      Hashtbl.iter
        (fun key () ->
          match Hashtbl.find_opt t.table key with
          | None -> ()
          | Some e ->
            e.granted <-
              List.filter (fun (x, _) -> not (Txid.equal x tx)) e.granted;
            pump t e)
        keys);
    Hashtbl.remove t.held tx
  end

let transfer t ~from ~to_ =
  (match Hashtbl.find_opt t.held from with
  | None -> ()
  | Some keys ->
    Hashtbl.iter
      (fun key () ->
        match Hashtbl.find_opt t.table key with
        | None -> ()
        | Some e ->
          let from_mode = current_mode e from in
          let to_mode = current_mode e to_ in
          (match from_mode with
          | None -> ()
          | Some fm ->
            let merged =
              match to_mode with Some X -> X | Some S -> if fm = X then X else S | None -> fm
            in
            e.granted <-
              List.filter
                (fun (x, _) -> not (Txid.equal x from || Txid.equal x to_))
                e.granted;
            e.granted <- (to_, merged) :: e.granted;
            note_held t to_ key))
      keys;
    Hashtbl.remove t.held from)

let held_keys t tx =
  match Hashtbl.find_opt t.held tx with
  | None -> []
  | Some keys ->
    Hashtbl.fold
      (fun key () acc ->
        match Hashtbl.find_opt t.table key with
        | None -> acc
        | Some e -> begin
          match current_mode e tx with
          | Some m -> (key, m) :: acc
          | None -> acc
        end)
      keys []

let locked t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some e -> e.granted <> []

let waiting_count t = Hashtbl.length t.waits
