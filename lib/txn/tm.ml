module Codec = Rrq_util.Codec
module Swallow = Rrq_util.Swallow
module Wal = Rrq_wal.Wal
module Group_commit = Rrq_wal.Group_commit
module Sched = Rrq_sim.Sched

type outcome = Committed | Aborted

type participant = {
  part_name : string;
  p_prepare : Txid.t -> coordinator:string -> bool;
  p_commit : Txid.t -> bool;
  p_abort : Txid.t -> unit;
  p_one_phase : Txid.t -> bool;
  p_has_work : Txid.t -> bool;
  p_is_local : bool;
}

type status = Active | Finished of outcome

type txn = {
  id : Txid.t;
  mutable participants : participant list; (* reverse join order *)
  mutable status : status;
  mutable commit_hooks : (unit -> unit) list;
  mutable abort_hooks : (unit -> unit) list;
}

type t = {
  tm_name : string;
  wal : Wal.t;
  gc : Group_commit.t;
  inc : int;
  mutable next_n : int;
  (* Commit decisions logged but not yet acknowledged by every participant:
     txid -> unacked participant names. *)
  pending : (Txid.t, string list ref) Hashtbl.t;
  (* Transactions currently inside the voting phase (decision not yet
     logged): queries about these must answer [`Pending]. *)
  deciding : (Txid.t, unit) Hashtbl.t;
  (* Live transaction handles, for force_abort. *)
  live : (Txid.t, txn) Hashtbl.t;
  mutable resolver : string -> participant option;
  mutable n_committed : int;
  mutable n_aborted : int;
}

(* Log record kinds. *)
let k_incarnation = 1
let k_decision = 2
let k_end = 3

let encode_incarnation () =
  let e = Codec.encoder () in
  Codec.u8 e k_incarnation;
  Codec.to_string e

let encode_decision id parts =
  let e = Codec.encoder () in
  Codec.u8 e k_decision;
  Txid.encode e id;
  Codec.list Codec.string e parts;
  Codec.to_string e

let encode_end id =
  let e = Codec.encoder () in
  Codec.u8 e k_end;
  Txid.encode e id;
  Codec.to_string e

let open_tm ?commit_policy disk ~name:tm_name =
  let wal, recovered = Wal.open_log disk ~name:(tm_name ^ ".tmlog") in
  let gc = Group_commit.create ?policy:commit_policy wal in
  let pending = Hashtbl.create 8 in
  let inc = ref 0 in
  List.iter
    (fun payload ->
      let d = Codec.decoder payload in
      let kind = Codec.get_u8 d in
      if kind = k_incarnation then incr inc
      else if kind = k_decision then begin
        let id = Txid.decode d in
        let parts = Codec.get_list Codec.get_string d in
        Hashtbl.replace pending id (ref parts)
      end
      else if kind = k_end then Hashtbl.remove pending (Txid.decode d)
      else failwith "tm: unknown log record")
    recovered.Wal.records;
  Group_commit.append_force gc (encode_incarnation ());
  {
    tm_name;
    wal;
    gc;
    inc = !inc + 1;
    next_n = 0;
    pending;
    deciding = Hashtbl.create 8;
    live = Hashtbl.create 16;
    resolver = (fun _ -> None);
    n_committed = 0;
    n_aborted = 0;
  }

let name t = t.tm_name

let begin_txn t =
  t.next_n <- t.next_n + 1;
  let txn =
    {
      id = Txid.make ~origin:t.tm_name ~inc:t.inc ~n:t.next_n;
      participants = [];
      status = Active;
      commit_hooks = [];
      abort_hooks = [];
    }
  in
  Hashtbl.replace t.live txn.id txn;
  if Rrq_obs.enabled () then begin
    Rrq_obs.Metrics.inc ("tm.begins:" ^ t.tm_name);
    Rrq_obs.Trace.emit
      (Rrq_obs.Event.Txn_begin
         { tm = t.tm_name; txid = Txid.to_string txn.id })
  end;
  txn

let txn_id txn = txn.id

let join txn p =
  match txn.status with
  | Finished Aborted ->
    (* Force-aborted under the owner's feet: undo whatever the owner did at
       this RM after the abort, so nothing leaks. *)
    Swallow.unit (fun () -> p.p_abort txn.id)
  | Finished Committed -> invalid_arg "Tm.join: transaction already committed"
  | Active ->
    if not (List.exists (fun q -> q.part_name = p.part_name) txn.participants)
    then txn.participants <- p :: txn.participants

let on_commit txn f = txn.commit_hooks <- f :: txn.commit_hooks
let on_abort txn f = txn.abort_hooks <- f :: txn.abort_hooks
let is_active txn = txn.status = Active

let finish txn outcome =
  txn.status <- Finished outcome;
  let hooks =
    match outcome with Committed -> txn.commit_hooks | Aborted -> txn.abort_hooks
  in
  txn.commit_hooks <- [];
  txn.abort_hooks <- [];
  List.iter (fun f -> f ()) (List.rev hooks)

let log_end t id =
  Hashtbl.remove t.pending id;
  Wal.append t.wal (encode_end id)
(* End records are a cleanup optimization; they need not be forced. *)

(* Retry commit delivery until every participant has acknowledged. *)
let redeliver t id resolve =
  let rec loop () =
    match Hashtbl.find_opt t.pending id with
    | None -> ()
    | Some remaining ->
      remaining :=
        List.filter
          (fun pname ->
            match resolve pname with
            | None -> true
            | Some p -> not (Swallow.run ~default:false (fun () -> p.p_commit id)))
          !remaining;
      if !remaining = [] then log_end t id
      else begin
        Sched.sleep_background 1.0;
        loop ()
      end
  in
  loop ()

let deliver_commits t id parts =
  let unacked =
    List.filter (fun p -> not (Swallow.run ~default:false (fun () -> p.p_commit id))) parts
  in
  if unacked = [] then log_end t id
  else begin
    (* Keep retrying in the background; closures remain valid while this
       incarnation lives, and recovery re-resolves by name otherwise. *)
    let by_name pname =
      match List.find_opt (fun p -> p.part_name = pname) parts with
      | Some p -> Some p
      | None -> t.resolver pname
    in
    Hashtbl.replace t.pending id (ref (List.map (fun p -> p.part_name) unacked));
    ignore
      (Sched.fork ~name:("redeliver:" ^ Txid.to_string id) (fun () ->
           redeliver t id by_name))
  end

let commit t txn =
  match txn.status with
  | Finished Aborted ->
    (* Force-aborted earlier: re-notify so locks or buffers acquired since
       the abort are cleaned up (participant aborts are idempotent). *)
    List.iter
      (fun p -> Swallow.unit (fun () -> p.p_abort txn.id))
      (List.rev txn.participants);
    Aborted
  | Finished Committed -> Committed
  | Active -> begin
    (* Commit latency runs from here to the durable outcome; under a
       batched force the fiber may park inside [Group_commit.force], and
       that wait is exactly what the histogram should show. *)
    let t0 =
      if Rrq_obs.enabled () && Sched.in_fiber () then Sched.clock () else 0.0
    in
    let commit_done () =
      t.n_committed <- t.n_committed + 1;
      if Rrq_obs.enabled () then begin
        Rrq_obs.Metrics.inc ("tm.commits:" ^ t.tm_name);
        if Sched.in_fiber () then
          Rrq_obs.Metrics.observe
            ("tm.commit.latency:" ^ t.tm_name)
            (Sched.clock () -. t0);
        Rrq_obs.Trace.emit
          (Rrq_obs.Event.Txn_commit
             { tm = t.tm_name; txid = Txid.to_string txn.id })
      end
    in
    let abort_done () =
      t.n_aborted <- t.n_aborted + 1;
      if Rrq_obs.enabled () then begin
        Rrq_obs.Metrics.inc ("tm.aborts:" ^ t.tm_name);
        Rrq_obs.Trace.emit
          (Rrq_obs.Event.Txn_abort
             { tm = t.tm_name; txid = Txid.to_string txn.id })
      end
    in
    Hashtbl.remove t.live txn.id;
    (* Participants that buffered no update are excused with an abort
       notice, which merely releases their read locks. *)
    let parts, workless =
      List.partition
        (fun p -> Swallow.run ~default:true (fun () -> p.p_has_work txn.id))
        (List.rev txn.participants)
    in
    List.iter (fun p -> Swallow.unit (fun () -> p.p_abort txn.id)) workless;
    match parts with
    | [] ->
      commit_done ();
      finish txn Committed;
      Committed
    | [ p ] when p.p_is_local ->
      if Swallow.run ~default:false (fun () -> p.p_one_phase txn.id) then begin
        commit_done ();
        finish txn Committed;
        Committed
      end
      else begin
        abort_done ();
        Swallow.unit (fun () -> p.p_abort txn.id);
        finish txn Aborted;
        Aborted
      end
    | _ :: _ ->
      Hashtbl.replace t.deciding txn.id ();
      let all_yes =
        List.for_all
          (fun p ->
            Swallow.run ~default:false (fun () ->
                p.p_prepare txn.id ~coordinator:t.tm_name))
          parts
      in
      if not all_yes then begin
        Hashtbl.remove t.deciding txn.id;
        List.iter (fun p -> Swallow.unit (fun () -> p.p_abort txn.id)) parts;
        abort_done ();
        finish txn Aborted;
        Aborted
      end
      else begin
        let pnames = List.map (fun p -> p.part_name) parts in
        Rrq_sim.Crashpoint.reach ("tm.prepared:" ^ t.tm_name);
        (* The txn stays in [deciding] (answering [`Pending]) until the
           decision record is durable: under a batched force this fiber may
           park here, and resolvers must not observe a commit outcome that a
           crash could still revoke. *)
        Group_commit.append t.gc (encode_decision txn.id pnames);
        Group_commit.force t.gc;
        Rrq_sim.Crashpoint.reach ("tm.decided:" ^ t.tm_name);
        Hashtbl.replace t.pending txn.id (ref pnames);
        Hashtbl.remove t.deciding txn.id;
        commit_done ();
        finish txn Committed;
        deliver_commits t txn.id parts;
        Committed
      end
  end

let abort t txn =
  match txn.status with
  | Finished _ -> ()
  | Active ->
    Hashtbl.remove t.live txn.id;
    List.iter (fun p -> Swallow.unit (fun () -> p.p_abort txn.id)) (List.rev txn.participants);
    t.n_aborted <- t.n_aborted + 1;
    if Rrq_obs.enabled () then begin
      Rrq_obs.Metrics.inc ("tm.aborts:" ^ t.tm_name);
      Rrq_obs.Trace.emit
        (Rrq_obs.Event.Txn_abort
           { tm = t.tm_name; txid = Txid.to_string txn.id })
    end;
    finish txn Aborted

let force_abort t id =
  match Hashtbl.find_opt t.live id with
  | None -> false
  | Some txn ->
    abort t txn;
    true

let decision t id =
  if Hashtbl.mem t.pending id then `Committed
  else if Hashtbl.mem t.deciding id then `Pending
  else `Aborted (* presumed abort: no logged decision, not deciding *)

let set_resolver t f = t.resolver <- f

let recover_pending t =
  Hashtbl.iter
    (fun id _remaining ->
      ignore
        (Sched.fork ~name:("redeliver:" ^ Txid.to_string id) (fun () ->
             redeliver t id (fun pname -> t.resolver pname))))
    t.pending

let pending_decisions t = Hashtbl.fold (fun id _ acc -> id :: acc) t.pending []
let stats t = (t.n_committed, t.n_aborted)

let group_commit t = t.gc

(* Under presumed abort only COMMIT decisions are logged, so a shipped TM
   record either names a committed transaction or is bookkeeping
   (incarnation/end) the backup can ignore. *)
let shipped_decision payload =
  let d = Codec.decoder payload in
  match Codec.get_u8 d with
  | k when k = k_decision -> Some (Txid.decode d)
  | _ -> None
  | exception Codec.Decode_error _ -> None
