(** Resource-manager base: deferred-update transactional state with
    redo-only logging, two-phase-commit participation and checkpointed
    recovery.

    A resource manager (the queue manager, the KV store) supplies its state
    type and redo-record type; this functor supplies the transactional
    plumbing:

    - transactions buffer redo records in a private workspace;
    - [commit_one_phase] durably logs the workspace then applies it;
    - [prepare] durably logs the workspace as in-doubt (with its
      coordinator's name) and keeps it; [commit_prepared]/[abort] resolve it;
    - recovery replays the log over the latest checkpoint snapshot and
      rebuilds the in-doubt table, invoking [relock] so prepared
      transactions' locks are re-acquired before new work starts
      (paper §5: an aborted/restarted server must find requests back in the
      queue; a prepared dequeue must stay invisible).

    Uncommitted workspaces are volatile by design: a crash aborts them. *)

module type STATE = sig
  type state
  (** In-memory state of the resource manager. *)

  type redo
  (** One logical update; must be re-applicable from its encoding. *)

  val empty : unit -> state
  val encode_redo : Rrq_util.Codec.encoder -> redo -> unit
  val decode_redo : Rrq_util.Codec.decoder -> redo
  val apply : state -> redo -> unit
  (** Apply an update. Must be deterministic; runs both live and in replay. *)

  val snapshot : Rrq_util.Codec.encoder -> state -> unit
  val restore : Rrq_util.Codec.decoder -> state

  val relock : state -> Txid.t -> redo list -> unit
  (** Re-assert whatever volatile exclusions an in-doubt transaction's
      pending updates imply (element locks, key locks). Called once per
      prepared transaction during recovery. *)
end

module Make (S : STATE) : sig
  type t

  val open_rm :
    ?commit_policy:Rrq_wal.Group_commit.policy ->
    Rrq_storage.Disk.t ->
    name:string ->
    t
  (** Open the RM, running recovery against its WAL. [commit_policy]
      (default [Immediate]) selects how commit-point log forces are
      batched; see {!Rrq_wal.Group_commit}. *)

  val name : t -> string
  val state : t -> S.state

  val add_redo : t -> Txid.t -> S.redo -> unit
  (** Buffer an update in the transaction's workspace. *)

  val workspace : t -> Txid.t -> S.redo list
  (** Updates buffered so far (oldest first). *)

  val has_workspace : t -> Txid.t -> bool

  val commit_one_phase : t -> Txid.t -> unit
  (** Log-force the workspace and apply it. Used when this RM is the only
      participant. No-op for an empty workspace. *)

  val prepare : t -> Txid.t -> coordinator:string -> bool
  (** Vote yes: durably record the workspace as in-doubt. Always votes yes
      unless the transaction has no workspace here (then trivially yes with
      nothing recorded — a read-only participant). *)

  val commit_prepared : t -> Txid.t -> unit
  (** Apply and durably resolve an in-doubt transaction. Idempotent:
      unknown transactions are treated as already resolved. *)

  val abort : t -> Txid.t -> unit
  (** Discard the workspace; durably resolve the transaction if it was
      prepared. Idempotent. *)

  val is_prepared : t -> Txid.t -> bool

  val in_doubt : t -> (Txid.t * string) list
  (** Prepared-but-unresolved transactions with their coordinators
      (populated by recovery; the host node runs a resolver over these). *)

  val apply_now : t -> S.redo list -> unit
  (** Durably log and apply updates outside any transaction (auto-commit),
      e.g. the retry-counter bump on an aborted dequeue. *)

  val group_commit : t -> Rrq_wal.Group_commit.t
  (** The commit-point batcher, exposed so a replication layer can install
      a WAL shipper on it ({!Rrq_wal.Group_commit.set_shipper}). *)

  (** {1 Warm-standby replication target}

      The backup half of primary-backup WAL shipping: shipped records are
      appended verbatim into this RM's own log (a backup crash recovers
      through the native path) and replayed into memory immediately, so
      the standby is warm by construction. A standby runs no competing
      transactions; in-doubt entries accumulated from shipped prepares are
      resolved by the promotion protocol, not here. *)

  val standby_apply : t -> string -> unit
  (** Append one shipped record to our own log and replay it into memory.
      Not forced — call {!standby_force} at batch end, before
      acknowledging the batch to the primary. *)

  val standby_force : t -> unit

  val standby_install : t -> string -> unit
  (** Replace the whole state from a primary {!encode_snapshot} image
      (full resync after a gap or a role change) and restart our log from
      it. *)

  val encode_snapshot : t -> string
  (** The state + in-doubt table as one string — what {!standby_install}
      consumes on the peer. *)

  val checkpoint : t -> unit
  (** Snapshot state + in-doubt table; truncate the log. *)

  val maybe_checkpoint : t -> every:int -> unit
  (** Checkpoint when at least [every] records accumulated since the last
      one. *)

  val records_since_checkpoint : t -> int
  val live_log_bytes : t -> int
end
