module Disk = Rrq_storage.Disk
module Codec = Rrq_util.Codec
module Checksum = Rrq_util.Checksum

type t = {
  disk : Disk.t;
  base : string;
  mutable seg : int; (* active segment number *)
  mutable file : Disk.file;
  mutable since_ckpt : int;
  (* Append/durability split for group commit: [appended_lsn] counts records
     buffered this incarnation, [durable_lsn] those known forced. *)
  mutable appended_lsn : int;
  mutable durable_lsn : int;
  (* Crash-point site names, precomputed: [sync] runs per commit batch and
     must not rebuild these strings every time. *)
  site_sync : string;
  site_synced : string;
}

type recovered = { snapshot : string option; records : string list }

let seg_name base n = Printf.sprintf "%s.seg%d" base n
let ckpt_name base = base ^ ".ckpt"

(* Frame: payload length (i64) | frame64 of payload (i64) | payload. *)
let frame payload =
  let e = Codec.encoder () in
  Codec.int e (String.length payload);
  Codec.i64 e (Checksum.frame64 payload);
  Codec.raw e payload;
  Codec.to_string e

(* Scan a segment's contents, returning complete valid records in order.
   Returns [None] as second component if the scan hit a corrupt/truncated
   frame (meaning: stop scanning later segments too). *)
let scan_segment contents =
  let n = String.length contents in
  let records = ref [] in
  let pos = ref 0 in
  let clean = ref true in
  let continue_ = ref true in
  while !continue_ do
    if !pos = n then continue_ := false
    else if !pos + 16 > n then begin
      clean := false;
      continue_ := false
    end
    else begin
      let len = Int64.to_int (String.get_int64_le contents !pos) in
      let sum = String.get_int64_le contents (!pos + 8) in
      if len < 0 || !pos + 16 + len > n then begin
        clean := false;
        continue_ := false
      end
      else begin
        let payload = String.sub contents (!pos + 16) len in
        if Checksum.frame64 payload <> sum then begin
          clean := false;
          continue_ := false
        end
        else begin
          records := payload :: !records;
          pos := !pos + 16 + len
        end
      end
    end
  done;
  (List.rev !records, !clean)

let read_ckpt disk base =
  match Disk.read_file disk (ckpt_name base) with
  | None -> (None, 0)
  | Some contents -> begin
    try
      let d = Codec.decoder contents in
      let seg = Codec.get_int d in
      let snapshot = Codec.get_option Codec.get_string d in
      (snapshot, seg)
    with Codec.Decode_error _ -> (None, 0)
  end

let open_log disk ~name:base =
  let snapshot, first_seg = read_ckpt disk base in
  (* Drop stale segments from before the checkpoint (a crash can leave them
     behind if it hit between checkpoint install and segment deletion). *)
  List.iter
    (fun f ->
      match String.length f > String.length base
            && String.sub f 0 (String.length base) = base
      with
      | true ->
        (* file names are base.segN or base.ckpt *)
        let suffix = String.sub f (String.length base)
                       (String.length f - String.length base) in
        if String.length suffix > 4 && String.sub suffix 0 4 = ".seg" then begin
          match int_of_string_opt (String.sub suffix 4 (String.length suffix - 4)) with
          | Some n when n < first_seg -> Disk.delete disk f
          | _ -> ()
        end
      | false -> ())
    (Disk.list_files disk);
  (* Accumulate newest-first and reverse once at the end: appending each
     segment's records with [@] is quadratic in total log length, which
     dominates recovery time on long multi-segment logs. *)
  let records_rev = ref [] in
  let seg = ref first_seg in
  let scanning = ref true in
  while !scanning do
    match Disk.read_file disk (seg_name base !seg) with
    | None -> scanning := false
    | Some contents ->
      let recs, clean = scan_segment contents in
      records_rev := List.rev_append recs !records_rev;
      if clean then incr seg
      else begin
        (* Torn tail: durably truncate the segment to its valid prefix, so
           the next recovery scans past it into segments we append now. *)
        let e = Codec.encoder () in
        List.iter (fun r -> Codec.raw e (frame r)) recs;
        Disk.replace_atomic disk (seg_name base !seg) (Codec.to_string e);
        incr seg;
        scanning := false
      end
  done;
  (* Resume appending to a fresh segment past anything scanned, so a torn
     tail can never corrupt new records. *)
  let active =
    if Disk.exists disk (seg_name base !seg) then !seg + 1 else !seg
  in
  let file = Disk.open_file disk (seg_name base active) in
  let records = List.rev !records_rev in
  let t =
    {
      disk;
      base;
      seg = active;
      file;
      since_ckpt = List.length records;
      appended_lsn = 0;
      durable_lsn = 0;
      site_sync = "wal.sync:" ^ base;
      site_synced = "wal.synced:" ^ base;
    }
  in
  (t, { snapshot; records })

let disk t = t.disk
let name t = t.base
let appended_lsn t = t.appended_lsn
let durable_lsn t = t.durable_lsn

let append t payload =
  Disk.append t.file (frame payload);
  t.since_ckpt <- t.since_ckpt + 1;
  t.appended_lsn <- t.appended_lsn + 1;
  if Rrq_obs.enabled () then begin
    Rrq_obs.Metrics.inc ("wal.appends:" ^ t.base);
    Rrq_obs.Metrics.inc ~by:(String.length payload) ("wal.bytes:" ^ t.base);
    Rrq_obs.Trace.emit
      (Rrq_obs.Event.Wal_append
         { wal = t.base; lsn = t.appended_lsn; bytes = String.length payload })
  end

(* Same frame layout as {!append}, written straight from the encoder's
   buffer into the device's pending queue: no [to_string] copy, no frame
   buffer, and the checksum runs over bytes in place. This is the
   main-memory commit fast path — the record is still framed, checksummed
   and replayable exactly like any other. *)
let append_enc t e =
  let len = Codec.length e in
  let buf = Codec.bytes e in
  Disk.append_i64 t.file (Int64.of_int len);
  Disk.append_i64 t.file (Checksum.frame64_bytes buf ~pos:0 ~len);
  Disk.append_sub t.file buf ~pos:0 ~len;
  t.since_ckpt <- t.since_ckpt + 1;
  t.appended_lsn <- t.appended_lsn + 1;
  if Rrq_obs.enabled () then begin
    Rrq_obs.Metrics.inc ("wal.appends:" ^ t.base);
    Rrq_obs.Metrics.inc ~by:len ("wal.bytes:" ^ t.base);
    Rrq_obs.Trace.emit
      (Rrq_obs.Event.Wal_append
         { wal = t.base; lsn = t.appended_lsn; bytes = len })
  end

(* [Disk.sync] flushes everything buffered, so on success the durable LSN
   jumps to the append LSN — including records appended by other fibers
   while a batched flusher held the device. If the disk died (crash-point
   injection), the flush did not persist and [durable_lsn] must not move:
   group commit uses that to decide which waiters it may acknowledge. *)
let sync t =
  Rrq_sim.Crashpoint.reach t.site_sync;
  Disk.sync t.file;
  if not (Disk.is_dead t.disk) then t.durable_lsn <- t.appended_lsn;
  if Rrq_obs.enabled () then begin
    Rrq_obs.Metrics.inc ("wal.syncs:" ^ t.base);
    Rrq_obs.Trace.emit
      (Rrq_obs.Event.Wal_force { wal = t.base; lsn = t.durable_lsn })
  end;
  Rrq_sim.Crashpoint.reach t.site_synced

let append_sync t payload =
  append t payload;
  sync t

let checkpoint t snapshot =
  Rrq_sim.Crashpoint.reach ("wal.ckpt:" ^ t.base);
  let next = t.seg + 1 in
  let e = Codec.encoder () in
  Codec.int e next;
  Codec.option Codec.string e (Some snapshot);
  Disk.replace_atomic t.disk (ckpt_name t.base) (Codec.to_string e);
  (* Old segments are no longer needed; delete them. *)
  for n = 0 to t.seg do
    if Disk.exists t.disk (seg_name t.base n) then
      Disk.delete t.disk (seg_name t.base n)
  done;
  t.seg <- next;
  t.file <- Disk.open_file t.disk (seg_name t.base next);
  t.since_ckpt <- 0;
  (* The snapshot captures the applied effects of every appended record
     (commit paths apply before yielding), so a successful checkpoint makes
     all of them durable even if their segment was never synced. *)
  if not (Disk.is_dead t.disk) then t.durable_lsn <- t.appended_lsn

let records_since_checkpoint t = t.since_ckpt

let live_log_bytes t =
  List.fold_left
    (fun acc f ->
      if
        String.length f > String.length t.base + 4
        && String.sub f 0 (String.length t.base) = t.base
        && String.sub f (String.length t.base) 4 = ".seg"
      then acc + Option.value ~default:0 (Disk.file_size t.disk f)
      else acc)
    0 (Disk.list_files t.disk)
