module Disk = Rrq_storage.Disk
module Sched = Rrq_sim.Sched
module Cond = Rrq_sim.Cond

type policy = Immediate | Batch of { max_delay : float; max_batch : int }

type t = {
  wal : Wal.t;
  disk : Disk.t;
  pol : policy;
  mutable leading : bool; (* a leader is inside its batch window / sync *)
  mutable waiters : (int * bool Sched.waker) list; (* parked followers *)
  full : Cond.t; (* signalled when the batch reaches max_batch *)
  mutable n_forces : int;
  mutable n_syncs : int;
}

let create ?(policy = Immediate) wal =
  {
    wal;
    disk = Wal.disk wal;
    pol = policy;
    leading = false;
    waiters = [];
    full = Cond.create ();
    n_forces = 0;
    n_syncs = 0;
  }

let policy t = t.pol
let forces t = t.n_forces
let syncs t = t.n_syncs

let append t payload = Wal.append t.wal payload

(* One physical flush, charged against the disk's device model when we can
   sleep (i.e. inside a fiber): the device serves one flush at a time, so
   concurrent immediate-mode committers queue on it. *)
let do_sync t =
  (if Disk.sync_latency t.disk > 0.0 && Sched.in_fiber () then
     let wait = Disk.reserve_sync t.disk ~now:(Sched.clock ()) in
     if wait > 0.0 then Sched.sleep wait);
  Wal.sync t.wal;
  t.n_syncs <- t.n_syncs + 1;
  if Rrq_obs.enabled () then Rrq_obs.Metrics.inc ("gc.syncs:" ^ Wal.name t.wal)

(* Wake every parked follower the last sync covered. After a successful
   sync the durable LSN equals the appended LSN, which covers everyone who
   parked before it; if the disk died instead, wake everybody — their
   commits are not durable, but neither would they have been under the
   historical per-commit force, whose failure is equally silent. *)
let wake_covered t =
  let durable = Wal.durable_lsn t.wal in
  let dead = Disk.is_dead t.disk in
  let ready, parked =
    List.partition (fun (lsn, _) -> dead || lsn <= durable) t.waiters
  in
  t.waiters <- parked;
  List.iter (fun (_, w) -> ignore (Sched.wake w true)) (List.rev ready);
  List.length ready

(* A sealed batch = one physical sync amortised over [n] committers. *)
let observe_batch t n =
  if Rrq_obs.enabled () then begin
    let wal = Wal.name t.wal in
    Rrq_obs.Metrics.observe ("gc.batch:" ^ wal) (float_of_int n);
    Rrq_obs.Trace.emit (Rrq_obs.Event.Batch_seal { wal; batch = n })
  end

let force t =
  let lsn = Wal.appended_lsn t.wal in
  if lsn > Wal.durable_lsn t.wal && not (Disk.is_dead t.disk) then begin
    t.n_forces <- t.n_forces + 1;
    if Rrq_obs.enabled () then
      Rrq_obs.Metrics.inc ("gc.forces:" ^ Wal.name t.wal);
    match t.pol with
    | Immediate ->
      do_sync t;
      observe_batch t 1
    | Batch _ when not (Sched.in_fiber ()) ->
      do_sync t;
      observe_batch t 1
    | Batch { max_delay; max_batch } ->
      if t.leading then begin
        (* Follower: the leader's sync will cover our records (it flushes
           everything appended up to the moment it runs). Park. *)
        if List.length t.waiters + 2 >= max_batch then Cond.signal t.full;
        ignore
          (Sched.suspend (fun _ w -> t.waiters <- (lsn, w) :: t.waiters))
      end
      else begin
        t.leading <- true;
        (* Accumulation window: give concurrent committers a chance to
           board; a full batch cuts it short. *)
        if max_delay > 0.0 && List.length t.waiters + 1 < max_batch then
          ignore (Cond.wait_timeout t.full max_delay);
        do_sync t;
        t.leading <- false;
        let covered = wake_covered t in
        observe_batch t (covered + 1)
      end
  end

let append_force t payload =
  append t payload;
  force t
