module Disk = Rrq_storage.Disk
module Sched = Rrq_sim.Sched
module Cond = Rrq_sim.Cond
module Codec = Rrq_util.Codec

type policy =
  | Immediate
  | Batch of { max_delay : float; max_batch : int }
  | Adaptive of { max_delay : float; max_batch : int }

(* EWMA weight for inter-arrival samples. High enough to track a load
   shift within a handful of commits, low enough that one straggler does
   not flip the policy. *)
let alpha = 0.3

type t = {
  wal : Wal.t;
  disk : Disk.t;
  pol : policy;
  mutable leading : bool; (* a leader is inside its batch window / sync *)
  mutable waiters : (int * bool Sched.waker) list; (* parked followers *)
  full : Cond.t; (* signalled when the batch reaches the target *)
  mutable n_forces : int;
  mutable n_syncs : int;
  (* Adaptive state: estimated commit inter-arrival (virtual seconds;
     0 until the first pair of arrivals) and the batch-size target the
     current leader computed from it. *)
  mutable ewma : float;
  mutable last_arrival : float;
  mutable target : int;
  (* Seal-reason counters (also exported via [Rrq_obs.Metrics]). *)
  mutable s_full : int;
  mutable s_timeout : int;
  mutable s_idle : int;
  mutable s_rate : int;
  mutable s_immediate : int;
  (* Log shipping (primary-backup replication). While a shipper is
     installed every appended record is retained as (lsn, payload) until a
     ship round sends it; [shipped_lsn] is the replication analogue of the
     durable LSN. In sync mode [force] will not return to a committer until
     the ship watermark covers its records. *)
  mutable shipper : ((int * string) list -> unit) option;
  mutable ship_sync : bool;
  mutable retained : (int * string) list; (* newest first *)
  mutable shipped_lsn : int;
  mutable ship_leading : bool;
  mutable ship_waiters : (int * bool Sched.waker) list;
  mutable n_ships : int;
}

let create ?(policy = Immediate) wal =
  {
    wal;
    disk = Wal.disk wal;
    pol = policy;
    leading = false;
    waiters = [];
    full = Cond.create ();
    n_forces = 0;
    n_syncs = 0;
    ewma = 0.0;
    last_arrival = -1.0;
    target = 1;
    s_full = 0;
    s_timeout = 0;
    s_idle = 0;
    s_rate = 0;
    s_immediate = 0;
    shipper = None;
    ship_sync = true;
    retained = [];
    shipped_lsn = 0;
    ship_leading = false;
    ship_waiters = [];
    n_ships = 0;
  }

let policy t = t.pol
let wal t = t.wal
let forces t = t.n_forces
let syncs t = t.n_syncs

let seal_counts t =
  [
    ("full", t.s_full);
    ("timeout", t.s_timeout);
    ("idle", t.s_idle);
    ("rate", t.s_rate);
    ("immediate", t.s_immediate);
  ]

let retain t payload =
  t.retained <- (Wal.appended_lsn t.wal, payload) :: t.retained

let append t payload =
  Wal.append t.wal payload;
  if t.shipper <> None then retain t payload

let append_enc t e =
  (* The zero-copy path must materialize the record when a shipper needs a
     copy to send; without one it stays zero-copy. *)
  if t.shipper <> None then begin
    let payload = Codec.to_string e in
    Wal.append_enc t.wal e;
    retain t payload
  end
  else Wal.append_enc t.wal e

(* One physical flush, charged against the disk's device model when we can
   sleep (i.e. inside a fiber): the device serves one flush at a time, so
   concurrent immediate-mode committers queue on it. *)
let do_sync t =
  (if Disk.sync_latency t.disk > 0.0 && Sched.in_fiber () then
     let wait = Disk.reserve_sync t.disk ~now:(Sched.clock ()) in
     if wait > 0.0 then Sched.sleep wait);
  Wal.sync t.wal;
  t.n_syncs <- t.n_syncs + 1;
  if Rrq_obs.enabled () then Rrq_obs.Metrics.inc ("gc.syncs:" ^ Wal.name t.wal)

(* Wake every parked follower the last sync covered. After a successful
   sync the durable LSN equals the appended LSN, which covers everyone who
   parked before it; if the disk died instead, wake everybody — their
   commits are not durable, but neither would they have been under the
   historical per-commit force, whose failure is equally silent. *)
let wake_covered t =
  let durable = Wal.durable_lsn t.wal in
  let dead = Disk.is_dead t.disk in
  let ready, parked =
    List.partition (fun (lsn, _) -> dead || lsn <= durable) t.waiters
  in
  t.waiters <- parked;
  List.iter (fun (_, w) -> ignore (Sched.wake w true)) (List.rev ready);
  List.length ready

(* ---- log shipping ---------------------------------------------------- *)

let set_shipper ?(sync = true) t f =
  t.shipper <- Some f;
  t.ship_sync <- sync;
  (* The installer is responsible for bringing the peer up to date first
     (snapshot install); shipping starts from the current durable tail. *)
  t.retained <- [];
  t.shipped_lsn <- Wal.durable_lsn t.wal

(* Wake every parked ship waiter, covered or not: a waiter whose lsn the
   finished round did not cover must get a chance to elect itself the next
   leader (its record arrived after the leader snapshotted the durable
   horizon, so no running leader will ever cover it). Woken fibers re-enter
   [ensure_shipped], which returns when covered and leads otherwise. *)
let wake_shipped t =
  let ws = t.ship_waiters in
  t.ship_waiters <- [];
  List.iter (fun (_, w) -> ignore (Sched.wake w true)) (List.rev ws)

let clear_shipper t =
  t.shipper <- None;
  t.retained <- [];
  wake_shipped t

let shipping t = t.shipper <> None
let shipped_lsn t = t.shipped_lsn
let pending_ship t = List.length t.retained
let ships t = t.n_ships

(* Ship every retained record the log has made durable, leader/follower
   style: one fiber drains and sends the batch while others needing
   coverage park; the leader's watermark advance covers them. The shipper
   callback may block (it does an RPC); it must not raise — connection
   management (degrade, resync) is its owner's job. *)
let rec ensure_shipped t lsn =
  (* Only durable records ship (the backup must never be ahead of the
     primary's log); if the disk died the sync never covered [lsn] and the
     node is about to be declared crashed — bail rather than spin. *)
  let lsn = min lsn (Wal.durable_lsn t.wal) in
  if t.shipper <> None && lsn > t.shipped_lsn then begin
    if t.ship_leading then begin
      ignore
        (Sched.suspend (fun _ w -> t.ship_waiters <- (lsn, w) :: t.ship_waiters));
      ensure_shipped t lsn
    end
    else begin
      t.ship_leading <- true;
      let durable = Wal.durable_lsn t.wal in
      let batch, rest = List.partition (fun (l, _) -> l <= durable) t.retained in
      t.retained <- rest;
      let batch = List.sort compare batch in
      Fun.protect
        ~finally:(fun () ->
          t.ship_leading <- false;
          wake_shipped t)
        (fun () ->
          (match t.shipper with
          | Some ship when batch <> [] ->
            ship batch;
            t.n_ships <- t.n_ships + 1
          | _ -> ());
          (* The shipper may have been cleared (degrade) mid-send; only a
             still-connected stream advances the watermark. *)
          if t.shipper <> None then t.shipped_lsn <- max t.shipped_lsn durable);
      ensure_shipped t lsn
    end
  end

(* One asynchronous ship round covering everything durable so far — the
   lagged-shipping mode's periodic drain. *)
let ship_now t = ensure_shipped t (Wal.durable_lsn t.wal)

let reason_name = function
  | `Full -> "full"
  | `Timeout -> "timeout"
  | `Idle -> "idle"
  | `Rate -> "rate"
  | `Immediate -> "immediate"

(* A sealed batch = one physical sync amortised over [n] committers. *)
let observe_batch t reason n =
  (match reason with
  | `Full -> t.s_full <- t.s_full + 1
  | `Timeout -> t.s_timeout <- t.s_timeout + 1
  | `Idle -> t.s_idle <- t.s_idle + 1
  | `Rate -> t.s_rate <- t.s_rate + 1
  | `Immediate -> t.s_immediate <- t.s_immediate + 1);
  if Rrq_obs.enabled () then begin
    let wal = Wal.name t.wal in
    let reason = reason_name reason in
    Rrq_obs.Metrics.inc ("gc.seal." ^ reason ^ ":" ^ wal);
    Rrq_obs.Metrics.observe ("gc.batch:" ^ wal) (float_of_int n);
    Rrq_obs.Trace.emit (Rrq_obs.Event.Batch_seal { wal; batch = n; reason })
  end

(* Feed one commit arrival into the inter-arrival estimate. Only the
   virtual clock is sampled, and only inside a fiber — outside the
   simulator there is no meaningful arrival spacing (and rrq_lint R2
   forbids ambient time anyway). Same-instant arrivals clamp to a tiny
   positive dt: they mean "infinite rate", not "no estimate". *)
let sample_arrival t =
  let now = Sched.clock () in
  if t.last_arrival >= 0.0 then begin
    let dt = Float.max (now -. t.last_arrival) 1e-9 in
    t.ewma <-
      (if t.ewma <= 0.0 then dt
       else (alpha *. dt) +. ((1.0 -. alpha) *. t.ewma))
  end;
  t.last_arrival <- now

(* Park the caller until a leader's sync covers [lsn]. Boarding may seal
   the batch early when it reaches the leader's target. *)
let board t lsn =
  if List.length t.waiters + 2 >= t.target then Cond.signal t.full;
  ignore (Sched.suspend (fun _ w -> t.waiters <- (lsn, w) :: t.waiters))

(* Adaptive sealing: decide how long (if at all) this leader should hold
   the batch open, wait accordingly, and report why the batch sealed.

   The estimate [expected = sync_latency / ewma] is the number of commits
   that would arrive while one flush occupies the device. Below ~1.5 the
   device is keeping up — batching would only add latency, so seal
   immediately ([`Idle]; this is what restores the 1-server Immediate
   throughput that a fixed window gives away). Above it, the device is
   the bottleneck: hold the batch for [target = min expected max_batch]
   boarders, with a window bounded by both [max_delay] and the time the
   estimate says those boarders need to show up. *)
let adaptive_seal t ~max_delay ~max_batch =
  let lat = Disk.sync_latency t.disk in
  let expected = if t.ewma > 0.0 then lat /. t.ewma else 0.0 in
  if expected < 1.5 then begin
    t.target <- 1;
    `Idle
  end
  else begin
    let target = min max_batch (max 2 (int_of_float expected)) in
    t.target <- target;
    let boarded = List.length t.waiters + 1 in
    if boarded >= target then (if boarded >= max_batch then `Full else `Rate)
    else begin
      let window =
        Float.min max_delay (float_of_int (target - boarded) *. t.ewma *. 2.0)
      in
      if window > 0.0 && Cond.wait_timeout t.full window then begin
        if List.length t.waiters + 1 >= max_batch then `Full else `Rate
      end
      else `Timeout
    end
  end

let force t =
  (match t.pol with
  | Adaptive _ when Sched.in_fiber () -> sample_arrival t
  | _ -> ());
  let lsn = Wal.appended_lsn t.wal in
  if lsn > Wal.durable_lsn t.wal && not (Disk.is_dead t.disk) then begin
    t.n_forces <- t.n_forces + 1;
    if Rrq_obs.enabled () then
      Rrq_obs.Metrics.inc ("gc.forces:" ^ Wal.name t.wal);
    match t.pol with
    | Immediate ->
      do_sync t;
      observe_batch t `Immediate 1
    | (Batch _ | Adaptive _) when not (Sched.in_fiber ()) ->
      do_sync t;
      observe_batch t `Immediate 1
    | Batch { max_delay; max_batch } ->
      if t.leading then begin
        (* Follower: the leader's sync will cover our records (it flushes
           everything appended up to the moment it runs). Park. *)
        t.target <- max_batch;
        board t lsn
      end
      else begin
        t.leading <- true;
        t.target <- max_batch;
        (* Accumulation window: give concurrent committers a chance to
           board; a full batch cuts it short. *)
        let reason =
          if max_delay > 0.0 && List.length t.waiters + 1 < max_batch then
            (if Cond.wait_timeout t.full max_delay then `Full else `Timeout)
          else `Full
        in
        do_sync t;
        t.leading <- false;
        let covered = wake_covered t in
        observe_batch t reason (covered + 1)
      end
    | Adaptive { max_delay; max_batch } ->
      if t.leading then board t lsn
      else begin
        (* Leader even when sealing immediately: committers arriving while
           our sync occupies the device park as followers and are covered
           by it (the sync flushes everything appended before it runs), so
           an idle-mode Adaptive log never does worse than Immediate and
           picks up piggybackers for free. *)
        t.leading <- true;
        let reason = adaptive_seal t ~max_delay ~max_batch in
        do_sync t;
        t.leading <- false;
        let covered = wake_covered t in
        observe_batch t reason (covered + 1)
      end
  end;
  (* Synchronous shipping gates the commit exactly like durability does:
     a committer's records must be on the backup before [force] returns.
     This also covers the follower/skip cases above — a fiber whose
     records were already durable (so the body never ran) still must not
     proceed past an unshipped suffix. *)
  if t.ship_sync && t.shipper <> None && Sched.in_fiber () then
    ensure_shipped t lsn

let append_force t payload =
  append t payload;
  force t
