(** Group commit: batched log forcing for commit points.

    The paper's §10 treats recoverable queues as main-memory databases that
    still must log updates, which makes the commit-point log force the
    dominant cost of every [Enqueue]/[Dequeue]. With one {!Rrq_storage.Disk}
    sync per transaction, N concurrent servers draining a queue pay N device
    flushes where one would do. This module coalesces them: committers call
    {!force}, and under the [Batch] policy one caller becomes the {e leader}
    — it waits a short accumulation window (cut short when the batch fills),
    issues a single sync covering every record appended so far, and wakes
    all parked {e followers} whose records made it out.

    The contract callers must follow (and all RMs/TMs in this repo do):

    + append the commit record(s) with {!append};
    + apply their effects to memory {e without yielding};
    + call {!force} and only acknowledge the transaction after it returns.

    Because effects are applied before the first yield, a checkpoint taken
    while commits are parked still snapshots their effects, which is why
    [Wal.checkpoint] may advance the durable LSN past unsynced records.

    A crash between append and the batched sync therefore loses only
    transactions that were never acknowledged; acknowledged ones are covered
    by the sync (or checkpoint) that preceded the acknowledgement. The
    crash-point suite in [test/test_group_commit.ml] sweeps exactly this
    window.

    [Immediate] (the default) preserves the historical one-sync-per-commit
    behavior and works outside the simulator; [Batch] and [Adaptive] park
    fibers and are only meaningful inside it (outside a fiber they degrade
    to a direct sync). All policies charge the disk's [sync_latency] device
    model when running in a fiber, so the simulator measures realistic
    commit cost.

    [Batch]'s fixed window is a trade: it wins once several committers run
    concurrently but taxes light load (B12: 667 vs 1000 commits/s at one
    server). [Adaptive] closes that gap by estimating the commit arrival
    rate — an EWMA of force-call inter-arrival time sampled from the
    virtual clock — and sealing each batch by whichever rule fits the
    estimate: seal immediately when the device keeps up ([`idle`]), seal
    as soon as the predicted batch has boarded ([`rate`] / [`full`]), or
    give up on stragglers after a bounded wait ([`timeout`]). Seal-reason
    counts are exported as [gc.seal.<reason>:<wal>] counters and on the
    [Batch_seal] trace event. *)

type policy =
  | Immediate  (** Force at every commit: one sync per call (historical). *)
  | Batch of { max_delay : float; max_batch : int }
      (** Leader waits up to [max_delay] virtual seconds for company, or
          until [max_batch] commits are aboard, then issues one sync for
          the whole batch. *)
  | Adaptive of { max_delay : float; max_batch : int }
      (** Leader sizes the batch from the arrival-rate estimate: the
          target is [sync_latency / ewma_interarrival] commits (clamped to
          [max_batch]), the window is bounded by [max_delay], and an
          estimate below ~1.5 commits per flush seals immediately, which
          makes light load behave like [Immediate]. *)

type t

val create : ?policy:policy -> Wal.t -> t
(** Batcher for [wal]. Default policy is [Immediate]. *)

val policy : t -> policy
val wal : t -> Wal.t

val append : t -> string -> unit
(** Buffer a record at the log tail (same as [Wal.append]). *)

val append_enc : t -> Rrq_util.Codec.encoder -> unit
(** Buffer a record straight from an encoder (same as [Wal.append_enc]):
    the zero-copy path main-memory commits use. *)

val force : t -> unit
(** Make every record appended so far durable before returning. Under
    [Batch] the calling fiber may be parked while a leader's sync covers
    it. If the disk is dead (crash-point injection), returns without
    durability — mirroring the historical [append_sync] semantics where
    the process is about to be declared crashed anyway. *)

val append_force : t -> string -> unit
(** [append] then [force]. *)

(** {1 Log shipping (primary-backup replication)}

    A {e shipper} turns this batcher into the sending half of a
    primary-backup log-shipping channel: while one is installed, every
    appended record is retained as an [(lsn, payload)] pair and a ship
    round sends the durable prefix of the retained set to the callback in
    LSN order, advancing the {e shipped LSN} watermark (the replication
    analogue of the durable LSN). Ship rounds use the same leader/follower
    protocol as batched syncs, so concurrent committers amortise one send.

    In [sync] mode (the default) {!force} does not return until the
    caller's records are shipped — the replication counterpart of the
    durability-before-reply rule: a transaction is only acknowledged once
    the backup could take over without losing it. With [sync:false] the
    owner must drain with {!ship_now} periodically; replies may then be
    released ahead of the backup (speculative replies), which is exactly
    the window the HA failover tests probe. *)

val set_shipper : ?sync:bool -> t -> ((int * string) list -> unit) -> unit
(** Install the shipping callback. The callback receives a batch of
    [(lsn, record)] pairs in LSN order and must deliver them (it may
    block; it must not raise — degrade handling belongs to the owner).
    Installation resets the retained set and sets the shipped watermark
    to the current durable LSN: the installer is responsible for bringing
    the peer up to date first (snapshot install). *)

val clear_shipper : t -> unit
(** Stop shipping (peer lost / degraded); wakes any fiber parked on a
    ship round. *)

val shipping : t -> bool
val shipped_lsn : t -> int
val pending_ship : t -> int
(** Retained records not yet shipped. *)

val ship_now : t -> unit
(** Ship every durable retained record now (the lagged mode's periodic
    drain; a no-op when nothing is pending or no shipper is installed). *)

(** {1 Accounting} *)

val ships : t -> int
(** Number of non-empty batches handed to the shipper. *)

val forces : t -> int
(** Number of {!force} calls that had undurable records to cover. *)

val syncs : t -> int
(** Number of physical device syncs issued by this batcher. Under [Batch]
    with concurrent committers this is less than {!forces} — the whole
    point. *)

val seal_counts : t -> (string * int) list
(** How many batches sealed for each reason, as
    [("full" | "timeout" | "idle" | "rate" | "immediate") * count].
    [full]: the batch hit [max_batch]; [timeout]: the window expired;
    [idle] (Adaptive): the rate estimate said batching would not pay, so
    the leader sealed at once; [rate] (Adaptive): the predicted batch
    boarded before the window closed; [immediate]: an [Immediate]-policy
    force or an outside-fiber degrade. *)
