(** Group commit: batched log forcing for commit points.

    The paper's §10 treats recoverable queues as main-memory databases that
    still must log updates, which makes the commit-point log force the
    dominant cost of every [Enqueue]/[Dequeue]. With one {!Rrq_storage.Disk}
    sync per transaction, N concurrent servers draining a queue pay N device
    flushes where one would do. This module coalesces them: committers call
    {!force}, and under the [Batch] policy one caller becomes the {e leader}
    — it waits a short accumulation window (cut short when the batch fills),
    issues a single sync covering every record appended so far, and wakes
    all parked {e followers} whose records made it out.

    The contract callers must follow (and all RMs/TMs in this repo do):

    + append the commit record(s) with {!append};
    + apply their effects to memory {e without yielding};
    + call {!force} and only acknowledge the transaction after it returns.

    Because effects are applied before the first yield, a checkpoint taken
    while commits are parked still snapshots their effects, which is why
    [Wal.checkpoint] may advance the durable LSN past unsynced records.

    A crash between append and the batched sync therefore loses only
    transactions that were never acknowledged; acknowledged ones are covered
    by the sync (or checkpoint) that preceded the acknowledgement. The
    crash-point suite in [test/test_group_commit.ml] sweeps exactly this
    window.

    [Immediate] (the default) preserves the historical one-sync-per-commit
    behavior and works outside the simulator; [Batch] parks fibers and is
    only meaningful inside it (outside a fiber it degrades to a direct
    sync). Both policies charge the disk's [sync_latency] device model when
    running in a fiber, so the simulator measures realistic commit cost. *)

type policy =
  | Immediate  (** Force at every commit: one sync per call (historical). *)
  | Batch of { max_delay : float; max_batch : int }
      (** Leader waits up to [max_delay] virtual seconds for company, or
          until [max_batch] commits are aboard, then issues one sync for
          the whole batch. *)

type t

val create : ?policy:policy -> Wal.t -> t
(** Batcher for [wal]. Default policy is [Immediate]. *)

val policy : t -> policy

val append : t -> string -> unit
(** Buffer a record at the log tail (same as [Wal.append]). *)

val force : t -> unit
(** Make every record appended so far durable before returning. Under
    [Batch] the calling fiber may be parked while a leader's sync covers
    it. If the disk is dead (crash-point injection), returns without
    durability — mirroring the historical [append_sync] semantics where
    the process is about to be declared crashed anyway. *)

val append_force : t -> string -> unit
(** [append] then [force]. *)

(** {1 Accounting} *)

val forces : t -> int
(** Number of {!force} calls that had undurable records to cover. *)

val syncs : t -> int
(** Number of physical device syncs issued by this batcher. Under [Batch]
    with concurrent committers this is less than {!forces} — the whole
    point. *)
