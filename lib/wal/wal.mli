(** Write-ahead log over {!Rrq_storage.Disk}.

    The WAL stores opaque record payloads framed with a length and an
    FNV-1a checksum. Recovery scans segments in order and stops at the first
    truncated or corrupt frame — so a torn tail lost in a crash silently
    truncates the log to its last complete record, which is exactly the
    contract resource managers rely on.

    [checkpoint] atomically installs a state snapshot and starts a fresh
    segment; older segments are deleted. Re-opening returns the latest
    snapshot plus every record logged after it. *)

type t

type recovered = {
  snapshot : string option;  (** Latest checkpoint snapshot, if any. *)
  records : string list;  (** Payloads appended after that snapshot, oldest first. *)
}

val open_log : Rrq_storage.Disk.t -> name:string -> t * recovered
(** Open (or create) the log called [name], recovering its contents. *)

val disk : t -> Rrq_storage.Disk.t
(** The disk holding this log (its device model governs force cost). *)

val name : t -> string
(** The log's base name, as passed to {!open_log} — used to key metrics
    and trace events. *)

val append : t -> string -> unit
(** Buffer a record at the log tail. Not durable until {!sync}. *)

val append_enc : t -> Rrq_util.Codec.encoder -> unit
(** Buffer the encoder's contents as one record, writing the frame
    directly from the encoder's buffer — no intermediate string. The
    record is framed and checksummed identically to {!append}; callers
    typically {!Rrq_util.Codec.reset} and refill a scratch encoder per
    commit. *)

val sync : t -> unit
(** Force all buffered records to stable storage. On success this advances
    {!durable_lsn} to {!appended_lsn}; if the disk is dead (crash-point
    injection) the durable LSN stays put. *)

val appended_lsn : t -> int
(** Records appended this incarnation (durable or not). *)

val durable_lsn : t -> int
(** Records of this incarnation known forced to stable storage. A commit
    whose last record has LSN [<= durable_lsn] may be acknowledged. *)

val append_sync : t -> string -> unit
(** [append] then [sync] — the force-write used at commit points. *)

val checkpoint : t -> string -> unit
(** Durably and atomically install [snapshot] and truncate the log: records
    appended before this call will not be replayed by future recoveries. *)

val records_since_checkpoint : t -> int
(** Count of records appended (not necessarily synced) since the last
    checkpoint, used by checkpoint policies. *)

val live_log_bytes : t -> int
(** Durable bytes in the current (post-checkpoint) segments. *)
