module Codec = Rrq_util.Codec
module Lock = Rrq_txn.Lock
module Rm = Rrq_txn.Rm
module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid

exception Conflict of string

type redo = Put of string * string | Del of string

module State = struct
  type state = { data : (string, string) Hashtbl.t; locks : Lock.t }
  type nonrec redo = redo

  let empty () = { data = Hashtbl.create 64; locks = Lock.create ~name:"kvdb" () }

  let encode_redo e = function
    | Put (k, v) ->
      Codec.u8 e 1;
      Codec.string e k;
      Codec.string e v
    | Del k ->
      Codec.u8 e 2;
      Codec.string e k

  let decode_redo d =
    match Codec.get_u8 d with
    | 1 ->
      let k = Codec.get_string d in
      let v = Codec.get_string d in
      Put (k, v)
    | 2 -> Del (Codec.get_string d)
    | n -> raise (Codec.Decode_error (Printf.sprintf "kvdb: bad redo kind %d" n))

  let apply st = function
    | Put (k, v) -> Hashtbl.replace st.data k v
    | Del k -> Hashtbl.remove st.data k

  let snapshot e st =
    Codec.int e (Hashtbl.length st.data);
    Hashtbl.iter
      (fun k v ->
        Codec.string e k;
        Codec.string e v)
      st.data

  let restore d =
    let st = empty () in
    let n = Codec.get_int d in
    for _ = 1 to n do
      let k = Codec.get_string d in
      let v = Codec.get_string d in
      Hashtbl.replace st.data k v
    done;
    st

  (* An in-doubt transaction's writes stay invisible by re-acquiring its
     exclusive locks. Recovery runs with no competing transactions, so these
     grants never block. *)
  let relock st id redos =
    List.iter
      (fun r ->
        let key = match r with Put (k, _) | Del k -> k in
        Lock.acquire st.locks id ~key X)
      redos
end

module Base = Rm.Make (State)

type t = Base.t

let open_kv ?commit_policy disk ~name = Base.open_rm ?commit_policy disk ~name
let name = Base.name

let with_conflicts f =
  try f () with
  | Lock.Deadlock msg -> raise (Conflict ("deadlock: " ^ msg))
  | Lock.Cancelled -> raise (Conflict "cancelled")

let lock t id key mode =
  with_conflicts (fun () -> Lock.acquire (Base.state t).State.locks id ~key mode)

(* The newest buffered write to [key], if any. *)
let workspace_value t id key =
  let rec latest = function
    | [] -> None
    | Put (k, v) :: _ when k = key -> Some (Some v)
    | Del k :: _ when k = key -> Some None
    | _ :: rest -> latest rest
  in
  latest (List.rev (Base.workspace t id))

let get t id key =
  lock t id key Lock.S;
  match workspace_value t id key with
  | Some v -> v
  | None -> Hashtbl.find_opt (Base.state t).State.data key

let put t id key value =
  lock t id key Lock.X;
  Base.add_redo t id (Put (key, value))

let delete t id key =
  lock t id key Lock.X;
  Base.add_redo t id (Del key)

let get_int t id key =
  match get t id key with
  | None -> 0
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)

let add t id key delta =
  (* Take the exclusive lock first so read-modify-write never upgrades
     (upgrades are a classic deadlock source under contention). *)
  lock t id key Lock.X;
  let v = get_int t id key + delta in
  Base.add_redo t id (Put (key, string_of_int v));
  v

let transfer_locks t ~from ~to_ =
  Lock.transfer (Base.state t).State.locks ~from ~to_

let release_locks t id =
  Lock.release_all (Base.state t).State.locks id

let participant t =
  {
    Tm.part_name = Base.name t;
    p_prepare =
      (fun id ~coordinator ->
        (* Locks are retained while in doubt. *)
        Base.prepare t id ~coordinator);
    p_commit =
      (fun id ->
        Base.commit_prepared t id;
        release_locks t id;
        true);
    p_abort =
      (fun id ->
        Base.abort t id;
        Lock.cancel_waits (Base.state t).State.locks id;
        release_locks t id);
    p_one_phase =
      (fun id ->
        Base.commit_one_phase t id;
        release_locks t id;
        true);
    p_has_work = (fun id -> Base.has_workspace t id || Base.is_prepared t id);
    p_is_local = true;
  }

let in_doubt = Base.in_doubt

let committed_value t key = Hashtbl.find_opt (Base.state t).State.data key

let committed_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (Base.state t).State.data []
  |> List.sort compare

let checkpoint = Base.checkpoint
let maybe_checkpoint = Base.maybe_checkpoint
let live_log_bytes = Base.live_log_bytes

(* Replication hooks (primary-backup WAL shipping; see Rrq_core.Ha). *)
let group_commit = Base.group_commit
let encode_snapshot = Base.encode_snapshot
let standby_apply = Base.standby_apply
let standby_force = Base.standby_force
let standby_install = Base.standby_install
