(** Recoverable key-value store — the "shared updatable database" that
    back-end servers read and write while processing requests (paper §2).

    Strict two-phase locking per key (shared for reads, exclusive for
    writes), redo-only logging via {!Rrq_txn.Rm}, and participation in the
    node TM's one- or two-phase commit. Transactions see their own buffered
    writes. Locks are released by the commit/abort paths of
    {!participant}. *)

type t

val open_kv :
  ?commit_policy:Rrq_wal.Group_commit.policy ->
  Rrq_storage.Disk.t ->
  name:string ->
  t
(** Open (recovering from its WAL) the store named [name]. *)

val name : t -> string

exception Conflict of string
(** Raised when a lock request deadlocks or is cancelled: the caller must
    abort the surrounding transaction and may retry it. *)

val get : t -> Rrq_txn.Txid.t -> string -> string option
(** Read a key under a shared lock; sees the transaction's own writes. *)

val put : t -> Rrq_txn.Txid.t -> string -> string -> unit
(** Buffer a write under an exclusive lock. *)

val delete : t -> Rrq_txn.Txid.t -> string -> unit

val get_int : t -> Rrq_txn.Txid.t -> string -> int
(** [get] parsed as an integer; missing or malformed keys read as 0. *)

val add : t -> Rrq_txn.Txid.t -> string -> int -> int
(** Read-modify-write: add a delta to an integer key, returning the new
    value. *)

val participant : t -> Rrq_txn.Tm.participant
(** Enlist this store in a transaction. All lock release goes through the
    returned closures. *)

val transfer_locks : t -> from:Rrq_txn.Txid.t -> to_:Rrq_txn.Txid.t -> unit
(** Move every lock of one transaction to another without releasing: the
    lock-inheritance technique that makes a chain of transactions
    serializable as one request (paper §6). Inherited locks are volatile —
    a crash releases them, as the paper's discussion concedes. *)

val release_locks : t -> Rrq_txn.Txid.t -> unit
(** Release a transaction's locks without logging (used by abort paths that
    never touched durable state). Normally called via {!participant}. *)

val in_doubt : t -> (Rrq_txn.Txid.t * string) list
(** Prepared-but-unresolved transactions with their coordinator names; the
    hosting node's resolver daemon polls the coordinators for these. *)

val committed_value : t -> string -> string option
(** Read the committed state directly, without locks or a transaction —
    for audits and tests, not for servers. *)

val committed_bindings : t -> (string * string) list
(** All committed key/value pairs, sorted by key (audit helper). *)

val checkpoint : t -> unit
val maybe_checkpoint : t -> every:int -> unit
val live_log_bytes : t -> int

(** {1 Replication hooks}

    Primary-backup WAL shipping (see {!Rrq_core.Ha}); re-exports of the
    {!Rrq_txn.Rm.Make} standby surface. *)

val group_commit : t -> Rrq_wal.Group_commit.t
val encode_snapshot : t -> string
val standby_apply : t -> string -> unit
val standby_force : t -> unit
val standby_install : t -> string -> unit
