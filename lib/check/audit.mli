(** The invariant/auditor registry: one place defining what "correct" means
    for an explored schedule, unifying the exactly-once ledger, conservation
    and queue-integrity checks that were previously scattered through the
    experiment harness. Every explored schedule, soak run and crash sweep is
    audited through the same registry. *)

(** {1 The exactly-once execution ledger} *)

val counting_handler : Rrq_core.Server.handler
(** Increments ["exec:" ^ rid] and ["total"], replies ["done:" ^ body] —
    the standard exactly-once audit handler. *)

val exec_count : Rrq_core.Site.t -> string -> int
(** Committed value of ["exec:" ^ rid] (0 when absent). *)

val audit_executions :
  Rrq_core.Site.t list -> rids:string list -> int * int * int
(** [(lost, exactly_once, duplicated)] across the given sites: for each
    rid, sums its exec counters over all sites and classifies. *)

(** {1 Auditors} *)

type auditor
(** A named invariant over a quiesced world. *)

type finding = { auditor : string; detail : string }
(** One violated invariant. *)

val make : string -> (unit -> string option) -> auditor
(** [make name check]: [check] returns [None] when the invariant holds, or
    [Some detail] describing the violation. A check that raises is reported
    as a finding, not an exception. *)

val run : auditor list -> finding list
(** Evaluate every auditor; empty means the schedule passed. *)

val findings_to_string : finding list -> string

(** {1 Standard auditors}

    Sites and rids are passed as thunks because auditors run after faults:
    accessors must see the current incarnation, not a pre-crash snapshot. *)

val exactly_once :
  sites:(unit -> Rrq_core.Site.t list) -> rids:(unit -> string list) -> auditor
(** Zero lost and zero duplicated executions over the ledger (paper §3,
    Exactly-Once Request-Processing). *)

val conservation : name:string -> expected:int -> actual:(unit -> int) -> auditor
(** A conserved integer quantity (e.g. total money across accounts). *)

val queue_integrity : sites:(unit -> Rrq_core.Site.t list) -> auditor
(** Structural invariants of every queue on every site: unique element ids
    and non-negative delivery counts. (Committed enqueue/dequeue counters
    are per-incarnation, so they are deliberately not compared here.) *)

val reply_delivery :
  sites:(unit -> Rrq_core.Site.t list) ->
  received:(string -> int) ->
  rids:(unit -> string list) ->
  auditor
(** Exactly one reply per request, counting consumed replies ([received
    rid]) plus copies still queued in [reply.*] queues on the given sites.
    Pass only the authoritative repository of an HA pair — the standby
    holds replicated copies by design. Catches duplicate replies released
    by a speculative (lagged-shipping) primary that died before shipping. *)

val no_in_doubt : sites:(unit -> Rrq_core.Site.t list) -> auditor
(** After quiescence with all sites up, no prepared transaction may remain
    unresolved (the resolver daemons must have settled 2PC in-doubts). *)

val exactly_once_trace : unit -> auditor
(** Exactly-once verified from the [Rrq_obs] trace stream alone: every
    request appearing in a [Clerk_send] or [Server_exec] event has exactly
    one [Server_exec] whose txid also appears in a [Txn_commit]. Requires
    an enabled observability session whose ring never wrapped. Sound for
    plan-driven crashes under the Immediate commit policy (see the
    implementation note); not part of the standard auditor set —
    {!Scenario.run_recorded} applies it. *)
