(** Checkable scenarios: closed simulated worlds that run one fault plan to
    quiescence and audit themselves through the {!Audit} registry. *)

type outcome = {
  findings : Audit.finding list;  (** Empty iff every auditor passed. *)
  trace : Rrq_sim.Sched.decision array;
      (** The full scheduling-decision trace of the run (replayable when
          [trace_truncated] is false). *)
  trace_truncated : bool;
  requests : int;  (** Requests the clients attempted. *)
  replies : int;  (** Replies the clients actually received. *)
  virtual_time : float;  (** Virtual time at quiescence. *)
}

type t = {
  name : string;
  profile : Plan.profile;  (** Fault space the explorer draws plans from. *)
  run : ?policy:Rrq_sim.Sched.policy -> Plan.t -> outcome;
      (** Run one plan. [policy] overrides the plan's scheduling policy
          (used to re-run a schedule under [Replay] of a recorded trace). *)
}

val failed : outcome -> bool

val run : ?policy:Rrq_sim.Sched.policy -> t -> Plan.t -> outcome

val quickstart : t
(** The paper's System Model on one backend site: 2 correct clerks x 2
    tagged requests against a 2-thread counting server. Must satisfy every
    auditor under {e any} plan — a finding here is a protocol bug. *)

val quickstart_mm : t
(** {!quickstart} over a [Main_memory] request queue with adaptive group
    commit: element payload and queue order live purely in memory, only
    redo records hit the WAL, and recovery rebuilds queue state from the
    redo scan. Exactly-once must hold exactly as in the stable variant. *)

val ha : t
(** The HA pair ({!Rrq_core.Ha}): a primary and a warm standby joined by
    synchronous WAL shipping, 2 clerks (with backup rotation) x 2 requests
    against counting servers that run only on the serving node. The plan
    space kills the primary and partitions it from the client; exactly-once,
    conservation, reply-delivery, queue-integrity and no-in-doubt must hold
    through any failover the plan provokes. *)

val ha_lagged : t
(** The deliberately lag-buggy variant: shipping drains only once per
    second ([Lagged 1.0]), so replies are speculative. Fault-free it
    passes; a primary kill inside the lag window loses or duplicates a
    conversation, which the explorer must find and ddmin must shrink. *)

val sharded : t
(** Sharded multi-repository scale-out ({!Rrq_core.Shard}): three shard
    sites, each with its own WAL/TM/QM and counting server, 3 shard-aware
    clerks x 2 requests. Map v1 pins every client's request key onto
    shard0; an admin fiber installs v2 (pure hash placement) at t=1, so
    ownership of every key moves mid-run — stale clients get forwarded and
    piggyback-refreshed, retried operations at new owners trigger the
    registration pull, and servers finish requests with cross-shard 2PC
    reply enqueues. The plan space crashes any shard and partitions
    client/shard and shard/shard pairs (including mid-2PC); exactly-once,
    conservation summed across shards, queue-integrity and no-in-doubt
    must hold regardless. *)

val sharded_buggy : t
(** The designed misroute-during-map-change anomaly: forwarders strip
    registration tags, so a retried operation that crosses the map change
    through a stale pin executes a second untagged copy at the new owner.
    Passes fault-free; the explorer must find the duplicate and ddmin must
    shrink the plan. *)

val buggy_clerk : t
(** A deliberately broken client: untagged Sends and a blind re-Send on
    reply timeout with no rid check. Passes fault-free; duplicates requests
    under crashes and partitions that overlap its active window. The
    explorer must find (and the shrinker minimize) this violation. *)

val all : t list
val by_name : string -> t option

(** {1 Crash-site sweeps}

    The quickstart world is instrumented with named crash sites
    ({!Rrq_sim.Crashpoint}) at WAL sync boundaries, 2PC decision points and
    clerk/server steps. *)

val quickstart_crash_sites : unit -> (string * int) list
(** Probe run (fault-free, FIFO): every crash site reached, with hit
    counts — the enumeration domain for {!quickstart_crash_at}. *)

val quickstart_crash_at :
  site:string -> hit:int -> recover_after:float -> outcome
(** Run quickstart with a one-shot crash armed at the [hit]-th reach of the
    named site: the backend disk freezes immediately, the node crashes and
    restarts [recover_after] seconds later. *)

val quickstart_mm_crash_sites : unit -> (string * int) list
(** {!quickstart_crash_sites} for the main-memory variant — the site set
    differs (adaptive commit seals change sync boundaries). *)

val quickstart_mm_crash_at :
  site:string -> hit:int -> recover_after:float -> outcome
(** {!quickstart_crash_at} over the main-memory request queue: redo-only
    recovery must still deliver exactly-once at every crash site. *)

val ha_crash_sites : unit -> (string * int) list
(** Probe the HA world under a plan that kills the primary at t=2 (so the
    heartbeat-miss/promote path is reached) and enumerate every crash site
    hit — including the replication sites [ship.sent], [ship.applied],
    [ha.heartbeat_miss] and [ha.promote]. *)

val ha_crash_at :
  site:string -> hit:int -> victim:string -> recover_after:float -> outcome
(** Re-run the probe plan with a one-shot kill of [victim] (["primary"] or
    ["backup"]) armed at the [hit]-th reach of [site]. The site may be
    reached on the other node: killing the primary at [ship.applied] fires
    from the backup's apply fiber, modeling death with the ack in flight. *)

val sharded_crash_sites : unit -> (string * int) list
(** Probe the sharded world fault-free (the in-scenario map change still
    happens) and enumerate every crash site hit — including the routing
    sites [shard.route:<node>], [shard.forward:<node>] and
    [shard.map_install:<node>], alongside each shard's own [wal.*]/[tm.*]
    sites (whose names embed the shard node). *)

val sharded_crash_at :
  site:string -> hit:int -> victim:string -> recover_after:float -> outcome
(** Re-run the sharded probe with a one-shot kill of [victim] (a shard
    node name) armed at the [hit]-th reach of [site]. A [shard.forward:*]
    site is reached on the relaying node while the victim may be the owner
    it relays to — death with the forwarded operation in flight. *)

(** {1 Recorded runs}

    A run wrapped in an [Rrq_obs] session: metrics and the trace-event
    stream are captured, and {!Audit.exactly_once_trace} re-verifies
    exactly-once from the events alone. *)

type recorded = {
  rec_outcome : outcome;
      (** The scenario's outcome, with the trace auditor's findings
          appended. *)
  rec_metrics : Rrq_obs.Metrics.snapshot;  (** Metrics at quiescence. *)
  rec_trace : string;  (** The JSON-lines trace dump. *)
}

val run_recorded :
  ?policy:Rrq_sim.Sched.policy -> ?trace_capacity:int -> t -> Plan.t -> recorded
(** Run one plan under a fresh observability session ([trace_capacity]
    defaults to 262144 events — quickstart runs use a few thousand).
    Recording is disabled again on return. *)
