(** Fault plans: the portable identity of an explored schedule.

    A plan is the RNG seed, the scheduling policy and a list of timed
    faults. It round-trips through a one-line string so a failing schedule
    can be printed as a copy-pastable repro and replayed bit-for-bit, e.g.:

    {v seed=7 policy=random:8841 crash:S@1.75+1.2 part:C/S@3.4+0.8 v} *)

type fault =
  | Crash of { node : string; at : float; recover_after : float }
      (** Hard-kill [node] at virtual time [at] (losing its unforced
          writes), restart it [recover_after] seconds later. *)
  | Partition of { a : string; b : string; at : float; heal_after : float }
      (** Sever [a]<->[b] at [at], heal after [heal_after] seconds. *)

type policy = [ `Fifo | `Random of int ]

type t = { seed : int; policy : policy; faults : fault list }
(** [faults] is kept sorted by injection time. *)

type profile = {
  crash_nodes : string list;       (** nodes eligible for crashes *)
  partition_pairs : (string * string) list;  (** links eligible for cuts *)
  horizon : float;                 (** latest fault injection time *)
  max_faults : int;                (** at most this many faults per plan *)
}

val make : seed:int -> policy:policy -> faults:fault list -> t

val random : seed:int -> profile:profile -> t
(** Deterministically derive a plan from [seed]: 1..[max_faults] faults at
    2-decimal times in [0.5, horizon], plus a policy choice. *)

val fault_at : fault -> float

val to_string : t -> string
val of_string : string -> t
(** @raise Failure on malformed input. *)

val sched_policy : t -> Rrq_sim.Sched.policy
(** The scheduler policy this plan selects. *)
