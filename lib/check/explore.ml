(* Schedule exploration and failing-plan shrinking.

   [run] draws fault plans deterministically from an index range and runs
   them against a scenario until the budget is spent or an auditor fires.
   [shrink] then minimizes the failing plan — drop faults to a fixpoint,
   simplify the scheduling policy — so the repro the user sees is the
   smallest schedule that still fails, printed as a copy-pastable
   [rrq_demo check --replay] line. *)

type failure = {
  plan : Plan.t;
  outcome : Scenario.outcome;
  shrunk : Plan.t option;  (** Smaller still-failing plan, when one exists. *)
  shrink_runs : int;  (** Scenario executions the shrinker spent. *)
}

type report = {
  scenario : string;
  explored : int;  (** Plans actually run. *)
  passed : int;
  failure : failure option;  (** The first failing plan, minimized. *)
}

let plan_of_index scenario ~seed i =
  Plan.random ~seed:(seed + (1000 * i)) ~profile:scenario.Scenario.profile

(* ---- shrinking --------------------------------------------------------- *)

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let fails scenario plan = Scenario.failed (Scenario.run scenario plan)

(* ddmin-lite: repeatedly try removing one fault; restart the scan after
   every successful removal until no single removal still fails. Then try
   trading the randomized policy for FIFO. Each candidate costs one full
   scenario run, so the whole shrink is bounded by [max_runs]. *)
let shrink ?(max_runs = 60) scenario (plan : Plan.t) =
  let runs = ref 0 in
  let try_fails candidate =
    if !runs >= max_runs then false
    else begin
      incr runs;
      fails scenario candidate
    end
  in
  let rec drop_pass (p : Plan.t) =
    let n = List.length p.faults in
    let rec try_at i =
      if i >= n then p
      else
        let candidate = { p with faults = drop_nth i p.faults } in
        if try_fails candidate then drop_pass candidate else try_at (i + 1)
    in
    if n = 0 then p else try_at 0
  in
  let smaller = drop_pass plan in
  let smaller =
    match smaller.policy with
    | `Fifo -> smaller
    | `Random _ ->
      let fifo = { smaller with policy = `Fifo } in
      if try_fails fifo then fifo else smaller
  in
  let shrunk = if smaller = plan then None else Some smaller in
  (shrunk, !runs)

(* ---- exploration ------------------------------------------------------- *)

let run ?(budget = 200) ?(seed = 1) ?(shrink_failures = true) scenario =
  let passed = ref 0 in
  let explored = ref 0 in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < budget do
    let plan = plan_of_index scenario ~seed !i in
    incr i;
    incr explored;
    let outcome = Scenario.run scenario plan in
    if Scenario.failed outcome then begin
      let shrunk, shrink_runs =
        if shrink_failures then shrink scenario plan else (None, 0)
      in
      failure := Some { plan; outcome; shrunk; shrink_runs }
    end
    else incr passed
  done;
  {
    scenario = scenario.Scenario.name;
    explored = !explored;
    passed = !passed;
    failure = !failure;
  }

(* ---- reporting --------------------------------------------------------- *)

let repro_line scenario plan =
  Printf.sprintf "rrq_demo check --scenario %s --replay '%s'" scenario
    (Plan.to_string plan)

let minimal_plan f = match f.shrunk with Some p -> p | None -> f.plan

let failure_to_string ~scenario f =
  let b = Buffer.create 256 in
  Printf.bprintf b "FAILED: %s\n" (Audit.findings_to_string f.outcome.Scenario.findings);
  Printf.bprintf b "  plan:   %s\n" (Plan.to_string f.plan);
  (match f.shrunk with
  | Some p ->
    Printf.bprintf b "  shrunk: %s  (%d shrink runs)\n" (Plan.to_string p)
      f.shrink_runs
  | None -> Printf.bprintf b "  shrunk: (already minimal, %d shrink runs)\n" f.shrink_runs);
  Printf.bprintf b "  repro:  %s" (repro_line scenario (minimal_plan f));
  Buffer.contents b

let report_to_string r =
  match r.failure with
  | None ->
    Printf.sprintf "%s: %d/%d schedules passed all auditors" r.scenario r.passed
      r.explored
  | Some f ->
    Printf.sprintf "%s: %d schedules passed, then:\n%s" r.scenario r.passed
      (failure_to_string ~scenario:r.scenario f)
