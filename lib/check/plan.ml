(* A fault plan is the portable identity of one explored schedule: the RNG
   seed, the scheduling policy, and the injected faults. Plans round-trip
   through a one-line string so a failing schedule can be pasted back into
   [rrq_demo check --replay] and re-run bit-for-bit. *)

type fault =
  | Crash of { node : string; at : float; recover_after : float }
  | Partition of { a : string; b : string; at : float; heal_after : float }

type policy = [ `Fifo | `Random of int ]

type t = { seed : int; policy : policy; faults : fault list }

let fault_at = function Crash { at; _ } -> at | Partition { at; _ } -> at

let sort_faults faults =
  List.stable_sort (fun f g -> compare (fault_at f) (fault_at g)) faults

let make ~seed ~policy ~faults = { seed; policy; faults = sort_faults faults }

(* ---- generation -------------------------------------------------------- *)

type profile = {
  crash_nodes : string list;
  partition_pairs : (string * string) list;
  horizon : float;
  max_faults : int;
}

let round2 x = Float.of_int (int_of_float ((x *. 100.0) +. 0.5)) /. 100.0

let random ~seed ~profile =
  let rng = Rrq_util.Rng.create seed in
  let pick l = List.nth l (Rrq_util.Rng.int rng (List.length l)) in
  let n_kinds =
    (if profile.crash_nodes = [] then 0 else 1)
    + if profile.partition_pairs = [] then 0 else 1
  in
  let faults =
    if n_kinds = 0 || profile.max_faults <= 0 then []
    else
      let n = 1 + Rrq_util.Rng.int rng profile.max_faults in
      List.init n (fun _ ->
          let at =
            round2 (0.5 +. (Rrq_util.Rng.float rng (profile.horizon -. 0.5)))
          in
          let dur = round2 (0.5 +. Rrq_util.Rng.float rng 3.0) in
          let crash =
            profile.partition_pairs = []
            || (profile.crash_nodes <> [] && Rrq_util.Rng.int rng 2 = 0)
          in
          if crash then Crash { node = pick profile.crash_nodes; at; recover_after = dur }
          else
            let a, b = pick profile.partition_pairs in
            Partition { a; b; at; heal_after = dur })
  in
  let policy =
    if Rrq_util.Rng.int rng 2 = 0 then `Fifo
    else `Random (Rrq_util.Rng.int rng 1_000_000)
  in
  make ~seed ~policy ~faults

(* ---- string codec ------------------------------------------------------ *)

let float_str x =
  (* shortest representation that still round-trips our 2-decimal times *)
  let s = Printf.sprintf "%.2f" x in
  let s =
    if String.length s > 2 && String.sub s (String.length s - 3) 3 = ".00" then
      String.sub s 0 (String.length s - 3)
    else s
  in
  s

let fault_to_string = function
  | Crash { node; at; recover_after } ->
    Printf.sprintf "crash:%s@%s+%s" node (float_str at) (float_str recover_after)
  | Partition { a; b; at; heal_after } ->
    Printf.sprintf "part:%s/%s@%s+%s" a b (float_str at) (float_str heal_after)

let policy_to_string = function
  | `Fifo -> "fifo"
  | `Random s -> Printf.sprintf "random:%d" s

let to_string t =
  String.concat " "
    (Printf.sprintf "seed=%d" t.seed
    :: Printf.sprintf "policy=%s" (policy_to_string t.policy)
    :: List.map fault_to_string t.faults)

let parse_fail fmt = Printf.ksprintf (fun m -> failwith ("Plan.of_string: " ^ m)) fmt

let parse_times s =
  (* "...@AT+DUR" -> prefix, at, dur *)
  match String.index_opt s '@' with
  | None -> parse_fail "missing '@' in %S" s
  | Some i -> (
    let prefix = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest '+' with
    | None -> parse_fail "missing '+' in %S" s
    | Some j -> (
      let at_s = String.sub rest 0 j in
      let dur_s = String.sub rest (j + 1) (String.length rest - j - 1) in
      match (float_of_string_opt at_s, float_of_string_opt dur_s) with
      | Some at, Some dur -> (prefix, at, dur)
      | _ -> parse_fail "bad times in %S" s))

let fault_of_string s =
  if String.length s > 6 && String.sub s 0 6 = "crash:" then
    let node, at, recover_after =
      parse_times (String.sub s 6 (String.length s - 6))
    in
    Crash { node; at; recover_after }
  else if String.length s > 5 && String.sub s 0 5 = "part:" then
    let pair, at, heal_after = parse_times (String.sub s 5 (String.length s - 5)) in
    match String.index_opt pair '/' with
    | None -> parse_fail "missing '/' in %S" s
    | Some i ->
      let a = String.sub pair 0 i in
      let b = String.sub pair (i + 1) (String.length pair - i - 1) in
      Partition { a; b; at; heal_after }
  else parse_fail "unknown fault %S" s

let of_string line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let seed = ref None and policy = ref None and faults = ref [] in
  List.iter
    (fun w ->
      if String.length w > 5 && String.sub w 0 5 = "seed=" then
        match int_of_string_opt (String.sub w 5 (String.length w - 5)) with
        | Some n -> seed := Some n
        | None -> parse_fail "bad seed %S" w
      else if String.length w > 7 && String.sub w 0 7 = "policy=" then
        let p = String.sub w 7 (String.length w - 7) in
        if p = "fifo" then policy := Some `Fifo
        else if String.length p > 7 && String.sub p 0 7 = "random:" then
          match int_of_string_opt (String.sub p 7 (String.length p - 7)) with
          | Some n -> policy := Some (`Random n)
          | None -> parse_fail "bad policy %S" w
        else parse_fail "bad policy %S" w
      else faults := fault_of_string w :: !faults)
    words;
  match (!seed, !policy) with
  | Some seed, Some policy -> make ~seed ~policy ~faults:(List.rev !faults)
  | None, _ -> parse_fail "missing seed= in %S" line
  | _, None -> parse_fail "missing policy= in %S" line

let sched_policy t : Rrq_sim.Sched.policy =
  match t.policy with
  | `Fifo -> Rrq_sim.Sched.Fifo
  | `Random s -> Rrq_sim.Sched.Random_priority s
