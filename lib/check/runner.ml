module Sched = Rrq_sim.Sched

exception Scenario_failure of string

(* Build a world and drive it, like the harness's [run_scenario], but with a
   selectable scheduling policy and the scheduler handed back so callers can
   read the decision trace. The harness delegates here so every experiment
   and every explored schedule runs through the same driver. *)
let run_scenario_traced ?policy ?trace_limit f =
  let s = Sched.create ?policy ?trace_limit () in
  (* If an observability session is active, timestamp its trace events with
     this world's virtual clock. *)
  Rrq_obs.Trace.set_clock (fun () -> Sched.now s);
  let driver = f s in
  let result = ref None in
  ignore (Sched.spawn s ~name:"driver" (fun () -> result := Some (driver ())));
  Sched.run s;
  (match Sched.failures s with
  | [] -> ()
  | (name, e) :: _ ->
    raise
      (Scenario_failure
         (Printf.sprintf "scenario: fiber %s raised %s" name
            (Printexc.to_string e))));
  match !result with
  | Some v -> (v, s)
  | None ->
    raise (Scenario_failure "scenario driver did not complete (simulated deadlock?)")

let run_scenario ?policy f = fst (run_scenario_traced ?policy f)

let await ?(timeout = 300.0) ?(poll = 0.1) pred =
  let deadline = Sched.clock () +. timeout in
  let rec go () =
    if pred () then true
    else if Sched.clock () >= deadline then false
    else begin
      Sched.sleep poll;
      go ()
    end
  in
  go ()
