module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Element = Rrq_qm.Element

(* ---- the exactly-once execution ledger -------------------------------- *)

let counting_handler site txn env =
  let kv = Site.kv site in
  let id = Tm.txn_id txn in
  ignore (Kvdb.add kv id ("exec:" ^ env.Envelope.rid) 1);
  ignore (Kvdb.add kv id "total" 1);
  Server.Reply ("done:" ^ env.Envelope.body)

let exec_count site rid =
  match Kvdb.committed_value (Site.kv site) ("exec:" ^ rid) with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
  | None -> 0

let audit_executions sites ~rids =
  List.fold_left
    (fun (lost, exact, dup) rid ->
      let n = List.fold_left (fun acc site -> acc + exec_count site rid) 0 sites in
      if n = 0 then (lost + 1, exact, dup)
      else if n = 1 then (lost, exact + 1, dup)
      else (lost, exact, dup + 1))
    (0, 0, 0) rids

(* ---- the auditor registry --------------------------------------------- *)

type auditor = { name : string; check : unit -> string option }
type finding = { auditor : string; detail : string }

let make name check = { name; check }

let run auditors =
  List.filter_map
    (fun a ->
      match a.check () with
      | None -> None
      | Some detail -> Some { auditor = a.name; detail }
      | exception e when Rrq_util.Swallow.nonfatal e ->
        Some { auditor = a.name; detail = "auditor raised: " ^ Printexc.to_string e })
    auditors

let findings_to_string = function
  | [] -> "all auditors passed"
  | fs ->
    String.concat "; "
      (List.map (fun f -> Printf.sprintf "%s: %s" f.auditor f.detail) fs)

(* ---- standard auditors ------------------------------------------------ *)

let exactly_once ~sites ~rids =
  make "exactly-once" (fun () ->
      let lost, _exact, dup = audit_executions (sites ()) ~rids:(rids ()) in
      if lost = 0 && dup = 0 then None
      else Some (Printf.sprintf "%d lost, %d duplicated executions" lost dup))

let conservation ~name ~expected ~actual =
  make ("conservation:" ^ name) (fun () ->
      let v = actual () in
      if v = expected then None
      else Some (Printf.sprintf "expected %d, found %d" expected v))

(* Structural integrity of every queue on every site: element ids unique
   within a repository, no negative delivery counts. Note that committed
   enqueue/dequeue counters ([Qm.counts]) are per-incarnation — recovery
   replay intentionally does not count — so comparing them is only
   meaningful in a crash-free run and is not an invariant here. *)
let queue_integrity ~sites =
  make "queue-integrity" (fun () ->
      let problems = ref [] in
      List.iter
        (fun site ->
          let qm = Site.qm site in
          let seen = Hashtbl.create 64 in
          List.iter
            (fun q ->
              let els = Qm.elements qm q in
              List.iter
                (fun el ->
                  let eid = el.Element.eid in
                  if Hashtbl.mem seen eid then
                    problems :=
                      Printf.sprintf "%s/%s: duplicate eid %Ld"
                        (Site.site_name site) q eid
                      :: !problems
                  else Hashtbl.add seen eid ();
                  if el.Element.delivery_count < 0 then
                    problems :=
                      Printf.sprintf "%s/%s: negative delivery count on %Ld"
                        (Site.site_name site) q eid
                      :: !problems)
                els)
            (Qm.queue_names qm))
        (sites ());
      match !problems with
      | [] -> None
      | ps -> Some (String.concat "; " ps))

(* After quiescence with every site up, no transaction may still be in
   doubt: the resolver daemons must have settled every prepared txn. *)
let no_in_doubt ~sites =
  make "no-in-doubt" (fun () ->
      let stuck =
        List.concat_map
          (fun site ->
            List.map
              (fun (id, _coord) ->
                Printf.sprintf "%s: %s" (Site.site_name site)
                  (Rrq_txn.Txid.to_string id))
              (Qm.in_doubt (Site.qm site))
            @ List.map
                (fun (id, _coord) ->
                  Printf.sprintf "%s(kv): %s" (Site.site_name site)
                    (Rrq_txn.Txid.to_string id))
                (Kvdb.in_doubt (Site.kv site)))
          (sites ())
      in
      match stuck with
      | [] -> None
      | s -> Some ("unresolved in-doubt transactions: " ^ String.concat ", " s))
