module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Envelope = Rrq_core.Envelope
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb
module Element = Rrq_qm.Element

(* ---- the exactly-once execution ledger -------------------------------- *)

let counting_handler site txn env =
  let kv = Site.kv site in
  let id = Tm.txn_id txn in
  ignore (Kvdb.add kv id ("exec:" ^ env.Envelope.rid) 1);
  ignore (Kvdb.add kv id "total" 1);
  Server.Reply ("done:" ^ env.Envelope.body)

let exec_count site rid =
  match Kvdb.committed_value (Site.kv site) ("exec:" ^ rid) with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
  | None -> 0

let audit_executions sites ~rids =
  List.fold_left
    (fun (lost, exact, dup) rid ->
      let n = List.fold_left (fun acc site -> acc + exec_count site rid) 0 sites in
      if n = 0 then (lost + 1, exact, dup)
      else if n = 1 then (lost, exact + 1, dup)
      else (lost, exact, dup + 1))
    (0, 0, 0) rids

(* ---- the auditor registry --------------------------------------------- *)

type auditor = { name : string; check : unit -> string option }
type finding = { auditor : string; detail : string }

let make name check = { name; check }

let run auditors =
  List.filter_map
    (fun a ->
      match a.check () with
      | None -> None
      | Some detail -> Some { auditor = a.name; detail }
      | exception e when Rrq_util.Swallow.nonfatal e ->
        Some { auditor = a.name; detail = "auditor raised: " ^ Printexc.to_string e })
    auditors

let findings_to_string = function
  | [] -> "all auditors passed"
  | fs ->
    String.concat "; "
      (List.map (fun f -> Printf.sprintf "%s: %s" f.auditor f.detail) fs)

(* ---- standard auditors ------------------------------------------------ *)

let exactly_once ~sites ~rids =
  make "exactly-once" (fun () ->
      let lost, _exact, dup = audit_executions (sites ()) ~rids:(rids ()) in
      if lost = 0 && dup = 0 then None
      else Some (Printf.sprintf "%d lost, %d duplicated executions" lost dup))

let conservation ~name ~expected ~actual =
  make ("conservation:" ^ name) (fun () ->
      let v = actual () in
      if v = expected then None
      else Some (Printf.sprintf "expected %d, found %d" expected v))

(* Structural integrity of every queue on every site: element ids unique
   within a repository, no negative delivery counts. Note that committed
   enqueue/dequeue counters ([Qm.counts]) are per-incarnation — recovery
   replay intentionally does not count — so comparing them is only
   meaningful in a crash-free run and is not an invariant here. *)
let queue_integrity ~sites =
  make "queue-integrity" (fun () ->
      let problems = ref [] in
      List.iter
        (fun site ->
          let qm = Site.qm site in
          let seen = Hashtbl.create 64 in
          List.iter
            (fun q ->
              let els = Qm.elements qm q in
              List.iter
                (fun el ->
                  let eid = el.Element.eid in
                  if Hashtbl.mem seen eid then
                    problems :=
                      Printf.sprintf "%s/%s: duplicate eid %Ld"
                        (Site.site_name site) q eid
                      :: !problems
                  else Hashtbl.add seen eid ();
                  if el.Element.delivery_count < 0 then
                    problems :=
                      Printf.sprintf "%s/%s: negative delivery count on %Ld"
                        (Site.site_name site) q eid
                      :: !problems)
                els)
            (Qm.queue_names qm))
        (sites ());
      match !problems with
      | [] -> None
      | ps -> Some (String.concat "; " ps))

(* Exactly-once re-derived from the trace stream alone, with no access to
   end state: every request that was sent or executed must have exactly one
   server execution whose transaction committed. Sound only when the trace
   is complete (no ring wraparound) and crashes are plan-driven node
   crashes under the Immediate commit policy: [Net.crash] kills fibers
   before the disk loses unsynced buffers, and with no suspension between
   the durable force and the commit event a killed-mid-commit fiber implies
   a non-durable commit. A batched force parks follower fibers between the
   covering sync and their commit events, and crashpoint-armed runs can
   fire between force and event emission — so this auditor is not in the
   standard set; [Scenario.run_recorded] applies it. *)
let exactly_once_trace () =
  make "exactly-once-trace" (fun () ->
      if not (Rrq_obs.enabled ()) then
        Some "observability disabled: no trace to audit"
      else if Rrq_obs.Trace.dropped () > 0 then
        Some
          (Printf.sprintf "trace ring dropped %d events; raise the capacity"
             (Rrq_obs.Trace.dropped ()))
      else begin
        let committed = Hashtbl.create 64 in
        let sent = Hashtbl.create 16 in
        let execs : (string, string list) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (_ts, ev) ->
            match ev with
            | Rrq_obs.Event.Txn_commit { txid; _ } ->
              Hashtbl.replace committed txid ()
            | Rrq_obs.Event.Clerk_send { rid; _ } -> Hashtbl.replace sent rid ()
            | Rrq_obs.Event.Server_exec { rid; txid; _ } ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt execs rid)
              in
              Hashtbl.replace execs rid (txid :: prev)
            | _ -> ())
          (Rrq_obs.Trace.events ());
        let rids =
          List.sort_uniq compare
            (Hashtbl.fold (fun r () acc -> r :: acc) sent []
            @ Hashtbl.fold (fun r _ acc -> r :: acc) execs [])
        in
        if rids = [] then Some "trace contains no requests to audit"
        else begin
          let problems =
            List.filter_map
              (fun rid ->
                let n =
                  List.length
                    (List.filter (Hashtbl.mem committed)
                       (Option.value ~default:[] (Hashtbl.find_opt execs rid)))
                in
                if n = 0 then
                  Some (rid ^ ": lost (no committed execution in trace)")
                else if n > 1 then
                  Some (Printf.sprintf "%s: %d committed executions" rid n)
                else None)
              rids
          in
          match problems with
          | [] -> None
          | ps -> Some (String.concat "; " ps)
        end
      end)

(* Every request must yield exactly one reply, counting both the copies
   the client already consumed ([received]) and the copies still sitting
   in reply queues. Catches the speculative-reply double: a lagged primary
   that replies before shipping dies, the backup re-executes, and the
   client's retried Receive can observe two replies for one rid. [sites]
   must resolve to the authoritative repository only — a warm standby
   holds replicated copies of the same reply elements by design. *)
let reply_delivery ~sites ~received ~rids =
  make "reply-delivery" (fun () ->
      let queued rid =
        List.fold_left
          (fun acc site ->
            let qm = Site.qm site in
            List.fold_left
              (fun acc q ->
                if String.length q >= 6 && String.sub q 0 6 = "reply." then
                  acc
                  + List.length
                      (List.filter
                         (fun el ->
                           match Envelope.of_string el.Element.payload with
                           | env -> env.Envelope.rid = rid
                           | exception e when Rrq_util.Swallow.nonfatal e ->
                             false)
                         (Qm.elements qm q))
                else acc)
              acc (Qm.queue_names qm))
          0 (sites ())
      in
      let problems =
        List.filter_map
          (fun rid ->
            let n = received rid + queued rid in
            if n = 1 then None
            else if n = 0 then Some (rid ^ ": no reply delivered or queued")
            else Some (Printf.sprintf "%s: %d replies (received+queued)" rid n))
          (rids ())
      in
      match problems with
      | [] -> None
      | ps -> Some (String.concat "; " ps))

(* After quiescence with every site up, no transaction may still be in
   doubt: the resolver daemons must have settled every prepared txn. *)
let no_in_doubt ~sites =
  make "no-in-doubt" (fun () ->
      let stuck =
        List.concat_map
          (fun site ->
            List.map
              (fun (id, coord) ->
                Printf.sprintf "%s: %s (coord %s)" (Site.site_name site)
                  (Rrq_txn.Txid.to_string id) coord)
              (Qm.in_doubt (Site.qm site))
            @ List.map
                (fun (id, coord) ->
                  Printf.sprintf "%s(kv): %s (coord %s)" (Site.site_name site)
                    (Rrq_txn.Txid.to_string id) coord)
                (Kvdb.in_doubt (Site.kv site)))
          (sites ())
      in
      match stuck with
      | [] -> None
      | s -> Some ("unresolved in-doubt transactions: " ^ String.concat ", " s))
