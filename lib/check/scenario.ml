(* Checkable scenarios: small closed worlds (clients, a backend site, a
   network) that run one fault plan to quiescence and audit themselves.

   Two are built in:
   - [quickstart]: the paper's System Model on one backend — real clerks,
     tagged Sends and Receives, a counting server — which must satisfy
     every auditor under any plan the explorer throws at it;
   - [buggy_clerk]: a deliberately broken client that enqueues untagged
     and blindly re-Sends on a reply timeout (no rid check), the canonical
     duplicate-request bug the paper's registration tags exist to prevent.
     It passes fault-free and violates exactly-once under faults, giving
     the explorer and the shrinker something real to find. *)

module Sched = Rrq_sim.Sched
module Crashpoint = Rrq_sim.Crashpoint
module Disk = Rrq_storage.Disk
module Rng = Rrq_util.Rng
module Net = Rrq_net.Net
module Qm = Rrq_qm.Qm
module Site = Rrq_core.Site
module Server = Rrq_core.Server
module Clerk = Rrq_core.Clerk
module Envelope = Rrq_core.Envelope
module Ha = Rrq_core.Ha
module Shard = Rrq_core.Shard
module Kvdb = Rrq_kvdb.Kvdb

type outcome = {
  findings : Audit.finding list;
  trace : Sched.decision array;
  trace_truncated : bool;
  requests : int;
  replies : int;
  virtual_time : float;
}

type t = {
  name : string;
  profile : Plan.profile;
  run : ?policy:Sched.policy -> Plan.t -> outcome;
}

let failed o = o.findings <> []

(* ---- fault injection ---------------------------------------------------- *)

(* Faults run as scheduler callbacks at their planned virtual times. A crash
   while the node is already down is skipped (deterministically), so
   overlapping faults cannot double-boot a site. *)
let inject sched net site (plan : Plan.t) =
  List.iter
    (fun fault ->
      match fault with
      | Plan.Crash { node = _; at; recover_after } ->
        Sched.at sched at (fun () ->
            if Net.is_up (Site.node site) then
              Site.crash_restart site ~after:recover_after)
      | Plan.Partition { a; b; at; heal_after } ->
        Sched.at sched at (fun () ->
            Net.partition net a b;
            Sched.at sched
              (Sched.now sched +. heal_after)
              (fun () -> Net.heal net a b)))
    plan.Plan.faults

let standard_auditors site rids =
  let sites () = [ site ] in
  [
    Audit.exactly_once ~sites ~rids:(fun () -> rids);
    Audit.queue_integrity ~sites;
    Audit.no_in_doubt ~sites;
  ]

(* ---- quickstart: correct clerks, must always pass ----------------------- *)

let quickstart_clients = 2
let quickstart_reqs = 2

let quickstart_rids =
  List.concat
    (List.init quickstart_clients (fun c ->
         List.init quickstart_reqs (fun r -> Printf.sprintf "c%d-r%d" c r)))

(* One well-behaved client: tagged Sends, Receives retried through outages.
   Retry budgets comfortably exceed the worst fault schedule a profile can
   generate, so a correct run can never report a lost request. *)
let good_client ~client_node ~id ~replies () =
  let client_id = Printf.sprintf "c%d" id in
  let rec connect n =
    match
      Clerk.connect ~client_node ~system:"backend" ~client_id ~req_queue:"req"
        ~retries:8 ()
    with
    | clerk, _ -> clerk
    | exception Clerk.Unavailable _ when n > 0 ->
      Sched.sleep 1.0;
      connect (n - 1)
  in
  let clerk = connect 60 in
  for r = 0 to quickstart_reqs - 1 do
    let rid = Printf.sprintf "%s-r%d" client_id r in
    let rec send n =
      try ignore (Clerk.send clerk ~rid ("work:" ^ rid))
      with Clerk.Unavailable _ when n > 0 ->
        Sched.sleep 1.0;
        send (n - 1)
    in
    send 60;
    let deadline = Sched.clock () +. 60.0 in
    let rec recv () =
      let reply =
        try Clerk.receive clerk ~timeout:2.0 ()
        with Clerk.Unavailable _ ->
          Sched.sleep 1.0;
          None
      in
      match reply with
      | Some env when env.Envelope.kind <> "intermediate" -> incr replies
      | _ -> if Sched.clock () < deadline then recv ()
    in
    recv ()
  done

(* [armed] optionally installs a one-shot crash at a named crash site
   ([Rrq_sim.Crashpoint]): freeze the backend disk immediately (the fiber
   that reached the site keeps running to its next suspension, and must not
   produce durable effects), then crash the node and restart it later. *)
(* [queue_attrs]/[commit_policy] select the request queue's durability
   class and the site's commit batching — the main-memory variant below
   runs the same closed world over a [Main_memory] request queue with
   adaptive group commit, so every auditor (exactly-once above all) gets
   exercised against redo-only recovery. *)
let run_quickstart ?armed ?policy ?(queue_attrs = Qm.default_attrs)
    ?commit_policy (plan : Plan.t) =
  let pol = match policy with Some p -> p | None -> Plan.sched_policy plan in
  let replies = ref 0 in
  let clients_done = ref 0 in
  let body () =
    let (findings, vt), sched =
      Runner.run_scenario_traced ~policy:pol (fun s ->
          let net = Net.create ~latency:0.005 s (Rng.create ((plan.Plan.seed * 7) + 1)) in
          let site =
            Site.create ?commit_policy
              ~queues:[ ("req", queue_attrs) ]
              ~stale_timeout:3.0
              (Net.make_node net "backend")
          in
          ignore (Server.start site ~req_queue:"req" ~threads:2 Audit.counting_handler);
          let client_node = Net.make_node net "client" in
          inject s net site plan;
          (match armed with
          | None -> ()
          | Some (cp_site, hit, recover_after) ->
            Crashpoint.reset ();
            Crashpoint.arm ~site:cp_site ~hit (fun () ->
                let node = Site.node site in
                let disk = Net.disk node in
                (* The crash must be synchronous: freezing the disk and
                   killing the node's fibers in one step, before control
                   returns to the reaching code, so no acknowledgment of a
                   never-durable effect can escape to a client. *)
                Disk.kill_now disk;
                Sched.note_fault s ("crashpoint " ^ cp_site);
                Net.crash node;
                Disk.revive disk;
                Sched.at s
                  (Sched.now s +. recover_after)
                  (fun () -> Net.restart node);
                (* If the site was reached from one of the node's own fibers,
                   that fiber died mid-instruction: unwind it with [Crash]
                   (the scheduler counts that as a kill, and no
                   Swallow-disciplined handler may eat it — rrq_lint R1). *)
                if
                  Sched.in_fiber ()
                  && Sched.fiber_group (Sched.self ()) = Some (Net.node_name node)
                then Crashpoint.crash ()));
          fun () ->
            for c = 0 to quickstart_clients - 1 do
              ignore
                (Sched.fork ~name:(Printf.sprintf "client%d" c) (fun () ->
                     good_client ~client_node ~id:c ~replies ();
                     incr clients_done))
            done;
            ignore (Runner.await ~timeout:300.0 (fun () -> !clients_done = quickstart_clients));
            (* settle: let redelivery, resolvers and the janitor quiesce *)
            Sched.sleep 20.0;
            (Audit.run (standard_auditors site quickstart_rids), Sched.clock ()))
    in
    {
      findings;
      trace = Sched.trace sched;
      trace_truncated = Sched.trace_truncated sched;
      requests = List.length quickstart_rids;
      replies = !replies;
      virtual_time = vt;
    }
  in
  match armed with
  | None -> body ()
  | Some _ -> Fun.protect ~finally:Crashpoint.disable body

let quickstart_profile =
  {
    Plan.crash_nodes = [ "backend" ];
    partition_pairs = [ ("client", "backend") ];
    horizon = 6.0;
    max_faults = 3;
  }

let quickstart =
  {
    name = "quickstart";
    profile = quickstart_profile;
    run = (fun ?policy plan -> run_quickstart ?policy plan);
  }

(* Same world, main-memory request queue + adaptive group commit: element
   payload and order live purely in memory, only redo records hit the WAL,
   and recovery rebuilds the queue from the redo scan. Exactly-once must
   hold anyway — that equivalence is what the mm crash sweeps check. *)
let mm_attrs = { Qm.default_attrs with durability = Qm.Main_memory }
let mm_policy = Rrq_wal.Group_commit.Adaptive { max_delay = 0.0005; max_batch = 64 }

let quickstart_mm =
  {
    name = "quickstart-mm";
    profile = quickstart_profile;
    run =
      (fun ?policy plan ->
        run_quickstart ?policy ~queue_attrs:mm_attrs ~commit_policy:mm_policy
          plan);
  }

(* ---- crash-site sweep entry points -------------------------------------- *)

let fault_free = Plan.make ~seed:0 ~policy:`Fifo ~faults:[]

let quickstart_crash_sites () =
  Crashpoint.reset ();
  Fun.protect ~finally:Crashpoint.disable (fun () ->
      ignore (run_quickstart fault_free);
      Crashpoint.hit_counts ())

let quickstart_crash_at ~site ~hit ~recover_after =
  run_quickstart ~armed:(site, hit, recover_after) fault_free

let quickstart_mm_crash_sites () =
  Crashpoint.reset ();
  Fun.protect ~finally:Crashpoint.disable (fun () ->
      ignore
        (run_quickstart ~queue_attrs:mm_attrs ~commit_policy:mm_policy
           fault_free);
      Crashpoint.hit_counts ())

let quickstart_mm_crash_at ~site ~hit ~recover_after =
  run_quickstart ~queue_attrs:mm_attrs ~commit_policy:mm_policy
    ~armed:(site, hit, recover_after) fault_free

(* ---- HA pair: primary-backup WAL shipping with clerk failover ----------- *)

let ha_clients = 2
let ha_reqs = 2

let ha_rids =
  List.concat
    (List.init ha_clients (fun c ->
         List.init ha_reqs (fun r -> Printf.sprintf "h%d-r%d" c r)))

(* Like [good_client], but connected to the HA pair (backup rotation) and
   counting every received reply per rid — the [reply_delivery] auditor's
   evidence of what escaped to the client. *)
let ha_client ~client_node ~id ~received ~replies () =
  let client_id = Printf.sprintf "h%d" id in
  let rec connect n =
    match
      Clerk.connect ~client_node ~system:"primary" ~backups:[ "backup" ]
        ~client_id ~req_queue:"req" ~retries:8 ()
    with
    | clerk, _ -> clerk
    | exception Clerk.Unavailable _ when n > 0 ->
      Sched.sleep 1.0;
      connect (n - 1)
  in
  let clerk = connect 60 in
  for r = 0 to ha_reqs - 1 do
    let rid = Printf.sprintf "%s-r%d" client_id r in
    let rec send n =
      try ignore (Clerk.send clerk ~rid ("work:" ^ rid))
      with Clerk.Unavailable _ when n > 0 ->
        Sched.sleep 1.0;
        send (n - 1)
    in
    send 60;
    let deadline = Sched.clock () +. 60.0 in
    let rec recv () =
      let reply =
        try Clerk.receive clerk ~timeout:2.0 ()
        with Clerk.Unavailable _ ->
          Sched.sleep 1.0;
          None
      in
      match reply with
      | Some env when env.Envelope.kind <> "intermediate" ->
        let rrid = env.Envelope.rid in
        Hashtbl.replace received rrid
          (1 + Option.value ~default:0 (Hashtbl.find_opt received rrid));
        incr replies;
        (* A stray duplicate of an older request: keep waiting for ours. *)
        if rrid <> rid && Sched.clock () < deadline then recv ()
      | _ -> if Sched.clock () < deadline then recv ()
    in
    recv ()
  done

(* Faults dispatched by node name: the HA world has two crashable
   repositories, so [Plan.Crash]'s node field finally matters. *)
let inject_named sched net sites (plan : Plan.t) =
  List.iter
    (fun fault ->
      match fault with
      | Plan.Crash { node; at; recover_after } -> (
        match List.assoc_opt node sites with
        | None -> ()
        | Some site ->
          Sched.at sched at (fun () ->
              if Net.is_up (Site.node site) then
                Site.crash_restart site ~after:recover_after))
      | Plan.Partition { a; b; at; heal_after } ->
        Sched.at sched at (fun () ->
            Net.partition net a b;
            Sched.at sched
              (Sched.now sched +. heal_after)
              (fun () -> Net.heal net a b)))
    plan.Plan.faults

(* [armed] installs a one-shot kill of [victim] (a node name) at a named
   crash site — which may be reached on the {e other} node: killing the
   primary at ["ship.applied"] fires from the backup's apply fiber. *)
let run_ha ?armed ?(mode = Ha.Sync) ?policy (plan : Plan.t) =
  let pol = match policy with Some p -> p | None -> Plan.sched_policy plan in
  let replies = ref 0 in
  let clients_done = ref 0 in
  let received : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let body () =
    let (findings, vt), sched =
      Runner.run_scenario_traced ~policy:pol (fun s ->
          let net =
            Net.create ~latency:0.005 s (Rng.create ((plan.Plan.seed * 7) + 1))
          in
          let site_p =
            Site.create
              ~queues:[ ("req", Qm.default_attrs) ]
              ~stale_timeout:3.0
              (Net.make_node net "primary")
          in
          let site_b =
            Site.create
              ~queues:[ ("req", Qm.default_attrs) ]
              ~stale_timeout:3.0
              (Net.make_node net "backup")
          in
          let serve ha =
            ignore
              (Server.start_here (Ha.site ha) ~req_queue:"req" ~threads:2
                 Audit.counting_handler)
          in
          let _ha_p =
            Ha.attach ~mode ~on_serving:serve site_p ~peer:"backup"
              ~role:Ha.Primary
          in
          let ha_b =
            Ha.attach ~mode ~on_serving:serve site_b ~peer:"primary"
              ~role:Ha.Standby
          in
          let client_node = Net.make_node net "client" in
          inject_named s net [ ("primary", site_p); ("backup", site_b) ] plan;
          (match armed with
          | None -> ()
          | Some (cp_site, hit, victim, recover_after) ->
            Crashpoint.reset ();
            Crashpoint.arm ~site:cp_site ~hit (fun () ->
                let node = Net.node net victim in
                if Net.is_up node then begin
                  let disk = Net.disk node in
                  Disk.kill_now disk;
                  Sched.note_fault s
                    ("crashpoint " ^ cp_site ^ " kills " ^ victim);
                  Net.crash node;
                  Disk.revive disk;
                  Sched.at s
                    (Sched.now s +. recover_after)
                    (fun () -> Net.restart node)
                end;
                if
                  Sched.in_fiber ()
                  && Sched.fiber_group (Sched.self ()) = Some victim
                then Crashpoint.crash ()));
          fun () ->
            for c = 0 to ha_clients - 1 do
              ignore
                (Sched.fork ~name:(Printf.sprintf "haclient%d" c) (fun () ->
                     ha_client ~client_node ~id:c ~received ~replies ();
                     incr clients_done))
            done;
            ignore
              (Runner.await ~timeout:300.0 (fun () ->
                   !clients_done = ha_clients));
            (* settle: failover, rejoin, resync, resolvers, janitors *)
            Sched.sleep 25.0;
            (* The authoritative repository: the promoted backup if it took
               over, else the (possibly recovered) original primary. *)
            let auth () =
              if Ha.is_serving ha_b then [ site_b ] else [ site_p ]
            in
            let both () = [ site_p; site_b ] in
            let auditors =
              [
                Audit.exactly_once ~sites:auth ~rids:(fun () -> ha_rids);
                Audit.conservation ~name:"exec-total"
                  ~expected:(List.length ha_rids)
                  ~actual:(fun () ->
                    match
                      Kvdb.committed_value (Site.kv (List.hd (auth ()))) "total"
                    with
                    | Some v ->
                      Option.value ~default:0 (int_of_string_opt v)
                    | None -> 0);
                Audit.reply_delivery ~sites:auth
                  ~received:(fun rid ->
                    Option.value ~default:0 (Hashtbl.find_opt received rid))
                  ~rids:(fun () -> ha_rids);
                Audit.queue_integrity ~sites:both;
                Audit.no_in_doubt ~sites:both;
              ]
            in
            (Audit.run auditors, Sched.clock ()))
    in
    {
      findings;
      trace = Sched.trace sched;
      trace_truncated = Sched.trace_truncated sched;
      requests = List.length ha_rids;
      replies = !replies;
      virtual_time = vt;
    }
  in
  match armed with
  | None -> body ()
  | Some _ -> Fun.protect ~finally:Crashpoint.disable body

let ha_profile =
  {
    Plan.crash_nodes = [ "primary" ];
    partition_pairs = [ ("client", "primary") ];
    horizon = 6.0;
    max_faults = 3;
  }

let ha =
  {
    name = "ha";
    profile = ha_profile;
    run = (fun ?policy plan -> run_ha ?policy plan);
  }

(* The deliberately lag-buggy shipper: replies released up to a second
   ahead of the backup. Fault-free it passes every auditor; kill the
   primary inside the lag window and the promoted backup either never saw
   an acknowledged request (exactly-once: lost) or re-executes one whose
   reply already escaped (reply-delivery: 2 replies). The explorer must
   find this and ddmin must shrink it to the one killing crash. *)
let ha_lagged =
  {
    name = "ha-lagged";
    profile = ha_profile;
    run = (fun ?policy plan -> run_ha ~mode:(Ha.Lagged 1.0) ?policy plan);
  }

(* ---- HA crash-site sweep entry points ----------------------------------- *)

(* A plan whose primary kill makes the failover path (heartbeat-miss,
   promote) reachable, so the probe discovers the ha.* sites. *)
let ha_probe_plan =
  Plan.make ~seed:0 ~policy:`Fifo
    ~faults:[ Plan.Crash { node = "primary"; at = 2.0; recover_after = 6.0 } ]

let ha_crash_sites () =
  Crashpoint.reset ();
  Fun.protect ~finally:Crashpoint.disable (fun () ->
      ignore (run_ha ha_probe_plan);
      Crashpoint.hit_counts ())

let ha_crash_at ~site ~hit ~victim ~recover_after =
  run_ha ~armed:(site, hit, victim, recover_after) ha_probe_plan

(* ---- sharded multi-repository scale-out --------------------------------- *)

(* Three shard repositories, each a full site (own WAL/TM/QM) running the
   counting server on its partition of the shared request queue. Clients are
   shard-aware clerks starting from map v1, which pins every client's
   request key onto shard0; at [shard_map_change_at] an admin fiber installs
   v2 (pins dropped, pure hash placement), moving every key off shard0
   mid-run. Chosen so the change exercises everything at once:
   - under v2 the hash owners of req#s0/s1/s2 are shard2/shard1/shard1 —
     every stale-mapped client gets forwarded (and refreshed by piggyback);
   - reply queues hash to shard1/shard2/shard0, so servers finish requests
     with cross-shard 2PC reply enqueues from the very first request;
   - retries that straddle the change reach owners with no local
     registration record, forcing the registration pull. *)

let shard_nodes = [ "shard0"; "shard1"; "shard2" ]
let shard_map_change_at = 1.0
let sharded_clients = 3
let sharded_reqs = 2

let sharded_rids =
  List.concat
    (List.init sharded_clients (fun c ->
         List.init sharded_reqs (fun r -> Printf.sprintf "s%d-r%d" c r)))

let shard_map_v1 =
  {
    Shard.version = 1;
    shards = shard_nodes;
    backups = [];
    sharded_queues = [ "req" ];
    pins =
      List.init sharded_clients (fun c ->
          (Printf.sprintf "req#s%d" c, "shard0"));
  }

let shard_map_v2 = { shard_map_v1 with Shard.version = 2; pins = [] }

(* [good_client] with shard routing, pausing between requests so the second
   one straddles the map change (the pause beats [shard_map_change_at] even
   when outages delay the first request — later is fine, the map only gets
   newer). *)
let sharded_client ~client_node ~id ~replies () =
  let client_id = Printf.sprintf "s%d" id in
  let rec connect n =
    match
      Clerk.connect ~client_node ~system:"shard0" ~shard_map:shard_map_v1
        ~client_id ~req_queue:"req" ~retries:8 ()
    with
    | clerk, _ -> clerk
    | exception Clerk.Unavailable _ when n > 0 ->
      Sched.sleep 1.0;
      connect (n - 1)
  in
  let clerk = connect 60 in
  for r = 0 to sharded_reqs - 1 do
    if r > 0 then Sched.sleep (shard_map_change_at +. 0.2);
    let rid = Printf.sprintf "%s-r%d" client_id r in
    let rec send n =
      try ignore (Clerk.send clerk ~rid ("work:" ^ rid))
      with Clerk.Unavailable _ when n > 0 ->
        Sched.sleep 1.0;
        send (n - 1)
    in
    send 60;
    let deadline = Sched.clock () +. 60.0 in
    let rec recv () =
      let reply =
        try Clerk.receive clerk ~timeout:2.0 ()
        with Clerk.Unavailable _ ->
          Sched.sleep 1.0;
          None
      in
      match reply with
      | Some env when env.Envelope.kind <> "intermediate" -> incr replies
      | _ -> if Sched.clock () < deadline then recv ()
    in
    recv ()
  done

(* [armed] is the HA-style form: a one-shot kill of [victim] at a named
   crash site, which for [shard.forward:*] fires on the relaying node while
   the victim may be the owner it relays to. [buggy] attaches the routers
   with the designed tag-stripping forwarder. *)
let run_sharded ?armed ?(buggy = false) ?policy (plan : Plan.t) =
  let pol = match policy with Some p -> p | None -> Plan.sched_policy plan in
  let replies = ref 0 in
  let clients_done = ref 0 in
  let body () =
    let (findings, vt), sched =
      Runner.run_scenario_traced ~policy:pol (fun s ->
          let net =
            Net.create ~latency:0.005 s (Rng.create ((plan.Plan.seed * 7) + 1))
          in
          let sites =
            List.map
              (fun name ->
                let site =
                  Site.create
                    ~queues:[ ("req", Qm.default_attrs) ]
                    ~stale_timeout:3.0
                    (Net.make_node net name)
                in
                ignore
                  (Server.start site ~req_queue:"req" ~threads:2
                     Audit.counting_handler);
                ignore
                  (Shard.attach ~untag_forward_bug:buggy site shard_map_v1);
                (name, site))
              shard_nodes
          in
          let client_node = Net.make_node net "client" in
          inject_named s net sites plan;
          (match armed with
          | None -> ()
          | Some (cp_site, hit, victim, recover_after) ->
            Crashpoint.reset ();
            Crashpoint.arm ~site:cp_site ~hit (fun () ->
                let node = Net.node net victim in
                if Net.is_up node then begin
                  let disk = Net.disk node in
                  Disk.kill_now disk;
                  Sched.note_fault s
                    ("crashpoint " ^ cp_site ^ " kills " ^ victim);
                  Net.crash node;
                  Disk.revive disk;
                  Sched.at s
                    (Sched.now s +. recover_after)
                    (fun () -> Net.restart node)
                end;
                if
                  Sched.in_fiber ()
                  && Sched.fiber_group (Sched.self ()) = Some victim
                then Crashpoint.crash ()));
          fun () ->
            (* The map change: an admin pushing v2 to every shard, re-pushing
               the laggards (crashed or partitioned shards ack after they
               come back — installs are idempotent by version). *)
            ignore
              (Sched.fork ~name:"mapchange" (fun () ->
                   Sched.sleep shard_map_change_at;
                   let rec push remaining =
                     if remaining <> [] then begin
                       let acked =
                         Shard.install_from client_node ~shards:remaining
                           shard_map_v2
                       in
                       let rest =
                         List.filter
                           (fun sh -> not (List.mem sh acked))
                           remaining
                       in
                       if rest <> [] then begin
                         Sched.sleep 0.5;
                         push rest
                       end
                     end
                   in
                   push shard_nodes));
            for c = 0 to sharded_clients - 1 do
              ignore
                (Sched.fork ~name:(Printf.sprintf "shclient%d" c) (fun () ->
                     sharded_client ~client_node ~id:c ~replies ();
                     incr clients_done))
            done;
            ignore
              (Runner.await ~timeout:300.0 (fun () ->
                   !clients_done = sharded_clients));
            (* settle: forwards drain, resolvers finish cross-shard 2PC *)
            Sched.sleep 20.0;
            let shard_sites () = List.map snd sites in
            let auditors =
              [
                Audit.exactly_once ~sites:shard_sites
                  ~rids:(fun () -> sharded_rids);
                Audit.conservation ~name:"exec-total"
                  ~expected:(List.length sharded_rids)
                  ~actual:(fun () ->
                    List.fold_left
                      (fun acc site ->
                        acc
                        +
                        match
                          Kvdb.committed_value (Site.kv site) "total"
                        with
                        | Some v ->
                          Option.value ~default:0 (int_of_string_opt v)
                        | None -> 0)
                      0 (shard_sites ()));
                Audit.queue_integrity ~sites:shard_sites;
                Audit.no_in_doubt ~sites:shard_sites;
              ]
            in
            (Audit.run auditors, Sched.clock ()))
    in
    {
      findings;
      trace = Sched.trace sched;
      trace_truncated = Sched.trace_truncated sched;
      requests = List.length sharded_rids;
      replies = !replies;
      virtual_time = vt;
    }
  in
  match armed with
  | None -> body ()
  | Some _ -> Fun.protect ~finally:Crashpoint.disable body

let sharded_profile =
  {
    Plan.crash_nodes = shard_nodes;
    partition_pairs =
      [ ("client", "shard0"); ("shard0", "shard1"); ("shard1", "shard2") ];
    horizon = 6.0;
    max_faults = 3;
  }

let sharded =
  {
    name = "sharded";
    profile = sharded_profile;
    run = (fun ?policy plan -> run_sharded ?policy plan);
  }

(* The designed misroute-during-map-change anomaly: the forwarder strips
   registration tags, so a forwarded operation executes untagged — no
   registration record at the owner, no duplicate suppression. Fault-free
   nothing retries and it passes; a lost acknowledgment that straddles the
   map change re-Sends through the stale pin, gets forwarded again, and the
   owner executes a second copy. The explorer must catch it and ddmin must
   shrink the plan. *)
let sharded_buggy =
  {
    name = "sharded-buggy";
    profile = sharded_profile;
    run = (fun ?policy plan -> run_sharded ~buggy:true ?policy plan);
  }

(* ---- shard crash-site sweep entry points -------------------------------- *)

let sharded_crash_sites () =
  Crashpoint.reset ();
  Fun.protect ~finally:Crashpoint.disable (fun () ->
      ignore (run_sharded fault_free);
      Crashpoint.hit_counts ())

let sharded_crash_at ~site ~hit ~victim ~recover_after =
  run_sharded ~armed:(site, hit, victim, recover_after) fault_free

(* ---- buggy clerk: untagged Send, blind retry ---------------------------- *)

let buggy_reqs = 6

let buggy_rids = List.init buggy_reqs (Printf.sprintf "bug-r%d")

let run_buggy ?policy (plan : Plan.t) =
  let pol = match policy with Some p -> p | None -> Plan.sched_policy plan in
  let replies = ref 0 in
  let (findings, vt), sched =
    Runner.run_scenario_traced ~policy:pol (fun s ->
        let net = Net.create ~latency:0.005 s (Rng.create ((plan.Plan.seed * 7) + 1)) in
        let site =
          Site.create
            ~queues:[ ("req", Qm.default_attrs) ]
            ~stale_timeout:3.0
            (Net.make_node net "backend")
        in
        ignore (Server.start site ~req_queue:"req" ~threads:2 Audit.counting_handler);
        let client_node = Net.make_node net "client" in
        inject s net site plan;
        fun () ->
          let call ?(timeout = 1.0) payload =
            Net.call client_node ~timeout ~dst:"backend" ~service:"qm" payload
          in
          let rec setup n =
            try
              ignore (call (Site.Q_create_queue "reply.bug"));
              ignore
                (call (Site.Q_register { queue = "req"; registrant = "bug"; stable = true }));
              ignore
                (call
                   (Site.Q_register
                      { queue = "reply.bug"; registrant = "bug"; stable = true }))
            with _ when n > 0 ->
              Sched.sleep 0.5;
              setup (n - 1)
          in
          setup 60;
          List.iter
            (fun rid ->
              let env =
                Envelope.make ~rid ~client_id:"bug" ~reply_node:"backend"
                  ~reply_queue:"reply.bug" ("pay:" ^ rid)
              in
              (* THE BUG: no registration tag on the Send, so the QM cannot
                 suppress duplicates, and the retry below re-Sends the same
                 rid without checking whether the first copy survived. *)
              let blind_send () =
                try
                  ignore
                    (call
                       (Site.Q_enqueue
                          {
                            registrant = "bug";
                            queue = "req";
                            tag = None;
                            props = Envelope.props env;
                            priority = 0;
                            body = Envelope.to_string env;
                          }))
                with e when Rrq_util.Swallow.nonfatal e -> ()
              in
              blind_send ();
              let deadline = Sched.clock () +. 12.0 in
              let rec recv () =
                let got =
                  match
                    call ~timeout:2.5
                      (Site.Q_dequeue
                         {
                           registrant = "bug";
                           queue = "reply.bug";
                           tag = None;
                           filter = None;
                           timeout = Some 1.0;
                         })
                  with
                  | Site.R_element (Some _) -> true
                  | _ -> false
                  | exception e when Rrq_util.Swallow.nonfatal e -> false
                in
                if got then incr replies
                else if Sched.clock () < deadline then begin
                  blind_send ();
                  Sched.sleep 0.1;
                  recv ()
                end
              in
              recv ();
              Sched.sleep 0.6)
            buggy_rids;
          Sched.sleep 20.0;
          (Audit.run (standard_auditors site buggy_rids), Sched.clock ()))
  in
  {
    findings;
    trace = Sched.trace sched;
    trace_truncated = Sched.trace_truncated sched;
    requests = buggy_reqs;
    replies = !replies;
    virtual_time = vt;
  }

let buggy_clerk =
  {
    name = "buggy";
    profile = quickstart_profile;
    run = (fun ?policy plan -> run_buggy ?policy plan);
  }

(* ---- registry ----------------------------------------------------------- *)

let all =
  [ quickstart; quickstart_mm; ha; ha_lagged; sharded; sharded_buggy; buggy_clerk ]

let by_name n = List.find_opt (fun t -> t.name = n) all

let run ?policy t plan = t.run ?policy plan

(* ---- recorded runs ------------------------------------------------------ *)

type recorded = {
  rec_outcome : outcome;
  rec_metrics : Rrq_obs.Metrics.snapshot;
  rec_trace : string;
}

let run_recorded ?policy ?(trace_capacity = 262144) t plan =
  Rrq_obs.reset ~trace_capacity ();
  Fun.protect ~finally:Rrq_obs.disable (fun () ->
      let o = run ?policy t plan in
      (* The trace auditor runs while the session is still enabled, so it
         can see the events; its findings join the scenario's own. *)
      let extra = Audit.run [ Audit.exactly_once_trace () ] in
      {
        rec_outcome = { o with findings = o.findings @ extra };
        rec_metrics = Rrq_obs.Metrics.snapshot ();
        rec_trace = Rrq_obs.Trace.dump_jsonl ();
      })
