(** Schedule exploration: run a scenario under many deterministically-derived
    fault plans and scheduling policies; on failure, shrink the plan to a
    minimal still-failing repro. *)

type failure = {
  plan : Plan.t;  (** The plan that first failed. *)
  outcome : Scenario.outcome;
  shrunk : Plan.t option;  (** Smaller still-failing plan, if any. *)
  shrink_runs : int;
}

type report = {
  scenario : string;
  explored : int;
  passed : int;
  failure : failure option;
}

val plan_of_index : Scenario.t -> seed:int -> int -> Plan.t
(** The i-th plan of an exploration: a pure function of (seed, i), so any
    point of a run can be regenerated without replaying the whole sweep. *)

val run :
  ?budget:int -> ?seed:int -> ?shrink_failures:bool -> Scenario.t -> report
(** Explore up to [budget] (default 200) plans from [seed] (default 1),
    stopping at the first failure, which is then shrunk. *)

val shrink : ?max_runs:int -> Scenario.t -> Plan.t -> Plan.t option * int
(** Minimize a failing plan: drop faults to a fixpoint, then try replacing a
    randomized policy with FIFO. Returns the smaller still-failing plan (or
    [None] if already minimal) and how many runs were spent (≤ [max_runs],
    default 60). *)

val minimal_plan : failure -> Plan.t

val repro_line : string -> Plan.t -> string
(** Copy-pastable [rrq_demo check --scenario <name> --replay '<plan>']. *)

val failure_to_string : scenario:string -> failure -> string
val report_to_string : report -> string
