(* Crash-point enumeration, generalizing the hand-rolled loops of the
   crash-point and group-commit tests:

   - [disk_sweep]: the durability-boundary sweep — count the sync
     operations of a clean run, then re-run the workload once per boundary
     with the disk frozen exactly there and audit recovery;
   - [crash_sites]: the named-crash-site sweep — probe which
     [Rrq_sim.Crashpoint] sites a scenario reaches (and how often), then
     visit every (site, hit) combination. *)

module Disk = Rrq_storage.Disk
module Crashpoint = Rrq_sim.Crashpoint

let run_fiber f = Runner.run_scenario (fun _s () -> f ())

let disk_sweep ~make ~workload ~audit () =
  (* Clean run: count the durability boundaries and audit the no-crash
     outcome (point 0). *)
  let total =
    run_fiber (fun () ->
        let disk = make 0 in
        workload disk;
        let n = Disk.sync_count disk in
        Disk.crash disk;
        Disk.revive disk;
        audit ~point:0 disk;
        n)
  in
  (* The sweep: freeze the disk at every sync boundary, recover, audit. *)
  for point = 1 to total do
    run_fiber (fun () ->
        let disk = make point in
        Disk.kill_after_syncs disk point;
        workload disk;
        Disk.revive disk;
        audit ~point disk)
  done;
  total

let crash_sites ?(only = fun _ -> true) ~probe ~at () =
  let counts =
    Crashpoint.reset ();
    Fun.protect ~finally:Crashpoint.disable (fun () ->
        probe ();
        Crashpoint.hit_counts ())
  in
  let visited =
    List.filter (fun (site, _) -> only site) counts
  in
  List.iter
    (fun (site, n) ->
      for hit = 1 to n do
        at ~site ~hit
      done)
    visited;
  visited
