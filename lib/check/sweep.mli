(** Crash-point enumerators: exhaustively crash a workload at every
    durability boundary or at every named crash site, instead of at a few
    hand-picked points. *)

val disk_sweep :
  make:(int -> Rrq_storage.Disk.t) ->
  workload:(Rrq_storage.Disk.t -> unit) ->
  audit:(point:int -> Rrq_storage.Disk.t -> unit) ->
  unit ->
  int
(** Run [workload (make 0)] once cleanly to count its sync operations and
    audit the crash-free outcome, then for every boundary [p] in
    [1..total]: build a fresh disk, arm [Disk.kill_after_syncs p], run the
    workload (the disk freezes at boundary [p]), revive and [audit ~point:p].
    Each run executes inside its own simulation fiber. Returns the number
    of boundaries swept. *)

val crash_sites :
  ?only:(string -> bool) ->
  probe:(unit -> unit) ->
  at:(site:string -> hit:int -> unit) ->
  unit ->
  (string * int) list
(** Enumerate named crash sites ({!Rrq_sim.Crashpoint}): run [probe] once
    with the registry counting to learn which sites are reached and how
    often, then call [at] for every (site, hit) combination (sites filtered
    by [only]). [at] is expected to re-run the scenario with a crash armed
    at that combination and assert its own invariants. Returns the probed
    (site, hits) list. *)
