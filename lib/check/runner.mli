(** Scenario driver shared by the experiment harness and the simulation
    tester: builds a world, runs it to quiescence, fails loudly if any fiber
    died or the driver deadlocked. *)

exception Scenario_failure of string
(** A fiber raised, or the driver never completed. *)

val run_scenario_traced :
  ?policy:Rrq_sim.Sched.policy -> ?trace_limit:int ->
  (Rrq_sim.Sched.t -> unit -> 'a) -> 'a * Rrq_sim.Sched.t
(** [f sched] runs during setup (outside any fiber) and returns the driver,
    which then runs as the root fiber. Returns the driver's result and the
    quiesced scheduler (for its decision trace).
    @raise Scenario_failure *)

val run_scenario : ?policy:Rrq_sim.Sched.policy -> (Rrq_sim.Sched.t -> unit -> 'a) -> 'a

val await : ?timeout:float -> ?poll:float -> (unit -> bool) -> bool
(** Poll a predicate from inside a fiber until it holds (default poll 0.1,
    timeout 300 virtual seconds); returns whether it held. *)
