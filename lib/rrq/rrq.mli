(** Umbrella module: one [open Rrq] (or [Rrq.] prefix) reaches the whole
    library with the names used throughout the documentation. The
    fine-grained libraries ([rrq_core], [rrq_qm], ...) remain available for
    selective linking. This interface is the library's public facade: what
    is not re-exported here is internal. *)

(** {1 Simulation substrate} *)

module Sched = Rrq_sim.Sched
module Crashpoint = Rrq_sim.Crashpoint
module Chan = Rrq_sim.Chan
module Ivar = Rrq_sim.Ivar
module Cond = Rrq_sim.Cond

(** {1 Storage and logging} *)

module Disk = Rrq_storage.Disk
module Wal = Rrq_wal.Wal

(** {1 Transactions} *)

module Txid = Rrq_txn.Txid
module Lock = Rrq_txn.Lock
module Tm = Rrq_txn.Tm
module Kvdb = Rrq_kvdb.Kvdb

(** {1 The queue manager} *)

module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter

(** {1 Network} *)

module Net = Rrq_net.Net

(** {1 The paper's request-management protocols} *)

module Site = Rrq_core.Site
module Envelope = Rrq_core.Envelope
module Tag = Rrq_core.Tag
module Clerk = Rrq_core.Clerk
module Client_fsm = Rrq_core.Client_fsm
module Session = Rrq_core.Session
module Server = Rrq_core.Server
module Pipeline = Rrq_core.Pipeline
module Interactive = Rrq_core.Interactive
module Forwarder = Rrq_core.Forwarder
module Autoscale = Rrq_core.Autoscale
module Replica = Rrq_core.Replica
module Stream_clerk = Rrq_core.Stream_clerk

(** {1 Observability} *)

module Obs = Rrq_obs

(** {1 Deterministic simulation testing} *)

module Audit = Rrq_check.Audit
module Plan = Rrq_check.Plan
module Scenario = Rrq_check.Scenario
module Explore = Rrq_check.Explore
module Sweep = Rrq_check.Sweep

(** {1 Baselines and utilities} *)

module Plain = Rrq_baseline.Plain
module Held_txn = Rrq_baseline.Held_txn
module Rng = Rrq_util.Rng
module Swallow = Rrq_util.Swallow
module Histogram = Rrq_util.Histogram
module Table = Rrq_util.Table
