module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched
module Site = Rrq_core.Site

type Net.payload +=
  | P_request of { rid : string; body : string }
  | P_reply of string

let install_server site ~service handler =
  Site.on_boot site (fun site ->
      Net.add_service (Site.node site) service (fun msg ->
          match msg with
          | P_request { rid; body } ->
            let reply =
              Site.with_txn site (fun txn -> handler site txn ~rid body)
            in
            P_reply reply
          | _ -> raise (Invalid_argument "plain server: unexpected message")))

let call_at_most_once client ~dst ~service ~rid ?(timeout = 2.0) body =
  match Net.call client ~timeout ~dst ~service (P_request { rid; body }) with
  | P_reply r -> Some r
  | _ -> None
  | exception (Net.Rpc_timeout | Net.Service_error _) -> None

let call_at_least_once client ~dst ~service ~rid ?(timeout = 2.0)
    ?(attempts = 5) body =
  let rec go n =
    if n >= attempts then None
    else begin
      match call_at_most_once client ~dst ~service ~rid ~timeout body with
      | Some r -> Some r
      | None ->
        Sched.sleep (0.5 *. timeout);
        go (n + 1)
    end
  in
  go 0
