(** Baseline: the one-transaction client design of paper §2.

    The client executes {v send request, receive reply, process reply v}
    inside a single transaction, so database locks are held while the
    reply travels to the client and while the user looks at it ("think
    time"). The paper rejects this design because of the resource
    contention it creates; experiment B2 measures that contention against
    the queued three-transaction design.

    The model: the server runs the request's database work and then keeps
    the transaction open for the client's reply-processing time before
    committing — equivalent lock-hold behavior without simulating the
    client-side transaction plumbing. *)

type Rrq_net.Net.payload +=
  | H_request of { keys : string list; delta : int; hold : float }
  | H_done

val install_server : Rrq_core.Site.t -> service:string -> unit
(** Handler: add [delta] to each integer key, then hold the transaction
    open (locks included) for [hold] seconds before committing. *)

val call :
  Rrq_net.Net.node -> dst:string -> service:string -> keys:string list ->
  delta:int -> hold:float -> bool
(** One end-to-end one-transaction request; false on timeout/failure. *)
