module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched
module Site = Rrq_core.Site
module Kvdb = Rrq_kvdb.Kvdb
module Tm = Rrq_txn.Tm

type Net.payload +=
  | H_request of { keys : string list; delta : int; hold : float }
  | H_done

let install_server site ~service =
  Site.on_boot site (fun site ->
      Net.add_service (Site.node site) service (fun msg ->
          match msg with
          | H_request { keys; delta; hold } ->
            Site.with_txn site (fun txn ->
                let id = Tm.txn_id txn in
                List.iter
                  (fun k -> ignore (Kvdb.add (Site.kv site) id k delta))
                  keys;
                (* Locks stay held while the "client" receives and
                   processes the reply. *)
                Sched.sleep hold);
            H_done
          | _ -> raise (Invalid_argument "held-txn server: unexpected message")))

let call client ~dst ~service ~keys ~delta ~hold =
  match
    Net.call client ~timeout:(hold +. 30.0) ~dst ~service
      (H_request { keys; delta; hold })
  with
  | H_done -> true
  | _ -> false
  | exception (Net.Rpc_timeout | Net.Service_error _) -> false
