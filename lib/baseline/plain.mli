(** Baseline: request/reply with ordinary messages and no queues
    (paper §2's strawman).

    The server still executes each request as a local transaction against
    its database, but the {e flow} of requests and replies is bare RPC: an
    untimely failure loses the request or the reply, and since the client
    cannot tell which, retrying risks duplicate execution while not
    retrying risks losing the request. The experiment harness counts
    exactly these outcomes to quantify what the paper's queued protocol
    buys (EXPERIMENTS.md, E1). *)

type Rrq_net.Net.payload +=
  | P_request of { rid : string; body : string }
  | P_reply of string

val install_server :
  Rrq_core.Site.t -> service:string ->
  (Rrq_core.Site.t -> Rrq_txn.Tm.txn -> rid:string -> string -> string) -> unit
(** Serve [service] on the site: each request body is handled inside a
    fresh local transaction (so the {e database} stays consistent — only
    the request flow is unreliable). Re-installed on site reboot. *)

val call_at_most_once :
  Rrq_net.Net.node -> dst:string -> service:string -> rid:string ->
  ?timeout:float -> string -> string option
(** Fire the request once; [None] if no reply arrives (the request may or
    may not have executed). *)

val call_at_least_once :
  Rrq_net.Net.node -> dst:string -> service:string -> rid:string ->
  ?timeout:float -> ?attempts:int -> string -> string option
(** Retry until a reply arrives or attempts run out. Each retry can
    re-execute a request whose reply was lost: duplicates. *)
