type file_state = {
  fname : string;
  mutable durable : Buffer.t;
  mutable pending : Buffer.t;
  owner : t;
}

and t = {
  dname : string;
  torn_writes : bool;
  rng : Rrq_util.Rng.t option;
  sync_latency : float; (* virtual seconds one flush occupies the device *)
  mutable busy_until : float; (* device free again at this virtual time *)
  files : (string, file_state) Hashtbl.t;
  mutable last_appended : string option;
  mutable synced_bytes : int;
  mutable sync_count : int;
  mutable kill_in : int option; (* crash-point injection countdown *)
  mutable dead : bool;
}

type file = file_state

let create ?(torn_writes = false) ?rng ?(sync_latency = 0.0) dname =
  {
    dname;
    torn_writes;
    rng;
    sync_latency;
    busy_until = 0.0;
    files = Hashtbl.create 16;
    last_appended = None;
    synced_bytes = 0;
    sync_count = 0;
    kill_in = None;
    dead = false;
  }

let name t = t.dname
let sync_latency t = t.sync_latency

(* The device serves one flush at a time: a sync requested at [now] starts
   when the previous one finishes and completes [sync_latency] later. The
   caller (running in a fiber) sleeps for the returned duration before
   issuing the actual [sync] — this is how the simulator charges realistic
   cost per log force without the storage layer depending on the sim. *)
let reserve_sync t ~now =
  let start = Float.max now t.busy_until in
  t.busy_until <- start +. t.sync_latency;
  t.busy_until -. now

let open_file t fname =
  match Hashtbl.find_opt t.files fname with
  | Some f -> f
  | None ->
    let f =
      { fname; durable = Buffer.create 256; pending = Buffer.create 256; owner = t }
    in
    Hashtbl.add t.files fname f;
    f

(* Shared by the public crash and the injected crash-point trigger. *)
let crash_now t =
  let torn_file =
    match (t.torn_writes, t.rng, t.last_appended) with
    | true, Some rng, Some fname when Rrq_util.Rng.bool rng -> Some fname
    | _ -> None
  in
  Hashtbl.iter
    (fun fname f ->
      (match (torn_file, t.rng) with
      | Some tf, Some rng when tf = fname && Buffer.length f.pending > 0 ->
        (* Keep a random prefix of the unsynced tail: a torn block. *)
        let keep = Rrq_util.Rng.int rng (Buffer.length f.pending + 1) in
        let prefix = String.sub (Buffer.contents f.pending) 0 keep in
        Buffer.add_string f.durable prefix
      | _ -> ());
      Buffer.clear f.pending)
    t.files;
  t.last_appended <- None

(* The crash-point countdown: returns false when the pending durability
   action must be suppressed (the disk just died, or died earlier). *)
let allow_durability t =
  if t.dead then false
  else begin
    match t.kill_in with
    | Some n when n <= 1 ->
      t.kill_in <- None;
      t.dead <- true;
      crash_now t;
      false
    | Some n ->
      t.kill_in <- Some (n - 1);
      true
    | None -> true
  end

let append f bytes =
  if not f.owner.dead then begin
    Buffer.add_string f.pending bytes;
    f.owner.last_appended <- Some f.fname
  end

let append_i64 f v =
  if not f.owner.dead then begin
    Buffer.add_int64_le f.pending v;
    f.owner.last_appended <- Some f.fname
  end

let append_sub f buf ~pos ~len =
  if not f.owner.dead then begin
    Buffer.add_subbytes f.pending buf pos len;
    f.owner.last_appended <- Some f.fname
  end

(* Page-granular in-place file: its contents are exactly one page image,
   overwritten on every write. Models disk-resident structures updated in
   place (queue pages) as opposed to the append-only log files — bounded
   size, paid as a full page of copying per update. Neither call counts as
   a log force: crash countdowns ([kill_after_syncs]) tick on [sync] only,
   and a write on a dead disk is lost exactly like an unsynced append. *)
let read_page f page =
  let n = min (Buffer.length f.durable) (Bytes.length page) in
  if n > 0 then Buffer.blit f.durable 0 page 0 n

let write_page f page =
  let t = f.owner in
  if not t.dead then begin
    Buffer.clear f.durable;
    Buffer.add_bytes f.durable page;
    Buffer.clear f.pending;
    t.synced_bytes <- t.synced_bytes + Bytes.length page
  end

let sync f =
  let t = f.owner in
  if allow_durability t then begin
    let n = Buffer.length f.pending in
    if n > 0 then begin
      Buffer.add_buffer f.durable f.pending;
      Buffer.clear f.pending;
      t.synced_bytes <- t.synced_bytes + n
    end;
    t.sync_count <- t.sync_count + 1
  end

let sync_all t = Hashtbl.iter (fun _ f -> sync f) t.files

let read f = Buffer.contents f.durable ^ Buffer.contents f.pending
let read_durable f = Buffer.contents f.durable
let size f = Buffer.length f.durable + Buffer.length f.pending
let durable_size f = Buffer.length f.durable

let replace_atomic t fname contents =
  if allow_durability t then begin
    let f = open_file t fname in
    let fresh = Buffer.create (String.length contents) in
    Buffer.add_string fresh contents;
    f.durable <- fresh;
    Buffer.clear f.pending;
    t.synced_bytes <- t.synced_bytes + String.length contents;
    t.sync_count <- t.sync_count + 1
  end

let read_file t fname =
  match Hashtbl.find_opt t.files fname with
  | None -> None
  | Some f -> Some (read f)

(* Metadata lookup: size without materializing the contents (stat, not
   read). Used by the WAL's live-bytes accounting. *)
let file_size t fname =
  match Hashtbl.find_opt t.files fname with
  | None -> None
  | Some f -> Some (size f)

let delete t fname = if not t.dead then Hashtbl.remove t.files fname
let exists t fname = Hashtbl.mem t.files fname

let list_files t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare

let crash t = crash_now t

let kill_after_syncs t n = t.kill_in <- Some n

(* Immediate freeze: same terminal state as an exhausted [kill_after_syncs]
   countdown — unsynced bytes are gone and nothing persists until [revive].
   Crash actions armed at named crash sites use this so the fiber that
   reached the site cannot leak durable writes before the scheduled node
   crash lands. *)
let kill_now t =
  if not t.dead then begin
    t.kill_in <- None;
    t.dead <- true;
    crash_now t
  end
let revive t =
  t.dead <- false;
  t.kill_in <- None

let is_dead t = t.dead

let synced_bytes t = t.synced_bytes
let sync_count t = t.sync_count

let reset_counters t =
  t.synced_bytes <- 0;
  t.sync_count <- 0
