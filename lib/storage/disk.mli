(** Simulated crash-consistent stable storage.

    A disk holds named append-only files plus atomically-replaceable files
    (used for checkpoints). Appended bytes sit in a volatile buffer until
    [sync]; {!crash} discards everything unsynced. With [torn_writes]
    enabled, a crash may instead retain a prefix of the unsynced tail of the
    file most recently appended to — modeling a partially flushed block —
    which the WAL detects via per-record checksums.

    This is the substitution for real disks: it preserves the property the
    paper's recovery arguments depend on, namely that exactly the
    force-written data survives a failure. *)

type t
(** A disk (one per simulated node). *)

type file
(** Handle to an append-only file on some disk. *)

val create : ?torn_writes:bool -> ?rng:Rrq_util.Rng.t -> string -> t
(** Disk named [name] (for diagnostics). [torn_writes] defaults to false. *)

val name : t -> string

val open_file : t -> string -> file
(** Open (creating if absent) an append-only file. Contents persist across
    re-opens; re-opening returns a handle to the same state. *)

val append : file -> string -> unit
(** Buffer bytes at the end of the file (volatile until [sync]). *)

val sync : file -> unit
(** Force all buffered bytes of this file to durable storage. *)

val sync_all : t -> unit
(** [sync] every file on the disk. *)

val read : file -> string
(** Contents including unsynced bytes (what a live process reads back). *)

val read_durable : file -> string
(** Contents that would survive a crash right now. *)

val size : file -> int
val durable_size : file -> int

val replace_atomic : t -> string -> string -> unit
(** Durably replace the full contents of a (possibly new) file, atomically —
    the write-temp-then-rename idiom used for checkpoints. Counts as one
    sync. *)

val read_file : t -> string -> string option
(** Durable-plus-buffered contents of a named file, if it exists. *)

val delete : t -> string -> unit
(** Durably remove a file (log-segment garbage collection). *)

val exists : t -> string -> bool
val list_files : t -> string list

val crash : t -> unit
(** Drop all unsynced bytes (or keep a torn prefix, see above). Open handles
    remain usable — they model re-opened files after restart. *)

(** {1 Crash-point injection} *)

val kill_after_syncs : t -> int -> unit
(** Arm a crash trigger: after [n] further sync operations are {e about} to
    happen, the disk freezes — the triggering sync does not persist, all
    later writes and syncs are silently ignored (they never become
    durable), and durable contents stay exactly as they were. Used by the
    crash-point sweep tests to stop the world at every possible durability
    boundary. *)

val revive : t -> unit
(** Clear the dead state (the "replacement hardware" for the next
    incarnation); durable contents are untouched. *)

val is_dead : t -> bool

(** {1 Accounting} *)

val synced_bytes : t -> int
(** Total bytes made durable so far. *)

val sync_count : t -> int
(** Number of sync operations (incl. atomic replaces). *)

val reset_counters : t -> unit
