(** Simulated crash-consistent stable storage.

    A disk holds named append-only files plus atomically-replaceable files
    (used for checkpoints). Appended bytes sit in a volatile buffer until
    [sync]; {!crash} discards everything unsynced. With [torn_writes]
    enabled, a crash may instead retain a prefix of the unsynced tail of the
    file most recently appended to — modeling a partially flushed block —
    which the WAL detects via per-record checksums.

    This is the substitution for real disks: it preserves the property the
    paper's recovery arguments depend on, namely that exactly the
    force-written data survives a failure. *)

type t
(** A disk (one per simulated node). *)

type file
(** Handle to an append-only file on some disk. *)

val create :
  ?torn_writes:bool -> ?rng:Rrq_util.Rng.t -> ?sync_latency:float -> string -> t
(** Disk named [name] (for diagnostics). [torn_writes] defaults to false.
    [sync_latency] (default 0.0) is the virtual time one flush occupies the
    device — see {!reserve_sync}. *)

val name : t -> string

(** {1 Latency model}

    The disk itself is synchronous (it must stay usable outside the
    simulator), but it carries a cost model: one flush occupies the device
    for [sync_latency] virtual seconds, and flushes serialize. Fiber code
    that forces the log calls [reserve_sync] with the current virtual time,
    sleeps for the returned duration, then issues the real {!sync} — so
    concurrent committers queue on the device exactly as they would on a
    real WAL disk, which is what makes group commit measurable. *)

val sync_latency : t -> float
(** Configured per-flush device occupancy (0.0 = free syncs). *)

val reserve_sync : t -> now:float -> float
(** Claim the next device slot for a flush requested at virtual time [now];
    returns how long the requester must wait until its flush completes. *)

val open_file : t -> string -> file
(** Open (creating if absent) an append-only file. Contents persist across
    re-opens; re-opening returns a handle to the same state. *)

val append : file -> string -> unit
(** Buffer bytes at the end of the file (volatile until [sync]). *)

val append_i64 : file -> int64 -> unit
(** Buffer one little-endian 64-bit integer ([append] without the
    intermediate string; the WAL framing layer writes headers this way). *)

val append_sub : file -> Bytes.t -> pos:int -> len:int -> unit
(** Buffer [len] bytes of [buf] starting at [pos] ([append] without
    copying through a string; pairs with [Codec.bytes]). *)

val read_page : file -> Bytes.t -> unit
(** Copy the file's durable contents (up to [Bytes.length page]) into
    [page] — the read half of a page-granular read-modify-write. *)

val write_page : file -> Bytes.t -> unit
(** Durably overwrite the file's entire contents with one page image — the
    in-place update a disk-resident structure (e.g. a stable queue page)
    pays per modification, in contrast to the append-only log files. Does
    NOT count as a sync: crash countdowns ({!kill_after_syncs}) tick on
    {!sync} only. On a dead disk the write is silently lost, like any
    unsynced append. *)

val sync : file -> unit
(** Force all buffered bytes of this file to durable storage. *)

val sync_all : t -> unit
(** [sync] every file on the disk. *)

val read : file -> string
(** Contents including unsynced bytes (what a live process reads back). *)

val read_durable : file -> string
(** Contents that would survive a crash right now. *)

val size : file -> int
val durable_size : file -> int

val replace_atomic : t -> string -> string -> unit
(** Durably replace the full contents of a (possibly new) file, atomically —
    the write-temp-then-rename idiom used for checkpoints. Counts as one
    sync. *)

val read_file : t -> string -> string option
(** Durable-plus-buffered contents of a named file, if it exists. *)

val file_size : t -> string -> int option
(** Size (durable + buffered) of a named file without reading its contents
    — the stat-style metadata lookup. *)

val delete : t -> string -> unit
(** Durably remove a file (log-segment garbage collection). *)

val exists : t -> string -> bool
val list_files : t -> string list

val crash : t -> unit
(** Drop all unsynced bytes (or keep a torn prefix, see above). Open handles
    remain usable — they model re-opened files after restart. *)

(** {1 Crash-point injection} *)

val kill_after_syncs : t -> int -> unit
(** Arm a crash trigger: after [n] further sync operations are {e about} to
    happen, the disk freezes — the triggering sync does not persist, all
    later writes and syncs are silently ignored (they never become
    durable), and durable contents stay exactly as they were. Used by the
    crash-point sweep tests to stop the world at every possible durability
    boundary. *)

val kill_now : t -> unit
(** Freeze the disk immediately: unsynced bytes are discarded and every
    later write or sync is silently ignored until {!revive} — the same
    terminal state as a fired {!kill_after_syncs} trigger. Used by crash
    actions armed at named crash sites ([Rrq_sim.Crashpoint]), where the
    fiber that reached the site keeps running until its next suspension
    point and must not produce durable effects in that window. *)

val revive : t -> unit
(** Clear the dead state (the "replacement hardware" for the next
    incarnation); durable contents are untouched. *)

val is_dead : t -> bool

(** {1 Accounting} *)

val synced_bytes : t -> int
(** Total bytes made durable so far. *)

val sync_count : t -> int
(** Number of sync operations (incl. atomic replaces). *)

val reset_counters : t -> unit
