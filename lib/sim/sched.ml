type fiber = {
  fid : int;
  name : string;
  group : string option;
  mutable live : bool;
}

(* Binary min-heap of timers ordered by (time, sequence). *)
module Heap = struct
  type entry = { time : float; seq : int; bg : bool; thunk : unit -> unit }

  type h = { mutable arr : entry array; mutable len : int }

  let dummy = { time = 0.0; seq = 0; bg = false; thunk = (fun () -> ()) }
  let create () = { arr = Array.make 64 dummy; len = 0 }
  let is_empty h = h.len = 0
  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h.arr.(!i) h.arr.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.arr.(p) in
      h.arr.(p) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.len > 0);
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- dummy;
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
      if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let tmp = h.arr.(!smallest) in
        h.arr.(!smallest) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    top

  let peek_time h =
    assert (h.len > 0);
    h.arr.(0).time
end

type t = {
  mutable vnow : float;
  ready : (unit -> unit) Queue.t;
  timers : Heap.h;
  mutable fg_timers : int; (* non-background timers still in the heap *)
  mutable seq : int;
  mutable next_fid : int;
  mutable fiber_table : fiber list;
  mutable errors : (string * exn) list;
}

let create () =
  {
    vnow = 0.0;
    ready = Queue.create ();
    timers = Heap.create ();
    fg_timers = 0;
    seq = 0;
    next_fid = 0;
    fiber_table = [];
    errors = [];
  }

let now t = t.vnow

let at ?(background = false) t time thunk =
  t.seq <- t.seq + 1;
  if not background then t.fg_timers <- t.fg_timers + 1;
  Heap.push t.timers
    { time = Float.max time t.vnow; seq = t.seq; bg = background; thunk }

let push_ready t thunk = Queue.push thunk t.ready

type 'a waker = {
  mutable used : bool;
  wfiber : fiber;
  wk : ('a, unit) Effect.Deep.continuation;
  wsched : t;
}

let waker_live w = (not w.used) && w.wfiber.live

let wake w v =
  if w.used then false
  else begin
    w.used <- true;
    if w.wfiber.live then begin
      push_ready w.wsched (fun () ->
          if w.wfiber.live then Effect.Deep.continue w.wk v);
      true
    end
    else false
  end

type _ Effect.t +=
  | Suspend : (t -> 'a waker -> unit) -> 'a Effect.t
  | Fork : (string option * (unit -> unit)) -> fiber Effect.t
  | Clock : float Effect.t
  | Self : fiber Effect.t

let clock () = Effect.perform Clock
let self () = Effect.perform Self

(* Whether the caller runs inside a fiber (so blocking primitives work).
   Library code that is also usable outside the simulator — the group-commit
   force path — uses this to fall back to synchronous behavior. *)
let in_fiber () =
  match Effect.perform Self with
  | (_ : fiber) -> true
  | exception Effect.Unhandled _ -> false
let suspend register = Effect.perform (Suspend register)

let sleep d =
  suspend (fun sched w -> at sched (sched.vnow +. d) (fun () -> ignore (wake w ())))

(* Background sleep: daemons (janitors, resolvers, redelivery retries) use
   this so an otherwise-quiescent simulation can terminate. *)
let sleep_background d =
  suspend (fun sched w ->
      at ~background:true sched (sched.vnow +. d) (fun () -> ignore (wake w ())))

let yield () =
  suspend (fun sched w -> push_ready sched (fun () -> ignore (wake w ())))

let rec spawn t ?group ~name body =
  t.next_fid <- t.next_fid + 1;
  let fib = { fid = t.next_fid; name; group; live = true } in
  t.fiber_table <- fib :: t.fiber_table;
  push_ready t (fun () -> if fib.live then start t fib body);
  fib

and start t fib body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> fib.live <- false);
      exnc =
        (fun e ->
          fib.live <- false;
          t.errors <- (fib.name, e) :: t.errors);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, _) continuation) ->
                let w = { used = false; wfiber = fib; wk = k; wsched = t } in
                register t w)
          | Fork (name, child_body) ->
            Some
              (fun (k : (a, _) continuation) ->
                let child_name =
                  match name with
                  | Some n -> n
                  | None -> fib.name ^ "/" ^ string_of_int (t.next_fid + 1)
                in
                let child = spawn t ?group:fib.group ~name:child_name child_body in
                continue k child)
          | Clock -> Some (fun (k : (a, _) continuation) -> continue k t.vnow)
          | Self -> Some (fun (k : (a, _) continuation) -> continue k fib)
          | _ -> None);
    }

let fork ?name body = Effect.perform (Fork (name, body))

let kill _t fib = fib.live <- false

let kill_group t group =
  List.iter
    (fun fib -> if fib.live && fib.group = Some group then fib.live <- false)
    t.fiber_table

let alive fib = fib.live
let fiber_name fib = fib.name
let fiber_group fib = fib.group

let live_fibers t =
  List.rev_map (fun f -> f.name) (List.filter (fun f -> f.live) t.fiber_table)

let failures t = List.rev t.errors

let run ?(max_steps = 50_000_000) t =
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if not (Queue.is_empty t.ready) then begin
      incr steps;
      if !steps > max_steps then failwith "Sched.run: step limit exceeded (livelock?)";
      let thunk = Queue.pop t.ready in
      thunk ()
    end
    else if (not (Heap.is_empty t.timers)) && t.fg_timers > 0 then begin
      t.vnow <- Float.max t.vnow (Heap.peek_time t.timers);
      let e = Heap.pop t.timers in
      if not e.Heap.bg then t.fg_timers <- t.fg_timers - 1;
      incr steps;
      if !steps > max_steps then failwith "Sched.run: step limit exceeded (livelock?)";
      e.Heap.thunk ()
    end
    else continue_ := false
  done
