type fiber = {
  fid : int;
  name : string;
  group : string option;
  mutable live : bool;
}

(* Binary min-heap of timers ordered by (time, sequence). *)
module Heap = struct
  type entry = { time : float; seq : int; bg : bool; thunk : unit -> unit }

  type h = { mutable arr : entry array; mutable len : int }

  let dummy = { time = 0.0; seq = 0; bg = false; thunk = (fun () -> ()) }
  let create () = { arr = Array.make 64 dummy; len = 0 }
  let is_empty h = h.len = 0
  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h.arr.(!i) h.arr.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.arr.(p) in
      h.arr.(p) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.len > 0);
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- dummy;
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
      if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let tmp = h.arr.(!smallest) in
        h.arr.(!smallest) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    top

  let peek_time h =
    assert (h.len > 0);
    h.arr.(0).time
end

(* Ready set: an indexable queue so a scheduling policy can pick any entry,
   not just the head. [take 0] (the FIFO fast path) is O(1); removing from
   the middle shifts the tail, which is fine because ready sets are small. *)
module Ready = struct
  type entry = { prio : int; rthunk : unit -> unit }

  type q = { mutable arr : entry array; mutable head : int; mutable len : int }

  let dummy = { prio = 0; rthunk = (fun () -> ()) }
  let create () = { arr = Array.make 64 dummy; head = 0; len = 0 }
  let length q = q.len

  let push q prio rthunk =
    if q.head + q.len = Array.length q.arr then begin
      let cap = Array.length q.arr in
      let newcap = if 2 * q.len > cap then 2 * cap else cap in
      let dst = Array.make newcap dummy in
      Array.blit q.arr q.head dst 0 q.len;
      q.arr <- dst;
      q.head <- 0
    end;
    q.arr.(q.head + q.len) <- { prio; rthunk };
    q.len <- q.len + 1

  (* Index (relative to the head) of the maximum-priority entry; ties go to
     the oldest, so equal priorities degrade to FIFO. *)
  let argmax_prio q =
    let best = ref 0 in
    for i = 1 to q.len - 1 do
      if q.arr.(q.head + i).prio > q.arr.(q.head + !best).prio then best := i
    done;
    !best

  let take q i =
    assert (i >= 0 && i < q.len);
    let e = q.arr.(q.head + i) in
    if i = 0 then begin
      q.arr.(q.head) <- dummy;
      q.head <- q.head + 1
    end
    else begin
      for j = q.head + i to q.head + q.len - 2 do
        q.arr.(j) <- q.arr.(j + 1)
      done;
      q.arr.(q.head + q.len - 1) <- dummy
    end;
    q.len <- q.len - 1;
    if q.len = 0 then q.head <- 0;
    e.rthunk
end

type decision = Pick of int | Timer_fired of int | Fault of string

type policy =
  | Fifo
  | Random_priority of int
  | Replay of decision array

(* Picks and timer firings are stored as one int each: [Pick i] as [2i],
   [Timer_fired seq] as [2*seq+1]. Faults carry a string and are rare, so
   they live in a side list keyed by their position in the decision
   sequence. *)
let enc_pick i = i lsl 1
let enc_timer seq = (seq lsl 1) lor 1

let dec code = if code land 1 = 0 then Pick (code lsr 1) else Timer_fired (code lsr 1)

let decision_to_string = function
  | Pick i -> "p" ^ string_of_int i
  | Timer_fired s -> "t" ^ string_of_int s
  | Fault l -> "f:" ^ l

let decision_of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Sched.decision_of_string: empty"
  else if s.[0] = 'p' then Pick (int_of_string (String.sub s 1 (n - 1)))
  else if s.[0] = 't' then Timer_fired (int_of_string (String.sub s 1 (n - 1)))
  else if n >= 2 && s.[0] = 'f' && s.[1] = ':' then Fault (String.sub s 2 (n - 2))
  else invalid_arg ("Sched.decision_of_string: " ^ s)

let trace_to_string ds =
  String.concat ";" (Array.to_list (Array.map decision_to_string ds))

let trace_of_string s =
  if s = "" then [||]
  else Array.of_list (List.map decision_of_string (String.split_on_char ';' s))

let recent_size = 24

type t = {
  mutable vnow : float;
  ready : Ready.q;
  timers : Heap.h;
  mutable fg_timers : int; (* non-background timers still in the heap *)
  mutable seq : int;
  mutable next_fid : int;
  mutable fiber_table : fiber list;
  mutable errors : (string * exn) list;
  pol : policy;
  prng : Rrq_util.Rng.t option; (* priority source for Random_priority *)
  mutable replay_pos : int; (* cursor into the Replay decision array *)
  (* Decision trace: encoded picks/timer firings up to [tr_limit], plus a
     side list of injected faults. [n_decisions] counts past the limit so
     truncation is detectable; [recent] is a ring of the last few encoded
     decisions for livelock diagnostics. *)
  mutable tr : int array;
  mutable tr_len : int;
  tr_limit : int;
  mutable n_decisions : int;
  mutable faults : (int * string) list; (* (position, label), newest first *)
  recent : int array;
  mutable recent_n : int;
}

let create ?(policy = Fifo) ?(trace_limit = 1_000_000) () =
  {
    vnow = 0.0;
    ready = Ready.create ();
    timers = Heap.create ();
    fg_timers = 0;
    seq = 0;
    next_fid = 0;
    fiber_table = [];
    errors = [];
    pol = policy;
    prng =
      (match policy with
      | Random_priority seed -> Some (Rrq_util.Rng.create seed)
      | Fifo | Replay _ -> None);
    replay_pos = 0;
    tr = [||];
    tr_len = 0;
    tr_limit = max 0 trace_limit;
    n_decisions = 0;
    faults = [];
    recent = Array.make recent_size (-1);
    recent_n = 0;
  }

let now t = t.vnow

let record t code =
  if t.tr_len < t.tr_limit then begin
    if t.tr_len = Array.length t.tr then begin
      let bigger = Array.make (max 256 (2 * t.tr_len)) 0 in
      Array.blit t.tr 0 bigger 0 t.tr_len;
      t.tr <- bigger
    end;
    t.tr.(t.tr_len) <- code;
    t.tr_len <- t.tr_len + 1
  end;
  t.recent.(t.n_decisions mod recent_size) <- code;
  t.recent_n <- min recent_size (t.recent_n + 1);
  t.n_decisions <- t.n_decisions + 1

let note_fault t label = t.faults <- (t.n_decisions, label) :: t.faults

(* Decisions in order, with each fault note spliced in at the position it
   was injected (faults recorded at position [p] precede the p-th pick). *)
let trace t =
  let faults = ref (List.rev t.faults) in
  let acc = ref [] in
  let splice_up_to pos =
    let continue_ = ref true in
    while !continue_ do
      match !faults with
      | (p, l) :: rest when p <= pos ->
        faults := rest;
        acc := Fault l :: !acc
      | _ -> continue_ := false
    done
  in
  for i = 0 to t.tr_len - 1 do
    splice_up_to i;
    acc := dec t.tr.(i) :: !acc
  done;
  splice_up_to max_int;
  Array.of_list (List.rev !acc)

let trace_truncated t = t.n_decisions > t.tr_len

let recent_decisions t =
  let n = t.recent_n in
  List.init n (fun i ->
      dec t.recent.((t.n_decisions - n + i) mod recent_size))

let at ?(background = false) t time thunk =
  t.seq <- t.seq + 1;
  if not background then t.fg_timers <- t.fg_timers + 1;
  Heap.push t.timers
    { time = Float.max time t.vnow; seq = t.seq; bg = background; thunk }

let push_ready t thunk =
  let prio = match t.prng with Some rng -> Rrq_util.Rng.int rng 1_000_000 | None -> 0 in
  Ready.push t.ready prio thunk

type 'a waker = {
  mutable used : bool;
  wfiber : fiber;
  wk : ('a, unit) Effect.Deep.continuation;
  wsched : t;
}

let waker_live w = (not w.used) && w.wfiber.live

let wake w v =
  if w.used then false
  else begin
    w.used <- true;
    if w.wfiber.live then begin
      push_ready w.wsched (fun () ->
          if w.wfiber.live then Effect.Deep.continue w.wk v);
      true
    end
    else false
  end

type _ Effect.t +=
  | Suspend : (t -> 'a waker -> unit) -> 'a Effect.t
  | Fork : (string option * (unit -> unit)) -> fiber Effect.t
  | Clock : float Effect.t
  | Self : fiber Effect.t

let clock () = Effect.perform Clock
let self () = Effect.perform Self

(* Whether the caller runs inside a fiber (so blocking primitives work).
   Library code that is also usable outside the simulator — the group-commit
   force path — uses this to fall back to synchronous behavior. *)
let in_fiber () =
  match Effect.perform Self with
  | (_ : fiber) -> true
  | exception Effect.Unhandled _ -> false
let suspend register = Effect.perform (Suspend register)

let sleep d =
  suspend (fun sched w -> at sched (sched.vnow +. d) (fun () -> ignore (wake w ())))

(* Background sleep: daemons (janitors, resolvers, redelivery retries) use
   this so an otherwise-quiescent simulation can terminate. *)
let sleep_background d =
  suspend (fun sched w ->
      at ~background:true sched (sched.vnow +. d) (fun () -> ignore (wake w ())))

let yield () =
  suspend (fun sched w -> push_ready sched (fun () -> ignore (wake w ())))

let rec spawn t ?group ~name body =
  t.next_fid <- t.next_fid + 1;
  let fib = { fid = t.next_fid; name; group; live = true } in
  t.fiber_table <- fib :: t.fiber_table;
  push_ready t (fun () -> if fib.live then start t fib body);
  fib

and start t fib body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> fib.live <- false);
      exnc =
        (fun e ->
          fib.live <- false;
          (* An injected crash is a kill, not a program failure: the fiber
             unwound exactly as a crashed process disappears. *)
          match e with
          | Crashpoint.Crash -> ()
          | e -> t.errors <- (fib.name, e) :: t.errors);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, _) continuation) ->
                let w = { used = false; wfiber = fib; wk = k; wsched = t } in
                register t w)
          | Fork (name, child_body) ->
            Some
              (fun (k : (a, _) continuation) ->
                let child_name =
                  match name with
                  | Some n -> n
                  | None -> fib.name ^ "/" ^ string_of_int (t.next_fid + 1)
                in
                let child = spawn t ?group:fib.group ~name:child_name child_body in
                continue k child)
          | Clock -> Some (fun (k : (a, _) continuation) -> continue k t.vnow)
          | Self -> Some (fun (k : (a, _) continuation) -> continue k fib)
          | _ -> None);
    }

let fork ?name body = Effect.perform (Fork (name, body))

let kill _t fib = fib.live <- false

let kill_group t group =
  List.iter
    (fun fib -> if fib.live && fib.group = Some group then fib.live <- false)
    t.fiber_table

let alive fib = fib.live
let fiber_name fib = fib.name
let fiber_group fib = fib.group

let live_fibers t =
  List.rev_map (fun f -> f.name) (List.filter (fun f -> f.live) t.fiber_table)

let failures t = List.rev t.errors

(* The next recorded pick of a replayed trace; non-pick entries (timer
   firings, fault notes) are informational and skipped. A divergent or
   exhausted trace degrades to FIFO rather than failing, so a replay of a
   slightly-stale trace still runs to completion. *)
let replay_pick t arr n =
  let rec go () =
    if t.replay_pos >= Array.length arr then 0
    else begin
      let d = arr.(t.replay_pos) in
      t.replay_pos <- t.replay_pos + 1;
      match d with
      | Pick i -> if i < n then i else 0
      | Timer_fired _ | Fault _ -> go ()
    end
  in
  go ()

let pick_index t n =
  match t.pol with
  | Fifo -> 0
  | Random_priority _ -> Ready.argmax_prio t.ready
  | Replay arr -> replay_pick t arr n

let limit_failure t =
  let live = live_fibers t in
  let shown, more =
    let rec split n acc = function
      | [] -> (List.rev acc, 0)
      | rest when n = 0 -> (List.rev acc, List.length rest)
      | x :: rest -> split (n - 1) (x :: acc) rest
    in
    split 20 [] live
  in
  let live_s =
    String.concat ", " shown
    ^ if more > 0 then Printf.sprintf ", ...(+%d more)" more else ""
  in
  let recent_s =
    String.concat " " (List.map decision_to_string (recent_decisions t))
  in
  Printf.sprintf
    "Sched.run: step limit exceeded (livelock?) at t=%.3f; %d live fibers: \
     [%s]; last %d decisions: %s"
    t.vnow (List.length live) live_s (List.length (recent_decisions t)) recent_s

let run ?(max_steps = 50_000_000) t =
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let n = Ready.length t.ready in
    if n > 0 then begin
      incr steps;
      if !steps > max_steps then failwith (limit_failure t);
      let i = pick_index t n in
      record t (enc_pick i);
      let thunk = Ready.take t.ready i in
      thunk ()
    end
    else if (not (Heap.is_empty t.timers)) && t.fg_timers > 0 then begin
      t.vnow <- Float.max t.vnow (Heap.peek_time t.timers);
      let e = Heap.pop t.timers in
      if not e.Heap.bg then t.fg_timers <- t.fg_timers - 1;
      incr steps;
      if !steps > max_steps then failwith (limit_failure t);
      record t (enc_timer e.Heap.seq);
      e.Heap.thunk ()
    end
    else continue_ := false
  done
