(** Named crash sites (FoundationDB-BUGGIFY style).

    Recovery-relevant boundaries in the library — WAL sync boundaries, 2PC
    decision points, clerk and server protocol steps — are marked once with
    {!reach}. A crash-point enumerator (see [Rrq_check.Sweep]) then probes a
    clean run to learn which sites exist and how often each is hit, and
    re-runs the scenario with a crash armed at every (site, hit) pair —
    systematic crash coverage that follows the code instead of hand-written
    sweep loops.

    The registry is process-global and {b disabled by default}: outside a
    sweep, [reach] is a single branch on a false flag. Scenarios under the
    deterministic scheduler run one at a time, so global state is safe. *)

exception Crash
(** Raised by crash actions (via {!crash}) to unwind the fiber that reached
    the armed site, instead of letting it run on to its next suspension
    point with a dead disk. The scheduler treats a fiber that dies with
    [Crash] as killed, not as failed ({!Sched.failures} stays empty), and
    [Rrq_util.Swallow] treats it as fatal, so no [Swallow]-disciplined
    handler can convert an injected crash into a wrong protocol outcome
    (rrq_lint rule R1 forbids the undisciplined handlers that could). *)

val crash : unit -> 'a
(** [raise Crash], for use at the end of an armed crash action that runs in
    the reaching fiber (freeze durability first, e.g. [Disk.kill_now]). *)

val reach : string -> unit
(** Mark that execution passed the named crash site. No-op unless the
    registry is enabled; when enabled, counts the hit and fires the armed
    crash action if this is exactly the armed (site, hit). Site names should
    be stable and include the component instance (e.g.
    ["wal.sync:node.tmlog"]), so multi-node scenarios stay distinguishable. *)

val reset : unit -> unit
(** Enable the registry and clear all counts and any armed action. Call at
    the start of every probe or sweep run. *)

val disable : unit -> unit
(** Turn the registry back off (and clear it). Always pair with {!reset} —
    e.g. via [Fun.protect] — so unrelated tests are unaffected. *)

val enabled : unit -> bool

val arm : site:string -> hit:int -> (unit -> unit) -> unit
(** Arm a one-shot crash action to fire when [site] is reached for the
    [hit]-th time ([hit] counts from 1) after the enclosing {!reset}. The
    action runs synchronously at the site, in whatever fiber reached it: it
    must not block, and it should freeze durability first (e.g.
    [Disk.kill_now]) if it models a crash, because the reaching fiber keeps
    executing until its next suspension point.
    @raise Invalid_argument if the registry is disabled or [hit < 1]. *)

val armed : unit -> (string * int) option
(** The armed (site, hit), if the action has not fired yet. *)

val hits : string -> int
(** Hits recorded for a site since the last {!reset} (0 if never reached). *)

val hit_counts : unit -> (string * int) list
(** All sites reached since the last {!reset}, with hit counts, sorted. *)
