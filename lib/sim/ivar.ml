type 'a t = {
  mutable value : 'a option;
  mutable readers : 'a option Sched.waker list;
}

let create () = { value = None; readers = [] }

let fill t v =
  match t.value with
  | Some _ -> ()
  | None ->
    t.value <- Some v;
    let readers = t.readers in
    t.readers <- [];
    List.iter (fun w -> ignore (Sched.wake w (Some v))) readers

let is_filled t = t.value <> None

let read t =
  match t.value with
  | Some v -> v
  | None -> begin
    match Sched.suspend (fun _ w -> t.readers <- w :: t.readers) with
    | Some v -> v
    | None -> assert false
  end

let read_timeout t d =
  match t.value with
  | Some v -> Some v
  | None ->
    Sched.suspend (fun sched w ->
        t.readers <- w :: t.readers;
        Sched.at sched (Sched.now sched +. d) (fun () ->
            ignore (Sched.wake w None)))
