(** Unbounded FIFO channels between fibers.

    [send] never blocks. [recv] blocks until a value is available. A value
    handed to a waiter whose fiber has died is re-offered to the next waiter
    (or queued), so crashes of receivers do not silently eat messages that
    were never delivered to them. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Deliver to the oldest live waiter, or queue the value. *)

val recv : 'a t -> 'a
(** Block until a value arrives (FIFO among waiters). *)

val recv_timeout : 'a t -> float -> 'a option
(** Like [recv] but gives up after the virtual duration, returning [None]. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val length : 'a t -> int
(** Number of queued (undelivered) values. *)

val clear : 'a t -> unit
(** Drop all queued values (used when a node's volatile state is lost). *)
