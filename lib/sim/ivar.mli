(** Write-once synchronization cells (futures).

    Used for RPC replies: the caller blocks on [read], the transport fills
    the cell when (if) the response message arrives. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers. Subsequent fills are ignored (a
    duplicated response message must not crash the caller). *)

val is_filled : 'a t -> bool

val read : 'a t -> 'a
(** Block until filled. *)

val read_timeout : 'a t -> float -> 'a option
(** Block until filled or the virtual duration elapses. *)
