type 'a t = {
  values : 'a Queue.t;
  waiters : 'a option Sched.waker Queue.t;
}

let create () = { values = Queue.create (); waiters = Queue.create () }

let rec send t v =
  if Queue.is_empty t.waiters then Queue.push v t.values
  else begin
    let w = Queue.pop t.waiters in
    (* A dead or timed-out waiter refuses delivery; re-offer the value. *)
    if not (Sched.wake w (Some v)) then send t v
  end

let recv t =
  match Queue.take_opt t.values with
  | Some v -> v
  | None -> begin
    match Sched.suspend (fun _sched w -> Queue.push w t.waiters) with
    | Some v -> v
    | None -> assert false (* no timer was armed for this waker *)
  end

let recv_timeout t d =
  match Queue.take_opt t.values with
  | Some v -> Some v
  | None ->
    Sched.suspend (fun sched w ->
        Queue.push w t.waiters;
        Sched.at sched (Sched.now sched +. d) (fun () ->
            ignore (Sched.wake w None)))

let try_recv t = Queue.take_opt t.values
let length t = Queue.length t.values
let clear t = Queue.clear t.values
