(** Condition variables for fibers.

    Standard wait/signal/broadcast, used for the QM's blocking dequeue
    ("notify locks", paper §10) and the lock manager's wait queues.

    There is no associated mutex: fibers are cooperative, so the check of
    the guarded predicate and the call to [wait] cannot be interleaved with
    another fiber. As with any condition variable, waiters must re-check
    their predicate in a loop. *)

type t

val create : unit -> t

val wait : t -> unit
(** Block until signalled. *)

val wait_timeout : t -> float -> bool
(** Block until signalled ([true]) or until the duration elapses
    ([false]). *)

val wait_any : ?timeout:float -> t list -> bool
(** Block until any of the conditions is signalled ([true]) or the optional
    timeout elapses ([false]). Used to wait on several queues at once
    (queue sets). *)

val signal : t -> unit
(** Wake one live waiter, if any. *)

val broadcast : t -> unit
(** Wake all current waiters. *)

val waiters : t -> int
(** Number of fibers currently able to be woken. *)
