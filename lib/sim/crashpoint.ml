(* Named crash sites, FoundationDB-BUGGIFY style. Library code marks the
   boundaries where a crash is interesting (a WAL force, a 2PC decision, a
   clerk step) with [reach]; normally that is a single branch on a false
   flag. A crash-point sweep enables the registry, probes a clean run to
   count how often each site is hit, then re-runs the scenario once per
   (site, hit) with a crash action armed there — exhaustive
   crash-at-every-site coverage without hand-maintained sweep loops.

   The registry is global: the simulator is single-threaded and scenarios
   run one at a time, and threading a registry handle through every library
   layer would put test plumbing in every signature. *)

exception Crash

(* A swallowed [Crash] is a simulation-correctness bug: a fiber that was
   supposed to die mid-protocol would keep running and could acknowledge
   never-durable effects. Register it as fatal so [Rrq_util.Swallow]-based
   tolerance (and the [when Swallow.nonfatal e] guards that rrq_lint's R1
   pushes code toward) can never eat it. *)
let () = Rrq_util.Swallow.register_fatal (function Crash -> true | _ -> false)

let crash () = raise Crash

type armed = { a_site : string; a_hit : int; a_action : unit -> unit }

let on = ref false
let counts : (string, int) Hashtbl.t = Hashtbl.create 64
let trigger : armed option ref = ref None

let enabled () = !on

let reset () =
  on := true;
  Hashtbl.reset counts;
  trigger := None

let disable () =
  on := false;
  Hashtbl.reset counts;
  trigger := None

let arm ~site ~hit action =
  if not !on then invalid_arg "Crashpoint.arm: registry not enabled (reset first)";
  if hit < 1 then invalid_arg "Crashpoint.arm: hit must be >= 1";
  trigger := Some { a_site = site; a_hit = hit; a_action = action }

let armed () =
  match !trigger with Some a -> Some (a.a_site, a.a_hit) | None -> None

let reach site =
  if !on then begin
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt counts site) in
    Hashtbl.replace counts site n;
    match !trigger with
    | Some a when a.a_site = site && a.a_hit = n ->
      (* One-shot: disarm before firing so the action (which may restart the
         very component hosting this site) cannot re-trigger itself. *)
      trigger := None;
      Rrq_obs.Trace.emit (Rrq_obs.Event.Crashpoint_fired { site; hit = n });
      a.a_action ()
    | _ -> ()
  end

let hits site = Option.value ~default:0 (Hashtbl.find_opt counts site)

let hit_counts () =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) counts []
  |> List.sort compare
