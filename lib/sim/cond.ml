type t = { mutable queue : bool Sched.waker list }

let create () = { queue = [] }

let wait t =
  let ok = Sched.suspend (fun _ w -> t.queue <- t.queue @ [ w ]) in
  assert ok

let wait_timeout t d =
  Sched.suspend (fun sched w ->
      t.queue <- t.queue @ [ w ];
      Sched.at sched (Sched.now sched +. d) (fun () ->
          ignore (Sched.wake w false)))

let wait_any ?timeout conds =
  Sched.suspend (fun sched w ->
      (* The same one-shot waker sits in every queue (and on the timer);
         whichever fires first wins, the rest find it dead and skip it. *)
      List.iter (fun c -> c.queue <- c.queue @ [ w ]) conds;
      match timeout with
      | None -> ()
      | Some d ->
        Sched.at sched (Sched.now sched +. d) (fun () ->
            ignore (Sched.wake w false)))

let rec signal t =
  match t.queue with
  | [] -> ()
  | w :: rest ->
    t.queue <- rest;
    if not (Sched.wake w true) then signal t

let broadcast t =
  let q = t.queue in
  t.queue <- [];
  List.iter (fun w -> ignore (Sched.wake w true)) q

let waiters t = List.length (List.filter Sched.waker_live t.queue)
