(** Deterministic discrete-event scheduler with cooperative fibers.

    Fibers are lightweight processes implemented with OCaml effects. All
    blocking is explicit ([sleep], or a [suspend]-built primitive such as
    {!Chan} and {!Ivar}); there is no preemption, so a run is a deterministic
    function of the program and the RNG seeds it uses.

    Time is virtual: it advances only when every runnable fiber has blocked,
    jumping to the earliest pending timer. This lets failure experiments
    cover hours of simulated traffic in milliseconds of real time.

    Fibers belong to a group (we use one group per simulated node).
    {!kill_group} models a node crash: every fiber of the group is marked
    dead and will simply never run again — mirroring a process that
    disappears mid-instruction. Suspended continuations of dead fibers are
    dropped, so fiber code must not rely on [Fun.protect]-style cleanup for
    crash correctness (crash-safety must come from the WAL, as in a real
    system). *)

type t
(** A scheduler instance. *)

type fiber
(** Handle to a spawned fiber. *)

(** {1 Scheduling policy and decision trace}

    Every scheduling decision — which ready fiber continuation runs next,
    which timer fires, which fault an experiment injected — is recorded as a
    compact trace. Because fibers are cooperative and all other randomness
    draws from explicit seeds, a run is a pure function of (program, seeds,
    decision sequence): replaying a recorded trace through {!Replay}
    reproduces the run event-for-event. This is the substrate of the
    simulation-testing layer in [lib/check]. *)

type decision =
  | Pick of int  (** Chose the i-th entry (0 = oldest) of the ready set. *)
  | Timer_fired of int  (** A timer (identified by its sequence no.) fired. *)
  | Fault of string  (** Externally injected fault, via {!note_fault}. *)

type policy =
  | Fifo  (** Historical behavior: always run the oldest ready entry. *)
  | Random_priority of int
      (** PCT-style randomized priorities (seeded): every ready entry gets a
          random priority at enqueue time and the highest runs first, so the
          same program explores a different interleaving per seed. *)
  | Replay of decision array
      (** Follow the picks of a recorded trace. Non-pick entries are
          informational and skipped; a divergent or exhausted trace degrades
          to FIFO rather than failing. *)

val create : ?policy:policy -> ?trace_limit:int -> unit -> t
(** Fresh scheduler at virtual time 0.0. [policy] defaults to [Fifo];
    [trace_limit] (default 1M) bounds how many decisions are retained for
    {!trace} — decisions past the limit still execute (and still show in
    {!trace_truncated} and the livelock diagnostics), they are just not
    replayable. *)

val trace : t -> decision array
(** The decisions recorded so far, oldest first, with fault notes spliced in
    at the position they were injected. Feed to {!Replay} to reproduce the
    run, or serialize with {!trace_to_string}. *)

val trace_truncated : t -> bool
(** Whether the run outgrew [trace_limit] (the trace is then a prefix and no
    longer replayable). *)

val note_fault : t -> string -> unit
(** Record an injected fault (crash, partition, ...) in the decision trace,
    so failure schedules are visible in replays and diagnostics. *)

val decision_to_string : decision -> string
(** Compact form: ["p3"], ["t17"], ["f:crash backend"]. *)

val decision_of_string : string -> decision
(** Inverse of {!decision_to_string}.
    @raise Invalid_argument on malformed input. *)

val trace_to_string : decision array -> string
(** Semicolon-joined {!decision_to_string} forms (a copy-pastable trace). *)

val trace_of_string : string -> decision array

val now : t -> float
(** Current virtual time. *)

val spawn : t -> ?group:string -> name:string -> (unit -> unit) -> fiber
(** Register a fiber to start at the current virtual time. Usable both from
    outside [run] (to set up the initial processes) and from within a fiber
    (though {!fork} is more convenient there). *)

val run : ?max_steps:int -> t -> unit
(** Execute fibers until no fiber is runnable and no timer is pending.
    @raise Failure if more than [max_steps] events execute (default 50M),
    which indicates a livelock in the simulated program. The failure message
    names the live fibers and the last few scheduling decisions, so a
    simulated livelock is diagnosable from test output alone. *)

val kill : t -> fiber -> unit
(** Mark one fiber dead. It never runs again. *)

val kill_group : t -> string -> unit
(** Kill every live fiber in the group (node crash). *)

val alive : fiber -> bool
(** Whether the fiber has neither finished nor been killed. *)

val fiber_name : fiber -> string
val fiber_group : fiber -> string option

val live_fibers : t -> string list
(** Names of fibers still alive when [run] returned — useful to diagnose
    simulated deadlocks in tests. *)

val failures : t -> (string * exn) list
(** Fibers that died with an unhandled exception, with that exception.
    Tests assert this is empty. *)

val at : ?background:bool -> t -> float -> (unit -> unit) -> unit
(** [at t time f] runs the callback at absolute virtual [time] (or now, if
    the time has passed). The callback runs in scheduler context, not in a
    fiber: it must not block; typically it just wakes a waker or spawns.
    Background timers (default false) do not keep the simulation alive:
    {!run} stops when only background timers remain. *)

(** {1 Primitives callable only from inside a fiber} *)

val clock : unit -> float
(** Current virtual time. *)

val sleep : float -> unit
(** Block the calling fiber for a virtual duration. *)

val sleep_background : float -> unit
(** Like {!sleep}, but does not keep the simulation alive: periodic daemons
    (janitors, resolvers, redelivery retries) use this so {!run} can end
    when all real work is done. *)

val yield : unit -> unit
(** Reschedule the calling fiber behind the current ready queue. *)

val fork : ?name:string -> (unit -> unit) -> fiber
(** Spawn a fiber in the caller's group. *)

val self : unit -> fiber
(** The calling fiber's handle. *)

val in_fiber : unit -> bool
(** Whether the caller is running inside a fiber. Blocking primitives are
    only legal when this is [true]; dual-use library code (e.g. the WAL
    group-commit force path) checks it to degrade to synchronous behavior
    outside the simulator. *)

(** {1 Building blocking primitives} *)

type 'a waker
(** One-shot resumption capability for a suspended fiber. *)

val wake : 'a waker -> 'a -> bool
(** Resume the suspended fiber with a value. Returns [false] if the waker
    was already used or the fiber has been killed — in which case the value
    is {e not} delivered (the caller may hand it to another waiter). *)

val waker_live : 'a waker -> bool
(** Whether [wake] could still deliver (unused and fiber alive). *)

val suspend : (t -> 'a waker -> unit) -> 'a
(** Block the calling fiber; the registration callback stores the waker
    wherever the wake-up will come from (a queue of waiters, a timer via
    {!at}, ...). Returns when some agent calls [wake]. *)
