module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched

type t = {
  cnode : Net.node;
  (* Current candidate primary. [ring] holds every repository node the
     clerk may talk to (configured system first); an unreachable or
     standby-gated candidate rotates [system] to the next one, which is
     all the client-side failover there is — duplicate suppression via
     registration tags makes the retry against the new primary safe. *)
  mutable system : string;
  ring : string list;
  client_id : string;
  req_queue : string;
  reply_q : string;
  rpc_timeout : float;
  retries : int;
  strict : bool;
  mutable fsm : Client_fsm.state;
  mutable last_rid : string option;
  mutable last_eid : int64 option;
  (* Virtual send time of the outstanding request, for the rtt metric. *)
  mutable sent_at : float option;
  (* Shard routing ({!Shard}): when set, every operation is wrapped in
     [Sh_routed] and sent to the owner of its routing key (then the
     owner's backup candidates), instead of to [system]. Replies piggyback
     newer maps; a fully unreachable owner triggers an explicit map
     refresh, bounded by the same retry budget and backoff as the plain
     ring rotation — a stale map can cost at most [retries] refresh
     rounds, never an unbounded forwarding loop. *)
  mutable smap : Shard.map option;
}

type connect_info = {
  s_rid : string option;
  r_rid : string option;
  ckpt : string option;
}

exception Unavailable of string
exception Protocol_violation of string

(* Track (and under [strict], enforce) the fig. 1/7 state machine. *)
let transition t event =
  match Client_fsm.step t.fsm event with
  | Some next ->
    if Rrq_obs.enabled () then
      Rrq_obs.Trace.emit
        (Rrq_obs.Event.Client_fsm
           {
             client = t.client_id;
             from_state = Client_fsm.state_to_string t.fsm;
             event = Client_fsm.event_to_string event;
             to_state = Client_fsm.state_to_string next;
           });
    t.fsm <- next
  | None ->
    if t.strict then
      raise
        (Protocol_violation
           (Printf.sprintf "%s is illegal in state %s"
              (Client_fsm.event_to_string event)
              (Client_fsm.state_to_string t.fsm)))

let rotate t =
  match t.ring with
  | [] | [ _ ] -> ()
  | ring ->
    let rec next = function
      | a :: b :: _ when a = t.system -> b
      | _ :: tl -> next tl
      | [] -> List.hd ring
    in
    t.system <- next ring

(* Adopt a newer shard map. The [shard.refresh] counter is the visible
   evidence of every map refresh, piggybacked or explicit. *)
let install_map t (m : Shard.map) =
  match t.smap with
  | Some cur when m.Shard.version <= cur.Shard.version -> ()
  | Some _ ->
    t.smap <- Some m;
    Rrq_obs.Metrics.inc "shard.refresh"
  | None -> t.smap <- Some m

(* Explicit refresh: ask any repository the map names for its current map
   (used when every candidate for a key is unreachable — the map may have
   moved the key from under us). *)
let refresh_map t =
  match t.smap with
  | None -> ()
  | Some m ->
    let rec try_nodes = function
      | [] -> ()
      | dst :: rest -> (
        match
          Net.call t.cnode ~timeout:t.rpc_timeout ~dst ~service:"shard"
            Shard.Sh_get_map
        with
        | Shard.Sh_map nm when nm.Shard.version > m.Shard.version ->
          install_map t nm
        | _ -> try_nodes rest
        | exception (Net.Rpc_timeout | Net.Service_error _) -> try_nodes rest)
    in
    try_nodes (Shard.all_nodes m)

(* The owner (under the current map) of one of this client's queues; the
   configured [system] when not sharded. *)
let home t queue =
  match t.smap with
  | None -> t.system
  | Some m ->
    Shard.owner m (Shard.key_for m ~queue ~registrant:t.client_id)

let rpc ?(extra_timeout = 0.0) ?queue t msg =
  match t.smap with
  | None ->
    let rec go attempts_left =
      match
        Net.call t.cnode
          ~timeout:(t.rpc_timeout +. extra_timeout)
          ~dst:t.system ~service:"qm" msg
      with
      | v -> v
      | exception (Net.Rpc_timeout | Net.Service_error _) ->
        if attempts_left <= 0 then
          raise (Unavailable (Printf.sprintf "system %s unreachable" t.system))
        else begin
          rotate t;
          Sched.sleep (0.5 *. t.rpc_timeout);
          go (attempts_left - 1)
        end
    in
    go t.retries
  | Some _ ->
    let q = match queue with Some q -> q | None -> t.req_queue in
    let rec go attempts_left =
      let m = match t.smap with Some m -> m | None -> assert false in
      let key = Shard.key_for m ~queue:q ~registrant:t.client_id in
      let rec try_cands = function
        | [] -> None
        | dst :: rest -> (
          match
            Net.call t.cnode
              ~timeout:(t.rpc_timeout +. extra_timeout)
              ~dst ~service:"qm"
              (Shard.Sh_routed
                 { version = m.Shard.version; hops = 0; inner = msg })
          with
          | Shard.Sh_reply { newer; inner } ->
            (match newer with Some nm -> install_map t nm | None -> ());
            Some inner
          | other -> Some other
          | exception (Net.Rpc_timeout | Net.Service_error _) ->
            try_cands rest)
      in
      match try_cands (Shard.candidates m key) with
      | Some v -> v
      | None ->
        if attempts_left <= 0 then
          raise
            (Unavailable (Printf.sprintf "shard owner of %s unreachable" key))
        else begin
          refresh_map t;
          Sched.sleep (0.5 *. t.rpc_timeout);
          go (attempts_left - 1)
        end
    in
    go t.retries

let do_connect t =
  (match rpc t ~queue:t.reply_q (Site.Q_create_queue t.reply_q) with
  | Net.Ack -> ()
  | _ -> raise (Unavailable "unexpected reply to create-queue"));
  let s_rid, s_eid =
    match
      rpc t ~queue:t.req_queue
        (Site.Q_register
           { queue = t.req_queue; registrant = t.client_id; stable = true })
    with
    | Site.R_registered { last_tag; last_eid; _ } ->
      ((match last_tag with Some tag -> Tag.rid_piece tag | None -> None), last_eid)
    | _ -> raise (Unavailable "unexpected reply to register")
  in
  let r_rid, ckpt =
    match
      rpc t ~queue:t.reply_q
        (Site.Q_register
           { queue = t.reply_q; registrant = t.client_id; stable = true })
    with
    | Site.R_registered { last_tag = Some tag; _ } ->
      (Tag.rid_piece tag, Tag.ckpt_piece tag)
    | Site.R_registered { last_tag = None; _ } -> (None, None)
    | _ -> raise (Unavailable "unexpected reply to register")
  in
  t.last_rid <- s_rid;
  t.last_eid <- s_eid;
  t.fsm <- Client_fsm.Disconnected;
  transition t
    (match (s_rid, r_rid) with
    | None, _ -> Client_fsm.Connect_fresh
    | Some s, Some r when s = r -> Client_fsm.Connect_reply_recvd
    | Some _, _ -> Client_fsm.Connect_req_sent);
  { s_rid; r_rid; ckpt }

let connect ~client_node ~system ?(backups = []) ?shard_map ~client_id
    ~req_queue ?reply_queue ?(rpc_timeout = 1.0) ?(retries = 10)
    ?(strict = false) () =
  let t =
    {
      cnode = client_node;
      system;
      ring = system :: List.filter (fun b -> b <> system) backups;
      client_id;
      req_queue;
      reply_q =
        (match reply_queue with Some q -> q | None -> "reply." ^ client_id);
      rpc_timeout;
      retries;
      strict;
      fsm = Client_fsm.Disconnected;
      last_rid = None;
      last_eid = None;
      sent_at = None;
      smap = shard_map;
    }
  in
  let info = do_connect t in
  (t, info)

let reconnect t = do_connect t

let disconnect t =
  transition t Client_fsm.Disconnect;
  ignore
    (rpc t ~queue:t.req_queue
       (Site.Q_deregister { registrant = t.client_id; queue = t.req_queue }));
  ignore
    (rpc t ~queue:t.reply_q
       (Site.Q_deregister { registrant = t.client_id; queue = t.reply_q }))

let client_id t = t.client_id
let reply_queue t = t.reply_q

(* The reply destination stamped into every request: the reply queue's
   owning shard under the current map (stable across map changes by the
   {!Shard} non-sharded-queue constraint), or the plain system site. *)
let envelope t ~rid ?kind ?scratch ?step ~body () =
  Envelope.make ~rid ~client_id:t.client_id ~reply_node:(home t t.reply_q)
    ~reply_queue:t.reply_q ?kind ?scratch ?step body

let send t ~rid ?(props = []) ?kind ?scratch ?step body =
  (* Retrying the same Send is recovery, not a transition; an intermediate
     input (step > 0) is the fig. 7 Send-intermediate edge. *)
  if t.last_rid <> Some rid then
    transition t
      (match step with
      | Some n when n > 0 -> Client_fsm.Send_intermediate
      | _ -> Client_fsm.Send);
  let env = envelope t ~rid ?kind ?scratch ?step ~body () in
  match
    rpc t ~queue:t.req_queue
      (Site.Q_enqueue
         {
           registrant = t.client_id;
           queue = t.req_queue;
           tag = Some (Tag.send ~rid);
           props = Envelope.props env @ props;
           priority = 0;
           body = Envelope.to_string env;
         })
  with
  | Site.R_eid eid ->
    t.last_rid <- Some rid;
    t.last_eid <- Some eid;
    if Rrq_obs.enabled () then begin
      if Sched.in_fiber () then t.sent_at <- Some (Sched.clock ());
      Rrq_obs.Trace.emit
        (Rrq_obs.Event.Clerk_send { client = t.client_id; rid; eid })
    end;
    Rrq_sim.Crashpoint.reach ("clerk.sent:" ^ t.client_id);
    eid
  | _ -> raise (Unavailable "unexpected reply to enqueue")

let send_oneway t ~rid ?(props = []) body =
  let env = envelope t ~rid ~body () in
  t.last_rid <- Some rid;
  t.last_eid <- None;
  let op =
    Site.Q_enqueue
      {
        registrant = t.client_id;
        queue = t.req_queue;
        tag = Some (Tag.send ~rid);
        props = Envelope.props env @ props;
        priority = 0;
        body = Envelope.to_string env;
      }
  in
  match t.smap with
  | None -> Net.cast t.cnode ~dst:t.system ~service:"qm" op
  | Some m ->
    Net.cast t.cnode ~dst:(home t t.req_queue) ~service:"qm"
      (Shard.Sh_routed { version = m.Shard.version; hops = 0; inner = op })

let decode_view = function
  | None -> None
  | Some v -> Some (Envelope.of_string v.Site.v_payload)

let receive t ?ckpt ?(timeout = 30.0) () =
  match
    rpc ~extra_timeout:timeout t ~queue:t.reply_q
      (Site.Q_dequeue
         {
           registrant = t.client_id;
           queue = t.reply_q;
           tag = Some (Tag.receive ~rid:t.last_rid ~ckpt);
           filter = None;
           timeout = Some timeout;
         })
  with
  | Site.R_element v ->
    let reply = decode_view v in
    (match reply with
    | Some r when r.Envelope.kind = "intermediate" ->
      transition t Client_fsm.Receive_intermediate
    | Some _ ->
      transition t Client_fsm.Receive_reply;
      if Rrq_obs.enabled () then begin
        Rrq_obs.Trace.emit
          (Rrq_obs.Event.Clerk_receive
             {
               client = t.client_id;
               rid = Option.value ~default:"" t.last_rid;
             });
        (match t.sent_at with
        | Some t0 when Sched.in_fiber () ->
          Rrq_obs.Metrics.observe
            ("clerk.rtt:" ^ t.client_id)
            (Sched.clock () -. t0)
        | _ -> ());
        t.sent_at <- None
      end;
      Rrq_sim.Crashpoint.reach ("clerk.received:" ^ t.client_id)
    | None -> () (* timeout: no transition; the client will retry *));
    reply
  | _ -> raise (Unavailable "unexpected reply to dequeue")

let rereceive t =
  transition t Client_fsm.Rereceive;
  match
    rpc t ~queue:t.reply_q
      (Site.Q_read_last { registrant = t.client_id; queue = t.reply_q })
  with
  | Site.R_element v -> decode_view v
  | _ -> raise (Unavailable "unexpected reply to read-last")

let transceive t ~rid ?props ?ckpt ?timeout body =
  ignore (send t ~rid ?props body);
  receive t ?ckpt ?timeout ()

let cancel_last_request t =
  match t.last_eid with
  | None -> false
  | Some eid -> begin
    match rpc t ~queue:t.req_queue (Site.Q_kill eid) with
    | Site.R_bool b ->
      (* A successful cancel closes the request: the client may Send anew. *)
      if b && t.fsm = Client_fsm.Req_sent then t.fsm <- Client_fsm.Reply_recvd;
      b
    | _ -> false
  end

let cancel_request_anywhere t ~sites ~rid =
  let filter =
    Rrq_qm.Filter.And
      (Rrq_qm.Filter.Prop_eq ("client", t.client_id),
       Rrq_qm.Filter.Prop_eq ("rid", rid))
  in
  List.exists
    (fun site ->
      match
        Net.call t.cnode ~timeout:t.rpc_timeout ~dst:site ~service:"qm"
          (Site.Q_kill_where filter)
      with
      | Site.R_int n -> n > 0
      | _ -> false
      | exception (Net.Rpc_timeout | Net.Service_error _) -> false)
    sites

let last_sent_eid t = t.last_eid
let state t = t.fsm
let system t = t.system
let shard_map t = t.smap
let set_shard_map t m = install_map t m
