(** Interactive requests (paper §8): requests that exchange intermediate
    output/input with the client while executing.

    {2 Pseudo-conversational transactions (§8.2)}

    The interaction is mapped onto a serial multi-transaction request: each
    intermediate output is a reply, each intermediate input is the request
    for the next transaction, and the conversation state rides in the
    envelope's scratch pad (the IMS scratch-pad technique, §9). Every
    intermediate input therefore implicitly acknowledges the previous
    output, and each leg enjoys the full exactly-once machinery. The
    trade-offs are the paper's: no late cancellation without compensation,
    and request executions are not serializable.

    {2 Single-transaction conversations (§8.3)}

    The request executes as one transaction that solicits intermediate
    inputs by direct (unprotected) messages to the client's display
    service. The client logs every intermediate I/O durably, keyed by
    (rid, seq); if the transaction aborts and re-executes, logged inputs
    are replayed as long as the server's outputs match the log, and the
    log tail is discarded at the first divergence. Cancellation is
    possible until the last input ({!Clerk.cancel_last_request} aborts the
    running transaction), and executions are serializable. *)

(** {1 Pseudo-conversational} *)

type turn =
  | Intermediate of { output : string; scratch : string }
      (** Commit this leg; send [output] to the client and await its input;
          [scratch] carries the conversation state to the next leg. *)
  | Final of string  (** The conversation's real reply. *)

val pseudo_server :
  Site.t -> req_queue:string -> ?threads:int ->
  (Site.t -> Rrq_txn.Tm.txn -> Envelope.t -> turn) -> Server.t
(** Server for pseudo-conversations: the handler sees [env.step] (leg
    number) and [env.scratch] (state from the previous leg). *)

val pseudo_client :
  Clerk.t -> rid:string -> body:string ->
  respond:(step:int -> output:string -> string) -> ?max_turns:int -> unit ->
  Envelope.t option
(** Drive a conversation from the client: send the opening request, then
    answer each intermediate output via [respond] (fig. 7's
    Req-Sent ↔ Intermediate-I/O cycle) until the final reply, which is
    returned ([None] if [max_turns] (default 100) is exceeded). *)

(** {1 Single-transaction conversations} *)

type Rrq_net.Net.payload +=
  | D_ask of { rid : string; seq : int; prompt : string }
  | D_input of string

val install_display :
  Rrq_net.Net.node ->
  user:(rid:string -> seq:int -> prompt:string -> string) -> unit
(** Install the client-side display service with its durable I/O replay
    log. [user] produces fresh intermediate input; replayed prompts are
    answered from the log without consulting the user. Re-run this after a
    client restart (the log is recovered from the node's disk). *)

val display_asks : Rrq_net.Net.node -> int
(** How many prompts reached the user (as opposed to being replayed) —
    lets tests verify replay actually short-circuits. *)

type console
(** Server-side handle for soliciting intermediate input within a
    transaction. *)

val console : Site.t -> Envelope.t -> display:string -> console
(** [display] is the node running the client's display service. *)

val ask : console -> string -> string
(** Send an intermediate output and wait for the matching input. Raises
    (aborting the surrounding transaction) if the client is unreachable —
    re-execution will replay the conversation from the client's log. *)
