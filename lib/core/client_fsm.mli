(** The client's state-transition diagrams (paper figs. 1 and 7).

    Figure 1 (non-interactive): Disconnected → Connected →
    {Req_sent ↔ Reply_recvd} → Disconnected, where Connect branches into
    Req_sent or Reply_recvd according to the rids it returns.

    Figure 7 (interactive) adds Intermediate_io: after sending a request
    the client may cycle Req_sent → Intermediate_io (receive intermediate
    output) → Req_sent (send intermediate input) before the final reply.

    The clerk-level code uses this machine to document and test legal
    operation orders; {!step} is a pure function so properties are easy to
    check. *)

type state =
  | Disconnected
  | Connected  (** Between Connect and the first Send/Receive decision. *)
  | Req_sent
  | Reply_recvd
  | Intermediate_io  (** Interactive requests only (fig. 7). *)

type event =
  | Connect_fresh  (** Connect returning no prior rids. *)
  | Connect_req_sent  (** Connect indicating an outstanding request. *)
  | Connect_reply_recvd  (** Connect indicating the last reply was taken. *)
  | Send
  | Receive_reply
  | Rereceive
  | Receive_intermediate  (** Interactive: intermediate output arrives. *)
  | Send_intermediate  (** Interactive: supply intermediate input. *)
  | Disconnect

val step : state -> event -> state option
(** The legal transition, or [None] if the event is illegal in the state. *)

val initial : state

val legal_events : state -> event list
(** All events with a defined transition from the state. *)

val state_to_string : state -> string
val event_to_string : event -> string

val run : event list -> state option
(** Fold a whole event trace from {!initial}; [None] as soon as any step
    is illegal. *)
