module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched
module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Lock = Rrq_txn.Lock
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter
module Kvdb = Rrq_kvdb.Kvdb

type elem_view = {
  v_eid : int64;
  v_payload : string;
  v_props : (string * string) list;
  v_priority : int;
  v_delivery_count : int;
  v_abort_code : string option;
}

let view_of_element (el : Element.t) =
  {
    v_eid = el.Element.eid;
    v_payload = el.Element.payload;
    v_props = el.Element.props;
    v_priority = el.Element.priority;
    v_delivery_count = el.Element.delivery_count;
    v_abort_code = el.Element.abort_code;
  }

type Net.payload +=
  | Q_register of { queue : string; registrant : string; stable : bool }
  | R_registered of {
      last_kind : [ `Enqueue | `Dequeue ] option;
      last_tag : string option;
      last_eid : int64 option;
    }
  | Q_enqueue of {
      registrant : string;
      queue : string;
      tag : string option;
      props : (string * string) list;
      priority : int;
      body : string;
    }
  | R_eid of int64
  | Q_dequeue of {
      registrant : string;
      queue : string;
      tag : string option;
      filter : Filter.t option;
      timeout : float option;
    }
  | R_element of elem_view option
  | Q_read_last of { registrant : string; queue : string }
  | Q_kill of int64
  | Q_kill_where of Filter.t
  | R_int of int
  | R_bool of bool
  | Q_deregister of { registrant : string; queue : string }
  | Q_create_queue of string
  | Q_enqueue_tx of {
      id : Txid.t;
      queue : string;
      props : (string * string) list;
      priority : int;
      body : string;
    }
  | Q_dequeue_tx of { id : Txid.t; queue : string; filter : Filter.t }
  | T_decision of Txid.t
  | R_decision of [ `Committed | `Aborted | `Pending ]
  | T_force_abort of Txid.t
  | RM_prepare of { rm : string; id : Txid.t; coordinator : string }
  | RM_commit of { rm : string; id : Txid.t }
  | RM_abort of { rm : string; id : Txid.t }
  | RM_has_work of { rm : string; id : Txid.t }

exception Aborted of string

type t = {
  site_node : Net.node;
  mutable s_tm : Tm.t;
  mutable s_qm : Qm.t;
  mutable s_kv : Kvdb.t;
  queues : (string * Qm.attrs) list;
  triggers : Qm.trigger list;
  commit_policy : Rrq_wal.Group_commit.policy option;
  checkpoint_every : int;
  stale_timeout : float;
  mutable extra_boot : (t -> unit) list; (* oldest first *)
  (* HA role state (see Ha). A standby site refuses client-facing service
     requests — clerks fail over to the primary — while its repositories
     are fed by shipped WAL records. Aliases are peer node names this site
     answers for after a failover: replies addressed to the dead primary
     must land on the promoted backup's own queues, not cross the wire. *)
  mutable standby : bool;
  mutable aliases : string list;
}

let node t = t.site_node
let site_name t = Net.node_name t.site_node
let set_standby t b = t.standby <- b
let is_standby t = t.standby
let set_aliases t names = t.aliases <- names
let aliases t = t.aliases
let is_local_name t dst = dst = site_name t || List.mem dst t.aliases

(* Raised (hence surfaced to callers as [Net.Service_error]) when a client
   operation reaches a standby; the clerk treats it like a dead node and
   rotates to the next candidate primary. *)
let standby_guard t =
  if t.standby then failwith ("ha: " ^ site_name t ^ " is a standby")
let tm t = t.s_tm
let qm t = t.s_qm
let kv t = t.s_kv
let qm_rm_name t = "qm@" ^ site_name t
let kv_rm_name t = "kv@" ^ site_name t

(* rm names are "kind@node"; the node part addresses the hosting site. *)
let rm_node rm_name =
  match String.index_opt rm_name '@' with
  | Some i -> String.sub rm_name (i + 1) (String.length rm_name - i - 1)
  | None -> rm_name

let remote_participant t ~rm_name =
  let dst = rm_node rm_name in
  let rpc msg =
    try Some (Net.call t.site_node ~dst ~service:"rm" msg)
    with Net.Rpc_timeout | Net.Service_error _ -> None
  in
  {
    Tm.part_name = rm_name;
    p_prepare =
      (fun id ~coordinator ->
        match rpc (RM_prepare { rm = rm_name; id; coordinator }) with
        | Some (R_bool b) -> b
        | Some _ | None -> false);
    p_commit =
      (fun id ->
        match rpc (RM_commit { rm = rm_name; id }) with
        | Some (R_bool b) -> b
        | Some _ | None -> false);
    p_abort = (fun id -> ignore (rpc (RM_abort { rm = rm_name; id })));
    p_one_phase = (fun _ -> false) (* never used: p_is_local is false *);
    p_has_work = (fun _ -> true) (* only joined after a successful remote op *);
    p_is_local = false;
  }

let local_participant t rm_name =
  if rm_name = qm_rm_name t then Some (Qm.participant t.s_qm)
  else if rm_name = kv_rm_name t then Some (Kvdb.participant t.s_kv)
  else None

(* ---- services -------------------------------------------------------- *)

let clerk_service t msg =
  standby_guard t;
  let qm = t.s_qm in
  match msg with
  | Q_register { queue; registrant; stable } ->
    let _, last = Qm.register qm ~queue ~registrant ~stable in
    let last_kind = Option.map (fun l -> l.Qm.op_kind) last in
    let last_tag = Option.map (fun l -> l.Qm.tag) last in
    let last_eid = Option.map (fun l -> l.Qm.op_eid) last in
    R_registered { last_kind; last_tag; last_eid }
  | Q_enqueue { registrant; queue; tag; props; priority; body } ->
    let h, last = Qm.register qm ~queue ~registrant ~stable:true in
    let duplicate =
      match (tag, last) with
      | Some tg, Some l -> l.Qm.op_kind = `Enqueue && l.Qm.tag = tg
      | _ -> false
    in
    (match (duplicate, last) with
    | true, Some l -> R_eid l.Qm.op_eid
    | _ ->
      let eid =
        Qm.auto_commit qm (fun id -> Qm.enqueue qm id h ?tag ~props ~priority body)
      in
      R_eid eid)
  | Q_dequeue { registrant; queue; tag; filter; timeout } ->
    let h, last = Qm.register qm ~queue ~registrant ~stable:true in
    let duplicate =
      match (tag, last) with
      | Some tg, Some l ->
        l.Qm.op_kind = `Dequeue
        && Tag.rid_piece l.Qm.tag <> None
        && Tag.rid_piece l.Qm.tag = Tag.rid_piece tg
      | _ -> false
    in
    if duplicate then
      R_element
        (match last with
        | Some l -> Option.map view_of_element l.Qm.element_copy
        | None -> None)
    else begin
      let wait =
        match timeout with None -> Qm.No_wait | Some d -> Qm.Timeout d
      in
      let el =
        Qm.auto_commit qm (fun id -> Qm.dequeue qm id h ?tag ?filter wait)
      in
      R_element (Option.map view_of_element el)
    end
  | Q_read_last { registrant; queue } ->
    let h, _ = Qm.register qm ~queue ~registrant ~stable:true in
    R_element (Option.map view_of_element (Qm.read_last qm h))
  | Q_kill eid -> R_bool (Qm.kill_element qm eid)
  | Q_kill_where filter -> R_int (Qm.kill_where qm filter)
  | Q_create_queue queue ->
    Qm.create_queue qm queue;
    Net.Ack
  | Q_deregister { registrant; queue } ->
    let h, _ = Qm.register qm ~queue ~registrant ~stable:true in
    Qm.deregister qm h;
    Net.Ack
  | _ -> raise (Invalid_argument "qm service: unexpected message")

let qm_tx_service t msg =
  standby_guard t;
  match msg with
  | Q_enqueue_tx { id; queue; props; priority; body } ->
    let qm = t.s_qm in
    let h, _ =
      Qm.register qm ~queue ~registrant:("pipeline@" ^ queue) ~stable:false
    in
    let eid = Qm.enqueue qm id h ~props ~priority body in
    R_eid eid
  | Q_dequeue_tx { id; queue; filter } ->
    let qm = t.s_qm in
    let h, _ =
      Qm.register qm ~queue ~registrant:("pipeline@" ^ queue) ~stable:false
    in
    let el = Qm.dequeue qm id h ~filter Qm.No_wait in
    R_element (Option.map view_of_element el)
  | _ -> raise (Invalid_argument "qm-tx service: unexpected message")

let rm_service t msg =
  let find rm =
    match local_participant t rm with
    | Some p -> p
    | None -> raise (Invalid_argument ("unknown rm " ^ rm))
  in
  match msg with
  | RM_prepare { rm; id; coordinator } ->
    R_bool ((find rm).Tm.p_prepare id ~coordinator)
  | RM_commit { rm; id } -> R_bool ((find rm).Tm.p_commit id)
  | RM_abort { rm; id } ->
    (find rm).Tm.p_abort id;
    Net.Ack
  | RM_has_work { rm; id } -> R_bool ((find rm).Tm.p_has_work id)
  | _ -> raise (Invalid_argument "rm service: unexpected message")

let tm_service t msg =
  match msg with
  | T_decision id -> R_decision (Tm.decision t.s_tm id)
  | T_force_abort id -> R_bool (Tm.force_abort t.s_tm id)
  | _ -> raise (Invalid_argument "tm service: unexpected message")

(* ---- daemons --------------------------------------------------------- *)

(* Resolve recovered in-doubt transactions by asking their coordinators;
   presumed abort when the coordinator has no record. *)
let resolver_daemon t () =
  let resolve_one (id, coord) ~commit ~abort =
    match
      Net.call t.site_node ~dst:coord ~service:"tm" (T_decision id)
    with
    | R_decision `Committed -> commit id
    | R_decision `Aborted -> abort id
    | R_decision `Pending | _ -> ()
    | exception (Net.Rpc_timeout | Net.Service_error _) -> ()
  in
  (* The daemon must outlive recovery: a participant can become in-doubt
     long after boot — it prepared for a remote coordinator (a cross-shard
     reply enqueue) and the coordinator crashed before deciding. Only this
     poller ever resolves that doubt, so it keeps polling for the node's
     lifetime rather than exiting once the recovery-time entries drain. *)
  let rec loop () =
    if not t.standby then begin
      (* A standby's in-doubt entries come from shipped prepares whose
         outcomes arrive via the shipped TM decision stream; presumed-abort
         resolution here would diverge from the primary. Promotion resolves
         them instead. *)
      List.iter
        (fun entry ->
          resolve_one entry
            ~commit:(fun id -> ignore ((Qm.participant t.s_qm).Tm.p_commit id))
            ~abort:(fun id -> (Qm.participant t.s_qm).Tm.p_abort id))
        (Qm.in_doubt t.s_qm);
      List.iter
        (fun entry ->
          resolve_one entry
            ~commit:(fun id -> ignore ((Kvdb.participant t.s_kv).Tm.p_commit id))
            ~abort:(fun id -> (Kvdb.participant t.s_kv).Tm.p_abort id))
        (Kvdb.in_doubt t.s_kv)
    end;
    Sched.sleep_background 1.0;
    loop ()
  in
  loop ()

let janitor_daemon t () =
  let rec loop () =
    Sched.sleep_background t.stale_timeout;
    ignore (Qm.abort_stale t.s_qm ~older_than:t.stale_timeout);
    Qm.observe_queues t.s_qm;
    Qm.maybe_checkpoint t.s_qm ~every:t.checkpoint_every;
    Kvdb.maybe_checkpoint t.s_kv ~every:t.checkpoint_every;
    loop ()
  in
  loop ()

(* ---- boot ------------------------------------------------------------ *)

let boot_site t nd =
  let disk = Net.disk nd in
  let name = Net.node_name nd in
  let sched = Net.sched (Net.network nd) in
  let tm = Tm.open_tm ?commit_policy:t.commit_policy disk ~name in
  let qm =
    Qm.open_qm ?commit_policy:t.commit_policy ~triggers:t.triggers disk
      ~name:("qm@" ^ name)
  in
  let kv =
    Kvdb.open_kv ?commit_policy:t.commit_policy disk ~name:("kv@" ^ name)
  in
  t.s_tm <- tm;
  t.s_qm <- qm;
  t.s_kv <- kv;
  Qm.set_clock qm (fun () -> Sched.now sched);
  List.iter (fun (qn, attrs) -> Qm.create_queue qm ~attrs qn) t.queues;
  (* Kill-element must be able to abort the holding transaction, wherever
     its coordinator lives (paper §7). *)
  Qm.set_abort_callback qm (fun id ->
      if id.Txid.origin = name then ignore (Tm.force_abort tm id)
      else
        try
          ignore
            (Net.call nd ~dst:id.Txid.origin ~service:"tm" (T_force_abort id))
        with Net.Rpc_timeout | Net.Service_error _ -> ());
  Tm.set_resolver tm (fun rm_name ->
      match local_participant t rm_name with
      | Some p -> Some p
      | None -> Some (remote_participant t ~rm_name));
  Net.add_service nd "qm" (clerk_service t);
  Net.add_service nd "qm-tx" (qm_tx_service t);
  Net.add_service nd "rm" (rm_service t);
  Net.add_service nd "tm" (tm_service t);
  Net.spawn_on nd ~name:(name ^ ":recovery") (fun () ->
      Tm.recover_pending tm;
      resolver_daemon t ());
  Net.spawn_on nd ~name:(name ^ ":janitor") (janitor_daemon t);
  List.iter (fun f -> f t) t.extra_boot

let create ?commit_policy ?(queues = []) ?(triggers = [])
    ?(checkpoint_every = 500) ?(stale_timeout = 30.0) nd =
  let disk = Net.disk nd in
  let name = Net.node_name nd in
  let t =
    {
      site_node = nd;
      s_tm = Tm.open_tm disk ~name;
      s_qm = Qm.open_qm disk ~name:("qm@" ^ name);
      s_kv = Kvdb.open_kv disk ~name:("kv@" ^ name);
      queues;
      triggers;
      commit_policy;
      checkpoint_every;
      stale_timeout;
      extra_boot = [];
      standby = false;
      aliases = [];
    }
  in
  (* The placeholder components above exist only to fill the record; boot
     immediately replaces them with properly wired ones. *)
  Net.set_boot nd (boot_site t);
  Net.boot nd;
  t

let on_boot t f =
  t.extra_boot <- t.extra_boot @ [ f ];
  f t

let crash t = Net.crash t.site_node
let restart t = Net.restart t.site_node
let crash_restart t ~after = Net.crash_restart t.site_node ~after

(* ---- transactions ---------------------------------------------------- *)

let with_txn t f =
  let txn = Tm.begin_txn t.s_tm in
  Tm.join txn (Qm.participant t.s_qm);
  Tm.join txn (Kvdb.participant t.s_kv);
  match f txn with
  | v -> begin
    match Tm.commit t.s_tm txn with
    | Tm.Committed -> v
    | Tm.Aborted -> raise (Aborted "commit refused")
  end
  | exception e ->
    Tm.abort t.s_tm txn;
    (match e with
    | Qm.Conflict m -> raise (Aborted ("qm: " ^ m))
    | Kvdb.Conflict m -> raise (Aborted ("kv: " ^ m))
    | Lock.Deadlock m -> raise (Aborted ("deadlock: " ^ m))
    | Lock.Cancelled -> raise (Aborted "cancelled")
    | e -> raise e)

let remote_dequeue t txn ~dst ~queue ~filter =
  if is_local_name t dst then begin
    let h, _ =
      Qm.register t.s_qm ~queue ~registrant:("pipeline@" ^ queue) ~stable:false
    in
    Option.map view_of_element
      (Qm.dequeue t.s_qm (Tm.txn_id txn) h ~filter Qm.No_wait)
  end
  else begin
    match
      Net.call t.site_node ~dst ~service:"qm-tx"
        (Q_dequeue_tx { id = Tm.txn_id txn; queue; filter })
    with
    | R_element v ->
      if v <> None then Tm.join txn (remote_participant t ~rm_name:("qm@" ^ dst));
      v
    | _ -> raise (Aborted "remote dequeue: unexpected reply")
    | exception (Net.Rpc_timeout | Net.Service_error _) ->
      raise (Aborted ("remote dequeue from " ^ dst ^ " failed"))
  end

let remote_enqueue t txn ~dst ~queue ?(props = []) ?(priority = 0) body =
  if is_local_name t dst then begin
    let h, _ =
      Qm.register t.s_qm ~queue ~registrant:("pipeline@" ^ queue) ~stable:false
    in
    ignore (Qm.enqueue t.s_qm (Tm.txn_id txn) h ~props ~priority body)
  end
  else begin
    match
      Net.call t.site_node ~dst ~service:"qm-tx"
        (Q_enqueue_tx { id = Tm.txn_id txn; queue; props; priority; body })
    with
    | R_eid _ -> Tm.join txn (remote_participant t ~rm_name:("qm@" ^ dst))
    | _ -> raise (Aborted "remote enqueue: unexpected reply")
    | exception (Net.Rpc_timeout | Net.Service_error _) ->
      (* The remote may or may not hold the buffered op; if it does, its
         janitor will abort the stale workspace. *)
      raise (Aborted ("remote enqueue to " ^ dst ^ " failed"))
  end
