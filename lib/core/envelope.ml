module Codec = Rrq_util.Codec

type t = {
  rid : string;
  client_id : string;
  reply_node : string;
  reply_queue : string;
  kind : string;
  body : string;
  scratch : string;
  step : int;
}

let make ~rid ~client_id ~reply_node ~reply_queue ?(kind = "request")
    ?(scratch = "") ?(step = 0) body =
  { rid; client_id; reply_node; reply_queue; kind; body; scratch; step }

let reply_to t ~body = { t with kind = "reply"; body; scratch = ""; step = 0 }
let with_body t ~body ~scratch = { t with body; scratch; step = t.step + 1 }

let to_string t =
  let e = Codec.encoder () in
  Codec.string e t.rid;
  Codec.string e t.client_id;
  Codec.string e t.reply_node;
  Codec.string e t.reply_queue;
  Codec.string e t.kind;
  Codec.string e t.body;
  Codec.string e t.scratch;
  Codec.int e t.step;
  Codec.to_string e

let of_string s =
  let d = Codec.decoder s in
  let rid = Codec.get_string d in
  let client_id = Codec.get_string d in
  let reply_node = Codec.get_string d in
  let reply_queue = Codec.get_string d in
  let kind = Codec.get_string d in
  let body = Codec.get_string d in
  let scratch = Codec.get_string d in
  let step = Codec.get_int d in
  { rid; client_id; reply_node; reply_queue; kind; body; scratch; step }

let props t = [ ("rid", t.rid); ("kind", t.kind); ("client", t.client_id) ]
