module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched
module Qm = Rrq_qm.Qm

type t = {
  a_site : Site.t;
  queue : string;
  handler : Server.handler;
  min_threads : int;
  max_threads : int;
  server : Server.t;
  mutable surge_total : int;
  mutable surge_active : int;
  mutable surge_processed : int;
}

let surge_loop t n () =
  let registrant = Printf.sprintf "surge:%s:%d" t.queue n in
  let rec loop () =
    match
      Server.process_one t.a_site ~req_queue:t.queue ~registrant
        ~wait:Qm.No_wait t.handler
    with
    | `Done ->
      t.surge_processed <- t.surge_processed + 1;
      loop ()
    | `Aborted ->
      Sched.sleep 0.01;
      loop ()
    | `Empty -> t.surge_active <- t.surge_active - 1 (* drain done: retire *)
  in
  loop ()

let spawn_surges t =
  while t.surge_active < t.max_threads - t.min_threads do
    t.surge_active <- t.surge_active + 1;
    t.surge_total <- t.surge_total + 1;
    Net.spawn_on (Site.node t.a_site)
      ~name:(Printf.sprintf "surge:%s:%d" t.queue t.surge_total)
      (surge_loop t t.surge_total)
  done

let install site ~req_queue ~min_threads ~max_threads ~scale_at handler =
  Qm.create_queue (Site.qm site)
    ~attrs:{ Qm.default_attrs with alert_threshold = Some scale_at }
    req_queue;
  let server = Server.start site ~req_queue ~threads:min_threads handler in
  let t =
    {
      a_site = site;
      queue = req_queue;
      handler;
      min_threads;
      max_threads;
      server;
      surge_total = 0;
      surge_active = 0;
      surge_processed = 0;
    }
  in
  Site.on_boot site (fun site ->
      t.surge_active <- 0 (* surge fibers died with the node *);
      Qm.set_alert_callback (Site.qm site) (fun qn _depth ->
          if qn = req_queue then spawn_surges t));
  t

let surge_spawned t = t.surge_total
let active_surge t = t.surge_active
let processed t = Server.processed t.server + t.surge_processed
